package numarck_test

import (
	"bytes"
	"math/rand"
	"testing"

	"numarck"
)

// observeDataset builds a smooth transition large enough to span
// several chunks.
func observeDataset(n int) (prev, cur []float64) {
	rng := rand.New(rand.NewSource(42))
	prev = make([]float64, n)
	cur = make([]float64, n)
	for i := range prev {
		prev[i] = 100 + rng.Float64()*50
		cur[i] = prev[i] * (1 + rng.NormFloat64()*0.002)
	}
	return prev, cur
}

// TestSnapshotReconciles checks, for every strategy, that the
// recorder's totals agree with ground truth: the byte counter equals
// the encoded output size exactly, the point and chunk counters match
// the input, and — with a single worker, so no stage time overlaps —
// the per-stage time sum does not exceed the snapshot's wall time.
func TestSnapshotReconciles(t *testing.T) {
	const (
		n           = 20_000
		chunkPoints = 4096
		wantChunks  = (n + chunkPoints - 1) / chunkPoints
	)
	prev, cur := observeDataset(n)
	for _, s := range numarck.Strategies {
		t.Run(s.String(), func(t *testing.T) {
			rec := numarck.NewRecorder()
			enc := numarck.StreamEncoder{
				Opt:      numarck.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: s},
				Config:   numarck.StreamConfig{ChunkPoints: chunkPoints, Workers: 1},
				Recorder: rec,
			}
			var out bytes.Buffer
			if _, err := enc.Encode(&out, "obs", 1, numarck.SliceSource(prev), numarck.SliceSource(cur)); err != nil {
				t.Fatal(err)
			}
			snap := rec.Snapshot()

			if got := snap.Counters["bytes_written"]; got != int64(out.Len()) {
				t.Errorf("bytes_written = %d, encoded output is %d bytes", got, out.Len())
			}
			if got := snap.Counters["points_encoded"]; got != n {
				t.Errorf("points_encoded = %d, want %d", got, n)
			}
			if got := snap.Counters["chunks_encoded"]; got != wantChunks {
				t.Errorf("chunks_encoded = %d, want %d", got, wantChunks)
			}
			// Pass 1 reads prev+cur (16 bytes per point); an uncapped run
			// caches the ratios, so pass 2 re-reads only cur (8 bytes per
			// point) for the exact values.
			if got := snap.Counters["bytes_read"]; got != 24*n {
				t.Errorf("bytes_read = %d, want %d", got, 24*n)
			}
			if sum := snap.StageTotalNs(); sum > snap.WallNs {
				t.Errorf("single-worker stage time sum %dns exceeds wall time %dns", sum, snap.WallNs)
			}
			for _, st := range snap.Stages {
				if st.Count == 0 {
					continue
				}
				var bucketed int64
				for _, b := range st.Buckets {
					bucketed += b.Count
				}
				if bucketed != st.Count {
					t.Errorf("stage %s: bucket counts sum to %d, want %d observations", st.Name, bucketed, st.Count)
				}
			}

			// Decode side: a fresh recorder must account for every point
			// and chunk it reconstructed.
			drec := numarck.NewRecorder()
			dec := numarck.StreamDecoder{
				Config:   numarck.StreamConfig{Workers: 1},
				Recorder: drec,
			}
			var got int
			err := dec.Decode(bytes.NewReader(out.Bytes()), int64(out.Len()), numarck.SliceSource(prev), func(vals []float64) error {
				got += len(vals)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			dsnap := drec.Snapshot()
			if c := dsnap.Counters["points_decoded"]; c != int64(got) || got != n {
				t.Errorf("points_decoded = %d, emitted %d, want %d", c, got, n)
			}
			if c := dsnap.Counters["chunks_decoded"]; c != wantChunks {
				t.Errorf("chunks_decoded = %d, want %d", c, wantChunks)
			}
			if sum := dsnap.StageTotalNs(); sum > dsnap.WallNs {
				t.Errorf("single-worker decode stage sum %dns exceeds wall %dns", sum, dsnap.WallNs)
			}
		})
	}
}

// TestWithRecorderInMemory checks the facade option constructor feeds
// the in-memory Encode/Decode counters.
func TestWithRecorderInMemory(t *testing.T) {
	prev, cur := observeDataset(5000)
	rec := numarck.NewRecorder()
	opt := numarck.WithRecorder(numarck.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: numarck.EqualWidth}, rec)
	enc, err := numarck.Encode(prev, cur, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Decode(prev); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if got := snap.Counters["points_encoded"]; got != 5000 {
		t.Errorf("points_encoded = %d, want 5000", got)
	}
	if got := snap.Counters["points_decoded"]; got != 5000 {
		t.Errorf("points_decoded = %d, want 5000", got)
	}
	for _, stage := range []string{"ratio", "table", "assign", "decode"} {
		if st := snap.Stage(stage); st.Count == 0 {
			t.Errorf("stage %s was never observed", stage)
		}
	}
}

// TestNilRecorderStreams checks the zero-value encoder (no recorder)
// still produces byte-identical output to an instrumented one: the
// no-op path must not change behavior, only skip accounting.
func TestNilRecorderStreams(t *testing.T) {
	prev, cur := observeDataset(10_000)
	opt := numarck.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: numarck.EqualWidth}
	cfg := numarck.StreamConfig{ChunkPoints: 4096, Workers: 1}

	var plain, observed bytes.Buffer
	if _, err := (numarck.StreamEncoder{Opt: opt, Config: cfg}).Encode(&plain, "obs", 1, numarck.SliceSource(prev), numarck.SliceSource(cur)); err != nil {
		t.Fatal(err)
	}
	rec := numarck.NewRecorder()
	if _, err := (numarck.StreamEncoder{Opt: opt, Config: cfg, Recorder: rec}).Encode(&observed, "obs", 1, numarck.SliceSource(prev), numarck.SliceSource(cur)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), observed.Bytes()) {
		t.Fatalf("instrumented encode produced different bytes (%d vs %d)", observed.Len(), plain.Len())
	}
}

// TestRecoveryCountersZeroOnCleanRun checks the durability counter
// family stays at zero across a healthy write/reopen/restart cycle: a
// clean store must report no recovery work beyond the scan itself, and
// no quarantined chunks or torn files ever.
func TestRecoveryCountersZeroOnCleanRun(t *testing.T) {
	dir := t.TempDir() + "/store"
	st, err := numarck.CreateStore(dir, numarck.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: numarck.EqualWidth})
	if err != nil {
		t.Fatal(err)
	}
	prev, cur := observeDataset(3000)
	if err := st.WriteFull("obs", 0, prev); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteDelta("obs", 1, prev, cur); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rec := numarck.NewRecorder()
	st2, err := numarck.OpenStoreObserved(dir, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Recovery().Clean() {
		t.Fatalf("clean store reported recovery work: %s", st2.Recovery())
	}
	if _, err := st2.Restart("obs", 1); err != nil {
		t.Fatal(err)
	}
	if _, pde, err := st2.RestartSalvage("obs", 1); err != nil || pde != nil {
		t.Fatalf("salvage restart of clean store: pde=%v err=%v", pde, err)
	}
	snap := rec.Snapshot()
	if got := snap.Counters["recovery_scans"]; got != 1 {
		t.Errorf("recovery_scans = %d, want 1 (the open-time scan)", got)
	}
	// index_rebuilds stays zero too: a cleanly closed writer leaves a
	// fresh CHAININDEX that the reopen adopts instead of rebuilding.
	for _, c := range []string{"chunks_quarantined", "torn_files_detected", "index_rebuilds", "lock_takeovers"} {
		if got := snap.Counters[c]; got != 0 {
			t.Errorf("%s = %d on a clean run, want 0", c, got)
		}
	}
}
