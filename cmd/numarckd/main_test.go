package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"numarck/internal/checkpoint"
	"numarck/internal/server"
)

// startDaemon runs the daemon lifecycle in a goroutine against a temp
// root and returns its bound address, the cancel that stands in for
// SIGTERM, and a wait that returns run's error.
func startDaemon(t *testing.T, root string, extra ...string) (addr string, sigterm func(), wait func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	args := append([]string{"-addr", "127.0.0.1:0", "-root", root}, extra...)
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var out bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	go func() { errc <- run(ctx, args, w, w, ready) }()
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	t.Cleanup(cancel)
	return addr, cancel, func() error {
		select {
		case err := <-errc:
			mu.Lock()
			defer mu.Unlock()
			if !strings.Contains(out.String(), "draining") {
				t.Errorf("daemon log missing drain notice:\n%s", out.String())
			}
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never exited after signal")
			return nil
		}
	}
}

// writerFunc adapts a function to io.Writer for capturing daemon logs.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// floatBytes renders values as the wire format: raw little-endian f64.
func floatBytes(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		bits := math.Float64bits(v)
		for b := 0; b < 8; b++ {
			buf[8*i+b] = byte(bits >> (8 * b))
		}
	}
	return buf
}

func testVals(iter, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Cos(float64(i)*0.02) + 0.01*float64(iter)
	}
	return vals
}

// TestDaemonGracefulDrain drives the full lifecycle: serve a commit,
// signal shutdown while another commit is in flight, and require that
// after run returns the store reopens cleanly with a complete chain —
// every accepted write fully committed, nothing torn.
func TestDaemonGracefulDrain(t *testing.T) {
	root := t.TempDir()
	addr, sigterm, wait := startDaemon(t, root)
	c := &server.Client{Base: "http://" + addr, Tenant: "sim0"}

	const n = 65536
	if _, err := c.Push("dens", 0, bytes.NewReader(floatBytes(testVals(0, n))), nil); err != nil {
		t.Fatal(err)
	}

	// Start a delta commit whose body trickles in, then signal while it
	// is in flight: drain must let it finish (or refuse it whole), never
	// half-commit.
	pr, pw := io.Pipe()
	pushErr := make(chan error, 1)
	go func() {
		_, err := c.Push("dens", 1, pr, nil)
		pushErr <- err
	}()
	body := floatBytes(testVals(1, n))
	if _, err := pw.Write(body[:len(body)/2]); err != nil {
		t.Fatal(err)
	}
	sigterm()
	time.Sleep(50 * time.Millisecond) // let drain flip while the body is still open
	// The write or close can fail if the daemon concluded the request
	// early (e.g. refused it whole); the push error below is the truth.
	if _, err := pw.Write(body[len(body)/2:]); err != nil {
		t.Logf("tail write: %v", err)
	}
	//lint:ignore errcheck early-concluded request also closes the pipe; pushErr carries the outcome
	pw.Close()
	inFlightErr := <-pushErr
	t.Logf("in-flight push outcome: %v", inFlightErr)

	if err := wait(); err != nil {
		t.Fatalf("run returned %v", err)
	}

	// New work is refused once the daemon is gone.
	if _, err := c.Push("dens", 2, bytes.NewReader(floatBytes(testVals(2, n))), nil); err == nil {
		t.Fatal("push succeeded after shutdown")
	}

	// The store must reopen clean: lock free, chain complete up to the
	// last acknowledged iteration, deep verify silent.
	st, err := checkpoint.Open(filepath.Join(root, "sim0"))
	if err != nil {
		t.Fatalf("store did not reopen cleanly after drain: %v", err)
	}
	defer func() {
		//lint:ignore errcheck test store teardown
		st.Close()
	}()
	issues, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("store has issues after drain: %v", issues)
	}
	latest, err := st.LatestRestorable("dens")
	if err != nil {
		t.Fatal(err)
	}
	if inFlightErr == nil {
		// The in-flight commit was acknowledged: it must be durable.
		if latest != 1 {
			t.Fatalf("acknowledged iteration 1 lost: latest restorable = %d", latest)
		}
	} else if latest != 0 {
		// Refused whole: the pre-signal state stands untouched.
		t.Fatalf("refused commit left residue: latest restorable = %d", latest)
	}
	vals, err := st.Restart("dens", latest)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != n {
		t.Fatalf("restart returned %d points, want %d", len(vals), n)
	}
}

// TestDaemonReadyzFlip checks the probe contract around drain:
// /readyz answers 200 while serving and 503 once the signal lands,
// while /healthz stays 200 throughout.
func TestDaemonReadyzFlip(t *testing.T) {
	addr, sigterm, wait := startDaemon(t, t.TempDir())
	get := func(path string) int {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return -1
		}
		//lint:ignore errcheck probe body; status is the signal
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != 200 {
		t.Fatalf("/readyz while serving = %d", code)
	}
	sigterm()
	// Shutdown closes the listener once idle; catch the 503 window or
	// accept that the daemon is already gone.
	code := get("/readyz")
	if code != 503 && code != -1 {
		t.Fatalf("/readyz after signal = %d, want 503 or connection refused", code)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonFlagErrors checks the daemon refuses to start without a
// root and with malformed options.
func TestDaemonFlagErrors(t *testing.T) {
	var sink bytes.Buffer
	if err := run(context.Background(), nil, &sink, &sink, nil); err == nil {
		t.Fatal("run without -root succeeded")
	}
	err := run(context.Background(), []string{"-root", t.TempDir(), "-strategy", "nope"}, &sink, &sink, nil)
	if err == nil {
		t.Fatal("run with unknown strategy succeeded")
	}
	err = run(context.Background(), []string{"-root", t.TempDir(), "-e", "-1"}, &sink, &sink, nil)
	if err == nil {
		t.Fatal("run with negative error bound succeeded")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("wrong error: %v", err)
	}
}
