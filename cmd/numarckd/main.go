// Command numarckd is the NUMARCK checkpoint service daemon: a
// multi-tenant HTTP front end over per-tenant checkpoint stores and
// the out-of-core codec pipeline (see internal/server).
//
// Usage:
//
//	numarckd -root /var/lib/numarck [-addr :8377] [-capacity bytes]
//	         [-budget bytes] [-chunk points] [-workers n]
//	         [-e 0.001] [-b 8] [-strategy clustering]
//	         [-admit-wait 2s] [-drain-timeout 30s]
//	         [-janitor-interval 1m] [-spool-ttl 1h] [-session-ttl 24h]
//
// Each tenant's store lives at root/<tenant>; stores are created
// lazily on a tenant's first commit with the daemon's default encode
// options (-e/-b/-strategy), and per-request query parameters override
// the encode and pipeline defaults. -budget caps each single encode
// pipeline's buffer memory (the chunk resolver shrinks workers and
// chunk size to fit); -capacity caps the sum across concurrent
// requests — when it is exhausted, requests queue up to -admit-wait
// and are then refused with 429 + Retry-After rather than OOMing the
// daemon.
//
// A self-healing janitor sweeps every -janitor-interval: spool scratch
// files and resumable upload sessions idle past their TTLs are reaped,
// and stale writer locks left by crashed processes are recovered, with
// the tallies published under /metrics as janitor counters.
//
// On SIGTERM or SIGINT the daemon drains: /readyz flips to 503, new
// API requests get 503, and in-flight commits run to completion —
// releasing their store locks — before the listener closes. A second
// signal, or -drain-timeout expiring, abandons the wait.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"numarck/internal/chunk"
	"numarck/internal/core"
	"numarck/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "numarckd: %v\n", err)
		os.Exit(1)
	}
}

// run is the daemon's whole lifecycle, factored out of main so tests
// can drive it: parse flags, build the server, serve until ctx is
// done, then drain. If ready is non-nil it receives the bound listen
// address once the daemon is accepting connections.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("numarckd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8377", "listen address")
	root := fs.String("root", "", "tenant store root directory (required)")
	capacity := fs.Int64("capacity", 0, "memory governor: total admitted bytes across concurrent requests (0 = ungoverned)")
	budget := fs.Int64("budget", 0, "per-pipeline memory budget in bytes (0 = no cap)")
	chunkPoints := fs.Int("chunk", 0, "points per chunk for delta encodes (0 = default)")
	workers := fs.Int("workers", 0, "concurrent chunks per pipeline (0 = GOMAXPROCS)")
	e := fs.Float64("e", 0.001, "default error bound E as a fraction")
	b := fs.Int("b", 8, "default index bits B")
	strategyName := fs.String("strategy", "clustering", "default strategy: equal-width | log-scale | clustering")
	admitWait := fs.Duration("admit-wait", 2*time.Second, "how long a request may wait for governor admission before 429")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long drain waits for in-flight requests")
	janitorInterval := fs.Duration("janitor-interval", time.Minute, "how often the self-healing janitor sweeps (0 disables it)")
	spoolTTL := fs.Duration("spool-ttl", time.Hour, "janitor: reap spool scratch files idle longer than this")
	sessionTTL := fs.Duration("session-ttl", 24*time.Hour, "janitor: reap upload sessions idle longer than this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *root == "" {
		fs.Usage()
		return fmt.Errorf("-root is required")
	}
	strategy, err := core.ParseStrategy(*strategyName)
	if err != nil {
		return err
	}
	cfg := server.Config{
		Root:          *root,
		Opt:           core.Options{ErrorBound: *e, IndexBits: *b, Strategy: strategy},
		Chunk:         chunk.Config{ChunkPoints: *chunkPoints, Workers: *workers, BudgetBytes: *budget},
		CapacityBytes: *capacity,
		AdmitWait:     *admitWait,
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	resolved, err := chunk.ResolveConfig(cfg.Chunk)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "numarckd: listening on %s, root %s\n", ln.Addr(), *root)
	fmt.Fprintf(stdout, "numarckd: pipeline plan: %d workers x %d-point chunks, peak %d bytes/pipeline; governor capacity %d bytes\n",
		resolved.Config.Workers, resolved.Config.ChunkPoints, resolved.PeakBufferBytes, *capacity)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	if *janitorInterval > 0 {
		go srv.RunJanitor(ctx, server.JanitorConfig{
			Interval: *janitorInterval, SpoolTTL: *spoolTTL, SessionTTL: *sessionTTL,
		})
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Drain: stop admitting (readyz 503, API 503), then let in-flight
	// commits finish and release their store locks before the
	// listener closes.
	fmt.Fprintln(stdout, "numarckd: draining")
	srv.StartDrain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "numarckd: stopped")
	return nil
}
