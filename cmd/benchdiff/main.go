// Command benchdiff compares two BENCH_codec.json files produced by
// `make bench` (or the codec-bench experiment) and prints the per-row
// and per-stage deltas: headline encode/decode times per strategy, the
// decode worker rows (env-limited ones starred), encoded size, and the
// streaming pipeline's per-stage time breakdown. It is informational —
// it never fails on a regression, it just makes one impossible to miss.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
package main

import (
	"flag"
	"fmt"
	"os"

	"numarck/internal/experiments"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1)); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath string) error {
	old, err := experiments.LoadCodecBench(oldPath)
	if err != nil {
		return err
	}
	new, err := experiments.LoadCodecBench(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("%s -> %s\n", oldPath, newPath)
	return experiments.DiffCodecBench(old, new, os.Stdout)
}
