// Command experiments regenerates the tables and figures of the
// NUMARCK paper's evaluation section (§III) on the synthetic FLASH and
// CMIP5 substitutes. Each experiment prints the rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	experiments -exp all            # everything (the EXPERIMENTS.md run)
//	experiments -exp fig4 -iters 60
//	experiments -exp table1 -iters 50
package main

import (
	"flag"
	"fmt"
	"os"

	"numarck/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "fig1|fig3|fig4|fig5|fig6|fig7|table1|table2|fig8|ablations|scaling|codec-bench|all")
	iters := flag.Int("iters", 0, "iterations per experiment (0 = per-experiment paper default)")
	seed := flag.Int64("seed", experiments.DefaultSeed, "workload seed")
	points := flag.Int("points", 0, "codec-bench: dataset points (0 = default)")
	jsonPath := flag.String("json", "", "codec-bench: also write machine-readable results to this file")
	flag.Parse()

	if err := run(*exp, *iters, *seed, *points, *jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// pick returns the user-requested iteration count or the experiment's
// paper default.
func pick(iters, def int) int {
	if iters > 0 {
		return iters
	}
	return def
}

func run(exp string, iters int, seed int64, points int, jsonPath string) error {
	out := os.Stdout
	all := exp == "all"
	any := false

	if all || exp == "fig1" {
		any = true
		res, err := experiments.RunFig1(seed)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || exp == "fig3" {
		any = true
		res, err := experiments.RunFig3(seed)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || exp == "fig4" {
		any = true
		res, err := experiments.RunFig4(pick(iters, 60), seed)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || exp == "fig5" {
		any = true
		res, err := experiments.RunFig5(pick(iters, 40), seed)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || exp == "fig6" {
		any = true
		res, err := experiments.RunFig6(pick(iters, 100), seed)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || exp == "fig7" {
		any = true
		res, err := experiments.RunFig7(pick(iters, 60), seed)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || exp == "table1" || exp == "table2" {
		any = true
		res, err := experiments.RunTables(experiments.TableConfig{Iterations: pick(iters, 50), Seed: seed})
		if err != nil {
			return err
		}
		if all || exp == "table1" {
			if err := res.WriteTable1(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		if all || exp == "table2" {
			if err := res.WriteTable2(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}
	if all || exp == "fig8" {
		any = true
		res, err := experiments.RunFig8(experiments.Fig8Config{Seed: seed})
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out, "summary:")
		if err := res.WriteSummary(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || exp == "ablations" {
		any = true
		n := pick(iters, 20)
		seeding, err := experiments.RunSeedingAblation(n, seed)
		if err != nil {
			return err
		}
		if err := seeding.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		zero, err := experiments.RunZeroIndexAblation(n, seed)
		if err != nil {
			return err
		}
		if err := zero.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		fpcRes, err := experiments.RunFPCPostPass(n, seed)
		if err != nil {
			return err
		}
		if err := fpcRes.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		distRes, err := experiments.RunDistributedAblation(seed)
		if err != nil {
			return err
		}
		if err := distRes.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		lossless, err := experiments.RunLosslessComparison(seed)
		if err != nil {
			return err
		}
		if err := lossless.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		reuse, err := experiments.RunTableReuseAblation(n, seed)
		if err != nil {
			return err
		}
		if err := reuse.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ext, err := experiments.RunStrategyExtension(n/2+2, seed)
		if err != nil {
			return err
		}
		if err := ext.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || exp == "scaling" {
		any = true
		res, err := experiments.RunScalingExperiment(seed)
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	// codec-bench is a machine-dependent timing run, so it is not part
	// of "all" (which regenerates the paper's machine-independent
	// figures); `make bench` invokes it explicitly.
	if exp == "codec-bench" {
		any = true
		res, err := experiments.RunCodecBench(experiments.CodecBenchConfig{
			Points: points,
			Iters:  iters,
			Seed:   seed,
		})
		if err != nil {
			return err
		}
		if err := res.WriteText(out); err != nil {
			return err
		}
		if jsonPath != "" {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			werr := res.WriteJSON(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
			fmt.Fprintf(out, "wrote %s\n", jsonPath)
		}
	}
	if !any {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
