package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	// fig1 is the cheapest experiment; it exercises the dispatch path.
	if err := run("fig1", 0, 1, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithIterationOverride(t *testing.T) {
	if err := run("fig6", 4, 1, 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunCodecBenchSmoke(t *testing.T) {
	if err := run("codec-bench", 1, 1, 5000, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", 0, 1, 0, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPick(t *testing.T) {
	if pick(0, 7) != 7 || pick(3, 7) != 3 {
		t.Error("pick broken")
	}
}
