// Command climatesim generates synthetic CMIP5-like climate iterations
// and writes them into a NUMARCK checkpoint store or as raw float64
// dumps — the substitute for the CMIP5 archive data the paper uses.
//
// Usage:
//
//	climatesim -var rlus -iters 60 -dir ckpts [-e 0.001] [-b 8] [-strategy clustering] [-seed 1]
//	climatesim -var abs550aer -iters 60 -raw dumps
//	climatesim -var rlus -iters 60 -nc rlus.nc    # netCDF classic (time, lat, lon)
//	climatesim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
	"numarck/internal/ncdf"
	"numarck/internal/rawio"
	"numarck/internal/sim/climate"
)

func main() {
	variable := flag.String("var", "rlus", "CMIP5 variable name")
	iters := flag.Int("iters", 60, "number of iterations")
	dir := flag.String("dir", "", "write a NUMARCK checkpoint store here")
	raw := flag.String("raw", "", "write raw .f64 dumps here instead")
	nc := flag.String("nc", "", "write a netCDF classic file here instead")
	e := flag.Float64("e", 0.001, "error bound E as a fraction")
	b := flag.Int("b", 8, "index bits B")
	strategyName := flag.String("strategy", "clustering", "equal-width | log-scale | clustering")
	fullEvery := flag.Int("full-every", 0, "write a full checkpoint every N iterations (0: only the first)")
	seed := flag.Int64("seed", 1, "generator seed")
	list := flag.Bool("list", false, "list available variables and exit")
	flag.Parse()

	if *list {
		for _, s := range climate.Specs {
			kind := "daily"
			if s.StepDays > 1 {
				kind = "monthly"
			}
			fmt.Printf("%-10s base %.3g, %s\n", s.Name, s.Base, kind)
		}
		return
	}
	if err := run(*variable, *iters, *dir, *raw, *nc, *e, *b, *strategyName, *fullEvery, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "climatesim: %v\n", err)
		os.Exit(1)
	}
}

func run(variable string, iters int, dir, raw, nc string, e float64, b int, strategyName string, fullEvery int, seed int64) error {
	modes := 0
	for _, m := range []string{dir, raw, nc} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -dir, -raw, or -nc is required")
	}
	if iters < 1 {
		return fmt.Errorf("-iters must be >= 1")
	}
	g, err := climate.NewGenerator(variable, seed)
	if err != nil {
		return err
	}
	fmt.Printf("generating %s: %d iterations of %d points\n", variable, iters, g.Points())

	if nc != "" {
		f := &ncdf.File{
			Dims: []ncdf.Dim{
				{Name: "time", Len: iters},
				{Name: "lat", Len: climate.NLat},
				{Name: "lon", Len: climate.NLon},
			},
			GlobalAttrs: []ncdf.Attr{
				{Name: "title", Text: "synthetic CMIP5-like data (NUMARCK reproduction)"},
				{Name: "resolution_deg", Doubles: []float64{2.5, 2.0}},
			},
		}
		data := make([]float64, 0, iters*climate.N)
		for i := 0; i < iters; i++ {
			data = append(data, g.Iteration(i)...)
		}
		f.Vars = []ncdf.Var{{
			Name:   variable,
			DimIDs: []int{0, 1, 2},
			Attrs:  []ncdf.Attr{{Name: "seed", Doubles: []float64{float64(seed)}}},
			Data:   data,
		}}
		if err := f.WriteFile(nc); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d timesteps) to %s\n", variable, iters, nc)
		return nil
	}

	if raw != "" {
		if err := os.MkdirAll(raw, 0o755); err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			path := filepath.Join(raw, fmt.Sprintf("%s.%04d.f64", variable, i))
			if err := rawio.WriteFile(path, g.Iteration(i)); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d raw files to %s\n", iters, raw)
		return nil
	}

	strategy, err := core.ParseStrategy(strategyName)
	if err != nil {
		return err
	}
	st, err := checkpoint.Create(dir, core.Options{ErrorBound: e, IndexBits: b, Strategy: strategy})
	if err != nil {
		return err
	}
	w := checkpoint.NewWriter(st, fullEvery)
	for i := 0; i < iters; i++ {
		encs, err := w.Append(i, map[string][]float64{variable: g.Iteration(i)})
		if err != nil {
			//lint:ignore errcheck close-on-error; the iteration error takes precedence
			st.Close()
			return fmt.Errorf("iteration %d: %w", i, err)
		}
		if enc := encs[variable]; enc != nil {
			cr, _ := enc.CompressionRatio()
			fmt.Printf("iteration %3d: delta, incompressible %.2f%%, Eq.3 ratio %.2f%%\n", i, enc.Gamma()*100, cr)
		} else {
			fmt.Printf("iteration %3d: full (lossless)\n", i)
		}
	}
	return st.Close()
}
