package main

import (
	"os"
	"path/filepath"
	"testing"

	"numarck/internal/checkpoint"
	"numarck/internal/ncdf"
	"numarck/internal/sim/climate"
)

func TestRunStoreMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if err := run("rlus", 4, dir, "", "", 0.001, 8, "clustering", 0, 1); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.Restart("rlus", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 12960 {
		t.Errorf("restart returned %d points", len(rec))
	}
}

func TestRunRawMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "raw")
	if err := run("mrro", 3, "", dir, "", 0.001, 8, "clustering", 0, 1); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("raw dir has %d files, want 3", len(entries))
	}
}

func TestRunNCMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.nc")
	if err := run("rlds", 3, "", "", path, 0.001, 8, "clustering", 0, 1); err != nil {
		t.Fatal(err)
	}
	f, err := ncdf.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.VarByName("rlds")
	if err != nil {
		t.Fatal(err)
	}
	shape, err := f.Shape(v)
	if err != nil {
		t.Fatal(err)
	}
	if shape[0] != 3 || shape[1] != 90 || shape[2] != 144 {
		t.Errorf("shape = %v", shape)
	}
	// Slab 1 must equal the generator's iteration 1.
	slab, err := f.Slab(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := climate.NewGenerator("rlds", 1)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Iteration(1)
	for i := range want {
		if slab[i] != want[i] {
			t.Fatalf("slab differs at %d", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("rlus", 3, "", "", "", 0.001, 8, "clustering", 0, 1); err == nil {
		t.Error("neither -dir nor -raw rejected")
	}
	if err := run("rlus", 3, "a", "b", "", 0.001, 8, "clustering", 0, 1); err == nil {
		t.Error("both modes accepted")
	}
	if err := run("bogusvar", 3, t.TempDir()+"/x", "", "", 0.001, 8, "clustering", 0, 1); err == nil {
		t.Error("unknown variable accepted")
	}
	if err := run("rlus", 0, t.TempDir()+"/y", "", "", 0.001, 8, "clustering", 0, 1); err == nil {
		t.Error("zero iterations accepted")
	}
	if err := run("rlus", 3, t.TempDir()+"/z", "", "", 0.001, 8, "bogus", 0, 1); err == nil {
		t.Error("bogus strategy accepted")
	}
}
