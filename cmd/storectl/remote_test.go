package main

import (
	"bytes"
	"math"
	"net/http/httptest"
	"testing"

	"numarck/internal/core"
	"numarck/internal/server"
)

// TestRemoteCommands drives verify, stats, and latest against a
// daemon-held store through the lock-free chain API.
func TestRemoteCommands(t *testing.T) {
	strategy, err := core.ParseStrategy("clustering")
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{
		Root: t.TempDir(),
		Opt:  core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: strategy},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := &server.Client{Base: ts.URL, Tenant: "sim"}
	n := 1024
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(float64(i) * 0.05)
	}
	body := make([]byte, 8*n)
	for i, v := range vals {
		bits := math.Float64bits(v)
		for b := 0; b < 8; b++ {
			body[8*i+b] = byte(bits >> (8 * b))
		}
	}
	if _, err := c.Push("dens", 0, bytes.NewReader(body), nil); err != nil {
		t.Fatal(err)
	}

	if err := cmdVerify([]string{"-addr", ts.URL, "-tenant", "sim"}); err != nil {
		t.Fatalf("remote verify: %v", err)
	}
	if err := cmdStats([]string{"-addr", ts.URL, "-tenant", "sim"}); err != nil {
		t.Fatalf("remote stats: %v", err)
	}
	if err := cmdLatest([]string{"-addr", ts.URL, "-tenant", "sim"}); err != nil {
		t.Fatalf("remote latest: %v", err)
	}
	if err := cmdGC([]string{"-addr", ts.URL, "-tenant", "sim", "-keep", "0"}); err == nil {
		t.Fatal("remote gc should be refused")
	}
	if err := cmdVerify(nil); err == nil {
		t.Fatal("verify without -dir or -addr succeeded")
	}
}
