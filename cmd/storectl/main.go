// Command storectl inspects and maintains NUMARCK checkpoint stores.
//
// Usage:
//
//	storectl verify -dir store          # parse every file, check CRCs and chains
//	storectl stats  -dir store          # per-variable storage breakdown
//	storectl latest -dir store          # latest restorable iteration per variable
//	storectl gc     -dir store -keep 40 # drop checkpoints before the full <= 40
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"numarck/internal/checkpoint"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "latest":
		err = cmdLatest(os.Args[2:])
	case "gc":
		err = cmdGC(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "storectl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "storectl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  storectl verify -dir store
  storectl stats  -dir store
  storectl latest -dir store
  storectl gc     -dir store -keep N`)
}

// storeDir parses the common -dir flag.
func storeDir(fs *flag.FlagSet, args []string) (string, error) {
	dir := fs.String("dir", "", "checkpoint store directory")
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if *dir == "" {
		return "", fmt.Errorf("%s requires -dir", fs.Name())
	}
	return *dir, nil
}

// openStore opens the store read-write for maintenance commands that
// mutate it (verify's recovery scan, gc). The caller must Close it.
func openStore(fs *flag.FlagSet, args []string) (*checkpoint.Store, error) {
	dir, err := storeDir(fs, args)
	if err != nil {
		return nil, err
	}
	return checkpoint.Open(dir)
}

// openView opens the lock-free read view for pure reporting commands,
// so they work alongside a live writer and on read-only media.
func openView(fs *flag.FlagSet, args []string) (*checkpoint.ReadView, error) {
	dir, err := storeDir(fs, args)
	if err != nil {
		return nil, err
	}
	return checkpoint.OpenReadOnly(dir)
}

func cmdVerify(args []string) (err error) {
	st, err := openStore(flag.NewFlagSet("verify", flag.ExitOnError), args)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := st.Close(); err == nil {
			err = cerr
		}
	}()
	fmt.Println(st.IndexHealth())
	issues, err := st.Verify()
	if err != nil {
		return err
	}
	if len(issues) == 0 {
		fmt.Println("store is clean")
		return nil
	}
	for _, is := range issues {
		fmt.Println(is)
	}
	return fmt.Errorf("%d issue(s) found", len(issues))
}

func cmdStats(args []string) error {
	st, err := openView(flag.NewFlagSet("stats", flag.ExitOnError), args)
	if err != nil {
		return err
	}
	stats, err := st.Stats()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variable\tfulls\tdeltas\tfull bytes\tdelta bytes\ttotal\titers")
	var totF, totD int64
	for _, s := range stats {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t[%d,%d]\n",
			s.Variable, s.Fulls, s.Deltas, s.FullBytes, s.DeltaBytes, s.TotalBytes(), s.FirstIter, s.LastIter)
		totF += s.FullBytes
		totD += s.DeltaBytes
	}
	fmt.Fprintf(tw, "total\t\t\t%d\t%d\t%d\t\n", totF, totD, totF+totD)
	return tw.Flush()
}

func cmdLatest(args []string) error {
	st, err := openView(flag.NewFlagSet("latest", flag.ExitOnError), args)
	if err != nil {
		return err
	}
	vars, err := st.Variables()
	if err != nil {
		return err
	}
	for _, v := range vars {
		latest, err := st.LatestRestorable(v)
		if err != nil {
			fmt.Printf("%s: %v\n", v, err)
			continue
		}
		fmt.Printf("%s: %d\n", v, latest)
	}
	return nil
}

func cmdGC(args []string) (err error) {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	keep := fs.Int("keep", -1, "keep restartability from this iteration onward")
	st, err := openStore(fs, args)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := st.Close(); err == nil {
			err = cerr
		}
	}()
	if *keep < 0 {
		return fmt.Errorf("gc requires -keep >= 0")
	}
	removed, err := st.GC(*keep)
	if err != nil {
		return err
	}
	fmt.Printf("removed %d file(s)\n", removed)
	return nil
}
