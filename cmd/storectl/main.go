// Command storectl inspects and maintains NUMARCK checkpoint stores.
//
// Usage:
//
//	storectl verify -dir store          # parse every file, check CRCs and chains
//	storectl stats  -dir store          # per-variable storage breakdown
//	storectl latest -dir store          # latest restorable iteration per variable
//	storectl gc     -dir store -keep 40 # drop checkpoints before the full <= 40
//
// verify, stats, and latest also take -addr http://host:8377 (with
// -tenant name) to report on a store held by a running numarckd daemon
// through its lock-free chain API instead of opening the directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"numarck/internal/checkpoint"
	"numarck/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "latest":
		err = cmdLatest(os.Args[2:])
	case "gc":
		err = cmdGC(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "storectl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "storectl: %s\n", server.OperatorMessage(err))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  storectl verify -dir store | -addr url [-tenant t]
  storectl stats  -dir store | -addr url [-tenant t]
  storectl latest -dir store | -addr url [-tenant t]
  storectl gc     -dir store -keep N`)
}

// target is where a command points: a local store directory, or (with
// -addr) a tenant inside a running numarckd daemon.
type target struct {
	dir    string
	addr   string
	tenant string
}

// targetFlags parses the common -dir and -addr/-tenant flags.
func targetFlags(fs *flag.FlagSet, args []string) (*target, error) {
	var tg target
	fs.StringVar(&tg.dir, "dir", "", "checkpoint store directory")
	fs.StringVar(&tg.addr, "addr", "", "numarckd base URL: report on a daemon-held store over its lock-free chain API")
	fs.StringVar(&tg.tenant, "tenant", "default", "daemon mode: tenant to report on")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if tg.dir == "" && tg.addr == "" {
		return nil, fmt.Errorf("%s requires -dir or -addr", fs.Name())
	}
	return &tg, nil
}

// openStore opens the store read-write for maintenance commands that
// mutate it (verify's recovery scan, gc). The caller must Close it.
func openStore(tg *target) (*checkpoint.Store, error) {
	return checkpoint.Open(tg.dir)
}

// openView opens the lock-free read view for pure reporting commands,
// so they work alongside a live writer and on read-only media.
func openView(tg *target) (*checkpoint.ReadView, error) {
	return checkpoint.OpenReadOnly(tg.dir)
}

func cmdVerify(args []string) (err error) {
	tg, err := targetFlags(flag.NewFlagSet("verify", flag.ExitOnError), args)
	if err != nil {
		return err
	}
	if tg.addr != "" {
		return remoteVerify(tg.addr, tg.tenant)
	}
	st, err := openStore(tg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := st.Close(); err == nil {
			err = cerr
		}
	}()
	fmt.Println(st.IndexHealth())
	issues, err := st.Verify()
	if err != nil {
		return err
	}
	if len(issues) == 0 {
		fmt.Println("store is clean")
		return nil
	}
	for _, is := range issues {
		fmt.Println(is)
	}
	return fmt.Errorf("%d issue(s) found", len(issues))
}

func cmdStats(args []string) error {
	tg, err := targetFlags(flag.NewFlagSet("stats", flag.ExitOnError), args)
	if err != nil {
		return err
	}
	if tg.addr != "" {
		return remoteStats(tg.addr, tg.tenant)
	}
	st, err := openView(tg)
	if err != nil {
		return err
	}
	stats, err := st.Stats()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variable\tfulls\tdeltas\tfull bytes\tdelta bytes\ttotal\titers")
	var totF, totD int64
	for _, s := range stats {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t[%d,%d]\n",
			s.Variable, s.Fulls, s.Deltas, s.FullBytes, s.DeltaBytes, s.TotalBytes(), s.FirstIter, s.LastIter)
		totF += s.FullBytes
		totD += s.DeltaBytes
	}
	fmt.Fprintf(tw, "total\t\t\t%d\t%d\t%d\t\n", totF, totD, totF+totD)
	return tw.Flush()
}

func cmdLatest(args []string) error {
	tg, err := targetFlags(flag.NewFlagSet("latest", flag.ExitOnError), args)
	if err != nil {
		return err
	}
	if tg.addr != "" {
		return remoteLatest(tg.addr, tg.tenant)
	}
	st, err := openView(tg)
	if err != nil {
		return err
	}
	vars, err := st.Variables()
	if err != nil {
		return err
	}
	for _, v := range vars {
		latest, err := st.LatestRestorable(v)
		if err != nil {
			fmt.Printf("%s: %v\n", v, err)
			continue
		}
		fmt.Printf("%s: %d\n", v, latest)
	}
	return nil
}

func cmdGC(args []string) (err error) {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	keep := fs.Int("keep", -1, "keep restartability from this iteration onward")
	tg, err := targetFlags(fs, args)
	if err != nil {
		return err
	}
	if tg.addr != "" {
		return fmt.Errorf("gc mutates the store; run it against -dir, not a live daemon")
	}
	st, err := openStore(tg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := st.Close(); err == nil {
			err = cerr
		}
	}()
	if *keep < 0 {
		return fmt.Errorf("gc requires -keep >= 0")
	}
	removed, err := st.GC(*keep)
	if err != nil {
		return err
	}
	fmt.Printf("removed %d file(s)\n", removed)
	return nil
}
