package main

// Remote mode: with -addr, storectl's reporting commands run against a
// numarckd daemon's lock-free chain API instead of opening the store
// directory themselves — safe while the daemon is writing.

import (
	"fmt"
	"os"
	"text/tabwriter"

	"numarck/internal/server"
)

// remoteVerify asks the daemon for a deep chain report (?verify=1) and
// renders it like the local verify command.
func remoteVerify(addr, tenant string) error {
	c := &server.Client{Base: addr, Tenant: tenant}
	tc, err := c.TenantChain(true)
	if err != nil {
		return err
	}
	fmt.Printf("index: present=%v fresh=%v seq=%d entries=%d\n",
		tc.Index.Present, tc.Index.Fresh, tc.Index.Seq, tc.Index.Entries)
	if len(tc.Issues) == 0 {
		fmt.Println("store is clean")
		return nil
	}
	for _, is := range tc.Issues {
		fmt.Println(is)
	}
	return fmt.Errorf("%d issue(s) found", len(tc.Issues))
}

// remoteStats renders the daemon's per-series storage breakdown with
// the same table the local stats command prints.
func remoteStats(addr, tenant string) error {
	c := &server.Client{Base: addr, Tenant: tenant}
	tc, err := c.TenantChain(false)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variable\tfulls\tdeltas\tfull bytes\tdelta bytes\ttotal\titers")
	var totF, totD int64
	for _, s := range tc.Stats {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t[%d,%d]\n",
			s.Variable, s.Fulls, s.Deltas, s.FullBytes, s.DeltaBytes, s.TotalBytes(), s.FirstIter, s.LastIter)
		totF += s.FullBytes
		totD += s.DeltaBytes
	}
	fmt.Fprintf(tw, "total\t\t\t%d\t%d\t%d\t\n", totF, totD, totF+totD)
	return tw.Flush()
}

// remoteLatest prints each series' latest restorable iteration from
// the daemon's chain report.
func remoteLatest(addr, tenant string) error {
	c := &server.Client{Base: addr, Tenant: tenant}
	tc, err := c.TenantChain(false)
	if err != nil {
		return err
	}
	for _, v := range tc.Variables {
		if latest, ok := tc.Latest[v]; ok {
			fmt.Printf("%s: %d\n", v, latest)
		} else {
			fmt.Printf("%s: not restorable\n", v)
		}
	}
	return nil
}
