package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
)

func buildStore(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := checkpoint.Create(dir, core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 500)
	for i := range data {
		data[i] = 10 + rng.Float64()
	}
	w := checkpoint.NewWriter(st, 3)
	for it := 0; it < 6; it++ {
		if it > 0 {
			for i := range data {
				data[i] *= 1 + rng.NormFloat64()*0.001
			}
		}
		if _, err := w.Append(it, map[string][]float64{"v": data}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestVerifyStatsLatestGC(t *testing.T) {
	dir := buildStore(t)
	if err := cmdVerify([]string{"-dir", dir}); err != nil {
		t.Errorf("verify: %v", err)
	}
	if err := cmdStats([]string{"-dir", dir}); err != nil {
		t.Errorf("stats: %v", err)
	}
	if err := cmdLatest([]string{"-dir", dir}); err != nil {
		t.Errorf("latest: %v", err)
	}
	if err := cmdGC([]string{"-dir", dir, "-keep", "5"}); err != nil {
		t.Errorf("gc: %v", err)
	}
	// Still verifies clean after GC.
	if err := cmdVerify([]string{"-dir", dir}); err != nil {
		t.Errorf("verify after gc: %v", err)
	}
}

func TestMissingFlags(t *testing.T) {
	if err := cmdVerify([]string{}); err == nil {
		t.Error("verify without -dir accepted")
	}
	dir := buildStore(t)
	if err := cmdGC([]string{"-dir", dir}); err == nil {
		t.Error("gc without -keep accepted")
	}
	if err := cmdVerify([]string{"-dir", filepath.Join(dir, "missing")}); err == nil {
		t.Error("missing store accepted")
	}
}
