package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the driver to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module tinymod\n\ngo 1.22\n"

// TestRunFindsAndSuppresses drives the binary end to end on a module
// with one real finding per comparison plus one suppressed finding:
// exit 1, the finding printed with position, the suppression counted.
func TestRunFindsAndSuppresses(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"pkg/pkg.go": `// Package pkg exercises the driver end to end.
package pkg

func equal(a, b float64) bool { return a == b }

func suppressed(a, b float64) bool {
	//lint:ignore floatcmp exactness is the contract under test
	return a == b
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	out := stdout.String()
	if !strings.Contains(out, "pkg.go:4:") || !strings.Contains(out, "floatcmp") {
		t.Errorf("finding missing position or analyzer name:\n%s", out)
	}
	if strings.Contains(out, "pkg.go:9") {
		t.Errorf("suppressed finding leaked into output:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "1 finding(s), 1 suppressed") {
		t.Errorf("summary = %q", stderr.String())
	}
}

// TestRunCleanModule: a module with no findings exits 0.
func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"pkg/pkg.go": `// Package pkg is finding-free.
package pkg

func add(a, b int) int { return a + b }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, &stderr)
	}
}

// TestRunDroppedCheckpointError: the errcheck analyzer fires across
// package boundaries inside the analyzed module, mirroring the
// internal/checkpoint contract in the real repo.
func TestRunDroppedCheckpointError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"store/store.go": `// Package store drops an error on purpose.
package store

import "os"

func drop(f *os.File) {
	f.Close()
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "./store"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, &stderr)
	}
	if !strings.Contains(stdout.String(), "errcheck") {
		t.Errorf("expected an errcheck finding:\n%s", &stdout)
	}
}

// TestRunJSONAndList covers the alternate output modes.
func TestRunJSONAndList(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"pkg/pkg.go": `// Package pkg holds one floatcmp finding.
package pkg

func equal(a, b float64) bool { return a != b }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, &stderr)
	}
	js := stdout.String()
	if !strings.Contains(js, `"analyzer": "floatcmp"`) && !strings.Contains(js, `"analyzer":"floatcmp"`) {
		t.Errorf("JSON output missing analyzer field:\n%s", js)
	}

	stdout.Reset()
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{
		"floatcmp", "waitgroup", "ctxleak", "errcheck", "bindex", "doccomment",
		"fsseam", "errwrap", "atomicfield", "goroleak", "obsstage",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, &stdout)
		}
	}
}

// TestRunOnlyList: -only takes a comma-separated analyzer list; unknown
// names are usage errors.
func TestRunOnlyList(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"pkg/pkg.go": `// Package pkg has one floatcmp and one errcheck finding.
package pkg

import "os"

func equal(a, b float64) bool { return a == b }

func drop(f *os.File) { f.Close() }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "-only", "floatcmp", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("-only floatcmp exit = %d, want 1\nstderr: %s", code, &stderr)
	}
	if out := stdout.String(); !strings.Contains(out, "floatcmp") || strings.Contains(out, "errcheck") {
		t.Errorf("-only floatcmp should report floatcmp findings only:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-dir", dir, "-only", "floatcmp, errcheck", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("-only floatcmp,errcheck exit = %d, want 1\nstderr: %s", code, &stderr)
	}
	if out := stdout.String(); !strings.Contains(out, "floatcmp") || !strings.Contains(out, "errcheck") {
		t.Errorf("-only floatcmp,errcheck should report both:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-dir", dir, "-only", "floatcmp,nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("-only with unknown name exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown analyzer "nosuch"`) {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// TestRunSARIF: -sarif writes a SARIF 2.1.0 log alongside the normal
// output, with the finding as a result and the analyzer as a rule.
func TestRunSARIF(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"pkg/pkg.go": `// Package pkg has one floatcmp finding.
package pkg

func equal(a, b float64) bool { return a == b }
`,
	})
	sarifPath := filepath.Join(t.TempDir(), "lint.sarif")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "-sarif", sarifPath, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, &stderr)
	}
	raw, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatalf("SARIF file not written: %v", err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version %q, %d runs; want 2.1.0 and 1 run", doc.Version, len(doc.Runs))
	}
	run0 := doc.Runs[0]
	if run0.Tool.Driver.Name != "numarcklint" {
		t.Errorf("driver name = %q", run0.Tool.Driver.Name)
	}
	if len(run0.Results) != 1 || run0.Results[0].RuleID != "floatcmp" {
		t.Fatalf("results = %+v, want one floatcmp result", run0.Results)
	}
	if uri := run0.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "pkg/pkg.go" {
		t.Errorf("result URI = %q, want module-relative pkg/pkg.go", uri)
	}
}

// TestRunFix: -fix applies suggested fixes (here: deleting an unused
// suppression) and re-analyzes, so a module whose only finding is
// fixable ends at exit 0 with the source rewritten.
func TestRunFix(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"pkg/pkg.go": `// Package pkg carries a stale suppression.
package pkg

func add(a, b int) int {
	//lint:ignore floatcmp nothing here compares floats anymore
	return a + b
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "-fix", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	if !strings.Contains(stderr.String(), "applied 1 fix(es)") {
		t.Errorf("stderr = %q, want fix summary", stderr.String())
	}
	src, err := os.ReadFile(filepath.Join(dir, "pkg", "pkg.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(src), "lint:ignore") {
		t.Errorf("stale suppression survived -fix:\n%s", src)
	}
}

// TestRunBadUsage: unknown flags and unmatched patterns exit 2.
func TestRunBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
	dir := writeModule(t, map[string]string{
		"go.mod":   goMod,
		"p/p.go":   "package p\n",
		"p/doc.go": "package p\n",
	})
	if code := run([]string{"-dir", dir, "./nonexistent"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unmatched pattern exit = %d, want 2", code)
	}
}
