package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the driver to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module tinymod\n\ngo 1.22\n"

// TestRunFindsAndSuppresses drives the binary end to end on a module
// with one real finding per comparison plus one suppressed finding:
// exit 1, the finding printed with position, the suppression counted.
func TestRunFindsAndSuppresses(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"pkg/pkg.go": `// Package pkg exercises the driver end to end.
package pkg

func equal(a, b float64) bool { return a == b }

func suppressed(a, b float64) bool {
	//lint:ignore floatcmp exactness is the contract under test
	return a == b
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	out := stdout.String()
	if !strings.Contains(out, "pkg.go:4:") || !strings.Contains(out, "floatcmp") {
		t.Errorf("finding missing position or analyzer name:\n%s", out)
	}
	if strings.Contains(out, "pkg.go:9") {
		t.Errorf("suppressed finding leaked into output:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "1 finding(s), 1 suppressed") {
		t.Errorf("summary = %q", stderr.String())
	}
}

// TestRunCleanModule: a module with no findings exits 0.
func TestRunCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"pkg/pkg.go": `// Package pkg is finding-free.
package pkg

func add(a, b int) int { return a + b }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, &stderr)
	}
}

// TestRunDroppedCheckpointError: the errcheck analyzer fires across
// package boundaries inside the analyzed module, mirroring the
// internal/checkpoint contract in the real repo.
func TestRunDroppedCheckpointError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"store/store.go": `// Package store drops an error on purpose.
package store

import "os"

func drop(f *os.File) {
	f.Close()
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "./store"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, &stderr)
	}
	if !strings.Contains(stdout.String(), "errcheck") {
		t.Errorf("expected an errcheck finding:\n%s", &stdout)
	}
}

// TestRunJSONAndList covers the alternate output modes.
func TestRunJSONAndList(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"pkg/pkg.go": `// Package pkg holds one floatcmp finding.
package pkg

func equal(a, b float64) bool { return a != b }
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir, "-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, &stderr)
	}
	js := stdout.String()
	if !strings.Contains(js, `"analyzer": "floatcmp"`) && !strings.Contains(js, `"analyzer":"floatcmp"`) {
		t.Errorf("JSON output missing analyzer field:\n%s", js)
	}

	stdout.Reset()
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"floatcmp", "waitgroup", "ctxleak", "errcheck", "bindex", "doccomment"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, &stdout)
		}
	}
}

// TestRunBadUsage: unknown flags and unmatched patterns exit 2.
func TestRunBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
	dir := writeModule(t, map[string]string{
		"go.mod":   goMod,
		"p/p.go":   "package p\n",
		"p/doc.go": "package p\n",
	})
	if code := run([]string{"-dir", dir, "./nonexistent"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unmatched pattern exit = %d, want 2", code)
	}
}
