// Command numarcklint runs this repository's custom static-analysis
// passes (internal/analysis/analyzers) over the module. It is part of
// the tier-1 verification recipe alongside go vet, the race detector
// and the fuzz smoke tests — see the Makefile `verify` target.
//
// Usage:
//
//	numarcklint [-json] [-list] [-only a,b,...] [-sarif file] [-fix] [packages...]
//
// Package patterns follow the go tool's shape relative to the module
// root: "./..." (default) analyzes everything, "./internal/core" one
// package, "./internal/..." a subtree. Test files and testdata trees
// are not analyzed.
//
// -only restricts the run to a comma-separated list of analyzer names
// (see -list). -sarif additionally writes the findings as a SARIF 2.1.0
// log to the given file, for CI code-scanning annotations. -fix applies
// the suggested fixes the analyzers attach (error-verb rewrites,
// suppression cleanups) and re-reports what remains.
//
// Findings can be silenced in source with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the finding's line or the line above it; the reason is mandatory,
// and a suppression that no longer matches any finding is itself a
// finding.
//
// Exit status: 0 when clean, 1 when there are unsuppressed findings,
// 2 on usage or load errors (parse failures, type errors).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"numarck/internal/analysis"
	"numarck/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("numarcklint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("dir", ".", "directory inside the module to analyze")
	only := fs.String("only", "", "run only the named analyzers (comma-separated, see -list)")
	sarif := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to `file`")
	fix := fs.Bool("fix", false, "apply suggested fixes, then report what remains")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := analyzers.All()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *only != "" {
		byName := map[string]analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name()] = a
		}
		var sel []analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "numarcklint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			sel = append(sel, a)
		}
		if len(sel) == 0 {
			fmt.Fprintf(stderr, "numarcklint: -only names no analyzers\n")
			return 2
		}
		all = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := analysis.Load(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "numarcklint: %v\n", err)
		return 2
	}
	pkgs := selectPackages(mod, patterns)
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "numarcklint: no packages match %v\n", patterns)
		return 2
	}

	res := analysis.Run(mod, pkgs, all)
	if *fix && res.Fixable() > 0 {
		files, applied, skipped, err := analysis.ApplyFixes(res.Diagnostics)
		if err != nil {
			fmt.Fprintf(stderr, "numarcklint: applying fixes: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "numarcklint: applied %d fix(es) in %d file(s), %d skipped\n",
			applied, files, skipped)
		// Re-analyze: the fixes moved positions and may have resolved
		// (or, for suppression deletions, surfaced) findings.
		mod, err = analysis.Load(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "numarcklint: reload after fixes: %v\n", err)
			return 2
		}
		pkgs = selectPackages(mod, patterns)
		res = analysis.Run(mod, pkgs, all)
	}

	if *sarif != "" {
		f, err := os.Create(*sarif)
		if err != nil {
			fmt.Fprintf(stderr, "numarcklint: %v\n", err)
			return 2
		}
		werr := res.WriteSARIF(f, mod.RootDir, all)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "numarcklint: writing SARIF: %v\n", werr)
			return 2
		}
	}

	if *jsonOut {
		if err := res.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "numarcklint: %v\n", err)
			return 2
		}
	} else {
		if err := res.WriteText(stdout); err != nil {
			fmt.Fprintf(stderr, "numarcklint: %v\n", err)
			return 2
		}
	}
	fmt.Fprintf(stderr, "numarcklint: %d finding(s), %d suppressed, %d package(s)\n",
		len(res.Diagnostics), res.Suppressed, res.Packages)
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// selectPackages filters the module's packages by the CLI patterns.
func selectPackages(mod *analysis.Module, patterns []string) []*analysis.Package {
	var pkgs []*analysis.Package
	for _, p := range mod.Packages {
		for _, pat := range patterns {
			if mod.Match(p, pat) {
				pkgs = append(pkgs, p)
				break
			}
		}
	}
	return pkgs
}
