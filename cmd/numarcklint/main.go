// Command numarcklint runs this repository's custom static-analysis
// passes (internal/analysis/analyzers) over the module. It is part of
// the tier-1 verification recipe alongside go vet, the race detector
// and the fuzz smoke tests — see the Makefile `verify` target.
//
// Usage:
//
//	numarcklint [-json] [-list] [-only analyzer] [packages...]
//
// Package patterns follow the go tool's shape relative to the module
// root: "./..." (default) analyzes everything, "./internal/core" one
// package, "./internal/..." a subtree. Test files and testdata trees
// are not analyzed.
//
// Findings can be silenced in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the finding's line or the line above it; the reason is mandatory.
//
// Exit status: 0 when clean, 1 when there are findings, 2 on usage or
// load errors (parse failures, type errors).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"numarck/internal/analysis"
	"numarck/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("numarcklint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("dir", ".", "directory inside the module to analyze")
	only := fs.String("only", "", "run a single analyzer by `name` (see -list)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := analyzers.All()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *only != "" {
		var sel []analysis.Analyzer
		for _, a := range all {
			if a.Name() == *only {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(stderr, "numarcklint: unknown analyzer %q (see -list)\n", *only)
			return 2
		}
		all = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := analysis.Load(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "numarcklint: %v\n", err)
		return 2
	}
	var pkgs []*analysis.Package
	for _, p := range mod.Packages {
		for _, pat := range patterns {
			if mod.Match(p, pat) {
				pkgs = append(pkgs, p)
				break
			}
		}
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "numarcklint: no packages match %v\n", patterns)
		return 2
	}

	res := analysis.Run(mod, pkgs, all)
	if *jsonOut {
		if err := res.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "numarcklint: %v\n", err)
			return 2
		}
	} else {
		if err := res.WriteText(stdout); err != nil {
			fmt.Fprintf(stderr, "numarcklint: %v\n", err)
			return 2
		}
	}
	fmt.Fprintf(stderr, "numarcklint: %d finding(s), %d suppressed, %d package(s)\n",
		len(res.Diagnostics), res.Suppressed, res.Packages)
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}
