// Command flashsim runs the FLASH-like hydrodynamics simulator and
// writes its checkpoints either into a NUMARCK checkpoint store or as
// raw float64 dumps, mirroring how the paper's FLASH runs produced the
// evaluation data.
//
// Usage:
//
//	flashsim -dir ckpts -checkpoints 20 -steps 3 [-blocks 9] [-e 0.001] [-b 8] [-strategy clustering] [-full-every 10] [-seed 1]
//	flashsim -raw dumps -checkpoints 20 -steps 3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
	"numarck/internal/rawio"
	"numarck/internal/sim/flash"
)

func main() {
	dir := flag.String("dir", "", "write a NUMARCK checkpoint store to this directory")
	raw := flag.String("raw", "", "write raw .f64 dumps to this directory instead")
	checkpoints := flag.Int("checkpoints", 20, "number of checkpoints to take")
	steps := flag.Int("steps", 3, "simulation steps between checkpoints")
	blocks := flag.Int("blocks", 9, "block grid size per side (blocks x blocks)")
	e := flag.Float64("e", 0.001, "error bound E as a fraction")
	b := flag.Int("b", 8, "index bits B")
	strategyName := flag.String("strategy", "clustering", "equal-width | log-scale | clustering")
	fullEvery := flag.Int("full-every", 0, "write a full checkpoint every N iterations (0: only the first)")
	seed := flag.Int64("seed", 1, "initial-condition seed")
	order2 := flag.Bool("order2", false, "use second-order (MUSCL) reconstruction")
	flag.Parse()

	if err := run(*dir, *raw, *checkpoints, *steps, *blocks, *e, *b, *strategyName, *fullEvery, *seed, *order2); err != nil {
		fmt.Fprintf(os.Stderr, "flashsim: %v\n", err)
		os.Exit(1)
	}
}

func run(dir, raw string, checkpoints, steps, blocks int, e float64, b int, strategyName string, fullEvery int, seed int64, order2 bool) (err error) {
	if (dir == "") == (raw == "") {
		return fmt.Errorf("exactly one of -dir or -raw is required")
	}
	if checkpoints < 1 || steps < 1 {
		return fmt.Errorf("-checkpoints and -steps must be >= 1")
	}
	sim, err := flash.New(flash.Config{BlocksX: blocks, BlocksY: blocks, Seed: seed, SecondOrder: order2})
	if err != nil {
		return err
	}
	fmt.Printf("running %d blocks (%d cells), %d checkpoints x %d steps\n",
		sim.Blocks(), sim.Cells(), checkpoints, steps)

	var w *checkpoint.Writer
	var st *checkpoint.Store
	if dir != "" {
		strategy, err := core.ParseStrategy(strategyName)
		if err != nil {
			return err
		}
		st, err = checkpoint.Create(dir, core.Options{ErrorBound: e, IndexBits: b, Strategy: strategy})
		if err != nil {
			return err
		}
		defer func() {
			if cerr := st.Close(); err == nil {
				err = cerr
			}
		}()
		w = checkpoint.NewWriter(st, fullEvery)
	} else if err := os.MkdirAll(raw, 0o755); err != nil {
		return err
	}

	for c := 0; c < checkpoints; c++ {
		sim.StepN(steps)
		snap := sim.Checkpoint()
		if w != nil {
			encs, err := w.Append(c, snap.Vars)
			if err != nil {
				return fmt.Errorf("checkpoint %d: %w", c, err)
			}
			if len(encs) == 0 {
				fmt.Printf("checkpoint %2d: full (lossless)\n", c)
				continue
			}
			var gsum, esum float64
			for _, enc := range encs {
				gsum += enc.Gamma()
				esum += enc.MeanErrorRate()
			}
			n := float64(len(encs))
			fmt.Printf("checkpoint %2d: delta, avg incompressible %.2f%%, avg mean err %.5f%%\n",
				c, gsum/n*100, esum/n*100)
			continue
		}
		for name, vals := range snap.Vars {
			path := filepath.Join(raw, fmt.Sprintf("%s.%04d.f64", name, c))
			if err := rawio.WriteFile(path, vals); err != nil {
				return err
			}
		}
		fmt.Printf("checkpoint %2d: wrote %d raw variables\n", c, len(snap.Vars))
	}
	return nil
}
