package main

import (
	"os"
	"path/filepath"
	"testing"

	"numarck/internal/checkpoint"
)

func TestRunStoreMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if err := run(dir, "", 4, 2, 2, 0.001, 8, "clustering", 0, 1, false); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	vars, err := st.Variables()
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 10 {
		t.Errorf("store has %d variables", len(vars))
	}
	// Every variable restarts at the last checkpoint.
	for _, v := range vars {
		if _, err := st.Restart(v, 3); err != nil {
			t.Errorf("restart %s: %v", v, err)
		}
	}
}

func TestRunRawMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "raw")
	if err := run("", dir, 2, 1, 2, 0.001, 8, "clustering", 0, 1, true); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 20 { // 10 variables x 2 checkpoints
		t.Errorf("raw dir has %d files, want 20", len(entries))
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "", 2, 1, 2, 0.001, 8, "clustering", 0, 1, false); err == nil {
		t.Error("neither -dir nor -raw rejected")
	}
	if err := run("a", "b", 2, 1, 2, 0.001, 8, "clustering", 0, 1, false); err == nil {
		t.Error("both -dir and -raw accepted")
	}
	if err := run(t.TempDir()+"/x", "", 0, 1, 2, 0.001, 8, "clustering", 0, 1, false); err == nil {
		t.Error("zero checkpoints accepted")
	}
	if err := run(t.TempDir()+"/y", "", 2, 1, 2, 0.001, 8, "bogus", 0, 1, false); err == nil {
		t.Error("bogus strategy accepted")
	}
}
