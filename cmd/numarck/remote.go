package main

// Remote mode: with -addr, the numarck CLI becomes a client of a
// running numarckd daemon instead of touching files and stores
// directly. The daemon owns the store; the CLI streams raw float64
// bodies up and reconstructions down over the service API.

import (
	"fmt"
	"net/url"
	"os"
	"strconv"

	"numarck/internal/server"
)

// remoteClient builds the service client for one -addr/-tenant pair.
func remoteClient(addr, tenant string) *server.Client {
	return &server.Client{Base: addr, Tenant: tenant}
}

// remoteCompress pushes the current iteration's values to the daemon,
// which reconstructs the previous iteration from its chain and encodes
// the delta server-side (or commits a full when the chain is empty).
func remoteCompress(addr, tenant, variable string, iter int, curPath string, q url.Values) error {
	c := remoteClient(addr, tenant)
	cr, err := c.PushFile(variable, iter, curPath, q)
	if err != nil {
		return err
	}
	if cr.Kind == "delta" {
		fmt.Printf("committed %s/%s@%d (delta): %d points in %d chunks of %d (%d workers), %d exact, file %d bytes\n",
			cr.Tenant, cr.Variable, cr.Iteration, cr.Points, cr.Chunks, cr.ChunkPoints, cr.Workers, cr.ExactValues, cr.FileBytes)
		return nil
	}
	fmt.Printf("committed %s/%s@%d (%s): %d points, file %d bytes\n",
		cr.Tenant, cr.Variable, cr.Iteration, cr.Kind, cr.Points, cr.FileBytes)
	return nil
}

// remoteDecompress fetches one iteration's reconstruction from the
// daemon into outPath; with salvage the daemon decodes around
// chunk-local corruption and the lost ranges are reported on stderr.
func remoteDecompress(addr, tenant, variable string, iter int, outPath string, salvage bool) error {
	c := remoteClient(addr, tenant)
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	points, partial, err := c.Fetch(variable, iter, f, salvage)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if partial != nil {
		fmt.Fprintf(os.Stderr, "numarck: %s@%d: %d point(s) lost to corruption, holding previous-iteration values\n",
			variable, iter, partial.LostPoints)
		for _, lr := range partial.Lost {
			fmt.Fprintf(os.Stderr, "numarck:   lost [%d,%d)\n", lr.Lo, lr.Hi)
		}
		fmt.Printf("salvaged %s/%s@%d: %d of %d points\n", tenant, variable, iter, points-partial.LostPoints, points)
		return nil
	}
	fmt.Printf("reconstructed %s/%s@%d: %d points\n", tenant, variable, iter, points)
	return nil
}

// remoteVerify asks the daemon for a deep chain report across the
// tenant's series — served from the lock-free read view, so it works
// while the daemon is writing.
func remoteVerify(addr, tenant string) error {
	c := remoteClient(addr, tenant)
	tc, err := c.TenantChain(true)
	if err != nil {
		return err
	}
	fmt.Printf("tenant %s: %d series\n", tc.Tenant, len(tc.Variables))
	fmt.Printf("index: present=%v fresh=%v seq=%d entries=%d\n",
		tc.Index.Present, tc.Index.Fresh, tc.Index.Seq, tc.Index.Entries)
	for _, v := range tc.Variables {
		if latest, ok := tc.Latest[v]; ok {
			fmt.Printf("%s: restorable through iteration %d\n", v, latest)
		} else {
			fmt.Printf("%s: not restorable\n", v)
		}
	}
	for _, is := range tc.Issues {
		fmt.Printf("issue: %s\n", is)
	}
	if len(tc.Issues) > 0 {
		return fmt.Errorf("store has %d issue(s)", len(tc.Issues))
	}
	fmt.Println("store is healthy")
	return nil
}

// remoteQuery collects the per-request encode and pipeline overrides
// the daemon accepts as query parameters. Zero values are omitted so
// the daemon's own defaults apply.
func remoteQuery(e float64, b int, strategy string, chunkPoints int, workers int, budget int64) url.Values {
	q := url.Values{}
	if e > 0 {
		q.Set("e", strconv.FormatFloat(e, 'g', -1, 64))
	}
	if b > 0 {
		q.Set("b", strconv.Itoa(b))
	}
	if strategy != "" {
		q.Set("strategy", strategy)
	}
	if chunkPoints > 0 {
		q.Set("chunk", strconv.Itoa(chunkPoints))
	}
	if workers > 0 {
		q.Set("workers", strconv.Itoa(workers))
	}
	if budget > 0 {
		q.Set("budget", strconv.FormatInt(budget, 10))
	}
	return q
}
