// Command numarck compresses, decompresses, and inspects NUMARCK
// checkpoint files from the command line. Data files are raw
// little-endian float64 arrays.
//
// Usage:
//
//	numarck compress   -prev prev.f64 -cur cur.f64 -out ckpt.nmk [-e 0.001] [-b 8] [-strategy clustering] [-var name] [-iter n]
//	numarck compress   -prev prev.f64 -cur cur.f64 -out ckpt.nmk -stream [-chunk points] [-budget bytes]
//	numarck compress   -nc data.nc -var rlus -from 4 -to 5 -out ckpt.nmk
//	numarck decompress -prev prev.f64 -in ckpt.nmk -out rec.f64 [-workers n] [-recover]
//	numarck inspect    -in ckpt.nmk
//	numarck restart    -dir store -var dens -iter 12 -out rec.f64 [-recover]
//	numarck verify     -dir store
//
// With -addr, compress, decompress, and verify run as clients of a
// numarckd daemon instead of touching local files: compress pushes the
// current values and lets the daemon delta-encode against its chain,
// decompress fetches a server-side reconstruction, and verify asks for
// the daemon's lock-free deep chain report. compress -plan prints the
// resolved pipeline plan (chunk size, workers, peak buffer bytes) for
// the given -chunk/-workers/-budget without doing any work.
//
// -recover turns on degraded-mode decode for chunked (v2) deltas:
// chunks whose CRC fails are quarantined, every healthy chunk decodes,
// and the exact lost point ranges (which keep the previous iteration's
// values in the output) are reported on stderr. Without it, any
// corruption fails the command — fail-closed is the default. verify
// prints a chain health report: the Open-time recovery scan's findings,
// deep per-file and journal checks, quarantined files, and the latest
// restorable iteration per variable.
//
// With -stream, compress runs the out-of-core pipeline: the inputs are
// read in chunks under the -budget memory cap and the chunked v2
// format is written, which decompress can later decode in parallel and
// storectl verify can check per chunk.
//
// compress and decompress accept -metrics (per-stage timing and
// counter table on stderr) and -metrics-json path (the same snapshot
// as JSON), backed by the internal/obs recorder.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"

	"numarck/internal/checkpoint"
	"numarck/internal/chunk"
	"numarck/internal/core"
	"numarck/internal/ncdf"
	"numarck/internal/obs"
	"numarck/internal/rawio"
	"numarck/internal/server"
)

// metricsFlags registers the shared -metrics/-metrics-json flags on fs
// and returns the destinations they select.
func metricsFlags(fs *flag.FlagSet) *metricsOut {
	m := &metricsOut{}
	fs.BoolVar(&m.text, "metrics", false, "print per-stage timings and counters to stderr")
	fs.StringVar(&m.jsonPath, "metrics-json", "", "write per-stage timings and counters as JSON to `path`")
	return m
}

// metricsOut holds the parsed -metrics/-metrics-json destinations.
type metricsOut struct {
	text     bool
	jsonPath string
}

// recorder returns a live recorder when either flag asked for metrics,
// else nil — the pipelines' no-op state.
func (m *metricsOut) recorder() *obs.Recorder {
	if !m.text && m.jsonPath == "" {
		return nil
	}
	return obs.NewRecorder()
}

// emit snapshots rec into the selected destinations: an aligned text
// table on stderr, JSON to the -metrics-json path, or both. A nil rec
// (flags off) is a no-op.
func (m *metricsOut) emit(rec *obs.Recorder) error {
	if rec == nil {
		return nil
	}
	snap := rec.Snapshot()
	if m.text {
		if err := snap.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	if m.jsonPath != "" {
		f, err := os.Create(m.jsonPath)
		if err != nil {
			return err
		}
		err = snap.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "decompress":
		err = cmdDecompress(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "restart":
		err = cmdRestart(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "numarck: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "numarck: %s\n", server.OperatorMessage(err))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  numarck compress   -prev prev.f64 -cur cur.f64 -out ckpt.nmk [-e 0.001] [-b 8] [-strategy clustering] [-var name] [-iter n]
  numarck compress   -prev prev.f64 -cur cur.f64 -out ckpt.nmk -stream [-chunk points] [-budget bytes]
  numarck decompress -prev prev.f64 -in ckpt.nmk -out rec.f64 [-workers n] [-recover]
  numarck inspect    -in ckpt.nmk
  numarck restart    -dir store -var name -iter n -out rec.f64 [-recover]
  numarck verify     -dir store

daemon client mode (against a running numarckd):
  numarck compress   -addr http://host:8377 -tenant t -var dens -iter n -cur cur.f64
  numarck decompress -addr http://host:8377 -tenant t -var dens -iter n -out rec.f64 [-recover]
  numarck verify     -addr http://host:8377 -tenant t
  numarck compress   -stream -plan [-chunk points] [-workers n] [-budget bytes]

-recover salvages chunk-local corruption in chunked (v2) deltas:
healthy chunks decode, lost point ranges keep the previous iteration's
values and are reported; without it any corruption fails the command.
verify prints a chain health report for a checkpoint store.

compress/decompress also take -metrics and -metrics-json path
data files are raw little-endian float64 arrays`)
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	prevPath := fs.String("prev", "", "previous iteration values (.f64)")
	curPath := fs.String("cur", "", "current iteration values (.f64)")
	ncPath := fs.String("nc", "", "netCDF classic input file (use with -var/-from/-to)")
	from := fs.Int("from", -1, "netCDF: index of the previous timestep")
	to := fs.Int("to", -1, "netCDF: index of the current timestep")
	outPath := fs.String("out", "", "output checkpoint file")
	e := fs.Float64("e", 0.001, "error bound E as a fraction (0.001 = 0.1%)")
	b := fs.Int("b", 8, "index bits B")
	strategyName := fs.String("strategy", "clustering", "equal-width | log-scale | clustering")
	variable := fs.String("var", "data", "variable name recorded in the header")
	iter := fs.Int("iter", 1, "iteration number recorded in the header")
	stream := fs.Bool("stream", false, "out-of-core encode to the chunked v2 format")
	chunkPoints := fs.Int("chunk", 0, "streaming: points per chunk (0 = default)")
	budget := fs.Int64("budget", 0, "streaming: memory budget in bytes (0 = no cap)")
	workers := fs.Int("workers", 0, "streaming: concurrent chunks (0 = GOMAXPROCS)")
	plan := fs.Bool("plan", false, "print the resolved pipeline plan (chunk, workers, peak bytes) and exit")
	addr := fs.String("addr", "", "numarckd base URL: commit to a running daemon instead of a local file")
	tenant := fs.String("tenant", "default", "daemon mode: tenant to commit into")
	metrics := metricsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *plan {
		resolved, err := chunk.ResolveConfig(chunk.Config{ChunkPoints: *chunkPoints, Workers: *workers, BudgetBytes: *budget})
		if err != nil {
			return err
		}
		fmt.Printf("pipeline plan: %d workers x %d-point chunks, peak buffers %d bytes\n",
			resolved.Config.Workers, resolved.Config.ChunkPoints, resolved.PeakBufferBytes)
		return nil
	}
	if *addr != "" {
		if *curPath == "" {
			return fmt.Errorf("compress -addr requires -cur (the daemon reconstructs -prev from its chain)")
		}
		q := remoteQuery(*e, *b, *strategyName, *chunkPoints, *workers, *budget)
		return remoteCompress(*addr, *tenant, *variable, *iter, *curPath, q)
	}
	if *outPath == "" {
		return fmt.Errorf("compress requires -out")
	}
	strategy, err := core.ParseStrategy(*strategyName)
	if err != nil {
		return err
	}
	rec := metrics.recorder()
	opt := core.Options{ErrorBound: *e, IndexBits: *b, Strategy: strategy, Obs: rec}
	if *stream {
		if *prevPath == "" || *curPath == "" {
			return fmt.Errorf("compress -stream requires -prev and -cur files")
		}
		cfg := chunk.Config{ChunkPoints: *chunkPoints, Workers: *workers, BudgetBytes: *budget}
		if err := streamCompress(*outPath, *variable, *iter, *prevPath, *curPath, opt, cfg); err != nil {
			return err
		}
		return metrics.emit(rec)
	}
	var prev, cur []float64
	switch {
	case *ncPath != "":
		if *from < 0 || *to < 0 {
			return fmt.Errorf("compress -nc requires -from and -to timestep indices")
		}
		nf, err := ncdf.ReadFile(*ncPath)
		if err != nil {
			return err
		}
		v, err := nf.VarByName(*variable)
		if err != nil {
			return err
		}
		if prev, err = nf.Slab(v, *from); err != nil {
			return err
		}
		if cur, err = nf.Slab(v, *to); err != nil {
			return err
		}
		if *iter == 1 {
			*iter = *to
		}
	case *prevPath != "" && *curPath != "":
		if prev, err = rawio.ReadFile(*prevPath); err != nil {
			return err
		}
		if cur, err = rawio.ReadFile(*curPath); err != nil {
			return err
		}
	default:
		return fmt.Errorf("compress requires either -prev and -cur, or -nc with -from/-to")
	}
	enc, err := core.Encode(prev, cur, opt)
	if err != nil {
		return err
	}
	raw, err := checkpoint.MarshalDelta(*variable, *iter, enc)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, raw, 0o644); err != nil {
		return err
	}
	cr, err := enc.CompressionRatio()
	if err != nil {
		return err
	}
	fmt.Printf("compressed %d points: incompressible %.2f%%, mean err %.5f%%, max err %.5f%%, Eq.3 ratio %.2f%%, file %d bytes\n",
		enc.N, enc.Gamma()*100, enc.MeanErrorRate()*100, enc.MaxErrorRate()*100, cr, len(raw))
	return metrics.emit(rec)
}

// streamCompress runs the out-of-core encode: file sources, chunked
// pipeline, v2 output.
func streamCompress(outPath, variable string, iter int, prevPath, curPath string, opt core.Options, cfg chunk.Config) error {
	prev, err := rawio.OpenFile(prevPath)
	if err != nil {
		return err
	}
	//lint:ignore errcheck read-only source; a close error cannot lose data
	defer prev.Close()
	cur, err := rawio.OpenFile(curPath)
	if err != nil {
		return err
	}
	//lint:ignore errcheck read-only source; a close error cannot lose data
	defer cur.Close()
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	res, err := chunk.EncodeDeltaV2(out, variable, iter, prev, cur, opt, cfg)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	info, err := os.Stat(outPath)
	if err != nil {
		return err
	}
	fmt.Printf("streamed %d points in %d chunks of %d (%d workers, peak buffers %d bytes): incompressible %d, file %d bytes\n",
		res.N, res.ChunkCount, res.ChunkPoints, res.Workers, res.PeakBufferBytes, res.ExactCount, info.Size())
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	prevPath := fs.String("prev", "", "previous iteration values (.f64)")
	inPath := fs.String("in", "", "checkpoint file")
	outPath := fs.String("out", "", "output values (.f64)")
	workers := fs.Int("workers", 0, "chunked (v2) input: concurrent chunks (0 = GOMAXPROCS)")
	salvage := fs.Bool("recover", false, "chunked (v2) input: salvage healthy chunks past corruption")
	addr := fs.String("addr", "", "numarckd base URL: fetch a reconstruction from a running daemon")
	tenant := fs.String("tenant", "default", "daemon mode: tenant to read from")
	series := fs.String("var", "", "daemon mode: series to reconstruct")
	seriesIter := fs.Int("iter", -1, "daemon mode: iteration to reconstruct")
	metrics := metricsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr != "" {
		if *series == "" || *seriesIter < 0 || *outPath == "" {
			return fmt.Errorf("decompress -addr requires -var, -iter, and -out")
		}
		return remoteDecompress(*addr, *tenant, *series, *seriesIter, *outPath, *salvage)
	}
	if *prevPath == "" || *inPath == "" || *outPath == "" {
		return fmt.Errorf("decompress requires -prev, -in, and -out")
	}
	raw, err := os.ReadFile(*inPath)
	if err != nil {
		return err
	}
	obsRec := metrics.recorder()
	if checkpoint.IsDeltaV2(raw) {
		if *salvage {
			if err := salvageDecompress(raw, *prevPath, *outPath, *workers, obsRec); err != nil {
				return err
			}
			return metrics.emit(obsRec)
		}
		if err := streamDecompress(raw, *prevPath, *outPath, *workers, obsRec); err != nil {
			return err
		}
		return metrics.emit(obsRec)
	}
	if *salvage {
		return fmt.Errorf("-recover needs a chunked (v2) input: %s has a single whole-payload CRC, nothing chunk-local to salvage", *inPath)
	}
	prev, err := rawio.ReadFile(*prevPath)
	if err != nil {
		return err
	}
	variable, iter, enc, err := checkpoint.UnmarshalDelta(raw)
	if err != nil {
		return err
	}
	enc.Opt.Obs = obsRec
	rec, err := enc.Decode(prev)
	if err != nil {
		return err
	}
	if err := rawio.WriteFile(*outPath, rec); err != nil {
		return err
	}
	fmt.Printf("decoded %s@%d: %d points\n", variable, iter, len(rec))
	return metrics.emit(obsRec)
}

// streamDecompress reconstructs a chunked v2 delta with the streaming
// parallel decoder, never holding more than the in-flight chunks.
func streamDecompress(raw []byte, prevPath, outPath string, workers int, rec *obs.Recorder) error {
	d, err := checkpoint.OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return err
	}
	prev, err := rawio.OpenFile(prevPath)
	if err != nil {
		return err
	}
	//lint:ignore errcheck read-only source; a close error cannot lose data
	defer prev.Close()
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	w := rawio.NewWriter(out)
	err = chunk.DecodeDeltaV2(d, prev, chunk.Config{Workers: workers, Obs: rec}, func(vals []float64) error {
		return w.WriteFloats(vals)
	})
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	meta := d.Meta()
	fmt.Printf("decoded %s@%d: %d points from %d chunks\n", meta.Variable, meta.Iteration, w.Count(), meta.ChunkCount)
	return nil
}

// salvageDecompress is streamDecompress in degraded mode: corrupt
// chunks are quarantined, healthy ones decoded, and the lost point
// ranges (which keep prev's values in the output) reported on stderr.
func salvageDecompress(raw []byte, prevPath, outPath string, workers int, rec *obs.Recorder) error {
	d, err := checkpoint.OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return err
	}
	prev, err := rawio.ReadFile(prevPath)
	if err != nil {
		return err
	}
	out, err := d.DecodeRecover(prev, workers, checkpoint.RecoverOptions{Salvage: true, Obs: rec})
	var pde *checkpoint.PartialDataError
	if err != nil && !errors.As(err, &pde) {
		return err
	}
	if err := rawio.WriteFile(outPath, out); err != nil {
		return err
	}
	meta := d.Meta()
	if pde == nil {
		fmt.Printf("decoded %s@%d: %d points (no corruption found)\n", meta.Variable, meta.Iteration, len(out))
		return nil
	}
	fmt.Fprintf(os.Stderr, "numarck: %v\n", pde)
	fmt.Printf("salvaged %s@%d: %d of %d points (%d lost, holding previous-iteration values)\n",
		meta.Variable, meta.Iteration, len(out)-pde.LostPoints(), len(out), pde.LostPoints())
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	inPath := fs.String("in", "", "checkpoint file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("inspect requires -in")
	}
	raw, err := os.ReadFile(*inPath)
	if err != nil {
		return err
	}
	if checkpoint.IsDeltaV2(raw) {
		d, err := checkpoint.OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			return err
		}
		meta := d.Meta()
		enc, err := d.Encoded()
		if err != nil {
			return err
		}
		fmt.Printf("chunked delta checkpoint (v2) %s@%d\n", meta.Variable, meta.Iteration)
		fmt.Printf("  points:          %d\n", meta.N)
		fmt.Printf("  chunks:          %d x %d points\n", meta.ChunkCount, meta.ChunkPoints)
		fmt.Printf("  error bound:     %.4f%%\n", meta.Opt.ErrorBound*100)
		fmt.Printf("  index bits:      %d\n", meta.Opt.IndexBits)
		fmt.Printf("  strategy:        %s\n", meta.Opt.Strategy)
		fmt.Printf("  bins used:       %d / %d\n", len(meta.BinRatios), meta.Opt.NumBins())
		fmt.Printf("  incompressible:  %d (%.2f%%)\n", enc.Incompressible.Count(), enc.Gamma()*100)
		if cr, err := enc.CompressionRatio(); err == nil {
			fmt.Printf("  Eq.3 ratio:      %.2f%%\n", cr)
		}
		return nil
	}
	if variable, iter, enc, err := checkpoint.UnmarshalDelta(raw); err == nil {
		fmt.Printf("delta checkpoint %s@%d\n", variable, iter)
		fmt.Printf("  points:          %d\n", enc.N)
		fmt.Printf("  error bound:     %.4f%%\n", enc.Opt.ErrorBound*100)
		fmt.Printf("  index bits:      %d\n", enc.Opt.IndexBits)
		fmt.Printf("  strategy:        %s\n", enc.Opt.Strategy)
		fmt.Printf("  bins used:       %d / %d\n", len(enc.BinRatios), enc.Opt.NumBins())
		fmt.Printf("  incompressible:  %d (%.2f%%)\n", enc.Incompressible.Count(), enc.Gamma()*100)
		if cr, err := enc.CompressionRatio(); err == nil {
			fmt.Printf("  Eq.3 ratio:      %.2f%%\n", cr)
		}
		return nil
	}
	if variable, iter, data, err := checkpoint.UnmarshalFull(raw); err == nil {
		fmt.Printf("full checkpoint %s@%d\n", variable, iter)
		fmt.Printf("  points:     %d\n", len(data))
		fmt.Printf("  file bytes: %d (%.2f%% of raw)\n", len(raw), float64(len(raw))/float64(8*len(data))*100)
		return nil
	}
	if ix, err := checkpoint.ParseChainIndex(raw); err == nil {
		fmt.Printf("chain index (seq %d)\n", ix.Seq)
		fmt.Printf("  journal anchor:  %d bytes, tail CRC %08x\n", ix.JournalLen, ix.JournalTailCRC)
		fmt.Printf("  entries:         %d\n", len(ix.Entries))
		for _, e := range ix.Entries {
			fmt.Printf("  %s %s@%d: %d bytes, CRC %08x\n", e.Kind, e.Variable, e.Iteration, e.Len, e.CRC)
		}
		return nil
	}
	return fmt.Errorf("%s is not a NUMARCK checkpoint file", *inPath)
}

func cmdRestart(args []string) error {
	fs := flag.NewFlagSet("restart", flag.ExitOnError)
	dir := fs.String("dir", "", "checkpoint store directory")
	variable := fs.String("var", "", "variable name")
	iter := fs.Int("iter", -1, "iteration to reconstruct")
	outPath := fs.String("out", "", "output values (.f64)")
	salvage := fs.Bool("recover", false, "salvage healthy chunks of corrupt v2 deltas in the chain")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *variable == "" || *iter < 0 || *outPath == "" {
		return fmt.Errorf("restart requires -dir, -var, -iter, and -out")
	}
	// Restart is a pure read: use the lock-free read view, which works
	// while a writer holds the store and never mutates it.
	st, err := checkpoint.OpenReadOnly(*dir)
	if err != nil {
		return err
	}
	var data []float64
	var pde *checkpoint.PartialDataError
	if *salvage {
		data, pde, err = st.RestartSalvage(*variable, *iter)
	} else {
		data, err = st.Restart(*variable, *iter)
	}
	if err != nil {
		return err
	}
	if err := rawio.WriteFile(*outPath, data); err != nil {
		return err
	}
	if pde != nil {
		fmt.Fprintf(os.Stderr, "numarck: %v\n", pde)
		fmt.Printf("reconstructed %s@%d: %d points (%d stale after salvage)\n", *variable, *iter, len(data), pde.LostPoints())
		return nil
	}
	fmt.Printf("reconstructed %s@%d: %d points\n", *variable, *iter, len(data))
	return nil
}

// cmdVerify prints a chain health report for a checkpoint store: the
// Open-time recovery scan's findings, every issue the deep Verify pass
// found (parse, CRC, chain-gap, and journal cross-check), the contents
// of quarantine/, and the latest restorable iteration per variable.
func cmdVerify(args []string) (err error) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "checkpoint store directory")
	addr := fs.String("addr", "", "numarckd base URL: verify a daemon-held store over HTTP")
	tenant := fs.String("tenant", "default", "daemon mode: tenant to verify")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr != "" {
		return remoteVerify(*addr, *tenant)
	}
	if *dir == "" {
		return fmt.Errorf("verify requires -dir")
	}
	st, err := checkpoint.Open(*dir)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := st.Close(); err == nil {
			err = cerr
		}
	}()
	fmt.Printf("recovery scan: %s\n", st.Recovery())
	fmt.Printf("%s\n", st.IndexHealth())
	issues, err := st.Verify()
	if err != nil {
		return err
	}
	for _, is := range issues {
		fmt.Printf("issue: %s\n", is)
	}
	quarantined, err := st.Quarantined()
	if err != nil {
		return err
	}
	for _, name := range quarantined {
		fmt.Printf("quarantined: %s\n", name)
	}
	vars, err := st.Variables()
	if err != nil {
		return err
	}
	for _, v := range vars {
		latest, err := st.LatestRestorable(v)
		if err != nil {
			fmt.Printf("%s: not restorable (%v)\n", v, err)
			continue
		}
		fmt.Printf("%s: restorable through iteration %d\n", v, latest)
	}
	if len(issues) == 0 && len(quarantined) == 0 && st.Recovery().Clean() {
		fmt.Println("store is healthy")
		return nil
	}
	return fmt.Errorf("store has %d issue(s), %d quarantined file(s)", len(issues), len(quarantined))
}
