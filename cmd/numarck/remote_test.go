package main

import (
	"math"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"

	"numarck/internal/core"
	"numarck/internal/rawio"
	"numarck/internal/server"
)

// startRemoteDaemon mounts a daemon handler on an httptest listener.
func startRemoteDaemon(t *testing.T) string {
	t.Helper()
	strategy, err := core.ParseStrategy("clustering")
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{
		Root: t.TempDir(),
		Opt:  core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: strategy},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestRemoteRoundTrip drives the CLI's daemon client mode end to end:
// compress two iterations against a daemon, decompress them back, and
// verify the daemon-held store — all through the command functions the
// flag layer dispatches to.
func TestRemoteRoundTrip(t *testing.T) {
	addr := startRemoteDaemon(t)
	dir := t.TempDir()
	n := 2048
	vals := func(iter int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Sin(float64(i)*0.03) + 0.01*float64(iter)
		}
		return out
	}
	for i := 0; i < 2; i++ {
		curPath := filepath.Join(dir, "cur.f64")
		if err := rawio.WriteFile(curPath, vals(i)); err != nil {
			t.Fatal(err)
		}
		if err := cmdCompress([]string{"-addr", addr, "-tenant", "sim", "-var", "dens", "-iter", strconv.Itoa(i), "-cur", curPath}); err != nil {
			t.Fatalf("remote compress %d: %v", i, err)
		}
	}
	outPath := filepath.Join(dir, "rec.f64")
	if err := cmdDecompress([]string{"-addr", addr, "-tenant", "sim", "-var", "dens", "-iter", "1", "-out", outPath}); err != nil {
		t.Fatalf("remote decompress: %v", err)
	}
	got, err := rawio.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("reconstructed %d points, want %d", len(got), n)
	}
	// The codec bounds the reconstruction error relative to the
	// previous iteration's magnitude (the change-ratio quantization).
	want, prev := vals(1), vals(0)
	for i := range got {
		tol := 0.0011*math.Max(math.Abs(prev[i]), math.Abs(want[i])) + 1e-12
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("point %d: %v vs %v outside error bound", i, got[i], want[i])
		}
	}
	if err := cmdVerify([]string{"-addr", addr, "-tenant", "sim"}); err != nil {
		t.Fatalf("remote verify: %v", err)
	}
	// A structured daemon error surfaces as a typed APIError.
	err = cmdDecompress([]string{"-addr", addr, "-tenant", "sim", "-var", "ghost", "-iter", "0", "-out", outPath})
	if err == nil {
		t.Fatal("remote decompress of missing series succeeded")
	}
}

// TestCompressPlan checks -plan prints the resolved pipeline without
// needing inputs.
func TestCompressPlan(t *testing.T) {
	if err := cmdCompress([]string{"-plan", "-chunk", "4096", "-workers", "2"}); err != nil {
		t.Fatalf("compress -plan: %v", err)
	}
	if err := cmdCompress([]string{"-plan", "-budget", "1"}); err == nil {
		t.Fatal("compress -plan with an unfittable budget succeeded")
	}
}
