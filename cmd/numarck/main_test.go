package main

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
	"numarck/internal/ncdf"
	"numarck/internal/rawio"
)

func writeSeries(t *testing.T, dir string) (prevPath, curPath string, prev, cur []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	prev = make([]float64, 2000)
	cur = make([]float64, 2000)
	for i := range prev {
		prev[i] = 10 + rng.Float64()*10
		cur[i] = prev[i] * (1 + rng.NormFloat64()*0.002)
	}
	prevPath = filepath.Join(dir, "prev.f64")
	curPath = filepath.Join(dir, "cur.f64")
	if err := rawio.WriteFile(prevPath, prev); err != nil {
		t.Fatal(err)
	}
	if err := rawio.WriteFile(curPath, cur); err != nil {
		t.Fatal(err)
	}
	return prevPath, curPath, prev, cur
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	dir := t.TempDir()
	prevPath, curPath, prev, cur := writeSeries(t, dir)
	ckPath := filepath.Join(dir, "ck.nmk")
	recPath := filepath.Join(dir, "rec.f64")

	err := cmdCompress([]string{
		"-prev", prevPath, "-cur", curPath, "-out", ckPath,
		"-e", "0.001", "-b", "8", "-strategy", "clustering",
		"-var", "dens", "-iter", "3",
	})
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	if err := cmdDecompress([]string{"-prev", prevPath, "-in", ckPath, "-out", recPath}); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	rec, err := rawio.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cur {
		trueR := (cur[i] - prev[i]) / prev[i]
		recR := (rec[i] - prev[i]) / prev[i]
		if math.Abs(recR-trueR) > 0.001+1e-12 {
			t.Fatalf("bound violated at %d", i)
		}
	}
	if err := cmdInspect([]string{"-in", ckPath}); err != nil {
		t.Errorf("inspect: %v", err)
	}
}

func TestCompressValidation(t *testing.T) {
	if err := cmdCompress([]string{"-prev", "a", "-cur", "b"}); err == nil {
		t.Error("missing -out accepted")
	}
	if err := cmdCompress([]string{"-prev", "/nope", "-cur", "/nope", "-out", "/nope", "-strategy", "bogus"}); err == nil {
		t.Error("bogus strategy accepted")
	}
	if err := cmdCompress([]string{"-prev", "/nope.f64", "-cur", "/nope.f64", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestDecompressValidation(t *testing.T) {
	if err := cmdDecompress([]string{"-prev", "a"}); err == nil {
		t.Error("missing flags accepted")
	}
}

func TestInspectFull(t *testing.T) {
	dir := t.TempDir()
	_, _, prev, _ := writeSeries(t, dir)
	raw, err := checkpoint.MarshalFull("v", 0, prev)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "full.nmk")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdInspect([]string{"-in", path}); err != nil {
		t.Errorf("inspect full: %v", err)
	}
	// Garbage file is rejected.
	bad := filepath.Join(dir, "bad.nmk")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdInspect([]string{"-in", bad}); err == nil {
		t.Error("garbage accepted")
	}
	if err := cmdInspect([]string{}); err == nil {
		t.Error("missing -in accepted")
	}
}

func TestRestartCommand(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	st, err := checkpoint.Create(storeDir, core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering})
	if err != nil {
		t.Fatal(err)
	}
	_, _, prev, cur := writeSeries(t, dir)
	if err := st.WriteFull("v", 0, prev); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteDelta("v", 1, prev, cur); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "rec.f64")
	if err := cmdRestart([]string{"-dir", storeDir, "-var", "v", "-iter", "1", "-out", out}); err != nil {
		t.Fatalf("restart: %v", err)
	}
	rec, err := rawio.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != len(cur) {
		t.Errorf("restart produced %d points", len(rec))
	}
	if err := cmdRestart([]string{"-dir", storeDir}); err == nil {
		t.Error("missing flags accepted")
	}
}

func TestCompressFromNetCDF(t *testing.T) {
	dir := t.TempDir()
	// Build a small netCDF file with 3 timesteps of a 4x5 grid.
	f := &ncdf.File{
		Dims: []ncdf.Dim{{Name: "time", Len: 3}, {Name: "y", Len: 4}, {Name: "x", Len: 5}},
	}
	data := make([]float64, 3*4*5)
	for ti := 0; ti < 3; ti++ {
		for j := 0; j < 20; j++ {
			data[ti*20+j] = (100 + float64(j)) * (1 + 0.0005*float64(ti))
		}
	}
	f.Vars = []ncdf.Var{{Name: "temp", DimIDs: []int{0, 1, 2}, Data: data}}
	ncPath := filepath.Join(dir, "in.nc")
	if err := f.WriteFile(ncPath); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "ck.nmk")
	err := cmdCompress([]string{"-nc", ncPath, "-var", "temp", "-from", "1", "-to", "2", "-out", out})
	if err != nil {
		t.Fatalf("compress -nc: %v", err)
	}
	if err := cmdInspect([]string{"-in", out}); err != nil {
		t.Errorf("inspect: %v", err)
	}
	// Missing -from/-to rejected.
	if err := cmdCompress([]string{"-nc", ncPath, "-var", "temp", "-out", out + "2"}); err == nil {
		t.Error("missing -from/-to accepted")
	}
	// Unknown variable rejected.
	if err := cmdCompress([]string{"-nc", ncPath, "-var", "nope", "-from", "0", "-to", "1", "-out", out + "3"}); err == nil {
		t.Error("unknown nc variable accepted")
	}
}

// corruptOneByte flips a byte at 60% of the file — inside a chunk
// section for any realistically sized v2 delta.
func corruptOneByte(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)*3/5] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressRecoverSalvagesCorruptV2(t *testing.T) {
	dir := t.TempDir()
	prevPath, curPath, prev, _ := writeSeries(t, dir)
	ckPath := filepath.Join(dir, "ck.nmk")
	recPath := filepath.Join(dir, "rec.f64")
	err := cmdCompress([]string{
		"-prev", prevPath, "-cur", curPath, "-out", ckPath,
		"-stream", "-chunk", "256",
	})
	if err != nil {
		t.Fatalf("compress -stream: %v", err)
	}
	corruptOneByte(t, ckPath)

	// Fail-closed by default.
	if err := cmdDecompress([]string{"-prev", prevPath, "-in", ckPath, "-out", recPath}); err == nil {
		t.Fatal("decompress of corrupt v2 without -recover succeeded")
	}
	// Salvage mode writes the output and keeps going.
	if err := cmdDecompress([]string{"-prev", prevPath, "-in", ckPath, "-out", recPath, "-recover"}); err != nil {
		t.Fatalf("decompress -recover: %v", err)
	}
	rec, err := rawio.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != len(prev) {
		t.Fatalf("salvaged output has %d points, want %d", len(rec), len(prev))
	}
}

func TestVerifyCommand(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := checkpoint.Create(dir, core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetDeltaFormat(2, 256); err != nil {
		t.Fatal(err)
	}
	_, _, prev, cur := writeSeries(t, t.TempDir())
	if err := st.WriteFull("dens", 0, prev); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteDelta("dens", 1, prev, cur); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-dir", dir}); err != nil {
		t.Fatalf("verify of healthy store: %v", err)
	}
	// Truncate the delta: verify must quarantine it and report unhealth.
	path := filepath.Join(dir, "dens.delta.000001.nmk")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-dir", dir}); err == nil {
		t.Fatal("verify of damaged store reported healthy")
	}
	if err := cmdVerify([]string{}); err == nil {
		t.Fatal("verify without -dir should fail")
	}
}

func TestRestartRecoverCommand(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := checkpoint.Create(dir, core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetDeltaFormat(2, 256); err != nil {
		t.Fatal(err)
	}
	_, _, prev, cur := writeSeries(t, t.TempDir())
	if err := st.WriteFull("dens", 0, prev); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteDelta("dens", 1, prev, cur); err != nil {
		t.Fatal(err)
	}
	corruptOneByte(t, filepath.Join(dir, "dens.delta.000001.nmk"))

	outPath := filepath.Join(t.TempDir(), "rec.f64")
	if err := cmdRestart([]string{"-dir", dir, "-var", "dens", "-iter", "1", "-out", outPath}); err == nil {
		t.Fatal("restart over corrupt delta without -recover succeeded")
	}
	if err := cmdRestart([]string{"-dir", dir, "-var", "dens", "-iter", "1", "-out", outPath, "-recover"}); err != nil {
		t.Fatalf("restart -recover: %v", err)
	}
	rec, err := rawio.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != len(prev) {
		t.Fatalf("salvaged restart has %d points, want %d", len(rec), len(prev))
	}
}
