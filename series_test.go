package numarck_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"numarck"
)

func makeIterations(n, iters int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, iters)
	out[0] = make([]float64, n)
	for j := range out[0] {
		out[0][j] = 100 + rng.Float64()*50
	}
	for i := 1; i < iters; i++ {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = out[i-1][j] * (1 + rng.NormFloat64()*0.002)
		}
	}
	return out
}

func seriesOpts() numarck.Options {
	return numarck.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: numarck.Clustering}
}

func TestCompressSeriesRoundTrip(t *testing.T) {
	iters := makeIterations(3000, 8, 1)
	s, err := numarck.CompressSeries(iters, seriesOpts())
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d", s.Len())
	}
	all, err := s.ReconstructAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range iters {
		bound := math.Pow(1.001, float64(i)) - 1 + 1e-12
		for j := range iters[i] {
			rel := math.Abs(all[i][j]-iters[i][j]) / math.Abs(iters[i][j])
			if rel > bound*1.5 {
				t.Fatalf("iteration %d point %d: error %v exceeds envelope %v", i, j, rel, bound*1.5)
			}
		}
	}
	// First iteration is exact.
	for j := range iters[0] {
		if all[0][j] != iters[0][j] {
			t.Fatal("first iteration not exact")
		}
	}
	// Single-iteration reconstruction matches the batch one.
	r5, err := s.Reconstruct(5)
	if err != nil {
		t.Fatal(err)
	}
	for j := range r5 {
		if r5[j] != all[5][j] {
			t.Fatalf("Reconstruct(5) differs at %d", j)
		}
	}
}

func TestCompressSeriesSavesStorage(t *testing.T) {
	iters := makeIterations(5000, 10, 2)
	s, err := numarck.CompressSeries(iters, seriesOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r := s.CompressionRatio(); r < 50 {
		t.Errorf("series compression %v%%", r)
	}
	if s.StorageBytes() >= 8*5000*10 {
		t.Errorf("storage %d not below raw", s.StorageBytes())
	}
}

func TestCompressSeriesErrors(t *testing.T) {
	if _, err := numarck.CompressSeries(nil, seriesOpts()); !errors.Is(err, numarck.ErrSeries) {
		t.Errorf("empty: %v", err)
	}
	iters := makeIterations(10, 2, 3)
	iters[1] = iters[1][:5] // length mismatch mid-series
	if _, err := numarck.CompressSeries(iters, seriesOpts()); err == nil {
		t.Error("length mismatch accepted")
	}
	s, err := numarck.CompressSeries(makeIterations(10, 3, 4), seriesOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reconstruct(-1); !errors.Is(err, numarck.ErrSeries) {
		t.Errorf("negative index: %v", err)
	}
	if _, err := s.Reconstruct(3); !errors.Is(err, numarck.ErrSeries) {
		t.Errorf("past-end index: %v", err)
	}
}

func TestCompressSeriesSingleIteration(t *testing.T) {
	s, err := numarck.CompressSeries(makeIterations(100, 1, 5), seriesOpts())
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	r, err := s.Reconstruct(0)
	if err != nil || len(r) != 100 {
		t.Errorf("reconstruct: %v, %d values", err, len(r))
	}
}
