package numarck_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"numarck"
)

func TestPublicEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	prev := make([]float64, n)
	cur := make([]float64, n)
	for i := range prev {
		prev[i] = 100 + rng.Float64()*50
		cur[i] = prev[i] * (1 + rng.NormFloat64()*0.002)
	}
	for _, s := range numarck.Strategies {
		enc, err := numarck.Encode(prev, cur, numarck.Options{
			ErrorBound: 0.001,
			IndexBits:  8,
			Strategy:   s,
		})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		rec, err := enc.Decode(prev)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cur {
			trueR := (cur[i] - prev[i]) / prev[i]
			recR := (rec[i] - prev[i]) / prev[i]
			if math.Abs(recR-trueR) > 0.001+1e-12 {
				t.Fatalf("%v: bound violated at %d", s, i)
			}
		}
		if _, err := enc.CompressionRatio(); err != nil {
			t.Errorf("CompressionRatio: %v", err)
		}
	}
}

func TestPublicParseStrategy(t *testing.T) {
	s, err := numarck.ParseStrategy("clustering")
	if err != nil || s != numarck.Clustering {
		t.Errorf("ParseStrategy = %v, %v", s, err)
	}
}

func TestPublicStoreRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := numarck.CreateStore(dir, numarck.Options{
		ErrorBound: 0.001, IndexBits: 8, Strategy: numarck.Clustering,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := numarck.NewWriter(st, 0)
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 1000)
	for i := range data {
		data[i] = 10 + rng.Float64()
	}
	for it := 0; it < 4; it++ {
		if it > 0 {
			for i := range data {
				data[i] *= 1 + rng.NormFloat64()*0.001
			}
		}
		if _, err := w.Append(it, map[string][]float64{"v": data}); err != nil {
			t.Fatalf("append %d: %v", it, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := numarck.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st2.Restart("v", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rec {
		rel := math.Abs(rec[i]-data[i]) / data[i]
		if rel > 0.005 {
			t.Fatalf("restart error %v at %d", rel, i)
		}
	}
}
