// Benchmarks that regenerate every table and figure of the paper's
// evaluation section (§III). Each BenchmarkFigN/BenchmarkTableN runs a
// reduced-size version of the corresponding experiment per iteration
// and reports the headline metric via b.ReportMetric; `go run
// ./cmd/experiments -exp all` performs the full-size runs recorded in
// EXPERIMENTS.md.
//
// Run with: go test -bench=. -benchmem
package numarck_test

import (
	"bytes"
	"math/rand"
	"testing"

	"numarck"
	"numarck/internal/experiments"
)

const benchSeed = experiments.DefaultSeed

// BenchmarkFig1ChangeDistribution regenerates Fig. 1: the distribution
// of rlus change ratios between consecutive iterations.
func BenchmarkFig1ChangeDistribution(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		frac = res.FracBelow["0.5%"]
	}
	b.ReportMetric(frac*100, "%<0.5%change")
}

// BenchmarkFig3Histograms regenerates Fig. 3: the 255-bin histograms of
// FLASH dens changes under the three strategies.
func BenchmarkFig3Histograms(b *testing.B) {
	var occupied int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		occupied = res.Strategies[2].OccupiedBins
	}
	b.ReportMetric(float64(occupied), "clustering-bins")
}

// BenchmarkFig4CMIP5 regenerates Fig. 4 (reduced to 8 iterations):
// per-strategy incompressible ratio and mean error on the six CMIP5
// variables.
func BenchmarkFig4CMIP5(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(8, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range res.Results {
			if r.Opt.Strategy == numarck.Clustering && r.AvgGamma() > worst {
				worst = r.AvgGamma()
			}
		}
	}
	b.ReportMetric(worst*100, "worst-clustering-gamma%")
}

// BenchmarkFig5FLASH regenerates Fig. 5 (reduced to 8 checkpoints) on
// the ten FLASH variables.
func BenchmarkFig5FLASH(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(8, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range res.Results {
			if r.Opt.Strategy == numarck.Clustering && r.AvgGamma() > worst {
				worst = r.AvgGamma()
			}
		}
	}
	b.ReportMetric(worst*100, "worst-clustering-gamma%")
}

// BenchmarkFig6Precision regenerates Fig. 6 (reduced to 10 iterations):
// the B in {8,9,10} sweep on rlds with equal-width binning.
func BenchmarkFig6Precision(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(10, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		drop = res.Rows[0].AvgGamma - res.Rows[1].AvgGamma
	}
	b.ReportMetric(drop*100, "gamma-drop-8to9%")
}

// BenchmarkFig7ErrorBound regenerates Fig. 7 (reduced to 10
// iterations): the E sweep on abs550aer with clustering.
func BenchmarkFig7ErrorBound(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(10, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		drop = res.Rows[0].AvgGamma - res.Rows[len(res.Rows)-1].AvgGamma
	}
	b.ReportMetric(drop*100, "gamma-drop-0.1to0.5%")
}

// BenchmarkTable1CompressionRatio regenerates Table I (reduced to 6
// iterations): B-Splines vs ISABELA vs NUMARCK compression ratios on
// the ten datasets.
func BenchmarkTable1CompressionRatio(b *testing.B) {
	var wins int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTables(experiments.TableConfig{Iterations: 6, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		wins = 0
		for _, row := range res.Rows {
			if row.RNUMARCK.Mean > row.RISABELA.Mean {
				wins++
			}
		}
	}
	b.ReportMetric(float64(wins), "numarck-wins/10")
}

// BenchmarkTable2Accuracy regenerates Table II (reduced to 6
// iterations): Pearson rho and RMSE for the three compressors.
func BenchmarkTable2Accuracy(b *testing.B) {
	var minRho float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTables(experiments.TableConfig{Iterations: 6, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		minRho = 1
		for _, row := range res.Rows {
			if row.RhoNUMARCK.Mean < minRho {
				minRho = row.RhoNUMARCK.Mean
			}
		}
	}
	b.ReportMetric(minRho, "min-numarck-rho")
}

// BenchmarkFig8Restart regenerates Fig. 8 (reduced): restart the FLASH
// simulation from reconstructed checkpoints at distances 2 and 3 and
// measure accumulated error over 3 continued checkpoints.
func BenchmarkFig8Restart(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(experiments.Fig8Config{
			Distances:           []int{2, 3},
			ContinueCheckpoints: 3,
			Seed:                benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		sums := res.Summarize()
		worst = sums[2].WorstMaxErr // clustering
	}
	b.ReportMetric(worst*100, "clustering-worst-max-err%")
}

// BenchmarkAblationSeeding regenerates the k-means seeding ablation
// (reduced to 4 iterations) on abs550aer.
func BenchmarkAblationSeeding(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSeedingAblation(4, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var h, u float64
		for _, row := range res.Rows {
			h += row.GammaHistogram
			u += row.GammaUniform
		}
		gap = (u - h) / float64(len(res.Rows))
	}
	b.ReportMetric(gap*100, "gamma-advantage%")
}

// BenchmarkAblationDistributed regenerates the local-vs-global table
// ablation: data movement and storage across rank counts.
func BenchmarkAblationDistributed(b *testing.B) {
	var moved int64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDistributedAblation(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		moved = 0
		for _, row := range res.Rows {
			if row.Ranks == 16 && row.Mode.String() == "global-table" {
				moved = row.BytesMoved
			}
		}
	}
	b.ReportMetric(float64(moved), "bytes-moved-16ranks")
}

// --- micro-benchmarks of the core encode/decode paths ----------------

func benchData(n int) (prev, cur []float64) {
	rng := rand.New(rand.NewSource(1))
	prev = make([]float64, n)
	cur = make([]float64, n)
	for i := range prev {
		prev[i] = 10 + rng.Float64()*90
		change := rng.NormFloat64() * 0.002
		if rng.Float64() < 0.02 {
			change = rng.NormFloat64() * 0.2
		}
		cur[i] = prev[i] * (1 + change)
	}
	return prev, cur
}

func benchEncode(b *testing.B, s numarck.Strategy, n int) {
	prev, cur := benchData(n)
	opt := numarck.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: s}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := numarck.Encode(prev, cur, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeEqualWidth64K(b *testing.B) { benchEncode(b, numarck.EqualWidth, 1<<16) }
func BenchmarkEncodeLogScale64K(b *testing.B)   { benchEncode(b, numarck.LogScale, 1<<16) }
func BenchmarkEncodeClustering64K(b *testing.B) { benchEncode(b, numarck.Clustering, 1<<16) }
func BenchmarkEncodeClustering1M(b *testing.B)  { benchEncode(b, numarck.Clustering, 1<<20) }

// benchStreamEncode measures the out-of-core pipeline against the
// in-memory BenchmarkEncode* figures above: same data, same options,
// chunked two-pass encode to the v2 format.
func benchStreamEncode(b *testing.B, s numarck.Strategy, n int) {
	prev, cur := benchData(n)
	enc := numarck.StreamEncoder{
		Opt:    numarck.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: s},
		Config: numarck.StreamConfig{ChunkPoints: 1 << 14},
	}
	var buf bytes.Buffer
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := enc.Encode(&buf, "bench", 1, numarck.SliceSource(prev), numarck.SliceSource(cur)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamEncodeEqualWidth64K(b *testing.B) {
	benchStreamEncode(b, numarck.EqualWidth, 1<<16)
}
func BenchmarkStreamEncodeClustering64K(b *testing.B) {
	benchStreamEncode(b, numarck.Clustering, 1<<16)
}

// benchStreamDecode measures the parallel chunked decode of a v2 file
// at a given worker count.
func benchStreamDecode(b *testing.B, workers int) {
	const n = 1 << 16
	prev, cur := benchData(n)
	enc := numarck.StreamEncoder{
		Opt:    numarck.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: numarck.Clustering},
		Config: numarck.StreamConfig{ChunkPoints: 1 << 13},
	}
	var buf bytes.Buffer
	if _, err := enc.Encode(&buf, "bench", 1, numarck.SliceSource(prev), numarck.SliceSource(cur)); err != nil {
		b.Fatal(err)
	}
	dec := numarck.StreamDecoder{Config: numarck.StreamConfig{Workers: workers}}
	sink := 0
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = 0
		err := dec.Decode(bytes.NewReader(buf.Bytes()), int64(buf.Len()), numarck.SliceSource(prev), func(vals []float64) error {
			sink += len(vals)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if sink != n {
		b.Fatalf("decoded %d points", sink)
	}
}

func BenchmarkStreamDecode1W64K(b *testing.B) { benchStreamDecode(b, 1) }
func BenchmarkStreamDecode8W64K(b *testing.B) { benchStreamDecode(b, 8) }

func BenchmarkDecode64K(b *testing.B) {
	prev, cur := benchData(1 << 16)
	enc, err := numarck.Encode(prev, cur, numarck.Options{
		ErrorBound: 0.001, IndexBits: 8, Strategy: numarck.Clustering,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * len(cur)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Decode(prev); err != nil {
			b.Fatal(err)
		}
	}
}
