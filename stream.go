package numarck

import (
	"errors"
	"fmt"
	"io"
	"os"

	"numarck/internal/checkpoint"
	"numarck/internal/chunk"
	"numarck/internal/obs"
	"numarck/internal/rawio"
)

// Source is a re-readable float64 array the streaming codec reads in
// windows; files (OpenRaw) and in-memory slices (SliceSource) satisfy
// it.
type Source = chunk.Source

// SliceSource adapts an in-memory slice to Source.
type SliceSource = chunk.SliceSource

// StreamConfig tunes the streaming pipeline: chunk size, worker count,
// an optional memory budget, and an optional table-input cap. The zero
// value uses defaults.
type StreamConfig = chunk.Config

// StreamResult summarizes a streaming encode.
type StreamResult = chunk.Result

// OpenRaw opens a raw little-endian float64 file as a Source; the
// caller must Close it.
func OpenRaw(path string) (*rawio.FileReader, error) { return rawio.OpenFile(path) }

// StreamEncoder encodes checkpoint transitions out-of-core: the inputs
// are read twice in fixed-size chunks (once to learn the bin table,
// once to assign bins) and the chunked v2 delta format streams out one
// section at a time, so memory stays within Config's budget no matter
// how large the data is. With a default Config the output is
// byte-identical to the in-memory Encode of the same data serialized
// with the same chunking.
type StreamEncoder struct {
	// Opt is the encode options (error bound, index bits, strategy).
	Opt Options
	// Config tunes chunking, parallelism, and memory.
	Config StreamConfig
	// Recorder, when non-nil, receives per-stage timings (ratio, table
	// learning, assignment, bitpack, CRC, IO, queue wait) and
	// chunk/byte counters from the whole streaming pipeline. Nil keeps
	// instrumentation a no-op.
	Recorder *Recorder
}

// Encode streams the encode of prev → cur as a chunked v2 delta file
// to w.
func (e StreamEncoder) Encode(w io.Writer, variable string, iteration int, prev, cur Source) (*StreamResult, error) {
	cfg := e.Config
	if e.Recorder != nil {
		cfg.Obs = e.Recorder
	}
	return chunk.EncodeDeltaV2(w, variable, iteration, prev, cur, e.Opt, cfg)
}

// EncodeFiles streams the encode of the transition between two raw
// float64 files into a v2 delta file at dstPath.
func (e StreamEncoder) EncodeFiles(dstPath, variable string, iteration int, prevPath, curPath string) (*StreamResult, error) {
	prev, err := rawio.OpenFile(prevPath)
	if err != nil {
		return nil, err
	}
	//lint:ignore errcheck read-only source; a close error cannot lose data
	defer prev.Close()
	cur, err := rawio.OpenFile(curPath)
	if err != nil {
		return nil, err
	}
	//lint:ignore errcheck read-only source; a close error cannot lose data
	defer cur.Close()
	dst, err := os.Create(dstPath)
	if err != nil {
		return nil, err
	}
	res, err := e.Encode(dst, variable, iteration, prev, cur)
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// StreamDecoder reconstructs checkpoints from chunked v2 delta files
// without materializing the whole array: chunks are decoded
// concurrently and delivered in point order.
type StreamDecoder struct {
	// Config bounds the decode parallelism (Workers); chunk size is
	// fixed by the file.
	Config StreamConfig
	// Recorder, when non-nil, receives per-stage decode timings
	// (section reads, CRC checks, index unpacking, reconstruction) and
	// chunk/byte counters. Nil keeps instrumentation a no-op.
	Recorder *Recorder
}

// Decode reads a v2 delta from r (size bytes long), reconstructs it on
// top of prev, and passes each chunk's values to emit in point order.
// emit must copy anything it keeps.
func (d StreamDecoder) Decode(r io.ReaderAt, size int64, prev Source, emit func(vals []float64) error) error {
	dr, err := checkpoint.OpenDeltaV2(r, size)
	if err != nil {
		return err
	}
	cfg := d.Config
	if d.Recorder != nil {
		cfg.Obs = d.Recorder
	}
	return chunk.DecodeDeltaV2(dr, prev, cfg, emit)
}

// DecodeRecover is Decode in degraded mode: a chunk whose section
// fails its CRC or structure check is quarantined — its point range is
// emitted with prev's values instead of decoded ones, nothing from the
// bad section is used — while every healthy chunk decodes normally.
// Chunks are processed sequentially in point order. The returned
// *PartialDataError is nil when the file was fully healthy; otherwise
// it carries per-chunk statuses and the exact lost index ranges.
// Failures that are not chunk-local (an unreadable header, a length
// mismatch with prev) fail the whole decode as in Decode.
func (d StreamDecoder) DecodeRecover(r io.ReaderAt, size int64, prev Source, emit func(vals []float64) error) (*PartialDataError, error) {
	dr, err := checkpoint.OpenDeltaV2(r, size)
	if err != nil {
		return nil, err
	}
	if d.Recorder != nil {
		dr.SetRecorder(d.Recorder)
	}
	meta := dr.Meta()
	if prev.Len() != meta.N {
		return nil, fmt.Errorf("numarck: prev has %d points, checkpoint has %d", prev.Len(), meta.N)
	}
	var (
		statuses []ChunkStatus
		lost     []Range
		pbuf     = make([]float64, meta.ChunkPoints)
		dbuf     = make([]float64, meta.ChunkPoints)
	)
	for i := 0; i < meta.ChunkCount; i++ {
		start, np := dr.ChunkSpan(i)
		pw, dw := pbuf[:np], dbuf[:np]
		if err := prev.ReadFloats(pw, start); err != nil {
			return nil, err
		}
		cerr := dr.DecodeChunkInto(i, pw, dw)
		if cerr != nil {
			var ce *checkpoint.ChunkError
			if !errors.As(cerr, &ce) {
				return nil, cerr
			}
			copy(dw, pw)
			lost = append(lost, Range{Lo: start, Hi: start + np})
		}
		statuses = append(statuses, ChunkStatus{Chunk: i, Start: start, Points: np, Err: cerr})
		if err := emit(dw); err != nil {
			return nil, err
		}
	}
	if len(lost) == 0 {
		return nil, nil
	}
	if d.Recorder != nil {
		d.Recorder.Add(obs.CounterChunksQuarantined, int64(len(lost)))
	}
	return &PartialDataError{
		Variable:  meta.Variable,
		Iteration: meta.Iteration,
		Chunks:    statuses,
		Lost:      lost,
	}, nil
}

// DecodeFiles reconstructs deltaPath on top of the raw float64 file at
// prevPath, writing the result to outPath, and returns the number of
// points written.
func (d StreamDecoder) DecodeFiles(deltaPath, prevPath, outPath string) (int, error) {
	df, err := os.Open(deltaPath)
	if err != nil {
		return 0, err
	}
	//lint:ignore errcheck read-only source; a close error cannot lose data
	defer df.Close()
	info, err := df.Stat()
	if err != nil {
		return 0, err
	}
	prev, err := rawio.OpenFile(prevPath)
	if err != nil {
		return 0, err
	}
	//lint:ignore errcheck read-only source; a close error cannot lose data
	defer prev.Close()
	out, err := os.Create(outPath)
	if err != nil {
		return 0, err
	}
	w := rawio.NewWriter(out)
	err = d.Decode(df, info.Size(), prev, func(vals []float64) error {
		return w.WriteFloats(vals)
	})
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	if w.Count() != prev.Len() {
		return w.Count(), fmt.Errorf("numarck: decoded %d points, prev has %d", w.Count(), prev.Len())
	}
	return w.Count(), nil
}
