package fpc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, vals []float64) {
	t.Helper()
	comp := Compress(vals)
	got, err := Decompress(comp)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if len(got) != len(vals) {
		t.Fatalf("length %d, want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
		}
	}
}

func TestRoundTripEmpty(t *testing.T) { roundTrip(t, nil) }

func TestRoundTripSingle(t *testing.T) { roundTrip(t, []float64{math.Pi}) }

func TestRoundTripOddCount(t *testing.T) {
	roundTrip(t, []float64{1, 2, 3})
}

func TestRoundTripSpecialValues(t *testing.T) {
	roundTrip(t, []float64{
		0, math.Copysign(0, -1), 1, -1,
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.Pi, math.E, 1e-300, 1e300,
	})
}

func TestRoundTripSmooth(t *testing.T) {
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = math.Sin(float64(i) * 0.001)
	}
	roundTrip(t, vals)
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64()*5)
	}
	roundTrip(t, vals)
}

func TestRoundTripAllTableSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = float64(rng.Intn(100)) * 0.5
	}
	for _, bits := range []int{4, 8, 12, 16, 20} {
		comp := CompressBits(vals, bits)
		got, err := Decompress(comp)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("bits=%d: value %d mismatch", bits, i)
			}
		}
	}
	// Out-of-range table sizes clamp rather than fail.
	if _, err := Decompress(CompressBits(vals[:10], 1)); err != nil {
		t.Errorf("clamped small table: %v", err)
	}
	if _, err := Decompress(CompressBits(vals[:10], 99)); err != nil {
		t.Errorf("clamped large table: %v", err)
	}
}

func TestCompressesRepetitiveData(t *testing.T) {
	// Constant data: FCM predicts perfectly after warm-up, so the
	// stream should be far below 8 bytes/value.
	vals := make([]float64, 100000)
	for i := range vals {
		vals[i] = 42.5
	}
	comp := Compress(vals)
	if r := Ratio(len(comp), len(vals)); r < 80 {
		t.Errorf("constant data ratio = %v%%, want > 80%%", r)
	}
}

func TestLinearSequenceCompresses(t *testing.T) {
	// Arithmetic progressions are DFCM's specialty.
	vals := make([]float64, 50000)
	for i := range vals {
		vals[i] = float64(i)
	}
	comp := Compress(vals)
	if r := Ratio(len(comp), len(vals)); r < 50 {
		t.Errorf("linear data ratio = %v%%, want > 50%%", r)
	}
}

func TestRandomMantissaDoesNotCompress(t *testing.T) {
	// Full-entropy data must not round-trip incorrectly; ratio will be
	// near zero or negative (the 4-bit headers).
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = math.Float64frombits(rng.Uint64())
		if math.IsNaN(vals[i]) {
			vals[i] = 1.5
		}
	}
	roundTrip(t, vals)
	comp := Compress(vals)
	if r := Ratio(len(comp), len(vals)); r > 20 {
		t.Errorf("random data ratio = %v%%, suspiciously high", r)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	comp := Compress(vals)

	cases := map[string][]byte{
		"empty":            {},
		"short":            comp[:5],
		"bad magic":        append([]byte{'X'}, comp[1:]...),
		"truncated":        comp[:len(comp)-1],
		"trailing garbage": append(append([]byte{}, comp...), 0xFF),
	}
	for name, data := range cases {
		if _, err := Decompress(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	// Implausible count.
	bad := append([]byte{}, comp...)
	for i := 5; i < 13; i++ {
		bad[i] = 0xFF
	}
	if _, err := Decompress(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge count: err = %v", err)
	}
	// Bad table bits byte.
	bad2 := append([]byte{}, comp...)
	bad2[4] = 99
	if _, err := Decompress(bad2); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad table bits: err = %v", err)
	}
}

func TestLeadingZeroBytes(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 8},
		{1, 7},
		{0xFF, 7},
		{0x100, 6},
		{0xFFFFFFFFFFFFFFFF, 0},
		{0x00FFFFFFFFFFFFFF, 1},
		{0x0000000000FF0000, 5},
	}
	for _, c := range cases {
		if got := leadingZeroBytes(c.x); got != c.want {
			t.Errorf("leadingZeroBytes(%x) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestLZBCodeRoundTrip(t *testing.T) {
	for n := 0; n <= 8; n++ {
		code, stored := encodeLZB(n)
		if code < 0 || code > 7 {
			t.Errorf("encodeLZB(%d) code = %d out of 3 bits", n, code)
		}
		if stored > n {
			t.Errorf("encodeLZB(%d) stores %d > actual", n, stored)
		}
		if decodeLZB(code) != stored {
			t.Errorf("decodeLZB(encodeLZB(%d)) = %d, want %d", n, decodeLZB(code), stored)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		comp := CompressBits(vals, 10)
		got, err := Decompress(comp)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(0, 0) != 0 {
		t.Error("Ratio(0,0) != 0")
	}
	if r := Ratio(400, 100); r != 50 {
		t.Errorf("Ratio(400,100) = %v, want 50", r)
	}
	if r := Ratio(1000, 100); r >= 0 {
		t.Errorf("expanding ratio = %v, want negative", r)
	}
}

func BenchmarkCompressSmooth(b *testing.B) {
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = math.Sin(float64(i) * 0.001)
	}
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(vals)
	}
}

func BenchmarkDecompressSmooth(b *testing.B) {
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = math.Sin(float64(i) * 0.001)
	}
	comp := Compress(vals)
	b.SetBytes(int64(len(vals) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}
