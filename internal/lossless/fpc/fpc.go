// Package fpc implements the FPC lossless double-precision
// floating-point compressor of Burtscher and Ratanaworabhan (IEEE
// Trans. Computers 2009), which the NUMARCK paper cites as the lossless
// stage for full checkpoints and as a candidate post-pass over the
// encoded payload.
//
// FPC predicts each 64-bit value twice — with an FCM (finite context
// method) predictor and a DFCM (differential FCM) predictor — XORs the
// value with the better prediction, and stores the XOR residue minus
// its leading zero bytes. Each value costs 4 bits of header (1 bit
// predictor selector + 3 bits leading-zero-byte code) plus the nonzero
// residue bytes; two headers share one byte. Like the original, the
// code for 4 leading zero bytes is folded into 3 (the count is rare and
// 3 bits cannot represent all of 0..8).
package fpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// DefaultTableBits sizes the predictor hash tables at 2^16 entries,
// matching the reference implementation's default memory budget.
const DefaultTableBits = 16

const maxTableBits = 24

// magic identifies an FPC stream produced by this package.
var magic = [4]byte{'F', 'P', 'C', '1'}

// ErrCorrupt reports a malformed FPC stream.
var ErrCorrupt = errors.New("fpc: corrupt stream")

// predictor state shared by compressor and decompressor. Both sides
// update it with the same sequence of decoded values, so predictions
// agree without transmitting state.
type predictor struct {
	fcm      []uint64
	dfcm     []uint64
	fcmHash  uint64
	dfcmHash uint64
	lastVal  uint64
	mask     uint64
}

func newPredictor(tableBits int) *predictor {
	size := 1 << uint(tableBits)
	return &predictor{
		fcm:  make([]uint64, size),
		dfcm: make([]uint64, size),
		mask: uint64(size - 1),
	}
}

// predict returns the FCM and DFCM predictions for the next value.
func (p *predictor) predict() (fcmPred, dfcmPred uint64) {
	return p.fcm[p.fcmHash&p.mask], p.dfcm[p.dfcmHash&p.mask] + p.lastVal
}

// update feeds the true value into both predictors.
func (p *predictor) update(val uint64) {
	p.fcm[p.fcmHash&p.mask] = val
	p.fcmHash = (p.fcmHash << 6) ^ (val >> 48)
	p.dfcm[p.dfcmHash&p.mask] = val - p.lastVal
	p.dfcmHash = (p.dfcmHash << 2) ^ ((val - p.lastVal) >> 40)
	p.lastVal = val
}

// leadingZeroBytes counts how many of the most significant bytes of x
// are zero (0..8).
func leadingZeroBytes(x uint64) int {
	n := 0
	for n < 8 && x&0xFF00000000000000 == 0 {
		x <<= 8
		n++
	}
	if x == 0 {
		return 8
	}
	return n
}

// encodeLZB maps a leading-zero-byte count to its 3-bit code. Count 4
// is folded down to 3 (one extra residue byte), as in reference FPC.
func encodeLZB(n int) (code, stored int) {
	if n == 4 {
		return 3, 3
	}
	if n > 4 {
		return n - 1, n
	}
	return n, n
}

// decodeLZB maps a 3-bit code back to the stored leading-zero count.
func decodeLZB(code int) int {
	if code >= 4 {
		return code + 1
	}
	return code
}

// Compress encodes vals into a self-describing FPC stream.
func Compress(vals []float64) []byte {
	return CompressBits(vals, DefaultTableBits)
}

// CompressBits is Compress with an explicit predictor table size of
// 2^tableBits entries (clamped to [4, 24]).
func CompressBits(vals []float64, tableBits int) []byte {
	if tableBits < 4 {
		tableBits = 4
	}
	if tableBits > maxTableBits {
		tableBits = maxTableBits
	}
	p := newPredictor(tableBits)

	// Layout: magic | tableBits u8 | count u64 | header bytes
	// (ceil(n/2)) | residue bytes.
	n := len(vals)
	headers := make([]byte, (n+1)/2)
	residues := make([]byte, 0, n*8)

	var scratch [8]byte
	for i, v := range vals {
		bits := math.Float64bits(v)
		fcmPred, dfcmPred := p.predict()
		xorF := bits ^ fcmPred
		xorD := bits ^ dfcmPred
		sel := 0
		resid := xorF
		if leadingZeroBytes(xorD) > leadingZeroBytes(xorF) {
			sel = 1
			resid = xorD
		}
		code, stored := encodeLZB(leadingZeroBytes(resid))
		nres := 8 - stored
		binary.BigEndian.PutUint64(scratch[:], resid)
		residues = append(residues, scratch[8-nres:]...)
		//lint:ignore bindex sel <= 1 and code <= 7: a 4-bit header nibble
		h := byte(sel<<3 | code)
		if i%2 == 0 {
			headers[i/2] = h << 4
		} else {
			headers[i/2] |= h
		}
		p.update(bits)
	}

	out := make([]byte, 0, 4+1+8+len(headers)+len(residues))
	out = append(out, magic[:]...)
	//lint:ignore bindex tableBits is clamped to [4, maxTableBits] above
	out = append(out, byte(tableBits))
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(n))
	out = append(out, cnt[:]...)
	out = append(out, headers...)
	out = append(out, residues...)
	return out
}

// Decompress decodes an FPC stream produced by Compress.
func Decompress(data []byte) ([]float64, error) {
	if len(data) < 13 {
		return nil, fmt.Errorf("%w: stream shorter than header", ErrCorrupt)
	}
	for i := range magic {
		if data[i] != magic[i] {
			return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
	}
	tableBits := int(data[4])
	if tableBits < 4 || tableBits > maxTableBits {
		return nil, fmt.Errorf("%w: table bits %d", ErrCorrupt, tableBits)
	}
	n64 := binary.LittleEndian.Uint64(data[5:13])
	if n64 > uint64(1)<<40 {
		return nil, fmt.Errorf("%w: implausible count %d", ErrCorrupt, n64)
	}
	n := int(n64)
	headerLen := (n + 1) / 2
	if len(data) < 13+headerLen {
		return nil, fmt.Errorf("%w: truncated headers", ErrCorrupt)
	}
	headers := data[13 : 13+headerLen]
	residues := data[13+headerLen:]

	p := newPredictor(tableBits)
	out := make([]float64, n)
	ri := 0
	var scratch [8]byte
	for i := 0; i < n; i++ {
		var h byte
		if i%2 == 0 {
			h = headers[i/2] >> 4
		} else {
			h = headers[i/2] & 0x0F
		}
		sel := int(h >> 3)
		stored := decodeLZB(int(h & 0x07))
		nres := 8 - stored
		if ri+nres > len(residues) {
			return nil, fmt.Errorf("%w: truncated residues at value %d", ErrCorrupt, i)
		}
		scratch = [8]byte{}
		copy(scratch[8-nres:], residues[ri:ri+nres])
		ri += nres
		resid := binary.BigEndian.Uint64(scratch[:])

		fcmPred, dfcmPred := p.predict()
		var bits uint64
		if sel == 0 {
			bits = resid ^ fcmPred
		} else {
			bits = resid ^ dfcmPred
		}
		out[i] = math.Float64frombits(bits)
		p.update(bits)
	}
	if ri != len(residues) {
		return nil, fmt.Errorf("%w: %d trailing residue bytes", ErrCorrupt, len(residues)-ri)
	}
	return out, nil
}

// Ratio returns the storage saving of compressed relative to storing n
// raw float64 values, in percent (negative when FPC expands the data,
// which happens on incompressible inputs because of the 4-bit headers).
func Ratio(compressedLen, n int) float64 {
	if n == 0 {
		return 0
	}
	raw := 8 * n
	return float64(raw-compressedLen) / float64(raw) * 100
}
