package xorpre

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, vals []float64) []byte {
	t.Helper()
	comp := Compress(vals)
	got, err := Decompress(comp)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if len(got) != len(vals) {
		t.Fatalf("len %d, want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
		}
	}
	return comp
}

func TestRoundTripEmpty(t *testing.T)  { roundTrip(t, nil) }
func TestRoundTripSingle(t *testing.T) { roundTrip(t, []float64{math.Pi}) }

func TestRoundTripSpecials(t *testing.T) {
	roundTrip(t, []float64{
		0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, math.SmallestNonzeroFloat64, 1, -1,
	})
}

func TestConstantDataCompressesHard(t *testing.T) {
	vals := make([]float64, 50000)
	for i := range vals {
		vals[i] = 1234.5678
	}
	comp := roundTrip(t, vals)
	if r := Ratio(len(comp), len(vals)); r < 95 {
		t.Errorf("constant data ratio = %v%%", r)
	}
}

func TestSmoothDataCompressesSome(t *testing.T) {
	vals := make([]float64, 50000)
	for i := range vals {
		vals[i] = 300 + math.Sin(float64(i)*1e-4)
	}
	comp := roundTrip(t, vals)
	if r := Ratio(len(comp), len(vals)); r < 5 {
		t.Errorf("smooth data ratio = %v%%, expected XOR cancellation to help", r)
	}
}

func TestRandomDataRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64()*10)
	}
	comp := roundTrip(t, vals)
	// Random data should not expand catastrophically (tag overhead
	// bounded by 1/127 per literal byte).
	if r := Ratio(len(comp), len(vals)); r < -5 {
		t.Errorf("random data expanded by %v%%", -r)
	}
}

func TestLongZeroRuns(t *testing.T) {
	// Repeated identical values produce >16K zero bytes, exercising
	// the run-split path.
	vals := make([]float64, 10000)
	roundTrip(t, vals)
}

func TestDecompressCorrupt(t *testing.T) {
	comp := Compress([]float64{1, 2, 3})
	cases := map[string][]byte{
		"empty":     {},
		"short":     comp[:8],
		"bad magic": append([]byte{'Y'}, comp[1:]...),
		"truncated": comp[:len(comp)-1],
		"trailing":  append(append([]byte{}, comp...), 0x01, 0xAA),
	}
	for name, data := range cases {
		if _, err := Decompress(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Implausible count.
	bad := append([]byte{}, comp...)
	for i := 4; i < 12; i++ {
		bad[i] = 0xFF
	}
	if _, err := Decompress(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge count: %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		comp := Compress(vals)
		got, err := Decompress(comp)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompressSmooth(b *testing.B) {
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = 300 + math.Sin(float64(i)*1e-4)
	}
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(vals)
	}
}
