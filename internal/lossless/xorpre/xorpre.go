// Package xorpre implements XOR-preconditioned lossless compression of
// float64 streams, the related-work approach of Bicer et al.'s CC
// compressor (NUMARCK paper ref [3]) and, in masked form, of
// Bautista-Gomez & Cappello's binary-mask preconditioner (ref [2]):
// XORing each value with its predecessor cancels the bits that did not
// change between adjacent values, turning temporally or spatially
// smooth data into streams with long runs of zero bytes that a simple
// byte-level run-length coder then squeezes.
//
// NUMARCK's related-work section uses these as the lossless points of
// comparison: they preserve values exactly but cap out well below the
// order-of-magnitude reductions error-bounded methods reach. The
// experiments harness reproduces that comparison on the synthetic
// checkpoint data.
package xorpre

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// magic identifies a stream produced by this package.
var magic = [4]byte{'X', 'O', 'R', '1'}

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("xorpre: corrupt stream")

// Compress encodes vals: XOR-delta against the previous value, then
// zero-byte run-length coding. The first value is stored raw.
func Compress(vals []float64) []byte {
	// Precondition: XOR with predecessor.
	xored := make([]byte, 8*len(vals))
	var prev uint64
	for i, v := range vals {
		bits := math.Float64bits(v)
		binary.LittleEndian.PutUint64(xored[8*i:], bits^prev)
		prev = bits
	}
	// Zero-byte RLE: literal runs are emitted as (0x01..0x7F, bytes)
	// and may contain zeros; zero runs of length >= 3 are emitted as
	// (0x80|lenHigh, lenLow) covering up to 2^14-1 zeros. Treating
	// short zero stretches as literals bounds the worst-case expansion
	// at one tag byte per 127 — scattered lone zeros (ubiquitous in
	// XOR streams) would otherwise shred the literal runs.
	out := make([]byte, 0, len(xored)/2+16)
	out = append(out, magic[:]...)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(vals)))
	out = append(out, cnt[:]...)

	const minRun = 3
	i := 0
	for i < len(xored) {
		// Find the next zero run of at least minRun bytes.
		runStart, runLen := len(xored), 0
		for j := i; j < len(xored); j++ {
			if xored[j] != 0 {
				continue
			}
			run := 1
			for j+run < len(xored) && xored[j+run] == 0 {
				run++
			}
			if run >= minRun {
				runStart, runLen = j, run
				break
			}
			j += run
		}
		// Emit everything before it as literals (zeros included).
		for i < runStart {
			lit := runStart - i
			if lit > 0x7F {
				lit = 0x7F
			}
			//lint:ignore bindex lit is clamped to 0x7F above
			out = append(out, byte(lit))
			out = append(out, xored[i:i+lit]...)
			i += lit
		}
		// Emit the zero run in chunks.
		for runLen > 0 {
			chunk := runLen
			if chunk > 1<<14-1 {
				chunk = 1<<14 - 1
			}
			//lint:ignore bindex chunk is clamped to 1<<14-1, so chunk>>8 fits 6 bits
			out = append(out, byte(0x80|chunk>>8), byte(chunk&0xFF))
			runLen -= chunk
			i += chunk
		}
	}
	return out
}

// Decompress decodes a stream produced by Compress.
func Decompress(data []byte) ([]float64, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("%w: shorter than header", ErrCorrupt)
	}
	for i := range magic {
		if data[i] != magic[i] {
			return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
	}
	n64 := binary.LittleEndian.Uint64(data[4:12])
	if n64 > 1<<40 {
		return nil, fmt.Errorf("%w: implausible count %d", ErrCorrupt, n64)
	}
	n := int(n64)
	xored := make([]byte, 0, 8*n)
	body := data[12:]
	i := 0
	for i < len(body) && len(xored) < 8*n {
		tag := body[i]
		i++
		if tag&0x80 != 0 {
			if i >= len(body) {
				return nil, fmt.Errorf("%w: truncated zero run", ErrCorrupt)
			}
			run := int(tag&0x7F)<<8 | int(body[i])
			i++
			for j := 0; j < run; j++ {
				xored = append(xored, 0)
			}
			continue
		}
		lit := int(tag)
		if lit == 0 {
			return nil, fmt.Errorf("%w: zero-length literal", ErrCorrupt)
		}
		if i+lit > len(body) {
			return nil, fmt.Errorf("%w: truncated literal", ErrCorrupt)
		}
		xored = append(xored, body[i:i+lit]...)
		i += lit
	}
	if len(xored) != 8*n {
		return nil, fmt.Errorf("%w: decoded %d bytes, want %d", ErrCorrupt, len(xored), 8*n)
	}
	if i != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-i)
	}
	// Undo the XOR preconditioning.
	out := make([]float64, n)
	var prev uint64
	for j := 0; j < n; j++ {
		bits := binary.LittleEndian.Uint64(xored[8*j:]) ^ prev
		out[j] = math.Float64frombits(bits)
		prev = bits
	}
	return out, nil
}

// Ratio returns the storage saving of compressed relative to n raw
// float64 values, in percent.
func Ratio(compressedLen, n int) float64 {
	if n == 0 {
		return 0
	}
	raw := 8 * n
	return float64(raw-compressedLen) / float64(raw) * 100
}
