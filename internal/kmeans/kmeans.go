// Package kmeans implements a goroutine-parallel one-dimensional k-means
// clustering used by NUMARCK's clustering-based approximation strategy
// (paper §II-C3). The paper uses the authors' MPI-parallel k-means
// package; this is the shared-memory equivalent: the assignment step is
// decomposed over points across workers, and the update step reduces the
// per-worker partial sums.
//
// To overcome k-means' sensitivity to the initial centroids the paper
// seeds them "with prior-knowledge from the equal-width histogram";
// SeedFromHistogram reproduces that: the initial centroids are the
// centers of the k most populated equal-width histogram bins (falling
// back to evenly spaced centers when fewer bins are occupied).
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"numarck/internal/fputil"
)

// Config controls a clustering run.
type Config struct {
	// K is the number of clusters. Required, >= 1.
	K int
	// MaxIter bounds the number of Lloyd iterations. Defaults to 100.
	MaxIter int
	// Tol stops iteration when the largest centroid movement falls
	// below it. Defaults to 1e-12 (absolute movement of ratios).
	Tol float64
	// Workers is the number of goroutines for the assignment step.
	// Defaults to GOMAXPROCS.
	Workers int
	// Seeds optionally fixes the initial centroids; len must equal K.
	// When nil, SeedFromHistogram(data, K) is used.
	Seeds []float64
}

// Result is the outcome of a clustering run.
type Result struct {
	// Centroids are the final cluster centers, sorted ascending.
	Centroids []float64
	// Assign[i] is the index into Centroids of point i's cluster.
	Assign []int
	// Sizes[c] is the number of points assigned to centroid c.
	Sizes []int
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
	// Converged reports whether the run stopped by Tol rather than
	// by MaxIter.
	Converged bool
}

// ErrNoData reports an empty input.
var ErrNoData = errors.New("kmeans: no data points")

// Run clusters data into cfg.K groups and returns the result. data is
// not modified. All points must be finite.
func Run(data []float64, cfg Config) (*Result, error) {
	if len(data) == 0 {
		return nil, ErrNoData
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmeans: K must be >= 1, got %d", cfg.K)
	}
	for i, x := range data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("kmeans: non-finite value %v at index %d", x, i)
		}
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-12
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > len(data) {
		cfg.Workers = len(data)
	}

	cents := cfg.Seeds
	if cents == nil {
		cents = SeedFromHistogram(data, cfg.K)
	}
	if len(cents) != cfg.K {
		return nil, fmt.Errorf("kmeans: %d seeds for K=%d", len(cents), cfg.K)
	}
	cents = append([]float64(nil), cents...)
	sort.Float64s(cents)

	res := &Result{
		Centroids: cents,
		Assign:    make([]int, len(data)),
		Sizes:     make([]int, cfg.K),
	}

	type partial struct {
		sum   []float64
		count []int
	}
	parts := make([]partial, cfg.Workers)
	for w := range parts {
		parts[w] = partial{sum: make([]float64, cfg.K), count: make([]int, cfg.K)}
	}

	chunk := (len(data) + cfg.Workers - 1) / cfg.Workers
	for iter := 0; iter < cfg.MaxIter; iter++ {
		res.Iterations = iter + 1
		// Assignment step, parallel over point ranges, accelerated by
		// a per-iteration uniform-grid index over the sorted centroids.
		ix := NewIndex(res.Centroids)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(data) {
				hi = len(data)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				p := &parts[w]
				for c := range p.sum {
					p.sum[c] = 0
					p.count[c] = 0
				}
				for i := lo; i < hi; i++ {
					c := ix.Nearest(data[i])
					res.Assign[i] = c
					p.sum[c] += data[i]
					p.count[c]++
				}
			}(w, lo, hi)
		}
		wg.Wait()

		// Update step: reduce partials into new centroids.
		moved := 0.0
		for c := 0; c < cfg.K; c++ {
			var sum float64
			var count int
			for w := range parts {
				sum += parts[w].sum[c]
				count += parts[w].count[c]
			}
			res.Sizes[c] = count
			if count == 0 {
				continue // empty cluster keeps its centroid
			}
			next := sum / float64(count)
			if d := math.Abs(next - res.Centroids[c]); d > moved {
				moved = d
			}
			res.Centroids[c] = next
		}
		// Centroid means of disjoint sorted intervals stay sorted, so
		// no re-sort is needed between iterations.
		if moved < cfg.Tol {
			res.Converged = true
			break
		}
	}
	return res, nil
}

// Nearest returns the index of the centroid closest to x. cents must be
// sorted ascending and non-empty. Ties go to the lower centroid.
// The binary search is inlined rather than delegated to sort.Search:
// this function runs once per point per Lloyd iteration and the closure
// indirection dominated encode profiles.
func Nearest(cents []float64, x float64) int {
	lo, hi := 0, len(cents) // first index with cents[i] >= x
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cents[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	switch {
	case lo == 0:
		return 0
	case lo == len(cents):
		return len(cents) - 1
	}
	if x-cents[lo-1] <= cents[lo]-x {
		return lo - 1
	}
	return lo
}

// Index is a uniform-grid accelerator for nearest-centroid queries.
// A data-dependent binary search costs hundreds of cycles in branch
// misses when called millions of times per Lloyd iteration; the grid
// maps a value to its cell in O(1) and scans the (typically 1-3)
// candidate centroids overlapping that cell.
type Index struct {
	cents    []float64
	lo, inv  float64
	loCand   []int32
	hiCand   []int32
	lastCell int
}

// NewIndex builds an accelerator over sorted centroids (non-empty).
func NewIndex(cents []float64) *Index {
	k := len(cents)
	ix := &Index{cents: cents}
	lo, hi := cents[0], cents[k-1]
	if hi <= lo {
		// All centroids equal: a single cell answers everything.
		ix.lo = lo
		ix.inv = 0
		ix.loCand = []int32{0}
		ix.hiCand = []int32{0}
		return ix
	}
	cells := 4 * k
	if cells < 64 {
		cells = 64
	}
	ix.lo = lo
	ix.inv = float64(cells) / (hi - lo)
	ix.lastCell = cells - 1
	ix.loCand = make([]int32, cells)
	ix.hiCand = make([]int32, cells)
	w := (hi - lo) / float64(cells)
	c := 0
	for i := 0; i < cells; i++ {
		edgeLo := lo + float64(i)*w
		edgeHi := edgeLo + w
		// First centroid >= edgeLo.
		for c < k && cents[c] < edgeLo {
			c++
		}
		first := c - 1
		if first < 0 {
			first = 0
		}
		last := c
		for last < k && cents[last] <= edgeHi {
			last++
		}
		// last is now one past the final centroid inside the cell;
		// include it as a right-side candidate.
		if last >= k {
			last = k - 1
		}
		//lint:ignore bindex first <= k, and k is capped at 2^24 bins by core.Options
		ix.loCand[i] = int32(first)
		//lint:ignore bindex last <= k, and k is capped at 2^24 bins by core.Options
		ix.hiCand[i] = int32(last)
	}
	return ix
}

// Nearest returns the index of the centroid closest to x (ties to the
// lower centroid), identical to the package-level Nearest.
func (ix *Index) Nearest(x float64) int {
	cell := 0
	if !fputil.IsZero(ix.inv) {
		// Compare before converting: for far-out-of-range x the scaled
		// offset can exceed the int range (even overflow to +Inf), where
		// int(f) is implementation-defined and may come out negative.
		f := (x - ix.lo) * ix.inv
		if f >= float64(ix.lastCell) {
			cell = ix.lastCell
		} else if f > 0 {
			cell = int(f)
		}
	}
	best := int(ix.loCand[cell])
	hiC := int(ix.hiCand[cell])
	if best == hiC {
		// Single candidate: most cells of a well-spread table resolve
		// here, skipping the distance computation entirely.
		return best
	}
	bestDist := math.Abs(ix.cents[best] - x)
	for c := best + 1; c <= hiC; c++ {
		d := math.Abs(ix.cents[c] - x)
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// SeedFromHistogram returns k initial centroids derived from an
// equal-width histogram of data, mirroring the paper's seeding. It
// builds a histogram with max(4k, 64) bins, takes the centers of the k
// most populated bins, and pads with evenly spaced centers across the
// data range when fewer than k bins are occupied. The result is sorted.
func SeedFromHistogram(data []float64, k int) []float64 {
	if k <= 0 || len(data) == 0 {
		return nil
	}
	lo, hi := data[0], data[0]
	for _, x := range data[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if fputil.Eq(lo, hi) {
		seeds := make([]float64, k)
		for i := range seeds {
			seeds[i] = lo
		}
		return seeds
	}
	bins := SeedHistogramBins(k)
	counts := make([]int, bins)
	w := (hi - lo) / float64(bins)
	for _, x := range data {
		i := int((x - lo) / w)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return SeedFromCounts(lo, hi, counts, k)
}

// SeedHistogramBins returns the number of equal-width histogram bins
// the seeding procedure uses for k clusters. Exported so distributed
// callers can build the same histogram across ranks and merge counts
// before seeding.
func SeedHistogramBins(k int) int {
	bins := 4 * k
	if bins < 64 {
		bins = 64
	}
	return bins
}

// SeedFromCounts derives k seeds from an equal-width histogram over
// [lo, hi] whose occupancy is given in counts: the centers of the k
// most populated bins, padded with evenly spaced centers when fewer
// bins are occupied. This is the merge-friendly core of
// SeedFromHistogram: summing per-rank counts and calling it yields the
// seeds of the union of the data.
func SeedFromCounts(lo, hi float64, counts []int, k int) []float64 {
	if k <= 0 || len(counts) == 0 {
		return nil
	}
	if fputil.Eq(lo, hi) {
		seeds := make([]float64, k)
		for i := range seeds {
			seeds[i] = lo
		}
		return seeds
	}
	w := (hi - lo) / float64(len(counts))
	type bin struct {
		idx, count int
	}
	occupied := make([]bin, 0, len(counts))
	for i, c := range counts {
		if c > 0 {
			occupied = append(occupied, bin{i, c})
		}
	}
	sort.Slice(occupied, func(a, b int) bool {
		if occupied[a].count != occupied[b].count {
			return occupied[a].count > occupied[b].count
		}
		return occupied[a].idx < occupied[b].idx
	})
	if len(occupied) > k {
		occupied = occupied[:k]
	}
	seeds := make([]float64, 0, k)
	for _, b := range occupied {
		seeds = append(seeds, lo+(float64(b.idx)+0.5)*w)
	}
	// Pad with evenly spaced centers when the data occupies fewer than
	// k histogram bins.
	for i := 0; len(seeds) < k; i++ {
		seeds = append(seeds, lo+(hi-lo)*float64(i%k)/float64(k))
	}
	sort.Float64s(seeds)
	return seeds
}

// SeedUniform returns k centroids evenly spaced across [min(data),
// max(data)]. Used by the seeding ablation experiment.
func SeedUniform(data []float64, k int) []float64 {
	if k <= 0 || len(data) == 0 {
		return nil
	}
	lo, hi := data[0], data[0]
	for _, x := range data[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	seeds := make([]float64, k)
	if k == 1 {
		seeds[0] = (lo + hi) / 2
		return seeds
	}
	for i := range seeds {
		seeds[i] = lo + (hi-lo)*float64(i)/float64(k-1)
	}
	return seeds
}

// WithinClusterSS returns the total within-cluster sum of squared
// distances for a result over data — the k-means objective. Used in
// tests and the seeding ablation.
func WithinClusterSS(data []float64, res *Result) float64 {
	var ss float64
	for i, x := range data {
		d := x - res.Centroids[res.Assign[i]]
		ss += d * d
	}
	return ss
}
