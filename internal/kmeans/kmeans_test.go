package kmeans

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunThreeSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var data []float64
	means := []float64{-5, 0, 5}
	for _, m := range means {
		for i := 0; i < 300; i++ {
			data = append(data, m+rng.NormFloat64()*0.1)
		}
	}
	res, err := Run(data, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge on well-separated clusters")
	}
	if !sort.Float64sAreSorted(res.Centroids) {
		t.Errorf("centroids not sorted: %v", res.Centroids)
	}
	for i, m := range means {
		if math.Abs(res.Centroids[i]-m) > 0.05 {
			t.Errorf("centroid %d = %v, want ~%v", i, res.Centroids[i], m)
		}
		if res.Sizes[i] != 300 {
			t.Errorf("cluster %d size = %d, want 300", i, res.Sizes[i])
		}
	}
}

func TestRunAssignmentsAreNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 2000)
	for i := range data {
		data[i] = rng.Float64()*10 - 5
	}
	res, err := Run(data, Config{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range data {
		got := res.Assign[i]
		want := Nearest(res.Centroids, x)
		if math.Abs(res.Centroids[got]-x) > math.Abs(res.Centroids[want]-x)+1e-12 {
			t.Fatalf("point %d assigned to %d (dist %v), nearest is %d (dist %v)",
				i, got, math.Abs(res.Centroids[got]-x), want, math.Abs(res.Centroids[want]-x))
		}
	}
}

func TestRunObjectiveNonIncreasing(t *testing.T) {
	// Lloyd's algorithm must not increase the within-cluster SS:
	// running with more iterations can only improve or match.
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 1000)
	for i := range data {
		data[i] = rng.ExpFloat64()
	}
	seeds := SeedFromHistogram(data, 8)
	prev := math.Inf(1)
	for _, iters := range []int{1, 2, 5, 20} {
		res, err := Run(data, Config{K: 8, MaxIter: iters, Seeds: seeds, Tol: 1e-300})
		if err != nil {
			t.Fatal(err)
		}
		ss := WithinClusterSS(data, res)
		if ss > prev+1e-9 {
			t.Fatalf("objective increased: %v -> %v at %d iters", prev, ss, iters)
		}
		prev = ss
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, Config{K: 2}); !errors.Is(err, ErrNoData) {
		t.Errorf("nil data err = %v", err)
	}
	if _, err := Run([]float64{1}, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run([]float64{1, math.NaN()}, Config{K: 1}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := Run([]float64{1, math.Inf(1)}, Config{K: 1}); err == nil {
		t.Error("Inf accepted")
	}
	if _, err := Run([]float64{1, 2}, Config{K: 2, Seeds: []float64{0}}); err == nil {
		t.Error("wrong-length seeds accepted")
	}
}

func TestRunSinglePointManyClusters(t *testing.T) {
	res, err := Run([]float64{3.5}, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] < 0 || res.Assign[0] >= 4 {
		t.Errorf("assign = %d", res.Assign[0])
	}
	if c := res.Centroids[res.Assign[0]]; c != 3.5 {
		t.Errorf("assigned centroid = %v, want 3.5", c)
	}
}

func TestRunConstantData(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = 42
	}
	res, err := Run(data, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if res.Centroids[res.Assign[i]] != 42 {
			t.Fatalf("point %d assigned to centroid %v", i, res.Centroids[res.Assign[i]])
		}
	}
}

func TestRunWorkerCountsAgree(t *testing.T) {
	// The parallel decomposition must not change the result.
	rng := rand.New(rand.NewSource(4))
	data := make([]float64, 5000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	seeds := SeedFromHistogram(data, 10)
	var ref *Result
	for _, w := range []int{1, 2, 3, 8, 64} {
		res, err := Run(data, Config{K: 10, Workers: w, Seeds: seeds, MaxIter: 30})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Iterations != ref.Iterations {
			t.Errorf("workers=%d: iterations %d vs %d", w, res.Iterations, ref.Iterations)
		}
		for c := range res.Centroids {
			if math.Abs(res.Centroids[c]-ref.Centroids[c]) > 1e-9 {
				t.Errorf("workers=%d: centroid %d = %v vs %v", w, c, res.Centroids[c], ref.Centroids[c])
			}
		}
	}
}

func TestNearest(t *testing.T) {
	cents := []float64{-1, 0, 2, 10}
	cases := []struct {
		x    float64
		want int
	}{
		{-100, 0},
		{-1, 0},
		{-0.5, 0}, // tie between -1 and 0 goes to lower
		{-0.4, 1},
		{0.9, 1},
		{1.1, 2},
		{5.9, 2},
		{6.1, 3},
		{100, 3},
	}
	for _, c := range cases {
		if got := Nearest(cents, c.x); got != c.want {
			t.Errorf("Nearest(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestNearestIsActuallyNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cents := make([]float64, 37)
	for i := range cents {
		cents[i] = rng.Float64() * 100
	}
	sort.Float64s(cents)
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		got := Nearest(cents, x)
		best := math.Abs(cents[got] - x)
		for _, c := range cents {
			if math.Abs(c-x) < best-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSeedFromHistogram(t *testing.T) {
	// Two tight clumps: the top-2 seeds must land near the clumps.
	var data []float64
	for i := 0; i < 100; i++ {
		data = append(data, 1+float64(i)*1e-4)
	}
	for i := 0; i < 100; i++ {
		data = append(data, 9+float64(i)*1e-4)
	}
	seeds := SeedFromHistogram(data, 2)
	if len(seeds) != 2 {
		t.Fatalf("len(seeds) = %d", len(seeds))
	}
	if !sort.Float64sAreSorted(seeds) {
		t.Errorf("seeds not sorted: %v", seeds)
	}
	if math.Abs(seeds[0]-1) > 0.2 || math.Abs(seeds[1]-9) > 0.2 {
		t.Errorf("seeds = %v, want near [1, 9]", seeds)
	}
}

func TestSeedFromHistogramDegenerate(t *testing.T) {
	if s := SeedFromHistogram(nil, 3); s != nil {
		t.Errorf("nil data seeds = %v", s)
	}
	if s := SeedFromHistogram([]float64{1}, 0); s != nil {
		t.Errorf("k=0 seeds = %v", s)
	}
	s := SeedFromHistogram([]float64{5, 5, 5}, 3)
	if len(s) != 3 {
		t.Fatalf("constant data: %d seeds", len(s))
	}
	for _, v := range s {
		if v != 5 {
			t.Errorf("constant data seed = %v", v)
		}
	}
	// Fewer occupied bins than k: must still return k sorted seeds.
	s = SeedFromHistogram([]float64{0, 100}, 10)
	if len(s) != 10 || !sort.Float64sAreSorted(s) {
		t.Errorf("padded seeds = %v", s)
	}
}

func TestSeedUniform(t *testing.T) {
	s := SeedUniform([]float64{0, 10}, 3)
	want := []float64{0, 5, 10}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Errorf("SeedUniform = %v, want %v", s, want)
		}
	}
	s = SeedUniform([]float64{2, 8}, 1)
	if len(s) != 1 || s[0] != 5 {
		t.Errorf("k=1 uniform seed = %v", s)
	}
	if s := SeedUniform(nil, 2); s != nil {
		t.Errorf("nil data: %v", s)
	}
}

func TestHistogramSeedingBeatsUniformOnClumpedData(t *testing.T) {
	// The paper's rationale for histogram seeding: on irregular,
	// multi-modal data it should produce an objective at least as good
	// as naive seeding in the common case. We assert it on a strongly
	// clumped distribution.
	rng := rand.New(rand.NewSource(6))
	var data []float64
	for _, m := range []float64{-3, -2.9, 4, 4.05} {
		for i := 0; i < 500; i++ {
			data = append(data, m+rng.NormFloat64()*0.01)
		}
	}
	hist, err := Run(data, Config{K: 4, MaxIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Run(data, Config{K: 4, MaxIter: 100, Seeds: SeedUniform(data, 4)})
	if err != nil {
		t.Fatal(err)
	}
	hs, us := WithinClusterSS(data, hist), WithinClusterSS(data, uni)
	if hs > us*1.5+1e-9 {
		t.Errorf("histogram seeding SS %v much worse than uniform %v", hs, us)
	}
}

func BenchmarkRunK255(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 20480)
	for i := range data {
		data[i] = rng.NormFloat64() * 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(data, Config{K: 255, MaxIter: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearest(b *testing.B) {
	cents := make([]float64, 511)
	for i := range cents {
		cents[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Nearest(cents, float64(i%600)-50)
	}
}

func TestIndexMatchesNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(300)
		cents := make([]float64, k)
		switch trial % 3 {
		case 0: // uniform
			for i := range cents {
				cents[i] = rng.Float64() * 10
			}
		case 1: // heavily clumped with far outliers
			for i := range cents {
				cents[i] = rng.NormFloat64() * 0.001
			}
			cents[0] = -50
			cents[k-1] = 50
		case 2: // all identical
			v := rng.Float64()
			for i := range cents {
				cents[i] = v
			}
		}
		sort.Float64s(cents)
		ix := NewIndex(cents)
		for q := 0; q < 500; q++ {
			x := rng.NormFloat64() * 20
			got := ix.Nearest(x)
			want := Nearest(cents, x)
			// Equal distance may pick different but equally near
			// centroids only if values tie; require identical distance.
			if math.Abs(cents[got]-x) != math.Abs(cents[want]-x) {
				t.Fatalf("trial %d k=%d x=%v: index -> %d (%v), reference -> %d (%v)",
					trial, k, x, got, cents[got], want, cents[want])
			}
		}
		// Probe exactly at centroids and range edges.
		for _, x := range []float64{cents[0], cents[k-1], cents[k/2]} {
			got := ix.Nearest(x)
			if cents[got] != x {
				t.Fatalf("trial %d: probe at centroid %v -> %v", trial, x, cents[got])
			}
		}
	}
}

func BenchmarkIndexNearest(b *testing.B) {
	cents := make([]float64, 255)
	for i := range cents {
		cents[i] = float64(i) * 0.01
	}
	ix := NewIndex(cents)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Nearest(float64(i%300) * 0.009)
	}
}
