package kmeans

// Property tests pinning Index.Nearest (the grid fast path with its
// single-candidate early exit) to the package-level binary-search
// Nearest on adversarial centroid sets: duplicates, single entries,
// near-degenerate spacing, and extreme magnitudes. Probes stay finite —
// the encode pipeline only looks up finite ratios (RatioOK excludes
// NaN/±Inf before assignment).

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func adversarialCentroidSets(rng *rand.Rand) [][]float64 {
	sets := [][]float64{
		{0},
		{1, 1, 1, 1},                   // all duplicates
		{-2, -2, 0, 0, 3},              // duplicate runs
		{1, 1 + 1e-15, 1 + 2e-15},      // adjacent floats
		{-1e300, 0, 1e300},             // extreme span
		{-0.001, 0.001},
	}
	for c := 0; c < 6; c++ {
		n := 1 + rng.Intn(300)
		cents := make([]float64, n)
		for i := range cents {
			cents[i] = rng.NormFloat64() * math.Exp(float64(rng.Intn(8)))
			if i > 0 && rng.Intn(5) == 0 {
				cents[i] = cents[i-1]
			}
		}
		sort.Float64s(cents)
		sets = append(sets, cents)
	}
	return sets
}

func TestIndexNearestMatchesBinarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for si, cents := range adversarialCentroidSets(rng) {
		sort.Float64s(cents)
		ix := NewIndex(cents)
		probes := append([]float64{}, cents...)
		for j := 1; j < len(cents); j++ {
			mid := cents[j-1] + (cents[j]-cents[j-1])/2
			probes = append(probes, mid,
				math.Nextafter(mid, math.Inf(-1)), math.Nextafter(mid, math.Inf(1)))
		}
		for i := 0; i < 2000; i++ {
			probes = append(probes, rng.NormFloat64()*math.Exp(float64(rng.Intn(12)-4)))
		}
		probes = append(probes, -1e307, 1e307, 0, 5e-324, -5e-324)
		for _, p := range probes {
			fast := ix.Nearest(p)
			slow := Nearest(cents, p)
			if fast == slow {
				continue
			}
			// With duplicate centroids several indices are equally
			// near; accept any index at the same distance.
			if math.Abs(cents[fast]-p) != math.Abs(cents[slow]-p) {
				t.Fatalf("set %d: Index.Nearest(%v) = %d (cent %v), Nearest = %d (cent %v)",
					si, p, fast, cents[fast], slow, cents[slow])
			}
		}
	}
}
