package kmeans

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// Unit weights make RunWeighted the same arithmetic as a single-worker
// Run (x*1.0 == x and a sum of ones is exact), so the two must agree
// bit-for-bit given the same seeds.
func TestRunWeightedUnitWeightsMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]float64, 2000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	seeds := SeedFromHistogram(data, 15)
	cfg := Config{K: 15, MaxIter: 40, Workers: 1, Seeds: seeds}

	plain, err := Run(data, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	w := make([]float64, len(data))
	for i := range w {
		w[i] = 1
	}
	weighted, err := RunWeighted(data, w, cfg)
	if err != nil {
		t.Fatalf("RunWeighted: %v", err)
	}
	if !reflect.DeepEqual(plain.Centroids, weighted.Centroids) {
		t.Errorf("centroids diverge:\n run: %v\nwrun: %v", plain.Centroids, weighted.Centroids)
	}
	if !reflect.DeepEqual(plain.Assign, weighted.Assign) {
		t.Error("assignments diverge")
	}
	if plain.Iterations != weighted.Iterations || plain.Converged != weighted.Converged {
		t.Errorf("iteration mismatch: run=(%d,%v) weighted=(%d,%v)",
			plain.Iterations, plain.Converged, weighted.Iterations, weighted.Converged)
	}
}

// A point with weight w must pull its centroid exactly like w copies of
// the same point.
func TestRunWeightedWeightEqualsReplication(t *testing.T) {
	pts := []float64{-2, -1.9, 0.1, 3}
	wts := []float64{3, 1, 2, 1}
	var replicated []float64
	for i, p := range pts {
		for c := 0; c < int(wts[i]); c++ {
			replicated = append(replicated, p)
		}
	}
	seeds := []float64{-2, 3}
	weighted, err := RunWeighted(pts, wts, Config{K: 2, Seeds: seeds})
	if err != nil {
		t.Fatalf("RunWeighted: %v", err)
	}
	plain, err := Run(replicated, Config{K: 2, Workers: 1, Seeds: seeds})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for c := range plain.Centroids {
		if math.Abs(plain.Centroids[c]-weighted.Centroids[c]) > 1e-12 {
			t.Errorf("centroid %d: replicated %v, weighted %v", c, plain.Centroids[c], weighted.Centroids[c])
		}
	}
}

func TestRunWeightedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]float64, 500)
	wts := make([]float64, 500)
	for i := range pts {
		pts[i] = rng.Float64() * 10
		wts[i] = 1 + rng.Float64()*100
	}
	a, err := RunWeighted(pts, wts, Config{K: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWeighted(pts, wts, Config{K: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Centroids, b.Centroids) {
		t.Error("RunWeighted is not deterministic across runs")
	}
}

func TestRunWeightedErrors(t *testing.T) {
	if _, err := RunWeighted(nil, nil, Config{K: 2}); err == nil {
		t.Error("want error on empty input")
	}
	if _, err := RunWeighted([]float64{1, 2}, []float64{1}, Config{K: 1}); err == nil {
		t.Error("want error on length mismatch")
	}
	if _, err := RunWeighted([]float64{1, 2}, []float64{1, 0}, Config{K: 1}); err == nil {
		t.Error("want error on zero weight")
	}
	if _, err := RunWeighted([]float64{1, 2}, []float64{1, -3}, Config{K: 1}); err == nil {
		t.Error("want error on negative weight")
	}
	if _, err := RunWeighted([]float64{1, math.NaN()}, []float64{1, 1}, Config{K: 1}); err == nil {
		t.Error("want error on NaN point")
	}
	if _, err := RunWeighted([]float64{1, 2}, []float64{1, math.Inf(1)}, Config{K: 1}); err == nil {
		t.Error("want error on infinite weight")
	}
	if _, err := RunWeighted([]float64{1, 2}, []float64{1, 1}, Config{K: 0}); err == nil {
		t.Error("want error on K=0")
	}
}

// Duplicate points collapse to fewer clusters than K without error.
func TestRunWeightedDegenerate(t *testing.T) {
	res, err := RunWeighted([]float64{5, 5, 5}, []float64{1, 2, 3}, Config{K: 2})
	if err != nil {
		t.Fatalf("RunWeighted: %v", err)
	}
	for _, c := range res.Centroids {
		if c != 5 {
			t.Errorf("centroid %v, want 5", c)
		}
	}
}

// Splitting data arbitrarily across sketches and merging must give the
// same cells as one sketch over everything, regardless of merge order.
func TestSketchMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 3000)
	for i := range data {
		data[i] = rng.NormFloat64() * 4
	}
	lo, hi := -20.0, 20.0

	whole := NewSketch(lo, hi, 256)
	whole.Add(data)

	parts := []*Sketch{NewSketch(lo, hi, 256), NewSketch(lo, hi, 256), NewSketch(lo, hi, 256)}
	parts[0].Add(data[:1000])
	parts[1].Add(data[1000:1100])
	parts[2].Add(data[1100:])

	// Merge in a scrambled order: ((p2 <- p0) <- p1).
	if err := parts[2].Merge(parts[0]); err != nil {
		t.Fatal(err)
	}
	if err := parts[2].Merge(parts[1]); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(whole.Count, parts[2].Count) {
		t.Error("merged counts differ from whole-data sketch")
	}
	for i := range whole.Sum {
		if math.Abs(whole.Sum[i]-parts[2].Sum[i]) > 1e-9 {
			t.Errorf("cell %d sum: whole %v merged %v", i, whole.Sum[i], parts[2].Sum[i])
		}
	}
}

func TestSketchPoints(t *testing.T) {
	s := NewSketch(0, 10, 10)
	s.Add([]float64{0.2, 0.4, 5.5, 9.9, 11, -3}) // 11 and -3 clamp into edge cells
	centers, weights := s.Points()
	if len(centers) != len(weights) {
		t.Fatalf("lengths differ: %d vs %d", len(centers), len(weights))
	}
	var total float64
	for i, w := range weights {
		if w <= 0 {
			t.Errorf("weight %d is %v", i, w)
		}
		total += w
	}
	if total != 6 {
		t.Errorf("total weight %v, want 6", total)
	}
	for i := 1; i < len(centers); i++ {
		if centers[i] < centers[i-1] {
			t.Errorf("centers not sorted: %v", centers)
		}
	}
	// Cell [0,1) holds 0.2, 0.4 and the clamped -3: mean (0.2+0.4-3)/3.
	want := (0.2 + 0.4 - 3) / 3
	if math.Abs(centers[0]-want) > 1e-12 {
		t.Errorf("first micro-centroid %v, want %v", centers[0], want)
	}
}

func TestSketchMergeGridMismatch(t *testing.T) {
	a := NewSketch(0, 1, 8)
	if err := a.Merge(NewSketch(0, 1, 16)); err == nil {
		t.Error("want error merging different cell counts")
	}
	if err := a.Merge(NewSketch(0, 2, 8)); err == nil {
		t.Error("want error merging different ranges")
	}
}

// A degenerate range (lo == hi) must still accept values into cell 0.
func TestSketchDegenerateRange(t *testing.T) {
	s := NewSketch(5, 5, 4)
	s.Add([]float64{5, 5, 5})
	centers, weights := s.Points()
	if len(centers) != 1 || centers[0] != 5 || weights[0] != 3 {
		t.Errorf("got centers=%v weights=%v", centers, weights)
	}
}
