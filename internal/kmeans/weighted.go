// Weighted k-means and the mergeable histogram sketch behind the
// parallel table-learning path. The NUMARCK authors' follow-up paper
// parallelizes exactly this step: each data partition is summarized
// independently and the summaries are merged into one weighted
// clustering problem whose solution stands in for k-means over the
// union of the data. Here the per-partition summary is a fixed-grid
// histogram Sketch that keeps each cell's population and value sum, so
// a merged cell reduces to a weighted micro-centroid (the exact mean of
// the values that fell in it) and the merge is a pure element-wise sum
// — associative, commutative in the integer fields, and cheap.
package kmeans

import (
	"fmt"
	"math"
	"sort"

	"numarck/internal/fputil"
)

// Sketch is a fixed-grid summary of a value set over [Lo, Hi]: cell i
// holds the count and sum of the values that fell in it. Two sketches
// over the same grid merge by element-wise addition, and each occupied
// cell yields a weighted micro-centroid (sum/count weighted by count)
// for RunWeighted. Build one sketch per data partition concurrently,
// merge them in a fixed order, and the result depends only on the data
// and the partition boundaries — not on how many goroutines built it.
type Sketch struct {
	// Lo and Hi are the inclusive value range the grid covers; values
	// outside are clamped into the boundary cells.
	Lo, Hi float64
	// Count[i] and Sum[i] are cell i's population and value sum.
	Count []int64
	Sum   []float64

	inv float64 // len(Count) / (Hi - Lo), 0 when the range is empty
}

// NewSketch returns an empty sketch of `bins` cells over [lo, hi].
// bins must be >= 1 and lo <= hi.
func NewSketch(lo, hi float64, bins int) *Sketch {
	s := &Sketch{Lo: lo, Hi: hi, Count: make([]int64, bins), Sum: make([]float64, bins)}
	if hi > lo {
		s.inv = float64(bins) / (hi - lo)
	}
	return s
}

// Add folds xs into the sketch. Values outside [Lo, Hi] land in the
// first or last cell.
func (s *Sketch) Add(xs []float64) {
	last := len(s.Count) - 1
	for _, x := range xs {
		i := 0
		if !fputil.IsZero(s.inv) {
			// Compare before converting: int(f) is implementation-
			// defined once f exceeds the int range.
			f := (x - s.Lo) * s.inv
			if f >= float64(last) {
				i = last
			} else if f > 0 {
				i = int(f)
			}
		}
		s.Count[i]++
		s.Sum[i] += x
	}
}

// Merge folds o into s. Both must share the same grid (range and cell
// count).
func (s *Sketch) Merge(o *Sketch) error {
	if len(o.Count) != len(s.Count) || !fputil.Eq(o.Lo, s.Lo) || !fputil.Eq(o.Hi, s.Hi) {
		return fmt.Errorf("kmeans: merging sketches over different grids")
	}
	for i := range s.Count {
		s.Count[i] += o.Count[i]
		s.Sum[i] += o.Sum[i]
	}
	return nil
}

// Points returns the occupied cells as weighted micro-centroids: the
// exact mean of each cell's values, weighted by its population. The
// points come out sorted ascending (cells are visited in grid order and
// cell means are ordered by construction up to ties at cell edges, so a
// final sort keeps the contract cheap and certain).
func (s *Sketch) Points() (centers, weights []float64) {
	centers = make([]float64, 0, len(s.Count))
	weights = make([]float64, 0, len(s.Count))
	for i, c := range s.Count {
		if c == 0 {
			continue
		}
		centers = append(centers, s.Sum[i]/float64(c))
		weights = append(weights, float64(c))
	}
	sort.Sort(&pairSort{centers, weights})
	return centers, weights
}

// pairSort sorts centers ascending, carrying weights along.
type pairSort struct{ c, w []float64 }

func (p *pairSort) Len() int           { return len(p.c) }
func (p *pairSort) Less(i, j int) bool { return p.c[i] < p.c[j] }
func (p *pairSort) Swap(i, j int) {
	p.c[i], p.c[j] = p.c[j], p.c[i]
	p.w[i], p.w[j] = p.w[j], p.w[i]
}

// RunWeighted clusters weighted points into cfg.K groups: Lloyd
// iterations where each point contributes weight w to its centroid's
// mean. It is the merge step of the parallel table-learning path — the
// points are micro-centroids from Sketch.Points, so the weighted
// objective approximates plain k-means over the summarized data. The
// run is sequential and deterministic: the point sets it sees are small
// (one per occupied sketch cell), so a goroutine fan-out would cost
// more in merge nondeterminism than it buys. cfg.Workers is ignored.
// len(weights) must equal len(points) and every weight must be > 0.
func RunWeighted(points, weights []float64, cfg Config) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoData
	}
	if len(weights) != len(points) {
		return nil, fmt.Errorf("kmeans: %d weights for %d points", len(weights), len(points))
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmeans: K must be >= 1, got %d", cfg.K)
	}
	for i, x := range points {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("kmeans: non-finite point %v at index %d", x, i)
		}
		if !(weights[i] > 0) || math.IsInf(weights[i], 0) {
			return nil, fmt.Errorf("kmeans: weight %v at index %d (want finite > 0)", weights[i], i)
		}
	}
	if cfg.K > len(points) {
		cfg.K = len(points)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-12
	}

	cents := cfg.Seeds
	if cents == nil {
		cents = SeedFromHistogram(points, cfg.K)
	}
	if len(cents) != cfg.K {
		return nil, fmt.Errorf("kmeans: %d seeds for K=%d", len(cents), cfg.K)
	}
	cents = append([]float64(nil), cents...)
	sort.Float64s(cents)

	res := &Result{
		Centroids: cents,
		Assign:    make([]int, len(points)),
		Sizes:     make([]int, cfg.K),
	}
	sum := make([]float64, cfg.K)
	wsum := make([]float64, cfg.K)
	count := make([]int, cfg.K)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		res.Iterations = iter + 1
		ix := NewIndex(res.Centroids)
		for c := 0; c < cfg.K; c++ {
			sum[c], wsum[c], count[c] = 0, 0, 0
		}
		for i, x := range points {
			c := ix.Nearest(x)
			res.Assign[i] = c
			sum[c] += x * weights[i]
			wsum[c] += weights[i]
			count[c]++
		}
		moved := 0.0
		for c := 0; c < cfg.K; c++ {
			res.Sizes[c] = count[c]
			if count[c] == 0 {
				continue // empty cluster keeps its centroid
			}
			next := sum[c] / wsum[c]
			if d := math.Abs(next - res.Centroids[c]); d > moved {
				moved = d
			}
			res.Centroids[c] = next
		}
		if moved < cfg.Tol {
			res.Converged = true
			break
		}
	}
	return res, nil
}
