// Package core implements the NUMARCK checkpoint compression algorithm
// (Chen et al., SC 2014): error-bounded lossy compression of iterative
// scientific data by learning the distribution of relative changes
// between consecutive checkpoints.
//
// The pipeline for one checkpoint iteration is (paper §II):
//
//  1. Forward predictive coding: for each point j compute the change
//     ratio ΔD[j] = (cur[j] - prev[j]) / prev[j] (Eq. 1). Points whose
//     previous value is zero cannot form a ratio and are stored exactly.
//
//  2. Data approximation: change ratios with |ΔD| < E (the user error
//     bound) are mapped to the reserved index 0, meaning "unchanged
//     within tolerance". The remaining ratios are partitioned into
//     2^B - 1 groups by one of three strategies — equal-width binning,
//     log-scale binning, or k-means clustering seeded from the
//     equal-width histogram — and each point stores only the B-bit
//     index of its group. A group's representative ratio approximates
//     every member. Whenever |representative − ΔD[j]| > E the point is
//     marked incompressible and its exact value is stored, which is how
//     NUMARCK turns a best-effort approximation into a guaranteed
//     point-wise error bound.
//
//  3. Restart: a reconstructed value is either the stored exact value
//     or prev'[j] · (1 + representative), replayed checkpoint by
//     checkpoint on top of the last full (lossless) checkpoint (§II-D).
//
// The package exposes Encode/Decode on raw float64 slices; the
// higher-level chained checkpoint store lives in internal/checkpoint and
// the public façade in the root numarck package.
package core
