package core

import (
	"math"
	"testing"
)

func TestEqualFrequencyBinner(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := fitEqualFrequency(data, 4)
	reps := b.Representatives()
	want := []float64{1.5, 3.5, 5.5, 7.5}
	if len(reps) != 4 {
		t.Fatalf("reps = %v", reps)
	}
	for i := range want {
		if math.Abs(reps[i]-want[i]) > 1e-12 {
			t.Errorf("rep %d = %v, want %v", i, reps[i], want[i])
		}
	}
	if g := b.Lookup(1.9); reps[g] != 1.5 {
		t.Errorf("Lookup(1.9) -> %v", reps[g])
	}
	if g := b.Lookup(100); reps[g] != 7.5 {
		t.Errorf("Lookup(100) -> %v", reps[g])
	}
}

func TestEqualFrequencyDegenerate(t *testing.T) {
	// Constant data collapses to one representative.
	b := fitEqualFrequency([]float64{5, 5, 5, 5}, 3)
	if len(b.Representatives()) != 1 || b.Representatives()[0] != 5 {
		t.Errorf("constant reps = %v", b.Representatives())
	}
	// Fewer points than bins.
	b = fitEqualFrequency([]float64{1, 9}, 10)
	if len(b.Representatives()) != 2 {
		t.Errorf("tiny data reps = %v", b.Representatives())
	}
}

func TestEqualFrequencyErrorBound(t *testing.T) {
	prev, cur := genData(20000, 41)
	enc, err := Encode(prev, cur, Options{ErrorBound: 0.001, IndexBits: 8, Strategy: EqualFrequency})
	if err != nil {
		t.Fatal(err)
	}
	if m := enc.MaxErrorRate(); m > 0.001+1e-12 {
		t.Errorf("max err %v exceeds bound", m)
	}
	rec, err := enc.Decode(prev)
	if err != nil {
		t.Fatal(err)
	}
	for j := range cur {
		trueR := (cur[j] - prev[j]) / prev[j]
		recR := (rec[j] - prev[j]) / prev[j]
		if math.Abs(recR-trueR) > 0.001+1e-12 {
			t.Fatalf("bound violated at %d", j)
		}
	}
}

func TestEqualFrequencyBeatsEqualWidthOnSkew(t *testing.T) {
	// Dense core + sparse wide tail: quantile bins concentrate where
	// the mass is, like clustering.
	prev := make([]float64, 20000)
	cur := make([]float64, 20000)
	for i := range prev {
		prev[i] = 100
		var ratio float64
		if i%100 == 0 {
			ratio = 5 + float64(i%7) // sparse huge tail
		} else {
			ratio = 0.002 + float64(i%997)*1e-6
		}
		cur[i] = prev[i] * (1 + ratio)
	}
	ef, err := Encode(prev, cur, Options{ErrorBound: 0.001, IndexBits: 8, Strategy: EqualFrequency})
	if err != nil {
		t.Fatal(err)
	}
	ew, err := Encode(prev, cur, Options{ErrorBound: 0.001, IndexBits: 8, Strategy: EqualWidth})
	if err != nil {
		t.Fatal(err)
	}
	if ef.Gamma() >= ew.Gamma() {
		t.Errorf("equal-frequency gamma %v not below equal-width %v on skewed data", ef.Gamma(), ew.Gamma())
	}
}

func TestEqualFrequencyParse(t *testing.T) {
	for _, s := range []string{"equal-frequency", "quantile", "ef"} {
		got, err := ParseStrategy(s)
		if err != nil || got != EqualFrequency {
			t.Errorf("ParseStrategy(%q) = %v, %v", s, got, err)
		}
	}
	if EqualFrequency.String() != "equal-frequency" {
		t.Error("String() mismatch")
	}
	// The paper-faithful sweep list stays at three.
	if len(Strategies) != 3 {
		t.Errorf("Strategies has %d entries", len(Strategies))
	}
}
