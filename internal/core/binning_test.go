package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestEqualWidthBinnerCenters(t *testing.T) {
	data := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := fitEqualWidth(data, 5, 1)
	reps := b.Representatives()
	if len(reps) != 5 {
		t.Fatalf("reps = %v", reps)
	}
	// Bins over [0,10] width 2: centers 1,3,5,7,9.
	want := []float64{1, 3, 5, 7, 9}
	for i := range want {
		if math.Abs(reps[i]-want[i]) > 1e-12 {
			t.Errorf("rep %d = %v, want %v", i, reps[i], want[i])
		}
	}
	if b.Lookup(0) != 0 || b.Lookup(1.9) != 0 {
		t.Error("low bin lookup wrong")
	}
	if b.Lookup(10) != 4 || b.Lookup(9.1) != 4 {
		t.Error("high bin lookup wrong")
	}
	if b.Lookup(5.0) != 2 {
		t.Errorf("Lookup(5) = %d", b.Lookup(5.0))
	}
	// Out-of-range values clamp rather than panic.
	if b.Lookup(-100) != 0 || b.Lookup(100) != 4 {
		t.Error("clamping failed")
	}
}

func TestEqualWidthBinnerConstant(t *testing.T) {
	b := fitEqualWidth([]float64{2.5, 2.5}, 7, 1)
	if len(b.Representatives()) != 1 || b.Representatives()[0] != 2.5 {
		t.Errorf("constant reps = %v", b.Representatives())
	}
	if b.Lookup(2.5) != 0 {
		t.Error("constant lookup != 0")
	}
}

func TestEqualWidthPerfectWhenWidthUnderTwiceE(t *testing.T) {
	// Paper §II-C1: if bin width W < 2E, every ratio is within E of its
	// bin center, so nothing is incompressible.
	rng := rand.New(rand.NewSource(1))
	n := 5000
	prev := make([]float64, n)
	cur := make([]float64, n)
	for i := range prev {
		prev[i] = 100.0
		// Ratios uniform in [0.001, 0.001+0.5), range 0.5; with B=9
		// (511 bins) width ≈ 0.00098 < 2E=0.002.
		cur[i] = prev[i] * (1 + 0.001 + rng.Float64()*0.499)
	}
	enc, err := Encode(prev, cur, Options{ErrorBound: 0.001, IndexBits: 9, Strategy: EqualWidth})
	if err != nil {
		t.Fatal(err)
	}
	if g := enc.Gamma(); g != 0 {
		t.Errorf("gamma = %v, want 0 when W < 2E", g)
	}
}

func TestEqualWidthPoorOnWideRange(t *testing.T) {
	// Paper §II-C1's weakness: a huge range with few bins makes the
	// bin width >> 2E and most points incompressible. With B=2 (3
	// bins) over ratios spanning [0.001, 10], almost everything fails.
	rng := rand.New(rand.NewSource(2))
	n := 2000
	prev := make([]float64, n)
	cur := make([]float64, n)
	for i := range prev {
		prev[i] = 50
		cur[i] = prev[i] * (1 + 0.001 + rng.Float64()*10)
	}
	enc, err := Encode(prev, cur, Options{ErrorBound: 0.001, IndexBits: 2, Strategy: EqualWidth})
	if err != nil {
		t.Fatal(err)
	}
	if g := enc.Gamma(); g < 0.9 {
		t.Errorf("gamma = %v, expected equal-width to fail on wide-range data", g)
	}
}

func TestLogScaleBeatsEqualWidthOnSkewedData(t *testing.T) {
	// Paper §II-C2 motivation: log-scale covers a large dynamic range.
	// Ratios log-uniform over [0.001, 10]: log-scale should leave far
	// fewer incompressible points than equal-width at the same B.
	rng := rand.New(rand.NewSource(3))
	n := 20000
	prev := make([]float64, n)
	cur := make([]float64, n)
	for i := range prev {
		prev[i] = 10
		exp := rng.Float64() * math.Log(10/0.001)
		cur[i] = prev[i] * (1 + 0.001*math.Exp(exp))
	}
	optEW := Options{ErrorBound: 0.001, IndexBits: 8, Strategy: EqualWidth}
	optLS := Options{ErrorBound: 0.001, IndexBits: 8, Strategy: LogScale}
	ew, err := Encode(prev, cur, optEW)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := Encode(prev, cur, optLS)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Gamma() >= ew.Gamma() {
		t.Errorf("log-scale gamma %v not better than equal-width %v on log-uniform ratios", ls.Gamma(), ew.Gamma())
	}
}

func TestClusteringBeatsBinningOnMultiModalData(t *testing.T) {
	// Paper §II-C3 motivation: multiple dense areas spread unevenly.
	// Ratios concentrated at a few modes: clustering should capture
	// them with near-zero incompressible ratio at small B.
	rng := rand.New(rand.NewSource(4))
	modes := []float64{0.002, 0.04, 0.75, -0.3, 9.5}
	n := 10000
	prev := make([]float64, n)
	cur := make([]float64, n)
	for i := range prev {
		prev[i] = 5
		m := modes[rng.Intn(len(modes))]
		cur[i] = prev[i] * (1 + m + rng.NormFloat64()*1e-5)
	}
	var gammas [3]float64
	for si, s := range Strategies {
		enc, err := Encode(prev, cur, Options{ErrorBound: 0.001, IndexBits: 3, Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		gammas[si] = enc.Gamma()
	}
	if gammas[2] > 0.01 {
		t.Errorf("clustering gamma = %v on 5-mode data with 7 clusters", gammas[2])
	}
	if gammas[2] > gammas[0] {
		t.Errorf("clustering gamma %v worse than equal-width %v", gammas[2], gammas[0])
	}
}

func TestLogScaleBinnerSignHandling(t *testing.T) {
	data := []float64{-0.5, -0.01, 0.02, 0.3, 0.004, -0.002}
	b := fitLogScale(data, 10, 1)
	reps := b.Representatives()
	if len(reps) == 0 || len(reps) > 10 {
		t.Fatalf("reps = %v", reps)
	}
	for _, d := range data {
		g := b.Lookup(d)
		if g < 0 || g >= len(reps) {
			t.Fatalf("Lookup(%v) = %d out of range", d, g)
		}
		if d < 0 && reps[g] >= 0 {
			t.Errorf("negative ratio %v assigned positive rep %v", d, reps[g])
		}
		if d > 0 && reps[g] <= 0 {
			t.Errorf("positive ratio %v assigned negative rep %v", d, reps[g])
		}
	}
}

func TestLogScaleBinnerOneSided(t *testing.T) {
	data := []float64{0.001, 0.01, 0.1, 1}
	b := fitLogScale(data, 8, 1)
	for _, r := range b.Representatives() {
		if r <= 0 {
			t.Errorf("positive-only data produced rep %v", r)
		}
	}
	neg := []float64{-0.001, -0.01}
	b = fitLogScale(neg, 8, 1)
	for _, r := range b.Representatives() {
		if r >= 0 {
			t.Errorf("negative-only data produced rep %v", r)
		}
	}
}

func TestLogScaleBinnerZeroFallback(t *testing.T) {
	// Zero ratios only appear via the DisableZeroIndex ablation; they
	// must map to the nearest representative rather than crash.
	b := fitLogScale([]float64{0.001, 0.5}, 4, 1)
	g := b.Lookup(0)
	reps := b.Representatives()
	if g < 0 || g >= len(reps) {
		t.Fatalf("Lookup(0) = %d", g)
	}
	// Nearest rep to 0 must be the smallest-magnitude one.
	best := math.Inf(1)
	for _, r := range reps {
		if a := math.Abs(r); a < best {
			best = a
		}
	}
	if math.Abs(reps[g]) != best {
		t.Errorf("zero mapped to rep %v, nearest is %v", reps[g], best)
	}
}

func TestLogScaleAllZeros(t *testing.T) {
	b := fitLogScale([]float64{0, 0}, 4, 1)
	if len(b.Representatives()) != 1 || b.Representatives()[0] != 0 {
		t.Errorf("all-zero reps = %v", b.Representatives())
	}
	if b.Lookup(0) != 0 {
		t.Error("all-zero lookup failed")
	}
}

func TestSplitBins(t *testing.T) {
	cases := []struct {
		k, nNeg, nPos, wantNeg, wantPos int
	}{
		{10, 0, 100, 0, 10},
		{10, 100, 0, 10, 0},
		{10, 50, 50, 5, 5},
		{10, 1, 999, 1, 9}, // tiny side still gets one bin
		{10, 999, 1, 9, 1},
		{2, 1, 1, 1, 1},
		{10, 0, 0, 0, 0},
	}
	for _, c := range cases {
		gn, gp := splitBins(c.k, c.nNeg, c.nPos)
		if gn != c.wantNeg || gp != c.wantPos {
			t.Errorf("splitBins(%d,%d,%d) = %d,%d want %d,%d", c.k, c.nNeg, c.nPos, gn, gp, c.wantNeg, c.wantPos)
		}
	}
}

func TestClusterBinnerNearestAssignment(t *testing.T) {
	data := []float64{0.01, 0.011, 0.5, 0.51, -0.2}
	b, err := fitClustering(data, 3, Options{ErrorBound: 0.001, IndexBits: 2, Strategy: Clustering, KMeansMaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	reps := b.Representatives()
	for _, d := range data {
		g := b.Lookup(d)
		for _, r := range reps {
			if math.Abs(r-d) < math.Abs(reps[g]-d)-1e-12 {
				t.Errorf("Lookup(%v) = rep %v but %v is nearer", d, reps[g], r)
			}
		}
	}
}

func TestClusteringKCappedByPointCount(t *testing.T) {
	// Fewer points than 2^B-1 clusters must not break.
	prev := []float64{1, 2, 3}
	cur := []float64{1.5, 2.2, 3.9}
	enc, err := Encode(prev, cur, Options{ErrorBound: 0.001, IndexBits: 8, Strategy: Clustering})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.BinRatios) > 3 {
		t.Errorf("bin table %d entries for 3 points", len(enc.BinRatios))
	}
	if g := enc.Gamma(); g != 0 {
		t.Errorf("gamma = %v: each point should get its own cluster", g)
	}
}

func TestFitBinnerUnknownStrategy(t *testing.T) {
	_, err := fitBinner([]float64{1}, Options{ErrorBound: 0.001, IndexBits: 4, Strategy: Strategy(9)})
	if err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestBinnersCoverAllInputs(t *testing.T) {
	// Every binner must return an in-range group for every fitted
	// value and for values outside the fitted range.
	rng := rand.New(rand.NewSource(5))
	data := make([]float64, 500)
	for i := range data {
		data[i] = rng.NormFloat64()
		if data[i] == 0 {
			data[i] = 0.1
		}
	}
	probes := append(append([]float64{}, data...), -1e6, 1e6, 0)
	for _, s := range Strategies {
		b, err := fitBinner(data, Options{ErrorBound: 0.001, IndexBits: 6, Strategy: s, KMeansMaxIter: 20})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		n := len(b.Representatives())
		for _, p := range probes {
			if g := b.Lookup(p); g < 0 || g >= n {
				t.Fatalf("%v: Lookup(%v) = %d out of [0,%d)", s, p, g, n)
			}
		}
	}
}
