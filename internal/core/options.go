package core

import (
	"errors"
	"fmt"

	"numarck/internal/obs"
)

// Strategy selects how the distribution of change ratios is learned and
// partitioned into 2^B - 1 groups (paper §II-C).
type Strategy int

const (
	// EqualWidth partitions the ratio range into equal-width bins and
	// approximates each member by its bin center (§II-C1).
	EqualWidth Strategy = iota
	// LogScale partitions ratios into bins whose widths grow
	// logarithmically with |ratio|, giving narrow bins to small
	// changes and wide bins to large ones (§II-C2). Negative and
	// positive ratios get disjoint bin ranges.
	LogScale
	// Clustering runs parallel k-means on the ratios, seeded from the
	// equal-width histogram, and approximates each member by its
	// cluster centroid (§II-C3).
	Clustering
	// EqualFrequency partitions the ratios into bins of equal
	// population (quantile binning) and approximates each member by
	// its bin mean. An extension beyond the paper's three strategies:
	// it is the coverage-greedy counterpoint to k-means'
	// sum-of-squares objective, at the cost of a sort. Excluded from
	// Strategies so paper-faithful sweeps keep the paper's three.
	EqualFrequency
)

// String returns the strategy name used in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case EqualWidth:
		return "equal-width"
	case LogScale:
		return "log-scale"
	case Clustering:
		return "clustering"
	case EqualFrequency:
		return "equal-frequency"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy converts a string (as accepted by the CLI tools) into a
// Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "equal-width", "equal", "ew":
		return EqualWidth, nil
	case "log-scale", "log", "ls":
		return LogScale, nil
	case "clustering", "cluster", "kmeans", "cl":
		return Clustering, nil
	case "equal-frequency", "quantile", "ef":
		return EqualFrequency, nil
	default:
		return 0, fmt.Errorf("core: unknown strategy %q (want equal-width, log-scale, or clustering)", s)
	}
}

// Strategies lists all strategies in paper order, for sweeps.
var Strategies = []Strategy{EqualWidth, LogScale, Clustering}

// Options configures an encode.
type Options struct {
	// ErrorBound is E, the user tolerance error threshold on the
	// change ratio, as a fraction (0.001 == the paper's 0.1 %).
	// Required, > 0.
	ErrorBound float64

	// IndexBits is B, the number of bits per stored index. The index
	// space holds 2^B values: index 0 is reserved for "within
	// tolerance of zero change" and indices 1..2^B-1 name the learned
	// groups. Required, in [1, 24].
	IndexBits int

	// Strategy selects the approximation strategy. Default EqualWidth.
	Strategy Strategy

	// Workers bounds the parallelism of ratio computation and k-means.
	// Defaults to GOMAXPROCS.
	Workers int

	// KMeansMaxIter bounds Lloyd iterations for the Clustering
	// strategy. Defaults to 12: the histogram seeding already places
	// centroids on the mass, and long Lloyd runs drift them toward the
	// sum-of-squares optimum, which over-serves sparse wide tails at
	// the expense of error-bound coverage.
	KMeansMaxIter int

	// UniformSeeding switches the Clustering strategy to evenly spaced
	// initial centroids instead of the paper's histogram seeding.
	// Exists for the seeding ablation; leave false for paper behaviour.
	UniformSeeding bool

	// DisableZeroIndex turns off the reserved "unchanged" index 0, so
	// every ratio must be represented by a learned group (an ablation;
	// the paper always reserves index 0). With it set, the index space
	// still reserves 0 but small ratios go through the binning path.
	DisableZeroIndex bool

	// Obs, when non-nil, receives per-stage timings and counters from
	// every pipeline the options flow through: core Encode/Decode, the
	// streaming chunk pipeline, and the checkpoint writers. Nil (the
	// default) keeps every instrumentation site a single-branch no-op.
	// It rides in Options so one recorder follows the encode through
	// all layers without widening any signatures; it is never
	// serialized.
	Obs *obs.Recorder
}

// ErrBadOptions reports an invalid Options value.
var ErrBadOptions = errors.New("core: invalid options")

// MaxIndexBits is the largest supported B. 2^24 bins is already far past
// anything useful; the cap keeps table allocations sane.
const MaxIndexBits = 24

// Validate checks opt and fills defaults, returning the normalized copy.
func (opt Options) Validate() (Options, error) {
	if !(opt.ErrorBound > 0) { // also rejects NaN
		return opt, fmt.Errorf("%w: ErrorBound must be > 0, got %v", ErrBadOptions, opt.ErrorBound)
	}
	if opt.ErrorBound >= 1 {
		return opt, fmt.Errorf("%w: ErrorBound %v is a fraction and must be < 1 (0.001 means 0.1%%)", ErrBadOptions, opt.ErrorBound)
	}
	if opt.IndexBits < 1 || opt.IndexBits > MaxIndexBits {
		return opt, fmt.Errorf("%w: IndexBits must be in [1,%d], got %d", ErrBadOptions, MaxIndexBits, opt.IndexBits)
	}
	switch opt.Strategy {
	case EqualWidth, LogScale, Clustering, EqualFrequency:
	default:
		return opt, fmt.Errorf("%w: unknown strategy %d", ErrBadOptions, int(opt.Strategy))
	}
	if opt.Workers <= 0 {
		opt.Workers = 0 // resolved at use sites to GOMAXPROCS
	}
	if opt.KMeansMaxIter <= 0 {
		opt.KMeansMaxIter = 12
	}
	return opt, nil
}

// NumBins returns 2^B - 1, the number of learned groups.
func (opt Options) NumBins() int {
	return (1 << uint(opt.IndexBits)) - 1
}
