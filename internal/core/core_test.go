package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// genData builds a synthetic prev/cur pair where most points change by a
// small ratio and some by larger amounts, resembling checkpoint data.
func genData(n int, seed int64) (prev, cur []float64) {
	rng := rand.New(rand.NewSource(seed))
	prev = make([]float64, n)
	cur = make([]float64, n)
	for i := range prev {
		prev[i] = 10 + rng.Float64()*90
		var ratio float64
		switch r := rng.Float64(); {
		case r < 0.7: // small change
			ratio = rng.NormFloat64() * 0.0005
		case r < 0.95: // moderate
			ratio = rng.NormFloat64() * 0.01
		default: // large
			ratio = rng.NormFloat64() * 0.2
		}
		cur[i] = prev[i] * (1 + ratio)
	}
	return prev, cur
}

func defaultOpts(s Strategy) Options {
	return Options{ErrorBound: 0.001, IndexBits: 8, Strategy: s}
}

func TestEncodeDecodeErrorBoundAllStrategies(t *testing.T) {
	prev, cur := genData(20000, 1)
	for _, s := range Strategies {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			enc, err := Encode(prev, cur, defaultOpts(s))
			if err != nil {
				t.Fatal(err)
			}
			rec, err := enc.Decode(prev)
			if err != nil {
				t.Fatal(err)
			}
			// The paper's guarantee: the approximated change ratio
			// deviates from the true ratio by at most E at every point
			// when decoding against the true previous values.
			E := enc.Opt.ErrorBound
			for j := range cur {
				if prev[j] == 0 {
					continue
				}
				trueRatio := (cur[j] - prev[j]) / prev[j]
				recRatio := (rec[j] - prev[j]) / prev[j]
				if d := math.Abs(recRatio - trueRatio); d > E+1e-12 {
					t.Fatalf("point %d: ratio error %v exceeds bound %v", j, d, E)
				}
			}
			if m := enc.MaxErrorRate(); m > E+1e-12 {
				t.Errorf("MaxErrorRate %v exceeds bound %v", m, E)
			}
			if m := enc.MeanErrorRate(); m > enc.MaxErrorRate()+1e-15 {
				t.Errorf("mean %v > max %v", m, enc.MaxErrorRate())
			}
		})
	}
}

func TestIncompressiblePointsAreExact(t *testing.T) {
	prev, cur := genData(5000, 2)
	for _, s := range Strategies {
		enc, err := Encode(prev, cur, defaultOpts(s))
		if err != nil {
			t.Fatal(err)
		}
		rec, err := enc.Decode(prev)
		if err != nil {
			t.Fatal(err)
		}
		for j := range cur {
			if enc.Incompressible.Get(j) && rec[j] != cur[j] {
				t.Fatalf("%v: incompressible point %d reconstructed %v, want exact %v", s, j, rec[j], cur[j])
			}
		}
	}
}

func TestZeroPrevStoredExactly(t *testing.T) {
	prev := []float64{0, 1, 0, 2}
	cur := []float64{5, 1.0005, -3, 2.001}
	enc, err := Encode(prev, cur, defaultOpts(EqualWidth))
	if err != nil {
		t.Fatal(err)
	}
	if !enc.Incompressible.Get(0) || !enc.Incompressible.Get(2) {
		t.Error("zero-prev points not marked incompressible")
	}
	rec, err := enc.Decode(prev)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0] != 5 || rec[2] != -3 {
		t.Errorf("zero-prev reconstruction = %v", rec)
	}
}

func TestUnchangedDataCompressesToZeroIndices(t *testing.T) {
	prev := make([]float64, 1000)
	for i := range prev {
		prev[i] = float64(i + 1)
	}
	cur := append([]float64(nil), prev...)
	for _, s := range Strategies {
		enc, err := Encode(prev, cur, defaultOpts(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if g := enc.Gamma(); g != 0 {
			t.Errorf("%v: gamma = %v on unchanged data", s, g)
		}
		for j, idx := range enc.Indices {
			if idx != 0 {
				t.Fatalf("%v: point %d got index %d on unchanged data", s, j, idx)
			}
		}
		if enc.MeanErrorRate() != 0 {
			t.Errorf("%v: mean error %v on unchanged data", s, enc.MeanErrorRate())
		}
		rec, err := enc.Decode(prev)
		if err != nil {
			t.Fatal(err)
		}
		for j := range rec {
			if rec[j] != prev[j] {
				t.Fatalf("%v: unchanged point %d decoded to %v", s, j, rec[j])
			}
		}
	}
}

func TestNonFiniteInputRejected(t *testing.T) {
	cases := [][2][]float64{
		{{1, math.NaN()}, {1, 2}},
		{{1, 2}, {1, math.Inf(1)}},
		{{math.Inf(-1), 2}, {1, 2}},
	}
	for i, c := range cases {
		if _, err := Encode(c[0], c[1], defaultOpts(EqualWidth)); !errors.Is(err, ErrNonFinite) {
			t.Errorf("case %d: err = %v, want ErrNonFinite", i, err)
		}
	}
}

func TestLengthMismatchRejected(t *testing.T) {
	if _, err := Encode([]float64{1, 2}, []float64{1}, defaultOpts(EqualWidth)); !errors.Is(err, ErrLength) {
		t.Errorf("err = %v, want ErrLength", err)
	}
	enc, err := Encode([]float64{1, 2}, []float64{1, 2}, defaultOpts(EqualWidth))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Decode([]float64{1}); !errors.Is(err, ErrLength) {
		t.Errorf("Decode err = %v, want ErrLength", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{ErrorBound: 0, IndexBits: 8},
		{ErrorBound: -0.1, IndexBits: 8},
		{ErrorBound: 1.5, IndexBits: 8},
		{ErrorBound: math.NaN(), IndexBits: 8},
		{ErrorBound: 0.001, IndexBits: 0},
		{ErrorBound: 0.001, IndexBits: 25},
		{ErrorBound: 0.001, IndexBits: 8, Strategy: Strategy(99)},
	}
	for i, o := range bad {
		if _, err := o.Validate(); !errors.Is(err, ErrBadOptions) {
			t.Errorf("case %d (%+v): err = %v, want ErrBadOptions", i, o, err)
		}
	}
	good, err := Options{ErrorBound: 0.001, IndexBits: 8}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if good.KMeansMaxIter != 12 {
		t.Errorf("default KMeansMaxIter = %d", good.KMeansMaxIter)
	}
}

func TestNumBins(t *testing.T) {
	for _, c := range []struct{ b, want int }{{1, 1}, {8, 255}, {9, 511}, {10, 1023}} {
		o := Options{IndexBits: c.b}
		if got := o.NumBins(); got != c.want {
			t.Errorf("NumBins(B=%d) = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Strategy
	}{
		{"equal-width", EqualWidth}, {"ew", EqualWidth}, {"equal", EqualWidth},
		{"log-scale", LogScale}, {"log", LogScale}, {"ls", LogScale},
		{"clustering", Clustering}, {"kmeans", Clustering}, {"cl", Clustering},
	} {
		got, err := ParseStrategy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseStrategy(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if EqualWidth.String() != "equal-width" || LogScale.String() != "log-scale" || Clustering.String() != "clustering" {
		t.Error("Strategy.String mismatch")
	}
	if Strategy(42).String() == "" {
		t.Error("unknown strategy String empty")
	}
}

func TestGammaCountsMatchExactValues(t *testing.T) {
	prev, cur := genData(3000, 3)
	for _, s := range Strategies {
		enc, err := Encode(prev, cur, defaultOpts(s))
		if err != nil {
			t.Fatal(err)
		}
		if enc.Incompressible.Count() != len(enc.Exact) {
			t.Errorf("%v: bitmap count %d != exact values %d", s, enc.Incompressible.Count(), len(enc.Exact))
		}
		wantGamma := float64(len(enc.Exact)) / float64(enc.N)
		if math.Abs(enc.Gamma()-wantGamma) > 1e-15 {
			t.Errorf("%v: Gamma = %v, want %v", s, enc.Gamma(), wantGamma)
		}
	}
}

func TestPackedIndicesRoundTrip(t *testing.T) {
	prev, cur := genData(1000, 4)
	enc, err := Encode(prev, cur, defaultOpts(Clustering))
	if err != nil {
		t.Fatal(err)
	}
	packed, err := enc.PackedIndices()
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != (1000*8+7)/8 {
		t.Errorf("packed len = %d", len(packed))
	}
}

func TestEncodedSizeBytesSmallerThanRaw(t *testing.T) {
	prev, cur := genData(20000, 5)
	enc, err := Encode(prev, cur, defaultOpts(Clustering))
	if err != nil {
		t.Fatal(err)
	}
	raw := 8 * len(cur)
	if got := enc.EncodedSizeBytes(); got >= raw {
		t.Errorf("encoded %d bytes >= raw %d (gamma=%v)", got, raw, enc.Gamma())
	}
}

func TestCompressionRatioConsistency(t *testing.T) {
	prev, cur := genData(20000, 6)
	enc, err := Encode(prev, cur, defaultOpts(Clustering))
	if err != nil {
		t.Fatal(err)
	}
	r, err := enc.CompressionRatio()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := enc.CompressionRatioWithBitmap()
	if err != nil {
		t.Fatal(err)
	}
	if rb >= r {
		t.Errorf("bitmap-inclusive ratio %v not below Eq.3 ratio %v", rb, r)
	}
	if r < 50 {
		t.Errorf("compression ratio %v suspiciously low for compressible data (gamma %v)", r, enc.Gamma())
	}
}

func TestIndexZeroReservedMeansSmallRatio(t *testing.T) {
	prev, cur := genData(5000, 7)
	enc, err := Encode(prev, cur, defaultOpts(LogScale))
	if err != nil {
		t.Fatal(err)
	}
	for j := range cur {
		if enc.Indices[j] == 0 && !enc.Incompressible.Get(j) {
			if d := math.Abs(enc.TrueRatios[j]); d >= enc.Opt.ErrorBound {
				t.Fatalf("point %d has index 0 but |ratio| %v >= E", j, d)
			}
		}
	}
}

func TestDisableZeroIndexAblation(t *testing.T) {
	prev, cur := genData(5000, 8)
	opt := defaultOpts(Clustering)
	opt.DisableZeroIndex = true
	enc, err := Encode(prev, cur, opt)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := enc.Decode(prev)
	if err != nil {
		t.Fatal(err)
	}
	E := opt.ErrorBound
	for j := range cur {
		trueRatio := (cur[j] - prev[j]) / prev[j]
		recRatio := (rec[j] - prev[j]) / prev[j]
		if d := math.Abs(recRatio - trueRatio); d > E+1e-12 {
			t.Fatalf("ablation: point %d ratio error %v exceeds bound", j, d)
		}
	}
}

func TestClusteringUniformSeedingStillBounded(t *testing.T) {
	prev, cur := genData(5000, 9)
	opt := defaultOpts(Clustering)
	opt.UniformSeeding = true
	enc, err := Encode(prev, cur, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m := enc.MaxErrorRate(); m > opt.ErrorBound+1e-12 {
		t.Errorf("uniform seeding max error %v exceeds bound", m)
	}
}

func TestEmptyInput(t *testing.T) {
	enc, err := Encode(nil, nil, defaultOpts(EqualWidth))
	if err != nil {
		t.Fatal(err)
	}
	if enc.N != 0 || enc.Gamma() != 0 || enc.MeanErrorRate() != 0 {
		t.Errorf("empty encode: %+v", enc)
	}
	rec, err := enc.Decode(nil)
	if err != nil || len(rec) != 0 {
		t.Errorf("empty decode: %v, %v", rec, err)
	}
}

func TestSinglePoint(t *testing.T) {
	enc, err := Encode([]float64{10}, []float64{11}, defaultOpts(Clustering))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := enc.Decode([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((rec[0]-10)/10-0.1) > enc.Opt.ErrorBound {
		t.Errorf("single point decoded to %v", rec[0])
	}
}

func TestNegativeValuesAndRatios(t *testing.T) {
	prev := []float64{-10, -20, 5, -1}
	cur := []float64{-11, -20.004, 4.5, 1} // ratios: 0.1, 0.0002, -0.1, -2
	for _, s := range Strategies {
		enc, err := Encode(prev, cur, defaultOpts(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		rec, err := enc.Decode(prev)
		if err != nil {
			t.Fatal(err)
		}
		for j := range cur {
			trueRatio := (cur[j] - prev[j]) / prev[j]
			recRatio := (rec[j] - prev[j]) / prev[j]
			if math.Abs(recRatio-trueRatio) > enc.Opt.ErrorBound+1e-12 {
				t.Fatalf("%v: point %d error too large (rec=%v cur=%v)", s, j, rec[j], cur[j])
			}
		}
	}
}

func TestRatioOverflowStoredExactly(t *testing.T) {
	// prev so small that (cur-prev)/prev overflows float64.
	tiny := math.SmallestNonzeroFloat64
	prev := []float64{tiny, 1}
	cur := []float64{1e308, 1.0001}
	enc, err := Encode(prev, cur, defaultOpts(EqualWidth))
	if err != nil {
		t.Fatal(err)
	}
	if !enc.Incompressible.Get(0) {
		t.Error("overflowing ratio not stored exactly")
	}
	rec, err := enc.Decode(prev)
	if err != nil {
		t.Fatal(err)
	}
	if rec[0] != 1e308 {
		t.Errorf("overflow point decoded to %v", rec[0])
	}
}

func TestComputeRatios(t *testing.T) {
	prev := []float64{10, 0, 4}
	cur := []float64{11, 5, 2}
	r, err := ComputeRatios(prev, cur, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Delta[0]-0.1) > 1e-15 || r.Kind[0] != RatioOK {
		t.Errorf("ratio 0 = %v kind %v", r.Delta[0], r.Kind[0])
	}
	if r.Kind[1] != RatioNoBase {
		t.Errorf("zero-prev kind = %v", r.Kind[1])
	}
	if math.Abs(r.Delta[2]+0.5) > 1e-15 {
		t.Errorf("ratio 2 = %v", r.Delta[2])
	}
	large := r.Large(0.2)
	if len(large) != 1 || large[0] != -0.5 {
		t.Errorf("Large = %v", large)
	}
	all := r.All()
	if len(all) != 2 {
		t.Errorf("All = %v", all)
	}
}

func TestComputeRatiosWorkerIndependence(t *testing.T) {
	prev, cur := genData(10007, 10) // prime-ish length to exercise ragged chunks
	var ref *Ratios
	for _, w := range []int{1, 2, 5, 16, 100} {
		r, err := ComputeRatios(prev, cur, w)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = r
			continue
		}
		for j := range r.Delta {
			if r.Delta[j] != ref.Delta[j] || r.Kind[j] != ref.Kind[j] {
				t.Fatalf("workers=%d: point %d differs", w, j)
			}
		}
	}
}

func TestDeterministicEncoding(t *testing.T) {
	prev, cur := genData(5000, 11)
	for _, s := range Strategies {
		a, err := Encode(prev, cur, defaultOpts(s))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Encode(prev, cur, defaultOpts(s))
		if err != nil {
			t.Fatal(err)
		}
		if a.Gamma() != b.Gamma() {
			t.Errorf("%v: non-deterministic gamma %v vs %v", s, a.Gamma(), b.Gamma())
		}
		for j := range a.Indices {
			if a.Indices[j] != b.Indices[j] {
				t.Fatalf("%v: non-deterministic index at %d", s, j)
			}
		}
	}
}

func TestBinTableFitsIndexSpace(t *testing.T) {
	prev, cur := genData(10000, 12)
	for _, bits := range []int{1, 2, 4, 8, 9, 10} {
		for _, s := range Strategies {
			opt := Options{ErrorBound: 0.001, IndexBits: bits, Strategy: s}
			enc, err := Encode(prev, cur, opt)
			if err != nil {
				t.Fatalf("B=%d %v: %v", bits, s, err)
			}
			if len(enc.BinRatios) > opt.NumBins() {
				t.Errorf("B=%d %v: %d bins exceed capacity %d", bits, s, len(enc.BinRatios), opt.NumBins())
			}
			maxIdx := uint32(0)
			for _, idx := range enc.Indices {
				if idx > maxIdx {
					maxIdx = idx
				}
			}
			if int(maxIdx) > opt.NumBins() {
				t.Errorf("B=%d %v: max index %d exceeds 2^B-1", bits, s, maxIdx)
			}
		}
	}
}
