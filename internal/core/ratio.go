package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"numarck/internal/fputil"
)

// ErrLength reports mismatched prev/cur lengths.
var ErrLength = errors.New("core: prev and cur must have the same length")

// ErrNonFinite reports NaN or Inf in the input data.
var ErrNonFinite = errors.New("core: input contains NaN or Inf")

// RatioKind classifies a point's change ratio.
type RatioKind uint8

const (
	// RatioOK means a finite ratio was computed.
	RatioOK RatioKind = iota
	// RatioNoBase means prev was zero, so no ratio exists (Eq. 1's
	// "D_{i-1,j} cannot be zero"); the point is stored exactly.
	RatioNoBase
	// RatioOverflow means the ratio overflowed to ±Inf (prev is
	// denormal-tiny relative to cur); the point is stored exactly.
	RatioOverflow
)

// Ratios holds the forward-predictive-coding transform of one iteration.
type Ratios struct {
	// Delta[j] is the change ratio of point j, or 0 when Kind[j] is
	// not RatioOK.
	Delta []float64
	// Kind[j] classifies point j.
	Kind []RatioKind
}

// ComputeRatios computes ΔD = (cur - prev) / prev element-wise (paper
// Eq. 1) using up to `workers` goroutines (<=0 means GOMAXPROCS). Inputs
// must be finite; zero prev values yield RatioNoBase.
func ComputeRatios(prev, cur []float64, workers int) (*Ratios, error) {
	r := &Ratios{}
	if err := ComputeRatiosInto(prev, cur, workers, r); err != nil {
		return nil, err
	}
	return r, nil
}

// ComputeRatiosInto is ComputeRatios writing into r, reusing r's slices
// when they have capacity. It is the allocation-free steady-state form:
// the streaming pipeline computes ratios for every chunk, and a pooled
// Ratios per pipeline slot makes second-and-later chunks allocate
// nothing here.
func ComputeRatiosInto(prev, cur []float64, workers int, r *Ratios) error {
	if len(prev) != len(cur) {
		return fmt.Errorf("%w: %d vs %d", ErrLength, len(prev), len(cur))
	}
	n := len(prev)
	r.Delta = growFloats(r.Delta, n)
	r.Kind = growKinds(r.Kind, n)
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: no goroutine or error-slab allocation, so a
		// pooled caller (the streaming pipeline computes one chunk's
		// ratios per call) stays allocation-free.
		return ratioRange(prev, cur, 0, n, r)
	}
	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = ratioRange(prev, cur, lo, hi, r)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ratioRange computes the ratios of points [lo, hi). Both output fields
// are written unconditionally: the buffers may be reused across chunks
// and carry stale values.
func ratioRange(prev, cur []float64, lo, hi int, r *Ratios) error {
	for j := lo; j < hi; j++ {
		p, c := prev[j], cur[j]
		if math.IsNaN(p) || math.IsInf(p, 0) || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: point %d (prev=%v cur=%v)", ErrNonFinite, j, p, c)
		}
		if fputil.IsZero(p) {
			r.Delta[j] = 0
			r.Kind[j] = RatioNoBase
			continue
		}
		d := (c - p) / p
		if math.IsInf(d, 0) || math.IsNaN(d) {
			r.Delta[j] = 0
			r.Kind[j] = RatioOverflow
			continue
		}
		r.Delta[j] = d
		r.Kind[j] = RatioOK
	}
	return nil
}

// growFloats returns s resized to length n, reusing its backing array
// when capacity allows.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// growKinds is growFloats for RatioKind slices.
func growKinds(s []RatioKind, n int) []RatioKind {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]RatioKind, n)
}

// Large returns the ratios with |Δ| >= bound and RatioOK kind — the
// points that must go through a binning strategy. The returned slice is
// freshly allocated.
func (r *Ratios) Large(bound float64) []float64 {
	out := make([]float64, 0, len(r.Delta)/4)
	for j, d := range r.Delta {
		if r.Kind[j] == RatioOK && math.Abs(d) >= bound {
			out = append(out, d)
		}
	}
	return out
}

// TableInput returns the ratios the table-learning stage must see under
// opt: every finite ratio when the zero index is disabled (ablation),
// otherwise the ratios with |Δ| >= E. Both the in-memory and the
// streaming encoder gather their fit input through this method so the
// learned tables match. opt must be validated.
func (r *Ratios) TableInput(opt Options) []float64 {
	if opt.DisableZeroIndex {
		return r.All()
	}
	return r.Large(opt.ErrorBound)
}

// TableInputInto is TableInput appending into buf[:0], reusing buf's
// backing array when it has capacity — the pooled form the streaming
// pipeline uses to keep its per-chunk table-input gather allocation
// free. The selected values are identical to TableInput's.
func (r *Ratios) TableInputInto(opt Options, buf []float64) []float64 {
	out := buf[:0]
	bound := opt.ErrorBound
	all := opt.DisableZeroIndex
	for j, d := range r.Delta {
		if r.Kind[j] == RatioOK && (all || math.Abs(d) >= bound) {
			out = append(out, d)
		}
	}
	return out
}

// All returns every finite ratio (RatioOK points), freshly allocated.
func (r *Ratios) All() []float64 {
	out := make([]float64, 0, len(r.Delta))
	for j, d := range r.Delta {
		if r.Kind[j] == RatioOK {
			out = append(out, d)
		}
	}
	return out
}
