package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"numarck/internal/fputil"
)

// ErrLength reports mismatched prev/cur lengths.
var ErrLength = errors.New("core: prev and cur must have the same length")

// ErrNonFinite reports NaN or Inf in the input data.
var ErrNonFinite = errors.New("core: input contains NaN or Inf")

// RatioKind classifies a point's change ratio.
type RatioKind uint8

const (
	// RatioOK means a finite ratio was computed.
	RatioOK RatioKind = iota
	// RatioNoBase means prev was zero, so no ratio exists (Eq. 1's
	// "D_{i-1,j} cannot be zero"); the point is stored exactly.
	RatioNoBase
	// RatioOverflow means the ratio overflowed to ±Inf (prev is
	// denormal-tiny relative to cur); the point is stored exactly.
	RatioOverflow
)

// Ratios holds the forward-predictive-coding transform of one iteration.
type Ratios struct {
	// Delta[j] is the change ratio of point j, or 0 when Kind[j] is
	// not RatioOK.
	Delta []float64
	// Kind[j] classifies point j.
	Kind []RatioKind
}

// ComputeRatios computes ΔD = (cur - prev) / prev element-wise (paper
// Eq. 1) using up to `workers` goroutines (<=0 means GOMAXPROCS). Inputs
// must be finite; zero prev values yield RatioNoBase.
func ComputeRatios(prev, cur []float64, workers int) (*Ratios, error) {
	if len(prev) != len(cur) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLength, len(prev), len(cur))
	}
	n := len(prev)
	r := &Ratios{Delta: make([]float64, n), Kind: make([]RatioKind, n)}
	if n == 0 {
		return r, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				p, c := prev[j], cur[j]
				if math.IsNaN(p) || math.IsInf(p, 0) || math.IsNaN(c) || math.IsInf(c, 0) {
					errs[w] = fmt.Errorf("%w: point %d (prev=%v cur=%v)", ErrNonFinite, j, p, c)
					return
				}
				if fputil.IsZero(p) {
					r.Kind[j] = RatioNoBase
					continue
				}
				d := (c - p) / p
				if math.IsInf(d, 0) || math.IsNaN(d) {
					r.Kind[j] = RatioOverflow
					continue
				}
				r.Delta[j] = d
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Large returns the ratios with |Δ| >= bound and RatioOK kind — the
// points that must go through a binning strategy. The returned slice is
// freshly allocated.
func (r *Ratios) Large(bound float64) []float64 {
	out := make([]float64, 0, len(r.Delta)/4)
	for j, d := range r.Delta {
		if r.Kind[j] == RatioOK && math.Abs(d) >= bound {
			out = append(out, d)
		}
	}
	return out
}

// TableInput returns the ratios the table-learning stage must see under
// opt: every finite ratio when the zero index is disabled (ablation),
// otherwise the ratios with |Δ| >= E. Both the in-memory and the
// streaming encoder gather their fit input through this method so the
// learned tables match. opt must be validated.
func (r *Ratios) TableInput(opt Options) []float64 {
	if opt.DisableZeroIndex {
		return r.All()
	}
	return r.Large(opt.ErrorBound)
}

// All returns every finite ratio (RatioOK points), freshly allocated.
func (r *Ratios) All() []float64 {
	out := make([]float64, 0, len(r.Delta))
	for j, d := range r.Delta {
		if r.Kind[j] == RatioOK {
			out = append(out, d)
		}
	}
	return out
}
