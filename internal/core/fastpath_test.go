package core

// Property tests pinning the branch-light assignment fast paths to
// their reference implementations: the log-scale bits-grid LUT against
// the defining log formula, and the grid-indexed cluster/table lookup
// against a brute-force nearest-representative scan. The contract: on
// every finite input the fast and slow paths return identical bin
// indices. Non-finite ratios (NaN, ±Inf) never reach Lookup in the
// pipeline — assignRange routes everything that is not RatioOK to
// exact storage — so for those the test only requires both paths to
// return some valid in-range index (int(±Inf) is implementation-
// defined in Go, so exact agreement there would overconstrain).

import (
	"math"
	"math/rand"
	"testing"
)

// logFitCase builds one adversarial log-scale table input.
func logFitCases(rng *rand.Rand) [][]float64 {
	cases := [][]float64{
		{0.001, 0.5},                  // two points
		{0.25},                        // single point, single bin
		{1e-300, 1e300},               // extreme dynamic range (huge bits span)
		{5e-324, 1e-320, 2e-320},      // denormals
		{-0.3, -0.3, -0.3},            // duplicate magnitude, negative side
		{-1, -0.5, 0.5, 1},            // symmetric two-sided
		{0.1, 0.1000000000000001},     // adjacent floats: near-degenerate span
		{-1e-9, 2e9},                  // wildly unbalanced sides
		{0, 0.7, -0.2},                // zero ratio present (ablation shape)
	}
	// Random log-uniform two-sided sets.
	for c := 0; c < 6; c++ {
		n := 50 + rng.Intn(2000)
		data := make([]float64, n)
		for i := range data {
			m := math.Exp(rng.Float64()*40 - 20) // magnitudes 2e-9 .. 5e8
			if rng.Intn(2) == 0 {
				m = -m
			}
			data[i] = m
		}
		cases = append(cases, data)
	}
	return cases
}

// probesFor returns adversarial lookup probes for a fitted data set:
// the data itself, the representatives, values straddling every bin
// edge, and non-finite ratios.
func probesFor(data, reps []float64, rng *rand.Rand) []float64 {
	probes := append([]float64{}, data...)
	probes = append(probes, reps...)
	for _, r := range reps {
		probes = append(probes,
			math.Nextafter(r, math.Inf(-1)), math.Nextafter(r, math.Inf(1)),
			r*(1+1e-15), r*(1-1e-15))
	}
	for i := 0; i < 2000; i++ {
		probes = append(probes, math.Exp(rng.Float64()*44-22)*float64(1-2*rng.Intn(2)))
	}
	probes = append(probes, 0, math.Copysign(0, -1), 5e-324, -5e-324, 1e308, -1e308)
	return probes
}

func TestLogLookupFastMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for ci, data := range logFitCases(rng) {
		for _, k := range []int{1, 2, 3, 7, 255, 1023} {
			b := fitLogScale(data, k, 1)
			reps := b.Representatives()
			for _, p := range probesFor(data, reps, rng) {
				fast := b.Lookup(p)
				slow := b.LookupSlow(p)
				if fast != slow {
					t.Fatalf("case %d k=%d: Lookup(%v) = %d, LookupSlow = %d (reps %d)",
						ci, k, p, fast, slow, len(reps))
				}
			}
			// Non-finite ratios: valid index from both paths is all the
			// pipeline-unreachable inputs get to demand.
			for _, p := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
				for _, g := range []int{b.Lookup(p), b.LookupSlow(p)} {
					if g < 0 || g >= len(reps) {
						t.Fatalf("case %d k=%d: non-finite probe %v gave out-of-range index %d", ci, k, p, g)
					}
				}
			}
		}
	}
}

// The grid-indexed lookup of cluster and fixed-table binners must agree
// with a brute-force nearest-representative scan (ties to the lower
// index), including on duplicate representatives and single-entry
// tables.
func TestTableLookupMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tables := [][]float64{
		{0.5},                      // single bin
		{0.1, 0.1, 0.1},            // all duplicates
		{-1, -1, 0, 2, 2},          // duplicate runs
		{-0.001, 0.001},            // tight symmetric
		{1, 1 + 1e-15, 1 + 2e-15},  // adjacent floats
	}
	for c := 0; c < 5; c++ {
		n := 1 + rng.Intn(512)
		tb := make([]float64, n)
		for i := range tb {
			tb[i] = rng.NormFloat64() * math.Exp(float64(rng.Intn(10)))
			if rng.Intn(4) == 0 && i > 0 {
				tb[i] = tb[i-1] // inject duplicates
			}
		}
		tables = append(tables, tb)
	}
	for ti, table := range tables {
		b := newTableBinner(table)
		reps := b.Representatives()
		brute := func(d float64) int {
			best, bestDist := 0, math.Abs(reps[0]-d)
			for j := 1; j < len(reps); j++ {
				if dist := math.Abs(reps[j] - d); dist < bestDist {
					best, bestDist = j, dist
				}
			}
			return best
		}
		probes := append([]float64{}, reps...)
		for j := 1; j < len(reps); j++ {
			mid := reps[j-1] + (reps[j]-reps[j-1])/2
			probes = append(probes, mid,
				math.Nextafter(mid, math.Inf(-1)), math.Nextafter(mid, math.Inf(1)))
		}
		for i := 0; i < 1000; i++ {
			probes = append(probes, rng.NormFloat64()*math.Exp(float64(rng.Intn(12)-3)))
		}
		probes = append(probes, -1e307, 1e307, 0)
		for _, p := range probes {
			fast := b.Lookup(p)
			want := brute(p)
			if fast == want {
				continue
			}
			// Duplicate representatives make several indices equally
			// correct; any rep at the same distance is acceptable.
			if math.Abs(reps[fast]-p) != math.Abs(reps[want]-p) {
				t.Fatalf("table %d: Lookup(%v) = %d (rep %v), brute force %d (rep %v)",
					ti, p, fast, reps[fast], want, reps[want])
			}
		}
	}
}
