package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyErrorBoundHolds is the central invariant of the paper: for
// arbitrary finite inputs, every reconstructed point's change ratio is
// within E of the true ratio (or the point is stored exactly). Checked
// with testing/quick across all three strategies.
func TestPropertyErrorBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, s := range Strategies {
		s := s
		f := func(seed int64, eChoice uint8, bChoice uint8) bool {
			e := []float64{0.0001, 0.001, 0.005, 0.02}[int(eChoice)%4]
			b := []int{2, 4, 8, 9}[int(bChoice)%4]
			r := rand.New(rand.NewSource(seed))
			n := 50 + r.Intn(500)
			prev := make([]float64, n)
			cur := make([]float64, n)
			for i := range prev {
				// Mix of magnitudes, signs, zeros.
				switch r.Intn(6) {
				case 0:
					prev[i] = 0
				case 1:
					prev[i] = -math.Exp(r.Float64()*20 - 10)
				default:
					prev[i] = math.Exp(r.Float64()*20 - 10)
				}
				cur[i] = prev[i]*(1+r.NormFloat64()*0.1) + float64(r.Intn(2))*r.NormFloat64()*0.001
			}
			enc, err := Encode(prev, cur, Options{ErrorBound: e, IndexBits: b, Strategy: s, KMeansMaxIter: 20})
			if err != nil {
				t.Logf("encode error: %v", err)
				return false
			}
			rec, err := enc.Decode(prev)
			if err != nil {
				t.Logf("decode error: %v", err)
				return false
			}
			for j := range cur {
				if prev[j] == 0 {
					if rec[j] != cur[j] {
						t.Logf("zero-prev point %d not exact", j)
						return false
					}
					continue
				}
				trueR := (cur[j] - prev[j]) / prev[j]
				if math.IsInf(trueR, 0) || math.IsNaN(trueR) {
					if rec[j] != cur[j] {
						t.Logf("overflow point %d not exact", j)
						return false
					}
					continue
				}
				recR := (rec[j] - prev[j]) / prev[j]
				if math.Abs(recR-trueR) > e*(1+1e-9)+1e-12 {
					t.Logf("strategy %v point %d: |%v - %v| > %v", s, j, recR, trueR, e)
					return false
				}
			}
			return true
		}
		cfg := &quick.Config{MaxCount: 25, Rand: rng}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
}

// TestPropertyGammaMonotoneInE: loosening the error bound can only help
// (weakly) the incompressible ratio, holding everything else fixed.
func TestPropertyGammaMonotoneInE(t *testing.T) {
	prev, cur := genData(8000, 21)
	for _, s := range []Strategy{EqualWidth, LogScale} {
		prevGamma := math.Inf(1)
		for _, e := range []float64{0.001, 0.002, 0.003, 0.004, 0.005} {
			enc, err := Encode(prev, cur, Options{ErrorBound: e, IndexBits: 8, Strategy: s})
			if err != nil {
				t.Fatal(err)
			}
			g := enc.Gamma()
			// Binning layouts shift with E (the "large ratio" set
			// changes), so allow a tiny non-monotonicity margin.
			if g > prevGamma+0.02 {
				t.Errorf("%v: gamma jumped %v -> %v at E=%v", s, prevGamma, g, e)
			}
			prevGamma = g
		}
	}
}

// TestPropertyGammaImprovesWithBits: more index bits means more bins and
// (weakly) fewer incompressible points — Fig. 6's driving effect.
func TestPropertyGammaImprovesWithBits(t *testing.T) {
	prev, cur := genData(8000, 22)
	for _, s := range Strategies {
		prevGamma := math.Inf(1)
		for _, b := range []int{4, 6, 8, 10} {
			enc, err := Encode(prev, cur, Options{ErrorBound: 0.001, IndexBits: b, Strategy: s, KMeansMaxIter: 25})
			if err != nil {
				t.Fatal(err)
			}
			g := enc.Gamma()
			if g > prevGamma+0.02 {
				t.Errorf("%v: gamma worsened %v -> %v at B=%d", s, prevGamma, g, b)
			}
			prevGamma = g
		}
	}
}

// TestPropertyDecodeIsDeterministic: decoding twice gives bit-identical
// output.
func TestPropertyDecodeIsDeterministic(t *testing.T) {
	prev, cur := genData(3000, 23)
	enc, err := Encode(prev, cur, defaultOpts(Clustering))
	if err != nil {
		t.Fatal(err)
	}
	a, err := enc.Decode(prev)
	if err != nil {
		t.Fatal(err)
	}
	b, err := enc.Decode(prev)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("decode differs at %d", j)
		}
	}
}

// TestPropertyChainedDecodeEqualsIterated: decoding a chain of
// encodings step by step equals applying each Encoded to the previous
// reconstruction — the restart replay semantics of §II-D.
func TestPropertyChainedDecodeEqualsIterated(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := 2000
	iters := 6
	data := make([][]float64, iters)
	data[0] = make([]float64, n)
	for j := range data[0] {
		data[0][j] = 10 + rng.Float64()*10
	}
	for i := 1; i < iters; i++ {
		data[i] = make([]float64, n)
		for j := range data[i] {
			data[i][j] = data[i-1][j] * (1 + rng.NormFloat64()*0.002)
		}
	}
	encs := make([]*Encoded, iters)
	// Encode as in-situ checkpointing: ratio against the TRUE previous
	// iteration.
	for i := 1; i < iters; i++ {
		var err error
		encs[i], err = Encode(data[i-1], data[i], defaultOpts(Clustering))
		if err != nil {
			t.Fatal(err)
		}
	}
	// Replay on top of the full checkpoint.
	rec := append([]float64(nil), data[0]...)
	for i := 1; i < iters; i++ {
		var err error
		rec, err = encs[i].Decode(rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Accumulated error at step i is bounded by roughly (1+E)^i - 1
	// relative; assert a generous envelope.
	maxRel := 0.0
	for j := range rec {
		rel := math.Abs(rec[j]-data[iters-1][j]) / math.Abs(data[iters-1][j])
		if rel > maxRel {
			maxRel = rel
		}
	}
	bound := math.Pow(1+0.001, float64(iters-1)) - 1
	if maxRel > bound*1.5 {
		t.Errorf("accumulated relative error %v exceeds envelope %v", maxRel, bound*1.5)
	}
}

// TestPropertyExactValuesBitIdentical: incompressible points round-trip
// bit-identically even for adversarial values.
func TestPropertyExactValuesBitIdentical(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		prev := make([]float64, len(vals))
		cur := make([]float64, len(vals))
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			prev[i] = 0 // forces every point incompressible
			cur[i] = v
		}
		enc, err := Encode(prev, cur, defaultOpts(EqualWidth))
		if err != nil {
			return false
		}
		rec, err := enc.Decode(prev)
		if err != nil {
			return false
		}
		for i := range cur {
			if math.Float64bits(rec[i]) != math.Float64bits(cur[i]) {
				return false
			}
		}
		return enc.Gamma() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
