package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"numarck/internal/bitpack"
	"numarck/internal/obs"
	"numarck/internal/stats"
)

// Encoded is one NUMARCK-compressed checkpoint iteration: the learned
// bin table, a B-bit index per point, and exact values for the points
// the error bound forced to be stored raw.
type Encoded struct {
	// Opt is the normalized options the encode ran with.
	Opt Options
	// N is the number of data points.
	N int
	// BinRatios[g] is the representative change ratio of group g.
	// Index value g+1 in the index stream refers to BinRatios[g];
	// index value 0 means "change within tolerance of zero".
	// len(BinRatios) <= 2^B - 1.
	BinRatios []float64
	// Indices[j] is point j's index value in [0, 2^B).
	Indices []uint32
	// Incompressible flags the points stored exactly.
	Incompressible *bitpack.Bitmap
	// Exact holds the exact current values of the incompressible
	// points, in increasing point order.
	Exact []float64

	// TrueRatios[j] is the actual change ratio of point j (0 where no
	// ratio exists). Kept for error accounting; it is NOT part of the
	// serialized format.
	TrueRatios []float64
}

// Encode compresses the transition prev → cur under opt. Both slices
// must have the same length and contain only finite values; prev is the
// (possibly reconstructed) previous checkpoint and cur the current one.
func Encode(prev, cur []float64, opt Options) (*Encoded, error) {
	// Validate before capturing opt in the fit closure: fitBinner must
	// see the resolved defaults (notably KMeansMaxIter), or the learned
	// table would differ from one fitted through core.Fit on validated
	// options, breaking the in-memory/streaming byte-identity.
	vopt, err := opt.Validate()
	if err != nil {
		return nil, err
	}
	return encodeWith(prev, cur, vopt, func(large []float64) (Binner, error) {
		return fitBinner(large, vopt)
	})
}

// EncodeWithTable compresses prev → cur against a fixed table of
// representative ratios instead of learning one from this data. Each
// large ratio is assigned to the nearest table entry; the error bound
// is enforced exactly as in Encode. This is how distributed encoding
// shares one globally learned table across ranks (internal/dist), and
// how a table learned on iteration i can be reused for iteration i+1.
// len(table) must be in (0, 2^B-1]; entries must be finite.
func EncodeWithTable(prev, cur []float64, table []float64, opt Options) (*Encoded, error) {
	vopt, err := opt.Validate()
	if err != nil {
		return nil, err
	}
	if len(table) == 0 {
		return nil, fmt.Errorf("%w: empty representative table", ErrBadOptions)
	}
	if len(table) > vopt.NumBins() {
		return nil, fmt.Errorf("%w: table of %d entries exceeds 2^%d-1 bins", ErrBadOptions, len(table), vopt.IndexBits)
	}
	for i, r := range table {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("%w: non-finite table entry %v at %d", ErrBadOptions, r, i)
		}
	}
	tb := newTableBinner(table)
	return encodeWith(prev, cur, opt, func([]float64) (Binner, error) {
		return tb, nil
	})
}

// encodeWith is the shared in-memory encode pipeline, built from the
// same reusable stages the streaming encoder (internal/chunk) runs per
// chunk: ComputeRatios → Ratios.TableInput → fit → AssignChunk. Keeping
// both paths on the same stage functions is what makes streaming output
// byte-identical to this path.
func encodeWith(prev, cur []float64, opt Options, fit func([]float64) (Binner, error)) (*Encoded, error) {
	opt, err := opt.Validate()
	if err != nil {
		return nil, err
	}
	rec := opt.Obs
	t := rec.Start()
	ratios, err := ComputeRatios(prev, cur, opt.Workers)
	t.Stop(obs.StageRatio)
	if err != nil {
		return nil, err
	}
	n := len(cur)
	e := &Encoded{
		Opt:            opt,
		N:              n,
		Indices:        make([]uint32, n),
		Incompressible: bitpack.NewBitmap(n),
		TrueRatios:     ratios.Delta,
	}

	t = rec.Start()
	large := ratios.TableInput(opt)
	var bins Binner
	if len(large) > 0 {
		bins, err = fit(large)
		if err != nil {
			t.Stop(obs.StageTable)
			return nil, err
		}
		e.BinRatios = bins.Representatives()
		if len(e.BinRatios) > opt.NumBins() {
			t.Stop(obs.StageTable)
			return nil, fmt.Errorf("core: internal error: %d representatives exceed %d bins", len(e.BinRatios), opt.NumBins())
		}
	}
	t.Stop(obs.StageTable)
	rec.Add(obs.CounterTableInput, int64(len(large)))
	rec.SetMax(obs.GaugeBinCount, int64(len(e.BinRatios)))

	// Assignment pass, parallel over point ranges: every binner's
	// Lookup is read-only after fitting. Incompressibility is recorded
	// as a flag here and gathered serially below so the exact-value
	// array keeps its point order.
	t = rec.Start()
	incompressible := make([]bool, n)
	parallelRanges(n, opt.Workers, func(lo, hi int) {
		assignRange(ratios, bins, e.BinRatios, opt, lo, hi, e.Indices, incompressible)
	})
	for j := 0; j < n; j++ {
		if incompressible[j] {
			e.markIncompressible(j, cur[j])
		}
	}
	t.Stop(obs.StageAssign)
	rec.Add(obs.CounterEncodes, 1)
	rec.Add(obs.CounterPointsEncoded, int64(n))
	rec.Add(obs.CounterExactValues, int64(len(e.Exact)))
	return e, nil
}

// assignRange runs the per-point bin-assignment stage over points
// [lo, hi): it writes each point's index value into indices and flags
// the points the error bound forces to be stored exactly. Both output
// fields are written unconditionally for every point — the slices may
// be pooled buffers carrying a previous chunk's values. reps must be
// bins.Representatives() (nil when no large ratios exist anywhere and
// bins is nil); opt must be validated.
func assignRange(ratios *Ratios, bins Binner, reps []float64, opt Options, lo, hi int, indices []uint32, incompressible []bool) {
	for j := lo; j < hi; j++ {
		if ratios.Kind[j] != RatioOK {
			indices[j] = 0
			incompressible[j] = true
			continue
		}
		d := ratios.Delta[j]
		if !opt.DisableZeroIndex && math.Abs(d) < opt.ErrorBound {
			indices[j] = 0 // within tolerance of "unchanged"
			incompressible[j] = false
			continue
		}
		g := bins.Lookup(d)
		rep := reps[g]
		if math.Abs(rep-d) > opt.ErrorBound {
			// The learned distribution cannot represent this point
			// within the bound: store it exactly. This is the
			// mechanism that makes the bound a guarantee (§II-C).
			indices[j] = 0
			incompressible[j] = true
			continue
		}
		//lint:ignore bindex g+1 <= NumBins <= 2^MaxIndexBits, enforced by Options.Validate
		indices[j] = uint32(g + 1)
		incompressible[j] = false
	}
}

// AssignChunk runs the bin-assignment stage over one window of points
// whose ratios have already been computed: indices[j] and
// incompressible[j] are written for every j in [0, len(cur)). It is the
// chunk-local form of the assignment loop inside Encode, exported so
// out-of-core encoders make identical per-point decisions. bins may be
// nil only when no point anywhere has a table-input ratio. opt must be
// validated.
func AssignChunk(ratios *Ratios, bins Binner, opt Options, indices []uint32, incompressible []bool) {
	var reps []float64
	if bins != nil {
		reps = bins.Representatives()
	}
	assignRange(ratios, bins, reps, opt, 0, len(indices), indices, incompressible)
}

// parallelRanges splits [0, n) into contiguous chunks across up to
// `workers` goroutines (<= 0 means GOMAXPROCS) and runs fn on each.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (e *Encoded) markIncompressible(j int, v float64) {
	e.Indices[j] = 0
	e.Incompressible.Set(j, true)
	e.Exact = append(e.Exact, v)
}

// Decode reconstructs the checkpoint from prev, which may itself be a
// reconstruction (restart replays a chain of Encoded on top of the last
// full checkpoint, accumulating error, §II-D).
func (e *Encoded) Decode(prev []float64) ([]float64, error) {
	if len(prev) != e.N {
		return nil, fmt.Errorf("%w: prev has %d points, encoded has %d", ErrLength, len(prev), e.N)
	}
	rec := e.Opt.Obs
	t := rec.Start()
	defer t.Stop(obs.StageDecode)
	out := make([]float64, e.N)
	exactIdx := 0
	for j := 0; j < e.N; j++ {
		if e.Incompressible.Get(j) {
			if exactIdx >= len(e.Exact) {
				return nil, fmt.Errorf("core: corrupt encoding: bitmap flags more exact values than stored (%d)", len(e.Exact))
			}
			out[j] = e.Exact[exactIdx]
			exactIdx++
			continue
		}
		idx := e.Indices[j]
		if idx == 0 {
			out[j] = prev[j] // unchanged within tolerance
			continue
		}
		g := int(idx) - 1
		if g >= len(e.BinRatios) {
			return nil, fmt.Errorf("core: corrupt encoding: index %d exceeds bin table size %d at point %d", idx, len(e.BinRatios), j)
		}
		out[j] = prev[j] * (1 + e.BinRatios[g])
	}
	if exactIdx != len(e.Exact) {
		return nil, fmt.Errorf("core: corrupt encoding: %d exact values stored, %d consumed", len(e.Exact), exactIdx)
	}
	rec.Add(obs.CounterDecodes, 1)
	rec.Add(obs.CounterPointsDecoded, int64(e.N))
	return out, nil
}

// ApproxRatio returns the change ratio the decoder will apply at point
// j: the group representative, 0 for the reserved index, or the true
// ratio for incompressible points (their reconstruction is exact).
func (e *Encoded) ApproxRatio(j int) float64 {
	if e.Incompressible.Get(j) {
		return e.TrueRatios[j]
	}
	idx := e.Indices[j]
	if idx == 0 {
		return 0
	}
	return e.BinRatios[idx-1]
}

// Gamma returns the incompressible ratio γ: the fraction of points
// stored as exact values (§III-B).
func (e *Encoded) Gamma() float64 {
	if e.N == 0 {
		return 0
	}
	return float64(e.Incompressible.Count()) / float64(e.N)
}

// MeanErrorRate returns the average |approximated ratio − true ratio|
// across all points, as a fraction (multiply by 100 for the paper's
// percent figures). Incompressible points contribute zero error.
func (e *Encoded) MeanErrorRate() float64 {
	if e.N == 0 {
		return 0
	}
	var sum float64
	for j := 0; j < e.N; j++ {
		sum += math.Abs(e.ApproxRatio(j) - e.TrueRatios[j])
	}
	return sum / float64(e.N)
}

// MaxErrorRate returns the maximum |approximated ratio − true ratio|
// across all points, as a fraction.
func (e *Encoded) MaxErrorRate() float64 {
	var m float64
	for j := 0; j < e.N; j++ {
		if d := math.Abs(e.ApproxRatio(j) - e.TrueRatios[j]); d > m {
			m = d
		}
	}
	return m
}

// CompressionRatio returns the paper's Eq. 3 storage-saving percentage
// for this encoding.
func (e *Encoded) CompressionRatio() (float64, error) {
	return stats.CompressionRatio(e.N, e.Gamma(), e.Opt.IndexBits)
}

// CompressionRatioWithBitmap additionally charges the one-bit-per-point
// compressibility bitmap the self-contained format needs.
func (e *Encoded) CompressionRatioWithBitmap() (float64, error) {
	return stats.CompressionRatioWithBitmap(e.N, e.Gamma(), e.Opt.IndexBits)
}

// PackedIndices returns the B-bit-packed index stream.
func (e *Encoded) PackedIndices() ([]byte, error) {
	return bitpack.Pack(e.Indices, e.Opt.IndexBits)
}

// EncodedSizeBytes returns the serialized payload size implied by the
// paper's storage model: packed indices + bitmap + exact values + bin
// table. (The on-disk format in internal/checkpoint adds a small
// header.)
func (e *Encoded) EncodedSizeBytes() int {
	idx := bitpack.PackedLen(e.N, e.Opt.IndexBits)
	bitmap := (e.N + 7) / 8
	exact := 8 * len(e.Exact)
	table := 8 * e.Opt.NumBins()
	return idx + bitmap + exact + table
}
