package core

import (
	"fmt"
	"math"
	"sort"

	"numarck/internal/fputil"
	"numarck/internal/kmeans"
)

// Binner is a learned partition of the large change ratios into at most
// k groups, each approximated by a representative ratio. Lookup must be
// safe for concurrent use once fitting has finished; the streaming
// pipeline (internal/chunk) assigns chunks against one shared Binner.
type Binner interface {
	// Representatives returns one representative ratio per group. Its
	// length is at most 2^B - 1; group g is stored as index g+1 (index
	// 0 being reserved for "unchanged").
	Representatives() []float64
	// Lookup returns the group for ratio d (an index into
	// Representatives).
	Lookup(d float64) int
}

// Fit learns a partition of the table input (see Ratios.TableInput)
// using opt's strategy. It is the table-learning stage of the encode
// pipeline, exported so out-of-core encoders learn bit-identical tables
// to the in-memory path when given the same input sequence. data must
// be non-empty; opt must be validated.
func Fit(data []float64, opt Options) (Binner, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: Fit needs at least one ratio", ErrBadOptions)
	}
	return fitBinner(data, opt)
}

// fitBinner learns a partition of data (the ratios with |Δ| >= E) using
// the configured strategy. data must be non-empty.
func fitBinner(data []float64, opt Options) (Binner, error) {
	k := opt.NumBins()
	switch opt.Strategy {
	case EqualWidth:
		return fitEqualWidth(data, k, opt.Workers), nil
	case LogScale:
		return fitLogScale(data, k, opt.Workers), nil
	case Clustering:
		return fitClustering(data, k, opt)
	case EqualFrequency:
		return fitEqualFrequency(data, k), nil
	default:
		return nil, fmt.Errorf("%w: unknown strategy %d", ErrBadOptions, int(opt.Strategy))
	}
}

// fitEqualFrequency builds quantile bins: sort the ratios, cut into k
// equal-population groups, and represent each by its mean. Lookup is a
// nearest-representative search, so the learned table behaves exactly
// like a fixed table (EncodeWithTable) built from quantile statistics.
func fitEqualFrequency(data []float64, k int) *tableBinner {
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	if k > len(sorted) {
		k = len(sorted)
	}
	reps := make([]float64, 0, k)
	for g := 0; g < k; g++ {
		lo := g * len(sorted) / k
		hi := (g + 1) * len(sorted) / k
		if lo >= hi {
			continue
		}
		var sum float64
		for _, v := range sorted[lo:hi] {
			sum += v
		}
		reps = append(reps, sum/float64(hi-lo))
	}
	// Means of sorted, disjoint groups are non-decreasing; dedupe so
	// the nearest-rep index sees strictly ordered values.
	dedup := reps[:0]
	for i, r := range reps {
		if i == 0 || !fputil.Eq(r, dedup[len(dedup)-1]) {
			dedup = append(dedup, r)
		}
	}
	return newTableBinner(dedup)
}

// equalWidthBinner partitions [lo, hi] into k equal bins; each ratio is
// represented by its bin center (§II-C1). When the bin width exceeds
// 2E, points near bin edges fail the error check and become
// incompressible — the weakness the paper calls out.
type equalWidthBinner struct {
	lo, width float64
	reps      []float64
}

func fitEqualWidth(data []float64, k, workers int) *equalWidthBinner {
	lo, hi := parMinMax(data, workers)
	if fputil.Eq(lo, hi) {
		return &equalWidthBinner{lo: lo, width: 0, reps: []float64{lo}}
	}
	b := &equalWidthBinner{lo: lo, width: (hi - lo) / float64(k), reps: make([]float64, k)}
	for i := range b.reps {
		b.reps[i] = lo + (float64(i)+0.5)*b.width
	}
	return b
}

func (b *equalWidthBinner) Representatives() []float64 { return b.reps }

func (b *equalWidthBinner) Lookup(d float64) int {
	if fputil.IsZero(b.width) {
		return 0
	}
	i := int((d - b.lo) / b.width)
	if i < 0 {
		i = 0
	}
	if i >= len(b.reps) {
		i = len(b.reps) - 1
	}
	return i
}

// logScaleBinner assigns ratios to bins by the e-based logarithm of
// their magnitude (§II-C2), with separate bin ranges for negative and
// positive ratios sized proportionally to each side's population. Small
// changes get narrow bins, large changes wide ones, so a large dynamic
// range is covered with the same 2^B - 1 bins.
type logScaleBinner struct {
	neg, pos logSide
	reps     []float64 // negative side first, then positive
}

// logSide is one sign's log-spaced binning over [minAbs, maxAbs].
//
// Lookup has two paths. The slow path evaluates the defining formula
// (a math.Log per point). The fast path exploits the fact that
// math.Float64bits is monotone over positive floats: the magnitude
// range [minAbs, maxAbs] becomes an integer interval of bit patterns,
// which a right shift tiles into equal cells. Each cell precomputes its
// bin where the formula gives the same answer at both cell edges —
// monotonicity then guarantees every interior value agrees — and marks
// itself ambiguous (-1) otherwise, falling back to the formula. The
// fast path is therefore bit-identical to the slow one by construction
// (TestLogLookupFastMatchesSlow exercises adversarial inputs).
type logSide struct {
	k          int // number of bins (0 if the side is empty)
	base       int // offset of this side's first rep in reps
	logLo, spn float64

	loBits, hiBits uint64 // Float64bits of minAbs / maxAbs
	shift          uint   // bits per LUT cell
	lut            []int32 // per-cell bin, -1 = take the slow path
}

func fitLogScale(data []float64, k, workers int) *logScaleBinner {
	// The per-sign magnitude statistics come from fixed-range parallel
	// scans (parfit.go): count/min/max merge exactly, so the learned
	// table is the same for any worker count. Zero-magnitude ratios are
	// skipped; they hit the nearest-rep fallback in Lookup.
	neg, pos := parSignStats(data, workers)
	b := &logScaleBinner{}
	kNeg, kPos := splitBins(k, neg.n, pos.n)
	if kNeg > 0 {
		b.neg = makeLogSide(kNeg, 0, neg.min, neg.max)
		b.neg.buildLUT(neg.min, neg.max)
	}
	if kPos > 0 {
		b.pos = makeLogSide(kPos, kNeg, pos.min, pos.max)
		b.pos.buildLUT(pos.min, pos.max)
	}
	b.reps = make([]float64, 0, kNeg+kPos)
	for i := 0; i < kNeg; i++ {
		b.reps = append(b.reps, -math.Exp(b.neg.logLo+(float64(i)+0.5)*b.neg.spn/float64(b.neg.k)))
	}
	for i := 0; i < kPos; i++ {
		b.reps = append(b.reps, math.Exp(b.pos.logLo+(float64(i)+0.5)*b.pos.spn/float64(b.pos.k)))
	}
	if len(b.reps) == 0 {
		// Degenerate input (all zeros); one zero representative.
		b.reps = []float64{0}
	}
	return b
}

// splitBins divides k bins between the negative and positive sides in
// proportion to their populations, guaranteeing each non-empty side at
// least one bin.
func splitBins(k, nNeg, nPos int) (kNeg, kPos int) {
	switch {
	case nNeg == 0 && nPos == 0:
		return 0, 0
	case nNeg == 0:
		return 0, k
	case nPos == 0:
		return k, 0
	}
	kNeg = int(math.Round(float64(k) * float64(nNeg) / float64(nNeg+nPos)))
	if kNeg < 1 {
		kNeg = 1
	}
	if kNeg > k-1 {
		kNeg = k - 1
	}
	return kNeg, k - kNeg
}

func makeLogSide(k, base int, minAbs, maxAbs float64) logSide {
	logLo := math.Log(minAbs)
	spn := math.Log(maxAbs) - logLo
	if spn <= 0 {
		spn = 0
	}
	return logSide{k: k, base: base, logLo: logLo, spn: spn}
}

// slowIndex is the defining log-formula bin computation, clamped to
// [0, k-1]. The LUT is built from it and falls back to it, so every
// fast answer is provably one this function would give.
func (s *logSide) slowIndex(absD float64) int {
	// Compare before converting: a magnitude far outside the fitted
	// range (possible when the table was learned on a sample) with a
	// near-degenerate span can push f past the int range, where int(f)
	// is implementation-defined.
	f := float64(s.k) * (math.Log(absD) - s.logLo) / s.spn
	if f >= float64(s.k-1) {
		return s.k - 1
	}
	if f > 0 {
		return int(f)
	}
	return 0
}

// lookupSlow is the pre-LUT lookup, kept as the reference oracle for
// the fast-path property tests.
func (s *logSide) lookupSlow(absD float64) int {
	if s.k == 0 {
		return -1
	}
	if fputil.IsZero(s.spn) {
		return s.base
	}
	return s.base + s.slowIndex(absD)
}

// maxLUTCells bounds the bits-grid lookup table per sign: 4096 int32
// cells is 16 KiB, within L1 alongside the data being scanned.
const maxLUTCells = 4096

// buildLUT precomputes the bits-grid fast path over [minAbs, maxAbs].
// Both bounds must be positive (guaranteed: zero magnitudes are skipped
// by the sign-stat scan) and the side non-degenerate (spn > 0).
func (s *logSide) buildLUT(minAbs, maxAbs float64) {
	if s.k == 0 || fputil.IsZero(s.spn) {
		return
	}
	s.loBits = math.Float64bits(minAbs)
	s.hiBits = math.Float64bits(maxAbs)
	span := s.hiBits - s.loBits
	s.shift = 0
	for (span >> s.shift) >= maxLUTCells {
		s.shift++
	}
	cells := int(span>>s.shift) + 1
	s.lut = make([]int32, cells)
	for c := 0; c < cells; c++ {
		start := s.loBits + uint64(c)<<s.shift
		end := start + 1<<s.shift - 1
		if end > s.hiBits {
			end = s.hiBits
		}
		first := s.slowIndex(math.Float64frombits(start))
		last := s.slowIndex(math.Float64frombits(end))
		if first == last {
			//lint:ignore bindex bin index < k <= 2^MaxIndexBits, enforced by Options.Validate
			s.lut[c] = int32(first)
		} else {
			s.lut[c] = -1
		}
	}
}

func (s *logSide) lookup(absD float64) int {
	if s.k == 0 {
		return -1
	}
	if fputil.IsZero(s.spn) {
		return s.base
	}
	if s.lut != nil {
		b := math.Float64bits(absD)
		if b <= s.loBits {
			return s.base // slowIndex clamps everything below minAbs to 0
		}
		if b >= s.hiBits {
			return s.base + s.k - 1 // and everything above maxAbs to k-1
		}
		if g := s.lut[(b-s.loBits)>>s.shift]; g >= 0 {
			return s.base + int(g)
		}
	}
	return s.base + s.slowIndex(absD)
}

func (b *logScaleBinner) Representatives() []float64 { return b.reps }

func (b *logScaleBinner) Lookup(d float64) int {
	var i int
	switch {
	case d < 0:
		i = b.neg.lookup(-d)
	case d > 0:
		i = b.pos.lookup(d)
	default:
		i = -1
	}
	if i >= 0 {
		return i
	}
	return b.nearestRep(d)
}

// LookupSlow is Lookup through the pre-LUT formula path, kept as the
// oracle for the fast-path property tests: Lookup must agree with it on
// every input.
func (b *logScaleBinner) LookupSlow(d float64) int {
	var i int
	switch {
	case d < 0:
		i = b.neg.lookupSlow(-d)
	case d > 0:
		i = b.pos.lookupSlow(d)
	default:
		i = -1
	}
	if i >= 0 {
		return i
	}
	return b.nearestRep(d)
}

// nearestRep is the shared fallback for a zero ratio or a sign with no
// bins (possible only in the DisableZeroIndex ablation): the nearest
// representative by absolute distance.
func (b *logScaleBinner) nearestRep(d float64) int {
	best, bestDist := 0, math.Inf(1)
	for j, r := range b.reps {
		if dist := math.Abs(r - d); dist < bestDist {
			best, bestDist = j, dist
		}
	}
	return best
}

// clusterBinner approximates each ratio by its k-means centroid
// (§II-C3). Centroids are seeded from the equal-width histogram as in
// the paper (or uniformly, for the seeding ablation). Lookup runs
// through the kmeans uniform-grid index over the sorted centroids — the
// branch-light equivalent of a sorted-centroid midpoint table: each
// grid cell already knows the 1-3 centroids whose midpoints cross it,
// and single-candidate cells resolve without any comparison.
type clusterBinner struct {
	cents []float64
	ix    *kmeans.Index
}

func fitClustering(data []float64, k int, opt Options) (*clusterBinner, error) {
	if k > len(data) {
		k = len(data) // never more clusters than points
	}
	if len(data) > 2*sketchBins(k) {
		// Large input: learn over per-range sketches concurrently and
		// merge (parfit.go). Lloyd then iterates over at most
		// sketchBins(k) weighted micro-centroids instead of len(data)
		// points, which is where the clustering table stage's time goes.
		b, err := fitClusteringSketch(data, k, opt)
		if err != nil {
			return nil, fmt.Errorf("core: clustering strategy: %w", err)
		}
		return b, nil
	}
	cfg := kmeans.Config{
		K:       k,
		MaxIter: opt.KMeansMaxIter,
		Workers: opt.Workers,
	}
	if opt.UniformSeeding {
		cfg.Seeds = kmeans.SeedUniform(data, k)
	}
	res, err := kmeans.Run(data, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: clustering strategy: %w", err)
	}
	return &clusterBinner{cents: res.Centroids, ix: kmeans.NewIndex(res.Centroids)}, nil
}

func (b *clusterBinner) Representatives() []float64 { return b.cents }

func (b *clusterBinner) Lookup(d float64) int {
	return b.ix.Nearest(d)
}

// tableBinner assigns each ratio to the nearest entry of a fixed,
// externally supplied table (EncodeWithTable).
type tableBinner struct {
	reps []float64 // sorted ascending
	ix   *kmeans.Index
}

func newTableBinner(table []float64) *tableBinner {
	reps := append([]float64(nil), table...)
	sort.Float64s(reps)
	return &tableBinner{reps: reps, ix: kmeans.NewIndex(reps)}
}

func (b *tableBinner) Representatives() []float64 { return b.reps }

func (b *tableBinner) Lookup(d float64) int {
	return b.ix.Nearest(d)
}

// EqualWidthTable returns the representative table the equal-width
// strategy would learn for ratios spanning [lo, hi]: the centers of k
// uniform bins. Exported for global (cross-rank) table construction.
func EqualWidthTable(lo, hi float64, k int) []float64 {
	if k < 1 {
		return nil
	}
	if fputil.Eq(lo, hi) {
		return []float64{lo}
	}
	w := (hi - lo) / float64(k)
	reps := make([]float64, k)
	for i := range reps {
		reps[i] = lo + (float64(i)+0.5)*w
	}
	return reps
}

// LogScaleTable returns the representative table the log-scale strategy
// would learn for ratios whose negative side spans magnitudes
// [negMin, negMax] with nNeg points and positive side [posMin, posMax]
// with nPos points. Sides with zero points get no bins. Exported for
// global (cross-rank) table construction.
func LogScaleTable(negMin, negMax float64, nNeg int, posMin, posMax float64, nPos int, k int) []float64 {
	kNeg, kPos := splitBins(k, nNeg, nPos)
	reps := make([]float64, 0, kNeg+kPos)
	if kNeg > 0 {
		side := makeLogSide(kNeg, 0, negMin, negMax)
		for i := 0; i < kNeg; i++ {
			reps = append(reps, -math.Exp(side.logLo+(float64(i)+0.5)*side.spn/float64(side.k)))
		}
	}
	if kPos > 0 {
		side := makeLogSide(kPos, kNeg, posMin, posMax)
		for i := 0; i < kPos; i++ {
			reps = append(reps, math.Exp(side.logLo+(float64(i)+0.5)*side.spn/float64(side.k)))
		}
	}
	if len(reps) == 0 {
		reps = []float64{0}
	}
	return reps
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
