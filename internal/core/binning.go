package core

import (
	"fmt"
	"math"
	"sort"

	"numarck/internal/fputil"
	"numarck/internal/kmeans"
)

// Binner is a learned partition of the large change ratios into at most
// k groups, each approximated by a representative ratio. Lookup must be
// safe for concurrent use once fitting has finished; the streaming
// pipeline (internal/chunk) assigns chunks against one shared Binner.
type Binner interface {
	// Representatives returns one representative ratio per group. Its
	// length is at most 2^B - 1; group g is stored as index g+1 (index
	// 0 being reserved for "unchanged").
	Representatives() []float64
	// Lookup returns the group for ratio d (an index into
	// Representatives).
	Lookup(d float64) int
}

// Fit learns a partition of the table input (see Ratios.TableInput)
// using opt's strategy. It is the table-learning stage of the encode
// pipeline, exported so out-of-core encoders learn bit-identical tables
// to the in-memory path when given the same input sequence. data must
// be non-empty; opt must be validated.
func Fit(data []float64, opt Options) (Binner, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: Fit needs at least one ratio", ErrBadOptions)
	}
	return fitBinner(data, opt)
}

// fitBinner learns a partition of data (the ratios with |Δ| >= E) using
// the configured strategy. data must be non-empty.
func fitBinner(data []float64, opt Options) (Binner, error) {
	k := opt.NumBins()
	switch opt.Strategy {
	case EqualWidth:
		return fitEqualWidth(data, k), nil
	case LogScale:
		return fitLogScale(data, k), nil
	case Clustering:
		return fitClustering(data, k, opt)
	case EqualFrequency:
		return fitEqualFrequency(data, k), nil
	default:
		return nil, fmt.Errorf("%w: unknown strategy %d", ErrBadOptions, int(opt.Strategy))
	}
}

// fitEqualFrequency builds quantile bins: sort the ratios, cut into k
// equal-population groups, and represent each by its mean. Lookup is a
// nearest-representative search, so the learned table behaves exactly
// like a fixed table (EncodeWithTable) built from quantile statistics.
func fitEqualFrequency(data []float64, k int) *tableBinner {
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	if k > len(sorted) {
		k = len(sorted)
	}
	reps := make([]float64, 0, k)
	for g := 0; g < k; g++ {
		lo := g * len(sorted) / k
		hi := (g + 1) * len(sorted) / k
		if lo >= hi {
			continue
		}
		var sum float64
		for _, v := range sorted[lo:hi] {
			sum += v
		}
		reps = append(reps, sum/float64(hi-lo))
	}
	// Means of sorted, disjoint groups are non-decreasing; dedupe so
	// the nearest-rep index sees strictly ordered values.
	dedup := reps[:0]
	for i, r := range reps {
		if i == 0 || !fputil.Eq(r, dedup[len(dedup)-1]) {
			dedup = append(dedup, r)
		}
	}
	return newTableBinner(dedup)
}

// equalWidthBinner partitions [lo, hi] into k equal bins; each ratio is
// represented by its bin center (§II-C1). When the bin width exceeds
// 2E, points near bin edges fail the error check and become
// incompressible — the weakness the paper calls out.
type equalWidthBinner struct {
	lo, width float64
	reps      []float64
}

func fitEqualWidth(data []float64, k int) *equalWidthBinner {
	lo, hi := minMax(data)
	if fputil.Eq(lo, hi) {
		return &equalWidthBinner{lo: lo, width: 0, reps: []float64{lo}}
	}
	b := &equalWidthBinner{lo: lo, width: (hi - lo) / float64(k), reps: make([]float64, k)}
	for i := range b.reps {
		b.reps[i] = lo + (float64(i)+0.5)*b.width
	}
	return b
}

func (b *equalWidthBinner) Representatives() []float64 { return b.reps }

func (b *equalWidthBinner) Lookup(d float64) int {
	if fputil.IsZero(b.width) {
		return 0
	}
	i := int((d - b.lo) / b.width)
	if i < 0 {
		i = 0
	}
	if i >= len(b.reps) {
		i = len(b.reps) - 1
	}
	return i
}

// logScaleBinner assigns ratios to bins by the e-based logarithm of
// their magnitude (§II-C2), with separate bin ranges for negative and
// positive ratios sized proportionally to each side's population. Small
// changes get narrow bins, large changes wide ones, so a large dynamic
// range is covered with the same 2^B - 1 bins.
type logScaleBinner struct {
	neg, pos logSide
	reps     []float64 // negative side first, then positive
}

// logSide is one sign's log-spaced binning over [minAbs, maxAbs].
type logSide struct {
	k          int // number of bins (0 if the side is empty)
	base       int // offset of this side's first rep in reps
	logLo, spn float64
}

func fitLogScale(data []float64, k int) *logScaleBinner {
	var nNeg, nPos int
	negMin, negMax := math.Inf(1), math.Inf(-1) // over |d|
	posMin, posMax := math.Inf(1), math.Inf(-1)
	for _, d := range data {
		a := math.Abs(d)
		if fputil.IsZero(a) {
			continue // handled by nearest-rep fallback in Lookup
		}
		if d < 0 {
			nNeg++
			if a < negMin {
				negMin = a
			}
			if a > negMax {
				negMax = a
			}
		} else {
			nPos++
			if a < posMin {
				posMin = a
			}
			if a > posMax {
				posMax = a
			}
		}
	}
	b := &logScaleBinner{}
	kNeg, kPos := splitBins(k, nNeg, nPos)
	if kNeg > 0 {
		b.neg = makeLogSide(kNeg, 0, negMin, negMax)
	}
	if kPos > 0 {
		b.pos = makeLogSide(kPos, kNeg, posMin, posMax)
	}
	b.reps = make([]float64, 0, kNeg+kPos)
	for i := 0; i < kNeg; i++ {
		b.reps = append(b.reps, -math.Exp(b.neg.logLo+(float64(i)+0.5)*b.neg.spn/float64(b.neg.k)))
	}
	for i := 0; i < kPos; i++ {
		b.reps = append(b.reps, math.Exp(b.pos.logLo+(float64(i)+0.5)*b.pos.spn/float64(b.pos.k)))
	}
	if len(b.reps) == 0 {
		// Degenerate input (all zeros); one zero representative.
		b.reps = []float64{0}
	}
	return b
}

// splitBins divides k bins between the negative and positive sides in
// proportion to their populations, guaranteeing each non-empty side at
// least one bin.
func splitBins(k, nNeg, nPos int) (kNeg, kPos int) {
	switch {
	case nNeg == 0 && nPos == 0:
		return 0, 0
	case nNeg == 0:
		return 0, k
	case nPos == 0:
		return k, 0
	}
	kNeg = int(math.Round(float64(k) * float64(nNeg) / float64(nNeg+nPos)))
	if kNeg < 1 {
		kNeg = 1
	}
	if kNeg > k-1 {
		kNeg = k - 1
	}
	return kNeg, k - kNeg
}

func makeLogSide(k, base int, minAbs, maxAbs float64) logSide {
	logLo := math.Log(minAbs)
	spn := math.Log(maxAbs) - logLo
	if spn <= 0 {
		spn = 0
	}
	return logSide{k: k, base: base, logLo: logLo, spn: spn}
}

func (s *logSide) lookup(absD float64) int {
	if s.k == 0 {
		return -1
	}
	if fputil.IsZero(s.spn) {
		return s.base
	}
	i := int(float64(s.k) * (math.Log(absD) - s.logLo) / s.spn)
	if i < 0 {
		i = 0
	}
	if i >= s.k {
		i = s.k - 1
	}
	return s.base + i
}

func (b *logScaleBinner) Representatives() []float64 { return b.reps }

func (b *logScaleBinner) Lookup(d float64) int {
	var i int
	switch {
	case d < 0:
		i = b.neg.lookup(-d)
	case d > 0:
		i = b.pos.lookup(d)
	default:
		i = -1
	}
	if i >= 0 {
		return i
	}
	// Zero ratio or a sign with no bins (possible only in the
	// DisableZeroIndex ablation): fall back to the nearest
	// representative.
	best, bestDist := 0, math.Inf(1)
	for j, r := range b.reps {
		if dist := math.Abs(r - d); dist < bestDist {
			best, bestDist = j, dist
		}
	}
	return best
}

// clusterBinner approximates each ratio by its k-means centroid
// (§II-C3). Centroids are seeded from the equal-width histogram as in
// the paper (or uniformly, for the seeding ablation).
type clusterBinner struct {
	cents []float64
	ix    *kmeans.Index
}

func fitClustering(data []float64, k int, opt Options) (*clusterBinner, error) {
	if k > len(data) {
		k = len(data) // never more clusters than points
	}
	cfg := kmeans.Config{
		K:       k,
		MaxIter: opt.KMeansMaxIter,
		Workers: opt.Workers,
	}
	if opt.UniformSeeding {
		cfg.Seeds = kmeans.SeedUniform(data, k)
	}
	res, err := kmeans.Run(data, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: clustering strategy: %w", err)
	}
	return &clusterBinner{cents: res.Centroids, ix: kmeans.NewIndex(res.Centroids)}, nil
}

func (b *clusterBinner) Representatives() []float64 { return b.cents }

func (b *clusterBinner) Lookup(d float64) int {
	return b.ix.Nearest(d)
}

// tableBinner assigns each ratio to the nearest entry of a fixed,
// externally supplied table (EncodeWithTable).
type tableBinner struct {
	reps []float64 // sorted ascending
	ix   *kmeans.Index
}

func newTableBinner(table []float64) *tableBinner {
	reps := append([]float64(nil), table...)
	sort.Float64s(reps)
	return &tableBinner{reps: reps, ix: kmeans.NewIndex(reps)}
}

func (b *tableBinner) Representatives() []float64 { return b.reps }

func (b *tableBinner) Lookup(d float64) int {
	return b.ix.Nearest(d)
}

// EqualWidthTable returns the representative table the equal-width
// strategy would learn for ratios spanning [lo, hi]: the centers of k
// uniform bins. Exported for global (cross-rank) table construction.
func EqualWidthTable(lo, hi float64, k int) []float64 {
	if k < 1 {
		return nil
	}
	if fputil.Eq(lo, hi) {
		return []float64{lo}
	}
	w := (hi - lo) / float64(k)
	reps := make([]float64, k)
	for i := range reps {
		reps[i] = lo + (float64(i)+0.5)*w
	}
	return reps
}

// LogScaleTable returns the representative table the log-scale strategy
// would learn for ratios whose negative side spans magnitudes
// [negMin, negMax] with nNeg points and positive side [posMin, posMax]
// with nPos points. Sides with zero points get no bins. Exported for
// global (cross-rank) table construction.
func LogScaleTable(negMin, negMax float64, nNeg int, posMin, posMax float64, nPos int, k int) []float64 {
	kNeg, kPos := splitBins(k, nNeg, nPos)
	reps := make([]float64, 0, kNeg+kPos)
	if kNeg > 0 {
		side := makeLogSide(kNeg, 0, negMin, negMax)
		for i := 0; i < kNeg; i++ {
			reps = append(reps, -math.Exp(side.logLo+(float64(i)+0.5)*side.spn/float64(side.k)))
		}
	}
	if kPos > 0 {
		side := makeLogSide(kPos, kNeg, posMin, posMax)
		for i := 0; i < kPos; i++ {
			reps = append(reps, math.Exp(side.logLo+(float64(i)+0.5)*side.spn/float64(side.k)))
		}
	}
	if len(reps) == 0 {
		reps = []float64{0}
	}
	return reps
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
