package core

// Parallel table-learning support: the statistics the fit strategies
// need (min/max, per-sign log-range stats, clustering sketches) are
// gathered over fixed-size ranges of the table input concurrently and
// merged in range order. The range size is a constant — NOT derived
// from the worker count — so the merged result is a pure function of
// the input sequence. That is what keeps the in-memory and streaming
// encoders byte-identical while both are free to pick any Workers
// value, and it mirrors the paper authors' parallel follow-up, where
// per-partition summaries merge into one global table.

import (
	"math"
	"sync"

	"numarck/internal/fputil"
	"numarck/internal/kmeans"
)

// statRangePoints is the fixed range length of all parallel fit scans.
// 8192 float64s is 64 KiB — large enough to amortize goroutine
// scheduling, small enough to load-balance across workers.
const statRangePoints = 8192

// forEachRange splits [0, n) into ceil(n/statRangePoints) fixed ranges
// and runs fn(r, lo, hi) for each, using up to `workers` goroutines.
// fn must write its result into a slot keyed by r; the caller merges
// slots in range order, making the merged result independent of the
// worker count. Returns the number of ranges.
func forEachRange(n, workers int, fn func(r, lo, hi int)) int {
	ranges := (n + statRangePoints - 1) / statRangePoints
	if workers > ranges {
		workers = ranges
	}
	if workers <= 1 || ranges <= 1 {
		for r := 0; r < ranges; r++ {
			lo := r * statRangePoints
			hi := lo + statRangePoints
			if hi > n {
				hi = n
			}
			fn(r, lo, hi)
		}
		return ranges
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := w; r < ranges; r += workers {
				lo := r * statRangePoints
				hi := lo + statRangePoints
				if hi > n {
					hi = n
				}
				fn(r, lo, hi)
			}
		}(w)
	}
	wg.Wait()
	return ranges
}

// parMinMax returns the minimum and maximum of xs, scanning fixed
// ranges in parallel. Identical to a serial scan (min/max merge is
// exact) for any worker count. xs must be non-empty.
func parMinMax(xs []float64, workers int) (lo, hi float64) {
	if len(xs) < 2*statRangePoints || workers == 1 {
		return minMax(xs)
	}
	type mm struct{ lo, hi float64 }
	slots := make([]mm, (len(xs)+statRangePoints-1)/statRangePoints)
	forEachRange(len(xs), workers, func(r, a, b int) {
		l, h := minMax(xs[a:b])
		slots[r] = mm{l, h}
	})
	lo, hi = slots[0].lo, slots[0].hi
	for _, s := range slots[1:] {
		if s.lo < lo {
			lo = s.lo
		}
		if s.hi > hi {
			hi = s.hi
		}
	}
	return lo, hi
}

// signStats are one sign's magnitude statistics for the log-scale fit:
// population and the min/max of |d| over that sign's points.
type signStats struct {
	n        int
	min, max float64 // over |d|; ±Inf sentinels when n == 0
}

// merge folds o into s (exact: integer count, min/max).
func (s *signStats) merge(o signStats) {
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// scanSignStats gathers both signs' magnitude statistics over xs[a:b].
// Zero-magnitude ratios are skipped, matching fitLogScale's contract
// (they fall to the nearest-rep fallback in Lookup).
func scanSignStats(xs []float64) (neg, pos signStats) {
	neg = signStats{min: math.Inf(1), max: math.Inf(-1)}
	pos = signStats{min: math.Inf(1), max: math.Inf(-1)}
	for _, d := range xs {
		a := math.Abs(d)
		if fputil.IsZero(a) {
			continue
		}
		s := &pos
		if d < 0 {
			s = &neg
		}
		s.n++
		if a < s.min {
			s.min = a
		}
		if a > s.max {
			s.max = a
		}
	}
	return neg, pos
}

// parSignStats runs scanSignStats over fixed ranges in parallel and
// merges in range order. Exact, so identical for any worker count.
func parSignStats(xs []float64, workers int) (neg, pos signStats) {
	if len(xs) < 2*statRangePoints || workers == 1 {
		return scanSignStats(xs)
	}
	type pair struct{ neg, pos signStats }
	slots := make([]pair, (len(xs)+statRangePoints-1)/statRangePoints)
	forEachRange(len(xs), workers, func(r, a, b int) {
		n, p := scanSignStats(xs[a:b])
		slots[r] = pair{n, p}
	})
	neg, pos = slots[0].neg, slots[0].pos
	for _, s := range slots[1:] {
		neg.merge(s.neg)
		pos.merge(s.pos)
	}
	return neg, pos
}

// sketchBins returns the clustering sketch resolution for k clusters:
// 32 cells per cluster, clamped to [4096, 65536]. The floor keeps
// small-k tables sharp; the ceiling bounds the weighted problem handed
// to RunWeighted.
func sketchBins(k int) int {
	bins := 32 * k
	if bins < 4096 {
		bins = 4096
	}
	if bins > 1<<16 {
		bins = 1 << 16
	}
	return bins
}

// fitClusteringSketch is the parallel table-learning path of the
// clustering strategy: per-range histogram sketches (value sum + count
// per cell) are built concurrently, merged in range order into one
// global sketch, and the occupied cells become weighted micro-centroids
// for a sequential weighted k-means — the "weighted centroid merge" of
// the paper authors' parallel follow-up. Seeds reproduce the serial
// path's histogram seeding exactly: the coarse seed histogram is
// gathered in the same pass and fed to kmeans.SeedFromCounts. The
// result is deterministic for a given input sequence regardless of the
// worker count.
func fitClusteringSketch(data []float64, k int, opt Options) (*clusterBinner, error) {
	lo, hi := parMinMax(data, opt.Workers)
	if fputil.Eq(lo, hi) {
		// Single distinct value: every centroid is that value. The
		// exact path reaches the same fixpoint in one O(n) iteration;
		// short-circuit it.
		cents := make([]float64, 1)
		cents[0] = lo
		return &clusterBinner{cents: cents, ix: kmeans.NewIndex(cents)}, nil
	}

	bins := sketchBins(k)
	coarse := kmeans.SeedHistogramBins(k)
	seedW := (hi - lo) / float64(coarse)
	ranges := (len(data) + statRangePoints - 1) / statRangePoints
	sketches := make([]*kmeans.Sketch, ranges)
	seedCounts := make([][]int, ranges)
	forEachRange(len(data), opt.Workers, func(r, a, b int) {
		sk := kmeans.NewSketch(lo, hi, bins)
		sk.Add(data[a:b])
		counts := make([]int, coarse)
		for _, x := range data[a:b] {
			// Same cell formula as kmeans.SeedFromHistogram, so the
			// merged counts reproduce its histogram bit-for-bit.
			i := int((x - lo) / seedW)
			if i >= coarse {
				i = coarse - 1
			}
			counts[i]++
		}
		sketches[r] = sk
		seedCounts[r] = counts
	})
	sk := sketches[0]
	counts := seedCounts[0]
	for r := 1; r < ranges; r++ {
		if err := sk.Merge(sketches[r]); err != nil {
			return nil, err
		}
		for i, c := range seedCounts[r] {
			counts[i] += c
		}
	}

	points, weights := sk.Points()
	cfg := kmeans.Config{K: k, MaxIter: opt.KMeansMaxIter}
	if len(points) < k {
		// Fewer occupied cells than clusters: let RunWeighted clamp K
		// and seed from the micro-centroids themselves.
		cfg.K = len(points)
	} else if opt.UniformSeeding {
		cfg.Seeds = uniformSeeds(lo, hi, k)
	} else {
		cfg.Seeds = kmeans.SeedFromCounts(lo, hi, counts, k)
	}
	res, err := kmeans.RunWeighted(points, weights, cfg)
	if err != nil {
		return nil, err
	}
	return &clusterBinner{cents: res.Centroids, ix: kmeans.NewIndex(res.Centroids)}, nil
}

// uniformSeeds reproduces kmeans.SeedUniform from a precomputed data
// range instead of rescanning the data.
func uniformSeeds(lo, hi float64, k int) []float64 {
	seeds := make([]float64, k)
	if k == 1 {
		seeds[0] = (lo + hi) / 2
		return seeds
	}
	for i := range seeds {
		seeds[i] = lo + (hi-lo)*float64(i)/float64(k-1)
	}
	return seeds
}
