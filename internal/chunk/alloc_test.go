package chunk

import (
	"bytes"
	"io"
	"testing"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
)

// allocPair builds a transition of exactly nChunks equal chunks.
func allocPair(nChunks, chunkPoints int) (prev, cur []float64) {
	return genPair(nChunks*chunkPoints, 9)
}

// encodeAllocs measures the average allocations of one full streaming
// encode of nChunks chunks. MaxTableInput bounds the reservoir (and
// disables the pass-1 ratio cache, whose per-chunk entries are a
// deliberate uncapped-mode allocation), so everything chunk-count-
// proportional should come from the pooled slot buffers — i.e. nothing.
func encodeAllocs(t *testing.T, nChunks int) float64 {
	t.Helper()
	const cp = 1024
	prev, cur := allocPair(nChunks, cp)
	opt := core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.EqualWidth}
	cfg := Config{ChunkPoints: cp, Workers: 1, MaxTableInput: 64}
	return testing.AllocsPerRun(5, func() {
		if _, err := EncodeDeltaV2(io.Discard, "v", 1, SliceSource(prev), SliceSource(cur), opt, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestEncodeSteadyStateAllocs pins the allocation-free steady state of
// the streaming encoder: a run has a fixed setup cost (slot buffers,
// sink, reservoir, fit), but second-and-later chunks must reuse the
// slot's buffers, so adding 64 more chunks must add no allocations.
func TestEncodeSteadyStateAllocs(t *testing.T) {
	small := encodeAllocs(t, 8)
	large := encodeAllocs(t, 72)
	perChunk := (large - small) / 64
	if perChunk >= 1 {
		t.Errorf("streaming encode allocates %.2f times per chunk in steady state (8 chunks: %.0f allocs, 72 chunks: %.0f); pooled buffers are not being reused", perChunk, small, large)
	}
}

// decodeAllocs measures the average allocations of one full streaming
// decode of the given encoded file.
func decodeAllocs(t *testing.T, raw []byte, prev []float64) float64 {
	t.Helper()
	return testing.AllocsPerRun(5, func() {
		d, err := checkpoint.OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			t.Fatal(err)
		}
		err = DecodeDeltaV2(d, SliceSource(prev), Config{Workers: 1}, func([]float64) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestDecodeSteadyStateAllocs pins the decoder's steady state the same
// way: per-slot decoder scratch (section, indices, bitmap, exact, prev
// window, output) is sized on the first chunk and reused, so 64 extra
// chunks must add no allocations.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	const cp = 1024
	opt := core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.EqualWidth}
	cfg := Config{ChunkPoints: cp, Workers: 1}
	encode := func(nChunks int) (raw []byte, prev []float64) {
		t.Helper()
		prev, cur := allocPair(nChunks, cp)
		var buf bytes.Buffer
		if _, err := EncodeDeltaV2(&buf, "v", 1, SliceSource(prev), SliceSource(cur), opt, cfg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), prev
	}
	rawS, prevS := encode(8)
	rawL, prevL := encode(72)
	small := decodeAllocs(t, rawS, prevS)
	large := decodeAllocs(t, rawL, prevL)
	perChunk := (large - small) / 64
	if perChunk >= 1 {
		t.Errorf("streaming decode allocates %.2f times per chunk in steady state (8 chunks: %.0f allocs, 72 chunks: %.0f); decoder scratch is not being reused", perChunk, small, large)
	}
}
