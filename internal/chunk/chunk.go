// Package chunk is the out-of-core form of the NUMARCK encode/decode
// pipeline: it runs the same stages as core.Encode — ratio computation,
// table learning, per-chunk bin assignment — over fixed-size windows
// read from re-readable sources, under a configurable memory budget,
// and feeds the per-chunk results to a streaming sink (the v1 assembler
// or the chunked v2 writer in internal/checkpoint).
//
// Because both paths share the stage functions (core.ComputeRatios,
// Ratios.TableInput, core.Fit, core.AssignChunk) and gather their
// outputs in point order, a streaming encode is byte-identical to the
// in-memory encode of the same data — unless the caller opts into a
// bounded table-input reservoir (Config.MaxTableInput), which trades
// that identity for hard-bounded memory while the error bound still
// holds through the incompressible mechanism.
package chunk

import (
	"fmt"
	"runtime"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
	"numarck/internal/obs"
)

// Source is a re-readable float64 array. The encoder reads every window
// twice — once to learn the bin table, once to assign bins — so a
// Source must return the same values on both passes. rawio.Reader (a
// file or any io.ReaderAt) and SliceSource satisfy it.
type Source interface {
	// Len returns the number of values.
	Len() int
	// ReadFloats fills dst with the values at [off, off+len(dst)).
	ReadFloats(dst []float64, off int) error
}

// WindowSource is an optional upgrade of Source: a source that can
// expose the window [off, off+n) as a slice view without copying. The
// pipeline asks for a view before falling back to ReadFloats into its
// own buffer, so an in-memory source pays no per-chunk copies. The
// returned slice must stay valid and unchanged for the life of the
// encode or decode run; ok reports whether a view is available for
// this window (false falls back to ReadFloats).
type WindowSource interface {
	Source
	// Window returns a read-only view of [off, off+n), or ok=false if
	// the source cannot expose this window as a slice.
	Window(off, n int) ([]float64, bool)
}

// SliceSource adapts an in-memory slice to Source.
type SliceSource []float64

// Len returns the number of values.
func (s SliceSource) Len() int { return len(s) }

// ReadFloats copies the window [off, off+len(dst)) into dst.
func (s SliceSource) ReadFloats(dst []float64, off int) error {
	if off < 0 || off+len(dst) > len(s) {
		return fmt.Errorf("chunk: window [%d,%d) outside slice of %d values", off, off+len(dst), len(s))
	}
	copy(dst, s[off:])
	return nil
}

// Window returns the window [off, off+n) as a zero-copy view of the
// slice (full-slice-expression capped, so appends cannot clobber the
// source).
func (s SliceSource) Window(off, n int) ([]float64, bool) {
	if off < 0 || n < 0 || off+n > len(s) {
		return nil, false
	}
	return s[off : off+n : off+n], true
}

// Sink receives per-chunk encode results in chunk order. Both
// checkpoint.DeltaV1Assembler and checkpoint.DeltaV2Writer satisfy it.
type Sink interface {
	AppendChunk(indices []uint32, incompressible []bool, exact []float64) error
}

// BytesPerPoint is the budget model's estimate of encoder buffer bytes
// per in-flight point: prev and cur windows (8+8), the ratio and its
// kind (8+1), the index (4), the incompressible flag (1), and the
// worst-case exact value (8).
const BytesPerPoint = 38

// minChunkPoints is the floor the budget resolver will not shrink
// chunks below; tinier chunks drown the useful work in per-chunk
// overhead.
const minChunkPoints = 256

// ErrBudget reports a memory budget too small to hold even one minimal
// chunk's buffers.
var ErrBudget = fmt.Errorf("chunk: memory budget too small")

// Config tunes the streaming pipeline. The zero value means: default
// chunk size (checkpoint.DefaultChunkPoints), GOMAXPROCS workers, no
// memory budget, unbounded table input.
type Config struct {
	// ChunkPoints is the number of points per chunk. Default
	// checkpoint.DefaultChunkPoints.
	ChunkPoints int

	// Workers bounds how many chunks are processed concurrently, which
	// also bounds how many chunks' buffers are live at once. Default
	// GOMAXPROCS.
	Workers int

	// BudgetBytes caps the encoder's buffer memory. When set, Workers
	// and then ChunkPoints are shrunk until
	// Workers*ChunkPoints*BytesPerPoint (+ 8*MaxTableInput if capped)
	// fits; if even one minimal chunk does not fit, Encode fails with
	// ErrBudget. 0 means no cap.
	BudgetBytes int64

	// MaxTableInput caps how many ratios the table-learning stage sees.
	// 0 (the default) keeps every table-input ratio, which preserves
	// byte-identity with the in-memory path but lets that buffer grow
	// with the data. A positive cap (>= 2) bounds it with a
	// deterministic systematic sample: when full, every other kept
	// sample is dropped and the keep-stride doubles. The error bound
	// still holds — points the thinned table cannot represent are
	// stored exactly — but the learned table, and therefore the bytes,
	// may differ from the in-memory encode.
	MaxTableInput int

	// Obs, when non-nil, receives the pipeline's per-chunk stage
	// timings (read, ratio, assign, decode), worker queue-wait times,
	// and chunk/byte counters. It is also handed down to the checkpoint
	// writer or reader of the run, so one recorder sees the whole
	// streaming path. Nil keeps instrumentation a no-op.
	Obs *obs.Recorder
}

// resolve validates cfg, fills defaults, and applies the budget.
func (cfg Config) resolve() (Config, error) {
	if cfg.ChunkPoints < 0 || cfg.Workers < 0 || cfg.BudgetBytes < 0 || cfg.MaxTableInput < 0 {
		return cfg, fmt.Errorf("chunk: negative config value %+v", cfg)
	}
	if cfg.MaxTableInput == 1 {
		return cfg, fmt.Errorf("chunk: MaxTableInput must be 0 (unbounded) or >= 2")
	}
	if cfg.ChunkPoints == 0 {
		cfg.ChunkPoints = checkpoint.DefaultChunkPoints
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BudgetBytes > 0 {
		avail := cfg.BudgetBytes - 8*int64(cfg.MaxTableInput)
		for cfg.Workers > 1 && int64(cfg.Workers)*int64(cfg.ChunkPoints)*BytesPerPoint > avail {
			cfg.Workers--
		}
		for cfg.ChunkPoints > minChunkPoints && int64(cfg.Workers)*int64(cfg.ChunkPoints)*BytesPerPoint > avail {
			cfg.ChunkPoints /= 2
			if cfg.ChunkPoints < minChunkPoints {
				cfg.ChunkPoints = minChunkPoints
			}
		}
		if int64(cfg.Workers)*int64(cfg.ChunkPoints)*BytesPerPoint > avail {
			return cfg, fmt.Errorf("%w: %d bytes cannot hold one %d-point chunk (+%d-entry table cap)",
				ErrBudget, cfg.BudgetBytes, cfg.ChunkPoints, cfg.MaxTableInput)
		}
	}
	return cfg, nil
}

// Resolved is the effective pipeline plan for a Config: the
// configuration after validation, default filling, and budget
// shrinking — what an encode or decode will actually run with — plus
// the budget model's buffer footprint. It is computable before any
// work starts, which is what admission control (the numarckd memory
// governor) and CLI plan reporting need: the real cost of a request,
// known up front.
type Resolved struct {
	// Config is the resolved configuration: ChunkPoints and Workers
	// are concrete (never 0), and both have been shrunk to fit
	// BudgetBytes when one was set.
	Config Config
	// PeakBufferBytes is the budget model's buffer footprint for the
	// resolved shape: Workers*ChunkPoints*BytesPerPoint plus the capped
	// table reservoir. It is <= Config.BudgetBytes when a budget was
	// set.
	PeakBufferBytes int64
}

// ResolveConfig reports the effective pipeline plan for cfg without
// running anything: the same validation, default filling, and budget
// shrinking Encode and Decode perform, exposed so callers can size
// admission decisions or print the real plan before work starts. The
// error is ErrBudget (via errors.Is) when the budget cannot hold even
// one minimal chunk.
func ResolveConfig(cfg Config) (Resolved, error) {
	rc, err := cfg.resolve()
	if err != nil {
		return Resolved{}, err
	}
	return Resolved{Config: rc, PeakBufferBytes: rc.peakBufferBytes()}, nil
}

// peakBufferBytes is the budget model's buffer footprint for the
// resolved config: all in-flight chunk buffer sets plus the capped
// table reservoir. With MaxTableInput == 0 the reservoir is excluded —
// it grows with the data and is not bounded by the budget.
func (cfg Config) peakBufferBytes() int64 {
	return int64(cfg.Workers)*int64(cfg.ChunkPoints)*BytesPerPoint + 8*int64(cfg.MaxTableInput)
}

// Plan is what the encoder knows after the table-learning pass; Encode
// hands it to the sink factory so the sink can write its header.
type Plan struct {
	// N is the total point count.
	N int
	// ChunkPoints and ChunkCount describe the resolved chunking; every
	// chunk has ChunkPoints points except a shorter final one.
	ChunkPoints int
	ChunkCount  int
	// Opt is the validated encode options.
	Opt core.Options
	// BinRatios is the learned table (nil when no point needed one).
	BinRatios []float64
}

// NewSink builds the output sink once the plan is known.
type NewSink func(p Plan) (Sink, error)

// Result summarizes a streaming encode.
type Result struct {
	// N, ChunkPoints, ChunkCount, Workers are the resolved shape of
	// the run.
	N           int
	ChunkPoints int
	ChunkCount  int
	Workers     int
	// BinRatios is the learned table.
	BinRatios []float64
	// ExactCount is the number of incompressible points stored raw.
	ExactCount int
	// TableInputTotal counts the ratios offered to the table stage;
	// TableInputUsed is how many survived the reservoir (equal unless
	// TableThinned).
	TableInputTotal int64
	TableInputUsed  int
	TableThinned    bool
	// PeakBufferBytes is the budget model's buffer footprint (see
	// Config.BudgetBytes); it is <= BudgetBytes when one was set.
	PeakBufferBytes int64
}

// reservoir accumulates table-input ratios in point order. With cap 0
// it keeps everything; with a positive cap it keeps a deterministic
// systematic sample: every stride-th offered value, halving the kept
// set and doubling the stride whenever the cap is hit. The result
// depends only on the offered sequence, not on how it was chunked.
type reservoir struct {
	cap     int
	stride  int
	skip    int
	vals    []float64
	total   int64
	thinned bool
}

func newReservoir(cap int) *reservoir {
	r := &reservoir{cap: cap, stride: 1}
	if cap > 0 {
		r.vals = make([]float64, 0, cap)
	}
	return r
}

func (r *reservoir) add(vs []float64) {
	r.total += int64(len(vs))
	if r.cap <= 0 {
		r.vals = append(r.vals, vs...)
		return
	}
	for _, v := range vs {
		if r.skip == 0 {
			if len(r.vals) == r.cap {
				r.halve()
			}
			r.vals = append(r.vals, v)
		}
		r.skip++
		if r.skip == r.stride {
			r.skip = 0
		}
	}
}

// halve drops every other kept sample in place and doubles the stride.
func (r *reservoir) halve() {
	kept := r.vals[:0]
	for i := 0; i < len(r.vals); i += 2 {
		kept = append(kept, r.vals[i])
	}
	r.vals = kept
	r.stride *= 2
	r.skip = 0
	r.thinned = true
}
