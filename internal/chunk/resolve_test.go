package chunk

import (
	"errors"
	"runtime"
	"testing"

	"numarck/internal/checkpoint"
)

func TestResolveConfigDefaults(t *testing.T) {
	r, err := ResolveConfig(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Config.ChunkPoints != checkpoint.DefaultChunkPoints {
		t.Fatalf("ChunkPoints = %d, want default %d", r.Config.ChunkPoints, checkpoint.DefaultChunkPoints)
	}
	if r.Config.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers = %d, want GOMAXPROCS %d", r.Config.Workers, runtime.GOMAXPROCS(0))
	}
	want := int64(r.Config.Workers) * int64(r.Config.ChunkPoints) * BytesPerPoint
	if r.PeakBufferBytes != want {
		t.Fatalf("PeakBufferBytes = %d, want %d", r.PeakBufferBytes, want)
	}
}

func TestResolveConfigBudgetShrinks(t *testing.T) {
	// A budget that holds exactly two minimal chunks: workers shrink
	// first, then chunk size.
	budget := int64(2 * minChunkPoints * BytesPerPoint)
	r, err := ResolveConfig(Config{ChunkPoints: 4096, Workers: 8, BudgetBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakBufferBytes > budget {
		t.Fatalf("resolved peak %d exceeds budget %d", r.PeakBufferBytes, budget)
	}
	if r.Config.ChunkPoints < minChunkPoints {
		t.Fatalf("ChunkPoints shrunk below floor: %d", r.Config.ChunkPoints)
	}
	// The plan ResolveConfig reports must be exactly what Encode runs
	// with: re-resolving the resolved config is a fixed point.
	r2, err := ResolveConfig(r.Config)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Config != r.Config || r2.PeakBufferBytes != r.PeakBufferBytes {
		t.Fatalf("resolve not a fixed point: %+v vs %+v", r2, r)
	}
}

func TestResolveConfigImpossibleBudget(t *testing.T) {
	_, err := ResolveConfig(Config{BudgetBytes: 64})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget error = %v, want ErrBudget", err)
	}
}

func TestResolveConfigRejectsNegative(t *testing.T) {
	if _, err := ResolveConfig(Config{Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if _, err := ResolveConfig(Config{MaxTableInput: 1}); err == nil {
		t.Fatal("MaxTableInput=1 accepted")
	}
}
