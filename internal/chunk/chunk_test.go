package chunk

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
	"numarck/internal/rawio"
)

// genPair builds a prev/cur transition mixing every ratio class: zero
// bases, unchanged points, ratios under the bound, and large ratios.
func genPair(n int, seed int64) (prev, cur []float64) {
	rng := rand.New(rand.NewSource(seed))
	prev = make([]float64, n)
	cur = make([]float64, n)
	for j := range prev {
		switch rng.Intn(10) {
		case 0: // no base: stored exactly
			prev[j] = 0
			cur[j] = rng.NormFloat64()
		case 1: // unchanged
			prev[j] = 2 + rng.Float64()
			cur[j] = prev[j]
		case 2: // tiny ratio, inside the bound
			base := 1 + rng.Float64()
			prev[j] = base
			cur[j] = base * (1 + 1e-5*rng.NormFloat64())
		default: // large ratio
			base := 1 + rng.Float64()
			prev[j] = base
			cur[j] = base * (1 + 0.05*rng.NormFloat64())
		}
	}
	return prev, cur
}

// TestStreamingMatchesInMemory is the byte-identity property test: for
// every binning strategy, index widths whose packed values straddle
// byte and chunk boundaries, and chunk sizes that do not divide n, the
// streaming encoder's v1 bytes equal MarshalDelta of the in-memory
// encode, and its v2 bytes equal MarshalDeltaV2 of the same encode.
func TestStreamingMatchesInMemory(t *testing.T) {
	const n = 5000
	prev, cur := genPair(n, 42)
	for _, strategy := range []core.Strategy{core.EqualWidth, core.LogScale, core.Clustering, core.EqualFrequency} {
		for _, bits := range []int{3, 5, 8} {
			opt := core.Options{ErrorBound: 0.001, IndexBits: bits, Strategy: strategy}
			enc, err := core.Encode(prev, cur, opt)
			if err != nil {
				t.Fatal(err)
			}
			wantV1, err := checkpoint.MarshalDelta("v", 7, enc)
			if err != nil {
				t.Fatal(err)
			}
			for _, chunkPoints := range []int{97, 1000, n} {
				name := fmt.Sprintf("%s/B%d/cp%d", strategy, bits, chunkPoints)
				cfg := Config{ChunkPoints: chunkPoints, Workers: 3}

				gotV1, res, err := EncodeDeltaV1("v", 7, SliceSource(prev), SliceSource(cur), opt, cfg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !bytes.Equal(gotV1, wantV1) {
					t.Errorf("%s: streaming v1 bytes differ from in-memory MarshalDelta", name)
				}
				if res.ExactCount != len(enc.Exact) {
					t.Errorf("%s: exact count %d, want %d", name, res.ExactCount, len(enc.Exact))
				}
				if res.TableThinned {
					t.Errorf("%s: unbounded run reported thinning", name)
				}

				wantV2, err := checkpoint.MarshalDeltaV2("v", 7, enc, chunkPoints)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := EncodeDeltaV2(&buf, "v", 7, SliceSource(prev), SliceSource(cur), opt, cfg); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !bytes.Equal(buf.Bytes(), wantV2) {
					t.Errorf("%s: streaming v2 bytes differ from in-memory MarshalDeltaV2", name)
				}
			}
		}
	}
}

// TestStreamingUnderBudget encodes file-backed input much larger than
// the memory budget and checks both the budget accounting and
// byte-identity with the in-memory path.
func TestStreamingUnderBudget(t *testing.T) {
	const n = 120_000 // 960 KiB per input file
	prev, cur := genPair(n, 7)
	dir := t.TempDir()
	pPath := filepath.Join(dir, "prev.raw")
	cPath := filepath.Join(dir, "cur.raw")
	if err := rawio.WriteFile(pPath, prev); err != nil {
		t.Fatal(err)
	}
	if err := rawio.WriteFile(cPath, cur); err != nil {
		t.Fatal(err)
	}
	pSrc, err := rawio.OpenFile(pPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pSrc.Close()
	cSrc, err := rawio.OpenFile(cPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cSrc.Close()

	opt := core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.EqualWidth}
	cfg := Config{Workers: 4, BudgetBytes: 512 << 10} // far below the 1.9 MiB of input
	got, res, err := EncodeDeltaV1("v", 1, pSrc, cSrc, opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBufferBytes > cfg.BudgetBytes {
		t.Fatalf("peak buffer %d exceeds budget %d", res.PeakBufferBytes, cfg.BudgetBytes)
	}
	if res.ChunkCount < 2 {
		t.Fatalf("budget did not force chunking: %d chunks of %d points", res.ChunkCount, res.ChunkPoints)
	}

	enc, err := core.Encode(prev, cur, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := checkpoint.MarshalDelta("v", 1, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("budgeted streaming encode differs from in-memory encode")
	}
}

// TestStreamingDecode round-trips a v2 file through the streaming
// decoder, file to file, and compares with the in-memory decode.
func TestStreamingDecode(t *testing.T) {
	const n = 3210
	prev, cur := genPair(n, 99)
	opt := core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering}
	cfg := Config{ChunkPoints: 500, Workers: 3}

	dir := t.TempDir()
	deltaPath := filepath.Join(dir, "delta.nmk")
	df, err := os.Create(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeDeltaV2(df, "v", 1, SliceSource(prev), SliceSource(cur), opt, cfg); err != nil {
		t.Fatal(err)
	}
	if err := df.Close(); err != nil {
		t.Fatal(err)
	}

	enc, err := core.Encode(prev, cur, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := enc.Decode(prev)
	if err != nil {
		t.Fatal(err)
	}

	// prev from a file, output streamed to a file.
	pPath := filepath.Join(dir, "prev.raw")
	if err := rawio.WriteFile(pPath, prev); err != nil {
		t.Fatal(err)
	}
	pSrc, err := rawio.OpenFile(pPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pSrc.Close()
	raw, err := os.ReadFile(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	d, err := checkpoint.OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.raw")
	of, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	ow := rawio.NewWriter(of)
	err = DecodeDeltaV2(d, pSrc, cfg, func(vals []float64) error {
		return ow.WriteFloats(vals)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := of.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := rawio.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("point %d differs", i)
		}
	}
}

// TestReservoirBound checks that a capped table input stays bounded and
// chunking-independent, and that the encode still honors the error
// bound even though the thinned table differs from the full one.
func TestReservoirBound(t *testing.T) {
	const n = 8000
	prev, cur := genPair(n, 3)
	opt := core.Options{ErrorBound: 0.001, IndexBits: 6, Strategy: core.EqualWidth}
	cfg := Config{ChunkPoints: 333, Workers: 2, MaxTableInput: 64}
	raw, res, err := EncodeDeltaV1("v", 1, SliceSource(prev), SliceSource(cur), opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TableThinned {
		t.Fatal("expected thinning with cap 64")
	}
	if res.TableInputUsed > 64 {
		t.Fatalf("reservoir kept %d > cap 64", res.TableInputUsed)
	}
	if res.TableInputTotal <= 64 {
		t.Fatalf("implausible table input total %d", res.TableInputTotal)
	}

	// Same cap, different chunking: the systematic sample depends only
	// on the point order, so the output bytes must match.
	raw2, _, err := EncodeDeltaV1("v", 1, SliceSource(prev), SliceSource(cur), opt, Config{ChunkPoints: 1024, Workers: 3, MaxTableInput: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("capped encode depends on chunking")
	}

	// The error bound survives thinning: every reconstructed point is
	// within |prev|*E of the true value (incompressible storage covers
	// what the coarse table cannot).
	_, _, enc, err := checkpoint.UnmarshalDelta(raw)
	if err != nil {
		t.Fatal(err)
	}
	out, err := enc.Decode(prev)
	if err != nil {
		t.Fatal(err)
	}
	for j := range out {
		limit := math.Abs(prev[j])*opt.ErrorBound + 1e-12
		if diff := math.Abs(out[j] - cur[j]); diff > limit {
			t.Fatalf("point %d: |out-cur| = %g exceeds |prev|*E = %g", j, diff, limit)
		}
	}
}

func TestConfigResolve(t *testing.T) {
	// Budget shrinks workers first, then chunk size.
	cfg, err := Config{ChunkPoints: 1 << 16, Workers: 8, BudgetBytes: 1 << 20}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 1 {
		t.Errorf("workers = %d, want 1", cfg.Workers)
	}
	if cfg.ChunkPoints >= 1<<16 {
		t.Errorf("chunk points not shrunk: %d", cfg.ChunkPoints)
	}
	if cfg.peakBufferBytes() > 1<<20 {
		t.Errorf("peak %d exceeds budget", cfg.peakBufferBytes())
	}

	// A budget below one minimal chunk fails loudly.
	if _, err := (Config{BudgetBytes: 1024}).resolve(); !errors.Is(err, ErrBudget) {
		t.Errorf("tiny budget: err = %v, want ErrBudget", err)
	}
	// MaxTableInput == 1 is rejected.
	if _, err := (Config{MaxTableInput: 1}).resolve(); err == nil {
		t.Error("MaxTableInput=1 accepted")
	}
	// Negative values are rejected.
	if _, err := (Config{Workers: -1}).resolve(); err == nil {
		t.Error("negative workers accepted")
	}
}

func TestOrderedChunks(t *testing.T) {
	// Emission order is chunk order regardless of completion order.
	var got []int
	err := orderedChunks(50, 4, "test", nil,
		func(i, _ int) (int, error) { return i * i, nil },
		func(i, v int) error {
			if v != i*i {
				t.Errorf("chunk %d delivered %d", i, v)
			}
			got = append(got, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("emitted %d chunks", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("emission out of order at %d: %v", i, got)
		}
	}

	// A process error cancels the run and names the chunk.
	boom := errors.New("boom")
	err = orderedChunks(100, 4, "test", nil,
		func(i, _ int) (int, error) {
			if i == 13 {
				return 0, boom
			}
			return i, nil
		},
		func(int, int) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}

	// An emit error cancels the run.
	err = orderedChunks(100, 4, "test", nil,
		func(i, _ int) (int, error) { return i, nil },
		func(i, _ int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("emit err = %v, want boom", err)
	}
}

func TestReservoirDeterminism(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	whole := newReservoir(32)
	whole.add(vals)
	chunked := newReservoir(32)
	for lo := 0; lo < len(vals); lo += 77 {
		hi := lo + 77
		if hi > len(vals) {
			hi = len(vals)
		}
		chunked.add(vals[lo:hi])
	}
	if len(whole.vals) != len(chunked.vals) {
		t.Fatalf("kept %d vs %d", len(whole.vals), len(chunked.vals))
	}
	for i := range whole.vals {
		if math.Float64bits(whole.vals[i]) != math.Float64bits(chunked.vals[i]) {
			t.Fatalf("sample %d differs: %v vs %v", i, whole.vals[i], chunked.vals[i])
		}
	}
	if len(whole.vals) > 32 {
		t.Fatalf("cap exceeded: %d", len(whole.vals))
	}
}

func TestEncodeErrors(t *testing.T) {
	opt := core.Options{ErrorBound: 0.001, IndexBits: 8}
	sink := func(Plan) (Sink, error) { return nil, errors.New("unused") }
	// Length mismatch.
	_, err := Encode(SliceSource(make([]float64, 3)), SliceSource(make([]float64, 4)), opt, Config{}, sink)
	if !errors.Is(err, core.ErrLength) {
		t.Errorf("err = %v, want ErrLength", err)
	}
	// Non-finite data surfaces from a worker.
	prev := []float64{1, 2, 3}
	cur := []float64{1, math.NaN(), 3}
	_, err = Encode(SliceSource(prev), SliceSource(cur), opt, Config{ChunkPoints: 1}, sink)
	if !errors.Is(err, core.ErrNonFinite) {
		t.Errorf("err = %v, want ErrNonFinite", err)
	}
	// Empty input produces a valid empty v1 file.
	raw, res, err := EncodeDeltaV1("v", 0, SliceSource(nil), SliceSource(nil), opt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunkCount != 0 || res.ExactCount != 0 {
		t.Fatalf("empty encode: %+v", res)
	}
	if _, _, enc, err := checkpoint.UnmarshalDelta(raw); err != nil || enc.N != 0 {
		t.Fatalf("empty v1 file does not parse: %v", err)
	}
}
