package chunk

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
	"numarck/internal/obs"
)

// orderedChunks runs process(i, slot) for i in [0, count) across up to
// `workers` goroutines and delivers the results to emit in chunk order.
// Slots form a ring of size `workers`: chunk i owns slot i%workers, and
// a worker may not start chunk i until chunk i-workers has been
// emitted. That bounds the in-flight chunks at `workers` — buffer
// memory stays proportional to the worker count no matter how far a
// fast chunk runs ahead of a slow predecessor — and it means the slot
// index is safe to key a reusable buffer set: the slot's previous
// occupant has been fully consumed by emit before process sees the
// slot again. The first process or emit error cancels the run.
//
// Workers claim chunk indices from an atomic counter (no job channel to
// feed or contend on) and park each finished chunk in its slot's ready
// channel; the emitter walks the ring in chunk order, so out-of-order
// completion never blocks anyone except a worker whose slot is still
// occupied.
//
// label names the pipeline pass in profiles: each worker goroutine runs
// under the pprof label numarck_pipeline=<label>, so CPU profiles of a
// streaming run attribute samples to encode-pass1/encode-pass2/decode.
// rec (nil-safe) receives the time workers spend blocked waiting for
// their slot as StageQueueWait — the backpressure signal of an emitter
// slower than its producers.
func orderedChunks[T any](count, workers int, label string, rec *obs.Recorder, process func(i, slot int) (T, error), emit func(i int, v T) error) error {
	if count == 0 {
		return nil
	}
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			v, err := process(i, 0)
			if err != nil {
				return fmt.Errorf("chunk %d: %w", i, err)
			}
			if err := emit(i, v); err != nil {
				return err
			}
		}
		return nil
	}

	type result struct {
		v   T
		err error
	}
	// free[s] holds the slot-s token: present iff no unemitted chunk
	// owns the slot. ready[s] parks slot s's finished chunk until its
	// turn; capacity 1 suffices because the sender holds the token.
	free := make([]chan struct{}, workers)
	ready := make([]chan result, workers)
	for s := 0; s < workers; s++ {
		free[s] = make(chan struct{}, 1)
		free[s] <- struct{}{}
		ready[s] = make(chan result, 1)
	}
	done := make(chan struct{})
	var next atomic.Int64
	var wg sync.WaitGroup
	labels := pprof.Labels("numarck_pipeline", label)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pprof.Do(context.Background(), labels, func(context.Context) {
				for {
					i := int(next.Add(1)) - 1
					if i >= count {
						return
					}
					slot := i % workers
					t := rec.Start()
					select {
					case <-free[slot]:
						t.Stop(obs.StageQueueWait)
					case <-done:
						return
					}
					v, err := process(i, slot)
					// Never blocks: holding the token means the slot's
					// ready channel is empty.
					ready[slot] <- result{v: v, err: err}
				}
			})
		}()
	}

	// Emitter: walk the ring in chunk order. Chunk indices are claimed
	// in increasing order and chunk i's slot is free once chunk
	// i-workers is emitted, so the next chunk is always either parked
	// or being processed — emission always progresses.
	var firstErr error
	for i := 0; i < count; i++ {
		r := <-ready[i%workers]
		if r.err != nil {
			firstErr = fmt.Errorf("chunk %d: %w", i, r.err)
			break
		}
		if err := emit(i, r.v); err != nil {
			firstErr = err
			break
		}
		free[i%workers] <- struct{}{}
	}
	close(done)
	wg.Wait()
	return firstErr
}

// chunkSpan returns the point range [lo, lo+np) of chunk i.
func chunkSpan(n, chunkPoints, i int) (lo, np int) {
	lo = i * chunkPoints
	np = chunkPoints
	if rem := n - lo; rem < np {
		np = rem
	}
	return lo, np
}

// growF returns a length-n float64 slice, reusing buf's backing array
// when it is large enough.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growU32 is growF for index slices.
func growU32(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	return buf[:n]
}

// growB is growF for flag slices.
func growB(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// readWindow returns the [lo, lo+np) window of src: a zero-copy view
// when src is a WindowSource that can expose one, otherwise the window
// is read into buf (grown as needed). The possibly-grown scratch buffer
// is returned either way so callers can keep it for reuse; win aliases
// it only on the copying path.
func readWindow(src Source, lo, np int, buf []float64) (win, scratch []float64, err error) {
	if ws, ok := src.(WindowSource); ok {
		if v, ok := ws.Window(lo, np); ok {
			return v, buf, nil
		}
	}
	buf = growF(buf, np)
	if err := src.ReadFloats(buf, lo); err != nil {
		return nil, buf, err
	}
	return buf, buf, nil
}

// encodeSlot is one ring slot's reusable buffer set. orderedChunks
// guarantees a slot's previous chunk has been emitted — and both sinks
// copy what they keep — before the slot is reused, so every field can
// be overwritten freely. In steady state (all chunks the same size) no
// field reallocates after the first lap of the ring.
type encodeSlot struct {
	pbuf, cbuf     []float64 // read scratch; unused when the source is windowed
	ratios         core.Ratios
	ti             []float64
	indices        []uint32
	incompressible []bool
	exact          []float64
}

// chunkOut is one chunk's encode result, in the shape Sink consumes.
// Its slices alias the chunk's encodeSlot and are valid until the slot
// is refreed (i.e. through the emit call).
type chunkOut struct {
	indices        []uint32
	incompressible []bool
	exact          []float64
}

// Encode runs the streaming two-pass encode of the transition
// prev → cur: pass 1 reads every chunk once to gather the table-input
// ratios, the bin table is fitted, newSink builds the output sink from
// the resulting Plan, and pass 2 re-reads every chunk, assigns bins,
// and appends the per-chunk results to the sink in chunk order. Both
// sources must be re-readable and of equal length. The sink's own
// finalization (Finish, Bytes) is the caller's job — the factory
// closure keeps a reference.
//
// When the run is entirely uncapped (BudgetBytes == 0 and
// MaxTableInput == 0) pass 1 retains each chunk's ratios for pass 2,
// which then re-reads only cur (for the exact values) and skips the
// ratio recomputation. The cache holds 9 bytes per point — acceptable
// only because the caller asked for no memory bound; any cap disables
// it and the two passes stay fully streaming.
func Encode(prev, cur Source, opt core.Options, cfg Config, newSink NewSink) (*Result, error) {
	vopt, err := opt.Validate()
	if err != nil {
		return nil, err
	}
	if prev.Len() != cur.Len() {
		return nil, fmt.Errorf("%w: %d vs %d", core.ErrLength, prev.Len(), cur.Len())
	}
	n := cur.Len()
	cfg, err = cfg.resolve()
	if err != nil {
		return nil, err
	}
	// One recorder serves both layers: setting either Config.Obs or
	// Options.Obs instruments the pipeline and the sinks alike.
	rec := cfg.Obs
	if rec == nil {
		rec = vopt.Obs
	} else if vopt.Obs == nil {
		vopt.Obs = rec
	}
	rec.SetMax(obs.GaugeWorkers, int64(cfg.Workers))
	rec.SetMax(obs.GaugeChunkPoints, int64(cfg.ChunkPoints))
	rec.SetMax(obs.GaugePeakBufferBytes, cfg.peakBufferBytes())
	chunkCount := 0
	if n > 0 {
		chunkCount = (n + cfg.ChunkPoints - 1) / cfg.ChunkPoints
	}

	var cache []core.Ratios
	if cfg.BudgetBytes == 0 && cfg.MaxTableInput == 0 {
		cache = make([]core.Ratios, chunkCount)
	}
	slots := make([]encodeSlot, cfg.Workers)

	// Pass 1: ratios only, gathering the table input in point order.
	// Each chunk's table-input slice is a contiguous piece of the exact
	// sequence the in-memory encoder hands to core.Fit.
	res := newReservoir(cfg.MaxTableInput)
	err = orderedChunks(chunkCount, cfg.Workers, "encode-pass1", rec,
		func(i, slot int) ([]float64, error) {
			lo, np := chunkSpan(n, cfg.ChunkPoints, i)
			s := &slots[slot]
			t := rec.Start()
			pbuf, pscratch, err := readWindow(prev, lo, np, s.pbuf)
			s.pbuf = pscratch
			var cbuf []float64
			if err == nil {
				cbuf, s.cbuf, err = readWindow(cur, lo, np, s.cbuf)
			}
			t.Stop(obs.StageRead)
			if err != nil {
				return nil, err
			}
			rec.Add(obs.CounterBytesRead, 16*int64(np))
			r := &s.ratios
			if cache != nil {
				r = &cache[i]
			}
			t = rec.Start()
			rerr := core.ComputeRatiosInto(pbuf, cbuf, 1, r)
			t.Stop(obs.StageRatio)
			if rerr != nil {
				return nil, rerr
			}
			s.ti = r.TableInputInto(vopt, s.ti)
			return s.ti, nil
		},
		func(_ int, ti []float64) error {
			res.add(ti)
			return nil
		})
	if err != nil {
		return nil, err
	}

	t := rec.Start()
	var bins core.Binner
	var binRatios []float64
	if len(res.vals) > 0 {
		bins, err = core.Fit(res.vals, vopt)
		if err != nil {
			t.Stop(obs.StageTable)
			return nil, err
		}
		binRatios = bins.Representatives()
		if len(binRatios) > vopt.NumBins() {
			t.Stop(obs.StageTable)
			return nil, fmt.Errorf("chunk: internal error: %d representatives exceed %d bins", len(binRatios), vopt.NumBins())
		}
	}
	t.Stop(obs.StageTable)
	rec.Add(obs.CounterTableInput, res.total)
	rec.SetMax(obs.GaugeBinCount, int64(len(binRatios)))

	sink, err := newSink(Plan{
		N:           n,
		ChunkPoints: cfg.ChunkPoints,
		ChunkCount:  chunkCount,
		Opt:         vopt,
		BinRatios:   binRatios,
	})
	if err != nil {
		return nil, err
	}

	// Pass 2: assign bins and stream sections out in order, re-reading
	// only what pass 1 did not cache.
	exactCount := 0
	err = orderedChunks(chunkCount, cfg.Workers, "encode-pass2", rec,
		func(i, slot int) (chunkOut, error) {
			lo, np := chunkSpan(n, cfg.ChunkPoints, i)
			s := &slots[slot]
			var ratios *core.Ratios
			var cbuf []float64
			var err error
			if cache != nil {
				ratios = &cache[i]
				t := rec.Start()
				cbuf, s.cbuf, err = readWindow(cur, lo, np, s.cbuf)
				t.Stop(obs.StageRead)
				if err != nil {
					return chunkOut{}, err
				}
				rec.Add(obs.CounterBytesRead, 8*int64(np))
			} else {
				t := rec.Start()
				var pbuf []float64
				pbuf, s.pbuf, err = readWindow(prev, lo, np, s.pbuf)
				if err == nil {
					cbuf, s.cbuf, err = readWindow(cur, lo, np, s.cbuf)
				}
				t.Stop(obs.StageRead)
				if err != nil {
					return chunkOut{}, err
				}
				rec.Add(obs.CounterBytesRead, 16*int64(np))
				t = rec.Start()
				rerr := core.ComputeRatiosInto(pbuf, cbuf, 1, &s.ratios)
				t.Stop(obs.StageRatio)
				if rerr != nil {
					return chunkOut{}, rerr
				}
				ratios = &s.ratios
			}
			s.indices = growU32(s.indices, np)
			s.incompressible = growB(s.incompressible, np)
			t := rec.Start()
			core.AssignChunk(ratios, bins, vopt, s.indices, s.incompressible)
			exact := s.exact[:0]
			for j, inc := range s.incompressible {
				if inc {
					exact = append(exact, cbuf[j])
				}
			}
			s.exact = exact
			t.Stop(obs.StageAssign)
			if cache != nil {
				// Release the chunk's cached ratios as the pass moves
				// past it instead of holding the whole array to the end.
				cache[i] = core.Ratios{}
			}
			return chunkOut{indices: s.indices, incompressible: s.incompressible, exact: exact}, nil
		},
		func(_ int, out chunkOut) error {
			exactCount += len(out.exact)
			return sink.AppendChunk(out.indices, out.incompressible, out.exact)
		})
	if err != nil {
		return nil, err
	}
	rec.Add(obs.CounterEncodes, 1)
	rec.Add(obs.CounterPointsEncoded, int64(n))
	rec.Add(obs.CounterExactValues, int64(exactCount))

	return &Result{
		N:               n,
		ChunkPoints:     cfg.ChunkPoints,
		ChunkCount:      chunkCount,
		Workers:         cfg.Workers,
		BinRatios:       binRatios,
		ExactCount:      exactCount,
		TableInputTotal: res.total,
		TableInputUsed:  len(res.vals),
		TableThinned:    res.thinned,
		PeakBufferBytes: cfg.peakBufferBytes(),
	}, nil
}

// EncodeDeltaV1 streams an encode into the backward-compatible v1 delta
// format and returns its bytes. Only the compressed payload is
// buffered; with the default Config the bytes are identical to
// checkpoint.MarshalDelta of core.Encode on the same data.
func EncodeDeltaV1(variable string, iteration int, prev, cur Source, opt core.Options, cfg Config) ([]byte, *Result, error) {
	var asm *checkpoint.DeltaV1Assembler
	res, err := Encode(prev, cur, opt, cfg, func(p Plan) (Sink, error) {
		a, err := checkpoint.NewDeltaV1Assembler(variable, iteration, p.N, p.Opt, p.BinRatios)
		asm = a
		return a, err
	})
	if err != nil {
		return nil, nil, err
	}
	raw, err := asm.Bytes()
	if err != nil {
		return nil, nil, err
	}
	return raw, res, nil
}

// EncodeDeltaV2 streams an encode into the chunked v2 delta format on
// w, one section per chunk, and finalizes the file. Memory use is
// bounded by the Config budget; nothing proportional to the data size
// is held.
func EncodeDeltaV2(w io.Writer, variable string, iteration int, prev, cur Source, opt core.Options, cfg Config) (*Result, error) {
	var dw *checkpoint.DeltaV2Writer
	res, err := Encode(prev, cur, opt, cfg, func(p Plan) (Sink, error) {
		d, err := checkpoint.NewDeltaV2Writer(w, variable, iteration, p.N, p.Opt, p.BinRatios, p.ChunkPoints)
		dw = d
		return d, err
	})
	if err != nil {
		return nil, err
	}
	if err := dw.Finish(); err != nil {
		return nil, err
	}
	return res, nil
}

// decodeSlot is one ring slot's reusable decode state: a chunk decoder
// (section, index, bitmap, and exact-value scratch) plus the prev
// window and output buffers. Keyed by slot, so reuse is safe under the
// orderedChunks ring invariant.
type decodeSlot struct {
	dec  *checkpoint.ChunkDecoder
	pbuf []float64
	dst  []float64
}

// DecodeDeltaV2 streams the reconstruction of an opened v2 delta:
// chunks are decoded concurrently off the chunk directory (each worker
// reads, unpacks, and reconstructs its chunk fully independently), and
// emit receives the reconstructed values in chunk order. The emit
// callback must copy anything it wants to keep — the slice is a
// per-slot buffer reused for a later chunk. cfg.Workers bounds the
// concurrency; ChunkPoints is fixed by the file.
func DecodeDeltaV2(d *checkpoint.DeltaV2Reader, prev Source, cfg Config, emit func(vals []float64) error) error {
	meta := d.Meta()
	if prev.Len() != meta.N {
		return fmt.Errorf("%w: prev has %d points, checkpoint has %d", core.ErrLength, prev.Len(), meta.N)
	}
	cfg, err := cfg.resolve()
	if err != nil {
		return err
	}
	rec := cfg.Obs
	if rec != nil {
		d.SetRecorder(rec)
		rec.SetMax(obs.GaugeWorkers, int64(cfg.Workers))
	}
	slots := make([]decodeSlot, cfg.Workers)
	for s := range slots {
		slots[s].dec = d.NewChunkDecoder()
	}
	err = orderedChunks(meta.ChunkCount, cfg.Workers, "decode", rec,
		func(i, slot int) ([]float64, error) {
			lo, np := d.ChunkSpan(i)
			s := &slots[slot]
			t := rec.Start()
			pbuf, pscratch, rerr := readWindow(prev, lo, np, s.pbuf)
			s.pbuf = pscratch
			t.Stop(obs.StageRead)
			if rerr != nil {
				return nil, rerr
			}
			rec.Add(obs.CounterBytesRead, 8*int64(np))
			s.dst = growF(s.dst, np)
			if err := s.dec.DecodeChunkInto(i, pbuf, s.dst); err != nil {
				return nil, err
			}
			return s.dst, nil
		},
		func(_ int, vals []float64) error {
			return emit(vals)
		})
	if err != nil {
		return err
	}
	rec.Add(obs.CounterDecodes, 1)
	rec.Add(obs.CounterPointsDecoded, int64(meta.N))
	return nil
}
