package chunk

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"sync"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
	"numarck/internal/obs"
)

// orderedChunks runs process(i) for i in [0, count) across up to
// `workers` goroutines and delivers the results to emit in chunk order.
// A semaphore bounds the number of chunks that are "in flight"
// (processed or processing but not yet emitted) at `workers`, so buffer
// memory stays proportional to the worker count no matter how far a
// fast chunk runs ahead of a slow predecessor. The first process or
// emit error cancels the run.
//
// label names the pipeline pass in profiles: each worker goroutine runs
// under the pprof label numarck_pipeline=<label>, so CPU profiles of a
// streaming run attribute samples to encode-pass1/encode-pass2/decode.
// rec (nil-safe) receives the time workers spend blocked waiting for an
// in-flight slot as StageQueueWait — the backpressure signal of an
// emitter slower than its producers.
func orderedChunks[T any](count, workers int, label string, rec *obs.Recorder, process func(i int) (T, error), emit func(i int, v T) error) error {
	if count == 0 {
		return nil
	}
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			v, err := process(i)
			if err != nil {
				return fmt.Errorf("chunk %d: %w", i, err)
			}
			if err := emit(i, v); err != nil {
				return err
			}
		}
		return nil
	}

	type result struct {
		i   int
		v   T
		err error
	}
	jobs := make(chan int)
	results := make(chan result, workers)
	sem := make(chan struct{}, workers)
	done := make(chan struct{})
	var wg sync.WaitGroup
	labels := pprof.Labels("numarck_pipeline", label)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pprof.Do(context.Background(), labels, func(context.Context) {
				for {
					// Acquire an in-flight slot BEFORE claiming a job:
					// holding a job must imply holding a slot, or the
					// worker owning the lowest unemitted chunk could
					// starve while later chunks' parked results hold
					// every slot.
					t := rec.Start()
					select {
					case sem <- struct{}{}:
						t.Stop(obs.StageQueueWait)
					case <-done:
						return
					}
					var i int
					var ok bool
					select {
					case i, ok = <-jobs:
						if !ok {
							return
						}
					case <-done:
						return
					}
					v, err := process(i)
					select {
					case results <- result{i: i, v: v, err: err}:
					case <-done:
						return
					}
				}
			})
		}()
	}
	go func() {
		defer close(jobs)
		for i := 0; i < count; i++ {
			select {
			case jobs <- i:
			case <-done:
				return
			}
		}
	}()

	// Collector: chunks may finish out of order; park them until their
	// turn, then emit and free their in-flight slot. Jobs are handed
	// out in increasing order, so the lowest unemitted chunk is always
	// either parked or being processed — emission always progresses.
	pending := make(map[int]result, workers)
	next := 0
	var firstErr error
	for received := 0; received < count; received++ {
		r := <-results
		if r.err != nil {
			firstErr = fmt.Errorf("chunk %d: %w", r.i, r.err)
			break
		}
		pending[r.i] = r
		for firstErr == nil {
			p, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			<-sem
			if err := emit(next, p.v); err != nil {
				firstErr = err
			}
			next++
		}
		if firstErr != nil {
			break
		}
	}
	close(done)
	wg.Wait()
	return firstErr
}

// chunkSpan returns the point range [lo, lo+np) of chunk i.
func chunkSpan(n, chunkPoints, i int) (lo, np int) {
	lo = i * chunkPoints
	np = chunkPoints
	if rem := n - lo; rem < np {
		np = rem
	}
	return lo, np
}

// readPair reads the prev and cur windows of one chunk.
func readPair(prev, cur Source, lo, np int) (pbuf, cbuf []float64, err error) {
	pbuf = make([]float64, np)
	cbuf = make([]float64, np)
	if err := prev.ReadFloats(pbuf, lo); err != nil {
		return nil, nil, err
	}
	if err := cur.ReadFloats(cbuf, lo); err != nil {
		return nil, nil, err
	}
	return pbuf, cbuf, nil
}

// chunkOut is one chunk's encode result, in the shape Sink consumes.
type chunkOut struct {
	indices        []uint32
	incompressible []bool
	exact          []float64
}

// Encode runs the streaming two-pass encode of the transition
// prev → cur: pass 1 reads every chunk once to gather the table-input
// ratios, the bin table is fitted, newSink builds the output sink from
// the resulting Plan, and pass 2 re-reads every chunk, assigns bins,
// and appends the per-chunk results to the sink in chunk order. Both
// sources must be re-readable and of equal length. The sink's own
// finalization (Finish, Bytes) is the caller's job — the factory
// closure keeps a reference.
func Encode(prev, cur Source, opt core.Options, cfg Config, newSink NewSink) (*Result, error) {
	vopt, err := opt.Validate()
	if err != nil {
		return nil, err
	}
	if prev.Len() != cur.Len() {
		return nil, fmt.Errorf("%w: %d vs %d", core.ErrLength, prev.Len(), cur.Len())
	}
	n := cur.Len()
	cfg, err = cfg.resolve()
	if err != nil {
		return nil, err
	}
	// One recorder serves both layers: setting either Config.Obs or
	// Options.Obs instruments the pipeline and the sinks alike.
	rec := cfg.Obs
	if rec == nil {
		rec = vopt.Obs
	} else if vopt.Obs == nil {
		vopt.Obs = rec
	}
	rec.SetMax(obs.GaugeWorkers, int64(cfg.Workers))
	rec.SetMax(obs.GaugeChunkPoints, int64(cfg.ChunkPoints))
	rec.SetMax(obs.GaugePeakBufferBytes, cfg.peakBufferBytes())
	chunkCount := 0
	if n > 0 {
		chunkCount = (n + cfg.ChunkPoints - 1) / cfg.ChunkPoints
	}

	// Pass 1: ratios only, gathering the table input in point order.
	// Each chunk's TableInput slice is a contiguous piece of the exact
	// sequence the in-memory encoder hands to core.Fit.
	res := newReservoir(cfg.MaxTableInput)
	err = orderedChunks(chunkCount, cfg.Workers, "encode-pass1", rec,
		func(i int) ([]float64, error) {
			lo, np := chunkSpan(n, cfg.ChunkPoints, i)
			t := rec.Start()
			pbuf, cbuf, err := readPair(prev, cur, lo, np)
			t.Stop(obs.StageRead)
			if err != nil {
				return nil, err
			}
			rec.Add(obs.CounterBytesRead, 16*int64(np))
			t = rec.Start()
			ratios, err := core.ComputeRatios(pbuf, cbuf, 1)
			t.Stop(obs.StageRatio)
			if err != nil {
				return nil, err
			}
			return ratios.TableInput(vopt), nil
		},
		func(_ int, ti []float64) error {
			res.add(ti)
			return nil
		})
	if err != nil {
		return nil, err
	}

	t := rec.Start()
	var bins core.Binner
	var binRatios []float64
	if len(res.vals) > 0 {
		bins, err = core.Fit(res.vals, vopt)
		if err != nil {
			t.Stop(obs.StageTable)
			return nil, err
		}
		binRatios = bins.Representatives()
		if len(binRatios) > vopt.NumBins() {
			t.Stop(obs.StageTable)
			return nil, fmt.Errorf("chunk: internal error: %d representatives exceed %d bins", len(binRatios), vopt.NumBins())
		}
	}
	t.Stop(obs.StageTable)
	rec.Add(obs.CounterTableInput, res.total)
	rec.SetMax(obs.GaugeBinCount, int64(len(binRatios)))

	sink, err := newSink(Plan{
		N:           n,
		ChunkPoints: cfg.ChunkPoints,
		ChunkCount:  chunkCount,
		Opt:         vopt,
		BinRatios:   binRatios,
	})
	if err != nil {
		return nil, err
	}

	// Pass 2: re-read, assign bins, stream sections out in order.
	exactCount := 0
	err = orderedChunks(chunkCount, cfg.Workers, "encode-pass2", rec,
		func(i int) (chunkOut, error) {
			lo, np := chunkSpan(n, cfg.ChunkPoints, i)
			t := rec.Start()
			pbuf, cbuf, err := readPair(prev, cur, lo, np)
			t.Stop(obs.StageRead)
			if err != nil {
				return chunkOut{}, err
			}
			rec.Add(obs.CounterBytesRead, 16*int64(np))
			t = rec.Start()
			ratios, err := core.ComputeRatios(pbuf, cbuf, 1)
			t.Stop(obs.StageRatio)
			if err != nil {
				return chunkOut{}, err
			}
			out := chunkOut{
				indices:        make([]uint32, np),
				incompressible: make([]bool, np),
			}
			t = rec.Start()
			core.AssignChunk(ratios, bins, vopt, out.indices, out.incompressible)
			for j, inc := range out.incompressible {
				if inc {
					out.exact = append(out.exact, cbuf[j])
				}
			}
			t.Stop(obs.StageAssign)
			return out, nil
		},
		func(_ int, out chunkOut) error {
			exactCount += len(out.exact)
			return sink.AppendChunk(out.indices, out.incompressible, out.exact)
		})
	if err != nil {
		return nil, err
	}
	rec.Add(obs.CounterEncodes, 1)
	rec.Add(obs.CounterPointsEncoded, int64(n))
	rec.Add(obs.CounterExactValues, int64(exactCount))

	return &Result{
		N:               n,
		ChunkPoints:     cfg.ChunkPoints,
		ChunkCount:      chunkCount,
		Workers:         cfg.Workers,
		BinRatios:       binRatios,
		ExactCount:      exactCount,
		TableInputTotal: res.total,
		TableInputUsed:  len(res.vals),
		TableThinned:    res.thinned,
		PeakBufferBytes: cfg.peakBufferBytes(),
	}, nil
}

// EncodeDeltaV1 streams an encode into the backward-compatible v1 delta
// format and returns its bytes. Only the compressed payload is
// buffered; with the default Config the bytes are identical to
// checkpoint.MarshalDelta of core.Encode on the same data.
func EncodeDeltaV1(variable string, iteration int, prev, cur Source, opt core.Options, cfg Config) ([]byte, *Result, error) {
	var asm *checkpoint.DeltaV1Assembler
	res, err := Encode(prev, cur, opt, cfg, func(p Plan) (Sink, error) {
		a, err := checkpoint.NewDeltaV1Assembler(variable, iteration, p.N, p.Opt, p.BinRatios)
		asm = a
		return a, err
	})
	if err != nil {
		return nil, nil, err
	}
	raw, err := asm.Bytes()
	if err != nil {
		return nil, nil, err
	}
	return raw, res, nil
}

// EncodeDeltaV2 streams an encode into the chunked v2 delta format on
// w, one section per chunk, and finalizes the file. Memory use is
// bounded by the Config budget; nothing proportional to the data size
// is held.
func EncodeDeltaV2(w io.Writer, variable string, iteration int, prev, cur Source, opt core.Options, cfg Config) (*Result, error) {
	var dw *checkpoint.DeltaV2Writer
	res, err := Encode(prev, cur, opt, cfg, func(p Plan) (Sink, error) {
		d, err := checkpoint.NewDeltaV2Writer(w, variable, iteration, p.N, p.Opt, p.BinRatios, p.ChunkPoints)
		dw = d
		return d, err
	})
	if err != nil {
		return nil, err
	}
	if err := dw.Finish(); err != nil {
		return nil, err
	}
	return res, nil
}

// DecodeDeltaV2 streams the reconstruction of an opened v2 delta:
// chunks are decoded concurrently (prev windows read from prev), and
// emit receives the reconstructed values in chunk order. The emit
// callback must copy anything it wants to keep. cfg.Workers bounds the
// concurrency; ChunkPoints is fixed by the file.
func DecodeDeltaV2(d *checkpoint.DeltaV2Reader, prev Source, cfg Config, emit func(vals []float64) error) error {
	meta := d.Meta()
	if prev.Len() != meta.N {
		return fmt.Errorf("%w: prev has %d points, checkpoint has %d", core.ErrLength, prev.Len(), meta.N)
	}
	cfg, err := cfg.resolve()
	if err != nil {
		return err
	}
	rec := cfg.Obs
	if rec != nil {
		d.SetRecorder(rec)
		rec.SetMax(obs.GaugeWorkers, int64(cfg.Workers))
	}
	err = orderedChunks(meta.ChunkCount, cfg.Workers, "decode", rec,
		func(i int) ([]float64, error) {
			lo, np := d.ChunkSpan(i)
			t := rec.Start()
			pbuf := make([]float64, np)
			rerr := prev.ReadFloats(pbuf, lo)
			t.Stop(obs.StageRead)
			if rerr != nil {
				return nil, rerr
			}
			rec.Add(obs.CounterBytesRead, 8*int64(np))
			dst := make([]float64, np)
			if err := d.DecodeChunkInto(i, pbuf, dst); err != nil {
				return nil, err
			}
			return dst, nil
		},
		func(_ int, vals []float64) error {
			return emit(vals)
		})
	if err != nil {
		return err
	}
	rec.Add(obs.CounterDecodes, 1)
	rec.Add(obs.CounterPointsDecoded, int64(meta.N))
	return nil
}
