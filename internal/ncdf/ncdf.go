// Package ncdf reads and writes a subset of the netCDF classic file
// format (CDF-1), the interchange format of the CMIP5 archive the
// NUMARCK paper evaluates on. The subset covers what checkpoint-style
// numeric data needs: named dimensions, text and double attributes
// (global and per variable), and fixed-shape variables of type
// NC_DOUBLE (NC_FLOAT is accepted on read and widened). Record
// (unlimited) dimensions are not supported — time is written as an
// ordinary leading dimension, which classic netCDF permits and every
// reader understands.
//
// The implementation follows the classic format specification: a
// big-endian header (magic "CDF\x01", numrecs, dimension list,
// attribute list, variable list) followed by each variable's data at
// its recorded byte offset, padded to 4-byte boundaries.
package ncdf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
)

// nc_type constants from the classic specification.
const (
	typeByte   = 1
	typeChar   = 2
	typeShort  = 3
	typeInt    = 4
	typeFloat  = 5
	typeDouble = 6
)

// header list tags.
const (
	tagDimension = 0x0A
	tagVariable  = 0x0B
	tagAttribute = 0x0C
)

// ErrFormat reports a file this subset cannot parse.
var ErrFormat = errors.New("ncdf: unsupported or corrupt file")

// ErrLayout reports an inconsistent in-memory File.
var ErrLayout = errors.New("ncdf: invalid layout")

// Dim is a named dimension.
type Dim struct {
	Name string
	Len  int
}

// Attr is an attribute holding either text or doubles (exactly one).
type Attr struct {
	Name    string
	Text    string
	Doubles []float64
}

// Var is a fixed-shape double variable.
type Var struct {
	Name string
	// DimIDs index into File.Dims, outermost first.
	DimIDs []int
	Attrs  []Attr
	// Data is row-major with the last dimension fastest, length equal
	// to the product of the dimension lengths.
	Data []float64
}

// File is an in-memory netCDF classic dataset.
type File struct {
	Dims        []Dim
	GlobalAttrs []Attr
	Vars        []Var
}

// DimLen returns the length of dimension id.
func (f *File) DimLen(id int) (int, error) {
	if id < 0 || id >= len(f.Dims) {
		return 0, fmt.Errorf("%w: dimension id %d of %d", ErrLayout, id, len(f.Dims))
	}
	return f.Dims[id].Len, nil
}

// VarByName returns the named variable.
func (f *File) VarByName(name string) (*Var, error) {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return &f.Vars[i], nil
		}
	}
	return nil, fmt.Errorf("%w: no variable %q", ErrLayout, name)
}

// Shape returns a variable's dimension lengths.
func (f *File) Shape(v *Var) ([]int, error) {
	shape := make([]int, len(v.DimIDs))
	for i, id := range v.DimIDs {
		n, err := f.DimLen(id)
		if err != nil {
			return nil, err
		}
		shape[i] = n
	}
	return shape, nil
}

// Slab returns the contiguous values of v at index `outer` of its
// first dimension — e.g. one timestep of a (time, lat, lon) variable.
func (f *File) Slab(v *Var, outer int) ([]float64, error) {
	shape, err := f.Shape(v)
	if err != nil {
		return nil, err
	}
	if len(shape) == 0 {
		return nil, fmt.Errorf("%w: variable %q is a scalar", ErrLayout, v.Name)
	}
	if outer < 0 || outer >= shape[0] {
		return nil, fmt.Errorf("%w: index %d out of first dimension %d", ErrLayout, outer, shape[0])
	}
	inner := 1
	for _, n := range shape[1:] {
		inner *= n
	}
	return v.Data[outer*inner : (outer+1)*inner], nil
}

// validate checks dimensional consistency before encoding.
func (f *File) validate() error {
	for _, d := range f.Dims {
		if d.Name == "" || d.Len <= 0 {
			return fmt.Errorf("%w: dimension %+v", ErrLayout, d)
		}
	}
	names := map[string]bool{}
	for _, v := range f.Vars {
		if v.Name == "" {
			return fmt.Errorf("%w: unnamed variable", ErrLayout)
		}
		if names[v.Name] {
			return fmt.Errorf("%w: duplicate variable %q", ErrLayout, v.Name)
		}
		names[v.Name] = true
		want := 1
		for _, id := range v.DimIDs {
			n, err := f.DimLen(id)
			if err != nil {
				return fmt.Errorf("variable %q: %w", v.Name, err)
			}
			want *= n
		}
		if len(v.Data) != want {
			return fmt.Errorf("%w: variable %q has %d values, shape wants %d", ErrLayout, v.Name, len(v.Data), want)
		}
		for _, a := range v.Attrs {
			if a.Text != "" && len(a.Doubles) > 0 {
				return fmt.Errorf("%w: attribute %q has both text and doubles", ErrLayout, a.Name)
			}
		}
	}
	for _, a := range f.GlobalAttrs {
		if a.Text != "" && len(a.Doubles) > 0 {
			return fmt.Errorf("%w: attribute %q has both text and doubles", ErrLayout, a.Name)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Encoding

type writer struct {
	buf bytes.Buffer
	err error // first header-field overflow, checked once in Encode
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}

// u32i writes an int-valued header field (length, count, id). CDF-1
// header fields are unsigned 32-bit; anything negative or wider
// poisons the writer instead of silently truncating the header.
func (w *writer) u32i(n int) {
	if n < 0 || int64(n) > math.MaxUint32 {
		if w.err == nil {
			w.err = fmt.Errorf("%w: value %d overflows a 32-bit header field", ErrLayout, n)
		}
		return
	}
	//lint:ignore bindex range-checked immediately above
	w.u32(uint32(n))
}

func (w *writer) name(s string) {
	w.u32i(len(s))
	w.buf.WriteString(s)
	for w.buf.Len()%4 != 0 {
		w.buf.WriteByte(0)
	}
}

func (w *writer) attrs(attrs []Attr) {
	if len(attrs) == 0 {
		w.u32(0) // ABSENT
		w.u32(0)
		return
	}
	w.u32(tagAttribute)
	w.u32i(len(attrs))
	for _, a := range attrs {
		w.name(a.Name)
		if len(a.Doubles) > 0 {
			w.u32(typeDouble)
			w.u32i(len(a.Doubles))
			for _, v := range a.Doubles {
				var b [8]byte
				binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
				w.buf.Write(b[:])
			}
			continue
		}
		w.u32(typeChar)
		w.u32i(len(a.Text))
		w.buf.WriteString(a.Text)
		for w.buf.Len()%4 != 0 {
			w.buf.WriteByte(0)
		}
	}
}

// Encode serializes the file to classic CDF-1 bytes.
func (f *File) Encode() ([]byte, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	var w writer
	w.buf.WriteString("CDF\x01")
	w.u32(0) // numrecs: no record dimension in this subset

	// Dimension list.
	if len(f.Dims) == 0 {
		w.u32(0)
		w.u32(0)
	} else {
		w.u32(tagDimension)
		w.u32i(len(f.Dims))
		for _, d := range f.Dims {
			w.name(d.Name)
			w.u32i(d.Len)
		}
	}
	w.attrs(f.GlobalAttrs)

	// Variable list needs data offsets, which depend on the header
	// size; write the header with placeholder offsets first, then
	// patch. Offsets are int32 in CDF-1.
	type varMeta struct {
		beginPos int // position of the begin field in the buffer
		size     int
	}
	metas := make([]varMeta, len(f.Vars))
	if len(f.Vars) == 0 {
		w.u32(0)
		w.u32(0)
	} else {
		w.u32(tagVariable)
		w.u32i(len(f.Vars))
		for i, v := range f.Vars {
			w.name(v.Name)
			w.u32i(len(v.DimIDs))
			for _, id := range v.DimIDs {
				w.u32i(id)
			}
			w.attrs(v.Attrs)
			w.u32(typeDouble)
			size := 8 * len(v.Data)
			w.u32i(size)
			metas[i] = varMeta{beginPos: w.buf.Len(), size: size}
			w.u32(0) // begin placeholder
		}
	}

	// Data section: doubles are 8-byte aligned already; classic
	// format requires each variable padded to a 4-byte boundary
	// (automatic here).
	if w.err != nil {
		return nil, w.err
	}
	out := w.buf.Bytes()
	offset := len(out)
	for i := range f.Vars {
		if offset > math.MaxInt32 {
			return nil, fmt.Errorf("%w: file exceeds CDF-1 2 GiB offset limit", ErrLayout)
		}
		//lint:ignore bindex offset <= math.MaxInt32 checked above
		binary.BigEndian.PutUint32(out[metas[i].beginPos:], uint32(offset))
		offset += metas[i].size
	}
	data := make([]byte, 0, offset)
	data = append(data, out...)
	var b [8]byte
	for _, v := range f.Vars {
		for _, x := range v.Data {
			binary.BigEndian.PutUint64(b[:], math.Float64bits(x))
			data = append(data, b[:]...)
		}
	}
	return data, nil
}

// WriteFile encodes to a file.
func (f *File) WriteFile(path string) error {
	data, err := f.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ---------------------------------------------------------------------
// Decoding

type reader struct {
	data []byte
	pos  int
}

func (r *reader) u32() (uint32, error) {
	if r.pos+4 > len(r.data) {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrFormat, r.pos)
	}
	v := binary.BigEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) name() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if n > 1<<20 || r.pos+int(n) > len(r.data) {
		return "", fmt.Errorf("%w: name length %d", ErrFormat, n)
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	for r.pos%4 != 0 {
		r.pos++
	}
	if r.pos > len(r.data) {
		return "", fmt.Errorf("%w: padding past end", ErrFormat)
	}
	return s, nil
}

func (r *reader) attrs() ([]Attr, error) {
	tag, err := r.u32()
	if err != nil {
		return nil, err
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	if tag == 0 && count == 0 {
		return nil, nil
	}
	if tag != tagAttribute {
		return nil, fmt.Errorf("%w: expected attribute list, tag %#x", ErrFormat, tag)
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("%w: %d attributes", ErrFormat, count)
	}
	out := make([]Attr, 0, count)
	for i := uint32(0); i < count; i++ {
		name, err := r.name()
		if err != nil {
			return nil, err
		}
		ncType, err := r.u32()
		if err != nil {
			return nil, err
		}
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		a := Attr{Name: name}
		switch ncType {
		case typeChar:
			if r.pos+int(n) > len(r.data) {
				return nil, fmt.Errorf("%w: attribute %q text", ErrFormat, name)
			}
			a.Text = string(r.data[r.pos : r.pos+int(n)])
			r.pos += int(n)
			for r.pos%4 != 0 {
				r.pos++
			}
		case typeDouble:
			if r.pos+8*int(n) > len(r.data) {
				return nil, fmt.Errorf("%w: attribute %q doubles", ErrFormat, name)
			}
			a.Doubles = make([]float64, n)
			for j := range a.Doubles {
				a.Doubles[j] = math.Float64frombits(binary.BigEndian.Uint64(r.data[r.pos:]))
				r.pos += 8
			}
		default:
			// Skip other attribute types (shorts, ints, floats) by
			// size; they are metadata this subset does not need.
			sz := map[uint32]int{typeByte: 1, typeShort: 2, typeInt: 4, typeFloat: 4}[ncType]
			if sz == 0 {
				return nil, fmt.Errorf("%w: attribute %q type %d", ErrFormat, name, ncType)
			}
			total := sz * int(n)
			total = (total + 3) &^ 3
			if r.pos+total > len(r.data) {
				return nil, fmt.Errorf("%w: attribute %q payload", ErrFormat, name)
			}
			r.pos += total
			continue // attribute dropped
		}
		out = append(out, a)
	}
	return out, nil
}

// Decode parses classic CDF-1/CDF-2 bytes. Record variables and
// non-floating variable types are rejected with ErrFormat.
func Decode(data []byte) (*File, error) {
	if len(data) < 8 || data[0] != 'C' || data[1] != 'D' || data[2] != 'F' {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if data[3] != 1 {
		return nil, fmt.Errorf("%w: version %d (only CDF-1 supported)", ErrFormat, data[3])
	}
	r := &reader{data: data, pos: 4}
	numrecs, err := r.u32()
	if err != nil {
		return nil, err
	}
	if numrecs != 0 {
		return nil, fmt.Errorf("%w: record dimensions not supported (numrecs %d)", ErrFormat, numrecs)
	}
	f := &File{}

	// Dimensions.
	tag, err := r.u32()
	if err != nil {
		return nil, err
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	if tag == tagDimension {
		if count > 1<<16 {
			return nil, fmt.Errorf("%w: %d dimensions", ErrFormat, count)
		}
		for i := uint32(0); i < count; i++ {
			name, err := r.name()
			if err != nil {
				return nil, err
			}
			n, err := r.u32()
			if err != nil {
				return nil, err
			}
			if n == 0 {
				return nil, fmt.Errorf("%w: record dimension %q not supported", ErrFormat, name)
			}
			f.Dims = append(f.Dims, Dim{Name: name, Len: int(n)})
		}
	} else if tag != 0 || count != 0 {
		return nil, fmt.Errorf("%w: expected dimension list, tag %#x", ErrFormat, tag)
	}

	if f.GlobalAttrs, err = r.attrs(); err != nil {
		return nil, err
	}

	// Variables.
	tag, err = r.u32()
	if err != nil {
		return nil, err
	}
	count, err = r.u32()
	if err != nil {
		return nil, err
	}
	if tag == 0 && count == 0 {
		return f, nil
	}
	if tag != tagVariable {
		return nil, fmt.Errorf("%w: expected variable list, tag %#x", ErrFormat, tag)
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("%w: %d variables", ErrFormat, count)
	}
	for i := uint32(0); i < count; i++ {
		name, err := r.name()
		if err != nil {
			return nil, err
		}
		ndims, err := r.u32()
		if err != nil {
			return nil, err
		}
		if ndims > 64 {
			return nil, fmt.Errorf("%w: variable %q has %d dimensions", ErrFormat, name, ndims)
		}
		v := Var{Name: name, DimIDs: make([]int, ndims)}
		total := 1
		for d := range v.DimIDs {
			id, err := r.u32()
			if err != nil {
				return nil, err
			}
			if int(id) >= len(f.Dims) {
				return nil, fmt.Errorf("%w: variable %q dimension id %d", ErrFormat, name, id)
			}
			v.DimIDs[d] = int(id)
			total *= f.Dims[id].Len
		}
		if v.Attrs, err = r.attrs(); err != nil {
			return nil, err
		}
		ncType, err := r.u32()
		if err != nil {
			return nil, err
		}
		if _, err = r.u32(); err != nil { // vsize (trust the shape instead)
			return nil, err
		}
		begin, err := r.u32()
		if err != nil {
			return nil, err
		}
		elem := 8
		if ncType == typeFloat {
			elem = 4
		} else if ncType != typeDouble {
			return nil, fmt.Errorf("%w: variable %q type %d (only float/double supported)", ErrFormat, name, ncType)
		}
		end := int(begin) + elem*total
		if int(begin) < 0 || end > len(data) || int(begin) > end {
			return nil, fmt.Errorf("%w: variable %q data [%d,%d) outside file of %d bytes", ErrFormat, name, begin, end, len(data))
		}
		v.Data = make([]float64, total)
		for j := 0; j < total; j++ {
			off := int(begin) + elem*j
			if elem == 8 {
				v.Data[j] = math.Float64frombits(binary.BigEndian.Uint64(data[off:]))
			} else {
				v.Data[j] = float64(math.Float32frombits(binary.BigEndian.Uint32(data[off:])))
			}
		}
		f.Vars = append(f.Vars, v)
	}
	return f, nil
}

// ReadFile decodes a file from disk.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
