package ncdf

import (
	"errors"
	"math"
	"testing"
)

// TestU32IRange pins the guarded header-field write: out-of-range
// values must poison the writer (first error wins) rather than
// truncate silently, and in-range values must encode big-endian.
func TestU32IRange(t *testing.T) {
	var w writer
	w.u32i(7)
	if w.err != nil {
		t.Fatalf("u32i(7): %v", w.err)
	}
	if got := w.buf.Bytes(); len(got) != 4 || got[3] != 7 {
		t.Fatalf("u32i(7) wrote % x", got)
	}

	w.u32i(-1)
	if !errors.Is(w.err, ErrLayout) {
		t.Fatalf("u32i(-1) err = %v, want ErrLayout", w.err)
	}
	first := w.err
	w.u32i(math.MaxInt64) // int is 64-bit on all supported targets
	if w.err != first {
		t.Fatal("second overflow replaced the first error")
	}
	if w.buf.Len() != 4 {
		t.Fatalf("overflowing writes still appended bytes: len=%d", w.buf.Len())
	}
}
