package ncdf

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func sampleFile() *File {
	f := &File{
		Dims: []Dim{
			{Name: "time", Len: 3},
			{Name: "lat", Len: 4},
			{Name: "lon", Len: 5},
		},
		GlobalAttrs: []Attr{
			{Name: "title", Text: "synthetic CMIP5-like data"},
			{Name: "resolution_deg", Doubles: []float64{2.5, 2.0}},
		},
	}
	data := make([]float64, 3*4*5)
	for i := range data {
		data[i] = 100 + float64(i)*0.25
	}
	f.Vars = append(f.Vars, Var{
		Name:   "rlus",
		DimIDs: []int{0, 1, 2},
		Attrs: []Attr{
			{Name: "units", Text: "W m-2"},
			{Name: "valid_range", Doubles: []float64{0, 1000}},
		},
		Data: data,
	})
	lat := []float64{-45, -15, 15, 45}
	f.Vars = append(f.Vars, Var{Name: "lat", DimIDs: []int{1}, Data: lat})
	return f
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFile()
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Dims) != 3 || got.Dims[1].Name != "lat" || got.Dims[1].Len != 4 {
		t.Errorf("dims = %+v", got.Dims)
	}
	if len(got.GlobalAttrs) != 2 || got.GlobalAttrs[0].Text != "synthetic CMIP5-like data" {
		t.Errorf("gattrs = %+v", got.GlobalAttrs)
	}
	if got.GlobalAttrs[1].Doubles[0] != 2.5 {
		t.Errorf("resolution attr = %+v", got.GlobalAttrs[1])
	}
	v, err := got.VarByName("rlus")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Attrs) != 2 || v.Attrs[0].Text != "W m-2" {
		t.Errorf("var attrs = %+v", v.Attrs)
	}
	want := sampleFile().Vars[0].Data
	for i := range want {
		if v.Data[i] != want[i] {
			t.Fatalf("data[%d] = %v, want %v", i, v.Data[i], want[i])
		}
	}
	shape, err := got.Shape(v)
	if err != nil {
		t.Fatal(err)
	}
	if shape[0] != 3 || shape[1] != 4 || shape[2] != 5 {
		t.Errorf("shape = %v", shape)
	}
}

func TestFileRoundTripOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.nc")
	f := sampleFile()
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vars) != 2 {
		t.Errorf("%d variables", len(got.Vars))
	}
}

func TestSlab(t *testing.T) {
	f := sampleFile()
	v, err := f.VarByName("rlus")
	if err != nil {
		t.Fatal(err)
	}
	slab, err := f.Slab(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(slab) != 20 {
		t.Fatalf("slab len %d", len(slab))
	}
	if slab[0] != v.Data[20] {
		t.Errorf("slab[0] = %v, want %v", slab[0], v.Data[20])
	}
	if _, err := f.Slab(v, 3); err == nil {
		t.Error("out-of-range slab accepted")
	}
	if _, err := f.Slab(v, -1); err == nil {
		t.Error("negative slab accepted")
	}
}

func TestNamePadding(t *testing.T) {
	// Names of every length modulo 4 must round trip.
	for _, name := range []string{"a", "ab", "abc", "abcd", "abcde"} {
		f := &File{
			Dims: []Dim{{Name: name, Len: 2}},
			Vars: []Var{{Name: name + "_v", DimIDs: []int{0}, Data: []float64{1, 2}}},
		}
		raw, err := f.Encode()
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		got, err := Decode(raw)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if got.Dims[0].Name != name || got.Vars[0].Name != name+"_v" {
			t.Errorf("%q: names %q, %q", name, got.Dims[0].Name, got.Vars[0].Name)
		}
	}
}

func TestValidation(t *testing.T) {
	bad := &File{
		Dims: []Dim{{Name: "x", Len: 3}},
		Vars: []Var{{Name: "v", DimIDs: []int{0}, Data: []float64{1, 2}}}, // wrong size
	}
	if _, err := bad.Encode(); !errors.Is(err, ErrLayout) {
		t.Errorf("wrong-size var: %v", err)
	}
	bad2 := &File{Dims: []Dim{{Name: "", Len: 1}}}
	if _, err := bad2.Encode(); !errors.Is(err, ErrLayout) {
		t.Errorf("unnamed dim: %v", err)
	}
	bad3 := &File{Vars: []Var{
		{Name: "v", Data: []float64{1}},
		{Name: "v", Data: []float64{2}},
	}}
	if _, err := bad3.Encode(); !errors.Is(err, ErrLayout) {
		t.Errorf("duplicate vars: %v", err)
	}
	bad4 := &File{Vars: []Var{{Name: "v", DimIDs: []int{7}, Data: []float64{1}}}}
	if _, err := bad4.Encode(); err == nil {
		t.Error("dangling dim id accepted")
	}
	bad5 := &File{Vars: []Var{{
		Name: "v", Data: []float64{1},
		Attrs: []Attr{{Name: "a", Text: "x", Doubles: []float64{1}}},
	}}}
	if _, err := bad5.Encode(); !errors.Is(err, ErrLayout) {
		t.Errorf("text+doubles attr: %v", err)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("HDF\x01\x00\x00\x00\x00"),
		"cdf2":      []byte("CDF\x02\x00\x00\x00\x00"),
		"short":     []byte("CDF\x01\x00"),
		"records":   []byte("CDF\x01\x00\x00\x00\x05\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"),
	}
	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDecodeTruncations(t *testing.T) {
	raw, err := sampleFile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut += 11 {
		if _, err := Decode(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		buf := make([]byte, rng.Intn(300))
		rng.Read(buf)
		if len(buf) >= 4 {
			copy(buf, "CDF\x01") // force it past the magic check
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			_, _ = Decode(buf)
		}()
	}
}

func TestDecodeFloatVariable(t *testing.T) {
	// Hand-build a file with an NC_FLOAT variable: the reader must
	// widen it to float64.
	f := &File{
		Dims: []Dim{{Name: "x", Len: 2}},
		Vars: []Var{{Name: "v", DimIDs: []int{0}, Data: []float64{1.5, -2.5}}},
	}
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Patch the variable type from double to float and rewrite the
	// payload as two float32s at the same offset.
	// Locate the type field: it sits 12 bytes before the end of the
	// header (type, vsize, begin), with begin pointing at the data.
	begin := len(raw) - 16 // data is 2 doubles = 16 bytes
	hdrEnd := begin
	typePos := hdrEnd - 12
	binary.BigEndian.PutUint32(raw[typePos:], typeFloat)
	patched := append([]byte{}, raw[:begin]...)
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], math.Float32bits(1.5))
	patched = append(patched, b[:]...)
	binary.BigEndian.PutUint32(b[:], math.Float32bits(-2.5))
	patched = append(patched, b[:]...)

	got, err := Decode(patched)
	if err != nil {
		t.Fatal(err)
	}
	v, err := got.VarByName("v")
	if err != nil {
		t.Fatal(err)
	}
	if v.Data[0] != 1.5 || v.Data[1] != -2.5 {
		t.Errorf("widened data = %v", v.Data)
	}
}

func TestLargeRoundTrip(t *testing.T) {
	// Full CMIP5-sized grid: 60 x 90 x 144 doubles (~6 MB).
	f := &File{
		Dims: []Dim{{Name: "time", Len: 60}, {Name: "lat", Len: 90}, {Name: "lon", Len: 144}},
	}
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 60*90*144)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	f.Vars = []Var{{Name: "rlus", DimIDs: []int{0, 1, 2}, Data: data}}
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := got.VarByName("rlus")
	for i := 0; i < len(data); i += 997 {
		if v.Data[i] != data[i] {
			t.Fatalf("data[%d] differs", i)
		}
	}
}
