// Package obs is the instrumentation layer of the encode/decode
// pipeline: a Recorder of per-stage wall times (with log2 latency
// histograms), monotonic counters, and high-water-mark gauges, all
// updated with atomic operations so the goroutine-parallel pipeline
// stages (internal/chunk workers, the parallel v2 decode) can report
// into one Recorder without locks.
//
// The paper's value proposition is quantitative — compression ratio R,
// incompressible ratio γ, and per-stage cost (§III-B) — and this
// package makes the per-stage cost visible at runtime: where encode
// time goes (ratio computation, table learning, assignment, bit
// packing, CRC, IO), how long pipeline workers wait for an in-flight
// slot, and how many bytes each section of the output took.
//
// Every method is nil-safe: a nil *Recorder is the valid "off" state,
// costing uninstrumented callers exactly one predictable branch and no
// allocations (verified by TestNilRecorderAllocFree). Callers therefore
// never need to guard instrumentation sites:
//
//	t := rec.Start()        // rec may be nil
//	...stage work...
//	t.Stop(obs.StageAssign) // no-op when rec was nil
//
// A point-in-time view is taken with Snapshot, which renders as an
// aligned text table (WriteText) or JSON (WriteJSON); cmd/numarck
// exposes both through -metrics and -metrics-json.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Stage names one timed phase of the encode/decode pipeline. Stages are
// deliberately coarse — one per algorithmic phase of the paper's
// pipeline, not one per function — so their sum is interpretable
// against wall time.
type Stage uint8

// The pipeline stages, in encode order followed by decode order.
const (
	// StageRatio is change-ratio computation (paper Eq. 1).
	StageRatio Stage = iota
	// StageTable is table learning: binning or k-means fit (§II-C).
	StageTable
	// StageAssign is per-point bin assignment and error-bound
	// enforcement.
	StageAssign
	// StageBitpack is B-bit index packing and unpacking.
	StageBitpack
	// StageCRC is checksum computation and verification.
	StageCRC
	// StageRead is source reads: raw input windows and checkpoint
	// sections.
	StageRead
	// StageWrite is output writes: headers, chunk sections, directory.
	StageWrite
	// StageQueueWait is time pipeline workers spend blocked waiting for
	// an in-flight slot (backpressure from the ordered emitter).
	StageQueueWait
	// StageDecode is chunk reconstruction from a parsed section.
	StageDecode

	numStages
)

// stageNames must match the Stage constant order above.
var stageNames = [numStages]string{
	"ratio", "table", "assign", "bitpack", "crc",
	"read", "write", "queue-wait", "decode",
}

// String returns the stage's snapshot name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Counter names one monotonic count.
type Counter uint8

// The counters. Byte counters are defined so that on a streaming
// encode, BytesWritten equals the size of the finished file (header +
// bin table + sections + directory + footer), which Snapshot tests
// reconcile against the actual output.
const (
	// CounterEncodes and CounterDecodes count whole encode/decode runs.
	CounterEncodes Counter = iota
	CounterDecodes
	// CounterPointsEncoded / CounterPointsDecoded count data points.
	CounterPointsEncoded
	CounterPointsDecoded
	// CounterChunksEncoded / CounterChunksDecoded count pipeline chunks.
	CounterChunksEncoded
	CounterChunksDecoded
	// CounterExactValues counts incompressible points stored raw.
	CounterExactValues
	// CounterTableInput counts ratios offered to the table-learning
	// stage.
	CounterTableInput
	// CounterBytesRead / CounterBytesWritten count IO bytes through the
	// instrumented readers and writers.
	CounterBytesRead
	CounterBytesWritten
	// CounterSectionBytes counts bytes of chunk sections only (the v2
	// payload without header, table, directory, footer).
	CounterSectionBytes
	// CounterRecoveryScans counts store-open recovery scans.
	CounterRecoveryScans
	// CounterTornFilesDetected counts truncated checkpoint files and
	// leftover write temporaries found by recovery scans.
	CounterTornFilesDetected
	// CounterChunksQuarantined counts chunks skipped by degraded-mode
	// (salvage) decodes because their CRC or structure check failed.
	CounterChunksQuarantined
	// CounterIndexRebuilds counts chain-index rebuilds from the MANIFEST
	// journal (a missing, stale, or corrupt CHAININDEX).
	CounterIndexRebuilds
	// CounterIndexRereads counts read-view snapshot refreshes: the
	// seqlock-style reread a reader performs when it observes the store
	// changed under it.
	CounterIndexRereads
	// CounterLockTakeovers counts stale writer locks broken by a new
	// writer (crashed owner detected at lock acquisition).
	CounterLockTakeovers
	// CounterCommitReplays counts idempotent commit replays: a retried
	// commit whose iteration was already journaled with the same
	// payload CRC, answered as a cheap success instead of re-applied.
	CounterCommitReplays
	// CounterRetries counts client-side retry attempts (every attempt
	// after the first, whatever its outcome).
	CounterRetries
	// CounterSpoolsReaped counts orphaned request-spool files removed
	// by the janitor.
	CounterSpoolsReaped
	// CounterSessionsReaped counts expired upload sessions removed by
	// the janitor.
	CounterSessionsReaped
	// CounterLocksRecovered counts stale writer locks (dead holder)
	// the janitor detected and recovered.
	CounterLocksRecovered

	numCounters
)

// counterNames must match the Counter constant order above.
var counterNames = [numCounters]string{
	"encodes", "decodes",
	"points_encoded", "points_decoded",
	"chunks_encoded", "chunks_decoded",
	"exact_values", "table_input",
	"bytes_read", "bytes_written", "section_bytes",
	"recovery_scans", "torn_files_detected", "chunks_quarantined",
	"index_rebuilds", "index_rereads", "lock_takeovers",
	"commit_replays", "retries",
	"spools_reaped", "sessions_reaped", "locks_recovered",
}

// String returns the counter's snapshot name.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// Gauge names one high-water-mark value: Set keeps the maximum ever
// observed, not the last.
type Gauge uint8

// The gauges.
const (
	// GaugePeakBufferBytes is the budget model's peak buffer footprint
	// of a streaming run (chunk.Result.PeakBufferBytes).
	GaugePeakBufferBytes Gauge = iota
	// GaugeWorkers is the resolved pipeline worker count.
	GaugeWorkers
	// GaugeChunkPoints is the resolved points-per-chunk.
	GaugeChunkPoints
	// GaugeBinCount is the learned bin table size.
	GaugeBinCount

	numGauges
)

// gaugeNames must match the Gauge constant order above.
var gaugeNames = [numGauges]string{
	"peak_buffer_bytes", "workers", "chunk_points", "bin_count",
}

// String returns the gauge's snapshot name.
func (g Gauge) String() string {
	if int(g) < len(gaugeNames) {
		return gaugeNames[g]
	}
	return "unknown"
}

// NumBuckets is the number of log2 latency buckets per stage: bucket i
// counts observations with duration in [2^i, 2^(i+1)) nanoseconds
// (bucket 0 also holds sub-nanosecond observations), and the last
// bucket absorbs everything from ~9.2 minutes up.
const NumBuckets = 40

// stageStats is one stage's accumulated timing, all fields atomic.
type stageStats struct {
	count   atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Recorder accumulates pipeline metrics. The zero value is ready to
// use; so is nil, which turns every method into a cheap no-op. One
// Recorder may be shared by any number of goroutines and by the
// encode and decode sides at once.
type Recorder struct {
	start    time.Time
	stages   [numStages]stageStats
	counters [numCounters]atomic.Int64
	gauges   [numGauges]atomic.Int64
}

// NewRecorder returns an empty Recorder anchored at the current time;
// Snapshot's WallNs measures from this anchor.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// Add increments counter c by n. Nil-safe.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil {
		return
	}
	r.counters[c].Add(n)
}

// SetMax raises gauge g to v if v exceeds the recorded maximum.
// Nil-safe.
func (r *Recorder) SetMax(g Gauge, v int64) {
	if r == nil {
		return
	}
	maxOf(&r.gauges[g], v)
}

// maxOf CAS-loops a into holding at least v.
func maxOf(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if old >= v || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// Observe records one completed run of stage s that took d. Nil-safe.
func (r *Recorder) Observe(s Stage, d time.Duration) {
	if r == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	st := &r.stages[s]
	st.count.Add(1)
	st.totalNs.Add(ns)
	maxOf(&st.maxNs, ns)
	st.buckets[bucketOf(ns)].Add(1)
}

// bucketOf maps a nanosecond duration to its log2 bucket index.
func bucketOf(ns int64) int {
	b := bits.Len64(uint64(ns)) - 1
	if b < 0 {
		b = 0
	}
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// Timer is an in-flight stage measurement, returned by Start. The zero
// Timer (from a nil Recorder) is valid and Stop on it does nothing.
type Timer struct {
	rec   *Recorder
	start time.Time
}

// Start begins timing a stage. On a nil Recorder it returns the zero
// Timer without reading the clock, so the uninstrumented path costs
// one branch. Nil-safe.
func (r *Recorder) Start() Timer {
	if r == nil {
		return Timer{}
	}
	return Timer{rec: r, start: time.Now()}
}

// Stop ends the measurement and records it under stage s.
func (t Timer) Stop(s Stage) {
	if t.rec == nil {
		return
	}
	t.rec.Observe(s, time.Since(t.start))
}
