package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestObserveAccumulates(t *testing.T) {
	r := NewRecorder()
	r.Observe(StageAssign, 100*time.Nanosecond)
	r.Observe(StageAssign, 300*time.Nanosecond)
	r.Observe(StageCRC, time.Microsecond)

	s := r.Snapshot()
	st := s.Stage("assign")
	if st.Count != 2 || st.TotalNs != 400 || st.MaxNs != 300 {
		t.Fatalf("assign stage = %+v, want count 2 total 400 max 300", st)
	}
	if got := s.Stage("crc").TotalNs; got != 1000 {
		t.Fatalf("crc total = %d, want 1000", got)
	}
	if s.Stage("ratio").Count != 0 {
		t.Fatalf("unobserved stage should be zero")
	}
	if got := s.StageTotalNs(); got != 1400 {
		t.Fatalf("StageTotalNs = %d, want 1400", got)
	}
}

func TestCountersAndGauges(t *testing.T) {
	r := NewRecorder()
	r.Add(CounterBytesWritten, 10)
	r.Add(CounterBytesWritten, 32)
	r.SetMax(GaugePeakBufferBytes, 100)
	r.SetMax(GaugePeakBufferBytes, 50) // lower: must not shrink
	s := r.Snapshot()
	if got := s.Counters["bytes_written"]; got != 42 {
		t.Fatalf("bytes_written = %d, want 42", got)
	}
	if got := s.Gauges["peak_buffer_bytes"]; got != 100 {
		t.Fatalf("peak_buffer_bytes = %d, want 100", got)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2},
		{1023, 9}, {1024, 10},
		{1 << 39, 39}, {1 << 45, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramBucketsSumToCount(t *testing.T) {
	r := NewRecorder()
	durs := []time.Duration{0, time.Nanosecond, 100 * time.Nanosecond,
		time.Microsecond, time.Millisecond, 3 * time.Millisecond}
	for _, d := range durs {
		r.Observe(StageTable, d)
	}
	st := r.Snapshot().Stage("table")
	var inBuckets int64
	for _, b := range st.Buckets {
		inBuckets += b.Count
	}
	if inBuckets != st.Count || st.Count != int64(len(durs)) {
		t.Fatalf("buckets hold %d of %d observations", inBuckets, st.Count)
	}
	for i := 1; i < len(st.Buckets); i++ {
		if st.Buckets[i].LoNs <= st.Buckets[i-1].LoNs {
			t.Fatalf("buckets not ascending: %+v", st.Buckets)
		}
	}
}

func TestTimerRecords(t *testing.T) {
	r := NewRecorder()
	tm := r.Start()
	time.Sleep(time.Millisecond)
	tm.Stop(StageRead)
	st := r.Snapshot().Stage("read")
	if st.Count != 1 || st.TotalNs < int64(time.Millisecond)/2 {
		t.Fatalf("timer recorded %+v, want one ~1ms observation", st)
	}
}

// TestNilSafe pins the no-op contract: every method of a nil Recorder
// must be callable.
func TestNilSafe(t *testing.T) {
	var r *Recorder
	r.Add(CounterEncodes, 1)
	r.SetMax(GaugeWorkers, 8)
	r.Observe(StageRatio, time.Second)
	r.Start().Stop(StageWrite)
	s := r.Snapshot()
	if s.WallNs != 0 || len(s.Stages) != 0 || len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Fatalf("nil Recorder snapshot not empty: %+v", s)
	}
}

// TestNilRecorderAllocFree measures the promised zero-allocation
// fast path of uninstrumented callers.
func TestNilRecorderAllocFree(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		tm := r.Start()
		r.Add(CounterPointsEncoded, 4096)
		r.SetMax(GaugeBinCount, 255)
		r.Observe(StageAssign, time.Microsecond)
		tm.Stop(StageAssign)
	})
	if allocs != 0 {
		t.Fatalf("nil Recorder path allocates %v times per run, want 0", allocs)
	}
}

// TestLiveRecorderAllocFree: the hot-path update methods must not
// allocate on a live Recorder either — only Start (reading the clock)
// and Snapshot may.
func TestLiveRecorderAllocFree(t *testing.T) {
	r := NewRecorder()
	allocs := testing.AllocsPerRun(1000, func() {
		r.Add(CounterPointsEncoded, 4096)
		r.SetMax(GaugeBinCount, 255)
		r.Observe(StageAssign, time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("live Recorder update path allocates %v times per run, want 0", allocs)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Observe(StageBitpack, 5*time.Microsecond)
	r.Add(CounterChunksEncoded, 7)
	r.SetMax(GaugeChunkPoints, 1<<15)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if back.Stage("bitpack").Count != 1 {
		t.Fatalf("round-tripped snapshot lost bitpack stage: %+v", back)
	}
	if back.Counters["chunks_encoded"] != 7 || back.Gauges["chunk_points"] != 1<<15 {
		t.Fatalf("round-tripped snapshot lost counters/gauges: %+v", back)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRecorder()
	r.Observe(StageWrite, 2*time.Millisecond)
	r.Add(CounterBytesWritten, 1234)
	r.SetMax(GaugeWorkers, 4)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"wall time", "stage write", "bytes_written", "1234", "workers"} {
		if !strings.Contains(out, want) {
			t.Errorf("text rendering missing %q:\n%s", want, out)
		}
	}
}

// TestStageNamesComplete pins that every enum value has a distinct
// name, so snapshots never collapse two stages into one key.
func TestStageNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < numStages; s++ {
		n := s.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Errorf("stage %d has bad or duplicate name %q", s, n)
		}
		seen[n] = true
	}
	for c := Counter(0); c < numCounters; c++ {
		n := c.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Errorf("counter %d has bad or duplicate name %q", c, n)
		}
		seen[n] = true
	}
	for g := Gauge(0); g < numGauges; g++ {
		n := g.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Errorf("gauge %d has bad or duplicate name %q", g, n)
		}
		seen[n] = true
	}
}
