package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// StageSnapshot is the point-in-time view of one stage's timing.
type StageSnapshot struct {
	// Name is the stage's snapshot name (Stage.String).
	Name string `json:"name"`
	// Count is how many times the stage ran.
	Count int64 `json:"count"`
	// TotalNs is the summed wall time of every run, in nanoseconds.
	// Concurrent runs both count in full, so across parallel workers
	// the per-stage totals may exceed Snapshot.WallNs.
	TotalNs int64 `json:"total_ns"`
	// MaxNs is the slowest single run, in nanoseconds.
	MaxNs int64 `json:"max_ns"`
	// Buckets is the latency histogram: only the non-empty log2
	// buckets, in ascending duration order.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty latency histogram bucket.
type BucketCount struct {
	// LoNs is the bucket's inclusive lower duration bound in
	// nanoseconds; the bucket covers [LoNs, 2*LoNs).
	LoNs int64 `json:"lo_ns"`
	// Count is the number of observations that fell in the bucket.
	Count int64 `json:"count"`
}

// Snapshot is a consistent-enough point-in-time copy of a Recorder:
// each value is read atomically, though distinct values may be split
// across concurrent updates. Taken when the pipeline is quiescent
// (after an encode returns) it is exact.
type Snapshot struct {
	// WallNs is the time since the Recorder was created (0 for a zero
	// or nil Recorder).
	WallNs int64 `json:"wall_ns"`
	// Stages holds the stages that ran at least once.
	Stages []StageSnapshot `json:"stages"`
	// Counters holds the non-zero counters, keyed by Counter.String.
	Counters map[string]int64 `json:"counters"`
	// Gauges holds the non-zero gauges, keyed by Gauge.String.
	Gauges map[string]int64 `json:"gauges"`
}

// Snapshot captures the Recorder's current state. On a nil Recorder it
// returns the zero Snapshot. Nil-safe.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
	}
	if r == nil {
		return s
	}
	if !r.start.IsZero() {
		s.WallNs = time.Since(r.start).Nanoseconds()
	}
	for i := Stage(0); i < numStages; i++ {
		st := &r.stages[i]
		count := st.count.Load()
		if count == 0 {
			continue
		}
		ss := StageSnapshot{
			Name:    i.String(),
			Count:   count,
			TotalNs: st.totalNs.Load(),
			MaxNs:   st.maxNs.Load(),
		}
		for b := 0; b < NumBuckets; b++ {
			if c := st.buckets[b].Load(); c > 0 {
				ss.Buckets = append(ss.Buckets, BucketCount{LoNs: int64(1) << uint(b), Count: c})
			}
		}
		s.Stages = append(s.Stages, ss)
	}
	for i := Counter(0); i < numCounters; i++ {
		if v := r.counters[i].Load(); v != 0 {
			s.Counters[i.String()] = v
		}
	}
	for i := Gauge(0); i < numGauges; i++ {
		if v := r.gauges[i].Load(); v != 0 {
			s.Gauges[i.String()] = v
		}
	}
	return s
}

// MergeSnapshots combines per-tenant (or per-pipeline) snapshots into
// one process-wide view: stage counts, totals, and histogram buckets
// are summed; stage MaxNs and WallNs take the maximum (the slowest
// single run, and the longest-lived recorder, stay visible); counters
// are summed; gauges take the maximum, since peak_buffer_bytes-style
// gauges describe a per-pipeline footprint where the largest plan is
// the interesting one. Stages come out in registry order, matching
// Recorder.Snapshot.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
	}
	stages := map[string]*StageSnapshot{}
	for _, s := range snaps {
		if s.WallNs > out.WallNs {
			out.WallNs = s.WallNs
		}
		for _, st := range s.Stages {
			m := stages[st.Name]
			if m == nil {
				m = &StageSnapshot{Name: st.Name}
				stages[st.Name] = m
			}
			m.Count += st.Count
			m.TotalNs += st.TotalNs
			if st.MaxNs > m.MaxNs {
				m.MaxNs = st.MaxNs
			}
			m.Buckets = mergeBuckets(m.Buckets, st.Buckets)
		}
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			if v > out.Gauges[k] {
				out.Gauges[k] = v
			}
		}
	}
	for i := Stage(0); i < numStages; i++ {
		if m := stages[i.String()]; m != nil {
			out.Stages = append(out.Stages, *m)
		}
	}
	return out
}

// mergeBuckets sums two non-empty-bucket lists, keeping the ascending
// LoNs order both inputs maintain.
func mergeBuckets(a, b []BucketCount) []BucketCount {
	if len(b) == 0 {
		return a
	}
	byLo := map[int64]int64{}
	for _, bc := range a {
		byLo[bc.LoNs] += bc.Count
	}
	for _, bc := range b {
		byLo[bc.LoNs] += bc.Count
	}
	out := make([]BucketCount, 0, len(byLo))
	for lo, c := range byLo {
		out = append(out, BucketCount{LoNs: lo, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LoNs < out[j].LoNs })
	return out
}

// Stage returns the snapshot of the named stage, or a zero
// StageSnapshot when the stage never ran.
func (s Snapshot) Stage(name string) StageSnapshot {
	for _, st := range s.Stages {
		if st.Name == name {
			return st
		}
	}
	return StageSnapshot{}
}

// StageTotalNs sums TotalNs across every recorded stage.
func (s Snapshot) StageTotalNs() int64 {
	var total int64
	for _, st := range s.Stages {
		total += st.TotalNs
	}
	return total
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	e := json.NewEncoder(w)
	e.SetIndent("", "  ")
	return e.Encode(s)
}

// WriteText writes the snapshot as an aligned human-readable table:
// one row per stage (count, total, share of the summed stage time,
// mean, max), then the counters and gauges sorted by name.
func (s Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "wall time %s\n", fmtNs(s.WallNs)); err != nil {
		return err
	}
	total := s.StageTotalNs()
	for _, st := range s.Stages {
		share := 0.0
		if total > 0 {
			share = float64(st.TotalNs) / float64(total) * 100
		}
		mean := int64(0)
		if st.Count > 0 {
			mean = st.TotalNs / st.Count
		}
		_, err := fmt.Fprintf(w, "  stage %-10s %8d calls  total %10s (%5.1f%%)  mean %10s  max %10s\n",
			st.Name, st.Count, fmtNs(st.TotalNs), share, fmtNs(mean), fmtNs(st.MaxNs))
		if err != nil {
			return err
		}
	}
	if err := writeKV(w, "counter", s.Counters); err != nil {
		return err
	}
	return writeKV(w, "gauge", s.Gauges)
}

// writeKV prints one sorted name→value section of the text rendering.
func writeKV(w io.Writer, kind string, m map[string]int64) error {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "  %s %-19s %12d\n", kind, k, m[k]); err != nil {
			return err
		}
	}
	return nil
}

// fmtNs renders a nanosecond count with a readable unit.
func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
