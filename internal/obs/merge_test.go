package obs

import (
	"testing"
	"time"
)

func TestMergeSnapshots(t *testing.T) {
	a := NewRecorder()
	a.Observe(StageRatio, time.Millisecond)
	a.Observe(StageRatio, 3*time.Millisecond)
	a.Add(CounterEncodes, 1)
	a.Add(CounterBytesWritten, 100)
	a.SetMax(GaugePeakBufferBytes, 500)

	b := NewRecorder()
	b.Observe(StageRatio, 7*time.Millisecond)
	b.Observe(StageWrite, 2*time.Millisecond)
	b.Add(CounterBytesWritten, 50)
	b.SetMax(GaugePeakBufferBytes, 200)
	b.SetMax(GaugeWorkers, 4)

	sa, sb := a.Snapshot(), b.Snapshot()
	m := MergeSnapshots(sa, sb)

	ratio := m.Stage(StageRatio.String())
	if ratio.Count != 3 {
		t.Errorf("ratio count = %d, want 3", ratio.Count)
	}
	wantTotal := (1 + 3 + 7) * time.Millisecond.Nanoseconds()
	if ratio.TotalNs != wantTotal {
		t.Errorf("ratio total = %d, want %d", ratio.TotalNs, wantTotal)
	}
	if ratio.MaxNs != 7*time.Millisecond.Nanoseconds() {
		t.Errorf("ratio max = %d, want 7ms", ratio.MaxNs)
	}
	var bucketSum int64
	for i, bc := range ratio.Buckets {
		bucketSum += bc.Count
		if i > 0 && ratio.Buckets[i-1].LoNs >= bc.LoNs {
			t.Fatalf("merged buckets out of order: %v", ratio.Buckets)
		}
	}
	if bucketSum != 3 {
		t.Errorf("merged bucket counts sum to %d, want 3", bucketSum)
	}
	if got := m.Stage(StageWrite.String()).Count; got != 1 {
		t.Errorf("write count = %d, want 1", got)
	}
	// Stage order must match the registry: ratio before write.
	if len(m.Stages) != 2 || m.Stages[0].Name != StageRatio.String() || m.Stages[1].Name != StageWrite.String() {
		t.Errorf("stage order = %v", m.Stages)
	}

	if m.Counters[CounterEncodes.String()] != 1 {
		t.Errorf("encodes = %d, want 1", m.Counters[CounterEncodes.String()])
	}
	if m.Counters[CounterBytesWritten.String()] != 150 {
		t.Errorf("bytes_written = %d, want 150", m.Counters[CounterBytesWritten.String()])
	}
	if m.Gauges[GaugePeakBufferBytes.String()] != 500 {
		t.Errorf("peak_buffer_bytes = %d, want max 500", m.Gauges[GaugePeakBufferBytes.String()])
	}
	if m.Gauges[GaugeWorkers.String()] != 4 {
		t.Errorf("workers = %d, want 4", m.Gauges[GaugeWorkers.String()])
	}
	if m.WallNs != max(sa.WallNs, sb.WallNs) {
		t.Errorf("merged WallNs = %d, want max(%d, %d)", m.WallNs, sa.WallNs, sb.WallNs)
	}

	// Merging nothing yields an empty, JSON-safe snapshot.
	empty := MergeSnapshots()
	if empty.WallNs != 0 || len(empty.Stages) != 0 || len(empty.Counters) != 0 || len(empty.Gauges) != 0 {
		t.Errorf("empty merge = %+v", empty)
	}
}
