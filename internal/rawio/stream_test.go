package rawio

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestReaderWindows(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "a.raw")
	if err := WriteFile(path, vals); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1000 {
		t.Fatalf("len = %d", r.Len())
	}
	for _, w := range [][2]int{{0, 1000}, {0, 1}, {999, 1000}, {137, 400}, {500, 500}} {
		lo, hi := w[0], w[1]
		dst := make([]float64, hi-lo)
		if err := r.ReadFloats(dst, lo); err != nil {
			t.Fatalf("window [%d,%d): %v", lo, hi, err)
		}
		for i := range dst {
			if math.Float64bits(dst[i]) != math.Float64bits(vals[lo+i]) {
				t.Fatalf("window [%d,%d): value %d differs", lo, hi, lo+i)
			}
		}
	}
	// Out-of-range windows error.
	if err := r.ReadFloats(make([]float64, 2), 999); err == nil {
		t.Error("window past the end accepted")
	}
	if err := r.ReadFloats(make([]float64, 1), -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestNewReaderRejectsRaggedSize(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 12)), 12); err == nil {
		t.Error("size not a multiple of 8 accepted")
	}
}

func TestWriterMatchesWriteFile(t *testing.T) {
	vals := make([]float64, 9000) // larger than the internal buffer
	for i := range vals {
		vals[i] = math.Sqrt(float64(i))
	}
	dir := t.TempDir()
	want := filepath.Join(dir, "want.raw")
	if err := WriteFile(want, vals); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// Uneven batches, including empty.
	for _, span := range [][2]int{{0, 1}, {1, 1}, {1, 5000}, {5000, 9000}} {
		if err := w.WriteFloats(vals[span[0]:span[1]]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(vals) {
		t.Fatalf("count = %d", w.Count())
	}
	wantRaw, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), wantRaw) {
		t.Fatal("streamed bytes differ from WriteFile")
	}
}
