package rawio

import (
	"math"
	"path/filepath"
	"testing"

	"numarck/internal/faultfs"
)

// crashVals builds a deterministic float series whose bits differ from
// any prefix of another length, so a torn file cannot masquerade as a
// complete one.
func crashVals(n int, seed float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = seed + float64(i)*1.000244140625
	}
	return out
}

// sameBits compares two float slices bit for bit.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestWriteFileCrashMatrix kills WriteFileFS at every mutating
// filesystem operation of its schedule and asserts the atomicity claim:
// after each kill the target file holds either the complete previous
// contents or the complete new ones — never a torn mix — and a retry
// over the crashed state succeeds.
func TestWriteFileCrashMatrix(t *testing.T) {
	oldVals := crashVals(300, 1.5)
	newVals := crashVals(513, -42.25)

	// Probe run: count the mutating ops of one full overwrite.
	probe := filepath.Join(t.TempDir(), "var.f8")
	if err := WriteFile(probe, oldVals); err != nil {
		t.Fatal(err)
	}
	inj := faultfs.NewInjector(faultfs.OS(), 1)
	if err := WriteFileFS(inj, probe, newVals); err != nil {
		t.Fatal(err)
	}
	total := inj.MutatingOps()
	if total < 4 { // create, write, sync, rename, syncdir at minimum
		t.Fatalf("probe saw %d mutating ops, expected the full atomic-write schedule", total)
	}

	for k := 0; k < total; k++ {
		path := filepath.Join(t.TempDir(), "var.f8")
		if err := WriteFile(path, oldVals); err != nil {
			t.Fatal(err)
		}
		inj := faultfs.NewInjector(faultfs.OS(), int64(k+1))
		inj.SetCrashAt(k)
		err := WriteFileFS(inj, path, newVals)
		if !inj.Crashed() {
			t.Fatalf("kill at op %d/%d did not trigger", k+1, total)
		}
		if err == nil {
			t.Fatalf("kill at op %d/%d: WriteFileFS reported success\ntrace: %v", k, total, inj.Trace())
		}
		got, rerr := ReadFile(path)
		if rerr != nil {
			t.Fatalf("kill at op %d/%d left the file unreadable: %v\ntrace: %v", k, total, rerr, inj.Trace())
		}
		if !sameBits(got, oldVals) && !sameBits(got, newVals) {
			t.Errorf("kill at op %d/%d tore the file: %d values, want the complete old (%d) or new (%d)\ntrace: %v",
				k, total, len(got), len(oldVals), len(newVals), inj.Trace())
		}
		// Degraded-mode recovery: a retry over whatever the crash left
		// (including a stray .tmp) must land the new contents.
		if err := WriteFile(path, newVals); err != nil {
			t.Fatalf("retry after kill at op %d/%d: %v", k, total, err)
		}
		got, rerr = ReadFile(path)
		if rerr != nil || !sameBits(got, newVals) {
			t.Errorf("retry after kill at op %d/%d did not converge: %v", k, total, rerr)
		}
	}
}
