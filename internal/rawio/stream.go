package rawio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"numarck/internal/obs"
)

// Reader reads windows of a little-endian float64 array through an
// io.ReaderAt, so out-of-core encoders (internal/chunk) can re-read the
// same region twice — once for table learning, once for assignment —
// without ever holding the whole array in memory.
type Reader struct {
	r   io.ReaderAt
	n   int
	rec *obs.Recorder
}

// SetRecorder attaches an instrumentation recorder: subsequent
// ReadFloats calls report their wall time as StageRead and their byte
// volume as CounterBytesRead. Leave it unset when the reader feeds the
// chunk pipeline — the pipeline times and counts its own source reads,
// and attaching the same recorder at both layers would double-count.
// Not safe to call concurrently with reads.
func (r *Reader) SetRecorder(rec *obs.Recorder) { r.rec = rec }

// NewReader wraps r, which must hold size bytes forming a whole number
// of float64 values.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	if size < 0 || size%8 != 0 {
		return nil, fmt.Errorf("rawio: size %d bytes is not a multiple of 8", size)
	}
	if size/8 > math.MaxInt32 && int64(int(size/8)) != size/8 {
		return nil, fmt.Errorf("rawio: %d values exceed the addressable range", size/8)
	}
	return &Reader{r: r, n: int(size / 8)}, nil
}

// Len returns the number of float64 values.
func (r *Reader) Len() int { return r.n }

// ReadFloats fills dst with the values starting at index off. The
// window [off, off+len(dst)) must lie within the array.
func (r *Reader) ReadFloats(dst []float64, off int) error {
	if off < 0 || off+len(dst) > r.n {
		return fmt.Errorf("rawio: window [%d,%d) outside array of %d values", off, off+len(dst), r.n)
	}
	if len(dst) == 0 {
		return nil
	}
	t := r.rec.Start()
	buf := make([]byte, 8*len(dst))
	_, err := r.r.ReadAt(buf, int64(off)*8)
	t.Stop(obs.StageRead)
	if err != nil {
		return fmt.Errorf("rawio: read window at %d: %w", off, err)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	r.rec.Add(obs.CounterBytesRead, 8*int64(len(dst)))
	return nil
}

// FileReader is a Reader over an open file.
type FileReader struct {
	Reader
	f *os.File
}

// OpenFile opens path as a raw float64 array for windowed reads. The
// caller must Close it.
func OpenFile(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rawio: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		//lint:ignore errcheck close-on-error of a read-only fd; the Stat error takes precedence
		f.Close()
		return nil, fmt.Errorf("rawio: stat %s: %w", path, err)
	}
	r, err := NewReader(f, info.Size())
	if err != nil {
		//lint:ignore errcheck close-on-error of a read-only fd; the size error takes precedence
		f.Close()
		return nil, err
	}
	return &FileReader{Reader: *r, f: f}, nil
}

// Close closes the underlying file.
func (fr *FileReader) Close() error { return fr.f.Close() }

// Writer streams float64 values to an io.Writer in the raw
// little-endian layout, reusing one fixed-size byte buffer regardless
// of how many values pass through.
type Writer struct {
	w     io.Writer
	buf   []byte
	count int
	rec   *obs.Recorder
}

// SetRecorder attaches an instrumentation recorder: subsequent
// WriteFloats calls report their wall time as StageWrite and their
// byte volume as CounterBytesWritten. Not safe to call concurrently
// with writes.
func (w *Writer) SetRecorder(rec *obs.Recorder) { w.rec = rec }

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 8*4096)}
}

// WriteFloats appends vals to the stream.
func (w *Writer) WriteFloats(vals []float64) error {
	t := w.rec.Start()
	defer t.Stop(obs.StageWrite)
	w.rec.Add(obs.CounterBytesWritten, 8*int64(len(vals)))
	for len(vals) > 0 {
		batch := len(w.buf) / 8
		if batch > len(vals) {
			batch = len(vals)
		}
		for i := 0; i < batch; i++ {
			binary.LittleEndian.PutUint64(w.buf[8*i:], math.Float64bits(vals[i]))
		}
		if _, err := w.w.Write(w.buf[:8*batch]); err != nil {
			return err
		}
		w.count += batch
		vals = vals[batch:]
	}
	return nil
}

// Count returns the number of values written so far.
func (w *Writer) Count() int { return w.count }
