package rawio

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vals.f64")
	vals := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	if err := WriteFile(path, vals); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("len %d", len(got))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Errorf("value %d: %v vs %v", i, got[i], vals[i])
		}
	}
}

func TestEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.f64")
	if err := WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil || len(got) != 0 {
		t.Errorf("empty read: %v, %v", got, err)
	}
}

func TestReadRejectsBadLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.f64")
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("3-byte file accepted")
	}
}

func TestReadMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.f64")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(vals []float64) bool {
		i++
		path := filepath.Join(dir, "q.f64")
		if err := WriteFile(path, vals); err != nil {
			return false
		}
		got, err := ReadFile(path)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for j := range vals {
			if math.Float64bits(got[j]) != math.Float64bits(vals[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
