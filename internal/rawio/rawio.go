// Package rawio reads and writes raw little-endian float64 arrays, the
// interchange format of the CLI tools (one value per 8 bytes, no
// header) — the same layout scientific dumps and `od -t f8` use.
//
// All mutating filesystem access goes through a faultfs.FS, so the
// crash-injection harness can kill a write at every mutating operation
// and prove the atomicity claim; WriteFile and ReadFile are the
// real-filesystem conveniences.
package rawio

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"

	"numarck/internal/faultfs"
)

// WriteFileFS writes vals to path as little-endian float64s through
// fsys. The write is atomic and durable: bytes go to a .tmp sibling
// that is fsynced and renamed over path, with the directory fsynced
// after, so a crash leaves either the complete new file or the previous
// one, never a torn mix.
func WriteFileFS(fsys faultfs.FS, path string, vals []float64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if err := faultfs.WriteFileAtomic(fsys, filepath.Dir(path), path, buf); err != nil {
		return fmt.Errorf("rawio: write %s: %w", path, err)
	}
	return nil
}

// WriteFile writes vals to path on the real filesystem; see WriteFileFS.
func WriteFile(path string, vals []float64) error {
	return WriteFileFS(faultfs.OS(), path, vals)
}

// ReadFileFS reads a little-endian float64 array from path through fsys.
func ReadFileFS(fsys faultfs.FS, path string) ([]float64, error) {
	raw, err := faultfs.ReadFile(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("rawio: read %s: %w", path, err)
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("rawio: %s has %d bytes, not a multiple of 8", path, len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}

// ReadFile reads a little-endian float64 array from path on the real
// filesystem.
func ReadFile(path string) ([]float64, error) {
	return ReadFileFS(faultfs.OS(), path)
}
