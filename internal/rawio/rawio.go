// Package rawio reads and writes raw little-endian float64 arrays, the
// interchange format of the CLI tools (one value per 8 bytes, no
// header) — the same layout scientific dumps and `od -t f8` use.
package rawio

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
)

// WriteFile writes vals to path as little-endian float64s.
func WriteFile(path string, vals []float64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return os.WriteFile(path, buf, 0o644)
}

// ReadFile reads a little-endian float64 array from path.
func ReadFile(path string) ([]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("rawio: %s has %d bytes, not a multiple of 8", path, len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}
