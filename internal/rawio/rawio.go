// Package rawio reads and writes raw little-endian float64 arrays, the
// interchange format of the CLI tools (one value per 8 bytes, no
// header) — the same layout scientific dumps and `od -t f8` use.
package rawio

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// WriteFile writes vals to path as little-endian float64s. The write is
// atomic and durable: bytes go to a .tmp sibling that is fsynced and
// renamed over path, so a crash leaves either the complete new file or
// the previous one, never a torn mix.
func WriteFile(path string, vals []float64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(buf)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		//lint:ignore errcheck best-effort cleanup of a failed temp file
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		//lint:ignore errcheck best-effort cleanup of a failed temp file
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// ReadFile reads a little-endian float64 array from path.
func ReadFile(path string) ([]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("rawio: %s has %d bytes, not a multiple of 8", path, len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}
