package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-15) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestMeanKahanStability(t *testing.T) {
	// 1e8 + many tiny values: naive float32-style accumulation would
	// drop them; Kahan keeps the mean exact to near machine epsilon.
	xs := make([]float64, 1_000_001)
	xs[0] = 1e8
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-8
	}
	want := (1e8 + 1e-8*1e6) / 1_000_001
	if got := Mean(xs); !almostEqual(got, want, 1e-9) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance(nil) != 0 {
		t.Error("Variance(nil) != 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v,%v,%v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("MinMax(nil) err = %v", err)
	}
}

func TestRMSE(t *testing.T) {
	d := []float64{1, 2, 3}
	dp := []float64{1, 2, 3}
	got, err := RMSE(d, dp)
	if err != nil || got != 0 {
		t.Errorf("identical RMSE = %v, %v", got, err)
	}
	dp = []float64{2, 3, 4}
	got, _ = RMSE(d, dp)
	if !almostEqual(got, 1, 1e-15) {
		t.Errorf("offset RMSE = %v, want 1", got)
	}
	if _, err := RMSE(d, dp[:2]); !errors.Is(err, ErrLength) {
		t.Errorf("length mismatch err = %v", err)
	}
	if _, err := RMSE(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
}

func TestPearson(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5}
	// Perfect positive linear relation.
	dp := []float64{2, 4, 6, 8, 10}
	got, err := Pearson(d, dp)
	if err != nil || !almostEqual(got, 1, 1e-12) {
		t.Errorf("linear Pearson = %v, %v", got, err)
	}
	// Perfect negative.
	neg := []float64{5, 4, 3, 2, 1}
	got, _ = Pearson(d, neg)
	if !almostEqual(got, -1, 1e-12) {
		t.Errorf("negative Pearson = %v, want -1", got)
	}
	// Constant vectors: equal → 1, different → 0.
	c1 := []float64{7, 7, 7}
	got, _ = Pearson(c1, []float64{7, 7, 7})
	if got != 1 {
		t.Errorf("equal constant Pearson = %v, want 1", got)
	}
	got, _ = Pearson(c1, []float64{7, 8, 7})
	if got != 0 {
		t.Errorf("constant-vs-varying Pearson = %v, want 0", got)
	}
	if _, err := Pearson(d, d[:2]); !errors.Is(err, ErrLength) {
		t.Errorf("length mismatch err = %v", err)
	}
}

func TestMeanMaxAbsError(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1.5, 2, 2}
	mean, err := MeanAbsError(a, b)
	if err != nil || !almostEqual(mean, 0.5, 1e-15) {
		t.Errorf("MeanAbsError = %v, %v", mean, err)
	}
	max, err := MaxAbsError(a, b)
	if err != nil || max != 1 {
		t.Errorf("MaxAbsError = %v, %v", max, err)
	}
	if _, err := MeanAbsError(a, b[:1]); !errors.Is(err, ErrLength) {
		t.Errorf("MeanAbsError mismatch err = %v", err)
	}
	if _, err := MaxAbsError(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("MaxAbsError empty err = %v", err)
	}
}

func TestCompressionRatioEq3(t *testing.T) {
	// Hand-computed: n=12960 (the 144x90 CMIP5 grid), γ=0, B=9:
	// R = 1 - 9/64 - 511/12960 = 0.82000... in percent ≈ 81.99 %.
	r, err := CompressionRatio(12960, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - 9.0/64 - 511.0/12960) * 100
	if !almostEqual(r, want, 1e-9) {
		t.Errorf("R = %v, want %v", r, want)
	}
	// γ=1 means every point raw plus the table: negative saving.
	r, _ = CompressionRatio(100, 1, 8)
	if r >= 0 {
		t.Errorf("all-incompressible R = %v, want negative", r)
	}
	// Bitmap-inclusive variant is exactly 100/64 lower.
	rb, err := CompressionRatioWithBitmap(12960, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r2diff(r2(12960, 0, 9), rb), 100.0/64, 1e-9) {
		t.Errorf("bitmap overhead = %v, want %v", r2diff(r2(12960, 0, 9), rb), 100.0/64)
	}
}

func r2(n int, g float64, b int) float64 {
	r, _ := CompressionRatio(n, g, b)
	return r
}
func r2diff(a, b float64) float64 { return a - b }

func TestCompressionRatioValidation(t *testing.T) {
	if _, err := CompressionRatio(0, 0, 8); !errors.Is(err, ErrEmpty) {
		t.Errorf("n=0 err = %v", err)
	}
	if _, err := CompressionRatio(10, -0.1, 8); err == nil {
		t.Error("negative gamma accepted")
	}
	if _, err := CompressionRatio(10, 1.1, 8); err == nil {
		t.Error("gamma > 1 accepted")
	}
	for _, b := range []int{0, 33} {
		if _, err := CompressionRatio(10, 0, b); err == nil {
			t.Errorf("bits=%d accepted", b)
		}
	}
}

func TestCompressionRatioMonotoneInGamma(t *testing.T) {
	// More incompressible points can only hurt the ratio.
	prev := math.Inf(1)
	for g := 0.0; g <= 1.0; g += 0.05 {
		r, err := CompressionRatio(10000, g, 8)
		if err != nil {
			t.Fatal(err)
		}
		if r > prev {
			t.Fatalf("R increased from %v to %v at γ=%v", prev, r, g)
		}
		prev = r
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.9, 1.0}
	h, err := NewHistogram(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 0.1 fall in [0, 0.1)... 0.1 is bin 1
		// 0→bin0, 0.1→bin1, 0.2→bin2, 0.9→bin9, 1.0→bin9 (clamped)
		t.Logf("counts = %v", h.Counts)
	}
	if h.BinOf(1.0) != 9 {
		t.Errorf("BinOf(max) = %d, want 9", h.BinOf(1.0))
	}
	if h.BinOf(0) != 0 {
		t.Errorf("BinOf(min) = %d, want 0", h.BinOf(0))
	}
	if !almostEqual(h.BinWidth(), 0.1, 1e-15) {
		t.Errorf("BinWidth = %v", h.BinWidth())
	}
	if !almostEqual(h.BinCenter(0), 0.05, 1e-15) {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{3, 3, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Errorf("constant data: counts = %v", h.Counts)
	}
	if _, err := NewHistogram(nil, 5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestHistogramTotalInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		h, err := NewHistogram(xs, 7)
		if err != nil {
			return false
		}
		return h.Total() == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFractionWithin(t *testing.T) {
	xs := []float64{0.001, -0.002, 0.5, -0.7, 0}
	if got := FractionWithin(xs, 0.005); !almostEqual(got, 0.6, 1e-15) {
		t.Errorf("FractionWithin = %v, want 0.6", got)
	}
	if FractionWithin(nil, 1) != 0 {
		t.Error("FractionWithin(nil) != 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	q, err := Quantile(xs, 0.5)
	if err != nil || !almostEqual(q, 2.5, 1e-15) {
		t.Errorf("median = %v, %v", q, err)
	}
	q, _ = Quantile(xs, 0)
	if q != 1 {
		t.Errorf("q0 = %v", q)
	}
	q, _ = Quantile(xs, 1)
	if q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q>1 accepted")
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
	q, err = Quantile([]float64{9}, 0.3)
	if err != nil || q != 9 {
		t.Errorf("single-element quantile = %v, %v", q, err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{0.001, 0.002, 0.003, 0.1}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Min != 0.001 || s.Max != 0.1 {
		t.Errorf("Summary = %+v", s)
	}
	if !almostEqual(s.FracBelowHalfP, 0.75, 1e-15) {
		t.Errorf("FracBelowHalfP = %v", s.FracBelowHalfP)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
}

func TestPearsonSelfCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	got, err := Pearson(xs, xs)
	if err != nil || !almostEqual(got, 1, 1e-12) {
		t.Errorf("self Pearson = %v, %v", got, err)
	}
}

func TestRMSEScaleInvariance(t *testing.T) {
	// RMSE of (d, d+c) is |c| for any constant shift.
	f := func(shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e100 {
			return true
		}
		d := []float64{1, 2, 3, 4}
		dp := make([]float64, len(d))
		for i := range d {
			dp[i] = d[i] + shift
		}
		got, err := RMSE(d, dp)
		return err == nil && almostEqual(got, math.Abs(shift), 1e-9*(1+math.Abs(shift)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
