// Package stats implements the evaluation metrics used throughout the
// NUMARCK paper (§III-B): mean and maximum error rate, incompressible
// ratio, compression ratio (Eq. 3), Pearson's correlation coefficient,
// and root mean square error, plus histogram utilities used by the
// binning strategies and by Fig. 1/Fig. 3 reproductions.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"numarck/internal/fputil"
)

// ErrEmpty reports a metric request over an empty data set.
var ErrEmpty = errors.New("stats: empty input")

// ErrLength reports mismatched vector lengths.
var ErrLength = errors.New("stats: length mismatch")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Kahan summation: experiment vectors reach 10^6+ elements with
	// values spanning many orders of magnitude.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than one
// element).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest element of xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// RMSE returns the root mean square error ξ between the original vector
// d and the reconstructed vector dp (paper Eq. 4).
func RMSE(d, dp []float64) (float64, error) {
	if len(d) != len(dp) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLength, len(d), len(dp))
	}
	if len(d) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range d {
		e := d[i] - dp[i]
		sum += e * e
	}
	return math.Sqrt(sum / float64(len(d))), nil
}

// Pearson returns the Pearson correlation coefficient ρ between d and dp.
// When either vector is constant the correlation is undefined; Pearson
// returns 1 if the vectors are element-wise equal and 0 otherwise, which
// matches how compression papers score a perfectly reconstructed
// constant field.
func Pearson(d, dp []float64) (float64, error) {
	if len(d) != len(dp) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLength, len(d), len(dp))
	}
	if len(d) == 0 {
		return 0, ErrEmpty
	}
	md, mdp := Mean(d), Mean(dp)
	var num, dd, ddp float64
	for i := range d {
		a := d[i] - md
		b := dp[i] - mdp
		num += a * b
		dd += a * a
		ddp += b * b
	}
	if fputil.IsZero(dd) || fputil.IsZero(ddp) {
		equal := true
		for i := range d {
			if !fputil.Eq(d[i], dp[i]) {
				equal = false
				break
			}
		}
		if equal {
			return 1, nil
		}
		return 0, nil
	}
	return num / math.Sqrt(dd*ddp), nil
}

// MeanAbsError returns the mean of |a[i]-b[i]|. Used for the paper's
// "mean error rate": the average difference between approximated and
// real change ratios.
func MeanAbsError(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLength, len(a), len(b))
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a)), nil
}

// MaxAbsError returns max |a[i]-b[i]| (the paper's maximum error rate).
func MaxAbsError(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLength, len(a), len(b))
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	var m float64
	for i := range a {
		if e := math.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m, nil
}

// CompressionRatio implements the paper's Eq. 3: the fraction of storage
// saved by NUMARCK for n points when gamma (γ) of them are stored as raw
// 64-bit values, the rest as b-bit indices, plus a table of 2^b-1
// 64-bit representative ratios.
//
//	R = ( |D| - ((1-γ)·b/64·n + γ·n + (2^b - 1)) · 64 bits ) / |D|
//
// with |D| = 64·n bits. The result is expressed in percent, matching the
// tables in the paper. The paper's formula does not account for the
// compressibility bitmap; see CompressionRatioWithBitmap for the
// self-contained-format figure.
func CompressionRatio(n int, gamma float64, b int) (float64, error) {
	if n <= 0 {
		return 0, ErrEmpty
	}
	if b < 1 || b > 32 {
		return 0, fmt.Errorf("stats: index bits %d out of range [1,32]", b)
	}
	if gamma < 0 || gamma > 1 {
		return 0, fmt.Errorf("stats: incompressible ratio %v out of range [0,1]", gamma)
	}
	total := 64 * float64(n)
	used := (1-gamma)*float64(b)*float64(n) + gamma*64*float64(n) + float64((uint64(1)<<uint(b))-1)*64
	return (total - used) / total * 100, nil
}

// CompressionRatioWithBitmap is CompressionRatio plus one bit per point
// for the incompressibility bitmap the on-disk format actually needs.
func CompressionRatioWithBitmap(n int, gamma float64, b int) (float64, error) {
	r, err := CompressionRatio(n, gamma, b)
	if err != nil {
		return 0, err
	}
	// Subtract the bitmap cost: 1 bit per point out of 64 ⇒ 100/64 %.
	return r - 100.0/64.0, nil
}

// Histogram is an equal-width histogram over [Min, Max] with len(Counts)
// bins. Values equal to Max are assigned to the last bin.
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a k-bin equal-width histogram of xs over the data
// range. All xs must be finite.
func NewHistogram(xs []float64, k int) (*Histogram, error) {
	if k <= 0 {
		return nil, fmt.Errorf("stats: histogram needs k>0, got %d", k)
	}
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	lo, hi, err := MinMax(xs)
	if err != nil {
		return nil, err
	}
	h := &Histogram{Min: lo, Max: hi, Counts: make([]int, k)}
	for _, x := range xs {
		h.Counts[h.BinOf(x)]++
	}
	return h, nil
}

// BinOf returns the bin index of x, clamped to [0, k-1].
func (h *Histogram) BinOf(x float64) int {
	k := len(h.Counts)
	if fputil.Eq(h.Max, h.Min) {
		return 0
	}
	i := int(float64(k) * (x - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	}
	if i >= k {
		i = k - 1
	}
	return i
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	k := len(h.Counts)
	w := (h.Max - h.Min) / float64(k)
	return h.Min + (float64(i)+0.5)*w
}

// BinWidth returns the common width of the bins.
func (h *Histogram) BinWidth() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// Total returns the number of samples in the histogram.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// FractionWithin returns the fraction of xs whose absolute value is
// strictly below thresh. Used to reproduce the paper's "more than 75% of
// rlus data changes less than 0.5%" observation (Fig. 1D).
func FractionWithin(xs []float64, thresh float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if math.Abs(x) < thresh {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Quantile returns the q-quantile (0<=q<=1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Summary bundles the descriptive statistics printed by the experiment
// harness for a vector of values.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	P25, P50, P75  float64
	FracBelowHalfP float64 // fraction with |x| < 0.005 (0.5 %)
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	lo, hi, _ := MinMax(xs)
	p25, _ := Quantile(xs, 0.25)
	p50, _ := Quantile(xs, 0.50)
	p75, _ := Quantile(xs, 0.75)
	return Summary{
		N:              len(xs),
		Mean:           Mean(xs),
		Std:            StdDev(xs),
		Min:            lo,
		Max:            hi,
		P25:            p25,
		P50:            p50,
		P75:            p75,
		FracBelowHalfP: FractionWithin(xs, 0.005),
	}, nil
}
