// Package bsplines implements the "B-Splines" lossy compression
// baseline of the NUMARCK paper (Chou & Piegl, ref [7]): the data
// vector of one iteration is least-squares fitted by a cubic B-spline
// curve with P_S control points, and only the control points are
// stored. The paper sets P_S = 0.8·n, which pins the compression ratio
// at 20 % for every dataset in Table I.
package bsplines

import (
	"errors"
	"fmt"

	"numarck/internal/bspline"
)

// DefaultControlFraction is the paper's P_S/n = 0.8.
const DefaultControlFraction = 0.8

// ErrInput reports an invalid compression request.
var ErrInput = errors.New("bsplines: invalid input")

// Compressed is a B-spline-compressed data vector.
type Compressed struct {
	// N is the original number of samples.
	N int
	// Curve holds the fitted control points.
	Curve *bspline.Curve
}

// Compress fits data with round(frac·len(data)) control points
// (minimum 4). frac must be in (0, 1].
func Compress(data []float64, frac float64) (*Compressed, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty data", ErrInput)
	}
	if !(frac > 0 && frac <= 1) {
		return nil, fmt.Errorf("%w: control fraction %v out of (0,1]", ErrInput, frac)
	}
	p := int(frac * float64(len(data)))
	if p < bspline.Degree+1 {
		p = bspline.Degree + 1
	}
	if p > len(data) {
		p = len(data)
	}
	curve, err := bspline.Fit(data, p)
	if err != nil {
		return nil, err
	}
	return &Compressed{N: len(data), Curve: curve}, nil
}

// Decompress reconstructs the data vector by sampling the curve.
func (c *Compressed) Decompress() []float64 {
	return c.Curve.EvalSamples(c.N)
}

// SizeBits returns the storage cost the paper charges the baseline:
// P_S 64-bit control points.
func (c *Compressed) SizeBits() int {
	return 64 * len(c.Curve.Ctrl)
}

// CompressionRatio returns the storage saving in percent relative to
// storing N raw float64 values.
func (c *Compressed) CompressionRatio() float64 {
	raw := 64 * c.N
	return float64(raw-c.SizeBits()) / float64(raw) * 100
}
