package bsplines

import (
	"errors"
	"math"
	"testing"
)

func TestPaperRatioIsTwentyPercent(t *testing.T) {
	// With P_S = 0.8 n, Table I pins B-Splines at 20±0.000.
	data := make([]float64, 12960)
	for i := range data {
		data[i] = math.Sin(float64(i) * 0.01)
	}
	c, err := Compress(data, DefaultControlFraction)
	if err != nil {
		t.Fatal(err)
	}
	if r := c.CompressionRatio(); math.Abs(r-20) > 0.01 {
		t.Errorf("ratio = %v, want 20", r)
	}
}

func TestRoundTripAccuracy(t *testing.T) {
	n := 2000
	data := make([]float64, n)
	for i := range data {
		x := float64(i) / float64(n-1)
		data[i] = 3*math.Sin(5*x) + x*x
	}
	c, err := Compress(data, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rec := c.Decompress()
	if len(rec) != n {
		t.Fatalf("len = %d", len(rec))
	}
	for i := range data {
		if math.Abs(rec[i]-data[i]) > 1e-6 {
			t.Fatalf("sample %d: %v vs %v", i, rec[i], data[i])
		}
	}
}

func TestSmallFraction(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i)
	}
	c, err := Compress(data, 0.05) // 5 control points
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Curve.Ctrl) != 5 {
		t.Errorf("ctrl points = %d", len(c.Curve.Ctrl))
	}
	// Linear data is still exact with any P >= 4.
	rec := c.Decompress()
	for i := range data {
		if math.Abs(rec[i]-data[i]) > 1e-8*100 {
			t.Fatalf("linear data sample %d: %v vs %v", i, rec[i], data[i])
		}
	}
}

func TestFractionFloorsAtDegreePlusOne(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	c, err := Compress(data, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Curve.Ctrl) != 4 {
		t.Errorf("ctrl points = %d, want 4", len(c.Curve.Ctrl))
	}
}

func TestErrors(t *testing.T) {
	if _, err := Compress(nil, 0.8); !errors.Is(err, ErrInput) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Compress([]float64{1, 2, 3, 4, 5}, 0); !errors.Is(err, ErrInput) {
		t.Errorf("frac=0: %v", err)
	}
	if _, err := Compress([]float64{1, 2, 3, 4, 5}, 1.5); !errors.Is(err, ErrInput) {
		t.Errorf("frac>1: %v", err)
	}
	if _, err := Compress([]float64{1, 2, 3, 4, 5}, math.NaN()); !errors.Is(err, ErrInput) {
		t.Errorf("frac NaN: %v", err)
	}
}

func TestTinyInput(t *testing.T) {
	c, err := Compress([]float64{1, 2, 3, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := c.Decompress()
	for i, v := range []float64{1, 2, 3, 4} {
		if math.Abs(rec[i]-v) > 1e-9 {
			t.Errorf("tiny input sample %d: %v vs %v", i, rec[i], v)
		}
	}
}

func TestSizeBits(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i)
	}
	c, err := Compress(data, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if c.SizeBits() != 80*64 {
		t.Errorf("SizeBits = %d, want %d", c.SizeBits(), 80*64)
	}
}
