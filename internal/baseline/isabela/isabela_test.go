package isabela

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestPaperRatios(t *testing.T) {
	// Table I: W₀=512, P_I=30 gives 80.078 %; W₀=256 gives 75.781 %
	// (for data whose length is a multiple of the window).
	data := make([]float64, 512*10)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	c, err := Compress(data, 512, DefaultCoefficients)
	if err != nil {
		t.Fatal(err)
	}
	if r := c.CompressionRatio(); math.Abs(r-80.078125) > 1e-9 {
		t.Errorf("W=512 ratio = %v, want 80.078125", r)
	}
	c, err = Compress(data, 256, DefaultCoefficients)
	if err != nil {
		t.Fatal(err)
	}
	if r := c.CompressionRatio(); math.Abs(r-75.78125) > 1e-9 {
		t.Errorf("W=256 ratio = %v, want 75.78125", r)
	}
}

func TestRoundTripHighCorrelation(t *testing.T) {
	// ISABELA's selling point: >= 0.99 correlation on hard data.
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 2048)
	for i := range data {
		data[i] = rng.NormFloat64() * 100
	}
	c, err := Compress(data, 512, 30)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != len(data) {
		t.Fatalf("len = %d", len(rec))
	}
	// Pearson by hand to avoid importing stats (keeps the baseline
	// dependency-light).
	var md, mr float64
	for i := range data {
		md += data[i]
		mr += rec[i]
	}
	md /= float64(len(data))
	mr /= float64(len(data))
	var num, dd, rr float64
	for i := range data {
		a, b := data[i]-md, rec[i]-mr
		num += a * b
		dd += a * a
		rr += b * b
	}
	rho := num / math.Sqrt(dd*rr)
	if rho < 0.99 {
		t.Errorf("correlation = %v, want >= 0.99", rho)
	}
}

func TestPermutationRestoresOrder(t *testing.T) {
	// A strictly increasing sequence sorts to itself; a reversed one
	// must be un-permuted exactly.
	n := 512
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(n - i)
	}
	c, err := Compress(data, 512, 30)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction must be monotone decreasing like the input.
	for i := 1; i < n; i++ {
		if rec[i] > rec[i-1]+1e-6 {
			t.Fatalf("order not restored at %d: %v > %v", i, rec[i], rec[i-1])
		}
	}
	// And close in value: the sorted curve is linear, hence exact.
	for i := range data {
		if math.Abs(rec[i]-data[i]) > 1e-6*float64(n) {
			t.Fatalf("value %d: %v vs %v", i, rec[i], data[i])
		}
	}
}

func TestPartialTailWindow(t *testing.T) {
	data := make([]float64, 512+100)
	rng := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = rng.Float64()
	}
	c, err := Compress(data, 512, 30)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != len(data) {
		t.Fatalf("len = %d, want %d", len(rec), len(data))
	}
}

func TestTinyTailWindow(t *testing.T) {
	// Tail smaller than degree+1 stores values verbatim.
	data := make([]float64, 512+2)
	for i := range data {
		data[i] = float64(i)
	}
	c, err := Compress(data, 512, 30)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if rec[512] != 512 || rec[513] != 513 {
		t.Errorf("tail = %v, %v", rec[512], rec[513])
	}
}

func TestErrors(t *testing.T) {
	if _, err := Compress(nil, 512, 30); !errors.Is(err, ErrInput) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Compress([]float64{1}, 100, 30); !errors.Is(err, ErrInput) {
		t.Errorf("non-power-of-two window: %v", err)
	}
	if _, err := Compress([]float64{1}, 4, 30); !errors.Is(err, ErrInput) {
		t.Errorf("window too small: %v", err)
	}
	if _, err := Compress([]float64{1}, 512, 2); !errors.Is(err, ErrInput) {
		t.Errorf("coeffs too small: %v", err)
	}
}

func TestPermBits(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {255, 8}, {256, 8}, {257, 9}, {512, 9},
	}
	for _, c := range cases {
		if got := permBits(c.n); got != c.want {
			t.Errorf("permBits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestConstantWindow(t *testing.T) {
	data := make([]float64, 512)
	for i := range data {
		data[i] = 5.5
	}
	c, err := Compress(data, 512, 30)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rec {
		if math.Abs(v-5.5) > 1e-9 {
			t.Fatalf("constant window value %d = %v", i, v)
		}
	}
}

func BenchmarkCompress512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 12960)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, 512, 30); err != nil {
			b.Fatal(err)
		}
	}
}
