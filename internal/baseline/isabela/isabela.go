// Package isabela implements the ISABELA lossy compression baseline of
// Lakshminarasimhan et al. (ref [15] of the NUMARCK paper): the data
// vector is split into windows of W₀ values, each window is sorted
// (making it monotone and therefore extremely smooth), the sorted curve
// is fitted with a cubic B-spline of P_I coefficients, and the sorting
// permutation is stored as ⌈log₂ W₀⌉-bit indices so decompression can
// undo the sort.
//
// Storage per full window is W₀·log₂(W₀) bits of permutation plus
// P_I·64 bits of coefficients, which for the paper's W₀=512, P_I=30
// yields the 80.078 % ratio in Table I (75.781 % for W₀=256).
package isabela

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"numarck/internal/bitpack"
	"numarck/internal/bspline"
)

// DefaultCoefficients is the paper-suggested P_I = 30.
const DefaultCoefficients = 30

// ErrInput reports an invalid compression request.
var ErrInput = errors.New("isabela: invalid input")

// window is one compressed window: the sorting permutation and the
// spline fitted to the sorted values.
type window struct {
	n     int
	perm  []byte // packed permutation indices
	curve *bspline.Curve
}

// Compressed is an ISABELA-compressed data vector.
type Compressed struct {
	N          int
	WindowSize int
	Coeffs     int
	windows    []window
}

// Compress encodes data with windows of windowSize values and coeffs
// B-spline coefficients per window. windowSize must be a power of two
// >= 8 (the paper uses 256 and 512); coeffs >= 4.
func Compress(data []float64, windowSize, coeffs int) (*Compressed, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty data", ErrInput)
	}
	if windowSize < 8 || windowSize&(windowSize-1) != 0 {
		return nil, fmt.Errorf("%w: window size %d must be a power of two >= 8", ErrInput, windowSize)
	}
	if coeffs < bspline.Degree+1 {
		return nil, fmt.Errorf("%w: need at least %d coefficients, got %d", ErrInput, bspline.Degree+1, coeffs)
	}
	c := &Compressed{N: len(data), WindowSize: windowSize, Coeffs: coeffs}
	for lo := 0; lo < len(data); lo += windowSize {
		hi := lo + windowSize
		if hi > len(data) {
			hi = len(data)
		}
		w, err := compressWindow(data[lo:hi], coeffs)
		if err != nil {
			return nil, fmt.Errorf("isabela: window at %d: %w", lo, err)
		}
		c.windows = append(c.windows, w)
	}
	return c, nil
}

func compressWindow(data []float64, coeffs int) (window, error) {
	n := len(data)
	// Sort with an explicit permutation: perm[r] is the original
	// position of the r-th smallest value.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return data[perm[a]] < data[perm[b]] })
	sorted := make([]float64, n)
	for r, p := range perm {
		sorted[r] = data[p]
	}
	p := coeffs
	if p > n {
		p = n
	}
	if p < bspline.Degree+1 {
		p = bspline.Degree + 1
	}
	var curve *bspline.Curve
	if n < bspline.Degree+1 {
		// Degenerate tail window: store values as "control points"
		// verbatim (still counted at 64 bits each).
		curve = &bspline.Curve{Ctrl: append([]float64(nil), sorted...)}
	} else {
		var err error
		curve, err = bspline.Fit(sorted, p)
		if err != nil {
			return window{}, err
		}
	}
	permU32 := make([]uint32, n)
	for r, pi := range perm {
		//lint:ignore bindex perm entries index one window, far below 2^32
		permU32[r] = uint32(pi)
	}
	packed, err := bitpack.Pack(permU32, permBits(n))
	if err != nil {
		return window{}, err
	}
	return window{n: n, perm: packed, curve: curve}, nil
}

// permBits returns the index width for a window of n values.
func permBits(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// Decompress reconstructs the full data vector.
func (c *Compressed) Decompress() ([]float64, error) {
	out := make([]float64, 0, c.N)
	for wi, w := range c.windows {
		perm, err := bitpack.Unpack(w.perm, w.n, permBits(w.n))
		if err != nil {
			return nil, fmt.Errorf("isabela: window %d: %w", wi, err)
		}
		var sortedRec []float64
		if w.n < bspline.Degree+1 {
			sortedRec = append([]float64(nil), w.curve.Ctrl...)
		} else {
			sortedRec = w.curve.EvalSamples(w.n)
		}
		vals := make([]float64, w.n)
		for r, p := range perm {
			if int(p) >= w.n {
				return nil, fmt.Errorf("isabela: window %d: permutation index %d out of range", wi, p)
			}
			vals[p] = sortedRec[r]
		}
		out = append(out, vals...)
	}
	return out, nil
}

// SizeBits returns the storage the paper charges ISABELA: per window,
// n·⌈log₂ W₀⌉ permutation bits plus the coefficient payload.
func (c *Compressed) SizeBits() int {
	total := 0
	for _, w := range c.windows {
		total += w.n*permBits(w.n) + 64*len(w.curve.Ctrl)
	}
	return total
}

// CompressionRatio returns the storage saving in percent relative to
// storing N raw float64 values.
func (c *Compressed) CompressionRatio() float64 {
	raw := 64 * c.N
	return float64(raw-c.SizeBits()) / float64(raw) * 100
}
