package anomaly

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// series returns iters+1 checkpoints of a smooth synthetic field.
func series(n, iters int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, iters+1)
	out[0] = make([]float64, n)
	for j := range out[0] {
		out[0][j] = 50 + rng.Float64()*100
	}
	for i := 1; i <= iters; i++ {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = out[i-1][j] * (1 + rng.NormFloat64()*0.002)
		}
	}
	return out
}

func feed(t *testing.T, d *Detector, s [][]float64, upTo int) *Report {
	t.Helper()
	var rep *Report
	for i := 1; i <= upTo; i++ {
		var err error
		rep, err = d.Observe(s[i-1], s[i])
		if err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	return rep
}

func TestCleanSeriesNoAlarms(t *testing.T) {
	s := series(5000, 12, 1)
	d := New(Config{})
	for i := 1; i <= 12; i++ {
		rep, err := d.Observe(s[i-1], s[i])
		if err != nil {
			t.Fatal(err)
		}
		if rep.DistributionAlarm {
			t.Errorf("iteration %d: spurious distribution alarm (JS %v)", i, rep.Divergence)
		}
		if len(rep.Flagged) > 5000/200 {
			t.Errorf("iteration %d: %d false-positive points", i, len(rep.Flagged))
		}
	}
}

func TestWarmupRaisesNothing(t *testing.T) {
	s := series(100, 3, 2)
	d := New(Config{MinHistory: 3})
	for i := 1; i <= 3; i++ {
		rep, err := d.Observe(s[i-1], s[i])
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Warmup {
			t.Errorf("iteration %d not marked warmup", i)
		}
		if len(rep.Flagged) != 0 || rep.DistributionAlarm {
			t.Errorf("iteration %d raised alarms during warmup", i)
		}
	}
}

func TestDetectsExponentBitFlip(t *testing.T) {
	s := series(5000, 8, 3)
	d := New(Config{})
	feed(t, d, s, 7)

	corrupted := append([]float64(nil), s[8]...)
	// Flip a high exponent bit: value changes by many orders of
	// magnitude.
	orig, err := InjectBitFlip(corrupted, 1234, 62)
	if err != nil {
		t.Fatal(err)
	}
	if corrupted[1234] == orig {
		t.Fatal("bit flip did not change the value")
	}
	rep, err := d.Observe(s[7], corrupted)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range rep.Flagged {
		if j == 1234 {
			found = true
		}
	}
	if !found {
		t.Errorf("exponent bit flip at 1234 not flagged (flagged: %v, threshold %v)", rep.Flagged, rep.TailThreshold)
	}
}

func TestDetectsNaNProducingFlip(t *testing.T) {
	s := series(2000, 8, 4)
	d := New(Config{})
	feed(t, d, s, 7)
	corrupted := append([]float64(nil), s[8]...)
	corrupted[77] = math.NaN()
	corrupted[78] = math.Inf(1)
	rep, err := d.Observe(s[7], corrupted)
	if err != nil {
		t.Fatal(err)
	}
	flagged := map[int]bool{}
	for _, j := range rep.Flagged {
		flagged[j] = true
	}
	if !flagged[77] || !flagged[78] {
		t.Errorf("NaN/Inf not flagged: %v", rep.Flagged)
	}
}

func TestLowMantissaBitFlipIsInvisible(t *testing.T) {
	// Flipping bit 0 changes the value by ~1e-16 relative — far below
	// physics noise. The detector must NOT flag it (it is also
	// harmless).
	s := series(2000, 8, 5)
	d := New(Config{})
	feed(t, d, s, 7)
	corrupted := append([]float64(nil), s[8]...)
	if _, err := InjectBitFlip(corrupted, 500, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := d.Observe(s[7], corrupted)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range rep.Flagged {
		if j == 500 {
			t.Error("low mantissa flip flagged — threshold too tight")
		}
	}
}

func TestDetectsDistributionShift(t *testing.T) {
	// A systematic error: every point suddenly changes 50x more than
	// history — the histogram shifts wholesale.
	s := series(5000, 8, 6)
	d := New(Config{})
	feed(t, d, s, 7)
	rng := rand.New(rand.NewSource(60))
	corrupted := make([]float64, len(s[7]))
	for j := range corrupted {
		corrupted[j] = s[7][j] * (1 + rng.NormFloat64()*0.1)
	}
	rep, err := d.Observe(s[7], corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DistributionAlarm {
		t.Errorf("distribution shift not detected (JS %v)", rep.Divergence)
	}
}

func TestCorruptIterationNotAbsorbed(t *testing.T) {
	// After a detected corruption, the baseline must still reflect
	// clean history: a subsequent clean iteration raises no alarm and
	// a repeat of the corruption is still detected.
	s := series(3000, 12, 7)
	d := New(Config{})
	feed(t, d, s, 7)

	corrupted := append([]float64(nil), s[8]...)
	if _, err := InjectBitFlip(corrupted, 10, 60); err != nil {
		t.Fatal(err)
	}
	rep, err := d.Observe(s[7], corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flagged) == 0 {
		t.Fatal("corruption not detected")
	}
	histLen := len(d.history)

	rep, err = d.Observe(s[8], s[9])
	if err != nil {
		t.Fatal(err)
	}
	if rep.DistributionAlarm {
		t.Error("clean follow-up iteration alarmed")
	}
	if len(d.history) != histLen+1 && len(d.history) != d.cfg.Window {
		t.Errorf("clean iteration not absorbed (history %d)", len(d.history))
	}
}

func TestObserveValidation(t *testing.T) {
	d := New(Config{})
	if _, err := d.Observe([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrInput) {
		t.Errorf("length mismatch: %v", err)
	}
}

func TestInjectBitFlip(t *testing.T) {
	data := []float64{1.5, -2.25}
	orig, err := InjectBitFlip(data, 0, 63)
	if err != nil {
		t.Fatal(err)
	}
	if orig != 1.5 || data[0] != -1.5 {
		t.Errorf("sign flip: orig %v now %v", orig, data[0])
	}
	// Round trip: flipping again restores.
	if _, err := InjectBitFlip(data, 0, 63); err != nil {
		t.Fatal(err)
	}
	if data[0] != 1.5 {
		t.Errorf("double flip = %v", data[0])
	}
	if _, err := InjectBitFlip(data, 5, 3); !errors.Is(err, ErrInput) {
		t.Errorf("out of range index: %v", err)
	}
	if _, err := InjectBitFlip(data, 0, 64); !errors.Is(err, ErrInput) {
		t.Errorf("out of range bit: %v", err)
	}
}

func TestJensenShannonProperties(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0, 0.5, 0.5}
	if js := jensenShannon(p, p); js != 0 {
		t.Errorf("JS(p,p) = %v", js)
	}
	ab := jensenShannon(p, q)
	ba := jensenShannon(q, p)
	if math.Abs(ab-ba) > 1e-15 {
		t.Errorf("JS not symmetric: %v vs %v", ab, ba)
	}
	if ab <= 0 || ab > math.Ln2+1e-12 {
		t.Errorf("JS(p,q) = %v out of (0, ln2]", ab)
	}
	// Disjoint supports reach the ln 2 maximum.
	disjoint := jensenShannon([]float64{1, 0}, []float64{0, 1})
	if math.Abs(disjoint-math.Ln2) > 1e-12 {
		t.Errorf("disjoint JS = %v, want ln2", disjoint)
	}
}

func TestQuantileHelper(t *testing.T) {
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	xs := []float64{3, 1, 2}
	if q := quantile(xs, 1); q != 3 {
		t.Errorf("q1 = %v", q)
	}
	if q := quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if xs[0] != 3 {
		t.Error("quantile mutated input")
	}
}

func TestDetectionRateAcrossBitPositions(t *testing.T) {
	// SDC experiment: inject flips at representative bit positions and
	// report which are caught. High exponent bits must be caught
	// essentially always; low mantissa bits are invisible by design.
	s := series(4000, 8, 8)
	rng := rand.New(rand.NewSource(99))
	mustCatch := []uint{62, 61, 60, 58} // high exponent
	for _, bit := range mustCatch {
		caught := 0
		const trials = 10
		for trial := 0; trial < trials; trial++ {
			d := New(Config{})
			feed(t, d, s, 7)
			corrupted := append([]float64(nil), s[8]...)
			idx := rng.Intn(len(corrupted))
			if _, err := InjectBitFlip(corrupted, idx, bit); err != nil {
				t.Fatal(err)
			}
			rep, err := d.Observe(s[7], corrupted)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range rep.Flagged {
				if j == idx {
					caught++
					break
				}
			}
		}
		if caught < trials-1 {
			t.Errorf("bit %d: caught only %d/%d flips", bit, caught, trials)
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	s := series(1<<16, 9, 1)
	d := New(Config{})
	for i := 1; i <= 8; i++ {
		if _, err := d.Observe(s[i-1], s[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * len(s[0])))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Observe(s[8], s[9]); err != nil {
			b.Fatal(err)
		}
	}
}
