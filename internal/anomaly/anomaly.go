// Package anomaly detects silent data corruption (SDC) in iterative
// simulation data by monitoring the distribution of change ratios — the
// same statistic NUMARCK compresses. The paper's conclusion (§V) points
// out that "learning the evolving data distributions can also enable
// understanding anomalies at scale, thereby potentially identifying
// erroneous calculations due to soft errors or hardware errors"; this
// package is that extension.
//
// The detector maintains a sliding window of per-iteration change-ratio
// statistics and flags two kinds of anomalies:
//
//   - point anomalies: individual values whose change ratio is far
//     outside the tail of the recently observed distribution (a bit
//     flip in an exponent or high mantissa bit typically changes a
//     value by orders of magnitude, while physics moves it by well
//     under a percent per step);
//
//   - distribution anomalies: iterations whose whole change-ratio
//     histogram diverges sharply from the window average
//     (Jensen–Shannon divergence), the signature of a systematic
//     error such as a corrupted block or a wrong-answer kernel.
package anomaly

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"numarck/internal/fputil"
)

// Config tunes the detector.
type Config struct {
	// Window is the number of past iterations whose statistics form
	// the baseline. Default 8.
	Window int
	// MinHistory is how many iterations must be observed before the
	// detector raises alarms. Default 3.
	MinHistory int
	// TailFactor flags a point when |ratio| exceeds TailFactor times
	// the baseline's high quantile. Default 8.
	TailFactor float64
	// TailQuantile is the baseline quantile used as the tail scale.
	// Default 0.999.
	TailQuantile float64
	// DivergenceThreshold raises a distribution alarm when the
	// Jensen–Shannon divergence (nats) between the iteration's ratio
	// histogram and the window average exceeds it. Default 0.15.
	DivergenceThreshold float64
	// Bins is the histogram resolution for divergence tracking.
	// Default 64.
	Bins int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.MinHistory <= 0 {
		c.MinHistory = 3
	}
	if c.MinHistory > c.Window {
		c.MinHistory = c.Window
	}
	if c.TailFactor <= 0 {
		c.TailFactor = 8
	}
	if c.TailQuantile <= 0 || c.TailQuantile >= 1 {
		c.TailQuantile = 0.999
	}
	if c.DivergenceThreshold <= 0 {
		c.DivergenceThreshold = 0.15
	}
	if c.Bins <= 1 {
		c.Bins = 64
	}
	return c
}

// iterStats is one iteration's summary retained in the window.
type iterStats struct {
	tail  float64   // TailQuantile of |ratio|
	histo []float64 // normalized log-|ratio| histogram
}

// Detector monitors one variable. Not safe for concurrent use.
type Detector struct {
	cfg     Config
	history []iterStats
	seen    int
}

// Report is the outcome of one Observe call.
type Report struct {
	// Iteration is the 1-based index of this observation.
	Iteration int
	// Flagged lists indices of points whose change ratio is anomalous
	// (empty until MinHistory iterations have been observed).
	Flagged []int
	// TailThreshold is the |ratio| above which points were flagged
	// (0 while warming up).
	TailThreshold float64
	// Divergence is the Jensen–Shannon divergence (nats) from the
	// window-average histogram (0 while warming up).
	Divergence float64
	// DistributionAlarm reports Divergence > DivergenceThreshold.
	DistributionAlarm bool
	// Warmup reports that the detector is still accumulating history
	// and raised no alarms.
	Warmup bool
}

// ErrInput reports invalid observation data.
var ErrInput = errors.New("anomaly: invalid input")

// New creates a detector.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults()}
}

// logAbsBounds is the histogram domain for log10 |ratio|: 1e-12 .. 1e4.
const (
	logLo = -12.0
	logHi = 4.0
)

// ratioKind classifies one point's transition.
type ratioKind uint8

const (
	ratioOK       ratioKind = iota // finite ratio computed
	ratioNoBase                    // prev is zero: no ratio exists
	ratioBadValue                  // NaN/Inf value or overflowed ratio
)

// Observe ingests the transition prev → cur, returns the anomaly report
// for it, and absorbs its statistics into the window (anomalous
// iterations are NOT absorbed, so a corrupted step does not poison the
// baseline). Unlike the compressor, the detector accepts NaN and Inf
// values — they are precisely what an exponent bit flip produces — and
// flags them.
func (d *Detector) Observe(prev, cur []float64) (*Report, error) {
	if len(prev) != len(cur) {
		return nil, fmt.Errorf("%w: prev %d points, cur %d", ErrInput, len(prev), len(cur))
	}
	d.seen++
	rep := &Report{Iteration: d.seen}

	deltas := make([]float64, len(cur))
	kinds := make([]ratioKind, len(cur))
	abs := make([]float64, 0, len(cur))
	for j := range cur {
		p, c := prev[j], cur[j]
		switch {
		case math.IsNaN(p) || math.IsInf(p, 0) || math.IsNaN(c) || math.IsInf(c, 0):
			kinds[j] = ratioBadValue
		case fputil.IsZero(p):
			kinds[j] = ratioNoBase
		default:
			r := (c - p) / p
			if math.IsNaN(r) || math.IsInf(r, 0) {
				kinds[j] = ratioBadValue
				break
			}
			deltas[j] = r
			abs = append(abs, math.Abs(r))
		}
	}
	stats := iterStats{
		tail:  quantile(abs, d.cfg.TailQuantile),
		histo: d.histogram(abs),
	}

	if len(d.history) >= d.cfg.MinHistory {
		// Point anomalies: non-finite values always; finite ratios
		// against the baseline tail.
		base := d.baselineTail()
		rep.TailThreshold = d.cfg.TailFactor * base
		for j := range cur {
			anomalous := kinds[j] == ratioBadValue
			if kinds[j] == ratioOK && rep.TailThreshold > 0 {
				anomalous = math.Abs(deltas[j]) > rep.TailThreshold
			}
			if anomalous {
				rep.Flagged = append(rep.Flagged, j)
			}
		}
		// Distribution anomaly against the window-average histogram.
		rep.Divergence = jensenShannon(stats.histo, d.baselineHisto())
		rep.DistributionAlarm = rep.Divergence > d.cfg.DivergenceThreshold
	} else {
		rep.Warmup = true
	}

	// Absorb clean iterations only.
	if !rep.DistributionAlarm && len(rep.Flagged) == 0 {
		d.history = append(d.history, stats)
		if len(d.history) > d.cfg.Window {
			d.history = d.history[1:]
		}
	}
	return rep, nil
}

// baselineTail averages the window's tail quantiles.
func (d *Detector) baselineTail() float64 {
	var sum float64
	for _, s := range d.history {
		sum += s.tail
	}
	return sum / float64(len(d.history))
}

// baselineHisto averages the window's histograms.
func (d *Detector) baselineHisto() []float64 {
	out := make([]float64, d.cfg.Bins)
	for _, s := range d.history {
		for i, v := range s.histo {
			out[i] += v
		}
	}
	n := float64(len(d.history))
	for i := range out {
		out[i] /= n
	}
	return out
}

// histogram builds a normalized histogram of log10 |ratio| with one
// extra underflow disposition: zeros land in bin 0.
func (d *Detector) histogram(abs []float64) []float64 {
	h := make([]float64, d.cfg.Bins)
	if len(abs) == 0 {
		return h
	}
	scale := float64(d.cfg.Bins) / (logHi - logLo)
	for _, a := range abs {
		var i int
		if a > 0 {
			i = int((math.Log10(a) - logLo) * scale)
		}
		if i < 0 {
			i = 0
		}
		if i >= d.cfg.Bins {
			i = d.cfg.Bins - 1
		}
		h[i]++
	}
	inv := 1 / float64(len(abs))
	for i := range h {
		h[i] *= inv
	}
	return h
}

// jensenShannon returns the Jensen–Shannon divergence between two
// discrete distributions of equal length, in nats. Symmetric, zero for
// identical inputs, bounded by ln 2.
func jensenShannon(p, q []float64) float64 {
	var js float64
	for i := range p {
		m := (p[i] + q[i]) / 2
		if p[i] > 0 && m > 0 {
			js += 0.5 * p[i] * math.Log(p[i]/m)
		}
		if q[i] > 0 && m > 0 {
			js += 0.5 * q[i] * math.Log(q[i]/m)
		}
	}
	if js < 0 {
		js = 0 // guard against rounding
	}
	return js
}

// quantile returns the q-quantile of xs (xs is not modified).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(pos)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// InjectBitFlip flips the given bit (0 = least significant of the
// mantissa, 63 = sign) of data[idx] in place and returns the original
// value. It is the fault-injection tool for SDC experiments and tests.
func InjectBitFlip(data []float64, idx int, bit uint) (orig float64, err error) {
	if idx < 0 || idx >= len(data) {
		return 0, fmt.Errorf("%w: index %d out of range [0,%d)", ErrInput, idx, len(data))
	}
	if bit > 63 {
		return 0, fmt.Errorf("%w: bit %d out of range [0,63]", ErrInput, bit)
	}
	orig = data[idx]
	data[idx] = math.Float64frombits(math.Float64bits(orig) ^ (1 << bit))
	return orig, nil
}
