package bitpack

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackedLen(t *testing.T) {
	cases := []struct {
		n, width, want int
	}{
		{0, 8, 0},
		{1, 1, 1},
		{8, 1, 1},
		{9, 1, 2},
		{1, 8, 1},
		{3, 8, 3},
		{1, 9, 2},
		{7, 9, 8},  // 63 bits
		{8, 9, 9},  // 72 bits
		{5, 12, 8}, // 60 bits
		{100, 10, 125},
		{3, 32, 12},
	}
	for _, c := range cases {
		if got := PackedLen(c.n, c.width); got != c.want {
			t.Errorf("PackedLen(%d,%d) = %d, want %d", c.n, c.width, got, c.want)
		}
	}
}

func TestPackedLenPanics(t *testing.T) {
	for _, width := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PackedLen(1,%d) did not panic", width)
				}
			}()
			PackedLen(1, width)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PackedLen(-1,8) did not panic")
			}
		}()
		PackedLen(-1, 8)
	}()
}

func TestPackUnpackRoundTripAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for width := 1; width <= MaxWidth; width++ {
		n := 257
		vals := make([]uint32, n)
		limit := uint64(1)<<uint(width) - 1
		for i := range vals {
			vals[i] = uint32(rng.Uint64() & limit)
		}
		packed, err := Pack(vals, width)
		if err != nil {
			t.Fatalf("width %d: Pack: %v", width, err)
		}
		if len(packed) != PackedLen(n, width) {
			t.Fatalf("width %d: packed len %d, want %d", width, len(packed), PackedLen(n, width))
		}
		got, err := Unpack(packed, n, width)
		if err != nil {
			t.Fatalf("width %d: Unpack: %v", width, err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("width %d: value %d: got %d, want %d", width, i, got[i], vals[i])
			}
		}
	}
}

func TestPackRejectsOutOfRange(t *testing.T) {
	_, err := Pack([]uint32{0, 256}, 8)
	if !errors.Is(err, ErrRange) {
		t.Errorf("Pack out-of-range: got %v, want ErrRange", err)
	}
	if _, err := Pack([]uint32{255}, 8); err != nil {
		t.Errorf("Pack(255, 8): %v", err)
	}
}

func TestPackRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, -3, 33} {
		if _, err := Pack([]uint32{1}, w); !errors.Is(err, ErrWidth) {
			t.Errorf("Pack width %d: got %v, want ErrWidth", w, err)
		}
		if _, err := Unpack([]byte{0}, 1, w); !errors.Is(err, ErrWidth) {
			t.Errorf("Unpack width %d: got %v, want ErrWidth", w, err)
		}
		if _, err := Get([]byte{0}, 0, w); !errors.Is(err, ErrWidth) {
			t.Errorf("Get width %d: got %v, want ErrWidth", w, err)
		}
	}
}

func TestUnpackShortStream(t *testing.T) {
	packed, err := Pack([]uint32{1, 2, 3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unpack(packed[:len(packed)-1], 3, 9); !errors.Is(err, ErrShort) {
		t.Errorf("truncated Unpack: got %v, want ErrShort", err)
	}
	if _, err := Unpack(packed, -1, 9); err == nil {
		t.Error("Unpack with negative n did not fail")
	}
}

func TestUnpackEmpty(t *testing.T) {
	got, err := Unpack(nil, 0, 8)
	if err != nil || len(got) != 0 {
		t.Errorf("Unpack(nil,0,8) = %v, %v", got, err)
	}
}

func TestGetRandomAccess(t *testing.T) {
	vals := []uint32{7, 0, 511, 300, 1, 255}
	packed, err := Pack(vals, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		got, err := Get(packed, i, 9)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if got != want {
			t.Errorf("Get(%d) = %d, want %d", i, got, want)
		}
	}
	if _, err := Get(packed, len(vals)+2, 9); !errors.Is(err, ErrShort) {
		t.Errorf("Get past end: got %v, want ErrShort", err)
	}
	if _, err := Get(packed, -1, 9); err == nil {
		t.Error("Get(-1) did not fail")
	}
}

func TestPackDeterministic(t *testing.T) {
	vals := []uint32{1, 2, 3, 4, 5}
	a, _ := Pack(vals, 5)
	b, _ := Pack(vals, 5)
	if !bytes.Equal(a, b) {
		t.Error("Pack is not deterministic")
	}
}

// quick.Check property: packing then unpacking restores values for any
// byte-sourced payload at a few representative widths.
func TestQuickRoundTrip(t *testing.T) {
	for _, width := range []int{1, 3, 8, 9, 13, 24, 32} {
		width := width
		f := func(raw []uint32) bool {
			limit := uint32(uint64(1)<<uint(width) - 1)
			vals := make([]uint32, len(raw))
			for i, v := range raw {
				vals[i] = v & limit
			}
			packed, err := Pack(vals, width)
			if err != nil {
				return false
			}
			got, err := Unpack(packed, len(vals), width)
			if err != nil {
				return false
			}
			for i := range vals {
				if got[i] != vals[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("width %d: %v", width, err)
		}
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(20)
	if b.Len() != 20 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Count() != 0 {
		t.Fatalf("fresh bitmap Count = %d", b.Count())
	}
	for _, i := range []int{0, 7, 8, 19} {
		b.Set(i, true)
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d, want 4", b.Count())
	}
	for i := 0; i < 20; i++ {
		want := i == 0 || i == 7 || i == 8 || i == 19
		if b.Get(i) != want {
			t.Errorf("Get(%d) = %v, want %v", i, b.Get(i), want)
		}
	}
	b.Set(7, false)
	if b.Get(7) || b.Count() != 3 {
		t.Errorf("after clear: Get(7)=%v Count=%d", b.Get(7), b.Count())
	}
}

func TestBitmapRoundTrip(t *testing.T) {
	b := NewBitmap(13)
	b.Set(3, true)
	b.Set(12, true)
	b2, err := BitmapFromBytes(b.Bytes(), 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		if b.Get(i) != b2.Get(i) {
			t.Errorf("bit %d differs after round trip", i)
		}
	}
	if _, err := BitmapFromBytes([]byte{0}, 13); !errors.Is(err, ErrShort) {
		t.Errorf("short bitmap: got %v, want ErrShort", err)
	}
}

func TestBitmapBoundsPanic(t *testing.T) {
	b := NewBitmap(4)
	for _, i := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			b.Set(i, true)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			b.Get(i)
		}()
	}
}

func TestBitmapZeroLen(t *testing.T) {
	b := NewBitmap(0)
	if b.Count() != 0 || b.Len() != 0 || len(b.Bytes()) != 0 {
		t.Error("zero-length bitmap misbehaves")
	}
}

func BenchmarkPack8(b *testing.B)   { benchPack(b, 8) }
func BenchmarkPack9(b *testing.B)   { benchPack(b, 9) }
func BenchmarkUnpack8(b *testing.B) { benchUnpack(b, 8) }
func BenchmarkUnpack9(b *testing.B) { benchUnpack(b, 9) }

func benchPack(b *testing.B, width int) {
	vals := make([]uint32, 1<<16)
	limit := uint32(uint64(1)<<uint(width) - 1)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Uint32() & limit
	}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(vals, width); err != nil {
			b.Fatal(err)
		}
	}
}

func benchUnpack(b *testing.B, width int) {
	vals := make([]uint32, 1<<16)
	limit := uint32(uint64(1)<<uint(width) - 1)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Uint32() & limit
	}
	packed, err := Pack(vals, width)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(packed, len(vals), width); err != nil {
			b.Fatal(err)
		}
	}
}
