package bitpack

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRoundTrip packs arbitrary bytes reinterpreted as uint32 fields at
// an arbitrary width and checks Pack/Unpack/Get agree. The harness
// masks values to the field width, so every input is packable and the
// invariant under test is pure layout: unpack(pack(x)) == x.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0xff, 0xee, 0xdd, 0xcc}, uint8(7))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint8(32))
	f.Add([]byte{0x00}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, w uint8) {
		width := int(w%MaxWidth) + 1
		limit := uint32(limitFor(width))
		vals := make([]uint32, len(raw)/4)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint32(raw[4*i:]) & limit
		}
		packed, err := Pack(vals, width)
		if err != nil {
			t.Fatalf("pack width %d: %v", width, err)
		}
		if len(packed) != PackedLen(len(vals), width) {
			t.Fatalf("packed %d bytes, want %d", len(packed), PackedLen(len(vals), width))
		}
		got, err := Unpack(packed, len(vals), width)
		if err != nil {
			t.Fatalf("unpack: %v", err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("width %d field %d: %d != %d", width, i, got[i], vals[i])
			}
			one, err := Get(packed, i, width)
			if err != nil || one != vals[i] {
				t.Fatalf("width %d Get(%d): %d, %v; want %d", width, i, one, err, vals[i])
			}
		}
	})
}

// FuzzRoundTrip64 is the 64-bit twin, covering widths up to 64.
func FuzzRoundTrip64(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(64))
	f.Add(bytes.Repeat([]byte{0xff}, 16), uint8(33))
	f.Fuzz(func(t *testing.T, raw []byte, w uint8) {
		width := int(w%MaxWidth64) + 1
		limit := limitFor(width)
		vals := make([]uint64, len(raw)/8)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint64(raw[8*i:]) & limit
		}
		packed, err := Pack64(vals, width)
		if err != nil {
			t.Fatalf("pack64 width %d: %v", width, err)
		}
		got, err := Unpack64(packed, len(vals), width)
		if err != nil {
			t.Fatalf("unpack64: %v", err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("width %d field %d: %d != %d", width, i, got[i], vals[i])
			}
		}
	})
}
