// Package bitpack provides fixed-width packing of small unsigned integers
// into byte slices. NUMARCK stores one B-bit bin index per data point
// (1 <= B <= 32); this package implements that index stream.
//
// The packing is little-endian at the bit level: index i occupies bits
// [i*width, (i+1)*width) of the stream, and bit b of the stream lives in
// byte b/8 at position b%8. This layout allows streaming append and
// random access without any padding between values.
package bitpack

import (
	"errors"
	"fmt"
)

// MaxWidth is the widest supported field, in bits.
const MaxWidth = 32

var (
	// ErrWidth reports an out-of-range field width.
	ErrWidth = errors.New("bitpack: width must be in [1,32]")
	// ErrRange reports a value that does not fit in the field width.
	ErrRange = errors.New("bitpack: value out of range for width")
	// ErrShort reports a truncated packed stream.
	ErrShort = errors.New("bitpack: packed stream too short")
)

// PackedLen returns the number of bytes needed to store n fields of the
// given width. It panics if width is invalid.
func PackedLen(n, width int) int {
	if width < 1 || width > MaxWidth {
		panic(ErrWidth)
	}
	if n < 0 {
		panic(fmt.Sprintf("bitpack: negative count %d", n))
	}
	bits := uint64(n) * uint64(width)
	return int((bits + 7) / 8)
}

// Pack encodes vals, each of which must fit in width bits, into a fresh
// byte slice of exactly PackedLen(len(vals), width) bytes.
func Pack(vals []uint32, width int) ([]byte, error) {
	if width < 1 || width > MaxWidth {
		return nil, ErrWidth
	}
	limit := limitFor(width)
	out := make([]byte, PackedLen(len(vals), width))
	for i, v := range vals {
		if uint64(v) > limit {
			return nil, fmt.Errorf("%w: value %d at position %d exceeds %d bits", ErrRange, v, i, width)
		}
		putBits(out, uint64(i)*uint64(width), uint64(v), width)
	}
	return out, nil
}

// PackInto is Pack writing into buf's backing array when it has
// capacity (allocating only when it does not), for pooled steady-state
// encoding. The used prefix is zeroed first, so stale buffer contents
// cannot leak into the stream; the returned slice is exactly
// PackedLen(len(vals), width) long.
func PackInto(vals []uint32, width int, buf []byte) ([]byte, error) {
	if width < 1 || width > MaxWidth {
		return nil, ErrWidth
	}
	need := PackedLen(len(vals), width)
	var out []byte
	if cap(buf) >= need {
		out = buf[:need]
		for i := range out {
			out[i] = 0
		}
	} else {
		out = make([]byte, need)
	}
	limit := limitFor(width)
	for i, v := range vals {
		if uint64(v) > limit {
			return nil, fmt.Errorf("%w: value %d at position %d exceeds %d bits", ErrRange, v, i, width)
		}
		putBits(out, uint64(i)*uint64(width), uint64(v), width)
	}
	return out, nil
}

// UnpackInto is Unpack writing into out's backing array when it has
// capacity, for pooled steady-state decoding. The returned slice is
// exactly n long.
func UnpackInto(data []byte, n, width int, out []uint32) ([]uint32, error) {
	if width < 1 || width > MaxWidth {
		return nil, ErrWidth
	}
	if n < 0 {
		return nil, fmt.Errorf("bitpack: negative count %d", n)
	}
	need := PackedLen(n, width)
	if len(data) < need {
		return nil, fmt.Errorf("%w: have %d bytes, need %d", ErrShort, len(data), need)
	}
	if cap(out) >= n {
		out = out[:n]
	} else {
		out = make([]uint32, n)
	}
	for i := range out {
		//lint:ignore bindex getBits yields at most width <= MaxWidth = 32 low bits
		out[i] = uint32(getBits(data, uint64(i)*uint64(width), width))
	}
	return out, nil
}

// Unpack decodes n fields of the given width from data. It returns
// ErrShort when data holds fewer than n fields.
func Unpack(data []byte, n, width int) ([]uint32, error) {
	if width < 1 || width > MaxWidth {
		return nil, ErrWidth
	}
	if n < 0 {
		return nil, fmt.Errorf("bitpack: negative count %d", n)
	}
	need := PackedLen(n, width)
	if len(data) < need {
		return nil, fmt.Errorf("%w: have %d bytes, need %d", ErrShort, len(data), need)
	}
	out := make([]uint32, n)
	for i := range out {
		//lint:ignore bindex getBits yields at most width <= MaxWidth = 32 low bits
		out[i] = uint32(getBits(data, uint64(i)*uint64(width), width))
	}
	return out, nil
}

// Get returns field i of a packed stream without decoding the rest.
// It returns ErrShort if the stream does not contain field i.
func Get(data []byte, i, width int) (uint32, error) {
	if width < 1 || width > MaxWidth {
		return 0, ErrWidth
	}
	if i < 0 {
		return 0, fmt.Errorf("bitpack: negative index %d", i)
	}
	if len(data) < PackedLen(i+1, width) {
		return 0, ErrShort
	}
	//lint:ignore bindex getBits yields at most width <= MaxWidth = 32 low bits
	return uint32(getBits(data, uint64(i)*uint64(width), width)), nil
}

// ---------------------------------------------------------------------
// 64-bit variants. The bin-index stream is 32-bit (B <= MaxIndexBits),
// but lossless residue streams and the bindex analyzer's worst case
// need full-width fields; these share the bit-level layout above.

// MaxWidth64 is the widest supported 64-bit field, in bits.
const MaxWidth64 = 64

// ErrWidth64 reports an out-of-range 64-bit field width.
var ErrWidth64 = errors.New("bitpack: width must be in [1,64]")

// PackedLen64 returns the number of bytes needed for n fields of the
// given width, 1 <= width <= 64. It panics if width is invalid.
func PackedLen64(n, width int) int {
	if width < 1 || width > MaxWidth64 {
		panic(ErrWidth64)
	}
	if n < 0 {
		panic(fmt.Sprintf("bitpack: negative count %d", n))
	}
	bits := uint64(n) * uint64(width)
	return int((bits + 7) / 8)
}

// Pack64 encodes vals, each of which must fit in width bits, into a
// fresh byte slice of exactly PackedLen64(len(vals), width) bytes.
func Pack64(vals []uint64, width int) ([]byte, error) {
	if width < 1 || width > MaxWidth64 {
		return nil, ErrWidth64
	}
	limit := limitFor(width)
	out := make([]byte, PackedLen64(len(vals), width))
	for i, v := range vals {
		if v > limit {
			return nil, fmt.Errorf("%w: value %d at position %d exceeds %d bits", ErrRange, v, i, width)
		}
		putBits(out, uint64(i)*uint64(width), v, width)
	}
	return out, nil
}

// Unpack64 decodes n fields of the given width from data.
func Unpack64(data []byte, n, width int) ([]uint64, error) {
	if width < 1 || width > MaxWidth64 {
		return nil, ErrWidth64
	}
	if n < 0 {
		return nil, fmt.Errorf("bitpack: negative count %d", n)
	}
	need := PackedLen64(n, width)
	if len(data) < need {
		return nil, fmt.Errorf("%w: have %d bytes, need %d", ErrShort, len(data), need)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = getBits(data, uint64(i)*uint64(width), width)
	}
	return out, nil
}

// Get64 returns field i of a 64-bit packed stream without decoding the
// rest.
func Get64(data []byte, i, width int) (uint64, error) {
	if width < 1 || width > MaxWidth64 {
		return 0, ErrWidth64
	}
	if i < 0 {
		return 0, fmt.Errorf("bitpack: negative index %d", i)
	}
	if len(data) < PackedLen64(i+1, width) {
		return 0, ErrShort
	}
	return getBits(data, uint64(i)*uint64(width), width), nil
}

// limitFor returns the maximum value representable in width bits. For
// width 64 the shift wraps to 0 and the subtraction yields MaxUint64,
// which is exactly the intended limit.
func limitFor(width int) uint64 {
	return (uint64(1) << uint(width)) - 1
}

// putBits writes the low `width` bits of v starting at bit offset off.
func putBits(buf []byte, off, v uint64, width int) {
	for width > 0 {
		byteIdx := off >> 3
		bitIdx := uint(off & 7)
		room := 8 - int(bitIdx)
		take := width
		if take > room {
			take = room
		}
		//lint:ignore bindex take+bitIdx <= 8, so the shifted mask fits a byte
		mask := byte((uint64(1)<<uint(take) - 1) << bitIdx)
		//lint:ignore bindex the & mask keeps only the byte's bit window
		buf[byteIdx] = (buf[byteIdx] &^ mask) | (byte(v<<bitIdx) & mask)
		v >>= uint(take)
		off += uint64(take)
		width -= take
	}
}

// getBits reads `width` bits starting at bit offset off.
func getBits(buf []byte, off uint64, width int) uint64 {
	var v uint64
	shift := 0
	for width > 0 {
		byteIdx := off >> 3
		bitIdx := uint(off & 7)
		room := 8 - int(bitIdx)
		take := width
		if take > room {
			take = room
		}
		bits := (uint64(buf[byteIdx]) >> bitIdx) & (uint64(1)<<uint(take) - 1)
		v |= bits << uint(shift)
		shift += take
		off += uint64(take)
		width -= take
	}
	return v
}

// Bitmap is a fixed-size set of booleans used to flag incompressible
// points in a checkpoint.
type Bitmap struct {
	n    int
	bits []byte
}

// NewBitmap returns a bitmap holding n flags, all false.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitpack: negative bitmap size %d", n))
	}
	return &Bitmap{n: n, bits: make([]byte, (n+7)/8)}
}

// BitmapFromBytes wraps an existing packed representation of n flags.
func BitmapFromBytes(data []byte, n int) (*Bitmap, error) {
	need := (n + 7) / 8
	if len(data) < need {
		return nil, fmt.Errorf("%w: bitmap needs %d bytes, have %d", ErrShort, need, len(data))
	}
	b := &Bitmap{n: n, bits: make([]byte, need)}
	copy(b.bits, data)
	return b, nil
}

// Reset resizes the bitmap to n flags, all false, reusing its storage
// when capacity allows. The pooled form of NewBitmap for steady-state
// encode/decode loops.
func (b *Bitmap) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitpack: negative bitmap size %d", n))
	}
	need := (n + 7) / 8
	if cap(b.bits) >= need {
		b.bits = b.bits[:need]
		for i := range b.bits {
			b.bits[i] = 0
		}
	} else {
		b.bits = make([]byte, need)
	}
	b.n = n
}

// LoadBytes replaces the bitmap's contents with a packed representation
// of n flags, reusing its storage when capacity allows — the pooled
// form of BitmapFromBytes.
func (b *Bitmap) LoadBytes(data []byte, n int) error {
	need := (n + 7) / 8
	if len(data) < need {
		return fmt.Errorf("%w: bitmap needs %d bytes, have %d", ErrShort, need, len(data))
	}
	if cap(b.bits) >= need {
		b.bits = b.bits[:need]
	} else {
		b.bits = make([]byte, need)
	}
	copy(b.bits, data[:need])
	b.n = n
	return nil
}

// Len returns the number of flags in the bitmap.
func (b *Bitmap) Len() int { return b.n }

// Set sets flag i to v.
func (b *Bitmap) Set(i int, v bool) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitpack: bitmap index %d out of range [0,%d)", i, b.n))
	}
	if v {
		b.bits[i>>3] |= 1 << uint(i&7)
	} else {
		b.bits[i>>3] &^= 1 << uint(i&7)
	}
}

// Get reports flag i.
func (b *Bitmap) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitpack: bitmap index %d out of range [0,%d)", i, b.n))
	}
	return b.bits[i>>3]&(1<<uint(i&7)) != 0
}

// Count returns the number of set flags.
func (b *Bitmap) Count() int {
	c := 0
	for _, x := range b.bits {
		c += popcount(x)
	}
	return c
}

// Bytes returns the packed representation. The slice aliases the bitmap's
// storage; callers must not modify it.
func (b *Bitmap) Bytes() []byte { return b.bits }

func popcount(x byte) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
