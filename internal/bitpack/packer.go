package bitpack

import "fmt"

// Packer packs fixed-width values incrementally. Unlike Pack, which
// needs every value up front, a Packer accepts values in arbitrary
// batches (e.g. one chunk of a streaming encode at a time) and carries
// partial bytes across batch boundaries, so the accumulated output is
// byte-identical to a single Pack call over the concatenation of all
// batches. Chunk boundaries therefore never introduce padding bits.
//
// Usage: Append values, periodically Drain the complete bytes produced
// so far (streaming them to a writer), and Close once to flush the
// final partial byte (zero-padded, exactly as Pack pads its last byte).
type Packer struct {
	width  int
	limit  uint64
	buf    []byte // complete bytes not yet drained
	cur    byte   // partial byte under construction
	curLen int    // bits of cur in use, in [0, 8)
	count  int    // values appended
	closed bool
}

// NewPacker returns a Packer for fields of the given width in bits.
func NewPacker(width int) (*Packer, error) {
	if width < 1 || width > MaxWidth {
		return nil, ErrWidth
	}
	return &Packer{width: width, limit: limitFor(width)}, nil
}

// Width returns the field width in bits.
func (p *Packer) Width() int { return p.width }

// Count returns the number of values appended so far.
func (p *Packer) Count() int { return p.count }

// Append adds one value to the stream.
func (p *Packer) Append(v uint32) error {
	if p.closed {
		return fmt.Errorf("bitpack: append to closed packer")
	}
	if uint64(v) > p.limit {
		return fmt.Errorf("%w: value %d at position %d exceeds %d bits", ErrRange, v, p.count, p.width)
	}
	bits := uint64(v)
	width := p.width
	for width > 0 {
		room := 8 - p.curLen
		take := width
		if take > room {
			take = room
		}
		//lint:ignore bindex take+curLen <= 8, so the shifted bits fit a byte
		p.cur |= byte(bits<<uint(p.curLen)) & byte((uint64(1)<<uint(take)-1)<<uint(p.curLen))
		p.curLen += take
		bits >>= uint(take)
		width -= take
		if p.curLen == 8 {
			p.buf = append(p.buf, p.cur)
			p.cur, p.curLen = 0, 0
		}
	}
	p.count++
	return nil
}

// AppendAll adds a batch of values.
func (p *Packer) AppendAll(vals []uint32) error {
	for _, v := range vals {
		if err := p.Append(v); err != nil {
			return err
		}
	}
	return nil
}

// Drain returns the complete bytes accumulated since the previous Drain
// and releases them from the packer. A trailing partial byte stays
// buffered until enough bits arrive to complete it (or Close pads it).
// The returned slice is owned by the caller.
func (p *Packer) Drain() []byte {
	out := p.buf
	p.buf = nil
	return out
}

// Close flushes the final partial byte (zero-padded) and returns any
// remaining undrained bytes. The total bytes emitted across all Drains
// and Close equal PackedLen(Count(), width), and their contents equal
// Pack of the full value sequence. Further Appends fail.
func (p *Packer) Close() []byte {
	if !p.closed {
		p.closed = true
		if p.curLen > 0 {
			p.buf = append(p.buf, p.cur)
			p.cur, p.curLen = 0, 0
		}
	}
	out := p.buf
	p.buf = nil
	return out
}
