package bitpack

import (
	"bytes"
	"testing"
)

// PackInto must zero reused storage: packing a sparse stream over a
// buffer full of 0xFF must equal a fresh Pack.
func TestPackIntoReusesAndZeroes(t *testing.T) {
	vals := []uint32{1, 0, 3, 0, 7, 0, 0, 2}
	fresh, err := Pack(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	dirty := make([]byte, 64)
	for i := range dirty {
		dirty[i] = 0xFF
	}
	got, err := PackInto(vals, 3, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Errorf("PackInto over dirty buffer = %x, want %x", got, fresh)
	}
	if &got[0] != &dirty[0] {
		t.Error("PackInto did not reuse the provided buffer")
	}
	// Undersized buffer: allocates, same bytes.
	got, err = PackInto(vals, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Errorf("PackInto with nil buffer = %x, want %x", got, fresh)
	}
	// Out-of-range value still rejected.
	if _, err := PackInto([]uint32{8}, 3, dirty); err == nil {
		t.Error("PackInto accepted an out-of-range value")
	}
}

func TestUnpackIntoRoundTrip(t *testing.T) {
	vals := []uint32{5, 0, 31, 16, 1, 2, 3}
	packed, err := Pack(vals, 5)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]uint32, 2, 32)
	buf[0], buf[1] = 99, 99
	got, err := UnpackInto(packed, len(vals), 5, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("len = %d, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("field %d = %d, want %d", i, got[i], vals[i])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Error("UnpackInto did not reuse the provided buffer")
	}
	if _, err := UnpackInto(packed[:1], len(vals), 5, nil); err == nil {
		t.Error("UnpackInto accepted a truncated stream")
	}
}

func TestBitmapResetAndLoadBytes(t *testing.T) {
	b := NewBitmap(20)
	b.Set(3, true)
	b.Set(19, true)
	saved := append([]byte(nil), b.Bytes()...)

	b.Reset(10)
	if b.Len() != 10 || b.Count() != 0 {
		t.Errorf("after Reset: len=%d count=%d", b.Len(), b.Count())
	}
	b.Set(9, true)

	if err := b.LoadBytes(saved, 20); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 20 || b.Count() != 2 || !b.Get(3) || !b.Get(19) {
		t.Errorf("after LoadBytes: len=%d count=%d", b.Len(), b.Count())
	}
	if err := b.LoadBytes(saved[:1], 20); err == nil {
		t.Error("LoadBytes accepted a short buffer")
	}
	// Growing Reset allocates but still yields an all-false map.
	b.Reset(1000)
	if b.Len() != 1000 || b.Count() != 0 {
		t.Errorf("after growing Reset: len=%d count=%d", b.Len(), b.Count())
	}
}
