package bitpack

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestPackerMatchesPack appends values in uneven batches and checks the
// drained stream is byte-identical to a single Pack call, for widths
// whose batch boundaries land mid-byte.
func TestPackerMatchesPack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, width := range []int{1, 3, 5, 7, 8, 12, 17, 24, 32} {
		n := 1000 + rng.Intn(100)
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(rng.Uint64() & limitFor(width))
		}
		want, err := Pack(vals, width)
		if err != nil {
			t.Fatalf("width %d: Pack: %v", width, err)
		}

		p, err := NewPacker(width)
		if err != nil {
			t.Fatalf("width %d: NewPacker: %v", width, err)
		}
		var got bytes.Buffer
		for off := 0; off < n; {
			batch := 1 + rng.Intn(97) // deliberately not byte-aligned
			if off+batch > n {
				batch = n - off
			}
			if err := p.AppendAll(vals[off : off+batch]); err != nil {
				t.Fatalf("width %d: AppendAll: %v", width, err)
			}
			got.Write(p.Drain())
			off += batch
		}
		got.Write(p.Close())

		if p.Count() != n {
			t.Fatalf("width %d: count %d, want %d", width, p.Count(), n)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("width %d: incremental stream differs from Pack", width)
		}
	}
}

func TestPackerErrors(t *testing.T) {
	if _, err := NewPacker(0); err == nil {
		t.Fatal("NewPacker(0) should fail")
	}
	if _, err := NewPacker(33); err == nil {
		t.Fatal("NewPacker(33) should fail")
	}
	p, err := NewPacker(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Append(8); err == nil {
		t.Fatal("value 8 should not fit in 3 bits")
	}
	if err := p.Append(7); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := p.Append(1); err == nil {
		t.Fatal("append after Close should fail")
	}
}

func TestPackerEmpty(t *testing.T) {
	p, err := NewPacker(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Drain(); len(got) != 0 {
		t.Fatalf("empty Drain returned %d bytes", len(got))
	}
	if got := p.Close(); len(got) != 0 {
		t.Fatalf("empty Close returned %d bytes", len(got))
	}
}
