package bitpack

import (
	"errors"
	"math"
	"testing"
)

// TestPackB1 exercises the narrowest field: one bit per value, the
// incompressible-point bitmap width.
func TestPackB1(t *testing.T) {
	vals := []uint32{1, 0, 1, 1, 0, 0, 0, 1, 1} // 9 values -> 2 bytes
	packed, err := Pack(vals, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != 2 {
		t.Fatalf("packed len = %d, want 2", len(packed))
	}
	got, err := Unpack(packed, len(vals), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("bit %d = %d, want %d", i, got[i], vals[i])
		}
	}
	if _, err := Pack([]uint32{2}, 1); !errors.Is(err, ErrRange) {
		t.Fatalf("Pack(2, width 1) err = %v, want ErrRange", err)
	}
}

// TestPack64B64 exercises the widest field: full 64-bit values where
// the width limit itself (1<<64 - 1) must not overflow.
func TestPack64B64(t *testing.T) {
	vals := []uint64{0, 1, math.MaxUint64, math.MaxUint64 - 1, 1 << 63}
	packed, err := Pack64(vals, 64)
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * len(vals); len(packed) != want {
		t.Fatalf("packed len = %d, want %d", len(packed), want)
	}
	got, err := Unpack64(packed, len(vals), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("field %d = %d, want %d", i, got[i], vals[i])
		}
	}
	for i := range vals {
		v, err := Get64(packed, i, 64)
		if err != nil || v != vals[i] {
			t.Fatalf("Get64(%d) = %d, %v; want %d", i, v, err, vals[i])
		}
	}
}

// TestPack64WidthBounds pins the width validation of the 64-bit API.
func TestPack64WidthBounds(t *testing.T) {
	for _, w := range []int{0, -1, 65} {
		if _, err := Pack64([]uint64{1}, w); !errors.Is(err, ErrWidth64) {
			t.Errorf("Pack64 width %d err = %v, want ErrWidth64", w, err)
		}
		if _, err := Unpack64(nil, 0, w); !errors.Is(err, ErrWidth64) {
			t.Errorf("Unpack64 width %d err = %v, want ErrWidth64", w, err)
		}
		if _, err := Get64(nil, 0, w); !errors.Is(err, ErrWidth64) {
			t.Errorf("Get64 width %d err = %v, want ErrWidth64", w, err)
		}
	}
}

// TestIndexOverflowRoundTrip covers the truncation hazard the bindex
// analyzer guards: a value one past the width limit must be rejected,
// and the limit itself must round-trip intact — for every width of
// both APIs.
func TestIndexOverflowRoundTrip(t *testing.T) {
	for width := 1; width <= MaxWidth; width++ {
		limit := uint32(limitFor(width))
		packed, err := Pack([]uint32{limit}, width)
		if err != nil {
			t.Fatalf("width %d: pack limit: %v", width, err)
		}
		got, err := Get(packed, 0, width)
		if err != nil || got != limit {
			t.Fatalf("width %d: got %d, %v; want %d", width, got, err, limit)
		}
		if width < MaxWidth {
			if _, err := Pack([]uint32{limit + 1}, width); !errors.Is(err, ErrRange) {
				t.Fatalf("width %d: limit+1 err = %v, want ErrRange", width, err)
			}
		}
	}
	for width := 1; width <= MaxWidth64; width++ {
		limit := limitFor(width)
		packed, err := Pack64([]uint64{limit, 0, limit}, width)
		if err != nil {
			t.Fatalf("width %d: pack64 limit: %v", width, err)
		}
		got, err := Unpack64(packed, 3, width)
		if err != nil || got[0] != limit || got[1] != 0 || got[2] != limit {
			t.Fatalf("width %d: round-trip %v, %v; want [%d 0 %d]", width, got, err, limit, limit)
		}
		if width < MaxWidth64 {
			if _, err := Pack64([]uint64{limit + 1}, width); !errors.Is(err, ErrRange) {
				t.Fatalf("width %d: limit+1 err = %v, want ErrRange", width, err)
			}
		}
	}
}

// TestUnpack64Short pins ErrShort on truncated 64-bit streams.
func TestUnpack64Short(t *testing.T) {
	packed, err := Pack64([]uint64{1, 2, 3}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unpack64(packed[:len(packed)-1], 3, 40); !errors.Is(err, ErrShort) {
		t.Fatalf("truncated Unpack64 err = %v, want ErrShort", err)
	}
	if _, err := Get64(packed, 3, 40); !errors.Is(err, ErrShort) {
		t.Fatalf("out-of-stream Get64 err = %v, want ErrShort", err)
	}
}
