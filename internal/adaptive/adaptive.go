// Package adaptive decides dynamically when to write full (lossless)
// checkpoints instead of NUMARCK deltas, the paper's §V extension:
// "adaptation of these techniques can help enable ... determining
// dynamic checkpointing frequency based on how evolving distributions
// change".
//
// A fixed full-checkpoint period wastes space when the simulation is
// quiet and lets restart error accumulate when it is turbulent. The
// scheduler instead encodes each iteration tentatively as a delta and
// inspects the encoding the compressor already produces:
//
//   - the worst-case accumulated restart error of the delta chain
//     (the sum of per-delta maximum ratio errors, a first-order upper
//     bound on the compounded relative error) must stay within the
//     user's error budget;
//   - a delta whose incompressible ratio γ is too high stores most
//     points raw anyway, so a full checkpoint is cheaper and resets
//     the chain for free;
//   - a hard cap bounds chain length so restart cost stays bounded.
package adaptive

import (
	"errors"
	"fmt"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
)

// Config tunes the scheduler.
type Config struct {
	// ErrorBudget bounds the estimated accumulated restart error of a
	// delta chain, as a fraction. Default 0.01 (1 %).
	ErrorBudget float64
	// GammaThreshold forces a full checkpoint when a tentative delta's
	// incompressible ratio meets or exceeds it. Default 0.5.
	GammaThreshold float64
	// MaxChain caps consecutive deltas between fulls. Default 64.
	MaxChain int
}

func (c Config) withDefaults() Config {
	if c.ErrorBudget <= 0 {
		c.ErrorBudget = 0.01
	}
	if c.GammaThreshold <= 0 {
		c.GammaThreshold = 0.5
	}
	if c.MaxChain <= 0 {
		c.MaxChain = 64
	}
	return c
}

// Reason explains a full-checkpoint decision.
type Reason string

const (
	// ReasonFirst is the mandatory initial full checkpoint.
	ReasonFirst Reason = "first checkpoint"
	// ReasonBudget means the error budget would be exceeded.
	ReasonBudget Reason = "error budget exhausted"
	// ReasonGamma means the delta barely compresses.
	ReasonGamma Reason = "incompressible ratio too high"
	// ReasonChain means the chain-length cap was reached.
	ReasonChain Reason = "max chain length"
	// ReasonDelta means no full checkpoint was needed.
	ReasonDelta Reason = "delta"
)

// Decision is the scheduler's verdict for one tentative delta.
type Decision struct {
	Full   bool
	Reason Reason
	// EstimatedChainError is the accumulated error estimate of the
	// chain including this delta (before any reset).
	EstimatedChainError float64
}

// Scheduler tracks one variable's delta chain. Not safe for concurrent
// use.
type Scheduler struct {
	cfg      Config
	started  bool
	chainLen int
	accumErr float64
}

// NewScheduler creates a scheduler.
func NewScheduler(cfg Config) *Scheduler {
	return &Scheduler{cfg: cfg.withDefaults()}
}

// Decide inspects a tentative delta encoding and returns whether a full
// checkpoint should be written instead. The scheduler's chain state is
// updated according to the decision.
func (s *Scheduler) Decide(gamma, maxErr float64) Decision {
	if !s.started {
		s.started = true
		s.reset()
		return Decision{Full: true, Reason: ReasonFirst}
	}
	est := s.accumErr + maxErr
	d := Decision{EstimatedChainError: est}
	switch {
	case est > s.cfg.ErrorBudget:
		d.Full, d.Reason = true, ReasonBudget
	case gamma >= s.cfg.GammaThreshold:
		d.Full, d.Reason = true, ReasonGamma
	case s.chainLen+1 > s.cfg.MaxChain:
		d.Full, d.Reason = true, ReasonChain
	default:
		d.Reason = ReasonDelta
	}
	if d.Full {
		s.reset()
	} else {
		s.chainLen++
		s.accumErr = est
	}
	return d
}

func (s *Scheduler) reset() {
	s.chainLen = 0
	s.accumErr = 0
}

// ChainLength returns the current number of deltas since the last full.
func (s *Scheduler) ChainLength() int { return s.chainLen }

// AccumulatedError returns the current chain's error estimate.
func (s *Scheduler) AccumulatedError() float64 { return s.accumErr }

// Stats summarizes a writer's activity.
type Stats struct {
	Fulls, Deltas int
	// FullReasons counts full checkpoints by reason.
	FullReasons map[Reason]int
}

// Writer appends iterations to a checkpoint store with adaptive
// full/delta decisions per variable.
type Writer struct {
	st    *checkpoint.Store
	cfg   Config
	sched map[string]*Scheduler
	last  map[string][]float64
	iter  int
	began bool
	stats Stats
}

// ErrSequence reports out-of-order appends.
var ErrSequence = errors.New("adaptive: non-consecutive iteration")

// NewWriter wraps a store.
func NewWriter(st *checkpoint.Store, cfg Config) *Writer {
	return &Writer{
		st:    st,
		cfg:   cfg.withDefaults(),
		sched: map[string]*Scheduler{},
		last:  map[string][]float64{},
		stats: Stats{FullReasons: map[Reason]int{}},
	}
}

// NewWriterAt creates a Writer primed to continue an existing store at
// iteration lastIter with known per-variable state. Each variable's
// scheduler starts a fresh chain, so the first post-recovery checkpoint
// of every variable is full — the conservative choice after a restart,
// since the reconstructed state already carries accumulated error.
func NewWriterAt(st *checkpoint.Store, cfg Config, lastIter int, lastState map[string][]float64) *Writer {
	w := NewWriter(st, cfg)
	w.iter = lastIter
	w.began = true
	for v, data := range lastState {
		w.last[v] = append([]float64(nil), data...)
		// A primed variable still needs its mandatory first full; the
		// zero-value scheduler provides exactly that.
		w.sched[v] = NewScheduler(w.cfg)
	}
	return w
}

// Append writes iteration data for every variable, deciding full vs
// delta per variable. Iterations must be consecutive.
func (w *Writer) Append(iteration int, vars map[string][]float64) (map[string]Decision, error) {
	if w.began && iteration != w.iter+1 {
		return nil, fmt.Errorf("%w: %d after %d", ErrSequence, iteration, w.iter)
	}
	decisions := make(map[string]Decision, len(vars))
	for v, data := range vars {
		sch := w.sched[v]
		if sch == nil {
			sch = NewScheduler(w.cfg)
			w.sched[v] = sch
		}
		prev, havePrev := w.last[v]

		var dec Decision
		var enc *core.Encoded
		if !havePrev {
			dec = sch.Decide(0, 0) // first sight: mandatory full
			if !dec.Full {
				return nil, fmt.Errorf("adaptive: internal error: first decision for %q was not full", v)
			}
		} else {
			var err error
			enc, err = core.Encode(prev, data, w.st.Options())
			if err != nil {
				return nil, fmt.Errorf("adaptive: %s@%d: %w", v, iteration, err)
			}
			dec = sch.Decide(enc.Gamma(), enc.MaxErrorRate())
		}

		if dec.Full {
			if err := w.st.WriteFull(v, iteration, data); err != nil {
				return nil, err
			}
			w.stats.Fulls++
			w.stats.FullReasons[dec.Reason]++
		} else {
			if err := w.st.WriteEncodedDelta(v, iteration, enc); err != nil {
				return nil, err
			}
			w.stats.Deltas++
		}
		w.last[v] = append([]float64(nil), data...)
		decisions[v] = dec
	}
	w.iter = iteration
	w.began = true
	return decisions, nil
}

// Stats returns a copy of the writer's counters.
func (w *Writer) Stats() Stats {
	out := Stats{Fulls: w.stats.Fulls, Deltas: w.stats.Deltas, FullReasons: map[Reason]int{}}
	for k, v := range w.stats.FullReasons {
		out.FullReasons[k] = v
	}
	return out
}
