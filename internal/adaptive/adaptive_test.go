package adaptive

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
)

func opts() core.Options {
	return core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering}
}

func newStore(t *testing.T) *checkpoint.Store {
	t.Helper()
	st, err := checkpoint.Create(filepath.Join(t.TempDir(), "ck"), opts())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// quietSeries changes by ~0.02 % per step: deltas should dominate.
func quietSeries(n, iters int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, iters)
	out[0] = make([]float64, n)
	for j := range out[0] {
		out[0][j] = 100 + rng.Float64()*10
	}
	for i := 1; i < iters; i++ {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = out[i-1][j] * (1 + rng.NormFloat64()*0.0002)
		}
	}
	return out
}

// turbulentSeries has most points jumping wildly: deltas barely pay.
func turbulentSeries(n, iters int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, iters)
	out[0] = make([]float64, n)
	for j := range out[0] {
		out[0][j] = 100 + rng.Float64()*10
	}
	for i := 1; i < iters; i++ {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = out[i-1][j] * math.Exp(rng.NormFloat64()*0.8)
		}
	}
	return out
}

func TestSchedulerFirstIsFull(t *testing.T) {
	s := NewScheduler(Config{})
	d := s.Decide(0, 0)
	if !d.Full || d.Reason != ReasonFirst {
		t.Errorf("first decision: %+v", d)
	}
	d = s.Decide(0.01, 0.0001)
	if d.Full {
		t.Errorf("second decision full: %+v", d)
	}
}

func TestSchedulerErrorBudget(t *testing.T) {
	s := NewScheduler(Config{ErrorBudget: 0.005})
	s.Decide(0, 0) // first full
	// Each delta contributes max error 0.001: after 5 the budget (0.005)
	// is exceeded on the 6th.
	fullAt := -1
	for i := 1; i <= 10; i++ {
		d := s.Decide(0.01, 0.001)
		if d.Full {
			fullAt = i
			if d.Reason != ReasonBudget {
				t.Errorf("reason = %v", d.Reason)
			}
			break
		}
	}
	if fullAt != 6 {
		t.Errorf("budget full at delta %d, want 6 (5x0.001 <= 0.005 < 6x0.001)", fullAt)
	}
	// After the reset the chain error starts over.
	if s.AccumulatedError() != 0 || s.ChainLength() != 0 {
		t.Errorf("state not reset: %v, %d", s.AccumulatedError(), s.ChainLength())
	}
}

func TestSchedulerGammaThreshold(t *testing.T) {
	s := NewScheduler(Config{GammaThreshold: 0.4})
	s.Decide(0, 0)
	d := s.Decide(0.45, 0.0001)
	if !d.Full || d.Reason != ReasonGamma {
		t.Errorf("gamma decision: %+v", d)
	}
}

func TestSchedulerMaxChain(t *testing.T) {
	s := NewScheduler(Config{MaxChain: 3, ErrorBudget: 100, GammaThreshold: 1.1})
	s.Decide(0, 0)
	var full int
	for i := 1; i <= 10; i++ {
		if d := s.Decide(0, 0); d.Full {
			full = i
			if d.Reason != ReasonChain {
				t.Errorf("reason = %v", d.Reason)
			}
			break
		}
	}
	if full != 4 {
		t.Errorf("chain cap hit at %d, want 4 (3 deltas then full)", full)
	}
}

func TestWriterQuietSeriesMostlyDeltas(t *testing.T) {
	st := newStore(t)
	w := NewWriter(st, Config{ErrorBudget: 0.01})
	series := quietSeries(2000, 20, 1)
	for i, data := range series {
		if _, err := w.Append(i, map[string][]float64{"v": data}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	stats := w.Stats()
	if stats.Fulls > 3 {
		t.Errorf("quiet series wrote %d fulls", stats.Fulls)
	}
	if stats.Deltas < 17 {
		t.Errorf("quiet series wrote only %d deltas", stats.Deltas)
	}
	// Everything restarts within the budget.
	for i := range series {
		rec, err := st.Restart("v", i)
		if err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
		for j := range rec {
			rel := math.Abs(rec[j]-series[i][j]) / math.Abs(series[i][j])
			if rel > 0.011 {
				t.Fatalf("iteration %d point %d error %v exceeds budget", i, j, rel)
			}
		}
	}
}

func TestWriterTurbulentSeriesWritesFulls(t *testing.T) {
	st := newStore(t)
	w := NewWriter(st, Config{GammaThreshold: 0.5})
	series := turbulentSeries(2000, 8, 2)
	for i, data := range series {
		if _, err := w.Append(i, map[string][]float64{"v": data}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	stats := w.Stats()
	if stats.Fulls < 6 {
		t.Errorf("turbulent series wrote only %d fulls (deltas %d)", stats.Fulls, stats.Deltas)
	}
	if stats.FullReasons[ReasonGamma] == 0 {
		t.Errorf("no gamma-forced fulls: %+v", stats.FullReasons)
	}
}

func TestWriterBudgetBoundsActualRestartError(t *testing.T) {
	// The core guarantee of the scheduler: for every iteration, the
	// true restart error is below the configured budget (first-order;
	// allow the quadratic slack).
	st := newStore(t)
	budget := 0.004
	w := NewWriter(st, Config{ErrorBudget: budget})
	rng := rand.New(rand.NewSource(3))
	series := make([][]float64, 24)
	series[0] = make([]float64, 1500)
	for j := range series[0] {
		series[0][j] = 50 + rng.Float64()*10
	}
	for i := 1; i < len(series); i++ {
		series[i] = make([]float64, 1500)
		for j := range series[i] {
			series[i][j] = series[i-1][j] * (1 + rng.NormFloat64()*0.002)
		}
	}
	for i, data := range series {
		if _, err := w.Append(i, map[string][]float64{"v": data}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Stats().Fulls < 2 {
		t.Fatalf("expected budget-forced fulls, got %+v", w.Stats())
	}
	for i := range series {
		rec, err := st.Restart("v", i)
		if err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
		for j := range rec {
			rel := math.Abs(rec[j]-series[i][j]) / math.Abs(series[i][j])
			if rel > budget*1.2 {
				t.Fatalf("iteration %d point %d error %v exceeds budget %v", i, j, rel, budget)
			}
		}
	}
}

func TestWriterMultiVariableIndependentDecisions(t *testing.T) {
	st := newStore(t)
	w := NewWriter(st, Config{GammaThreshold: 0.5})
	quiet := quietSeries(1000, 6, 4)
	rough := turbulentSeries(1000, 6, 5)
	for i := 0; i < 6; i++ {
		decs, err := w.Append(i, map[string][]float64{
			"quiet": quiet[i],
			"rough": rough[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if decs["quiet"].Full {
				t.Errorf("iteration %d: quiet variable got a full (%v)", i, decs["quiet"].Reason)
			}
			if !decs["rough"].Full {
				t.Errorf("iteration %d: rough variable got a delta", i)
			}
		}
	}
}

func TestWriterSequenceValidation(t *testing.T) {
	st := newStore(t)
	w := NewWriter(st, Config{})
	series := quietSeries(100, 3, 6)
	if _, err := w.Append(0, map[string][]float64{"v": series[0]}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(2, map[string][]float64{"v": series[2]}); !errors.Is(err, ErrSequence) {
		t.Errorf("gap accepted: %v", err)
	}
}

func TestWriterNewVariableMidRunGetsFull(t *testing.T) {
	st := newStore(t)
	w := NewWriter(st, Config{})
	series := quietSeries(100, 4, 7)
	if _, err := w.Append(0, map[string][]float64{"a": series[0]}); err != nil {
		t.Fatal(err)
	}
	decs, err := w.Append(1, map[string][]float64{"a": series[1], "b": series[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !decs["b"].Full || decs["b"].Reason != ReasonFirst {
		t.Errorf("new variable decision: %+v", decs["b"])
	}
	if decs["a"].Full {
		t.Errorf("existing variable got full: %+v", decs["a"])
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ErrorBudget != 0.01 || c.GammaThreshold != 0.5 || c.MaxChain != 64 {
		t.Errorf("defaults: %+v", c)
	}
}
