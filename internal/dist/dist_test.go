package dist

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"numarck/internal/core"
)

func genData(n int, seed int64) (prev, cur []float64) {
	rng := rand.New(rand.NewSource(seed))
	prev = make([]float64, n)
	cur = make([]float64, n)
	for i := range prev {
		prev[i] = 10 + rng.Float64()*90
		change := rng.NormFloat64() * 0.002
		if rng.Float64() < 0.05 {
			change = rng.NormFloat64() * 0.1
		}
		cur[i] = prev[i] * (1 + change)
	}
	return prev, cur
}

func opts(s core.Strategy) core.Options {
	return core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: s}
}

// --- fabric -----------------------------------------------------------

func TestFabricAllReduceSum(t *testing.T) {
	f, err := NewFabric(4)
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]float64, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vec := []float64{float64(r), 1}
			out, err := f.AllReduce(r, vec, OpSum)
			if err != nil {
				t.Error(err)
				return
			}
			results[r] = out
		}(r)
	}
	wg.Wait()
	for r, out := range results {
		if out[0] != 0+1+2+3 || out[1] != 4 {
			t.Errorf("rank %d: %v", r, out)
		}
	}
	if f.BytesSent() == 0 {
		t.Error("no bytes accounted")
	}
}

func TestFabricAllReduceMinMax(t *testing.T) {
	f, _ := NewFabric(3)
	var wg sync.WaitGroup
	mins := make([]float64, 3)
	maxs := make([]float64, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			mn, err := f.AllReduceScalar(r, float64(r)-1, OpMin)
			if err != nil {
				t.Error(err)
				return
			}
			mins[r] = mn
			mx, err := f.AllReduceScalar(r, float64(r)-1, OpMax)
			if err != nil {
				t.Error(err)
				return
			}
			maxs[r] = mx
		}(r)
	}
	wg.Wait()
	for r := 0; r < 3; r++ {
		if mins[r] != -1 || maxs[r] != 1 {
			t.Errorf("rank %d: min %v max %v", r, mins[r], maxs[r])
		}
	}
}

func TestFabricSingleRankNoTraffic(t *testing.T) {
	f, _ := NewFabric(1)
	out, err := f.AllReduce(0, []float64{7}, OpSum)
	if err != nil || out[0] != 7 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if f.BytesSent() != 0 {
		t.Errorf("single rank moved %d bytes", f.BytesSent())
	}
}

func TestFabricRejectsBadRank(t *testing.T) {
	f, _ := NewFabric(2)
	if _, err := f.AllReduce(5, []float64{1}, OpSum); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := NewFabric(0); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestFabricMismatchedCollectiveFails(t *testing.T) {
	f, _ := NewFabric(2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errs[0] = f.AllReduce(0, []float64{1, 2}, OpSum)
	}()
	go func() {
		defer wg.Done()
		_, errs[1] = f.AllReduce(1, []float64{1}, OpSum)
	}()
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		t.Error("mismatched lengths not detected")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

// --- distributed encode ------------------------------------------------

func TestEncodeLocalTablesMatchesSingleRank(t *testing.T) {
	prev, cur := genData(10000, 1)
	for _, s := range core.Strategies {
		res, err := Encode(prev, cur, Config{Ranks: 1, Mode: LocalTables, Opt: opts(s)})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		single, err := core.Encode(prev, cur, opts(s))
		if err != nil {
			t.Fatal(err)
		}
		if res.Gamma() != single.Gamma() {
			t.Errorf("%v: 1-rank gamma %v != direct %v", s, res.Gamma(), single.Gamma())
		}
		if res.BytesMoved != 0 {
			t.Errorf("%v: local mode moved %d bytes", s, res.BytesMoved)
		}
	}
}

func TestEncodeErrorBoundHolsAllModesStrategies(t *testing.T) {
	prev, cur := genData(20000, 2)
	for _, mode := range []TableMode{LocalTables, GlobalTable} {
		for _, s := range core.Strategies {
			for _, ranks := range []int{1, 3, 8} {
				res, err := Encode(prev, cur, Config{Ranks: ranks, Mode: mode, Opt: opts(s)})
				if err != nil {
					t.Fatalf("%v/%v/%d: %v", mode, s, ranks, err)
				}
				rec, err := res.Decode(prev)
				if err != nil {
					t.Fatal(err)
				}
				for j := range cur {
					trueR := (cur[j] - prev[j]) / prev[j]
					recR := (rec[j] - prev[j]) / prev[j]
					if math.Abs(recR-trueR) > 0.001+1e-12 {
						t.Fatalf("%v/%v/%d: bound violated at %d", mode, s, ranks, j)
					}
				}
				if m := res.MaxErrorRate(); m > 0.001+1e-12 {
					t.Errorf("%v/%v/%d: max err %v", mode, s, ranks, m)
				}
			}
		}
	}
}

func TestGlobalTableIdenticalAcrossRanks(t *testing.T) {
	prev, cur := genData(12000, 3)
	for _, s := range core.Strategies {
		res, err := Encode(prev, cur, Config{Ranks: 4, Mode: GlobalTable, Opt: opts(s)})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		ref := res.Shards[0].BinRatios
		for r := 1; r < len(res.Shards); r++ {
			got := res.Shards[r].BinRatios
			if len(got) != len(ref) {
				t.Fatalf("%v: rank %d table size %d != %d", s, r, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%v: rank %d table entry %d differs: %v vs %v", s, r, i, got[i], ref[i])
				}
			}
		}
		if res.BytesMoved == 0 {
			t.Errorf("%v: global mode moved no bytes", s)
		}
	}
}

func TestGlobalKMeansMatchesSingleRankQuality(t *testing.T) {
	// The parallel k-means reduces partial sums in a different
	// floating-point order than the serial implementation, so tables
	// are not bit-identical; the learned quality must match closely.
	prev, cur := genData(8000, 4)
	resDist, err := Encode(prev, cur, Config{Ranks: 1, Mode: GlobalTable, Opt: opts(core.Clustering)})
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.Encode(prev, cur, opts(core.Clustering))
	if err != nil {
		t.Fatal(err)
	}
	a, b := resDist.Shards[0].BinRatios, single.BinRatios
	if len(a) != len(b) {
		t.Fatalf("table sizes %d vs %d", len(a), len(b))
	}
	if g1, g2 := resDist.Gamma(), single.Gamma(); math.Abs(g1-g2) > 0.005 {
		t.Errorf("gamma %v vs %v", g1, g2)
	}
	if e1, e2 := resDist.MeanErrorRate(), single.MeanErrorRate(); math.Abs(e1-e2) > 1e-4 {
		t.Errorf("mean err %v vs %v", e1, e2)
	}
}

func TestGlobalVsLocalTradeoff(t *testing.T) {
	// The ablation the package exists for: local tables move zero
	// bytes but store R tables; the global table moves bytes but
	// stores one.
	prev, cur := genData(30000, 5)
	local, err := Encode(prev, cur, Config{Ranks: 8, Mode: LocalTables, Opt: opts(core.Clustering)})
	if err != nil {
		t.Fatal(err)
	}
	global, err := Encode(prev, cur, Config{Ranks: 8, Mode: GlobalTable, Opt: opts(core.Clustering)})
	if err != nil {
		t.Fatal(err)
	}
	if local.BytesMoved != 0 {
		t.Errorf("local moved %d bytes", local.BytesMoved)
	}
	if global.BytesMoved == 0 {
		t.Error("global moved no bytes")
	}
	if local.TableEntries <= global.TableEntries {
		t.Errorf("local stores %d table entries, global %d — expected R tables > 1 table",
			local.TableEntries, global.TableEntries)
	}
	// Both must stay within the bound and compress substantially.
	if local.CompressionRatio() < 50 || global.CompressionRatio() < 50 {
		t.Errorf("ratios local %.1f global %.1f", local.CompressionRatio(), global.CompressionRatio())
	}
}

func TestEncodeDeterministicAcrossRuns(t *testing.T) {
	prev, cur := genData(9000, 6)
	cfg := Config{Ranks: 5, Mode: GlobalTable, Opt: opts(core.Clustering)}
	a, err := Encode(prev, cur, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(prev, cur, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Gamma() != b.Gamma() || a.BytesMoved != b.BytesMoved {
		t.Errorf("non-deterministic: gamma %v/%v bytes %d/%d", a.Gamma(), b.Gamma(), a.BytesMoved, b.BytesMoved)
	}
}

func TestEncodeConfigValidation(t *testing.T) {
	prev, cur := genData(10, 7)
	if _, err := Encode(prev, cur[:5], Config{Ranks: 2, Opt: opts(core.EqualWidth)}); !errors.Is(err, ErrConfig) {
		t.Errorf("length mismatch: %v", err)
	}
	if _, err := Encode(prev, cur, Config{Ranks: 0, Opt: opts(core.EqualWidth)}); !errors.Is(err, ErrConfig) {
		t.Errorf("zero ranks: %v", err)
	}
	if _, err := Encode(prev, cur, Config{Ranks: 2, Opt: core.Options{}}); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestEncodeMoreRanksThanPoints(t *testing.T) {
	prev, cur := genData(3, 8)
	res, err := Encode(prev, cur, Config{Ranks: 10, Mode: GlobalTable, Opt: opts(core.EqualWidth)})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := res.Decode(prev)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 3 {
		t.Errorf("decoded %d points", len(rec))
	}
}

func TestEncodeEmpty(t *testing.T) {
	res, err := Encode(nil, nil, Config{Ranks: 4, Mode: GlobalTable, Opt: opts(core.Clustering)})
	if err != nil {
		t.Fatal(err)
	}
	if res.N() != 0 || res.Gamma() != 0 {
		t.Errorf("empty encode: %+v", res)
	}
	rec, err := res.Decode(nil)
	if err != nil || len(rec) != 0 {
		t.Errorf("empty decode: %v, %v", rec, err)
	}
}

func TestEncodeUnchangedData(t *testing.T) {
	prev := make([]float64, 1000)
	for i := range prev {
		prev[i] = float64(i + 1)
	}
	cur := append([]float64(nil), prev...)
	res, err := Encode(prev, cur, Config{Ranks: 4, Mode: GlobalTable, Opt: opts(core.Clustering)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gamma() != 0 || res.MeanErrorRate() != 0 {
		t.Errorf("unchanged data: gamma %v err %v", res.Gamma(), res.MeanErrorRate())
	}
}

func TestGlobalTableHelpsSkewedShards(t *testing.T) {
	// Construct data where one shard sees only small ratios and
	// another only large ones: with local tables each shard fits its
	// own range; with a global table the shared table must cover both.
	// Both must respect the bound; the global table should move bytes
	// proportional to k, not to n.
	n := 20000
	rng := rand.New(rand.NewSource(9))
	prev := make([]float64, n)
	cur := make([]float64, n)
	for i := range prev {
		prev[i] = 100
		var change float64
		if i < n/2 {
			change = 0.002 + rng.Float64()*0.001
		} else {
			change = 0.5 + rng.Float64()*0.1
		}
		cur[i] = prev[i] * (1 + change)
	}
	res, err := Encode(prev, cur, Config{Ranks: 2, Mode: GlobalTable, Opt: opts(core.Clustering)})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.MaxErrorRate(); m > 0.001+1e-12 {
		t.Errorf("bound violated: %v", m)
	}
	// Traffic should be tens of KB (k-sized reductions), far below
	// shipping the 160 KB of raw data per rank.
	if res.BytesMoved > int64(8*n) {
		t.Errorf("global table moved %d bytes, more than half the raw data", res.BytesMoved)
	}
}

func BenchmarkEncodeGlobal8Ranks(b *testing.B) {
	prev, cur := genData(1<<17, 1)
	cfg := Config{Ranks: 8, Mode: GlobalTable, Opt: opts(core.Clustering)}
	b.SetBytes(int64(8 * len(prev)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(prev, cur, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeLocal8Ranks(b *testing.B) {
	prev, cur := genData(1<<17, 1)
	cfg := Config{Ranks: 8, Mode: LocalTables, Opt: opts(core.Clustering)}
	b.SetBytes(int64(8 * len(prev)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(prev, cur, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
