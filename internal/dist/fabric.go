// Package dist implements rank-parallel NUMARCK encoding in the style
// of the paper's MPI deployment: the data of one checkpoint is
// partitioned across ranks, each rank computes its change ratios
// locally, and the distribution of changes is learned either per rank
// (zero communication, R bin tables) or globally (one shared table,
// learned with an MPI-style parallel k-means whose reductions are the
// only inter-rank traffic).
//
// The paper's exascale motivation is minimizing data movement ("more
// computations locally for learning patterns of change", §I), so the
// fabric meters every byte a rank sends; the local-vs-global table
// trade-off is an ablation the experiments harness reports.
//
// Ranks are goroutines and the fabric is built on shared-memory
// synchronization — the in-process equivalent of MPI processes with
// the same communication pattern and the classic recursive-doubling
// cost model for accounting.
package dist

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Op is a reduction operator for AllReduce.
type Op int

const (
	// OpSum adds element-wise.
	OpSum Op = iota
	// OpMin takes the element-wise minimum.
	OpMin
	// OpMax takes the element-wise maximum.
	OpMax
)

func (o Op) apply(dst, src []float64) {
	switch o {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}
}

// Fabric is a byte-metered collective-communication layer for a fixed
// set of ranks.
type Fabric struct {
	ranks     int
	bytesSent atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	genNum  int
	arrived int
	op      Op
	acc     []float64
	out     []float64
	failed  error
}

// NewFabric creates a fabric for the given number of ranks (>= 1).
func NewFabric(ranks int) (*Fabric, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("dist: need >= 1 rank, got %d", ranks)
	}
	f := &Fabric{ranks: ranks}
	f.cond = sync.NewCond(&f.mu)
	return f, nil
}

// Ranks returns the number of ranks.
func (f *Fabric) Ranks() int { return f.ranks }

// BytesSent returns the total bytes ranks have sent through collectives
// so far. A single-rank fabric moves no bytes.
func (f *Fabric) BytesSent() int64 { return f.bytesSent.Load() }

// AllReduce combines vec element-wise across all ranks with op and
// returns the result to every caller. Every rank must call with the
// same vector length and operator; the call blocks until all ranks
// contribute. The byte meter charges each rank ceil(log2 R) vector
// sends, the recursive-doubling cost.
func (f *Fabric) AllReduce(rank int, vec []float64, op Op) ([]float64, error) {
	if rank < 0 || rank >= f.ranks {
		return nil, fmt.Errorf("dist: rank %d out of range [0,%d)", rank, f.ranks)
	}
	if f.ranks == 1 {
		return append([]float64(nil), vec...), nil
	}

	f.mu.Lock()
	defer f.mu.Unlock()

	if f.arrived == 0 {
		f.acc = append([]float64(nil), vec...)
		f.op = op
		f.failed = nil
	} else {
		if len(vec) != len(f.acc) || op != f.op {
			// Caller bug: poison the collective so every rank fails
			// loudly instead of deadlocking.
			f.failed = fmt.Errorf("dist: rank %d joined collective with len %d/op %d, leader used len %d/op %d",
				rank, len(vec), op, len(f.acc), f.op)
		} else {
			f.op.apply(f.acc, vec)
		}
	}
	f.arrived++
	gen := f.genNum

	if f.arrived == f.ranks {
		f.out = f.acc
		f.acc = nil
		f.arrived = 0
		f.genNum++
		f.cond.Broadcast()
	} else {
		for gen == f.genNum {
			f.cond.Wait()
		}
	}
	if f.failed != nil {
		return nil, f.failed
	}
	f.bytesSent.Add(int64(8 * len(vec) * log2ceil(f.ranks)))
	return append([]float64(nil), f.out...), nil
}

// AllReduceScalar reduces a single value.
func (f *Fabric) AllReduceScalar(rank int, v float64, op Op) (float64, error) {
	out, err := f.AllReduce(rank, []float64{v}, op)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

func log2ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}

// negInf and posInf are reduction identities for min/max collectives
// over possibly-empty local sets.
var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)
