package dist

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"numarck/internal/core"
	"numarck/internal/fputil"
	"numarck/internal/kmeans"
)

// TableMode selects how the distribution of change ratios is learned
// across ranks.
type TableMode int

const (
	// LocalTables has each rank learn its own 2^B-1 representative
	// table from its shard. No inter-rank communication; storage pays
	// for R tables. This is the paper's "minimal data movement,
	// mostly in place" extreme.
	LocalTables TableMode = iota
	// GlobalTable learns one table over all ranks' ratios: min/max
	// reductions for the binning strategies, an MPI-style parallel
	// k-means (partial-sum allreduce per Lloyd iteration) for
	// clustering. Storage pays for one table; communication pays for
	// the reductions.
	GlobalTable
)

// String names the mode.
func (m TableMode) String() string {
	switch m {
	case LocalTables:
		return "local-tables"
	case GlobalTable:
		return "global-table"
	default:
		return fmt.Sprintf("TableMode(%d)", int(m))
	}
}

// Config describes a distributed encode.
type Config struct {
	// Ranks is the number of ranks the points are partitioned over.
	Ranks int
	// Mode selects local or global table learning.
	Mode TableMode
	// Opt are the per-rank NUMARCK options (error bound, bits,
	// strategy).
	Opt core.Options
}

// Result is the outcome of a distributed encode.
type Result struct {
	// Shards holds each rank's encoding of its contiguous slice of
	// points, in rank order.
	Shards []*core.Encoded
	// ShardOffsets[r] is the global index of rank r's first point.
	ShardOffsets []int
	// BytesMoved is the total inter-rank traffic of table learning.
	BytesMoved int64
	// TableEntries is the total number of representative-table entries
	// stored across the whole encode (R tables for LocalTables, one
	// for GlobalTable).
	TableEntries int
}

// ErrConfig reports an invalid distributed-encode configuration.
var ErrConfig = errors.New("dist: invalid config")

// Decode reconstructs the full checkpoint by decoding every shard
// against its slice of prev.
func (r *Result) Decode(prev []float64) ([]float64, error) {
	out := make([]float64, 0, len(prev))
	for i, sh := range r.Shards {
		lo := r.ShardOffsets[i]
		hi := lo + sh.N
		if hi > len(prev) {
			return nil, fmt.Errorf("dist: shard %d spans [%d,%d) but prev has %d points", i, lo, hi, len(prev))
		}
		dec, err := sh.Decode(prev[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("dist: shard %d: %w", i, err)
		}
		out = append(out, dec...)
	}
	if len(out) != len(prev) {
		return nil, fmt.Errorf("dist: shards cover %d of %d points", len(out), len(prev))
	}
	return out, nil
}

// N returns the total number of points.
func (r *Result) N() int {
	n := 0
	for _, sh := range r.Shards {
		n += sh.N
	}
	return n
}

// Gamma returns the aggregate incompressible ratio.
func (r *Result) Gamma() float64 {
	n := r.N()
	if n == 0 {
		return 0
	}
	inc := 0
	for _, sh := range r.Shards {
		inc += sh.Incompressible.Count()
	}
	return float64(inc) / float64(n)
}

// MeanErrorRate returns the point-weighted mean ratio error.
func (r *Result) MeanErrorRate() float64 {
	n := r.N()
	if n == 0 {
		return 0
	}
	var sum float64
	for _, sh := range r.Shards {
		sum += sh.MeanErrorRate() * float64(sh.N)
	}
	return sum / float64(n)
}

// MaxErrorRate returns the worst per-point ratio error of any shard.
func (r *Result) MaxErrorRate() float64 {
	var m float64
	for _, sh := range r.Shards {
		if e := sh.MaxErrorRate(); e > m {
			m = e
		}
	}
	return m
}

// StorageBits returns the paper-Eq.3-style storage model for the whole
// distributed encode: per point either a B-bit index or a raw 64-bit
// value, plus 64 bits per stored table entry (R tables for LocalTables,
// one for GlobalTable).
func (r *Result) StorageBits() int {
	bits := 64 * r.TableEntries
	for _, sh := range r.Shards {
		inc := sh.Incompressible.Count()
		bits += (sh.N-inc)*sh.Opt.IndexBits + inc*64
	}
	return bits
}

// CompressionRatio returns the percent saving of StorageBits over raw
// 64-bit storage.
func (r *Result) CompressionRatio() float64 {
	n := r.N()
	if n == 0 {
		return 0
	}
	raw := 64 * n
	return float64(raw-r.StorageBits()) / float64(raw) * 100
}

// Encode partitions prev/cur across cfg.Ranks contiguous shards and
// encodes each in parallel under cfg.Mode.
func Encode(prev, cur []float64, cfg Config) (*Result, error) {
	if len(prev) != len(cur) {
		return nil, fmt.Errorf("%w: prev has %d points, cur %d", ErrConfig, len(prev), len(cur))
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("%w: need >= 1 rank, got %d", ErrConfig, cfg.Ranks)
	}
	opt, err := cfg.Opt.Validate()
	if err != nil {
		return nil, err
	}
	if cfg.Ranks > len(prev) && len(prev) > 0 {
		cfg.Ranks = len(prev)
	}
	if len(prev) == 0 {
		cfg.Ranks = 1
	}

	fabric, err := NewFabric(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Shards:       make([]*core.Encoded, cfg.Ranks),
		ShardOffsets: make([]int, cfg.Ranks),
	}
	errs := make([]error, cfg.Ranks)

	chunk := (len(prev) + cfg.Ranks - 1) / cfg.Ranks
	var wg sync.WaitGroup
	for r := 0; r < cfg.Ranks; r++ {
		lo := r * chunk
		hi := lo + chunk
		if hi > len(prev) {
			hi = len(prev)
		}
		if lo > hi {
			lo, hi = len(prev), len(prev)
		}
		res.ShardOffsets[r] = lo
		wg.Add(1)
		go func(r, lo, hi int) {
			defer wg.Done()
			res.Shards[r], errs[r] = encodeRank(fabric, r, prev[lo:hi], cur[lo:hi], cfg.Mode, opt)
		}(r, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.BytesMoved = fabric.BytesSent()
	for _, sh := range res.Shards {
		res.TableEntries += len(sh.BinRatios)
	}
	if cfg.Mode == GlobalTable && cfg.Ranks > 1 {
		// All ranks share one table; count it once.
		res.TableEntries = len(res.Shards[0].BinRatios)
	}
	return res, nil
}

// encodeRank runs one rank's part of the encode.
func encodeRank(f *Fabric, rank int, prev, cur []float64, mode TableMode, opt core.Options) (*core.Encoded, error) {
	if mode == LocalTables || f.Ranks() == 1 {
		// Every rank still participates in a zero-length barrier so
		// single-mode runs have identical structure (and the fabric
		// records zero traffic for them only if ranks == 1).
		return core.Encode(prev, cur, opt)
	}

	// Global mode: compute local ratios, learn the shared table, then
	// encode the shard against it.
	ratios, err := core.ComputeRatios(prev, cur, 1)
	if err != nil {
		return nil, err
	}
	var large []float64
	if opt.DisableZeroIndex {
		large = ratios.All()
	} else {
		large = ratios.Large(opt.ErrorBound)
	}
	table, err := learnGlobalTable(f, rank, large, opt)
	if err != nil {
		return nil, err
	}
	if len(table) == 0 {
		// No rank had large ratios: plain encode degenerates to the
		// zero-index-only case.
		return core.Encode(prev, cur, opt)
	}
	return core.EncodeWithTable(prev, cur, table, opt)
}

// learnGlobalTable learns one representative table over all ranks'
// large ratios. Every rank returns the identical table. An empty table
// means no rank had large ratios.
func learnGlobalTable(f *Fabric, rank int, large []float64, opt core.Options) ([]float64, error) {
	k := opt.NumBins()
	switch opt.Strategy {
	case core.EqualWidth:
		lo, hi, n, err := globalRange(f, rank, large)
		if err != nil || n == 0 {
			return nil, err
		}
		return core.EqualWidthTable(lo, hi, k), nil

	case core.LogScale:
		stats := logSideStats(large)
		red, err := f.AllReduce(rank, []float64{
			stats.negMin, -stats.negMax,
			stats.posMin, -stats.posMax,
		}, OpMin)
		if err != nil {
			return nil, err
		}
		cnt, err := f.AllReduce(rank, []float64{stats.nNeg, stats.nPos}, OpSum)
		if err != nil {
			return nil, err
		}
		nNeg, nPos := int(cnt[0]+0.5), int(cnt[1]+0.5)
		if nNeg+nPos == 0 {
			return nil, nil
		}
		return core.LogScaleTable(red[0], -red[1], nNeg, red[2], -red[3], nPos, k), nil

	case core.Clustering:
		return globalKMeans(f, rank, large, k, opt)

	default:
		return nil, fmt.Errorf("%w: strategy %v", ErrConfig, opt.Strategy)
	}
}

// globalRange min/max-reduces the local ratio range. n is the global
// count of large ratios.
func globalRange(f *Fabric, rank int, large []float64) (lo, hi float64, n int, err error) {
	lo, hi = posInf, negInf
	for _, v := range large {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// Two collectives: [min, -max] under OpMin, count under OpSum.
	red, err := f.AllReduce(rank, []float64{lo, -hi}, OpMin)
	if err != nil {
		return 0, 0, 0, err
	}
	total, err := f.AllReduceScalar(rank, float64(len(large)), OpSum)
	if err != nil {
		return 0, 0, 0, err
	}
	return red[0], -red[1], int(total + 0.5), nil
}

type sideStats struct {
	negMin, negMax float64 // magnitudes
	posMin, posMax float64
	nNeg, nPos     float64
}

// logSideStats summarizes a shard for the log-scale table: per-sign
// magnitude ranges and counts. Ranges merge under OpMin (maxes are
// negated by the caller); counts merge under OpSum.
func logSideStats(large []float64) sideStats {
	s := sideStats{negMin: posInf, negMax: negInf, posMin: posInf, posMax: negInf}
	for _, d := range large {
		a := math.Abs(d)
		if fputil.IsZero(a) {
			continue
		}
		if d < 0 {
			s.nNeg++
			if a < s.negMin {
				s.negMin = a
			}
			if a > s.negMax {
				s.negMax = a
			}
		} else {
			s.nPos++
			if a < s.posMin {
				s.posMin = a
			}
			if a > s.posMax {
				s.posMax = a
			}
		}
	}
	return s
}

// globalKMeans is the paper's MPI-parallel k-means over all ranks'
// ratios: seeds come from a merged equal-width histogram, then each
// Lloyd iteration allreduces per-centroid partial sums and counts.
// Every rank deterministically computes identical centroids.
func globalKMeans(f *Fabric, rank int, large []float64, k int, opt core.Options) ([]float64, error) {
	lo, hi, n, err := globalRange(f, rank, large)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if k > n {
		k = n
	}

	// Merged histogram seeding: local counts, one sum-allreduce.
	bins := kmeans.SeedHistogramBins(k)
	counts := make([]float64, bins)
	if hi > lo {
		w := (hi - lo) / float64(bins)
		for _, x := range large {
			i := int((x - lo) / w)
			if i >= bins {
				i = bins - 1
			}
			if i < 0 {
				i = 0
			}
			counts[i]++
		}
	}
	merged, err := f.AllReduce(rank, counts, OpSum)
	if err != nil {
		return nil, err
	}
	intCounts := make([]int, bins)
	for i, c := range merged {
		intCounts[i] = int(c + 0.5)
	}
	cents := kmeans.SeedFromCounts(lo, hi, intCounts, k)
	if cents == nil {
		return nil, nil
	}

	maxIter := opt.KMeansMaxIter
	if maxIter <= 0 {
		maxIter = 12
	}
	// Lloyd iterations: partial [sum_0..sum_k-1, count_0..count_k-1]
	// reduced across ranks each round.
	partial := make([]float64, 2*k)
	for iter := 0; iter < maxIter; iter++ {
		for i := range partial {
			partial[i] = 0
		}
		for _, x := range large {
			c := kmeans.Nearest(cents, x)
			partial[c] += x
			partial[k+c]++
		}
		red, err := f.AllReduce(rank, partial, OpSum)
		if err != nil {
			return nil, err
		}
		moved := 0.0
		for c := 0; c < k; c++ {
			cnt := red[k+c]
			if fputil.IsZero(cnt) {
				continue
			}
			next := red[c] / cnt
			if d := math.Abs(next - cents[c]); d > moved {
				moved = d
			}
			cents[c] = next
		}
		if moved < 1e-12 {
			break
		}
	}
	return cents, nil
}
