// Package bspline implements clamped uniform cubic B-spline curves and
// their least-squares fit to sampled data. It is the numerical substrate
// shared by the two lossy baselines the NUMARCK paper compares against:
// the B-Splines compressor of Chou & Piegl (ref [7]) and ISABELA
// (ref [15]), which fits a B-spline to the sorted values of each window.
//
// A fit treats the data vector y as samples of a function over the unit
// parameter interval, taken at t_i = i/(n-1), and solves the banded
// normal equations NᵀN c = Nᵀy with a banded Cholesky factorization.
// Cubic basis functions have 4-wide support, so the Gram matrix has
// bandwidth 3 and the whole fit runs in O(n + P) time and memory.
package bspline

import (
	"errors"
	"fmt"
	"math"

	"numarck/internal/fputil"
)

// Degree is the polynomial degree of all curves in this package.
const Degree = 3

// ErrFit reports an invalid fitting request.
var ErrFit = errors.New("bspline: invalid fit")

// Curve is a clamped uniform cubic B-spline on [0, 1].
type Curve struct {
	// Ctrl are the control point ordinates. len(Ctrl) >= Degree+1.
	Ctrl []float64
}

// NumKnots returns the length of the implied clamped uniform knot
// vector (P + Degree + 1).
func (c *Curve) NumKnots() int { return len(c.Ctrl) + Degree + 1 }

// knot returns knot i of the clamped uniform vector: Degree+1 zeros,
// uniformly spaced interior knots, Degree+1 ones.
func knot(i, numCtrl int) float64 {
	switch {
	case i <= Degree:
		return 0
	case i >= numCtrl:
		return 1
	default:
		return float64(i-Degree) / float64(numCtrl-Degree)
	}
}

// findSpan returns the knot span index k such that knot(k) <= t <
// knot(k+1), with the conventional clamp of t=1 into the last non-empty
// span (The NURBS Book A2.1, specialized to clamped uniform knots).
func findSpan(t float64, numCtrl int) int {
	if t >= 1 {
		return numCtrl - 1
	}
	if t <= 0 {
		return Degree
	}
	spans := numCtrl - Degree // number of interior spans
	k := Degree + int(t*float64(spans))
	if k > numCtrl-1 {
		k = numCtrl - 1
	}
	// Guard against floating-point edge cases at span boundaries.
	for k > Degree && t < knot(k, numCtrl) {
		k--
	}
	for k < numCtrl-1 && t >= knot(k+1, numCtrl) {
		k++
	}
	return k
}

// basisFuns computes the Degree+1 non-vanishing basis functions at t in
// span k (The NURBS Book A2.2). out[j] is N_{k-Degree+j}(t).
func basisFuns(k int, t float64, numCtrl int, out *[Degree + 1]float64) {
	var left, right [Degree + 1]float64
	out[0] = 1
	for j := 1; j <= Degree; j++ {
		left[j] = t - knot(k+1-j, numCtrl)
		right[j] = knot(k+j, numCtrl) - t
		saved := 0.0
		for r := 0; r < j; r++ {
			den := right[r+1] + left[j-r]
			var temp float64
			if !fputil.IsZero(den) {
				temp = out[r] / den
			}
			out[r] = saved + right[r+1]*temp
			saved = left[j-r] * temp
		}
		out[j] = saved
	}
}

// Eval evaluates the curve at parameter t in [0, 1] (clamped outside).
func (c *Curve) Eval(t float64) float64 {
	numCtrl := len(c.Ctrl)
	k := findSpan(t, numCtrl)
	var b [Degree + 1]float64
	basisFuns(k, t, numCtrl, &b)
	var v float64
	for j := 0; j <= Degree; j++ {
		v += b[j] * c.Ctrl[k-Degree+j]
	}
	return v
}

// EvalSamples evaluates the curve at the n sample parameters
// t_i = i/(n-1) (t_0 = 0 when n == 1).
func (c *Curve) EvalSamples(n int) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = c.Eval(0)
		return out
	}
	for i := range out {
		out[i] = c.Eval(float64(i) / float64(n-1))
	}
	return out
}

// Fit least-squares fits a curve with numCtrl control points to y,
// sampled at t_i = i/(n-1). It requires numCtrl >= Degree+1 and
// len(y) >= numCtrl. A tiny ridge term keeps the normal equations
// positive definite when some basis functions see few samples.
func Fit(y []float64, numCtrl int) (*Curve, error) {
	n := len(y)
	if numCtrl < Degree+1 {
		return nil, fmt.Errorf("%w: need at least %d control points, got %d", ErrFit, Degree+1, numCtrl)
	}
	if n < numCtrl {
		return nil, fmt.Errorf("%w: %d samples cannot determine %d control points", ErrFit, n, numCtrl)
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite sample %v at %d", ErrFit, v, i)
		}
	}

	const bw = Degree // Gram matrix bandwidth
	// Banded upper storage: a[i][d] = A[i][i+d], d = 0..bw.
	a := make([][bw + 1]float64, numCtrl)
	rhs := make([]float64, numCtrl)

	var basis [Degree + 1]float64
	denom := float64(n - 1)
	if n == 1 {
		denom = 1
	}
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		t := float64(i) / denom
		k := findSpan(t, numCtrl)
		basisFuns(k, t, numCtrl, &basis)
		base := k - Degree
		for r := 0; r <= Degree; r++ {
			rowIdx := base + r
			rhs[rowIdx] += basis[r] * y[i]
			for cIdx := r; cIdx <= Degree; cIdx++ {
				a[rowIdx][cIdx-r] += basis[r] * basis[cIdx]
			}
		}
	}
	for i := range a {
		if a[i][0] > maxDiag {
			maxDiag = a[i][0]
		}
	}
	// Ridge: keeps empty-support columns solvable and conditions
	// near-singular Gram matrices without visibly biasing the fit.
	ridge := 1e-12 * maxDiag
	if fputil.IsZero(ridge) {
		ridge = 1e-300
	}
	for i := range a {
		a[i][0] += ridge
	}

	ctrl, err := solveBandedSPD(a, rhs, bw)
	if err != nil {
		return nil, err
	}
	return &Curve{Ctrl: ctrl}, nil
}

// solveBandedSPD solves A x = b for a symmetric positive definite
// banded matrix given in upper-banded storage a[i][d] = A[i][i+d],
// using a banded Cholesky factorization A = LLᵀ.
func solveBandedSPD(a [][Degree + 1]float64, b []float64, bw int) ([]float64, error) {
	n := len(a)
	// Lower-banded storage for L: l[i][d] = L[i][i-d], d = 0..bw.
	l := make([][Degree + 1]float64, n)
	for i := 0; i < n; i++ {
		// Diagonal entry.
		sum := a[i][0]
		for d := 1; d <= bw && d <= i; d++ {
			sum -= l[i][d] * l[i][d]
		}
		if sum <= 0 {
			return nil, fmt.Errorf("bspline: normal equations not positive definite at row %d", i)
		}
		l[i][0] = math.Sqrt(sum)
		// Sub-diagonal entries of column i: L[j][i] for j = i+1..i+bw.
		for j := i + 1; j <= i+bw && j < n; j++ {
			s := a[i][j-i] // A[j][i] == A[i][j]
			for d := 1; d <= bw; d++ {
				// L[j][m] * L[i][m] with m = j-dj = i-di.
				m := j - d
				if m < 0 || m >= i {
					continue
				}
				di := i - m
				if di > bw {
					continue
				}
				s -= l[j][d] * l[i][di]
			}
			l[j][j-i] = s / l[i][0]
		}
	}
	// Forward solve L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for d := 1; d <= bw && d <= i; d++ {
			s -= l[i][d] * y[i-d]
		}
		y[i] = s / l[i][0]
	}
	// Backward solve Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for d := 1; d <= bw && i+d < n; d++ {
			s -= l[i+d][d] * x[i+d]
		}
		x[i] = s / l[i][0]
	}
	return x, nil
}
