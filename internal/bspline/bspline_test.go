package bspline

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnotVectorClamped(t *testing.T) {
	P := 8
	for i := 0; i <= Degree; i++ {
		if knot(i, P) != 0 {
			t.Errorf("knot(%d) = %v, want 0", i, knot(i, P))
		}
	}
	for i := P; i < P+Degree+1; i++ {
		if knot(i, P) != 1 {
			t.Errorf("knot(%d) = %v, want 1", i, knot(i, P))
		}
	}
	// Interior knots strictly increasing.
	for i := Degree; i < P; i++ {
		if knot(i+1, P) <= knot(i, P) && i+1 < P {
			t.Errorf("knots not increasing at %d: %v, %v", i, knot(i, P), knot(i+1, P))
		}
	}
}

func TestFindSpanBounds(t *testing.T) {
	P := 10
	if findSpan(0, P) != Degree {
		t.Errorf("findSpan(0) = %d", findSpan(0, P))
	}
	if findSpan(1, P) != P-1 {
		t.Errorf("findSpan(1) = %d", findSpan(1, P))
	}
	if findSpan(-5, P) != Degree {
		t.Errorf("findSpan(-5) = %d", findSpan(-5, P))
	}
	if findSpan(7, P) != P-1 {
		t.Errorf("findSpan(7) = %d", findSpan(7, P))
	}
	// Every t maps to a span whose knot interval contains it.
	for i := 0; i <= 1000; i++ {
		tt := float64(i) / 1000
		k := findSpan(tt, P)
		if k < Degree || k > P-1 {
			t.Fatalf("span %d out of range at t=%v", k, tt)
		}
		if tt < 1 && !(knot(k, P) <= tt && tt < knot(k+1, P)) {
			t.Fatalf("t=%v not in span %d: [%v, %v)", tt, k, knot(k, P), knot(k+1, P))
		}
	}
}

func TestBasisPartitionOfUnity(t *testing.T) {
	// B-spline basis functions sum to 1 everywhere, and are >= 0.
	for _, P := range []int{4, 5, 9, 30} {
		for i := 0; i <= 500; i++ {
			tt := float64(i) / 500
			k := findSpan(tt, P)
			var b [Degree + 1]float64
			basisFuns(k, tt, P, &b)
			sum := 0.0
			for _, v := range b {
				if v < -1e-12 {
					t.Fatalf("P=%d t=%v: negative basis %v", P, tt, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("P=%d t=%v: basis sum %v", P, tt, sum)
			}
		}
	}
}

func TestCurveEndpointInterpolation(t *testing.T) {
	// Clamped curves interpolate their first and last control points.
	c := &Curve{Ctrl: []float64{2, -1, 4, 7, 3, 9}}
	if got := c.Eval(0); math.Abs(got-2) > 1e-12 {
		t.Errorf("Eval(0) = %v, want 2", got)
	}
	if got := c.Eval(1); math.Abs(got-9) > 1e-12 {
		t.Errorf("Eval(1) = %v, want 9", got)
	}
}

func TestCurveConvexHull(t *testing.T) {
	// The curve stays within [min ctrl, max ctrl].
	c := &Curve{Ctrl: []float64{0, 5, -2, 3, 1, 4, 2}}
	for i := 0; i <= 200; i++ {
		v := c.Eval(float64(i) / 200)
		if v < -2-1e-9 || v > 5+1e-9 {
			t.Fatalf("Eval escaped convex hull: %v", v)
		}
	}
}

func TestFitReproducesCubicExactly(t *testing.T) {
	// A cubic polynomial lies in the spline space, so the LS fit must
	// reproduce it to machine precision regardless of P.
	n := 200
	y := make([]float64, n)
	for i := range y {
		x := float64(i) / float64(n-1)
		y[i] = 2 + 3*x - 4*x*x + 0.5*x*x*x
	}
	for _, P := range []int{4, 8, 20, 100} {
		c, err := Fit(y, P)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		rec := c.EvalSamples(n)
		for i := range y {
			if math.Abs(rec[i]-y[i]) > 1e-8 {
				t.Fatalf("P=%d sample %d: %v vs %v", P, i, rec[i], y[i])
			}
		}
	}
}

func TestFitConstantData(t *testing.T) {
	y := make([]float64, 50)
	for i := range y {
		y[i] = 7.25
	}
	c, err := Fit(y, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range c.EvalSamples(50) {
		if math.Abs(v-7.25) > 1e-9 {
			t.Fatalf("constant fit evaluated to %v", v)
		}
	}
}

func TestFitSmoothDataAccuracy(t *testing.T) {
	n := 1000
	y := make([]float64, n)
	for i := range y {
		x := float64(i) / float64(n-1)
		y[i] = math.Sin(2*math.Pi*x) + 0.3*math.Cos(6*math.Pi*x)
	}
	c, err := Fit(y, 50)
	if err != nil {
		t.Fatal(err)
	}
	rec := c.EvalSamples(n)
	var maxErr float64
	for i := range y {
		if e := math.Abs(rec[i] - y[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-3 {
		t.Errorf("max fit error %v on smooth data with 50 ctrl points", maxErr)
	}
}

func TestFitHighRatioLikeBaseline(t *testing.T) {
	// The B-Splines baseline uses P = 0.8 n; exercise that regime.
	n := 500
	rng := rand.New(rand.NewSource(1))
	y := make([]float64, n)
	for i := range y {
		y[i] = math.Sin(float64(i)*0.05) + rng.NormFloat64()*0.01
	}
	c, err := Fit(y, n*8/10)
	if err != nil {
		t.Fatal(err)
	}
	rec := c.EvalSamples(n)
	rmse := 0.0
	for i := range y {
		d := rec[i] - y[i]
		rmse += d * d
	}
	rmse = math.Sqrt(rmse / float64(n))
	if rmse > 0.05 {
		t.Errorf("P=0.8n RMSE = %v", rmse)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, 2); !errors.Is(err, ErrFit) {
		t.Errorf("too few ctrl: %v", err)
	}
	if _, err := Fit([]float64{1, 2, 3}, 5); !errors.Is(err, ErrFit) {
		t.Errorf("too few samples: %v", err)
	}
	if _, err := Fit([]float64{1, math.NaN(), 3, 4, 5}, 4); !errors.Is(err, ErrFit) {
		t.Errorf("NaN accepted: %v", err)
	}
	if _, err := Fit([]float64{1, 2, math.Inf(1), 4, 5}, 4); !errors.Is(err, ErrFit) {
		t.Errorf("Inf accepted: %v", err)
	}
}

func TestEvalSamplesEdgeCases(t *testing.T) {
	c := &Curve{Ctrl: []float64{1, 2, 3, 4}}
	if out := c.EvalSamples(0); len(out) != 0 {
		t.Errorf("n=0: %v", out)
	}
	out := c.EvalSamples(1)
	if len(out) != 1 || math.Abs(out[0]-1) > 1e-12 {
		t.Errorf("n=1: %v", out)
	}
}

func TestFitMonotoneDataStaysClose(t *testing.T) {
	// ISABELA's use case: fitting a sorted (monotone) vector with few
	// coefficients should already be very accurate.
	rng := rand.New(rand.NewSource(2))
	n := 512
	y := make([]float64, n)
	v := 0.0
	for i := range y {
		v += rng.ExpFloat64()
		y[i] = v
	}
	c, err := Fit(y, 30)
	if err != nil {
		t.Fatal(err)
	}
	rec := c.EvalSamples(n)
	rng2 := y[n-1] - y[0]
	for i := range y {
		if math.Abs(rec[i]-y[i]) > 0.05*rng2 {
			t.Fatalf("sorted-fit error at %d: %v vs %v (range %v)", i, rec[i], y[i], rng2)
		}
	}
}

func TestQuickFitLinearExact(t *testing.T) {
	// Any affine function is reproduced exactly (it lies in the spline
	// space), for arbitrary slope/intercept.
	f := func(slope, icept float64) bool {
		if math.IsNaN(slope) || math.IsInf(slope, 0) || math.Abs(slope) > 1e6 {
			return true
		}
		if math.IsNaN(icept) || math.IsInf(icept, 0) || math.Abs(icept) > 1e6 {
			return true
		}
		n := 64
		y := make([]float64, n)
		for i := range y {
			y[i] = icept + slope*float64(i)/float64(n-1)
		}
		c, err := Fit(y, 12)
		if err != nil {
			return false
		}
		rec := c.EvalSamples(n)
		scale := 1 + math.Abs(slope) + math.Abs(icept)
		for i := range y {
			if math.Abs(rec[i]-y[i]) > 1e-8*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFit512x30(b *testing.B) {
	y := make([]float64, 512)
	for i := range y {
		y[i] = math.Sin(float64(i) * 0.01)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(y, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitHighRatio(b *testing.B) {
	n := 12960
	y := make([]float64, n)
	for i := range y {
		y[i] = math.Sin(float64(i) * 0.001)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(y, n*8/10); err != nil {
			b.Fatal(err)
		}
	}
}
