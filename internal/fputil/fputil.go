// Package fputil centralises the floating-point comparisons the rest
// of the codebase needs, so every exact `==`/`!=` on floats is either
// routed through here or carries a lint suppression explaining why
// bitwise equality is the right semantics. The floatcmp analyzer in
// internal/analysis/analyzers allowlists this package.
//
// NUMARCK compares floats in two distinct regimes:
//
//   - Sentinel / degenerate-range checks (bin width == 0, span == 0,
//     identical cluster bounds). These want *exact* equality: the value
//     was produced by the same arithmetic path being tested, and any
//     tolerance would mis-classify legitimately tiny-but-nonzero
//     ranges. Use Eq and IsZero, which are documented exact
//     comparisons.
//   - Tolerance checks in tests and verification (reconstructed value
//     within the Eq. 3 error bound). Use Within or WithinULP.
package fputil

import "math"

// Eq reports whether a and b are exactly equal as IEEE-754 values.
// NaN compares unequal to everything, including itself, matching the
// == operator. Use this instead of a bare == so the intent — exact
// comparison, deliberately — is visible at the call site.
func Eq(a, b float64) bool { return a == b }

// IsZero reports whether v is exactly positive or negative zero.
// Degenerate-range guards (bin width, span, divisor checks) want this
// exact form: a tolerance would swallow legitimately tiny ranges.
func IsZero(v float64) bool { return v == 0 }

// Within reports whether a and b differ by at most tol in absolute
// value. NaN inputs are never within any tolerance.
func Within(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// WithinULP reports whether a and b are within n units in the last
// place of each other. Equal values (including two zeros of either
// sign) are always within 0 ULPs; NaNs and opposite-sign pairs never
// compare close.
func WithinULP(a, b float64, n uint64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	ua, ub := ulpOrder(a), ulpOrder(b)
	// Opposite orderings straddle zero; the ULP distance through zero
	// is rarely meaningful, so only +/-0 adjacency passes.
	if (ua < 0) != (ub < 0) {
		return false
	}
	d := ua - ub
	if d < 0 {
		d = -d
	}
	return uint64(d) <= n
}

// ulpOrder maps a float to a monotonically ordered signed integer so
// that adjacent floats differ by exactly 1.
func ulpOrder(v float64) int64 {
	b := int64(math.Float64bits(v))
	if b < 0 {
		b = math.MinInt64 - b
	}
	return b
}
