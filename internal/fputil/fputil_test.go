package fputil

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	if !Eq(1.5, 1.5) {
		t.Error("Eq(1.5, 1.5) = false")
	}
	if Eq(1.5, 1.5000001) {
		t.Error("Eq on unequal values = true")
	}
	if Eq(math.NaN(), math.NaN()) {
		t.Error("Eq(NaN, NaN) must be false, matching ==")
	}
	if !Eq(0, math.Copysign(0, -1)) {
		t.Error("Eq(+0, -0) must be true, matching ==")
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero(0) || !IsZero(math.Copysign(0, -1)) {
		t.Error("IsZero must accept both signed zeros")
	}
	if IsZero(math.SmallestNonzeroFloat64) {
		t.Error("IsZero must be exact: denormal min is not zero")
	}
	if IsZero(math.NaN()) {
		t.Error("IsZero(NaN) = true")
	}
}

func TestWithin(t *testing.T) {
	if !Within(1.0, 1.0009, 0.001) {
		t.Error("Within inside tolerance = false")
	}
	if Within(1.0, 1.002, 0.001) {
		t.Error("Within outside tolerance = true")
	}
	if Within(math.NaN(), 1, 100) || Within(1, math.NaN(), 100) {
		t.Error("NaN is never within tolerance")
	}
}

func TestWithinULP(t *testing.T) {
	next := math.Nextafter(1.0, 2.0)
	if !WithinULP(1.0, next, 1) {
		t.Error("adjacent floats are 1 ULP apart")
	}
	if WithinULP(1.0, next, 0) {
		t.Error("adjacent floats are not 0 ULPs apart")
	}
	if !WithinULP(0, math.Copysign(0, -1), 0) {
		t.Error("+0 and -0 are equal, hence within 0 ULPs")
	}
	if WithinULP(1e300, -1e300, math.MaxUint64/4) {
		t.Error("opposite-sign values never compare close")
	}
	if WithinULP(math.NaN(), math.NaN(), math.MaxUint64/4) {
		t.Error("NaN is never within any ULP distance")
	}
	far := math.Nextafter(math.Nextafter(2.0, 3), 3)
	if !WithinULP(2.0, far, 2) || WithinULP(2.0, far, 1) {
		t.Error("two-ULP distance must round-trip exactly")
	}
}
