// Package faultfs abstracts the handful of filesystem operations the
// checkpoint store needs for crash-safe writes (open, create, append,
// rename, remove, sync, directory sync) behind a small FS interface,
// with two implementations: OS, the real filesystem, and Injector, a
// wrapper that fails operations on a deterministic seeded schedule so
// tests can drive every crash point of the write path — the Nth write,
// a torn write that truncates mid-buffer, a bit-flip on read, an error
// on sync or rename, or a full crash after which nothing succeeds.
package faultfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
)

// File is the open-file surface the store uses: sequential and random
// reads, writes, durability (Sync), and metadata.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Stat returns the file's metadata.
	Stat() (fs.FileInfo, error)
}

// FS is the filesystem surface of the checkpoint store. Every
// store-side disk access goes through it, so a test can substitute an
// Injector and observe exactly which operation sequence a store write
// performs — and fail any prefix of it.
type FS interface {
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create creates or truncates a file for writing.
	Create(name string) (File, error)
	// CreateExclusive creates a file for writing, failing with an error
	// matching fs.ErrExist if it already exists (O_EXCL semantics): the
	// create either claims the name atomically or observes the current
	// claimant. Note the claimed name is observable empty before its
	// first write — claims that must appear fully formed stage their
	// payload elsewhere and publish it with Link instead.
	CreateExclusive(name string) (File, error)
	// Append opens a file for appending, creating it if absent.
	Append(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Link creates newpath as a hard link to oldpath, failing with an
	// error matching fs.ErrExist if newpath already exists. It is the
	// store's atomic-publication primitive for fixed names that must
	// never be observable incomplete and must not clobber an existing
	// claimant (the writer LOCK): the complete payload is staged at a
	// scratch name first, then linked into place in one atomic step.
	Link(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(name string, perm fs.FileMode) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat returns file metadata.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, making preceding renames and removes
	// in it durable.
	SyncDir(name string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real filesystem: every method maps 1:1 onto the os
// package, and SyncDir opens the directory and fsyncs it.
func OS() FS { return osFS{} }

func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) CreateExclusive(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
}

func (osFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Link(oldpath, newpath string) error           { return os.Link(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(name string, perm fs.FileMode) error { return os.MkdirAll(name, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadFile reads a whole file through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("faultfs: read %s: %w", name, err)
	}
	return data, nil
}

// WriteFileAtomic writes data to name crash-safely: it writes to
// name+".tmp" in the same directory, fsyncs the file, renames it over
// name, and fsyncs the parent directory dir. After a crash at any point
// the destination holds either its old contents or the complete new
// ones, never a torn mix; at worst a stale .tmp file is left behind.
func WriteFileAtomic(fsys FS, dir, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("faultfs: create %s: %w", tmp, err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		// Best-effort cleanup; the recovery scan removes survivors.
		_ = fsys.Remove(tmp)
		return fmt.Errorf("faultfs: write %s: %w", tmp, werr)
	}
	if err := fsys.Rename(tmp, name); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("faultfs: rename %s: %w", name, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("faultfs: sync dir %s: %w", dir, err)
	}
	return nil
}
