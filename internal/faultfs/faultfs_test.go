package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	fsys := OS()
	dir := t.TempDir()
	path := filepath.Join(dir, "a.bin")
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q", got)
	}
	info, err := fsys.Stat(path)
	if err != nil || info.Size() != 5 {
		t.Fatalf("stat: %v size %d", err, info.Size())
	}
}

func TestOSAppend(t *testing.T) {
	fsys := OS()
	path := filepath.Join(t.TempDir(), "log")
	for _, chunk := range []string{"one\n", "two\n"} {
		f, err := fsys.Append(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadFile(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "one\ntwo\n" {
		t.Fatalf("appended file = %q", got)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	fsys := OS()
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	payload := bytes.Repeat([]byte("x"), 1024)
	if err := WriteFileAtomic(fsys, dir, path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fsys, path)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read back: %v, %d bytes", err, len(got))
	}
	// No temporary left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if filepath.Ext(de.Name()) == ".tmp" {
			t.Fatalf("leftover temp %s", de.Name())
		}
	}
}

func TestInjectorPassthroughCountsOps(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), 1)
	path := filepath.Join(dir, "f")
	if err := WriteFileAtomic(in, dir, path, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	// create + write + sync + rename + syncdir = 5 mutating ops.
	if got := in.MutatingOps(); got != 5 {
		t.Fatalf("MutatingOps = %d, want 5 (trace: %v)", got, in.Trace())
	}
	if in.Crashed() {
		t.Fatal("no crash was armed")
	}
}

func TestInjectorNthFault(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), 1)
	in.AddFault(Fault{Op: OpSync, Nth: 2})
	mk := func(name string) error {
		f, err := in.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("x")); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		return f.Close()
	}
	if err := mk("first"); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	if err := mk("second"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync should fail injected, got %v", err)
	}
	if err := mk("third"); err != nil {
		t.Fatalf("third sync should pass again: %v", err)
	}
}

func TestInjectorPathMatch(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), 1)
	in.AddFault(Fault{Op: OpCreate, Path: "special", Nth: 1})
	if _, err := in.Create(filepath.Join(dir, "ordinary")); err != nil {
		t.Fatalf("non-matching path failed: %v", err)
	}
	if _, err := in.Create(filepath.Join(dir, "special.bin")); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching path should fail, got %v", err)
	}
}

func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), 1)
	in.AddFault(Fault{Op: OpWrite, Nth: 1, Mode: ModeTorn, TornBytes: 3})
	path := filepath.Join(dir, "torn")
	f, err := in.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v", err)
	}
	if n != 3 {
		t.Fatalf("torn write reported %d bytes", n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "abc" {
		t.Fatalf("on disk %q, %v", got, err)
	}
}

func TestInjectorBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	if err := os.WriteFile(path, []byte{0, 0, 0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(OS(), 7)
	in.AddFault(Fault{Op: OpRead, Nth: 1, Mode: ModeBitFlip})
	f, err := in.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for _, b := range buf {
		for ; b != 0; b &= b - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("expected exactly one flipped bit, got %d (%v)", flipped, buf)
	}
	// The file itself is untouched — the flip is read-side only.
	raw, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(raw, []byte{0, 0, 0, 0}) {
		t.Fatalf("underlying file changed: %v %v", raw, err)
	}
}

func TestInjectorCrashSchedule(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS(), 1)
	in.SetCrashAt(1)                             // the second mutating op dies
	f, err := in.Create(filepath.Join(dir, "a")) // op 0: fine
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); !errors.Is(err, ErrCrashed) { // op 1: crash
		t.Fatalf("write at crash point = %v", err)
	}
	if !in.Crashed() {
		t.Fatal("injector should report crashed")
	}
	// Everything after the crash fails too, including reads.
	if _, err := in.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create = %v", err)
	}
	if _, err := in.Stat(filepath.Join(dir, "a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash stat = %v", err)
	}
}

func TestInjectorCrashTornWriteDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		dir := t.TempDir()
		in := NewInjector(OS(), seed)
		in.SetCrashAt(1)
		path := filepath.Join(dir, "f")
		f, err := in.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		_, werr := f.Write(bytes.Repeat([]byte("Z"), 100))
		if !errors.Is(werr, ErrCrashed) {
			t.Fatalf("write = %v", werr)
		}
		_ = f.Close()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed gave different torn prefixes: %d vs %d bytes", len(a), len(b))
	}
	if len(a) >= 100 {
		t.Fatalf("crash write let the full buffer through (%d bytes)", len(a))
	}
}
