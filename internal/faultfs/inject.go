package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"strings"
	"sync"
)

// ErrInjected is the error returned by a scheduled fault.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is the error every operation returns once the injector's
// crash point has fired: the simulated process is dead and nothing else
// reaches the disk.
var ErrCrashed = errors.New("faultfs: crashed")

// Op classifies filesystem operations for fault matching and crash
// scheduling.
type Op uint8

// The operation classes. OpCreate through OpSyncDir (the "mutating"
// ops) advance the crash schedule; OpOpen and OpRead never mutate and
// only participate in explicit faults.
const (
	OpOpen Op = iota
	OpRead
	OpCreate
	OpAppend
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpSyncDir
	OpLink

	numOps
)

// opNames must match the Op constant order above.
var opNames = [numOps]string{
	"open", "read", "create", "append", "write", "sync", "rename", "remove", "syncdir", "link",
}

// String returns the operation class name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// mutating reports whether the op advances the crash schedule.
func (o Op) mutating() bool { return o >= OpCreate }

// Mode selects how a matched fault manifests.
type Mode uint8

// The fault modes.
const (
	// ModeError fails the operation outright with Fault.Err (default
	// ErrInjected).
	ModeError Mode = iota
	// ModeTorn applies to writes: the first TornBytes bytes reach the
	// file, then the write fails — the signature of a mid-write crash.
	ModeTorn
	// ModeBitFlip applies to reads: the read succeeds but one
	// deterministic bit of the returned data is flipped — silent media
	// corruption.
	ModeBitFlip
)

// Fault is one scheduled failure: the Nth operation of class Op whose
// path contains Path (empty matches all paths) manifests per Mode.
type Fault struct {
	Op   Op
	Path string // substring match; "" matches every path
	Nth  int    // 1-based among matching operations
	Mode Mode
	// TornBytes is the byte prefix a ModeTorn write lets through.
	TornBytes int
	// Err overrides the returned error (ModeError and ModeTorn).
	Err error

	seen int // matching operations observed so far
}

// Injector wraps an FS with deterministic fault injection. The zero
// schedule (no faults, no crash point) passes every operation through
// unchanged while still counting them, so a first uninstrumented run
// measures how many mutating operations a code path performs and a
// second run can crash at each of them in turn.
type Injector struct {
	fs      FS
	mu      sync.Mutex
	rng     *rand.Rand
	ops     int // mutating operations observed
	crashAt int
	crashed bool
	faults  []*Fault
	trace   []string
}

// NewInjector wraps fsys. seed makes torn-write offsets and bit-flip
// positions reproducible.
func NewInjector(fsys FS, seed int64) *Injector {
	return &Injector{fs: fsys, rng: rand.New(rand.NewSource(seed)), crashAt: -1}
}

// AddFault schedules a fault. Faults are matched in the order added.
func (in *Injector) AddFault(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = append(in.faults, &f)
}

// SetCrashAt arms the crash point: the k-th mutating operation
// (0-based) and every operation after it fail with ErrCrashed. If the
// k-th operation is a write, a seeded prefix of its buffer reaches the
// file first — a torn write. k < 0 disarms.
func (in *Injector) SetCrashAt(k int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt = k
}

// MutatingOps returns how many mutating operations have been observed
// (attempted, whether or not they were failed).
func (in *Injector) MutatingOps() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Crashed reports whether the crash point has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Trace returns the recorded operation log, one "op path" line per
// observed operation.
func (in *Injector) Trace() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.trace...)
}

// injDecision is what check tells the call site to do.
type injDecision struct {
	err       error // fail with this error (nil: proceed)
	tornBytes int   // for writes failing with err: bytes to let through first (-1: none)
	bitFlip   bool  // for reads: flip a deterministic bit in the result
	flipByte  int64 // rng draw for the flip position (interpreted modulo length)
	flipBit   uint8
}

// check records one operation and decides its fate.
func (in *Injector) check(op Op, path string, size int) injDecision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.trace = append(in.trace, fmt.Sprintf("%s %s", op, path))
	if in.crashed {
		return injDecision{err: ErrCrashed, tornBytes: -1}
	}
	if op.mutating() {
		idx := in.ops
		in.ops++
		if in.crashAt >= 0 && idx >= in.crashAt {
			in.crashed = true
			d := injDecision{err: ErrCrashed, tornBytes: -1}
			if op == OpWrite && size > 0 {
				d.tornBytes = in.rng.Intn(size)
			}
			return d
		}
	}
	for _, f := range in.faults {
		if f.Op != op || (f.Path != "" && !strings.Contains(path, f.Path)) {
			continue
		}
		f.seen++
		if f.seen != f.Nth {
			continue
		}
		err := f.Err
		if err == nil {
			err = ErrInjected
		}
		switch f.Mode {
		case ModeTorn:
			tb := f.TornBytes
			if tb > size {
				tb = size
			}
			return injDecision{err: err, tornBytes: tb}
		case ModeBitFlip:
			return injDecision{bitFlip: true, flipByte: in.rng.Int63(), flipBit: uint8(in.rng.Intn(8) & 7)}
		default:
			return injDecision{err: err, tornBytes: -1}
		}
	}
	return injDecision{tornBytes: -1}
}

// Open implements FS.
func (in *Injector) Open(name string) (File, error) {
	if d := in.check(OpOpen, name, 0); d.err != nil {
		return nil, d.err
	}
	f, err := in.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

// Create implements FS.
func (in *Injector) Create(name string) (File, error) {
	if d := in.check(OpCreate, name, 0); d.err != nil {
		return nil, d.err
	}
	f, err := in.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

// CreateExclusive implements FS. It shares the OpCreate class with
// Create, so crash schedules and create faults cover lock acquisition
// the same way they cover atomic-write temporaries.
func (in *Injector) CreateExclusive(name string) (File, error) {
	if d := in.check(OpCreate, name, 0); d.err != nil {
		return nil, d.err
	}
	f, err := in.fs.CreateExclusive(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

// Append implements FS.
func (in *Injector) Append(name string) (File, error) {
	if d := in.check(OpAppend, name, 0); d.err != nil {
		return nil, d.err
	}
	f, err := in.fs.Append(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	if d := in.check(OpRename, newpath, 0); d.err != nil {
		return d.err
	}
	return in.fs.Rename(oldpath, newpath)
}

// Link implements FS. The fault path matches on newpath, the name the
// link publishes.
func (in *Injector) Link(oldpath, newpath string) error {
	if d := in.check(OpLink, newpath, 0); d.err != nil {
		return d.err
	}
	return in.fs.Link(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if d := in.check(OpRemove, name, 0); d.err != nil {
		return d.err
	}
	return in.fs.Remove(name)
}

// MkdirAll implements FS. Directory creation is not a scheduled crash
// point (the store only creates directories at Create time).
func (in *Injector) MkdirAll(name string, perm fs.FileMode) error {
	return in.fs.MkdirAll(name, perm)
}

// ReadDir implements FS.
func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if in.Crashed() {
		return nil, ErrCrashed
	}
	return in.fs.ReadDir(name)
}

// Stat implements FS.
func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	if in.Crashed() {
		return nil, ErrCrashed
	}
	return in.fs.Stat(name)
}

// SyncDir implements FS.
func (in *Injector) SyncDir(name string) error {
	if d := in.check(OpSyncDir, name, 0); d.err != nil {
		return d.err
	}
	return in.fs.SyncDir(name)
}

// injFile routes a File's reads, writes, and syncs back through the
// injector's schedule.
type injFile struct {
	in   *Injector
	f    File
	name string
}

// Read implements io.Reader with OpRead fault matching.
func (jf *injFile) Read(p []byte) (int, error) {
	d := jf.in.check(OpRead, jf.name, len(p))
	if d.err != nil {
		return 0, d.err
	}
	n, err := jf.f.Read(p)
	if d.bitFlip && n > 0 {
		p[d.flipByte%int64(n)] ^= 1 << (d.flipBit % 8)
	}
	return n, err
}

// ReadAt implements io.ReaderAt with OpRead fault matching.
func (jf *injFile) ReadAt(p []byte, off int64) (int, error) {
	d := jf.in.check(OpRead, jf.name, len(p))
	if d.err != nil {
		return 0, d.err
	}
	n, err := jf.f.ReadAt(p, off)
	if d.bitFlip && n > 0 {
		p[d.flipByte%int64(n)] ^= 1 << (d.flipBit % 8)
	}
	return n, err
}

// Write implements io.Writer with OpWrite fault matching; a failing
// write may first let a torn prefix through to the underlying file.
func (jf *injFile) Write(p []byte) (int, error) {
	d := jf.in.check(OpWrite, jf.name, len(p))
	if d.err != nil {
		n := 0
		if d.tornBytes > 0 {
			n, _ = jf.f.Write(p[:d.tornBytes])
		}
		return n, d.err
	}
	return jf.f.Write(p)
}

// Sync implements File with OpSync fault matching.
func (jf *injFile) Sync() error {
	if d := jf.in.check(OpSync, jf.name, 0); d.err != nil {
		return d.err
	}
	return jf.f.Sync()
}

// Close always closes the underlying file (a crashed process's
// descriptors close too) but reports ErrCrashed after the crash point.
func (jf *injFile) Close() error {
	err := jf.f.Close()
	if jf.in.Crashed() {
		return ErrCrashed
	}
	return err
}

// Stat implements File.
func (jf *injFile) Stat() (fs.FileInfo, error) {
	if jf.in.Crashed() {
		return nil, ErrCrashed
	}
	return jf.f.Stat()
}
