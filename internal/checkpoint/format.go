// Package checkpoint implements NUMARCK's on-disk checkpoint store
// (§II-D): a directory of per-variable checkpoint files where the first
// (and periodically recurring) checkpoints are stored losslessly with
// FPC, intermediate checkpoints store only the NUMARCK-encoded change
// ratios, and restart replays the delta chain on top of the latest full
// checkpoint at or before the requested iteration.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"numarck/internal/bitpack"
	"numarck/internal/core"
	"numarck/internal/lossless/fpc"
)

// File magics. Each file starts with 6 magic bytes, a 4-byte
// little-endian header length, the JSON header, then the payload.
var (
	magicFull  = []byte("NMRKF1")
	magicDelta = []byte("NMRKD1")
)

// ErrCorrupt reports an unreadable checkpoint file.
var ErrCorrupt = errors.New("checkpoint: corrupt file")

// ErrTruncated reports a file shorter than its own framing claims —
// the signature of a torn write rather than in-place corruption.
// Truncation errors wrap both ErrTruncated and ErrCorrupt, so
// errors.Is(err, ErrCorrupt) still matches; recovery scans use the
// distinction to classify a file as a quarantine candidate from a
// crashed writer instead of a genuine format violation.
var ErrTruncated = errors.New("checkpoint: truncated file")

// truncatedErr wraps a truncation finding with both sentinel errors.
func truncatedErr(format string, args ...any) error {
	return fmt.Errorf("%w: %w: "+format, append([]any{ErrCorrupt, ErrTruncated}, args...)...)
}

// readErr classifies an io error from a positioned read: a short read
// (io.EOF / io.ErrUnexpectedEOF) means the file ends before its framing
// says it should — truncation — while anything else is a plain corrupt
// read. The underlying error stays wrapped for errors.Is.
func readErr(what string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %w: %s: %w", ErrCorrupt, ErrTruncated, what, err)
	}
	return fmt.Errorf("%w: %s: %w", ErrCorrupt, what, err)
}

// pathErr wraps err with the failing operation and file path, the one
// error style every store-level failure uses.
func pathErr(op, path string, err error) error {
	return fmt.Errorf("checkpoint: %s %s: %w", op, path, err)
}

// fileHeader is the JSON header of both file kinds.
type fileHeader struct {
	Variable  string `json:"variable"`
	Iteration int    `json:"iteration"`
	N         int    `json:"n"`
	CRC       uint32 `json:"crc"` // of the payload bytes
	// Delta-only fields:
	IndexBits  int     `json:"index_bits,omitempty"`
	ErrorBound float64 `json:"error_bound,omitempty"`
	Strategy   string  `json:"strategy,omitempty"`
	BinCount   int     `json:"bin_count,omitempty"`
	ExactCount int     `json:"exact_count,omitempty"`
	// Delta-v2-only fields (see v2.go). omitempty keeps v1 output
	// byte-identical to files written before the chunked format landed.
	ChunkPoints int `json:"chunk_points,omitempty"`
	ChunkCount  int `json:"chunk_count,omitempty"`
}

// writeFile assembles magic | len | header | payload.
func writeFile(w io.Writer, magic []byte, hdr fileHeader, payload []byte) error {
	hdr.CRC = crc32.ChecksumIEEE(payload)
	hj, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal header: %w", err)
	}
	if _, err := w.Write(magic); err != nil {
		return err
	}
	if len(hj) > math.MaxUint32 {
		return fmt.Errorf("checkpoint: header too large: %d bytes", len(hj))
	}
	var lenBuf [4]byte
	//lint:ignore bindex len(hj) <= math.MaxUint32 checked above
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(hj)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write(hj); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFile parses magic | len | header | payload and verifies the CRC.
func readFile(data, magic []byte) (fileHeader, []byte, error) {
	var hdr fileHeader
	if len(data) < len(magic)+4 {
		// A correct magic prefix on a too-short file is a torn write;
		// anything else is not one of our files at all.
		if n := min(len(data), len(magic)); bytes.Equal(data[:n], magic[:n]) {
			return hdr, nil, truncatedErr("%d bytes is shorter than the file frame", len(data))
		}
		return hdr, nil, fmt.Errorf("%w: shorter than header", ErrCorrupt)
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return hdr, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(magic)])
	}
	off := len(magic)
	hlen := int(binary.LittleEndian.Uint32(data[off : off+4]))
	off += 4
	if hlen < 2 {
		return hdr, nil, fmt.Errorf("%w: header length %d", ErrCorrupt, hlen)
	}
	if off+hlen > len(data) {
		return hdr, nil, truncatedErr("header of %d bytes overruns %d-byte file", hlen, len(data))
	}
	if err := json.Unmarshal(data[off:off+hlen], &hdr); err != nil {
		return hdr, nil, fmt.Errorf("%w: header: %w", ErrCorrupt, err)
	}
	payload := data[off+hlen:]
	if crc := crc32.ChecksumIEEE(payload); crc != hdr.CRC {
		return hdr, nil, fmt.Errorf("%w: payload CRC %08x, header says %08x", ErrCorrupt, crc, hdr.CRC)
	}
	return hdr, payload, nil
}

// MarshalFull serializes a full (lossless) checkpoint of one variable.
func MarshalFull(variable string, iteration int, data []float64) ([]byte, error) {
	payload := fpc.Compress(data)
	var buf bytes.Buffer
	err := writeFile(&buf, magicFull, fileHeader{
		Variable:  variable,
		Iteration: iteration,
		N:         len(data),
	}, payload)
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalFull parses a full checkpoint file.
func UnmarshalFull(raw []byte) (variable string, iteration int, data []float64, err error) {
	hdr, payload, err := readFile(raw, magicFull)
	if err != nil {
		return "", 0, nil, err
	}
	data, err = fpc.Decompress(payload)
	if err != nil {
		return "", 0, nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	if len(data) != hdr.N {
		return "", 0, nil, fmt.Errorf("%w: %d values, header says %d", ErrCorrupt, len(data), hdr.N)
	}
	return hdr.Variable, hdr.Iteration, data, nil
}

// MarshalDelta serializes a NUMARCK-encoded checkpoint. Layout of the
// payload: bin table (BinCount float64 LE) | packed indices | bitmap |
// exact values (ExactCount float64 LE).
func MarshalDelta(variable string, iteration int, enc *core.Encoded) ([]byte, error) {
	packed, err := enc.PackedIndices()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: pack indices: %w", err)
	}
	payload := make([]byte, 0,
		8*len(enc.BinRatios)+len(packed)+len(enc.Incompressible.Bytes())+8*len(enc.Exact))
	payload = appendFloats(payload, enc.BinRatios)
	payload = append(payload, packed...)
	payload = append(payload, enc.Incompressible.Bytes()...)
	payload = appendFloats(payload, enc.Exact)

	var buf bytes.Buffer
	err = writeFile(&buf, magicDelta, fileHeader{
		Variable:   variable,
		Iteration:  iteration,
		N:          enc.N,
		IndexBits:  enc.Opt.IndexBits,
		ErrorBound: enc.Opt.ErrorBound,
		Strategy:   enc.Opt.Strategy.String(),
		BinCount:   len(enc.BinRatios),
		ExactCount: len(enc.Exact),
	}, payload)
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalDelta parses a delta checkpoint file back into a decodable
// core.Encoded. The TrueRatios field is not stored on disk, so the
// returned value supports Decode but not error-rate accounting.
func UnmarshalDelta(raw []byte) (variable string, iteration int, enc *core.Encoded, err error) {
	hdr, payload, err := readFile(raw, magicDelta)
	if err != nil {
		return "", 0, nil, err
	}
	if hdr.N < 0 || hdr.BinCount < 0 || hdr.ExactCount < 0 || hdr.ExactCount > hdr.N {
		return "", 0, nil, fmt.Errorf("%w: implausible counts n=%d bins=%d exact=%d", ErrCorrupt, hdr.N, hdr.BinCount, hdr.ExactCount)
	}
	if hdr.IndexBits < 1 || hdr.IndexBits > core.MaxIndexBits {
		return "", 0, nil, fmt.Errorf("%w: index bits %d", ErrCorrupt, hdr.IndexBits)
	}
	strategy, err := core.ParseStrategy(hdr.Strategy)
	if err != nil {
		return "", 0, nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}

	binBytes := 8 * hdr.BinCount
	idxBytes := bitpack.PackedLen(hdr.N, hdr.IndexBits)
	mapBytes := (hdr.N + 7) / 8
	exactBytes := 8 * hdr.ExactCount
	if want := binBytes + idxBytes + mapBytes + exactBytes; len(payload) != want {
		if len(payload) < want {
			return "", 0, nil, truncatedErr("payload %d bytes, want %d", len(payload), want)
		}
		return "", 0, nil, fmt.Errorf("%w: payload %d bytes, want %d", ErrCorrupt, len(payload), want)
	}
	bins := readFloats(payload[:binBytes], hdr.BinCount)
	indices, err := bitpack.Unpack(payload[binBytes:binBytes+idxBytes], hdr.N, hdr.IndexBits)
	if err != nil {
		return "", 0, nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	bitmap, err := bitpack.BitmapFromBytes(payload[binBytes+idxBytes:binBytes+idxBytes+mapBytes], hdr.N)
	if err != nil {
		return "", 0, nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	exact := readFloats(payload[binBytes+idxBytes+mapBytes:], hdr.ExactCount)

	// Cross-validate: every index must reference an existing bin, and
	// the bitmap population must match the exact-value count.
	if bitmap.Count() != hdr.ExactCount {
		return "", 0, nil, fmt.Errorf("%w: bitmap flags %d points, %d exact values stored", ErrCorrupt, bitmap.Count(), hdr.ExactCount)
	}
	for j, idx := range indices {
		if int(idx) > hdr.BinCount {
			return "", 0, nil, fmt.Errorf("%w: index %d at point %d exceeds bin count %d", ErrCorrupt, idx, j, hdr.BinCount)
		}
	}

	opt := core.Options{
		ErrorBound: hdr.ErrorBound,
		IndexBits:  hdr.IndexBits,
		Strategy:   strategy,
	}
	if v, err := opt.Validate(); err == nil {
		opt = v
	} else {
		return "", 0, nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	enc = &core.Encoded{
		Opt:            opt,
		N:              hdr.N,
		BinRatios:      bins,
		Indices:        indices,
		Incompressible: bitmap,
		Exact:          exact,
	}
	return hdr.Variable, hdr.Iteration, enc, nil
}

func appendFloats(dst []byte, vals []float64) []byte {
	var b [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

func readFloats(src []byte, n int) []float64 {
	return readFloatsInto(src, n, nil)
}

// readFloatsInto is readFloats writing into buf's backing array when it
// has capacity, for pooled chunk decoding.
func readFloatsInto(src []byte, n int, buf []float64) []float64 {
	var out []float64
	if cap(buf) >= n {
		out = buf[:n]
	} else {
		out = make([]float64, n)
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return out
}
