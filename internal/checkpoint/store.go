package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"numarck/internal/core"
	"numarck/internal/faultfs"
	"numarck/internal/obs"
)

// Store is a directory-backed checkpoint store. Files are named
// <variable>.<kind>.<iteration>.nmk with kind "full" or "delta", plus a
// manifest.json recording the encoding options and a MANIFEST journal
// recording the committed chain (file names, lengths, CRCs).
//
// Every write is crash-safe: file bytes go to a .tmp sibling, are
// fsynced, renamed into place, and the directory is fsynced before the
// journal records the commit — so after a crash at any point, reopening
// the store sees either the complete new checkpoint or the clean
// pre-write state, never a torn file in the chain. Open runs a recovery
// scan that reconciles the journal with the directory, adopts committed
// files the journal missed, quarantines torn or corrupt files into
// quarantine/, and removes stale temporaries; the scan's findings are
// available from Recovery.
type Store struct {
	dir string
	fs  faultfs.FS
	opt core.Options
	// rec receives recovery counters (recovery_scans,
	// torn_files_detected) and any store-level instrumentation. Nil is
	// the no-op state.
	rec *obs.Recorder
	// deltaFormat is the file format version new delta checkpoints are
	// written with: 1 (default, single-section) or 2 (chunked, parallel
	// decodable). Reads sniff the magic, so stores may mix both.
	deltaFormat int
	// chunkPoints is the chunk granularity for v2 deltas.
	chunkPoints int
	// recovery is the report of the Open-time recovery scan (nil for a
	// store handle from Create, which starts empty).
	recovery *RecoveryReport
}

// manifest is the store-level metadata file.
type manifest struct {
	Version    int     `json:"version"`
	ErrorBound float64 `json:"error_bound"`
	IndexBits  int     `json:"index_bits"`
	Strategy   string  `json:"strategy"`
}

const manifestName = "manifest.json"

// quarantineDir is the store subdirectory torn and corrupt files are
// moved into, preserving the evidence without breaking the chain scan.
const quarantineDir = "quarantine"

// ErrNotFound reports a missing checkpoint or store.
var ErrNotFound = errors.New("checkpoint: not found")

// ErrChain reports a broken restart chain (a gap between the full
// checkpoint and the requested iteration).
var ErrChain = errors.New("checkpoint: broken restart chain")

// Create initializes a store in dir (created if absent; an existing
// manifest is an error to avoid silently mixing encodings) on the real
// filesystem.
func Create(dir string, opt core.Options) (*Store, error) {
	return CreateFS(dir, opt, faultfs.OS())
}

// CreateFS is Create on an explicit filesystem, the entry point
// fault-injection tests use to crash the store mid-write.
func CreateFS(dir string, opt core.Options, fsys faultfs.FS) (*Store, error) {
	opt, err := opt.Validate()
	if err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, pathErr("create store", dir, err)
	}
	mpath := filepath.Join(dir, manifestName)
	if _, err := fsys.Stat(mpath); err == nil {
		return nil, fmt.Errorf("checkpoint: store already exists at %s", dir)
	}
	m := manifest{
		Version:    1,
		ErrorBound: opt.ErrorBound,
		IndexBits:  opt.IndexBits,
		Strategy:   opt.Strategy.String(),
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := faultfs.WriteFileAtomic(fsys, dir, mpath, data); err != nil {
		return nil, pathErr("write manifest", mpath, err)
	}
	// Seed an empty journal so a reopened store can tell "new-format
	// store, nothing committed yet" from a legacy store with no journal.
	jf, err := fsys.Append(filepath.Join(dir, journalName))
	if err != nil {
		return nil, pathErr("create journal", filepath.Join(dir, journalName), err)
	}
	jerr := jf.Sync()
	if cerr := jf.Close(); jerr == nil {
		jerr = cerr
	}
	if jerr != nil {
		return nil, pathErr("create journal", filepath.Join(dir, journalName), jerr)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return nil, pathErr("sync", dir, err)
	}
	return &Store{dir: dir, fs: fsys, opt: opt}, nil
}

// Open opens an existing store on the real filesystem and runs the
// recovery scan.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, faultfs.OS(), nil)
}

// OpenFS is Open on an explicit filesystem with an optional
// instrumentation recorder: the recovery scan reports its counters
// (recovery_scans, torn_files_detected) into rec. Nil rec keeps
// instrumentation a no-op.
func OpenFS(dir string, fsys faultfs.FS, rec *obs.Recorder) (*Store, error) {
	mpath := filepath.Join(dir, manifestName)
	if _, err := fsys.Stat(mpath); err != nil {
		return nil, fmt.Errorf("%w: no store at %s", ErrNotFound, dir)
	}
	data, err := faultfs.ReadFile(fsys, mpath)
	if err != nil {
		return nil, pathErr("read", mpath, err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %w", ErrCorrupt, err)
	}
	strategy, err := core.ParseStrategy(m.Strategy)
	if err != nil {
		return nil, fmt.Errorf("%w: manifest: %w", ErrCorrupt, err)
	}
	opt, err := core.Options{
		ErrorBound: m.ErrorBound,
		IndexBits:  m.IndexBits,
		Strategy:   strategy,
	}.Validate()
	if err != nil {
		return nil, fmt.Errorf("%w: manifest options: %w", ErrCorrupt, err)
	}
	st := &Store{dir: dir, fs: fsys, opt: opt, rec: rec}
	report, err := st.recoverScan()
	if err != nil {
		return nil, err
	}
	st.recovery = report
	return st, nil
}

// Options returns the store's encoding options.
func (st *Store) Options() core.Options { return st.opt }

// Recovery returns the Open-time recovery scan report, or nil for a
// store handle created by Create (which starts empty and needs no
// scan).
func (st *Store) Recovery() *RecoveryReport { return st.recovery }

// SetRecorder attaches an instrumentation recorder to subsequent store
// operations (salvage decodes, future scans). Nil detaches.
func (st *Store) SetRecorder(rec *obs.Recorder) { st.rec = rec }

// SetDeltaFormat selects the file format for delta checkpoints written
// from now on: 1 is the original single-section layout, 2 the chunked
// layout that supports parallel decode and per-chunk corruption
// localization. chunkPoints sets the v2 chunk granularity (<= 0 means
// DefaultChunkPoints). Reading is always format-agnostic.
func (st *Store) SetDeltaFormat(version, chunkPoints int) error {
	if version != 1 && version != 2 {
		return fmt.Errorf("checkpoint: unknown delta format version %d", version)
	}
	st.deltaFormat = version
	st.chunkPoints = chunkPoints
	return nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(variable, kind string, iteration int) string {
	return filepath.Join(st.dir, fileName(variable, kind, iteration))
}

// fileName renders the store file name of one checkpoint.
func fileName(variable, kind string, iteration int) string {
	return fmt.Sprintf("%s.%s.%06d.nmk", variable, kind, iteration)
}

// commitFile durably writes one checkpoint file: atomic
// write-temp/fsync/rename/fsync-dir, then a journal append recording
// the commit. A crash between the rename and the journal append leaves
// a committed file the journal missed; the next recovery scan adopts
// it, so the chain invariant (complete new checkpoint or clean
// pre-write state) holds at every crash point.
func (st *Store) commitFile(name string, raw []byte) error {
	path := filepath.Join(st.dir, name)
	if err := faultfs.WriteFileAtomic(st.fs, st.dir, path, raw); err != nil {
		return pathErr("commit", path, err)
	}
	return appendJournal(st.fs, st.dir, journalRecord{
		Op:   "add",
		Name: name,
		Len:  int64(len(raw)),
		CRC:  crc32.ChecksumIEEE(raw),
	})
}

// WriteFull stores data as a lossless full checkpoint.
func (st *Store) WriteFull(variable string, iteration int, data []float64) error {
	raw, err := MarshalFull(variable, iteration, data)
	if err != nil {
		return err
	}
	return st.commitFile(fileName(variable, "full", iteration), raw)
}

// WriteDelta encodes the transition prev → cur with the store's options
// and writes the delta checkpoint. It returns the encoding so callers
// can record its metrics (γ, error rates, compression ratio).
func (st *Store) WriteDelta(variable string, iteration int, prev, cur []float64) (*core.Encoded, error) {
	enc, err := core.Encode(prev, cur, st.opt)
	if err != nil {
		return nil, err
	}
	if err := st.WriteEncodedDelta(variable, iteration, enc); err != nil {
		return nil, err
	}
	return enc, nil
}

// WriteEncodedDelta writes an already-encoded delta checkpoint. Used by
// callers that inspect the encoding before committing to a delta (the
// adaptive scheduler encodes tentatively and may write a full
// checkpoint instead).
func (st *Store) WriteEncodedDelta(variable string, iteration int, enc *core.Encoded) error {
	var raw []byte
	var err error
	if st.deltaFormat == 2 {
		raw, err = MarshalDeltaV2(variable, iteration, enc, st.chunkPoints)
	} else {
		raw, err = MarshalDelta(variable, iteration, enc)
	}
	if err != nil {
		return err
	}
	return st.commitFile(fileName(variable, "delta", iteration), raw)
}

// Entry describes one stored checkpoint file.
type Entry struct {
	Variable  string
	Kind      string // "full" or "delta"
	Iteration int
}

// List returns all entries for a variable, sorted by iteration.
func (st *Store) List(variable string) ([]Entry, error) {
	names, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return nil, pathErr("list", st.dir, err)
	}
	var out []Entry
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		e, ok := parseName(de.Name())
		if ok && e.Variable == variable {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Iteration < out[b].Iteration })
	return out, nil
}

// Variables returns the distinct variable names present in the store.
func (st *Store) Variables() ([]string, error) {
	names, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return nil, pathErr("list", st.dir, err)
	}
	seen := map[string]bool{}
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		if e, ok := parseName(de.Name()); ok {
			seen[e.Variable] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, nil
}

func parseName(name string) (Entry, bool) {
	if !strings.HasSuffix(name, ".nmk") {
		return Entry{}, false
	}
	parts := strings.Split(strings.TrimSuffix(name, ".nmk"), ".")
	if len(parts) < 3 {
		return Entry{}, false
	}
	kind := parts[len(parts)-2]
	if kind != "full" && kind != "delta" {
		return Entry{}, false
	}
	iter, err := strconv.Atoi(parts[len(parts)-1])
	if err != nil {
		return Entry{}, false
	}
	return Entry{
		Variable:  strings.Join(parts[:len(parts)-2], "."),
		Kind:      kind,
		Iteration: iter,
	}, true
}

// readFileAt loads one checkpoint file's bytes through the store's
// filesystem, mapping absence to ErrNotFound with the checkpoint
// identity in the message.
func (st *Store) readFileAt(variable, kind string, iteration int) ([]byte, error) {
	path := st.path(variable, kind, iteration)
	if _, err := st.fs.Stat(path); err != nil {
		return nil, fmt.Errorf("%w: %s checkpoint %s@%d", ErrNotFound, kind, variable, iteration)
	}
	raw, err := faultfs.ReadFile(st.fs, path)
	if err != nil {
		return nil, pathErr("read", path, err)
	}
	return raw, nil
}

// ReadFull loads a full checkpoint.
func (st *Store) ReadFull(variable string, iteration int) ([]float64, error) {
	raw, err := st.readFileAt(variable, "full", iteration)
	if err != nil {
		return nil, err
	}
	v, it, data, err := UnmarshalFull(raw)
	if err != nil {
		return nil, pathErr("parse", st.path(variable, "full", iteration), err)
	}
	if v != variable || it != iteration {
		return nil, fmt.Errorf("%w: file claims %s@%d, expected %s@%d", ErrCorrupt, v, it, variable, iteration)
	}
	return data, nil
}

// ReadDelta loads a delta checkpoint's encoding.
func (st *Store) ReadDelta(variable string, iteration int) (*core.Encoded, error) {
	raw, err := st.readFileAt(variable, "delta", iteration)
	if err != nil {
		return nil, err
	}
	var v string
	var it int
	var enc *core.Encoded
	if IsDeltaV2(raw) {
		v, it, enc, err = UnmarshalDeltaV2(raw)
	} else {
		v, it, enc, err = UnmarshalDelta(raw)
	}
	if err != nil {
		return nil, pathErr("parse", st.path(variable, "delta", iteration), err)
	}
	if v != variable || it != iteration {
		return nil, fmt.Errorf("%w: file claims %s@%d, expected %s@%d", ErrCorrupt, v, it, variable, iteration)
	}
	return enc, nil
}

// Restart reconstructs a variable at the requested iteration: it loads
// the latest full checkpoint at or before it and replays every delta in
// between (§II-D). Missing intermediate deltas are an ErrChain.
func (st *Store) Restart(variable string, iteration int) ([]float64, error) {
	data, _, err := st.restart(variable, iteration, RecoverOptions{})
	return data, err
}

func (st *Store) restart(variable string, iteration int, ropt RecoverOptions) ([]float64, *PartialDataError, error) {
	entries, err := st.List(variable)
	if err != nil {
		return nil, nil, err
	}
	if len(entries) == 0 {
		return nil, nil, fmt.Errorf("%w: variable %s", ErrNotFound, variable)
	}
	// Latest full checkpoint at or before the target.
	fullIter := -1
	for _, e := range entries {
		if e.Kind == "full" && e.Iteration <= iteration {
			fullIter = e.Iteration
		}
	}
	if fullIter < 0 {
		return nil, nil, fmt.Errorf("%w: no full checkpoint at or before iteration %d for %s", ErrNotFound, iteration, variable)
	}
	data, err := st.ReadFull(variable, fullIter)
	if err != nil {
		return nil, nil, err
	}
	// Replay deltas (fullIter, iteration]. Every present delta in that
	// range must chain from the previous one without gaps.
	var partial *PartialDataError
	expected := fullIter + 1
	for _, e := range entries {
		if e.Kind != "delta" || e.Iteration <= fullIter || e.Iteration > iteration {
			continue
		}
		if e.Iteration != expected {
			return nil, nil, fmt.Errorf("%w: expected delta %d for %s, found %d", ErrChain, expected, variable, e.Iteration)
		}
		data, partial, err = st.replayDelta(variable, e.Iteration, data, ropt, partial)
		if err != nil {
			return nil, nil, err
		}
		expected++
	}
	if expected != iteration+1 {
		return nil, nil, fmt.Errorf("%w: chain for %s ends at %d, wanted %d", ErrChain, variable, expected-1, iteration)
	}
	return data, partial, nil
}

// replayDelta applies one delta on top of data. In salvage mode a v2
// delta with bad chunks contributes its healthy chunks and accumulates
// the lost point ranges into partial; fail-closed mode (and any
// non-chunk-local failure) surfaces the error.
func (st *Store) replayDelta(variable string, iteration int, data []float64, ropt RecoverOptions, partial *PartialDataError) ([]float64, *PartialDataError, error) {
	if !ropt.Salvage {
		enc, err := st.ReadDelta(variable, iteration)
		if err != nil {
			return nil, nil, err
		}
		out, err := enc.Decode(data)
		return out, partial, err
	}
	raw, err := st.readFileAt(variable, "delta", iteration)
	if err != nil {
		return nil, nil, err
	}
	if !IsDeltaV2(raw) {
		// v1 files have one whole-payload CRC: nothing chunk-local to
		// salvage, so fail-closed even in salvage mode.
		v, it, enc, err := UnmarshalDelta(raw)
		if err != nil {
			return nil, nil, pathErr("parse", st.path(variable, "delta", iteration), err)
		}
		if v != variable || it != iteration {
			return nil, nil, fmt.Errorf("%w: file claims %s@%d, expected %s@%d", ErrCorrupt, v, it, variable, iteration)
		}
		out, err := enc.Decode(data)
		return out, partial, err
	}
	d, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return nil, nil, pathErr("parse", st.path(variable, "delta", iteration), err)
	}
	out, err := d.DecodeRecover(data, 0, RecoverOptions{Salvage: true, Obs: st.rec})
	if err != nil {
		var pde *PartialDataError
		if !errors.As(err, &pde) {
			return nil, nil, err
		}
		partial = mergePartial(partial, pde, variable)
	}
	return out, partial, nil
}

// RestartSalvage is Restart in degraded mode: chunk-local corruption in
// v2 deltas is quarantined instead of failing the restart, the healthy
// chunks are replayed, and the returned PartialDataError (nil when the
// chain was fully healthy) carries the union of lost point ranges
// across the whole chain — exactly which indices hold stale values.
// Failures that are not chunk-local (a corrupt full checkpoint, a
// corrupt v1 delta, a chain gap) still fail closed.
func (st *Store) RestartSalvage(variable string, iteration int) ([]float64, *PartialDataError, error) {
	return st.restart(variable, iteration, RecoverOptions{Salvage: true})
}

// Writer appends iterations of a multi-variable simulation to a store,
// writing a full checkpoint every FullEvery iterations (the first
// write is always full) and NUMARCK deltas in between, computed against
// the true previous iteration as in in-situ checkpointing.
type Writer struct {
	st        *Store
	fullEvery int
	last      map[string][]float64
	lastIter  int
	started   bool
}

// NewWriter creates a Writer. fullEvery <= 0 means only the first
// checkpoint is full.
func NewWriter(st *Store, fullEvery int) *Writer {
	return &Writer{st: st, fullEvery: fullEvery, last: map[string][]float64{}}
}

// NewWriterAt creates a Writer primed to continue an existing store:
// lastIter is the last iteration already present and lastState its
// (possibly reconstructed) per-variable values. The next Append must
// use iteration lastIter+1 and may be a delta against lastState.
func NewWriterAt(st *Store, fullEvery, lastIter int, lastState map[string][]float64) *Writer {
	w := &Writer{st: st, fullEvery: fullEvery, last: map[string][]float64{}, lastIter: lastIter, started: true}
	for v, data := range lastState {
		w.last[v] = append([]float64(nil), data...)
	}
	return w
}

// Append writes iteration data for every variable in vars. Iterations
// must be appended in consecutive increasing order.
func (w *Writer) Append(iteration int, vars map[string][]float64) (map[string]*core.Encoded, error) {
	if w.started && iteration != w.lastIter+1 {
		return nil, fmt.Errorf("checkpoint: non-consecutive iteration %d after %d", iteration, w.lastIter)
	}
	full := !w.started || (w.fullEvery > 0 && (iteration%w.fullEvery) == 0)
	encs := map[string]*core.Encoded{}
	for v, data := range vars {
		if full {
			if err := w.st.WriteFull(v, iteration, data); err != nil {
				return nil, err
			}
		} else {
			prev, ok := w.last[v]
			if !ok {
				return nil, fmt.Errorf("checkpoint: variable %q appeared mid-run at iteration %d", v, iteration)
			}
			enc, err := w.st.WriteDelta(v, iteration, prev, data)
			if err != nil {
				return nil, err
			}
			encs[v] = enc
		}
		w.last[v] = append([]float64(nil), data...)
	}
	w.lastIter = iteration
	w.started = true
	return encs, nil
}
