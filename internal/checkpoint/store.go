package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"numarck/internal/core"
)

// Store is a directory-backed checkpoint store. Files are named
// <variable>.<kind>.<iteration>.nmk with kind "full" or "delta", plus a
// manifest.json recording the encoding options.
type Store struct {
	dir string
	opt core.Options
	// deltaFormat is the file format version new delta checkpoints are
	// written with: 1 (default, single-section) or 2 (chunked, parallel
	// decodable). Reads sniff the magic, so stores may mix both.
	deltaFormat int
	// chunkPoints is the chunk granularity for v2 deltas.
	chunkPoints int
}

// manifest is the store-level metadata file.
type manifest struct {
	Version    int     `json:"version"`
	ErrorBound float64 `json:"error_bound"`
	IndexBits  int     `json:"index_bits"`
	Strategy   string  `json:"strategy"`
}

const manifestName = "manifest.json"

// ErrNotFound reports a missing checkpoint or store.
var ErrNotFound = errors.New("checkpoint: not found")

// ErrChain reports a broken restart chain (a gap between the full
// checkpoint and the requested iteration).
var ErrChain = errors.New("checkpoint: broken restart chain")

// Create initializes a store in dir (created if absent; an existing
// manifest is an error to avoid silently mixing encodings).
func Create(dir string, opt core.Options) (*Store, error) {
	opt, err := opt.Validate()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store: %w", err)
	}
	mpath := filepath.Join(dir, manifestName)
	if _, err := os.Stat(mpath); err == nil {
		return nil, fmt.Errorf("checkpoint: store already exists at %s", dir)
	}
	m := manifest{
		Version:    1,
		ErrorBound: opt.ErrorBound,
		IndexBits:  opt.IndexBits,
		Strategy:   opt.Strategy.String(),
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(mpath, data, 0o644); err != nil {
		return nil, fmt.Errorf("checkpoint: write manifest: %w", err)
	}
	return &Store{dir: dir, opt: opt}, nil
}

// Open opens an existing store.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: no store at %s", ErrNotFound, dir)
		}
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	strategy, err := core.ParseStrategy(m.Strategy)
	if err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	opt, err := core.Options{
		ErrorBound: m.ErrorBound,
		IndexBits:  m.IndexBits,
		Strategy:   strategy,
	}.Validate()
	if err != nil {
		return nil, fmt.Errorf("%w: manifest options: %v", ErrCorrupt, err)
	}
	return &Store{dir: dir, opt: opt}, nil
}

// Options returns the store's encoding options.
func (st *Store) Options() core.Options { return st.opt }

// SetDeltaFormat selects the file format for delta checkpoints written
// from now on: 1 is the original single-section layout, 2 the chunked
// layout that supports parallel decode and per-chunk corruption
// localization. chunkPoints sets the v2 chunk granularity (<= 0 means
// DefaultChunkPoints). Reading is always format-agnostic.
func (st *Store) SetDeltaFormat(version, chunkPoints int) error {
	if version != 1 && version != 2 {
		return fmt.Errorf("checkpoint: unknown delta format version %d", version)
	}
	st.deltaFormat = version
	st.chunkPoints = chunkPoints
	return nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(variable, kind string, iteration int) string {
	return filepath.Join(st.dir, fmt.Sprintf("%s.%s.%06d.nmk", variable, kind, iteration))
}

// WriteFull stores data as a lossless full checkpoint.
func (st *Store) WriteFull(variable string, iteration int, data []float64) error {
	raw, err := MarshalFull(variable, iteration, data)
	if err != nil {
		return err
	}
	return os.WriteFile(st.path(variable, "full", iteration), raw, 0o644)
}

// WriteDelta encodes the transition prev → cur with the store's options
// and writes the delta checkpoint. It returns the encoding so callers
// can record its metrics (γ, error rates, compression ratio).
func (st *Store) WriteDelta(variable string, iteration int, prev, cur []float64) (*core.Encoded, error) {
	enc, err := core.Encode(prev, cur, st.opt)
	if err != nil {
		return nil, err
	}
	if err := st.WriteEncodedDelta(variable, iteration, enc); err != nil {
		return nil, err
	}
	return enc, nil
}

// WriteEncodedDelta writes an already-encoded delta checkpoint. Used by
// callers that inspect the encoding before committing to a delta (the
// adaptive scheduler encodes tentatively and may write a full
// checkpoint instead).
func (st *Store) WriteEncodedDelta(variable string, iteration int, enc *core.Encoded) error {
	var raw []byte
	var err error
	if st.deltaFormat == 2 {
		raw, err = MarshalDeltaV2(variable, iteration, enc, st.chunkPoints)
	} else {
		raw, err = MarshalDelta(variable, iteration, enc)
	}
	if err != nil {
		return err
	}
	return os.WriteFile(st.path(variable, "delta", iteration), raw, 0o644)
}

// Entry describes one stored checkpoint file.
type Entry struct {
	Variable  string
	Kind      string // "full" or "delta"
	Iteration int
}

// List returns all entries for a variable, sorted by iteration.
func (st *Store) List(variable string) ([]Entry, error) {
	names, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, de := range names {
		e, ok := parseName(de.Name())
		if ok && e.Variable == variable {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Iteration < out[b].Iteration })
	return out, nil
}

// Variables returns the distinct variable names present in the store.
func (st *Store) Variables() ([]string, error) {
	names, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, de := range names {
		if e, ok := parseName(de.Name()); ok {
			seen[e.Variable] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, nil
}

func parseName(name string) (Entry, bool) {
	if !strings.HasSuffix(name, ".nmk") {
		return Entry{}, false
	}
	parts := strings.Split(strings.TrimSuffix(name, ".nmk"), ".")
	if len(parts) < 3 {
		return Entry{}, false
	}
	kind := parts[len(parts)-2]
	if kind != "full" && kind != "delta" {
		return Entry{}, false
	}
	iter, err := strconv.Atoi(parts[len(parts)-1])
	if err != nil {
		return Entry{}, false
	}
	return Entry{
		Variable:  strings.Join(parts[:len(parts)-2], "."),
		Kind:      kind,
		Iteration: iter,
	}, true
}

// ReadFull loads a full checkpoint.
func (st *Store) ReadFull(variable string, iteration int) ([]float64, error) {
	raw, err := os.ReadFile(st.path(variable, "full", iteration))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: full checkpoint %s@%d", ErrNotFound, variable, iteration)
		}
		return nil, err
	}
	v, it, data, err := UnmarshalFull(raw)
	if err != nil {
		return nil, err
	}
	if v != variable || it != iteration {
		return nil, fmt.Errorf("%w: file claims %s@%d, expected %s@%d", ErrCorrupt, v, it, variable, iteration)
	}
	return data, nil
}

// ReadDelta loads a delta checkpoint's encoding.
func (st *Store) ReadDelta(variable string, iteration int) (*core.Encoded, error) {
	raw, err := os.ReadFile(st.path(variable, "delta", iteration))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: delta checkpoint %s@%d", ErrNotFound, variable, iteration)
		}
		return nil, err
	}
	var v string
	var it int
	var enc *core.Encoded
	if IsDeltaV2(raw) {
		v, it, enc, err = UnmarshalDeltaV2(raw)
	} else {
		v, it, enc, err = UnmarshalDelta(raw)
	}
	if err != nil {
		return nil, err
	}
	if v != variable || it != iteration {
		return nil, fmt.Errorf("%w: file claims %s@%d, expected %s@%d", ErrCorrupt, v, it, variable, iteration)
	}
	return enc, nil
}

// Restart reconstructs a variable at the requested iteration: it loads
// the latest full checkpoint at or before it and replays every delta in
// between (§II-D). Missing intermediate deltas are an ErrChain.
func (st *Store) Restart(variable string, iteration int) ([]float64, error) {
	entries, err := st.List(variable)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%w: variable %s", ErrNotFound, variable)
	}
	// Latest full checkpoint at or before the target.
	fullIter := -1
	for _, e := range entries {
		if e.Kind == "full" && e.Iteration <= iteration {
			fullIter = e.Iteration
		}
	}
	if fullIter < 0 {
		return nil, fmt.Errorf("%w: no full checkpoint at or before iteration %d for %s", ErrNotFound, iteration, variable)
	}
	data, err := st.ReadFull(variable, fullIter)
	if err != nil {
		return nil, err
	}
	// Replay deltas (fullIter, iteration]. Every present delta in that
	// range must chain from the previous one without gaps.
	expected := fullIter + 1
	for _, e := range entries {
		if e.Kind != "delta" || e.Iteration <= fullIter || e.Iteration > iteration {
			continue
		}
		if e.Iteration != expected {
			return nil, fmt.Errorf("%w: expected delta %d for %s, found %d", ErrChain, expected, variable, e.Iteration)
		}
		enc, err := st.ReadDelta(variable, e.Iteration)
		if err != nil {
			return nil, err
		}
		data, err = enc.Decode(data)
		if err != nil {
			return nil, err
		}
		expected++
	}
	if expected != iteration+1 {
		return nil, fmt.Errorf("%w: chain for %s ends at %d, wanted %d", ErrChain, variable, expected-1, iteration)
	}
	return data, nil
}

// Writer appends iterations of a multi-variable simulation to a store,
// writing a full checkpoint every FullEvery iterations (the first
// write is always full) and NUMARCK deltas in between, computed against
// the true previous iteration as in in-situ checkpointing.
type Writer struct {
	st        *Store
	fullEvery int
	last      map[string][]float64
	lastIter  int
	started   bool
}

// NewWriter creates a Writer. fullEvery <= 0 means only the first
// checkpoint is full.
func NewWriter(st *Store, fullEvery int) *Writer {
	return &Writer{st: st, fullEvery: fullEvery, last: map[string][]float64{}}
}

// NewWriterAt creates a Writer primed to continue an existing store:
// lastIter is the last iteration already present and lastState its
// (possibly reconstructed) per-variable values. The next Append must
// use iteration lastIter+1 and may be a delta against lastState.
func NewWriterAt(st *Store, fullEvery, lastIter int, lastState map[string][]float64) *Writer {
	w := &Writer{st: st, fullEvery: fullEvery, last: map[string][]float64{}, lastIter: lastIter, started: true}
	for v, data := range lastState {
		w.last[v] = append([]float64(nil), data...)
	}
	return w
}

// Append writes iteration data for every variable in vars. Iterations
// must be appended in consecutive increasing order.
func (w *Writer) Append(iteration int, vars map[string][]float64) (map[string]*core.Encoded, error) {
	if w.started && iteration != w.lastIter+1 {
		return nil, fmt.Errorf("checkpoint: non-consecutive iteration %d after %d", iteration, w.lastIter)
	}
	full := !w.started || (w.fullEvery > 0 && (iteration%w.fullEvery) == 0)
	encs := map[string]*core.Encoded{}
	for v, data := range vars {
		if full {
			if err := w.st.WriteFull(v, iteration, data); err != nil {
				return nil, err
			}
		} else {
			prev, ok := w.last[v]
			if !ok {
				return nil, fmt.Errorf("checkpoint: variable %q appeared mid-run at iteration %d", v, iteration)
			}
			enc, err := w.st.WriteDelta(v, iteration, prev, data)
			if err != nil {
				return nil, err
			}
			encs[v] = enc
		}
		w.last[v] = append([]float64(nil), data...)
	}
	w.lastIter = iteration
	w.started = true
	return encs, nil
}
