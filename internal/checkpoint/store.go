package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strconv"
	"strings"

	"numarck/internal/core"
	"numarck/internal/faultfs"
	"numarck/internal/obs"
)

// Store is the writer handle of a directory-backed checkpoint store.
// Files are named <variable>.<kind>.<iteration>.nmk with kind "full" or
// "delta", plus a manifest.json recording the encoding options, a
// MANIFEST journal recording the committed chain (file names, lengths,
// CRCs), a CHAININDEX binary image of the live chain for lock-free
// readers, and a LOCK file claiming single-writer ownership.
//
// The store is layered:
//
//   - Exactly one writer per directory. Create and Open claim the
//     on-disk writer lock (LOCK, published atomically by staging the
//     complete payload and hard-linking it into place); a second
//     writer fails fast with a *LockHeldError, and a lock left by a
//     crashed writer is detected (dead PID) and taken over with a
//     capture-and-verify break that never destroys a racer's claim.
//   - Every write is crash-safe: file bytes go to a .tmp sibling, are
//     fsynced, renamed into place, and the directory is fsynced before
//     the journal records the commit — so after a crash at any point,
//     reopening the store sees either the complete new checkpoint or
//     the clean pre-write state, never a torn file in the chain.
//   - After each commit the writer republishes the CHAININDEX
//     atomically, so readers (OpenReadOnly) can serve listings and
//     restarts without replaying the journal or scanning the
//     directory — and without ever blocking this writer.
//
// Open runs a recovery scan that reconciles the journal with the
// directory, adopts committed files the journal missed, quarantines
// torn or corrupt files into quarantine/, and removes stale
// temporaries; the scan's findings are available from Recovery. The
// writer keeps the reconciled chain in memory, so List, Variables,
// Stats, and LatestRestorable are pure memory reads.
//
// A Store is not safe for concurrent use by multiple goroutines; the
// concurrency story is one writer goroutine plus any number of
// ReadView readers, in this process or others.
type Store struct {
	dir string
	fs  faultfs.FS
	opt core.Options
	// rec receives recovery counters (recovery_scans,
	// torn_files_detected, index_rebuilds, lock_takeovers) and any
	// store-level instrumentation. Nil is the no-op state.
	rec *obs.Recorder
	// lock is the held writer lock; Close releases it.
	lock *storeLock
	// chain is the in-memory image of the journal's live entries: file
	// name → committed length and CRC. Every commit updates it and
	// republishes the chain index from it.
	chain map[string]journalEntry
	// indexSeq is the publication sequence of the last CHAININDEX this
	// handle published or adopted.
	indexSeq uint64
	// closed is set by Close; a closed handle refuses further writes
	// (its lock is gone, so writing would race a successor writer).
	closed bool
	// deltaFormat is the file format version new delta checkpoints are
	// written with: 1 (default, single-section) or 2 (chunked, parallel
	// decodable). Reads sniff the magic, so stores may mix both.
	deltaFormat int
	// chunkPoints is the chunk granularity for v2 deltas.
	chunkPoints int
	// recovery is the report of the Open-time recovery scan (nil for a
	// store handle from Create, which starts empty).
	recovery *RecoveryReport
}

// manifest is the store-level metadata file.
type manifest struct {
	Version    int     `json:"version"`
	ErrorBound float64 `json:"error_bound"`
	IndexBits  int     `json:"index_bits"`
	Strategy   string  `json:"strategy"`
}

const manifestName = "manifest.json"

// quarantineDir is the store subdirectory torn and corrupt files are
// moved into, preserving the evidence without breaking the chain scan.
const quarantineDir = "quarantine"

// ErrNotFound reports a missing checkpoint or store.
var ErrNotFound = errors.New("checkpoint: not found")

// ErrChain reports a broken restart chain (a gap between the full
// checkpoint and the requested iteration).
var ErrChain = errors.New("checkpoint: broken restart chain")

// ErrClosed reports an operation on a Store after Close released its
// writer lock.
var ErrClosed = errors.New("checkpoint: store is closed")

// isStoreMetaFile reports whether name is one of the metadata files
// that live alongside checkpoint files in the store directory and are
// never chain entries.
func isStoreMetaFile(name string) bool {
	return name == manifestName || name == journalName || name == indexName || name == lockName
}

// Create initializes a store in dir (created if absent; an existing
// manifest is an error to avoid silently mixing encodings) on the real
// filesystem.
func Create(dir string, opt core.Options) (*Store, error) {
	return CreateFS(dir, opt, faultfs.OS())
}

// CreateFS is Create on an explicit filesystem, the entry point
// fault-injection tests use to crash the store mid-write.
func CreateFS(dir string, opt core.Options, fsys faultfs.FS) (*Store, error) {
	return CreateFSOwner(dir, opt, fsys, LockOwner{})
}

// CreateFSOwner is CreateFS with an explicit lock owner identity, used
// by tests that need the resulting LOCK file to read as held or stale
// regardless of the test process's real PID.
func CreateFSOwner(dir string, opt core.Options, fsys faultfs.FS, owner LockOwner) (*Store, error) {
	opt, err := opt.Validate()
	if err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, pathErr("create store", dir, err)
	}
	// The lock comes first so two racing Creates serialize: the loser
	// sees either our manifest (store exists) or our live lock.
	lock, err := acquireLock(fsys, dir, owner, nil)
	if err != nil {
		return nil, err
	}
	st, err := createLocked(dir, opt, fsys)
	if err != nil {
		_ = lock.release()
		return nil, err
	}
	st.lock = lock
	return st, nil
}

// createLocked is the body of Create once the writer lock is held.
func createLocked(dir string, opt core.Options, fsys faultfs.FS) (*Store, error) {
	mpath := filepath.Join(dir, manifestName)
	if _, err := fsys.Stat(mpath); err == nil {
		return nil, fmt.Errorf("checkpoint: store already exists at %s", dir)
	}
	m := manifest{
		Version:    1,
		ErrorBound: opt.ErrorBound,
		IndexBits:  opt.IndexBits,
		Strategy:   opt.Strategy.String(),
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := faultfs.WriteFileAtomic(fsys, dir, mpath, data); err != nil {
		return nil, pathErr("write manifest", mpath, err)
	}
	// Seed an empty journal so a reopened store can tell "new-format
	// store, nothing committed yet" from a legacy store with no journal.
	if err := seedJournal(fsys, dir); err != nil {
		return nil, err
	}
	st := &Store{dir: dir, fs: fsys, opt: opt, chain: map[string]journalEntry{}, indexSeq: 1}
	// Publish the empty index so readers of a fresh store already have
	// their fast path.
	if err := publishIndex(fsys, dir, st.chain, st.indexSeq); err != nil {
		return nil, err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return nil, pathErr("sync", dir, err)
	}
	return st, nil
}

// Open opens an existing store for writing on the real filesystem,
// claims the writer lock, and runs the recovery scan. For read-only
// access that never mutates the store, use OpenReadOnly.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, faultfs.OS(), nil)
}

// OpenFS is Open on an explicit filesystem with an optional
// instrumentation recorder: the recovery scan reports its counters
// (recovery_scans, torn_files_detected, index_rebuilds) into rec. Nil
// rec keeps instrumentation a no-op.
func OpenFS(dir string, fsys faultfs.FS, rec *obs.Recorder) (*Store, error) {
	return OpenFSOwner(dir, fsys, rec, LockOwner{})
}

// OpenFSOwner is OpenFS with an explicit lock owner identity, used by
// tests that need the resulting LOCK file to read as held or stale
// regardless of the test process's real PID.
func OpenFSOwner(dir string, fsys faultfs.FS, rec *obs.Recorder, owner LockOwner) (*Store, error) {
	opt, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	lock, err := acquireLock(fsys, dir, owner, rec)
	if err != nil {
		return nil, err
	}
	st := &Store{dir: dir, fs: fsys, opt: opt, rec: rec, lock: lock}
	report, err := st.recoverScan()
	if err != nil {
		_ = lock.release()
		return nil, err
	}
	st.recovery = report
	return st, nil
}

// readManifest loads and validates the store's manifest.json.
func readManifest(fsys faultfs.FS, dir string) (core.Options, error) {
	mpath := filepath.Join(dir, manifestName)
	if _, err := fsys.Stat(mpath); err != nil {
		return core.Options{}, fmt.Errorf("%w: no store at %s", ErrNotFound, dir)
	}
	data, err := faultfs.ReadFile(fsys, mpath)
	if err != nil {
		return core.Options{}, pathErr("read", mpath, err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return core.Options{}, fmt.Errorf("%w: manifest: %w", ErrCorrupt, err)
	}
	strategy, err := core.ParseStrategy(m.Strategy)
	if err != nil {
		return core.Options{}, fmt.Errorf("%w: manifest: %w", ErrCorrupt, err)
	}
	opt, err := core.Options{
		ErrorBound: m.ErrorBound,
		IndexBits:  m.IndexBits,
		Strategy:   strategy,
	}.Validate()
	if err != nil {
		return core.Options{}, fmt.Errorf("%w: manifest options: %w", ErrCorrupt, err)
	}
	return opt, nil
}

// Close releases the store's writer lock and marks the handle closed.
// Further writes fail with ErrClosed; read methods keep working (they
// only consult the in-memory chain and read files). Close is
// idempotent.
func (st *Store) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	lock := st.lock
	st.lock = nil
	return lock.release()
}

// Options returns the store's encoding options.
func (st *Store) Options() core.Options { return st.opt }

// Recovery returns the Open-time recovery scan report, or nil for a
// store handle created by Create (which starts empty and needs no
// scan).
func (st *Store) Recovery() *RecoveryReport { return st.recovery }

// SetRecorder attaches an instrumentation recorder to subsequent store
// operations (salvage decodes, future scans). Nil detaches.
func (st *Store) SetRecorder(rec *obs.Recorder) { st.rec = rec }

// SetDeltaFormat selects the file format for delta checkpoints written
// from now on: 1 is the original single-section layout, 2 the chunked
// layout that supports parallel decode and per-chunk corruption
// localization. chunkPoints sets the v2 chunk granularity (<= 0 means
// DefaultChunkPoints). Reading is always format-agnostic.
func (st *Store) SetDeltaFormat(version, chunkPoints int) error {
	if version != 1 && version != 2 {
		return fmt.Errorf("checkpoint: unknown delta format version %d", version)
	}
	st.deltaFormat = version
	st.chunkPoints = chunkPoints
	return nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// IndexSeq returns the publication sequence of the store's current
// chain index.
func (st *Store) IndexSeq() uint64 { return st.indexSeq }

func (st *Store) path(variable, kind string, iteration int) string {
	return filepath.Join(st.dir, fileName(variable, kind, iteration))
}

// fileName renders the store file name of one checkpoint.
func fileName(variable, kind string, iteration int) string {
	return fmt.Sprintf("%s.%s.%06d.nmk", variable, kind, iteration)
}

// commitFile durably writes one checkpoint file: atomic
// write-temp/fsync/rename/fsync-dir, a journal append recording the
// commit, then an atomic republish of the chain index. A crash between
// the rename and the journal append leaves a committed file the journal
// missed; the next recovery scan adopts it. A crash before the index
// republish leaves a stale index whose journal anchor no longer
// matches; readers detect that and fall back to the journal. The chain
// invariant (complete new checkpoint or clean pre-write state) holds at
// every crash point.
//
// payloadCRC is the caller-declared CRC of the pre-encode payload,
// journaled alongside the file CRC so retried commits can be detected
// as idempotent replays (0 = unknown).
func (st *Store) commitFile(name string, raw []byte, payloadCRC uint32) error {
	if st.closed {
		return ErrClosed
	}
	path := filepath.Join(st.dir, name)
	if err := faultfs.WriteFileAtomic(st.fs, st.dir, path, raw); err != nil {
		return pathErr("commit", path, err)
	}
	je := journalEntry{Len: int64(len(raw)), CRC: crc32.ChecksumIEEE(raw), PayloadCRC: payloadCRC}
	if err := appendJournal(st.fs, st.dir, journalRecord{
		Op:         "add",
		Name:       name,
		Len:        je.Len,
		CRC:        je.CRC,
		PayloadCRC: je.PayloadCRC,
	}); err != nil {
		return err
	}
	st.chain[name] = je
	return st.republishIndex()
}

// CommittedEntry describes one journaled commit, looked up by Committed
// for idempotency decisions: a retried commit whose declared payload
// CRC matches PayloadCRC (or, for commits whose payload is the file
// itself, CRC) is a replay, not a new write.
type CommittedEntry struct {
	// Name is the committed file's name; Kind is "full" or "delta".
	Name string
	Kind string
	// Len and CRC are the journaled file length and checksum.
	Len int64
	CRC uint32
	// PayloadCRC is the journaled pre-encode payload checksum (0 =
	// unknown: library writes, adopted files, pre-upgrade records).
	PayloadCRC uint32
}

// Committed returns the journaled commit for variable at iteration, if
// any. It is a pure in-memory chain lookup.
func (st *Store) Committed(variable string, iteration int) (CommittedEntry, bool) {
	for _, kind := range []string{"full", "delta"} {
		name := fileName(variable, kind, iteration)
		if je, ok := st.chain[name]; ok {
			return CommittedEntry{Name: name, Kind: kind, Len: je.Len, CRC: je.CRC, PayloadCRC: je.PayloadCRC}, true
		}
	}
	return CommittedEntry{}, false
}

// republishIndex publishes the next chain-index image from the
// in-memory chain.
func (st *Store) republishIndex() error {
	st.indexSeq++
	return publishIndex(st.fs, st.dir, st.chain, st.indexSeq)
}

// WriteFull stores data as a lossless full checkpoint.
func (st *Store) WriteFull(variable string, iteration int, data []float64) error {
	if err := validateIdentity(variable, iteration); err != nil {
		return err
	}
	raw, err := MarshalFull(variable, iteration, data)
	if err != nil {
		return err
	}
	return st.commitFile(fileName(variable, "full", iteration), raw, 0)
}

// WriteDelta encodes the transition prev → cur with the store's options
// and writes the delta checkpoint. It returns the encoding so callers
// can record its metrics (γ, error rates, compression ratio).
func (st *Store) WriteDelta(variable string, iteration int, prev, cur []float64) (*core.Encoded, error) {
	enc, err := core.Encode(prev, cur, st.opt)
	if err != nil {
		return nil, err
	}
	if err := st.WriteEncodedDelta(variable, iteration, enc); err != nil {
		return nil, err
	}
	return enc, nil
}

// WriteEncodedDelta writes an already-encoded delta checkpoint. Used by
// callers that inspect the encoding before committing to a delta (the
// adaptive scheduler encodes tentatively and may write a full
// checkpoint instead).
func (st *Store) WriteEncodedDelta(variable string, iteration int, enc *core.Encoded) error {
	if err := validateIdentity(variable, iteration); err != nil {
		return err
	}
	var raw []byte
	var err error
	if st.deltaFormat == 2 {
		raw, err = MarshalDeltaV2(variable, iteration, enc, st.chunkPoints)
	} else {
		raw, err = MarshalDelta(variable, iteration, enc)
	}
	if err != nil {
		return err
	}
	return st.commitFile(fileName(variable, "delta", iteration), raw, 0)
}

// WriteRawFull commits raw — an already-marshalled NMRKF1 full
// checkpoint file, e.g. one produced by MarshalFull or received over
// the wire — after validating that it parses and that its header
// identity matches the given variable and iteration. It is the commit
// hook the checkpoint service daemon uses: the encode happened
// elsewhere, but the commit gets the same crash-safe
// write/journal/index-republish path as WriteFull. The journaled
// payload CRC is the file's own CRC: a raw commit's payload is the
// file itself.
func (st *Store) WriteRawFull(variable string, iteration int, raw []byte) error {
	return st.WriteRawFullPayload(variable, iteration, raw, crc32.ChecksumIEEE(raw))
}

// WriteRawFullPayload is WriteRawFull with an explicit payload CRC —
// the checksum of whatever the caller's client originally sent (for
// the daemon's value commits, the raw float64 body, not the encoded
// file). It is journaled with the commit so a retried request can be
// recognized as an idempotent replay. 0 means unknown.
func (st *Store) WriteRawFullPayload(variable string, iteration int, raw []byte, payloadCRC uint32) error {
	if err := validateIdentity(variable, iteration); err != nil {
		return err
	}
	v, it, _, err := UnmarshalFull(raw)
	if err != nil {
		return fmt.Errorf("checkpoint: raw full checkpoint rejected: %w", err)
	}
	if v != variable || it != iteration {
		return fmt.Errorf("%w: raw full checkpoint claims %s@%d, committing as %s@%d", ErrBadVariable, v, it, variable, iteration)
	}
	return st.commitFile(fileName(variable, "full", iteration), raw, payloadCRC)
}

// WriteRawDelta commits raw — an already-marshalled NMRKD1 or NMRKD2
// delta checkpoint file, e.g. the output of a streaming encode —
// after validating that it parses (v2: header, bin table, and chunk
// directory; v1: the whole payload including its CRC) and that its
// header identity matches the given variable and iteration. The
// journaled payload CRC is the file's own CRC: a raw commit's payload
// is the file itself.
func (st *Store) WriteRawDelta(variable string, iteration int, raw []byte) error {
	return st.WriteRawDeltaPayload(variable, iteration, raw, crc32.ChecksumIEEE(raw))
}

// WriteRawDeltaPayload is WriteRawDelta with an explicit payload CRC
// (the checksum of the client's pre-encode payload, journaled for
// idempotent-replay detection; 0 = unknown).
func (st *Store) WriteRawDeltaPayload(variable string, iteration int, raw []byte, payloadCRC uint32) error {
	if err := validateIdentity(variable, iteration); err != nil {
		return err
	}
	var v string
	var it int
	if IsDeltaV2(raw) {
		d, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			return fmt.Errorf("checkpoint: raw v2 delta rejected: %w", err)
		}
		meta := d.Meta()
		v, it = meta.Variable, meta.Iteration
	} else {
		var err error
		v, it, _, err = UnmarshalDelta(raw)
		if err != nil {
			return fmt.Errorf("checkpoint: raw delta rejected: %w", err)
		}
	}
	if v != variable || it != iteration {
		return fmt.Errorf("%w: raw delta claims %s@%d, committing as %s@%d", ErrBadVariable, v, it, variable, iteration)
	}
	return st.commitFile(fileName(variable, "delta", iteration), raw, payloadCRC)
}

// Entry describes one stored checkpoint file.
type Entry struct {
	Variable  string
	Kind      string // "full" or "delta"
	Iteration int
}

// List returns all entries for a variable, sorted by iteration. It is
// served from the in-memory chain — no filesystem access.
func (st *Store) List(variable string) ([]Entry, error) {
	return chainEntries(st.chain, variable), nil
}

// Variables returns the distinct variable names present in the store,
// served from the in-memory chain.
func (st *Store) Variables() ([]string, error) {
	return chainVariables(st.chain), nil
}

// parseName decodes a checkpoint file name back into its entry.
func parseName(name string) (Entry, bool) {
	if !strings.HasSuffix(name, ".nmk") {
		return Entry{}, false
	}
	parts := strings.Split(strings.TrimSuffix(name, ".nmk"), ".")
	if len(parts) < 3 {
		return Entry{}, false
	}
	kind := parts[len(parts)-2]
	if kind != "full" && kind != "delta" {
		return Entry{}, false
	}
	iter, err := strconv.Atoi(parts[len(parts)-1])
	if err != nil {
		return Entry{}, false
	}
	return Entry{
		Variable:  strings.Join(parts[:len(parts)-2], "."),
		Kind:      kind,
		Iteration: iter,
	}, true
}

// ReadFull loads a full checkpoint.
func (st *Store) ReadFull(variable string, iteration int) ([]float64, error) {
	return readFullFile(st.fs, st.dir, variable, iteration)
}

// ReadDelta loads a delta checkpoint's encoding.
func (st *Store) ReadDelta(variable string, iteration int) (*core.Encoded, error) {
	return readDeltaFile(st.fs, st.dir, variable, iteration)
}

// Restart reconstructs a variable at the requested iteration: it loads
// the latest full checkpoint at or before it and replays every delta in
// between (§II-D). Missing intermediate deltas are an ErrChain.
func (st *Store) Restart(variable string, iteration int) ([]float64, error) {
	data, _, err := restartEntries(st.fs, st.dir, st.rec, chainEntries(st.chain, variable), variable, iteration, RecoverOptions{})
	return data, err
}

// RestartSalvage is Restart in degraded mode: chunk-local corruption in
// v2 deltas is quarantined instead of failing the restart, the healthy
// chunks are replayed, and the returned PartialDataError (nil when the
// chain was fully healthy) carries the union of lost point ranges
// across the whole chain — exactly which indices hold stale values.
// Failures that are not chunk-local (a corrupt full checkpoint, a
// corrupt v1 delta, a chain gap) still fail closed.
func (st *Store) RestartSalvage(variable string, iteration int) ([]float64, *PartialDataError, error) {
	return restartEntries(st.fs, st.dir, st.rec, chainEntries(st.chain, variable), variable, iteration, RecoverOptions{Salvage: true})
}
