package checkpoint

import (
	"math/rand"
	"testing"

	"numarck/internal/core"
)

// TestRandomByteFlipsNeverPanic hammers the delta parser with random
// single- and multi-byte corruptions of a valid file: every mutation
// must either parse to a decodable encoding or return an error — never
// panic, never loop.
func TestRandomByteFlipsNeverPanic(t *testing.T) {
	series := genSeries(800, 2, 31)
	enc, err := core.Encode(series[0], series[1], opts())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarshalDelta("v", 1, enc)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 500; trial++ {
		mutated := append([]byte{}, raw...)
		flips := 1 + rng.Intn(4)
		for f := 0; f < flips; f++ {
			pos := rng.Intn(len(mutated))
			mutated[pos] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			v, it, dec, err := UnmarshalDelta(mutated)
			if err != nil {
				return // rejected, fine
			}
			// CRC collision is practically impossible for single-byte
			// flips of CRC32-protected payloads, but header bytes are
			// outside the CRC: a parse that succeeds must still decode
			// without panicking.
			_ = v
			_ = it
			if _, err := dec.Decode(series[0]); err != nil {
				return
			}
		}()
	}
}

// TestRandomTruncationsNeverPanic does the same with truncations.
func TestRandomTruncationsNeverPanic(t *testing.T) {
	series := genSeries(400, 2, 33)
	enc, err := core.Encode(series[0], series[1], opts())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarshalDelta("v", 1, enc)
	if err != nil {
		t.Fatal(err)
	}
	fullRaw, err := MarshalFull("v", 0, series[0])
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(raw); cut += 7 {
		if _, _, _, err := UnmarshalDelta(raw[:cut]); err == nil && cut < len(raw) {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for cut := 0; cut <= len(fullRaw); cut += 7 {
		if _, _, _, err := UnmarshalFull(fullRaw[:cut]); err == nil && cut < len(fullRaw) {
			t.Fatalf("full truncation at %d accepted", cut)
		}
	}
}

// TestRandomGarbageNeverPanics feeds arbitrary bytes to both parsers.
func TestRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 300; trial++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		if _, _, _, err := UnmarshalDelta(buf); err == nil {
			t.Fatalf("random garbage parsed as delta")
		}
		if _, _, _, err := UnmarshalFull(buf); err == nil {
			t.Fatalf("random garbage parsed as full")
		}
	}
}
