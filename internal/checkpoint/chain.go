package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sort"

	"numarck/internal/core"
	"numarck/internal/faultfs"
	"numarck/internal/obs"
)

// This file is the layer both writer stores and read views are built
// on: variable-name validation, chain bookkeeping derived from the
// in-memory journal state (list, variables, stats, latest-restorable),
// and the restart walk that loads a full checkpoint and replays deltas.
// Everything here is a pure function of (filesystem, directory, chain
// map) — no handle state — so the single writer and any number of
// lock-free readers share one implementation and cannot drift.

// MaxVariableLen is the longest variable name the store accepts; it is
// the fixed field width of a chain-index record.
const MaxVariableLen = 64

// ErrBadVariable matches, via errors.Is, a rejected variable name or
// iteration number. Names are validated at every write: a name with a
// path separator or a leading dot could otherwise escape the store
// directory or collide with store metadata files.
var ErrBadVariable = errors.New("checkpoint: invalid variable name")

// ValidateVariable checks a variable name against the store's naming
// rules: 1 to MaxVariableLen bytes, first byte a letter, digit, or
// underscore, remaining bytes letters, digits, underscore, dot, or
// dash. The rules make every name a single safe path component and
// representable in a fixed-width chain-index record.
func ValidateVariable(variable string) error {
	if len(variable) == 0 {
		return fmt.Errorf("%w: empty", ErrBadVariable)
	}
	if len(variable) > MaxVariableLen {
		return fmt.Errorf("%w: %q is %d bytes, limit %d", ErrBadVariable, variable, len(variable), MaxVariableLen)
	}
	for i := 0; i < len(variable); i++ {
		c := variable[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if i > 0 {
			ok = ok || c == '.' || c == '-'
		}
		if !ok {
			return fmt.Errorf("%w: %q has byte %q at position %d", ErrBadVariable, variable, c, i)
		}
	}
	return nil
}

// validateIdentity checks a (variable, iteration) pair before a write
// or targeted read touches the filesystem with a name derived from it.
func validateIdentity(variable string, iteration int) error {
	if err := ValidateVariable(variable); err != nil {
		return err
	}
	if iteration < 0 || iteration > 1<<31-1 {
		return fmt.Errorf("%w: iteration %d out of range", ErrBadVariable, iteration)
	}
	return nil
}

// chainEntries returns the chain's entries for one variable, sorted by
// iteration.
func chainEntries(chain map[string]journalEntry, variable string) []Entry {
	var out []Entry
	for name := range chain {
		e, ok := parseName(name)
		if ok && e.Variable == variable {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Iteration < out[b].Iteration })
	return out
}

// ChainEntry is one committed checkpoint file as the store's chain
// records it: the parsed identity plus the file name and the journaled
// byte length and CRC. It is what chain-level tooling (the service
// daemon's chain endpoint, read-only verification) needs to account
// for a file without stat'ing or reading it.
type ChainEntry struct {
	// Entry is the parsed identity (variable, kind, iteration).
	Entry
	// Name is the file's name inside the store directory.
	Name string
	// Len is the journaled byte length of the committed file.
	Len int64
	// CRC is the journaled CRC-32 (IEEE) of the whole file.
	CRC uint32
}

// chainFileEntries returns one variable's chain entries with their
// journaled lengths and CRCs, sorted by iteration.
func chainFileEntries(chain map[string]journalEntry, variable string) []ChainEntry {
	var out []ChainEntry
	for name, je := range chain {
		e, ok := parseName(name)
		if ok && e.Variable == variable {
			out = append(out, ChainEntry{Entry: e, Name: name, Len: je.Len, CRC: je.CRC})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Iteration < out[b].Iteration })
	return out
}

// chainVariables returns the distinct variable names in the chain,
// sorted.
func chainVariables(chain map[string]journalEntry) []string {
	seen := map[string]bool{}
	for name := range chain {
		if e, ok := parseName(name); ok {
			seen[e.Variable] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// chainStats derives per-variable storage statistics from the chain
// alone: the journal records every committed file's byte length, so no
// per-file Stat is needed.
func chainStats(chain map[string]journalEntry) []VariableStats {
	byVar := map[string]*VariableStats{}
	for name, je := range chain {
		e, ok := parseName(name)
		if !ok {
			continue
		}
		s := byVar[e.Variable]
		if s == nil {
			s = &VariableStats{Variable: e.Variable, FirstIter: -1}
			byVar[e.Variable] = s
		}
		if s.FirstIter < 0 || e.Iteration < s.FirstIter {
			s.FirstIter = e.Iteration
		}
		if e.Iteration > s.LastIter {
			s.LastIter = e.Iteration
		}
		if e.Kind == "full" {
			s.Fulls++
			s.FullBytes += je.Len
		} else {
			s.Deltas++
			s.DeltaBytes += je.Len
		}
	}
	out := make([]VariableStats, 0, len(byVar))
	for _, s := range byVar {
		out = append(out, *s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Variable < out[b].Variable })
	return out
}

// latestRestorableEntries walks a variable's sorted entries and returns
// the highest iteration reachable through an unbroken delta chain
// rooted at a full checkpoint, or -1 if no full checkpoint exists.
func latestRestorableEntries(entries []Entry) int {
	restorable := -1
	chainNext := -1
	for _, e := range entries {
		switch {
		case e.Kind == "full":
			if e.Iteration > restorable {
				restorable = e.Iteration
			}
			chainNext = e.Iteration + 1
		case e.Kind == "delta" && e.Iteration == chainNext:
			restorable = e.Iteration
			chainNext++
		default:
			chainNext = -1 // chain broken until the next full
		}
	}
	return restorable
}

// readCheckpointFile loads one checkpoint file's bytes, mapping absence
// to ErrNotFound with the checkpoint identity in the message.
func readCheckpointFile(fsys faultfs.FS, dir, variable, kind string, iteration int) ([]byte, error) {
	if err := validateIdentity(variable, iteration); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, fileName(variable, kind, iteration))
	if _, err := fsys.Stat(path); err != nil {
		return nil, fmt.Errorf("%w: %s checkpoint %s@%d", ErrNotFound, kind, variable, iteration)
	}
	raw, err := faultfs.ReadFile(fsys, path)
	if err != nil {
		return nil, pathErr("read", path, err)
	}
	return raw, nil
}

// readFullFile loads and parses a full checkpoint.
func readFullFile(fsys faultfs.FS, dir, variable string, iteration int) ([]float64, error) {
	raw, err := readCheckpointFile(fsys, dir, variable, "full", iteration)
	if err != nil {
		return nil, err
	}
	v, it, data, err := UnmarshalFull(raw)
	if err != nil {
		return nil, pathErr("parse", filepath.Join(dir, fileName(variable, "full", iteration)), err)
	}
	if v != variable || it != iteration {
		return nil, fmt.Errorf("%w: file claims %s@%d, expected %s@%d", ErrCorrupt, v, it, variable, iteration)
	}
	return data, nil
}

// readDeltaFile loads and parses a delta checkpoint's encoding,
// sniffing the v1/v2 magic.
func readDeltaFile(fsys faultfs.FS, dir, variable string, iteration int) (*core.Encoded, error) {
	raw, err := readCheckpointFile(fsys, dir, variable, "delta", iteration)
	if err != nil {
		return nil, err
	}
	var v string
	var it int
	var enc *core.Encoded
	if IsDeltaV2(raw) {
		v, it, enc, err = UnmarshalDeltaV2(raw)
	} else {
		v, it, enc, err = UnmarshalDelta(raw)
	}
	if err != nil {
		return nil, pathErr("parse", filepath.Join(dir, fileName(variable, "delta", iteration)), err)
	}
	if v != variable || it != iteration {
		return nil, fmt.Errorf("%w: file claims %s@%d, expected %s@%d", ErrCorrupt, v, it, variable, iteration)
	}
	return enc, nil
}

// restartEntries reconstructs a variable at the requested iteration
// from its sorted chain entries: load the latest full checkpoint at or
// before it, replay every delta in between (§II-D). Missing
// intermediate deltas are an ErrChain.
func restartEntries(fsys faultfs.FS, dir string, rec *obs.Recorder, entries []Entry, variable string, iteration int, ropt RecoverOptions) ([]float64, *PartialDataError, error) {
	if len(entries) == 0 {
		return nil, nil, fmt.Errorf("%w: variable %s", ErrNotFound, variable)
	}
	// Latest full checkpoint at or before the target.
	fullIter := -1
	for _, e := range entries {
		if e.Kind == "full" && e.Iteration <= iteration {
			fullIter = e.Iteration
		}
	}
	if fullIter < 0 {
		return nil, nil, fmt.Errorf("%w: no full checkpoint at or before iteration %d for %s", ErrNotFound, iteration, variable)
	}
	data, err := readFullFile(fsys, dir, variable, fullIter)
	if err != nil {
		return nil, nil, err
	}
	// Replay deltas (fullIter, iteration]. Every present delta in that
	// range must chain from the previous one without gaps.
	var partial *PartialDataError
	expected := fullIter + 1
	for _, e := range entries {
		if e.Kind != "delta" || e.Iteration <= fullIter || e.Iteration > iteration {
			continue
		}
		if e.Iteration != expected {
			return nil, nil, fmt.Errorf("%w: expected delta %d for %s, found %d", ErrChain, expected, variable, e.Iteration)
		}
		data, partial, err = replayDeltaFile(fsys, dir, rec, variable, e.Iteration, data, ropt, partial)
		if err != nil {
			return nil, nil, err
		}
		expected++
	}
	if expected != iteration+1 {
		return nil, nil, fmt.Errorf("%w: chain for %s ends at %d, wanted %d", ErrChain, variable, expected-1, iteration)
	}
	return data, partial, nil
}

// replayDeltaFile applies one delta on top of data. In salvage mode a
// v2 delta with bad chunks contributes its healthy chunks and
// accumulates the lost point ranges into partial; fail-closed mode (and
// any non-chunk-local failure) surfaces the error.
func replayDeltaFile(fsys faultfs.FS, dir string, rec *obs.Recorder, variable string, iteration int, data []float64, ropt RecoverOptions, partial *PartialDataError) ([]float64, *PartialDataError, error) {
	if !ropt.Salvage {
		enc, err := readDeltaFile(fsys, dir, variable, iteration)
		if err != nil {
			return nil, nil, err
		}
		out, err := enc.Decode(data)
		return out, partial, err
	}
	raw, err := readCheckpointFile(fsys, dir, variable, "delta", iteration)
	if err != nil {
		return nil, nil, err
	}
	if !IsDeltaV2(raw) {
		// v1 files have one whole-payload CRC: nothing chunk-local to
		// salvage, so fail-closed even in salvage mode.
		v, it, enc, err := UnmarshalDelta(raw)
		if err != nil {
			return nil, nil, pathErr("parse", filepath.Join(dir, fileName(variable, "delta", iteration)), err)
		}
		if v != variable || it != iteration {
			return nil, nil, fmt.Errorf("%w: file claims %s@%d, expected %s@%d", ErrCorrupt, v, it, variable, iteration)
		}
		out, err := enc.Decode(data)
		return out, partial, err
	}
	d, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return nil, nil, pathErr("parse", filepath.Join(dir, fileName(variable, "delta", iteration)), err)
	}
	out, err := d.DecodeRecover(data, 0, RecoverOptions{Salvage: true, Obs: rec})
	if err != nil {
		var pde *PartialDataError
		if !errors.As(err, &pde) {
			return nil, nil, err
		}
		partial = mergePartial(partial, pde, variable)
	}
	return out, partial, nil
}
