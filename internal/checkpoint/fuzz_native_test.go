package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"numarck/internal/core"
)

func bytesReaderAt(raw []byte) *bytes.Reader { return bytes.NewReader(raw) }

// seedDelta builds one small valid delta file for the fuzz corpora.
func seedDelta(tb testing.TB) []byte {
	tb.Helper()
	series := genSeries(256, 2, 97)
	enc, err := core.Encode(series[0], series[1], opts())
	if err != nil {
		tb.Fatal(err)
	}
	raw, err := MarshalDelta("v", 1, enc)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzUnmarshalDelta is the native-fuzzing counterpart of the random
// corruption tests above: arbitrary bytes must either parse into an
// encoding that Decode accepts, or fail with an error — never panic.
func FuzzUnmarshalDelta(f *testing.F) {
	f.Add(seedDelta(f))
	f.Add([]byte{})
	f.Add([]byte("NMKD"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		variable, _, enc, err := UnmarshalDelta(raw)
		if err != nil {
			return
		}
		if variable == "" {
			t.Error("accepted delta with empty variable name")
		}
		// A header the parser accepted must also be decodable without
		// panicking; decode errors are fine.
		prev := make([]float64, len(enc.Indices))
		_, _ = enc.Decode(prev)
	})
}

// seedDeltaV2 builds a small valid chunked delta file for the fuzz
// corpus, with a chunk size that does not divide n.
func seedDeltaV2(tb testing.TB) []byte {
	tb.Helper()
	series := genSeries(256, 2, 97)
	enc, err := core.Encode(series[0], series[1], opts())
	if err != nil {
		tb.Fatal(err)
	}
	raw, err := MarshalDeltaV2("v", 1, enc, 100)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzUnmarshalDeltaV2 throws arbitrary bytes at the chunked-format
// parser: truncated chunk headers, lying directory offsets, and CRC
// mismatches must all surface as errors, never as panics or silent
// misreads.
func FuzzUnmarshalDeltaV2(f *testing.F) {
	f.Add(seedDeltaV2(f))
	f.Add(seedDelta(f)) // v1 bytes must be cleanly rejected
	f.Add([]byte{})
	f.Add([]byte("NMRKD2"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		variable, _, enc, err := UnmarshalDeltaV2(raw)
		if err != nil {
			return
		}
		if variable == "" {
			t.Error("accepted delta with empty variable name")
		}
		prev := make([]float64, enc.N)
		if _, err := enc.Decode(prev); err != nil {
			t.Errorf("accepted file does not decode: %v", err)
		}
		// The random-access reader must agree with the assembled view.
		d, err := OpenDeltaV2(bytesReaderAt(raw), int64(len(raw)))
		if err != nil {
			t.Fatalf("reopen of accepted file failed: %v", err)
		}
		if _, err := d.Decode(prev, 2); err != nil {
			t.Errorf("parallel decode of accepted file failed: %v", err)
		}
	})
}

// FuzzUnmarshalFull covers the full-checkpoint parser the same way.
func FuzzUnmarshalFull(f *testing.F) {
	series := genSeries(64, 1, 7)
	raw, err := MarshalFull("v", 0, series[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		_, _, data, err := UnmarshalFull(raw)
		if err == nil && data == nil {
			t.Error("nil data with nil error")
		}
	})
}

// seedChainIndex builds a small valid CHAININDEX image for the fuzz
// corpus.
func seedChainIndex(tb testing.TB) []byte {
	tb.Helper()
	raw, err := marshalChainIndex(&ChainIndex{
		Seq:            3,
		JournalLen:     512,
		JournalTailCRC: 0xabad1dea,
		Entries: []IndexEntry{
			{Entry: Entry{Variable: "dens", Kind: "full", Iteration: 0}, Len: 4096, CRC: 1},
			{Entry: Entry{Variable: "dens", Kind: "delta", Iteration: 1}, Len: 512, CRC: 2},
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzParseChainIndex throws arbitrary bytes at the chain-index parser:
// framing lies, CRC damage, and hostile record fields must all surface
// as errors, never as panics — and anything the parser does accept must
// survive a marshal/parse round trip, because readers rebuild their
// entire view of the store from it.
func FuzzParseChainIndex(f *testing.F) {
	f.Add(seedChainIndex(f))
	f.Add([]byte{})
	f.Add([]byte("NMRKX1"))
	f.Add(marshalLock(lockInfo{PID: 1, Nonce: 2})) // cousin format must be rejected
	// A count whose 32-bit size math wraps to exactly len(raw); must be
	// rejected by 64-bit framing, not sliced out of range.
	f.Add(func() []byte {
		b := seedChainIndex(f)
		binary.LittleEndian.PutUint32(b[28:], binary.LittleEndian.Uint32(b[28:])+1<<29)
		return b
	}())
	f.Fuzz(func(t *testing.T, raw []byte) {
		ix, err := ParseChainIndex(raw)
		if err != nil {
			return
		}
		if len(raw) != indexHeaderSize+indexRecordSize*len(ix.Entries)+4 {
			t.Fatalf("accepted %d bytes as %d entries", len(raw), len(ix.Entries))
		}
		for i, e := range ix.Entries {
			if ValidateVariable(e.Variable) != nil || e.Iteration < 0 || e.Len < 0 {
				t.Fatalf("accepted hostile record %d: %+v", i, e)
			}
			if e.Kind != "full" && e.Kind != "delta" {
				t.Fatalf("accepted unknown kind %q", e.Kind)
			}
		}
		out, err := marshalChainIndex(ix)
		if err != nil {
			t.Fatalf("accepted index does not re-marshal: %v", err)
		}
		ix2, err := ParseChainIndex(out)
		if err != nil {
			t.Fatalf("re-marshaled index does not parse: %v", err)
		}
		if len(ix2.Entries) != len(ix.Entries) || ix2.Seq != ix.Seq {
			t.Fatal("round trip changed the index")
		}
	})
}

// FuzzRecoverDeltaV2 exercises the degraded-mode decode against
// mutated v2 bytes: DecodeRecover must never panic, every point it
// reports lost must hold prev's value exactly (data from a failed-CRC
// chunk must never leak into the output), and every point it does not
// report lost must be a real decode.
func FuzzRecoverDeltaV2(f *testing.F) {
	f.Add(seedDeltaV2(f))
	f.Add([]byte{})
	f.Add([]byte("NMRKD2"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		d, err := OpenDeltaV2(bytesReaderAt(raw), int64(len(raw)))
		if err != nil {
			return // structurally rejected before any chunk work
		}
		meta := d.Meta()
		if meta.N > 1<<16 {
			return // bound the allocation the fuzzer can request
		}
		prev := make([]float64, meta.N)
		for i := range prev {
			prev[i] = 100 + float64(i)
		}
		out, err := d.DecodeRecover(prev, 2, RecoverOptions{Salvage: true})
		if err == nil {
			return // fully healthy mutant
		}
		var pde *PartialDataError
		if !errors.As(err, &pde) {
			return // non-chunk-local failure: fail-closed, nothing to check
		}
		if out == nil {
			t.Fatal("PartialDataError without salvaged data")
		}
		inLost := func(i int) bool {
			for _, r := range pde.Lost {
				if i >= r.Lo && i < r.Hi {
					return true
				}
			}
			return false
		}
		for i := range out {
			if inLost(i) && math.Float64bits(out[i]) != math.Float64bits(prev[i]) {
				t.Fatalf("lost point %d holds data from a failed chunk", i)
			}
		}
		for _, r := range pde.Lost {
			if r.Lo < 0 || r.Hi > meta.N || r.Lo >= r.Hi {
				t.Fatalf("lost range %v out of bounds for %d points", r, meta.N)
			}
		}
	})
}
