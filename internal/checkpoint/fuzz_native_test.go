package checkpoint

import (
	"testing"

	"numarck/internal/core"
)

// seedDelta builds one small valid delta file for the fuzz corpora.
func seedDelta(tb testing.TB) []byte {
	tb.Helper()
	series := genSeries(256, 2, 97)
	enc, err := core.Encode(series[0], series[1], opts())
	if err != nil {
		tb.Fatal(err)
	}
	raw, err := MarshalDelta("v", 1, enc)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzUnmarshalDelta is the native-fuzzing counterpart of the random
// corruption tests above: arbitrary bytes must either parse into an
// encoding that Decode accepts, or fail with an error — never panic.
func FuzzUnmarshalDelta(f *testing.F) {
	f.Add(seedDelta(f))
	f.Add([]byte{})
	f.Add([]byte("NMKD"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		variable, _, enc, err := UnmarshalDelta(raw)
		if err != nil {
			return
		}
		if variable == "" {
			t.Error("accepted delta with empty variable name")
		}
		// A header the parser accepted must also be decodable without
		// panicking; decode errors are fine.
		prev := make([]float64, len(enc.Indices))
		_, _ = enc.Decode(prev)
	})
}

// FuzzUnmarshalFull covers the full-checkpoint parser the same way.
func FuzzUnmarshalFull(f *testing.F) {
	series := genSeries(64, 1, 7)
	raw, err := MarshalFull("v", 0, series[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		_, _, data, err := UnmarshalFull(raw)
		if err == nil && data == nil {
			t.Error("nil data with nil error")
		}
	})
}
