package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"numarck/internal/core"
)

// TestValidateVariable pins the naming rules: checkpoint file names are
// built from the variable, so anything that could traverse out of the
// store directory or collide with the name grammar must be rejected.
func TestValidateVariable(t *testing.T) {
	for _, ok := range []string{"dens", "velx_2", "T.v2", "a-b", "_x", "0momentum",
		strings.Repeat("v", MaxVariableLen)} {
		if err := ValidateVariable(ok); err != nil {
			t.Errorf("ValidateVariable(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{
		"", "../dens", "a/b", "/abs", "..", ".hidden", "-flag",
		"a b", "a\x00b", "a\nb", strings.Repeat("v", MaxVariableLen+1),
	} {
		if err := ValidateVariable(bad); !errors.Is(err, ErrBadVariable) {
			t.Errorf("ValidateVariable(%q) = %v, want ErrBadVariable", bad, err)
		}
	}
}

// TestWriteRejectsHostileVariable is the regression test for the
// path-escape bug class: a variable like "../../tmp/evil" must be
// refused by every write entry point with the typed error — before any
// file is created — and must leave no debris outside or inside the
// store.
func TestWriteRejectsHostileVariable(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "ck")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	series := genSeries(200, 2, 13)
	enc, err := core.Encode(series[0], series[1], opts())
	if err != nil {
		t.Fatal(err)
	}

	for _, hostile := range []string{"../escape", "sub/dir", "/abs", "a\x00b", ""} {
		if err := st.WriteFull(hostile, 0, series[0]); !errors.Is(err, ErrBadVariable) {
			t.Errorf("WriteFull(%q) = %v, want ErrBadVariable", hostile, err)
		}
		if _, err := st.WriteDelta(hostile, 1, series[0], series[1]); !errors.Is(err, ErrBadVariable) {
			t.Errorf("WriteDelta(%q) = %v, want ErrBadVariable", hostile, err)
		}
		if err := st.WriteEncodedDelta(hostile, 1, enc); !errors.Is(err, ErrBadVariable) {
			t.Errorf("WriteEncodedDelta(%q) = %v, want ErrBadVariable", hostile, err)
		}
	}
	// A bad iteration is the same class of refusal.
	if err := st.WriteFull("dens", -1, series[0]); !errors.Is(err, ErrBadVariable) {
		t.Errorf("WriteFull(iteration -1) = %v, want ErrBadVariable", err)
	}

	// Nothing escaped the store and nothing was journaled.
	entries, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "ck" {
		t.Fatalf("store parent polluted: %v", entries)
	}
	vars, err := st.Variables()
	if err != nil || len(vars) != 0 {
		t.Fatalf("Variables = %v, %v after refused writes", vars, err)
	}
}

// TestRecoveryQuarantinesHostileName plants a parseable checkpoint file
// whose variable violates the naming rules (written by a buggy or
// malicious producer) and checks the recovery scan quarantines it
// rather than adopting a name the index cannot represent.
func TestRecoveryQuarantinesHostileName(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	seedStore(t, dir, 1)
	// A name that parses (variable.kind.iteration.nmk) but whose
	// variable starts with '.' — invalid, and impossible to journal into
	// the fixed-width index.
	bad := ".evil.full.000000.nmk"
	raw, err := MarshalFull(".evil", 0, genSeries(50, 1, 2)[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, bad), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open with hostile file: %v", err)
	}
	defer st.Close()
	rep := st.Recovery()
	found := false
	for _, q := range rep.Quarantined {
		if q == bad {
			found = true
		}
	}
	if !found {
		t.Fatalf("hostile file not quarantined: %s", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", bad)); err != nil {
		t.Fatalf("hostile file not in quarantine/: %v", err)
	}
	// The legitimate chain is untouched.
	if _, err := st.Restart("dens", 2); err != nil {
		t.Fatalf("restart after quarantine: %v", err)
	}
}
