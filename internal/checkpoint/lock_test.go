package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"numarck/internal/faultfs"
	"numarck/internal/obs"
)

// TestLockLifecycle walks one acquisition through its whole life: the
// LOCK file appears with the owner's identity, a release removes it,
// and a second acquisition then succeeds without a takeover.
func TestLockLifecycle(t *testing.T) {
	dir := t.TempDir()
	fsys := faultfs.OS()
	l, err := acquireLock(fsys, dir, LockOwner{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, lockName))
	if err != nil {
		t.Fatalf("no LOCK file after acquire: %v", err)
	}
	li, err := parseLock(raw)
	if err != nil {
		t.Fatalf("fresh lock does not parse: %v", err)
	}
	if li.PID != os.Getpid() {
		t.Errorf("lock PID = %d, want %d", li.PID, os.Getpid())
	}
	if li.Nonce != l.nonce {
		t.Errorf("lock nonce %016x does not match handle nonce %016x", li.Nonce, l.nonce)
	}
	if err := l.release(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, lockName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("LOCK survives release: %v", err)
	}
	l2, err := acquireLock(fsys, dir, LockOwner{}, nil)
	if err != nil {
		t.Fatalf("re-acquire after release: %v", err)
	}
	if err := l2.release(); err != nil {
		t.Fatal(err)
	}
}

// TestLockHeldFailsFast acquires as a live owner and checks a second
// acquisition fails with the typed holder report instead of waiting,
// retrying, or stealing.
func TestLockHeldFailsFast(t *testing.T) {
	dir := t.TempDir()
	fsys := faultfs.OS()
	l, err := acquireLock(fsys, dir, LockOwner{PID: 4242, Alive: func(int) bool { return true }}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.release()
	_, err = acquireLock(fsys, dir, LockOwner{Alive: func(int) bool { return true }}, nil)
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("second acquire = %v, want ErrLocked", err)
	}
	var lh *LockHeldError
	if !errors.As(err, &lh) {
		t.Fatalf("second acquire = %T, want *LockHeldError", err)
	}
	if lh.PID != 4242 || lh.Dir != dir {
		t.Errorf("holder report = pid %d dir %s, want pid 4242 dir %s", lh.PID, lh.Dir, dir)
	}
}

// TestLockStaleTakeover plants a lock whose recorded owner is provably
// dead and checks the next acquisition breaks it, counts the takeover,
// and installs its own identity.
func TestLockStaleTakeover(t *testing.T) {
	dir := t.TempDir()
	fsys := faultfs.OS()
	l, err := acquireLock(fsys, dir, LockOwner{PID: 1 << 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = l // simulate a crash: the holder vanishes without releasing

	rec := obs.NewRecorder()
	l2, err := acquireLock(fsys, dir, LockOwner{Alive: func(pid int) bool { return pid != 1<<30 }}, rec)
	if err != nil {
		t.Fatalf("takeover of stale lock: %v", err)
	}
	defer l2.release()
	if got := rec.Snapshot().Counters["lock_takeovers"]; got != 1 {
		t.Errorf("lock_takeovers = %d, want 1", got)
	}
	raw, err := os.ReadFile(filepath.Join(dir, lockName))
	if err != nil {
		t.Fatal(err)
	}
	li, err := parseLock(raw)
	if err != nil {
		t.Fatal(err)
	}
	if li.PID != os.Getpid() {
		t.Errorf("post-takeover lock PID = %d, want %d", li.PID, os.Getpid())
	}
}

// TestLockTornIsStale plants unparsable LOCK bytes — the disk image of
// a crash mid-acquire — and checks acquisition treats them as stale and
// claims the store.
func TestLockTornIsStale(t *testing.T) {
	for name, raw := range map[string][]byte{
		"empty":     {},
		"truncated": marshalLock(lockInfo{PID: os.Getpid(), Nonce: 1})[:10],
		"garbage":   []byte("NMRKL1 but then nonsense padding"),
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, lockName), raw, 0o644); err != nil {
				t.Fatal(err)
			}
			// The probe would keep a live owner alive — but a torn lock
			// never reaches it.
			l, err := acquireLock(faultfs.OS(), dir, LockOwner{Alive: func(int) bool { return true }}, nil)
			if err != nil {
				t.Fatalf("acquire over torn lock: %v", err)
			}
			if err := l.release(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestParseLockRejects checks every framing violation of the lock file
// is an explicit parse error, never a misread.
func TestParseLockRejects(t *testing.T) {
	good := marshalLock(lockInfo{PID: 7, Nonce: 9, Acquired: 11})
	if _, err := parseLock(good); err != nil {
		t.Fatalf("valid lock rejected: %v", err)
	}
	cases := map[string][]byte{
		"short":       good[:lockFileSize-1],
		"long":        append(append([]byte{}, good...), 0),
		"bad magic":   append([]byte("XXRKL1"), good[6:]...),
		"bad version": func() []byte { b := append([]byte{}, good...); b[6] = 99; return b }(),
		"bad crc":     func() []byte { b := append([]byte{}, good...); b[20] ^= 1; return b }(),
	}
	for name, raw := range cases {
		if _, err := parseLock(raw); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: parseLock = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestLockReleaseOnlyOwn checks release is a no-op when the file on
// disk carries someone else's claim: removing it would let two writers
// in.
func TestLockReleaseOnlyOwn(t *testing.T) {
	dir := t.TempDir()
	fsys := faultfs.OS()
	l, err := acquireLock(fsys, dir, LockOwner{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Another writer takes over behind our back (our process "hung").
	other := marshalLock(lockInfo{PID: 555, Nonce: l.nonce + 1})
	if err := os.WriteFile(l.path, other, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.release(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(l.path)
	if err != nil {
		t.Fatalf("release removed a lock it does not own: %v", err)
	}
	if li, err := parseLock(raw); err != nil || li.PID != 555 {
		t.Fatalf("foreign lock disturbed: %v %+v", err, li)
	}
}

// lockGuardFS fails the test if acquisition ever creates the LOCK name
// directly: the name must only ever appear via Link, already complete,
// so no racer can observe an empty or half-written lock.
type lockGuardFS struct {
	faultfs.FS
	t    *testing.T
	lock string
}

func (g *lockGuardFS) Create(name string) (faultfs.File, error) {
	if name == g.lock {
		g.t.Errorf("Create(%s): LOCK must only be published via Link", name)
	}
	return g.FS.Create(name)
}

func (g *lockGuardFS) CreateExclusive(name string) (faultfs.File, error) {
	if name == g.lock {
		g.t.Errorf("CreateExclusive(%s): LOCK must only be published via Link", name)
	}
	return g.FS.CreateExclusive(name)
}

func (g *lockGuardFS) Append(name string) (faultfs.File, error) {
	if name == g.lock {
		g.t.Errorf("Append(%s): LOCK must only be published via Link", name)
	}
	return g.FS.Append(name)
}

// TestLockPublicationAtomic checks the two halves of atomic
// publication: a successful acquisition never creates the LOCK name
// directly (only Link makes it appear, complete), and an acquisition
// whose payload write is torn leaves no LOCK at all — a concurrent
// opener can never read a 0-byte or half-written lock and break a live
// acquisition as "stale".
func TestLockPublicationAtomic(t *testing.T) {
	dir := t.TempDir()
	guard := &lockGuardFS{FS: faultfs.OS(), t: t, lock: filepath.Join(dir, lockName)}
	l, err := acquireLock(guard, dir, LockOwner{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.release(); err != nil {
		t.Fatal(err)
	}

	// Tear the staging write: acquisition must fail without ever having
	// made any LOCK — empty, torn, or otherwise — observable.
	inj := faultfs.NewInjector(faultfs.OS(), 7)
	inj.AddFault(faultfs.Fault{Op: faultfs.OpWrite, Path: "claim", Nth: 1, Mode: faultfs.ModeTorn, TornBytes: 5})
	if _, err := acquireLock(inj, dir, LockOwner{}, nil); err == nil {
		t.Fatal("acquisition with torn staging write succeeded")
	}
	if _, err := os.Stat(filepath.Join(dir, lockName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn staging write left a LOCK behind: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("failed acquisition left debris: %v", entries)
	}
}

// renameHookFS runs hook once, just before the first Rename whose
// oldpath base matches — the instant a takeover is about to capture
// the LOCK name.
type renameHookFS struct {
	faultfs.FS
	match string
	hook  func()
}

func (h *renameHookFS) Rename(oldpath, newpath string) error {
	if h.hook != nil && filepath.Base(oldpath) == h.match {
		hook := h.hook
		h.hook = nil
		hook()
	}
	return h.FS.Rename(oldpath, newpath)
}

// TestLockBreakVerifiesProbedBytes drives the takeover race that used
// to admit two writers: this acquirer probes a stale lock, but before
// it can break it a racer breaks it first and publishes its own fresh
// claim. The break must capture-and-verify — detect that what it
// grabbed is not the stale lock it examined, restore the racer's claim
// bit-identically, and fail fast on the now-live holder — never
// destroy the fresh lock and claim the store alongside its owner.
func TestLockBreakVerifiesProbedBytes(t *testing.T) {
	dir := t.TempDir()
	lockPath := filepath.Join(dir, lockName)
	stale := marshalLock(lockInfo{PID: 111, Nonce: 0xdead})
	if err := os.WriteFile(lockPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := marshalLock(lockInfo{PID: 222, Nonce: 0xf4e5})
	hooked := &renameHookFS{FS: faultfs.OS(), match: lockName, hook: func() {
		// The racer wins the takeover: the stale lock is gone and its
		// fresh claim sits at LOCK before our rename runs.
		race := lockPath + ".race"
		if err := os.WriteFile(race, fresh, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(race, lockPath); err != nil {
			t.Fatal(err)
		}
	}}

	rec := obs.NewRecorder()
	owner := LockOwner{PID: 333, Alive: func(pid int) bool { return pid == 222 }}
	_, err := acquireLock(hooked, dir, owner, rec)
	var lh *LockHeldError
	if !errors.As(err, &lh) || lh.PID != 222 {
		t.Fatalf("acquire over raced takeover = %v, want LockHeldError{PID: 222}", err)
	}
	if got := rec.Snapshot().Counters["lock_takeovers"]; got != 0 {
		t.Errorf("lock_takeovers = %d after a lost race, want 0", got)
	}
	raw, err := os.ReadFile(lockPath)
	if err != nil {
		t.Fatalf("racer's fresh lock was not restored: %v", err)
	}
	if li, err := parseLock(raw); err != nil || li.PID != 222 || li.Nonce != 0xf4e5 {
		t.Fatalf("racer's lock disturbed: %v %+v", err, li)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("lost takeover left debris: %v", entries)
	}
}

// TestLockUnparsableGetsGrace plants unparsable LOCK bytes that turn
// into a live writer's claim during the grace window — the disk image
// of probing a foreign writer mid-acquire. Acquisition must observe
// the change, back off, and fail fast on the live holder instead of
// breaking a lock whose bytes had not settled.
func TestLockUnparsableGetsGrace(t *testing.T) {
	dir := t.TempDir()
	lockPath := filepath.Join(dir, lockName)
	if err := os.WriteFile(lockPath, []byte("mid-acquire"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := marshalLock(lockInfo{PID: 222, Nonce: 77})
	reads := 0
	hooked := &hookFS{FS: faultfs.OS(), match: lockName}
	hooked.hook = func() {
		reads++
		if reads == 2 {
			// The foreign writer finishes its acquisition between our
			// probe and the grace re-read.
			if err := os.WriteFile(lockPath, fresh, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	owner := LockOwner{PID: 333, Alive: func(pid int) bool { return pid == 222 }}
	_, err := acquireLock(hooked, dir, owner, nil)
	var lh *LockHeldError
	if !errors.As(err, &lh) || lh.PID != 222 {
		t.Fatalf("acquire over settling lock = %v, want LockHeldError{PID: 222}", err)
	}
	if raw, rerr := os.ReadFile(lockPath); rerr != nil || !bytes.Equal(raw, fresh) {
		t.Fatalf("live holder's lock disturbed: %v", rerr)
	}
}

// TestLockNonceDistinct checks nonces do not repeat across rapid
// acquisitions — the property release()'s ownership check depends on,
// which a coarse-clock-derived nonce would violate for same-process
// release/reacquire cycles within one tick.
func TestLockNonceDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		n := lockNonce()
		if seen[n] {
			t.Fatalf("nonce %016x repeated within one process", n)
		}
		seen[n] = true
	}
}

// TestStoreCloseReleasesLock checks the Store-level contract: Close
// frees the store for the next writer, and a double Close stays safe.
func TestStoreCloseReleasesLock(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := st.WriteFull("dens", 0, genSeries(64, 1, 3)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after Close = %v, want ErrClosed", err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after Close: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}
