package checkpoint

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"numarck/internal/faultfs"
)

// deadOwner is the lock identity crash tests give stores they are
// about to kill: the recorded PID is far beyond any real pid_max, so
// the LOCK file a simulated crash leaves behind reads as stale and a
// plain reopen takes it over — exactly what a real reboot would see.
var deadOwner = LockOwner{PID: 1 << 30, Alive: func(int) bool { return false }}

// copyDir clones the flat store directory (and quarantine/ if present)
// so each crash-matrix iteration starts from an identical pre-state.
// The LOCK file is deliberately not cloned: a pre-state is the disk
// image of a store nobody holds.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if de.IsDir() {
			copyDir(t, filepath.Join(src, de.Name()), filepath.Join(dst, de.Name()))
			continue
		}
		if de.Name() == lockName {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// seedStore builds the crash-matrix pre-state: full@0, delta@1, delta@2
// for one variable, plus the iteration data for later writes.
func seedStore(t *testing.T, dir string, format int) [][]float64 {
	t.Helper()
	series := genSeries(3000, 5, 99)
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetDeltaFormat(format, 512); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteFull("dens", 0, series[0]); err != nil {
		t.Fatal(err)
	}
	prev := series[0]
	for i := 1; i <= 2; i++ {
		if _, err := st.WriteDelta("dens", i, prev, series[i]); err != nil {
			t.Fatal(err)
		}
		// Replay so the next delta encodes against the decoded values,
		// like the Writer does.
		enc, err := st.ReadDelta("dens", i)
		if err != nil {
			t.Fatal(err)
		}
		if prev, err = enc.Decode(prev); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return series
}

// bitsEqual compares two float slices exactly.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestCrashMatrixWrite is the systematic crash-consistency test: it
// counts the mutating filesystem operations one checkpoint write
// performs, then for every k kills the simulated process at operation k
// and reopens the store on the clean filesystem. The invariant at every
// crash point: the store opens, its recovery scan absorbs all damage,
// the chain verifies clean, the pre-existing data restarts
// byte-identically, and the interrupted checkpoint is either fully
// present or fully absent — never torn.
func TestCrashMatrixWrite(t *testing.T) {
	for _, format := range []int{1, 2} {
		base := t.TempDir()
		series := seedStore(t, base, format)

		// Baseline: the pre-state's restart values, and the op count of
		// the next write measured with a passthrough injector.
		stBase, err := Open(base)
		if err != nil {
			t.Fatal(err)
		}
		want2, err := stBase.Restart("dens", 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := stBase.Close(); err != nil {
			t.Fatal(err)
		}
		probeDir := t.TempDir()
		copyDir(t, base, probeDir)
		probe := faultfs.NewInjector(faultfs.OS(), 1)
		stProbe, err := OpenFS(probeDir, probe, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := stProbe.SetDeltaFormat(format, 512); err != nil {
			t.Fatal(err)
		}
		if _, err := stProbe.WriteDelta("dens", 3, want2, series[3]); err != nil {
			t.Fatal(err)
		}
		want3, err := stProbe.Restart("dens", 3)
		if err != nil {
			t.Fatal(err)
		}
		m := probe.MutatingOps()
		if m < 5 {
			t.Fatalf("format %d: write path performed only %d mutating ops", format, m)
		}

		for k := 0; k < m; k++ {
			dir := t.TempDir()
			copyDir(t, base, dir)
			inj := faultfs.NewInjector(faultfs.OS(), int64(1000+k))
			// The crashing store records a dead owner so the post-crash
			// reopen sees a stale lock and takes it over, like a reboot.
			st, err := OpenFSOwner(dir, inj, nil, deadOwner)
			if err != nil {
				t.Fatalf("format %d k=%d: open pre-crash: %v", format, k, err)
			}
			if err := st.SetDeltaFormat(format, 512); err != nil {
				t.Fatal(err)
			}
			inj.SetCrashAt(k)
			if _, err := st.WriteDelta("dens", 3, want2, series[3]); !errors.Is(err, faultfs.ErrCrashed) {
				t.Fatalf("format %d k=%d: write survived the crash point: %v", format, k, err)
			}

			// "Reboot": reopen on the clean filesystem.
			st2, err := Open(dir)
			if err != nil {
				t.Fatalf("format %d k=%d: reopen after crash: %v", format, k, err)
			}
			issues, err := st2.Verify()
			if err != nil {
				t.Fatalf("format %d k=%d: verify: %v", format, k, err)
			}
			if len(issues) > 0 {
				t.Fatalf("format %d k=%d: chain not clean after recovery: %v (report %s)",
					format, k, issues, st2.Recovery())
			}
			got2, err := st2.Restart("dens", 2)
			if err != nil {
				t.Fatalf("format %d k=%d: pre-existing chain broken: %v", format, k, err)
			}
			if !bitsEqual(got2, want2) {
				t.Fatalf("format %d k=%d: pre-existing data changed", format, k)
			}
			// Complete-or-absent for the interrupted checkpoint.
			entries, err := st2.List("dens")
			if err != nil {
				t.Fatal(err)
			}
			has3 := false
			for _, e := range entries {
				if e.Kind == "delta" && e.Iteration == 3 {
					has3 = true
				}
			}
			if has3 {
				got3, err := st2.Restart("dens", 3)
				if err != nil {
					t.Fatalf("format %d k=%d: delta@3 present but unreadable: %v", format, k, err)
				}
				if !bitsEqual(got3, want3) {
					t.Fatalf("format %d k=%d: delta@3 present but wrong", format, k)
				}
			}
		}
	}
}

// TestCrashMatrixCreate kills store creation at every mutating op and
// checks a reopen attempt never sees a half-initialized store: either
// ErrNotFound (no manifest committed) or a fully working store.
func TestCrashMatrixCreate(t *testing.T) {
	probe := faultfs.NewInjector(faultfs.OS(), 1)
	if _, err := CreateFS(t.TempDir(), opts(), probe); err != nil {
		t.Fatal(err)
	}
	m := probe.MutatingOps()
	for k := 0; k < m; k++ {
		dir := t.TempDir()
		inj := faultfs.NewInjector(faultfs.OS(), int64(k))
		inj.SetCrashAt(k)
		if _, err := CreateFSOwner(dir, opts(), inj, deadOwner); !errors.Is(err, faultfs.ErrCrashed) {
			t.Fatalf("k=%d: create survived crash: %v", k, err)
		}
		st, err := Open(dir)
		switch {
		case errors.Is(err, ErrNotFound):
			// Manifest never committed: the clean pre-state.
		case err == nil:
			// Manifest committed: the store must be fully usable.
			if err := st.WriteFull("dens", 0, genSeries(100, 1, 1)[0]); err != nil {
				t.Fatalf("k=%d: adopted store cannot write: %v", k, err)
			}
			if _, err := st.Restart("dens", 0); err != nil {
				t.Fatalf("k=%d: adopted store cannot restart: %v", k, err)
			}
		default:
			t.Fatalf("k=%d: reopen after create crash: %v", k, err)
		}
	}
}

// TestCrashMatrixOpen kills a writer Open at every mutating operation
// it performs — breaking the previous holder's stale lock, claiming the
// new one, and republishing a damaged CHAININDEX — and checks a
// subsequent reopen always recovers: takes the lock over, rebuilds the
// index, and serves the seeded chain byte-identically.
func TestCrashMatrixOpen(t *testing.T) {
	base := t.TempDir()
	seedStore(t, base, 2)
	// The pre-state a reboot might find: a stale LOCK from the dead
	// previous writer, and an index torn by the crash that killed it.
	if err := os.WriteFile(filepath.Join(base, lockName),
		marshalLock(lockInfo{PID: 1 << 30, Nonce: 42}), 0o644); err != nil {
		t.Fatal(err)
	}
	ixPath := filepath.Join(base, indexName)
	raw, err := os.ReadFile(ixPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ixPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	stWant, err := OpenFSOwner(base, faultfs.OS(), nil, deadOwner)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := stWant.Restart("dens", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := stWant.Close(); err != nil {
		t.Fatal(err)
	}
	// Rebuild the damaged pre-state (the probe store above repaired it).
	preDir := t.TempDir()
	copyDir(t, base, preDir)
	plant := func(dir string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, lockName),
			marshalLock(lockInfo{PID: 1 << 30, Nonce: 42}), 0o644); err != nil {
			t.Fatal(err)
		}
		ix, err := os.ReadFile(filepath.Join(dir, indexName))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, indexName), ix[:len(ix)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	plant(preDir)

	probe := faultfs.NewInjector(faultfs.OS(), 1)
	probeDir := t.TempDir()
	copyDir(t, preDir, probeDir)
	plant(probeDir)
	stProbe, err := OpenFSOwner(probeDir, probe, nil, deadOwner)
	if err != nil {
		t.Fatal(err)
	}
	m := probe.MutatingOps() // before Close: its lock release is not part of Open
	if err := stProbe.Close(); err != nil {
		t.Fatal(err)
	}
	if m < 5 {
		t.Fatalf("open over stale lock + torn index performed only %d mutating ops", m)
	}

	for k := 0; k < m; k++ {
		dir := t.TempDir()
		copyDir(t, preDir, dir)
		plant(dir)
		inj := faultfs.NewInjector(faultfs.OS(), int64(2000+k))
		inj.SetCrashAt(k)
		if _, err := OpenFSOwner(dir, inj, nil, deadOwner); !errors.Is(err, faultfs.ErrCrashed) {
			t.Fatalf("k=%d: open survived the crash point: %v", k, err)
		}
		// "Reboot": a plain reopen must take over whatever lock state the
		// crash left (absent, torn, or complete-but-dead) and serve the
		// seeded chain exactly.
		st, err := Open(dir)
		if err != nil {
			t.Fatalf("k=%d: reopen after crashed open: %v", k, err)
		}
		issues, err := st.Verify()
		if err != nil {
			t.Fatalf("k=%d: verify: %v", k, err)
		}
		if len(issues) > 0 {
			t.Fatalf("k=%d: store not clean after recovery: %v", k, issues)
		}
		if h := st.IndexHealth(); !h.Present || !h.Fresh {
			t.Fatalf("k=%d: index not restored: %s", k, h)
		}
		got2, err := st.Restart("dens", 2)
		if err != nil {
			t.Fatalf("k=%d: restart: %v", k, err)
		}
		if !bitsEqual(got2, want2) {
			t.Fatalf("k=%d: seeded data changed across the crash", k)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryScanTornFile plants a truncated (torn) checkpoint file
// with no journal record — the signature of a torn rename-less write
// from a legacy store — and checks Open quarantines it instead of
// failing, leaving the rest of the chain restorable.
func TestRecoveryScanTornFile(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 2)
	// Truncate delta@2 behind the journal's back and corrupt its record
	// by rewriting the file shorter.
	path := filepath.Join(dir, fileName("dens", "delta", 2))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn file: %v", err)
	}
	rep := st.Recovery()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != fileName("dens", "delta", 2) {
		t.Fatalf("quarantined = %v, want the torn delta", rep.Quarantined)
	}
	if rep.Clean() {
		t.Fatal("report should not be clean")
	}
	q, err := st.Quarantined()
	if err != nil || len(q) != 1 {
		t.Fatalf("Quarantined() = %v, %v", q, err)
	}
	// The chain up to the last good file still restarts.
	if _, err := st.Restart("dens", 1); err != nil {
		t.Fatalf("restart pre-torn iteration: %v", err)
	}
	// And the torn iteration is now an honest chain error, not a parse
	// explosion.
	if _, err := st.Restart("dens", 2); !errors.Is(err, ErrChain) && !errors.Is(err, ErrNotFound) {
		t.Fatalf("restart at torn iteration = %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A second open is clean: the damage was already absorbed.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Recovery().Clean() {
		t.Fatalf("second open not clean: %s", st2.Recovery())
	}
}

// TestRecoveryScanAdoptsLegacyStore deletes the MANIFEST from a healthy
// store — the layout of stores written before the journal existed — and
// checks Open adopts every file and rebuilds the journal.
func TestRecoveryScanAdoptsLegacyStore(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 1)
	if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.Recovery().Adopted); got != 3 {
		t.Fatalf("adopted %d files, want 3 (%s)", got, st.Recovery())
	}
	if _, err := st.Restart("dens", 2); err != nil {
		t.Fatalf("legacy store restart: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Recovery().Clean() {
		t.Fatalf("journal rebuild did not stick: %s", st2.Recovery())
	}
}
