package checkpoint

import (
	"bytes"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"numarck/internal/faultfs"
	"numarck/internal/obs"
)

// The on-disk writer lock. A writer (Create or a read-write Open)
// claims the store by publishing LOCK through the faultfs seam, so
// exactly one process-level writer exists per store directory; readers
// (OpenReadOnly) never touch it. The file records the owner's PID and
// a random per-acquisition nonce so a second writer can report who
// holds the store and a takeover can verify the lock it is breaking is
// the one it examined.
//
// Publication is atomic: the complete payload is staged at a scratch
// name, fsynced, and hard-linked to LOCK, so any observable LOCK is
// the full 32 bytes — a racer can never read an empty or half-written
// lock and mistake a live acquisition for a stale one.
//
// Byte layout (32 bytes, all integers little-endian; see FORMAT.md):
//
//	magic "NMRKL1" | version u16 | pid u32 | nonce u64
//	| acquired unix-nanos i64 | CRC32-IEEE of bytes [0,28)
//
// A lock whose bytes do not parse cannot have been published by this
// layout (media corruption, or a foreign writer); it is treated as
// stale only after a grace re-read shows the bytes have settled. A
// parsed lock is stale when its owner process is provably dead;
// liveness probing is injectable for tests via LockOwner.Alive.
const lockName = "LOCK"

// lockMagic starts every lock file.
var lockMagic = []byte("NMRKL1")

// lockVersion is the current lock-file layout version.
const lockVersion = 1

// lockFileSize is the fixed byte length of a complete lock file.
const lockFileSize = 32

// ErrLocked matches, via errors.Is, the failure of a writer Open or
// Create against a store whose writer lock is held by a live owner.
var ErrLocked = errors.New("checkpoint: store locked by another writer")

// LockHeldError reports the current holder of a store's writer lock.
// It wraps ErrLocked.
type LockHeldError struct {
	// Dir is the store directory.
	Dir string
	// PID is the holder's process ID as recorded in the lock file.
	PID int
	// Nonce is the holder's acquisition nonce.
	Nonce uint64
	// Acquired is when the holder claimed the lock, in Unix
	// nanoseconds as recorded in the lock file (0 when unknown).
	Acquired int64
}

// Age reports how long the holder has held the lock as of now, or 0
// when the lock file did not record an acquisition time.
func (e *LockHeldError) Age() time.Duration {
	if e.Acquired <= 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - e.Acquired)
}

// Error implements error.
func (e *LockHeldError) Error() string {
	return fmt.Sprintf("checkpoint: store %s locked by writer pid %d (nonce %016x)", e.Dir, e.PID, e.Nonce)
}

// Unwrap makes errors.Is(err, ErrLocked) match.
func (e *LockHeldError) Unwrap() error { return ErrLocked }

// LockOwner identifies the writer acquiring a store lock and how to
// probe a competing owner's liveness. The zero value means "this
// process, probed with the real process table" and is what the
// production entry points use; tests substitute a fake PID and probe to
// drive the stale-takeover and held paths deterministically.
type LockOwner struct {
	// PID is recorded in the lock file as the owner. 0 means
	// os.Getpid().
	PID int
	// Alive reports whether the process that owns an existing lock is
	// still running. Nil means the default probe: the calling process
	// is alive, PID 0 or negative is dead, and other PIDs are
	// signal-0 probed (unknown outcomes count as alive, so the default
	// fails fast rather than stealing a lock it cannot prove stale).
	Alive func(pid int) bool
}

// pid returns the effective owner PID.
func (o LockOwner) pid() int {
	if o.PID != 0 {
		return o.PID
	}
	return os.Getpid()
}

// alive returns the effective liveness probe.
func (o LockOwner) alive() func(pid int) bool {
	if o.Alive != nil {
		return o.Alive
	}
	return processAlive
}

// processAlive is the default liveness probe: signal 0 to the PID. An
// EPERM answer means the process exists under another user — alive. An
// unrecognized failure counts as alive: the cost of a false "alive" is
// a fail-fast open, the cost of a false "dead" is two live writers.
func processAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	if pid == os.Getpid() {
		return true
	}
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	switch {
	case err == nil:
		return true
	case errors.Is(err, os.ErrProcessDone), errors.Is(err, syscall.ESRCH):
		return false
	case errors.Is(err, syscall.EPERM):
		return true
	default:
		return true
	}
}

// LockStatus describes a store directory's on-disk writer lock as seen
// by InspectLock: whether a LOCK file exists, whether its bytes parse,
// who holds it, and whether that holder is provably alive. A held lock
// whose holder is dead (or whose bytes never parse) is stale — the
// self-healing janitor's signal to recover the store by opening it,
// which runs the verified takeover and the recovery scan.
type LockStatus struct {
	// Held reports that a LOCK file exists.
	Held bool
	// Parsed reports that the lock bytes decoded as a valid record;
	// the fields below are only meaningful when true.
	Parsed bool
	// PID, Nonce, Acquired identify the recorded holder (Acquired in
	// Unix nanoseconds, 0 when unrecorded).
	PID      int
	Nonce    uint64
	Acquired int64
	// Alive reports the liveness probe's verdict on PID.
	Alive bool
}

// Stale reports whether the lock is held but safe to recover: its
// bytes never parsed (a record this layout cannot have published), or
// its recorded holder is provably dead.
func (ls LockStatus) Stale() bool {
	return ls.Held && (!ls.Parsed || !ls.Alive)
}

// Age reports how long the lock has been held as of now (0 when not
// held or unrecorded).
func (ls LockStatus) Age() time.Duration {
	if !ls.Held || ls.Acquired <= 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - ls.Acquired)
}

// InspectLock reports the state of dir's writer lock on the real
// filesystem, without acquiring or mutating it. The holder's liveness
// is probed with the default process-table probe.
func InspectLock(dir string) (LockStatus, error) {
	return InspectLockFS(faultfs.OS(), dir, nil)
}

// InspectLockFS is InspectLock on an explicit filesystem with an
// optional liveness probe (nil = the default signal-0 probe). A
// missing LOCK file is not an error: it reports Held false.
func InspectLockFS(fsys faultfs.FS, dir string, alive func(pid int) bool) (LockStatus, error) {
	if alive == nil {
		alive = processAlive
	}
	path := filepath.Join(dir, lockName)
	raw, err := faultfs.ReadFile(fsys, path)
	if err != nil {
		if _, serr := fsys.Stat(path); serr != nil {
			return LockStatus{}, nil
		}
		return LockStatus{}, pathErr("inspect lock", path, err)
	}
	li, perr := parseLock(raw)
	if perr != nil {
		return LockStatus{Held: true}, nil
	}
	return LockStatus{
		Held: true, Parsed: true,
		PID: li.PID, Nonce: li.Nonce, Acquired: li.Acquired,
		Alive: alive(li.PID),
	}, nil
}

// storeLock is a held writer lock.
type storeLock struct {
	fs    faultfs.FS
	dir   string
	path  string
	nonce uint64
}

// lockInfo is the parsed content of a lock file.
type lockInfo struct {
	PID      int
	Nonce    uint64
	Acquired int64 // unix nanoseconds
}

// marshalLock renders the fixed 32-byte lock file.
func marshalLock(li lockInfo) []byte {
	buf := make([]byte, lockFileSize)
	copy(buf, lockMagic)
	binary.LittleEndian.PutUint16(buf[6:], lockVersion)
	//lint:ignore bindex PIDs are small positive integers
	binary.LittleEndian.PutUint32(buf[8:], uint32(li.PID))
	binary.LittleEndian.PutUint64(buf[12:], li.Nonce)
	binary.LittleEndian.PutUint64(buf[20:], uint64(li.Acquired))
	binary.LittleEndian.PutUint32(buf[28:], crc32.ChecksumIEEE(buf[:28]))
	return buf
}

// parseLock decodes a lock file. Any structural violation — short
// file, bad magic, unsupported version, CRC mismatch — is an error;
// callers treat an unparsable lock as stale (the signature of a crash
// mid-acquire).
func parseLock(raw []byte) (lockInfo, error) {
	var li lockInfo
	if len(raw) != lockFileSize {
		return li, fmt.Errorf("%w: lock file is %d bytes, want %d", ErrCorrupt, len(raw), lockFileSize)
	}
	if string(raw[:6]) != string(lockMagic) {
		return li, fmt.Errorf("%w: lock magic %q", ErrCorrupt, raw[:6])
	}
	if v := binary.LittleEndian.Uint16(raw[6:]); v != lockVersion {
		return li, fmt.Errorf("%w: lock version %d", ErrCorrupt, v)
	}
	if crc := crc32.ChecksumIEEE(raw[:28]); crc != binary.LittleEndian.Uint32(raw[28:]) {
		return li, fmt.Errorf("%w: lock CRC mismatch", ErrCorrupt)
	}
	li.PID = int(binary.LittleEndian.Uint32(raw[8:]))
	li.Nonce = binary.LittleEndian.Uint64(raw[12:])
	li.Acquired = int64(binary.LittleEndian.Uint64(raw[20:]))
	return li, nil
}

// lockGrace is how long acquisition waits before declaring an
// unparsable LOCK settled. Atomic publication means this layout never
// produces an unparsable lock, so the wait only costs time when the
// bytes are genuine corruption or a foreign writer is mid-acquire —
// and in the latter case the re-read sees the bytes change and backs
// off instead of stealing.
const lockGrace = 100 * time.Millisecond

// acquireLock claims the store's writer lock for owner, taking over a
// stale one (dead owner, or settled-unparsable bytes). A live holder
// is a *LockHeldError. Every filesystem step goes through the seam, so
// the crash matrix can kill acquisition at each mutating operation; a
// kill leaves either no LOCK, a complete LOCK whose recorded owner the
// next acquirer probes, or scratch files the recovery scan's temp
// sweep collects — never a torn LOCK, because LOCK is only ever
// published by linking an already-complete payload into place.
func acquireLock(fsys faultfs.FS, dir string, owner LockOwner, rec *obs.Recorder) (*storeLock, error) {
	path := filepath.Join(dir, lockName)
	nonce := lockNonce()
	payload := marshalLock(lockInfo{PID: owner.pid(), Nonce: nonce, Acquired: time.Now().UnixNano()})
	// Stage the complete payload at a nonce-unique scratch name and
	// make it durable; publication below is then a single Link, so an
	// observable LOCK is always whole — never the empty file a racer
	// could read between an exclusive create and its write, never a
	// torn one from a crash mid-write.
	claim := fmt.Sprintf("%s.%016x.claim.tmp", path, nonce)
	f, err := fsys.Create(claim)
	if err != nil {
		return nil, pathErr("stage lock", claim, err)
	}
	if werr := writeLockFile(f, payload); werr != nil {
		_ = fsys.Remove(claim)
		return nil, pathErr("stage lock", claim, werr)
	}
	// The LOCK link, not the scratch file, keeps an acquired lock
	// alive; the scratch is garbage either way once we return.
	defer func() { _ = fsys.Remove(claim) }()

	// Each attempt either claims the name, fails fast on a live
	// holder, or breaks one verified-stale lock; the bound covers
	// repeated takeover races.
	for attempt := 0; attempt < 4; attempt++ {
		err := fsys.Link(claim, path)
		if err == nil {
			return &storeLock{fs: fsys, dir: dir, path: path, nonce: nonce}, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, pathErr("lock", path, err)
		}
		probed, rerr := faultfs.ReadFile(fsys, path)
		if rerr != nil {
			// The holder released (or was taken over) between our link
			// and read; retry the link.
			continue
		}
		li, perr := parseLock(probed)
		if perr == nil && owner.alive()(li.PID) {
			return nil, &LockHeldError{Dir: dir, PID: li.PID, Nonce: li.Nonce, Acquired: li.Acquired}
		}
		if perr != nil {
			// Unparsable bytes under a name this layout only publishes
			// whole: media corruption, or a foreign writer caught
			// mid-acquire. Grace-wait and re-read; only bytes that stay
			// identical are settled garbage safe to break.
			time.Sleep(lockGrace)
			again, rerr := faultfs.ReadFile(fsys, path)
			if rerr != nil {
				continue // vanished during the grace wait
			}
			if !bytes.Equal(again, probed) {
				continue // someone is acting on it; re-examine fresh state
			}
		}
		broke, err := breakStaleLock(fsys, path, probed, nonce, attempt)
		if err != nil {
			return nil, err
		}
		if broke {
			rec.Add(obs.CounterLockTakeovers, 1)
		}
	}
	return nil, pathErr("lock", path, fmt.Errorf("gave up after repeated takeover races"))
}

// breakStaleLock removes a stale LOCK without ever destroying a live
// racer's claim. A remove-by-name would race: between the probe and
// the remove another acquirer can break the same stale lock and
// publish its own fresh one, which the blind remove would then destroy
// — two live writers. Instead the lock is renamed to a breaker-unique
// scratch name (the rename atomically captures whatever is at LOCK;
// of two racing breakers one gets ErrNotExist and re-examines) and the
// captured bytes are compared to the probed ones. A match is the stale
// lock we examined: discard it and report the takeover. A mismatch
// means a racer's fresh claim was captured by mistake; it is restored
// bit-identically by linking it back. Only if that restore finds a
// third acquirer already in place is the displaced claim unrecoverable
// — the inherent residue of breakable advisory lock files — and the
// acquisition surfaces an error rather than proceeding.
func breakStaleLock(fsys faultfs.FS, path string, probed []byte, nonce uint64, attempt int) (bool, error) {
	aside := fmt.Sprintf("%s.%016x.%d.stale.tmp", path, nonce, attempt)
	if err := fsys.Rename(path, aside); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil // another acquirer broke it first
		}
		return false, pathErr("break stale lock", path, err)
	}
	got, err := faultfs.ReadFile(fsys, aside)
	if err != nil {
		return false, pathErr("verify broken lock", aside, err)
	}
	if bytes.Equal(got, probed) {
		// Best-effort discard: a stray aside is scratch the recovery
		// scan's temp sweep collects.
		_ = fsys.Remove(aside)
		return true, nil
	}
	lerr := fsys.Link(aside, path)
	if lerr != nil && !errors.Is(lerr, fs.ErrExist) {
		return false, pathErr("restore raced lock", path, lerr)
	}
	_ = fsys.Remove(aside)
	if errors.Is(lerr, fs.ErrExist) {
		return false, pathErr("break stale lock", path,
			fmt.Errorf("lost a nested takeover race and displaced another writer's fresh lock"))
	}
	return false, nil
}

// writeLockFile writes, syncs, and closes the staged lock payload.
func writeLockFile(f faultfs.File, payload []byte) error {
	_, err := f.Write(payload)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// release removes the lock if it is still ours: after a (buggy or
// raced) takeover the file may carry someone else's nonce, and removing
// their claim would let two writers in.
func (l *storeLock) release() error {
	if l == nil {
		return nil
	}
	raw, err := faultfs.ReadFile(l.fs, l.path)
	if err != nil {
		return nil // already gone: nothing to release
	}
	if li, err := parseLock(raw); err != nil || li.Nonce != l.nonce {
		return nil // not ours anymore
	}
	if err := l.fs.Remove(l.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return pathErr("unlock", l.path, err)
	}
	return nil
}

// lockNonce draws a random acquisition nonce, so two acquisitions are
// distinguishable even when the same process releases and reacquires
// within one coarse clock tick — the case a clock-derived nonce would
// collide on, voiding release()'s nonce-ownership check. Only if the
// system entropy source fails does it fall back to a clock/PID mix.
func lockNonce() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		return binary.LittleEndian.Uint64(b[:])
	}
	return uint64(time.Now().UnixNano())*2654435761 ^ uint64(os.Getpid())<<32
}
