package checkpoint

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"numarck/internal/faultfs"
)

// sampleIndex builds a small in-memory chain index for marshal/parse
// tests.
func sampleIndex() *ChainIndex {
	return &ChainIndex{
		Seq:            7,
		JournalLen:     1234,
		JournalTailCRC: 0xdeadbeef,
		Entries: []IndexEntry{
			{Entry: Entry{Variable: "dens", Kind: "full", Iteration: 0}, Len: 8000, CRC: 0x11},
			{Entry: Entry{Variable: "dens", Kind: "delta", Iteration: 1}, Len: 900, CRC: 0x22},
			{Entry: Entry{Variable: "pres.v2", Kind: "delta", Iteration: 2}, Len: 700, CRC: 0x33},
		},
	}
}

// TestChainIndexRoundTrip checks marshal followed by parse reproduces
// the index exactly, including an empty one.
func TestChainIndexRoundTrip(t *testing.T) {
	for name, ix := range map[string]*ChainIndex{
		"populated": sampleIndex(),
		"empty":     {Seq: 1, JournalLen: 42, JournalTailCRC: 9},
	} {
		t.Run(name, func(t *testing.T) {
			raw, err := marshalChainIndex(ix)
			if err != nil {
				t.Fatal(err)
			}
			if want := indexHeaderSize + indexRecordSize*len(ix.Entries) + 4; len(raw) != want {
				t.Fatalf("marshaled %d bytes, want %d", len(raw), want)
			}
			got, err := ParseChainIndex(raw)
			if err != nil {
				t.Fatal(err)
			}
			if got.Seq != ix.Seq || got.JournalLen != ix.JournalLen || got.JournalTailCRC != ix.JournalTailCRC {
				t.Errorf("header round-trip: got %+v", got)
			}
			if len(got.Entries) != len(ix.Entries) {
				t.Fatalf("entry count %d, want %d", len(got.Entries), len(ix.Entries))
			}
			if len(ix.Entries) > 0 && !reflect.DeepEqual(got.Entries, ix.Entries) {
				t.Errorf("entries round-trip:\n got %+v\nwant %+v", got.Entries, ix.Entries)
			}
		})
	}
}

// TestMarshalChainIndexRejectsBadEntries checks the marshaller refuses
// names and iterations the fixed-width record cannot represent, instead
// of silently truncating them.
func TestMarshalChainIndexRejectsBadEntries(t *testing.T) {
	long := make([]byte, MaxVariableLen+1)
	for i := range long {
		long[i] = 'a'
	}
	bad := []IndexEntry{
		{Entry: Entry{Variable: string(long), Kind: "full", Iteration: 0}},
		{Entry: Entry{Variable: "../escape", Kind: "full", Iteration: 0}},
		{Entry: Entry{Variable: "v", Kind: "full", Iteration: -1}},
		{Entry: Entry{Variable: "v", Kind: "full", Iteration: 1 << 31}},
	}
	for i, e := range bad {
		if _, err := marshalChainIndex(&ChainIndex{Entries: []IndexEntry{e}}); err == nil {
			t.Errorf("entry %d (%q iter %d) marshaled", i, e.Variable, e.Iteration)
		}
	}
}

// TestParseChainIndexRejects checks every framing and content violation
// of the index file is an explicit ErrCorrupt — truncations also match
// ErrTruncated — so a damaged index is always detected, never misread.
func TestParseChainIndexRejects(t *testing.T) {
	good, err := marshalChainIndex(sampleIndex())
	if err != nil {
		t.Fatal(err)
	}
	clone := func(mut func(b []byte)) []byte {
		b := append([]byte{}, good...)
		mut(b)
		return b
	}
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:indexHeaderSize/2],
		"truncated record": good[:len(good)-20],
		"missing crc":      good[:len(good)-4],
		"trailing junk":    append(append([]byte{}, good...), 1, 2, 3),
		"bad magic":        clone(func(b []byte) { b[0] = 'X' }),
		"bad version":      clone(func(b []byte) { b[6] = 99 }),
		"flipped header":   clone(func(b []byte) { b[9] ^= 1 }),
		"flipped record":   clone(func(b []byte) { b[indexHeaderSize+3] ^= 1 }),
		"flipped crc":      clone(func(b []byte) { b[len(b)-1] ^= 1 }),
		// count + 2^29 makes 32-bit int size math (88 * count) wrap by
		// exactly 2^32, so a 32-bit want would collide with len(raw) and
		// the record loop would slice out of range; the framing check must
		// stay in 64-bit arithmetic and reject it on every platform.
		"wrapping count": clone(func(b []byte) {
			binary.LittleEndian.PutUint32(b[28:], binary.LittleEndian.Uint32(b[28:])+1<<29)
		}),
	}
	for name, raw := range cases {
		if _, err := ParseChainIndex(raw); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: ParseChainIndex = %v, want ErrCorrupt", name, err)
		}
	}
	for _, name := range []string{"short header", "truncated record", "missing crc"} {
		if _, err := ParseChainIndex(cases[name]); !errors.Is(err, ErrTruncated) {
			t.Errorf("%s: ParseChainIndex = %v, want ErrTruncated", name, err)
		}
	}
}

// TestIndexPublishedOnEveryCommit checks the writer's contract with
// readers: after Create and after every commit a CHAININDEX exists on
// disk that is anchored to the journal's current state, carries a
// strictly increasing sequence, and lists exactly the live chain.
func TestIndexPublishedOnEveryCommit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	fsys := faultfs.OS()
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	series := genSeries(2000, 4, 5)
	lastSeq := uint64(0)
	check := func(wantEntries int) {
		t.Helper()
		ix, err := loadIndex(fsys, dir)
		if err != nil || ix == nil {
			t.Fatalf("loadIndex = %v, %v", ix, err)
		}
		if ix.Seq <= lastSeq {
			t.Errorf("index seq %d did not advance past %d", ix.Seq, lastSeq)
		}
		lastSeq = ix.Seq
		if len(ix.Entries) != wantEntries {
			t.Errorf("index lists %d entries, want %d", len(ix.Entries), wantEntries)
		}
		tok, err := readJournalToken(fsys, dir)
		if err != nil {
			t.Fatal(err)
		}
		if !ix.matches(tok) {
			t.Errorf("published index is stale: anchor (%d, %08x) vs journal (%d, %08x)",
				ix.JournalLen, ix.JournalTailCRC, tok.Len, tok.TailCRC)
		}
		if ix.Seq != st.IndexSeq() {
			t.Errorf("on-disk seq %d != store seq %d", ix.Seq, st.IndexSeq())
		}
	}
	check(0)
	if err := st.WriteFull("dens", 0, series[0]); err != nil {
		t.Fatal(err)
	}
	check(1)
	prev := series[0]
	for i := 1; i <= 3; i++ {
		if _, err := st.WriteDelta("dens", i, prev, series[i]); err != nil {
			t.Fatal(err)
		}
		check(i + 1)
	}

	// GC republishes once; the index never lists removed files.
	if err := st.WriteFull("dens", 4, series[3]); err != nil {
		t.Fatal(err)
	}
	check(5)
	if _, err := st.GC(4); err != nil {
		t.Fatal(err)
	}
	check(1)
}

// TestReconcileIndexAdoptsFreshRebuildStale checks open-time index
// reconciliation: a clean reopen adopts the published index (sequence
// preserved, no rebuild), while a stale or corrupt one is rebuilt with
// a higher sequence.
func TestReconcileIndexAdoptsFreshRebuildStale(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteFull("dens", 0, genSeries(500, 1, 8)[0]); err != nil {
		t.Fatal(err)
	}
	seq := st.IndexSeq()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.IndexSeq() != seq {
		t.Errorf("clean reopen seq %d, want adopted %d", st2.IndexSeq(), seq)
	}
	if h := st2.IndexHealth(); !h.Present || !h.Fresh {
		t.Errorf("clean reopen index health: %s", h)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the index: the next open must rebuild it.
	path := filepath.Join(dir, indexName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatalf("open with corrupt index: %v", err)
	}
	defer st3.Close()
	if h := st3.IndexHealth(); !h.Present || !h.Fresh {
		t.Errorf("index not rebuilt after corruption: %s", h)
	}
	// The old sequence died with the unparsable file; what matters is
	// that the rebuilt index is published and fresh (correctness is
	// anchored to the journal token, not the sequence).
	if st3.IndexSeq() == 0 {
		t.Error("rebuilt index has sequence 0")
	}
	if _, err := st3.Restart("dens", 0); err != nil {
		t.Errorf("restart after rebuild: %v", err)
	}
}
