package checkpoint

import (
	"errors"
	"fmt"
	"strings"

	"numarck/internal/core"
	"numarck/internal/obs"
)

// RecoverOptions selects how chunk-local corruption in a v2 delta is
// handled during decode. The zero value is fail-closed: the first bad
// chunk fails the whole decode, today's default behavior.
type RecoverOptions struct {
	// Salvage decodes every healthy chunk, fills the points of bad
	// chunks with the previous iteration's values (never with bytes
	// from a chunk whose CRC or structure check failed), and reports
	// the damage through a *PartialDataError instead of failing.
	Salvage bool
	// Obs receives recovery counters (chunks_quarantined). Nil is the
	// no-op state.
	Obs *obs.Recorder
}

// ChunkStatus is one chunk's outcome in a salvage decode.
type ChunkStatus struct {
	// Chunk is the chunk index.
	Chunk int
	// Start and Points delimit the chunk's half-open point range
	// [Start, Start+Points).
	Start, Points int
	// Err is nil for a healthy chunk; otherwise the chunk-local
	// failure (CRC mismatch, truncated section, structural violation).
	Err error
}

// Range is a half-open index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// String renders the range in interval notation.
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// PartialDataError reports a degraded-mode decode that salvaged only
// part of the data: which chunks failed, and exactly which point
// indices hold stale (previous-iteration) values instead of decoded
// ones. It wraps ErrCorrupt, so errors.Is(err, ErrCorrupt) matches.
type PartialDataError struct {
	// Variable and Iteration identify the damaged checkpoint (the last
	// damaged one, when a restart chain accumulated losses).
	Variable  string
	Iteration int
	// Chunks holds the per-chunk status of every chunk of that
	// checkpoint, healthy and failed, in chunk order.
	Chunks []ChunkStatus
	// Lost is the merged, sorted set of point ranges whose values were
	// not recovered anywhere in the operation.
	Lost []Range
}

// Error summarizes the damage: failed chunk count and lost ranges.
func (e *PartialDataError) Error() string {
	failed := 0
	for _, c := range e.Chunks {
		if c.Err != nil {
			failed++
		}
	}
	ranges := make([]string, len(e.Lost))
	for i, r := range e.Lost {
		ranges[i] = r.String()
	}
	return fmt.Sprintf("checkpoint: partial data for %s@%d: %d bad chunk(s), lost points %s",
		e.Variable, e.Iteration, failed, strings.Join(ranges, " "))
}

// Unwrap marks the error as corruption for errors.Is.
func (e *PartialDataError) Unwrap() error { return ErrCorrupt }

// LostPoints returns the total number of unrecovered points.
func (e *PartialDataError) LostPoints() int {
	n := 0
	for _, r := range e.Lost {
		n += r.Hi - r.Lo
	}
	return n
}

// mergeRanges folds r into sorted, disjoint, coalesced ranges.
func mergeRanges(ranges []Range) []Range {
	if len(ranges) < 2 {
		return ranges
	}
	sorted := append([]Range(nil), ranges...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Lo < sorted[j-1].Lo; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:1]
	for _, r := range sorted[1:] {
		if last := &out[len(out)-1]; r.Lo <= last.Hi {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// mergePartial accumulates a new delta's damage into the running
// restart-chain report: lost ranges union (a point lost at any
// iteration of the chain is stale in the final state), chunk statuses
// track the most recent damaged checkpoint.
func mergePartial(acc, next *PartialDataError, variable string) *PartialDataError {
	if acc == nil {
		next.Variable = variable
		return next
	}
	acc.Variable = variable
	acc.Iteration = next.Iteration
	acc.Chunks = next.Chunks
	acc.Lost = mergeRanges(append(acc.Lost, next.Lost...))
	return acc
}

// DecodeRecover reconstructs all points from prev like Decode, but
// under ropt's degraded-mode contract: with Salvage set, a chunk whose
// section fails its CRC or structure check is quarantined — its point
// range keeps prev's values, nothing from the bad section is used —
// while every healthy chunk decodes normally, and the damage comes
// back as a *PartialDataError alongside the salvaged data. Without
// Salvage it behaves exactly like Decode. Non-chunk-local failures
// (wrong prev length) still fail closed either way.
func (d *DeltaV2Reader) DecodeRecover(prev []float64, workers int, ropt RecoverOptions) ([]float64, error) {
	if !ropt.Salvage {
		return d.Decode(prev, workers)
	}
	if len(prev) != d.meta.N {
		return nil, fmt.Errorf("%w: prev has %d points, encoded has %d", core.ErrLength, len(prev), d.meta.N)
	}
	out := make([]float64, d.meta.N)
	m := d.meta.ChunkCount
	if workers <= 0 || workers > m {
		workers = m
	}
	statuses := make([]ChunkStatus, m)
	if m > 0 {
		jobs := make(chan int)
		done := make(chan struct{}, workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer func() { done <- struct{}{} }()
				for i := range jobs {
					start, np := d.ChunkSpan(i)
					err := d.DecodeChunkInto(i, prev[start:start+np], out[start:start+np])
					if err != nil {
						// Quarantine the chunk: pass the previous
						// iteration's values through for its range.
						copy(out[start:start+np], prev[start:start+np])
					}
					statuses[i] = ChunkStatus{Chunk: i, Start: start, Points: np, Err: err}
				}
			}()
		}
		for i := 0; i < m; i++ {
			jobs <- i
		}
		close(jobs)
		for w := 0; w < workers; w++ {
			<-done
		}
	}
	var lost []Range
	for _, s := range statuses {
		if s.Err == nil {
			continue
		}
		// Only chunk-local damage is salvageable; anything else (an
		// fs-level read failure, a caller bug) fails the whole decode.
		var ce *ChunkError
		if !errors.As(s.Err, &ce) {
			return nil, s.Err
		}
		lost = append(lost, Range{Lo: s.Start, Hi: s.Start + s.Points})
	}
	rec := ropt.Obs
	if rec == nil {
		rec = d.rec
	}
	if len(lost) == 0 {
		rec.Add(obs.CounterDecodes, 1)
		rec.Add(obs.CounterPointsDecoded, int64(d.meta.N))
		return out, nil
	}
	rec.Add(obs.CounterChunksQuarantined, int64(len(lost)))
	return out, &PartialDataError{
		Variable:  d.meta.Variable,
		Iteration: d.meta.Iteration,
		Chunks:    statuses,
		Lost:      mergeRanges(lost),
	}
}
