package checkpoint

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"numarck/internal/core"
)

func opts() core.Options {
	return core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.Clustering}
}

func genSeries(n, iters int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, iters)
	out[0] = make([]float64, n)
	for j := range out[0] {
		out[0][j] = 50 + rng.Float64()*100
	}
	for i := 1; i < iters; i++ {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = out[i-1][j] * (1 + rng.NormFloat64()*0.003)
		}
	}
	return out
}

func TestMarshalFullRoundTrip(t *testing.T) {
	data := genSeries(1000, 1, 1)[0]
	raw, err := MarshalFull("dens", 7, data)
	if err != nil {
		t.Fatal(err)
	}
	v, it, got, err := UnmarshalFull(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v != "dens" || it != 7 {
		t.Errorf("header = %s@%d", v, it)
	}
	for i := range data {
		if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
			t.Fatalf("value %d differs", i)
		}
	}
}

func TestMarshalDeltaRoundTrip(t *testing.T) {
	series := genSeries(2000, 2, 2)
	enc, err := core.Encode(series[0], series[1], opts())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarshalDelta("pres", 3, enc)
	if err != nil {
		t.Fatal(err)
	}
	v, it, dec, err := UnmarshalDelta(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v != "pres" || it != 3 {
		t.Errorf("header = %s@%d", v, it)
	}
	want, err := enc.Decode(series[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decode(series[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("decode differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if dec.Gamma() != enc.Gamma() {
		t.Errorf("gamma %v vs %v", dec.Gamma(), enc.Gamma())
	}
}

func TestUnmarshalCorruption(t *testing.T) {
	series := genSeries(500, 2, 3)
	enc, err := core.Encode(series[0], series[1], opts())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarshalDelta("x", 1, enc)
	if err != nil {
		t.Fatal(err)
	}
	fullRaw, err := MarshalFull("x", 0, series[0])
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte, full bool) {
		t.Helper()
		var err error
		if full {
			_, _, _, err = UnmarshalFull(data)
		} else {
			_, _, _, err = UnmarshalDelta(data)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}

	check("delta empty", nil, false)
	check("delta truncated", raw[:len(raw)-3], false)
	check("full as delta", fullRaw, false)
	check("delta as full", raw, true)

	flipped := append([]byte{}, raw...)
	flipped[len(flipped)-1] ^= 0xFF
	check("delta bitflip", flipped, false)

	flippedFull := append([]byte{}, fullRaw...)
	flippedFull[len(flippedFull)-1] ^= 0xFF
	check("full bitflip", flippedFull, true)

	// Corrupt header length field.
	badLen := append([]byte{}, raw...)
	badLen[6] = 0xFF
	badLen[7] = 0xFF
	check("delta header length", badLen, false)
}

func TestStoreCreateOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	if st.Options().IndexBits != 8 {
		t.Errorf("options = %+v", st.Options())
	}
	// While the first handle holds the writer lock, a second writer —
	// Create or Open — fails fast with the typed lock-held error.
	if _, err := Create(dir, opts()); !errors.Is(err, ErrLocked) {
		t.Errorf("duplicate Create while locked = %v, want ErrLocked", err)
	}
	var lh *LockHeldError
	if _, err := Open(dir); !errors.As(err, &lh) {
		t.Errorf("second Open while locked = %v, want *LockHeldError", err)
	} else if lh.PID != os.Getpid() {
		t.Errorf("lock holder pid = %d, want %d", lh.PID, os.Getpid())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the lock is released, but re-creating over an existing
	// store is still refused.
	if _, err := Create(dir, opts()); err == nil || errors.Is(err, ErrLocked) {
		t.Errorf("duplicate Create after close = %v, want already-exists", err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Options().Strategy != core.Clustering || st2.Options().ErrorBound != 0.001 {
		t.Errorf("reopened options = %+v", st2.Options())
	}
	if _, err := Open(filepath.Join(dir, "missing")); !errors.Is(err, ErrNotFound) {
		t.Errorf("open missing: %v", err)
	}
}

func TestStoreBadManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{bad json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad manifest: %v", err)
	}
}

func TestStoreWriteReadRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	series := genSeries(3000, 6, 4)
	if err := st.WriteFull("dens", 0, series[0]); err != nil {
		t.Fatal(err)
	}
	prev := series[0]
	for i := 1; i < len(series); i++ {
		if _, err := st.WriteDelta("dens", i, prev, series[i]); err != nil {
			t.Fatal(err)
		}
		prev = series[i]
	}

	// Restart at the full checkpoint itself is exact.
	r0, err := st.Restart("dens", 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range r0 {
		if r0[j] != series[0][j] {
			t.Fatalf("full restart differs at %d", j)
		}
	}

	// Restart at later iterations obeys the accumulated error
	// envelope.
	for target := 1; target < len(series); target++ {
		rec, err := st.Restart("dens", target)
		if err != nil {
			t.Fatalf("restart %d: %v", target, err)
		}
		bound := math.Pow(1+0.001, float64(target)) - 1
		for j := range rec {
			rel := math.Abs(rec[j]-series[target][j]) / math.Abs(series[target][j])
			if rel > bound*1.5+1e-12 {
				t.Fatalf("restart %d point %d: relative error %v > %v", target, j, rel, bound*1.5)
			}
		}
	}
}

func TestStoreListAndVariables(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	series := genSeries(100, 3, 5)
	if err := st.WriteFull("a", 0, series[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteDelta("a", 1, series[0], series[1]); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteFull("b.dotted", 0, series[0]); err != nil {
		t.Fatal(err)
	}

	entries, err := st.List("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Kind != "full" || entries[1].Kind != "delta" {
		t.Errorf("entries = %+v", entries)
	}

	vars, err := st.Variables()
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 2 || vars[0] != "a" || vars[1] != "b.dotted" {
		t.Errorf("variables = %v", vars)
	}
}

func TestRestartChainGap(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	series := genSeries(100, 5, 6)
	if err := st.WriteFull("v", 0, series[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteDelta("v", 1, series[0], series[1]); err != nil {
		t.Fatal(err)
	}
	// Skip iteration 2, write 3: chain has a gap.
	if _, err := st.WriteDelta("v", 3, series[2], series[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Restart("v", 3); !errors.Is(err, ErrChain) {
		t.Errorf("gap restart: %v", err)
	}
	// Restart before the gap still works.
	if _, err := st.Restart("v", 1); err != nil {
		t.Errorf("restart 1: %v", err)
	}
}

func TestRestartErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Restart("ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing variable: %v", err)
	}
	series := genSeries(50, 2, 7)
	if _, err := st.WriteDelta("v", 1, series[0], series[1]); err != nil {
		t.Fatal(err)
	}
	// Delta exists but no full checkpoint before it.
	if _, err := st.Restart("v", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("no full checkpoint: %v", err)
	}
}

func TestRestartUsesLatestFull(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	series := genSeries(200, 7, 8)
	if err := st.WriteFull("v", 0, series[0]); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := st.WriteDelta("v", i, series[i-1], series[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteFull("v", 4, series[4]); err != nil {
		t.Fatal(err)
	}
	for i := 5; i <= 6; i++ {
		if _, err := st.WriteDelta("v", i, series[i-1], series[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Restart at 5 must start from full@4, so only one delta of error.
	rec, err := st.Restart("v", 5)
	if err != nil {
		t.Fatal(err)
	}
	for j := range rec {
		rel := math.Abs(rec[j]-series[5][j]) / math.Abs(series[5][j])
		if rel > 0.001*1.01 {
			t.Fatalf("restart-from-latest-full error %v at %d", rel, j)
		}
	}
}

func TestWriterFullEvery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(st, 3)
	series := genSeries(300, 7, 9)
	for i := 0; i < 7; i++ {
		encs, err := w.Append(i, map[string][]float64{"v": series[i]})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		wantFull := i == 0 || i%3 == 0
		if wantFull && len(encs) != 0 {
			t.Errorf("iteration %d: expected full checkpoint, got delta", i)
		}
		if !wantFull && encs["v"] == nil {
			t.Errorf("iteration %d: expected delta encoding", i)
		}
	}
	entries, err := st.List("v")
	if err != nil {
		t.Fatal(err)
	}
	fulls := 0
	for _, e := range entries {
		if e.Kind == "full" {
			fulls++
		}
	}
	if fulls != 3 { // iterations 0, 3, 6
		t.Errorf("full checkpoints = %d, want 3", fulls)
	}
	// Every iteration restarts within its envelope.
	for i := 0; i < 7; i++ {
		rec, err := st.Restart("v", i)
		if err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
		for j := range rec {
			rel := math.Abs(rec[j]-series[i][j]) / math.Abs(series[i][j])
			if rel > 0.01 {
				t.Fatalf("iteration %d point %d error %v", i, j, rel)
			}
		}
	}
}

func TestWriterNonConsecutive(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(st, 0)
	series := genSeries(50, 3, 10)
	if _, err := w.Append(0, map[string][]float64{"v": series[0]}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(2, map[string][]float64{"v": series[2]}); err == nil {
		t.Error("non-consecutive append accepted")
	}
	// New variable appearing mid-run is rejected.
	if _, err := w.Append(1, map[string][]float64{"new": series[1]}); err == nil {
		t.Error("mid-run variable accepted")
	}
}

func TestParseName(t *testing.T) {
	cases := []struct {
		name string
		want Entry
		ok   bool
	}{
		{"dens.full.000007.nmk", Entry{"dens", "full", 7}, true},
		{"a.b.delta.000123.nmk", Entry{"a.b", "delta", 123}, true},
		{"manifest.json", Entry{}, false},
		{"dens.full.xx.nmk", Entry{}, false},
		{"dens.nmk", Entry{}, false},
		{"dens.weird.000001.nmk", Entry{}, false},
	}
	for _, c := range cases {
		got, ok := parseName(c.name)
		if ok != c.ok || got != c.want {
			t.Errorf("parseName(%q) = %+v,%v want %+v,%v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestReadCorruptFileFromDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	series := genSeries(100, 2, 11)
	if err := st.WriteFull("v", 0, series[0]); err != nil {
		t.Fatal(err)
	}
	path := st.path("v", "full", 0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadFull("v", 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt file read: %v", err)
	}
	if _, err := st.Restart("v", 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt restart: %v", err)
	}
}

func TestMismatchedHeaderIdentity(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	series := genSeries(100, 2, 12)
	// Write a file under one name whose header says another.
	raw, err := MarshalFull("other", 5, series[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path("v", "full", 0), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadFull("v", 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("identity mismatch: %v", err)
	}
}
