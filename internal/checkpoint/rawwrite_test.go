package checkpoint

import (
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"numarck/internal/core"
)

// TestWriteRawRoundTrip commits pre-marshalled full and v2-delta bytes
// through the raw hooks and checks the chain restores exactly what the
// in-process write path would, and that the read view's Chain entries
// carry the committed files' true lengths and CRCs.
func TestWriteRawRoundTrip(t *testing.T) {
	dir := t.TempDir()
	series := genSeries(2000, 2, 41)
	fullRaw, err := MarshalFull("dens", 0, series[0])
	if err != nil {
		t.Fatal(err)
	}
	enc, err := core.Encode(series[0], series[1], opts())
	if err != nil {
		t.Fatal(err)
	}
	deltaRaw, err := MarshalDeltaV2("dens", 1, enc, 512)
	if err != nil {
		t.Fatal(err)
	}
	want, err := enc.Decode(series[0])
	if err != nil {
		t.Fatal(err)
	}

	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteRawFull("dens", 0, fullRaw); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteRawDelta("dens", 1, deltaRaw); err != nil {
		t.Fatal(err)
	}
	got, err := st.Restart("dens", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("restart differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rv, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := rv.Chain("dens")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("chain has %d entries, want 2", len(chain))
	}
	for i, raw := range [][]byte{fullRaw, deltaRaw} {
		ce := chain[i]
		if ce.Len != int64(len(raw)) {
			t.Errorf("entry %d: journaled len %d, file is %d bytes", i, ce.Len, len(raw))
		}
		if ce.CRC != crc32.ChecksumIEEE(raw) {
			t.Errorf("entry %d: journaled CRC %08x differs from committed bytes", i, ce.CRC)
		}
		onDisk, err := os.ReadFile(filepath.Join(dir, ce.Name))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(onDisk)) != ce.Len {
			t.Errorf("entry %d: on-disk size %d, journaled %d", i, len(onDisk), ce.Len)
		}
	}
}

// TestWriteRawRejectsMismatch checks both raw hooks refuse bytes whose
// header identity disagrees with the commit target: a raw commit must
// never be able to plant variable A's data under variable B's name.
func TestWriteRawRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	series := genSeries(500, 2, 42)
	fullRaw, err := MarshalFull("dens", 0, series[0])
	if err != nil {
		t.Fatal(err)
	}
	enc, err := core.Encode(series[0], series[1], opts())
	if err != nil {
		t.Fatal(err)
	}
	deltaRaw, err := MarshalDelta("dens", 1, enc)
	if err != nil {
		t.Fatal(err)
	}

	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Error(err)
		}
	}()

	if err := st.WriteRawFull("pres", 0, fullRaw); !errors.Is(err, ErrBadVariable) {
		t.Errorf("wrong variable = %v, want ErrBadVariable", err)
	}
	if err := st.WriteRawFull("dens", 3, fullRaw); !errors.Is(err, ErrBadVariable) {
		t.Errorf("wrong iteration = %v, want ErrBadVariable", err)
	}
	if err := st.WriteRawDelta("pres", 1, deltaRaw); !errors.Is(err, ErrBadVariable) {
		t.Errorf("delta wrong variable = %v, want ErrBadVariable", err)
	}
	if err := st.WriteRawFull("../oops", 0, fullRaw); !errors.Is(err, ErrBadVariable) {
		t.Errorf("path-escape variable = %v, want ErrBadVariable", err)
	}
	if err := st.WriteRawFull("dens", 0, fullRaw[:20]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated raw = %v, want ErrCorrupt", err)
	}
	if err := st.WriteRawDelta("dens", 1, []byte("garbage")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage delta = %v, want ErrCorrupt", err)
	}
	// Nothing above may have committed.
	if entries, err := st.List("dens"); err != nil || len(entries) != 0 {
		t.Fatalf("rejected commits left entries: %v, %v", entries, err)
	}
}

// TestReadViewVerify checks the lock-free deep verify: clean on a
// healthy store, and reporting ErrCorrupt when a committed file's bytes
// are flipped behind the journal's back — all without taking the
// writer lock.
func TestReadViewVerify(t *testing.T) {
	dir := t.TempDir()
	series := genSeries(1500, 3, 43)
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteFull("dens", 0, series[0]); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if _, err := st.WriteDelta("dens", i, series[i-1], series[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rv, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	issues, err := rv.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("clean store: %d issues: %v", len(issues), issues)
	}

	// Flip one byte of the first delta behind the journal's back.
	path := filepath.Join(dir, fileName("dens", "delta", 1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rv2, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	issues, err = rv2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, is := range issues {
		if is.Variable == "dens" && is.Iteration == 1 && errors.Is(is.Err, ErrCorrupt) {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("corrupted delta not reported: %v", issues)
	}
}

// TestLockHeldErrorAge checks a second writer learns when the holder
// acquired the lock: the daemon maps this onto its 423 Locked response.
func TestLockHeldErrorAge(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Error(err)
		}
	}()
	_, err = Open(dir)
	var lh *LockHeldError
	if !errors.As(err, &lh) {
		t.Fatalf("second Open = %v, want *LockHeldError", err)
	}
	if lh.PID != os.Getpid() {
		t.Errorf("holder PID = %d, want %d", lh.PID, os.Getpid())
	}
	if lh.Acquired <= 0 {
		t.Fatalf("Acquired = %d, want the holder's acquisition time", lh.Acquired)
	}
	if age := lh.Age(); age <= 0 {
		t.Errorf("Age() = %v, want positive", age)
	}
	if (&LockHeldError{}).Age() != 0 {
		t.Error("zero-value Age() should be 0")
	}
}
