package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"sync/atomic"

	"numarck/internal/core"
	"numarck/internal/faultfs"
	"numarck/internal/obs"
)

// ReadView is a lock-free read-only handle on a checkpoint store. It
// never touches the writer lock, never appends to the journal, never
// moves or removes a file — it performs no mutating filesystem
// operation at all, so it works on read-only media and can coexist with
// a live writer in this or another process without ever blocking it.
//
// Reads are served from an immutable snapshot of the CHAININDEX,
// validated seqlock-style against the journal: every operation first
// checks that the journal's length and tail CRC still match the
// snapshot's anchor (two O(1) filesystem reads), and on a mismatch
// rereads the index — retrying if the writer republishes mid-read —
// before serving. A snapshot is therefore always one consistent
// published chain state, never a mix of two; at worst it is one commit
// behind a writer that is mid-publish. If the index is missing, stale,
// or corrupt (CRC/version check), the view falls back to an in-memory
// replay of the journal: slower, still read-only, never wrong.
//
// A ReadView is safe for concurrent use by any number of goroutines.
type ReadView struct {
	dir string
	fs  faultfs.FS
	rec *obs.Recorder
	opt core.Options
	// snap caches the last validated snapshot; readers swap it with
	// atomic pointer operations, so no reader ever blocks another.
	snap atomic.Pointer[readSnapshot]
}

// readSnapshot is one immutable view of the store's chain. All fields
// are write-once; readers share snapshots freely.
type readSnapshot struct {
	// seq is the index publication sequence (0 for a journal-replay
	// fallback snapshot).
	seq uint64
	// tok anchors the snapshot to the journal state it reflects.
	tok journalToken
	// chain is the live file set.
	chain map[string]journalEntry
}

// maxRereadRaces bounds how many consecutive index republications a
// single snapshot refresh will chase before erroring out; each race
// requires the writer to have published again between two reads, so in
// practice one retry suffices.
const maxRereadRaces = 4

// OpenReadOnly opens a lock-free read view of the store on the real
// filesystem. Unlike Open it acquires no lock, mutates nothing (no
// recovery scan, no journal compaction), and succeeds while a writer
// holds the store.
func OpenReadOnly(dir string) (*ReadView, error) {
	return OpenReadOnlyFS(dir, faultfs.OS(), nil)
}

// OpenReadOnlyFS is OpenReadOnly on an explicit filesystem with an
// optional instrumentation recorder: seqlock snapshot rereads (not the
// view's first snapshot) count into index_rereads and journal-replay
// fallbacks into index_rebuilds. Nil rec keeps instrumentation a
// no-op.
func OpenReadOnlyFS(dir string, fsys faultfs.FS, rec *obs.Recorder) (*ReadView, error) {
	opt, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	rv := &ReadView{dir: dir, fs: fsys, rec: rec, opt: opt}
	// Take the first snapshot eagerly so a broken store fails at Open,
	// not on the first read.
	if _, err := rv.snapshot(); err != nil {
		return nil, err
	}
	return rv, nil
}

// Options returns the store's encoding options.
func (rv *ReadView) Options() core.Options { return rv.opt }

// Dir returns the store directory.
func (rv *ReadView) Dir() string { return rv.dir }

// snapshot returns a chain snapshot consistent with the journal's
// current state: the cached one if its anchor still matches, otherwise
// a fresh read of the index (seqlock reread), otherwise an in-memory
// journal replay. It never performs a mutating filesystem operation.
func (rv *ReadView) snapshot() (*readSnapshot, error) {
	tok, err := readJournalToken(rv.fs, rv.dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// A store without a journal predates the journaled layout; a
			// read-only view cannot adopt it (adoption writes).
			return nil, fmt.Errorf("%w: store at %s has no journal; open it with a writer once to adopt the legacy layout", ErrNotFound, rv.dir)
		}
		return nil, err
	}
	cached := rv.snap.Load()
	if cached != nil && cached.tok == tok {
		return cached, nil
	}
	for race := 0; race < maxRereadRaces; race++ {
		ix, ierr := loadIndex(rv.fs, rv.dir)
		if ierr == nil && ix != nil && ix.matches(tok) {
			s := &readSnapshot{seq: ix.Seq, tok: tok, chain: chainFromIndex(ix)}
			rv.snap.Store(s)
			// The counter measures seqlock rereads — a cached snapshot
			// invalidated under the reader, or a republication chased
			// mid-load — not the view's mandatory first snapshot.
			if cached != nil || race > 0 {
				rv.rec.Add(obs.CounterIndexRereads, 1)
			}
			return s, nil
		}
		// The index did not match the token we read. Either the writer
		// published a commit between our two reads (token moved: chase
		// it), or the index is genuinely absent/stale/corrupt (token
		// stable: fall back to the journal).
		tok2, terr := readJournalToken(rv.fs, rv.dir)
		if terr != nil {
			return nil, terr
		}
		if tok2 == tok {
			return rv.replayFallback(tok)
		}
		tok = tok2
	}
	return nil, fmt.Errorf("checkpoint: read view of %s lost %d index races in a row", rv.dir, maxRereadRaces)
}

// replayFallback builds a snapshot by replaying the journal in memory.
// Unlike the writer's recovery scan it repairs nothing — a torn tail is
// simply ignored, exactly as replay does — so it stays legal on
// read-only media.
func (rv *ReadView) replayFallback(tok journalToken) (*readSnapshot, error) {
	entries, exists, _, err := replayJournal(rv.fs, rv.dir)
	if err != nil {
		return nil, err
	}
	if !exists {
		return nil, fmt.Errorf("%w: store at %s has no journal; open it with a writer once to adopt the legacy layout", ErrNotFound, rv.dir)
	}
	s := &readSnapshot{seq: 0, tok: tok, chain: entries}
	rv.snap.Store(s)
	rv.rec.Add(obs.CounterIndexRebuilds, 1)
	return s, nil
}

// IndexSeq returns the publication sequence of the snapshot backing the
// last read (0 when that snapshot came from the journal-replay
// fallback). It does not refresh.
func (rv *ReadView) IndexSeq() uint64 {
	if s := rv.snap.Load(); s != nil {
		return s.seq
	}
	return 0
}

// List returns all entries for a variable, sorted by iteration.
func (rv *ReadView) List(variable string) ([]Entry, error) {
	s, err := rv.snapshot()
	if err != nil {
		return nil, err
	}
	return chainEntries(s.chain, variable), nil
}

// Chain returns one variable's committed files with their journaled
// byte lengths and CRCs, sorted by iteration. It is List with the
// per-file accounting attached: chain-level tooling can report or
// cross-check sizes without stat'ing the store directory.
func (rv *ReadView) Chain(variable string) ([]ChainEntry, error) {
	s, err := rv.snapshot()
	if err != nil {
		return nil, err
	}
	return chainFileEntries(s.chain, variable), nil
}

// Variables returns the distinct variable names present in the store.
func (rv *ReadView) Variables() ([]string, error) {
	s, err := rv.snapshot()
	if err != nil {
		return nil, err
	}
	return chainVariables(s.chain), nil
}

// Stats returns per-variable storage statistics, sorted by variable
// name, computed from the snapshot's journaled lengths — no per-file
// Stat calls.
func (rv *ReadView) Stats() ([]VariableStats, error) {
	s, err := rv.snapshot()
	if err != nil {
		return nil, err
	}
	return chainStats(s.chain), nil
}

// LatestRestorable returns the highest iteration of a variable that can
// be reconstructed: the end of the unbroken delta chain rooted at the
// latest full checkpoint. ErrNotFound means no full checkpoint exists.
func (rv *ReadView) LatestRestorable(variable string) (int, error) {
	s, err := rv.snapshot()
	if err != nil {
		return 0, err
	}
	restorable := latestRestorableEntries(chainEntries(s.chain, variable))
	if restorable < 0 {
		return 0, fmt.Errorf("%w: variable %s has no full checkpoint", ErrNotFound, variable)
	}
	return restorable, nil
}

// Restart reconstructs a variable at the requested iteration from the
// snapshot's chain. If a file named by the snapshot has vanished (the
// writer removed it after we snapshotted, e.g. a concurrent GC), the
// view refreshes once and retries before reporting the error.
func (rv *ReadView) Restart(variable string, iteration int) ([]float64, error) {
	data, _, err := rv.restart(variable, iteration, RecoverOptions{})
	return data, err
}

// RestartSalvage is Restart in degraded mode, with the same semantics
// as Store.RestartSalvage.
func (rv *ReadView) RestartSalvage(variable string, iteration int) ([]float64, *PartialDataError, error) {
	return rv.restart(variable, iteration, RecoverOptions{Salvage: true})
}

func (rv *ReadView) restart(variable string, iteration int, ropt RecoverOptions) ([]float64, *PartialDataError, error) {
	s, err := rv.snapshot()
	if err != nil {
		return nil, nil, err
	}
	data, partial, rerr := restartEntries(rv.fs, rv.dir, rv.rec, chainEntries(s.chain, variable), variable, iteration, ropt)
	if rerr == nil {
		return data, partial, nil
	}
	// A chain entry whose file is gone means the store moved under this
	// snapshot; invalidate it, take a fresh one, and retry once.
	tok, terr := readJournalToken(rv.fs, rv.dir)
	if terr != nil || tok == s.tok {
		return nil, nil, rerr
	}
	s2, err := rv.snapshot()
	if err != nil {
		return nil, nil, err
	}
	return restartEntries(rv.fs, rv.dir, rv.rec, chainEntries(s2.chain, variable), variable, iteration, ropt)
}
