package checkpoint

import (
	"bytes"
	"io"
	"testing"

	"numarck/internal/core"
)

// TestDeltaV2WriterAppendChunkAllocs pins AppendChunk's steady state at
// exactly zero allocations: the pack buffer, bitmap, and section
// scratch are sized by the first chunk and every later equal-size chunk
// reuses them.
func TestDeltaV2WriterAppendChunkAllocs(t *testing.T) {
	const cp = 512
	const runs = 20
	opt, err := core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.EqualWidth}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewDeltaV2Writer(io.Discard, "v", 1, cp*(runs+2), opt, []float64{0.5, -0.5}, cp)
	if err != nil {
		t.Fatal(err)
	}
	indices := make([]uint32, cp)
	incompressible := make([]bool, cp)
	exact := make([]float64, 0, 4)
	for j := range indices {
		indices[j] = uint32(j % 3)
	}
	incompressible[7] = true
	exact = append(exact, 3.25)
	if err := w.AppendChunk(indices, incompressible, exact); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(runs, func() {
		if err := w.AppendChunk(indices, incompressible, exact); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("AppendChunk allocates %.0f times per steady-state chunk, want 0", got)
	}
}

// TestChunkDecoderSteadyStateAllocs pins ChunkDecoder's steady state at
// exactly zero allocations across equal-size chunks.
func TestChunkDecoderSteadyStateAllocs(t *testing.T) {
	const cp = 512
	const nChunks = 8
	n := cp * nChunks
	prev := make([]float64, n)
	cur := make([]float64, n)
	for j := range prev {
		prev[j] = 10 + float64(j%17)
		cur[j] = prev[j] * 1.01
	}
	opt := core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.EqualWidth}
	enc, err := core.Encode(prev, cur, opt)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarshalDeltaV2("v", 1, enc, cp)
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	dec := d.NewChunkDecoder()
	pbuf := make([]float64, cp)
	dst := make([]float64, cp)
	if err := dec.DecodeChunkInto(0, prev[:cp], dst); err != nil {
		t.Fatal(err)
	}
	i := 0
	got := testing.AllocsPerRun(40, func() {
		lo := i * cp
		if err := dec.DecodeChunkInto(i, prev[lo:lo+cp], dst); err != nil {
			t.Fatal(err)
		}
		i = (i + 1) % nChunks
	})
	_ = pbuf
	if got != 0 {
		t.Errorf("ChunkDecoder.DecodeChunkInto allocates %.0f times per steady-state chunk, want 0", got)
	}
}
