package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync/atomic"

	"numarck/internal/bitpack"
	"numarck/internal/core"
	"numarck/internal/obs"
)

// Format v2 stores a delta checkpoint as independently decodable
// chunks, so decode parallelizes, corruption localizes to one chunk,
// and a sub-range of points can be reconstructed without reading the
// whole file. Layout:
//
//	magic "NMRKD2" | len uint32 | JSON header (adds chunk_points,
//	chunk_count; CRC covers the bin table)
//	| bin table (BinCount float64 LE)
//	| chunk sections, contiguous; section i = packed indices | bitmap
//	  | exact values, all for that chunk's points only, byte-aligned
//	| directory: chunk_count entries of offset u64 | length u32
//	  | crc u32 | exact_count u32
//	| footer: directory offset u64 | directory crc u32 | "NMK2EOF\n"
//
// The directory lives at the end so the encoder can stream sections out
// as chunks finish, without backpatching; readers find it through the
// fixed-size footer.
var magicDeltaV2 = []byte("NMRKD2")

// DefaultChunkPoints is the chunk granularity used when a caller does
// not pick one: 256 Ki points = 2 MiB of float64 per chunk buffer.
const DefaultChunkPoints = 1 << 18

const (
	dirEntrySize = 20
	footerSize   = 20
)

var footerMagic = []byte("NMK2EOF\n")

// dirEntry locates one chunk's section in the file.
type dirEntry struct {
	off        int64  // absolute file offset of the section
	length     uint32 // section length in bytes
	crc        uint32 // CRC-32 (IEEE) of the section bytes
	exactCount uint32 // incompressible points in the chunk
}

// ChunkError reports a problem confined to one chunk of a v2 file:
// which chunk, and where its section starts in the file. It wraps
// ErrCorrupt.
type ChunkError struct {
	Chunk  int   // chunk index
	Offset int64 // byte offset of the chunk's section in the file
	Err    error
}

// Error implements the error interface, locating the failure by chunk
// index and section byte offset.
func (e *ChunkError) Error() string {
	return fmt.Sprintf("chunk %d at byte offset %d: %v", e.Chunk, e.Offset, e.Err)
}

// Unwrap exposes the underlying cause (always wrapping ErrCorrupt) to
// errors.Is and errors.As.
func (e *ChunkError) Unwrap() error { return e.Err }

func chunkErr(i int, off int64, format string, args ...any) error {
	return &ChunkError{Chunk: i, Offset: off, Err: fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)}
}

// chunkCountFor returns ceil(n / chunkPoints).
func chunkCountFor(n, chunkPoints int) int {
	if n == 0 {
		return 0
	}
	return (n + chunkPoints - 1) / chunkPoints
}

// sectionSize returns the byte size of a chunk section holding np
// points with exactCount exact values at the given index width.
func sectionSize(np, exactCount, indexBits int) int {
	return bitpack.PackedLen(np, indexBits) + (np+7)/8 + 8*exactCount
}

// DeltaV2Writer streams a v2 delta checkpoint to an io.Writer, one
// chunk at a time. The header and bin table are written on creation,
// each AppendChunk emits one section, and Finish writes the directory
// and footer. Nothing is buffered beyond the directory (20 bytes per
// chunk, preallocated to the chunk count) and three reusable scratch
// buffers sized to one section, so encoding memory is independent of
// the data size and second-and-later chunks allocate nothing here.
// Not safe for concurrent use; the pipeline's ordered emitter is the
// single caller.
type DeltaV2Writer struct {
	w           io.Writer
	off         int64
	n           int
	chunkPoints int
	indexBits   int
	binCount    int
	dir         []dirEntry
	pointsSeen  int
	finished    bool
	rec         *obs.Recorder

	packBuf []byte         // reused by bitpack.PackInto
	bitmap  bitpack.Bitmap // reused incompressible-flag bitmap
	section []byte         // reused section assembly buffer
}

// NewDeltaV2Writer writes the v2 header and bin table and returns a
// writer ready to receive chunk sections. n is the total point count;
// chunkPoints the points per chunk (every chunk except the last must
// have exactly chunkPoints points); opt must be valid for encoding.
func NewDeltaV2Writer(w io.Writer, variable string, iteration, n int, opt core.Options, binRatios []float64, chunkPoints int) (*DeltaV2Writer, error) {
	vopt, err := opt.Validate()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("checkpoint: negative point count %d", n)
	}
	if chunkPoints < 1 {
		return nil, fmt.Errorf("checkpoint: chunk points must be >= 1, got %d", chunkPoints)
	}
	if len(binRatios) > vopt.NumBins() {
		return nil, fmt.Errorf("checkpoint: %d bin ratios exceed 2^%d-1", len(binRatios), vopt.IndexBits)
	}
	table := appendFloats(nil, binRatios)
	hdr := fileHeader{
		Variable:    variable,
		Iteration:   iteration,
		N:           n,
		IndexBits:   vopt.IndexBits,
		ErrorBound:  vopt.ErrorBound,
		Strategy:    vopt.Strategy.String(),
		BinCount:    len(binRatios),
		ChunkPoints: chunkPoints,
		ChunkCount:  chunkCountFor(n, chunkPoints),
	}
	rec := vopt.Obs
	cw := &countingWriter{w: w}
	// writeFile computes hdr.CRC over the "payload", which for v2 is
	// the bin table; the chunk sections carry their own CRCs.
	t := rec.Start()
	err = writeFile(cw, magicDeltaV2, hdr, table)
	t.Stop(obs.StageWrite)
	if err != nil {
		return nil, err
	}
	rec.Add(obs.CounterBytesWritten, cw.n)
	return &DeltaV2Writer{
		w:           w,
		off:         cw.n,
		n:           n,
		chunkPoints: chunkPoints,
		indexBits:   vopt.IndexBits,
		binCount:    len(binRatios),
		dir:         make([]dirEntry, 0, hdr.ChunkCount),
		rec:         rec,
	}, nil
}

// countingWriter tracks bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// AppendChunk writes the section for the next chunk: its per-point
// index values, incompressible flags, and the exact values of the
// flagged points in point order. len(indices) must be chunkPoints
// (or the final short remainder).
func (w *DeltaV2Writer) AppendChunk(indices []uint32, incompressible []bool, exact []float64) error {
	if w.finished {
		return fmt.Errorf("checkpoint: append after Finish")
	}
	np := len(indices)
	want := w.chunkPoints
	if rem := w.n - w.pointsSeen; rem < want {
		want = rem
	}
	if np != want {
		return fmt.Errorf("checkpoint: chunk %d has %d points, want %d", len(w.dir), np, want)
	}
	if len(incompressible) != np {
		return fmt.Errorf("checkpoint: chunk %d: %d incompressible flags for %d points", len(w.dir), len(incompressible), np)
	}
	t := w.rec.Start()
	packed, err := bitpack.PackInto(indices, w.indexBits, w.packBuf)
	t.Stop(obs.StageBitpack)
	if err != nil {
		return fmt.Errorf("checkpoint: pack chunk %d: %w", len(w.dir), err)
	}
	w.packBuf = packed
	w.bitmap.Reset(np)
	nExact := 0
	for j, inc := range incompressible {
		if inc {
			w.bitmap.Set(j, true)
			nExact++
		}
	}
	if nExact != len(exact) {
		return fmt.Errorf("checkpoint: chunk %d flags %d incompressible points, %d exact values supplied", len(w.dir), nExact, len(exact))
	}
	if need := sectionSize(np, nExact, w.indexBits); cap(w.section) < need {
		w.section = make([]byte, 0, need)
	}
	section := w.section[:0]
	section = append(section, packed...)
	section = append(section, w.bitmap.Bytes()...)
	section = appendFloats(section, exact)
	w.section = section[:0]
	if len(section) > math.MaxUint32 {
		return fmt.Errorf("checkpoint: chunk section of %d bytes exceeds format limit", len(section))
	}
	t = w.rec.Start()
	crc := crc32.ChecksumIEEE(section)
	t.Stop(obs.StageCRC)
	t = w.rec.Start()
	_, werr := w.w.Write(section)
	t.Stop(obs.StageWrite)
	if werr != nil {
		return werr
	}
	w.rec.Add(obs.CounterBytesWritten, int64(len(section)))
	w.rec.Add(obs.CounterSectionBytes, int64(len(section)))
	w.rec.Add(obs.CounterChunksEncoded, 1)
	w.dir = append(w.dir, dirEntry{
		off: w.off,
		//lint:ignore bindex len(section) <= math.MaxUint32 checked above
		length: uint32(len(section)),
		crc:    crc,
		//lint:ignore bindex the section holds 8 bytes per exact value and is <= math.MaxUint32 checked above
		exactCount: uint32(nExact),
	})
	w.off += int64(len(section))
	w.pointsSeen += np
	return nil
}

// Finish writes the chunk directory and footer. Every point must have
// been appended.
func (w *DeltaV2Writer) Finish() error {
	if w.finished {
		return fmt.Errorf("checkpoint: Finish called twice")
	}
	if w.pointsSeen != w.n {
		return fmt.Errorf("checkpoint: %d of %d points appended at Finish", w.pointsSeen, w.n)
	}
	w.finished = true
	dir := make([]byte, 0, len(w.dir)*dirEntrySize+footerSize)
	for _, e := range w.dir {
		var buf [dirEntrySize]byte
		binary.LittleEndian.PutUint64(buf[0:], uint64(e.off))
		binary.LittleEndian.PutUint32(buf[8:], e.length)
		binary.LittleEndian.PutUint32(buf[12:], e.crc)
		binary.LittleEndian.PutUint32(buf[16:], e.exactCount)
		dir = append(dir, buf[:]...)
	}
	t := w.rec.Start()
	dirCRC := crc32.ChecksumIEEE(dir)
	t.Stop(obs.StageCRC)
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(w.off))
	binary.LittleEndian.PutUint32(foot[8:], dirCRC)
	copy(foot[12:], footerMagic)
	dir = append(dir, foot[:]...)
	t = w.rec.Start()
	_, err := w.w.Write(dir)
	t.Stop(obs.StageWrite)
	w.rec.Add(obs.CounterBytesWritten, int64(len(dir)))
	return err
}

// ExactTotal returns the incompressible points appended so far.
func (w *DeltaV2Writer) ExactTotal() int {
	t := 0
	for _, e := range w.dir {
		t += int(e.exactCount)
	}
	return t
}

// DeltaV2Meta is the header metadata of a v2 delta checkpoint.
type DeltaV2Meta struct {
	Variable    string
	Iteration   int
	N           int
	Opt         core.Options
	BinRatios   []float64
	ChunkPoints int
	ChunkCount  int
}

// DeltaV2Reader reads a v2 delta checkpoint through an io.ReaderAt,
// giving random access to individual chunks for parallel or partial
// decode. It validates the header, bin table, and directory up front;
// chunk sections are CRC-checked lazily as they are read.
type DeltaV2Reader struct {
	r    io.ReaderAt
	meta DeltaV2Meta
	dir  []dirEntry
	rec  *obs.Recorder
}

// SetRecorder attaches an instrumentation recorder: subsequent chunk
// reads report section read/CRC/unpack timings, byte counts, and
// decode timings into it. A nil recorder (the default) keeps every
// site a no-op. Not safe to call concurrently with chunk reads.
func (d *DeltaV2Reader) SetRecorder(rec *obs.Recorder) { d.rec = rec }

// IsDeltaV2 reports whether raw starts like a v2 delta checkpoint.
func IsDeltaV2(raw []byte) bool { return bytes.HasPrefix(raw, magicDeltaV2) }

// OpenDeltaV2 parses the header, bin table, and chunk directory of a v2
// delta checkpoint of the given total size.
func OpenDeltaV2(r io.ReaderAt, size int64) (*DeltaV2Reader, error) {
	headMax := int64(len(magicDeltaV2) + 4)
	if size < headMax+footerSize {
		return nil, truncatedErr("%d bytes is shorter than a v2 file", size)
	}
	head := make([]byte, headMax)
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, readErr("header", err)
	}
	if !bytes.Equal(head[:len(magicDeltaV2)], magicDeltaV2) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, head[:len(magicDeltaV2)])
	}
	hlen := int64(binary.LittleEndian.Uint32(head[len(magicDeltaV2):]))
	if hlen < 2 || hlen > size-headMax-footerSize {
		return nil, fmt.Errorf("%w: header length %d", ErrCorrupt, hlen)
	}
	hj := make([]byte, hlen)
	if _, err := r.ReadAt(hj, headMax); err != nil {
		return nil, readErr("header", err)
	}
	var hdr fileHeader
	if err := json.Unmarshal(hj, &hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %w", ErrCorrupt, err)
	}

	if hdr.N < 0 || hdr.BinCount < 0 {
		return nil, fmt.Errorf("%w: implausible counts n=%d bins=%d", ErrCorrupt, hdr.N, hdr.BinCount)
	}
	if hdr.IndexBits < 1 || hdr.IndexBits > core.MaxIndexBits {
		return nil, fmt.Errorf("%w: index bits %d", ErrCorrupt, hdr.IndexBits)
	}
	if hdr.BinCount >= 1<<uint(hdr.IndexBits) {
		return nil, fmt.Errorf("%w: %d bins exceed 2^%d-1", ErrCorrupt, hdr.BinCount, hdr.IndexBits)
	}
	strategy, err := core.ParseStrategy(hdr.Strategy)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	opt, err := core.Options{
		ErrorBound: hdr.ErrorBound,
		IndexBits:  hdr.IndexBits,
		Strategy:   strategy,
	}.Validate()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	if hdr.ChunkPoints < 1 || hdr.ChunkCount != chunkCountFor(hdr.N, hdr.ChunkPoints) {
		return nil, fmt.Errorf("%w: %d points in %d chunks of %d", ErrCorrupt, hdr.N, hdr.ChunkCount, hdr.ChunkPoints)
	}

	// Bin table, covered by the header CRC.
	tableOff := headMax + hlen
	tableLen := int64(8 * hdr.BinCount)
	if tableOff+tableLen > size-footerSize {
		return nil, fmt.Errorf("%w: bin table of %d bytes overruns file", ErrCorrupt, tableLen)
	}
	table := make([]byte, tableLen)
	if _, err := r.ReadAt(table, tableOff); err != nil {
		return nil, readErr("bin table", err)
	}
	if crc := crc32.ChecksumIEEE(table); crc != hdr.CRC {
		return nil, fmt.Errorf("%w: bin table CRC %08x, header says %08x", ErrCorrupt, crc, hdr.CRC)
	}
	bins := readFloats(table, hdr.BinCount)
	for i, b := range bins {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("%w: non-finite bin ratio at %d", ErrCorrupt, i)
		}
	}

	// Footer → directory.
	foot := make([]byte, footerSize)
	if _, err := r.ReadAt(foot, size-footerSize); err != nil {
		return nil, readErr("footer", err)
	}
	if !bytes.Equal(foot[12:], footerMagic) {
		return nil, fmt.Errorf("%w: bad footer magic %q", ErrCorrupt, foot[12:])
	}
	dirOff := binary.LittleEndian.Uint64(foot[0:])
	dirLen := int64(hdr.ChunkCount) * dirEntrySize
	if dirOff > math.MaxInt64 || int64(dirOff) != size-footerSize-dirLen || int64(dirOff) < tableOff+tableLen {
		return nil, fmt.Errorf("%w: directory offset %d in a %d-byte file with %d chunks", ErrCorrupt, dirOff, size, hdr.ChunkCount)
	}
	dirRaw := make([]byte, dirLen)
	if _, err := r.ReadAt(dirRaw, int64(dirOff)); err != nil {
		return nil, readErr("directory", err)
	}
	if crc := crc32.ChecksumIEEE(dirRaw); crc != binary.LittleEndian.Uint32(foot[8:]) {
		return nil, fmt.Errorf("%w: directory CRC %08x, footer says %08x", ErrCorrupt, crc, binary.LittleEndian.Uint32(foot[8:]))
	}

	// Sections must tile [table end, directory start) exactly in chunk
	// order; a directory whose offsets or lengths disagree with the
	// per-chunk point counts is lying about the layout.
	dir := make([]dirEntry, hdr.ChunkCount)
	expectOff := tableOff + tableLen
	for i := range dir {
		e := dirRaw[i*dirEntrySize:]
		off := binary.LittleEndian.Uint64(e[0:])
		length := binary.LittleEndian.Uint32(e[8:])
		exact := binary.LittleEndian.Uint32(e[16:])
		np := chunkPointsAt(hdr.N, hdr.ChunkPoints, i)
		if off > math.MaxInt64 || int64(off) != expectOff {
			return nil, fmt.Errorf("%w: chunk %d section at offset %d, expected %d", ErrCorrupt, i, off, expectOff)
		}
		if int(exact) > np {
			return nil, fmt.Errorf("%w: chunk %d claims %d exact values for %d points", ErrCorrupt, i, exact, np)
		}
		if want := sectionSize(np, int(exact), hdr.IndexBits); int(length) != want {
			return nil, fmt.Errorf("%w: chunk %d section length %d, want %d", ErrCorrupt, i, length, want)
		}
		dir[i] = dirEntry{
			off:        int64(off),
			length:     length,
			crc:        binary.LittleEndian.Uint32(e[12:]),
			exactCount: exact,
		}
		expectOff += int64(length)
	}
	if expectOff != int64(dirOff) {
		return nil, fmt.Errorf("%w: sections end at %d, directory starts at %d", ErrCorrupt, expectOff, dirOff)
	}

	return &DeltaV2Reader{
		r: r,
		meta: DeltaV2Meta{
			Variable:    hdr.Variable,
			Iteration:   hdr.Iteration,
			N:           hdr.N,
			Opt:         opt,
			BinRatios:   bins,
			ChunkPoints: hdr.ChunkPoints,
			ChunkCount:  hdr.ChunkCount,
		},
		dir: dir,
	}, nil
}

// chunkPointsAt returns the point count of chunk i.
func chunkPointsAt(n, chunkPoints, i int) int {
	start := i * chunkPoints
	if rem := n - start; rem < chunkPoints {
		return rem
	}
	return chunkPoints
}

// Meta returns the checkpoint's header metadata.
func (d *DeltaV2Reader) Meta() DeltaV2Meta { return d.meta }

// ChunkSpan returns the half-open point range [start, start+np) covered
// by chunk i.
func (d *DeltaV2Reader) ChunkSpan(i int) (start, np int) {
	return i * d.meta.ChunkPoints, chunkPointsAt(d.meta.N, d.meta.ChunkPoints, i)
}

// ChunkPayload is the parsed section of one chunk.
type ChunkPayload struct {
	Indices        []uint32
	Incompressible *bitpack.Bitmap
	Exact          []float64
}

// ReadChunk reads, CRC-checks, and parses chunk i's section. CRC or
// structure failures come back as a *ChunkError naming the chunk and
// its byte offset, so corruption is localized instead of condemning
// the whole file. The returned payload is freshly allocated; hot loops
// should hold a ChunkDecoder instead and reuse its scratch.
func (d *DeltaV2Reader) ReadChunk(i int) (*ChunkPayload, error) {
	p, err := d.NewChunkDecoder().ReadChunk(i)
	if err != nil {
		return nil, err
	}
	// Detach from the (about to be garbage) decoder scratch so the
	// payload is safe to retain.
	out := *p
	return &out, nil
}

// DecodeChunkInto reconstructs chunk i into dst given the previous
// iteration's values for the same point range. len(prev) and len(dst)
// must both equal the chunk's point count.
func (d *DeltaV2Reader) DecodeChunkInto(i int, prev, dst []float64) error {
	return d.NewChunkDecoder().DecodeChunkInto(i, prev, dst)
}

// ChunkDecoder reads and decodes chunks of one DeltaV2Reader through
// reusable scratch buffers (section bytes, unpacked indices, the
// incompressible bitmap, exact values), so a steady-state decode loop
// allocates nothing per chunk. Each worker of a parallel decode owns
// one; a decoder is not safe for concurrent use. Payloads returned by
// ReadChunk alias the scratch and are valid only until the next call.
type ChunkDecoder struct {
	d       *DeltaV2Reader
	section []byte
	indices []uint32
	bitmap  bitpack.Bitmap
	exact   []float64
	payload ChunkPayload
}

// NewChunkDecoder returns a decoder with empty scratch; buffers grow to
// one chunk's size on first use and are reused after that.
func (d *DeltaV2Reader) NewChunkDecoder() *ChunkDecoder {
	return &ChunkDecoder{d: d}
}

// ReadChunk is DeltaV2Reader.ReadChunk through the decoder's scratch.
// The payload aliases that scratch: it is invalidated by the next
// ReadChunk or DecodeChunkInto call on this decoder.
func (c *ChunkDecoder) ReadChunk(i int) (*ChunkPayload, error) {
	d := c.d
	if i < 0 || i >= len(d.dir) {
		return nil, fmt.Errorf("checkpoint: chunk %d out of range [0,%d)", i, len(d.dir))
	}
	ent := d.dir[i]
	_, np := d.ChunkSpan(i)
	if cap(c.section) < int(ent.length) {
		c.section = make([]byte, ent.length)
	}
	section := c.section[:ent.length]
	t := d.rec.Start()
	_, rerr := d.r.ReadAt(section, ent.off)
	t.Stop(obs.StageRead)
	if rerr != nil {
		return nil, chunkErr(i, ent.off, "read section: %v", rerr)
	}
	d.rec.Add(obs.CounterBytesRead, int64(len(section)))
	d.rec.Add(obs.CounterSectionBytes, int64(len(section)))
	t = d.rec.Start()
	crc := crc32.ChecksumIEEE(section)
	t.Stop(obs.StageCRC)
	if crc != ent.crc {
		return nil, chunkErr(i, ent.off, "section CRC %08x, directory says %08x", crc, ent.crc)
	}
	idxBytes := bitpack.PackedLen(np, d.meta.Opt.IndexBits)
	mapBytes := (np + 7) / 8
	t = d.rec.Start()
	indices, err := bitpack.UnpackInto(section[:idxBytes], np, d.meta.Opt.IndexBits, c.indices)
	t.Stop(obs.StageBitpack)
	if err != nil {
		return nil, chunkErr(i, ent.off, "%v", err)
	}
	c.indices = indices
	if err := c.bitmap.LoadBytes(section[idxBytes:idxBytes+mapBytes], np); err != nil {
		return nil, chunkErr(i, ent.off, "%v", err)
	}
	c.exact = readFloatsInto(section[idxBytes+mapBytes:], int(ent.exactCount), c.exact)
	if c.bitmap.Count() != int(ent.exactCount) {
		return nil, chunkErr(i, ent.off, "bitmap flags %d points, %d exact values stored", c.bitmap.Count(), ent.exactCount)
	}
	for j, idx := range indices {
		if int(idx) > len(d.meta.BinRatios) {
			return nil, chunkErr(i, ent.off, "index %d at point %d exceeds bin count %d", idx, j, len(d.meta.BinRatios))
		}
	}
	c.payload = ChunkPayload{Indices: indices, Incompressible: &c.bitmap, Exact: c.exact}
	return &c.payload, nil
}

// DecodeChunkInto is DeltaV2Reader.DecodeChunkInto through the
// decoder's scratch: reconstructs chunk i into dst given the previous
// iteration's values for the same point range. len(prev) and len(dst)
// must both equal the chunk's point count.
func (c *ChunkDecoder) DecodeChunkInto(i int, prev, dst []float64) error {
	d := c.d
	_, np := d.ChunkSpan(i)
	if len(prev) != np || len(dst) != np {
		return fmt.Errorf("checkpoint: chunk %d has %d points, got prev=%d dst=%d", i, np, len(prev), len(dst))
	}
	p, err := c.ReadChunk(i)
	if err != nil {
		return err
	}
	t := d.rec.Start()
	exactIdx := 0
	for j := 0; j < np; j++ {
		if p.Incompressible.Get(j) {
			dst[j] = p.Exact[exactIdx]
			exactIdx++
			continue
		}
		idx := p.Indices[j]
		if idx == 0 {
			dst[j] = prev[j] // unchanged within tolerance
			continue
		}
		dst[j] = prev[j] * (1 + d.meta.BinRatios[idx-1])
	}
	t.Stop(obs.StageDecode)
	d.rec.Add(obs.CounterChunksDecoded, 1)
	return nil
}

// Decode reconstructs all points from prev, fanning chunks out over
// `workers` goroutines (<= 0 means one per chunk up to GOMAXPROCS-style
// default handled by the caller). Chunks write disjoint ranges of the
// output, so no synchronization beyond the WaitGroup is needed.
func (d *DeltaV2Reader) Decode(prev []float64, workers int) ([]float64, error) {
	if len(prev) != d.meta.N {
		return nil, fmt.Errorf("%w: prev has %d points, encoded has %d", core.ErrLength, len(prev), d.meta.N)
	}
	out := make([]float64, d.meta.N)
	m := d.meta.ChunkCount
	if workers <= 0 || workers > m {
		workers = m
	}
	if m == 0 {
		return out, nil
	}
	// Chunks decode fully independently off the directory: workers claim
	// indices from an atomic counter (no job channel to contend on) and
	// write disjoint output ranges through per-worker decoder scratch,
	// so the steady state allocates nothing and completion order does
	// not matter.
	errs := make([]error, m)
	var next atomic.Int64
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			dec := d.NewChunkDecoder()
			for {
				i := int(next.Add(1)) - 1
				if i >= m {
					return
				}
				start, np := d.ChunkSpan(i)
				errs[i] = dec.DecodeChunkInto(i, prev[start:start+np], out[start:start+np])
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	d.rec.Add(obs.CounterDecodes, 1)
	d.rec.Add(obs.CounterPointsDecoded, int64(d.meta.N))
	d.rec.SetMax(obs.GaugeWorkers, int64(workers))
	return out, nil
}

// DecodeRange reconstructs only the points [lo, hi), reading just the
// chunks that overlap it — the cheap partial reconstruction the chunked
// layout exists for. prevRange holds the previous iteration's values
// for exactly that range.
func (d *DeltaV2Reader) DecodeRange(prevRange []float64, lo, hi int) ([]float64, error) {
	if lo < 0 || hi > d.meta.N || lo > hi {
		return nil, fmt.Errorf("checkpoint: range [%d,%d) outside [0,%d)", lo, hi, d.meta.N)
	}
	if len(prevRange) != hi-lo {
		return nil, fmt.Errorf("%w: prev range has %d points, want %d", core.ErrLength, len(prevRange), hi-lo)
	}
	out := make([]float64, hi-lo)
	if lo == hi {
		return out, nil
	}
	cp := d.meta.ChunkPoints
	for i := lo / cp; i*cp < hi; i++ {
		start, np := d.ChunkSpan(i)
		p, err := d.ReadChunk(i)
		if err != nil {
			return nil, err
		}
		exactIdx := 0
		for j := 0; j < np; j++ {
			g := start + j // global point index
			inc := p.Incompressible.Get(j)
			if g < lo || g >= hi {
				if inc {
					exactIdx++
				}
				continue
			}
			switch {
			case inc:
				out[g-lo] = p.Exact[exactIdx]
				exactIdx++
			case p.Indices[j] == 0:
				out[g-lo] = prevRange[g-lo]
			default:
				out[g-lo] = prevRange[g-lo] * (1 + d.meta.BinRatios[p.Indices[j]-1])
			}
		}
	}
	return out, nil
}

// Encoded assembles the whole file back into an in-memory core.Encoded
// (the v1-compatible view, used by inspect and the store's restart
// path).
func (d *DeltaV2Reader) Encoded() (*core.Encoded, error) {
	enc := &core.Encoded{
		Opt:            d.meta.Opt,
		N:              d.meta.N,
		BinRatios:      d.meta.BinRatios,
		Indices:        make([]uint32, d.meta.N),
		Incompressible: bitpack.NewBitmap(d.meta.N),
	}
	for i := 0; i < d.meta.ChunkCount; i++ {
		start, np := d.ChunkSpan(i)
		p, err := d.ReadChunk(i)
		if err != nil {
			return nil, err
		}
		copy(enc.Indices[start:start+np], p.Indices)
		for j := 0; j < np; j++ {
			if p.Incompressible.Get(j) {
				enc.Incompressible.Set(start+j, true)
			}
		}
		enc.Exact = append(enc.Exact, p.Exact...)
	}
	return enc, nil
}

// MarshalDeltaV2 serializes an in-memory encoding into the v2 chunked
// format with the given chunk granularity (<= 0 means
// DefaultChunkPoints).
func MarshalDeltaV2(variable string, iteration int, enc *core.Encoded, chunkPoints int) ([]byte, error) {
	if chunkPoints <= 0 {
		chunkPoints = DefaultChunkPoints
	}
	var buf bytes.Buffer
	w, err := NewDeltaV2Writer(&buf, variable, iteration, enc.N, enc.Opt, enc.BinRatios, chunkPoints)
	if err != nil {
		return nil, err
	}
	exactOff := 0
	for start := 0; start < enc.N; start += chunkPoints {
		np := chunkPointsAt(enc.N, chunkPoints, start/chunkPoints)
		inc := make([]bool, np)
		nExact := 0
		for j := 0; j < np; j++ {
			if enc.Incompressible.Get(start + j) {
				inc[j] = true
				nExact++
			}
		}
		if exactOff+nExact > len(enc.Exact) {
			return nil, fmt.Errorf("checkpoint: encoding flags more exact values than stored (%d)", len(enc.Exact))
		}
		err := w.AppendChunk(enc.Indices[start:start+np], inc, enc.Exact[exactOff:exactOff+nExact])
		if err != nil {
			return nil, err
		}
		exactOff += nExact
	}
	if exactOff != len(enc.Exact) {
		return nil, fmt.Errorf("checkpoint: %d exact values stored, %d consumed", len(enc.Exact), exactOff)
	}
	if err := w.Finish(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalDeltaV2 parses a v2 delta checkpoint held fully in memory.
func UnmarshalDeltaV2(raw []byte) (variable string, iteration int, enc *core.Encoded, err error) {
	d, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return "", 0, nil, err
	}
	enc, err = d.Encoded()
	if err != nil {
		return "", 0, nil, err
	}
	return d.meta.Variable, d.meta.Iteration, enc, nil
}

// DeltaV1Assembler builds a v1 delta file incrementally from chunk
// results, carrying the packed index stream across chunk boundaries
// with a bitpack.Packer so the final bytes are identical to
// MarshalDelta of the equivalent in-memory encoding. Only the
// compressed payload is buffered (indices at B bits per point, the
// bitmap, and the exact values), never the raw data, so a streaming
// encode can emit the backward-compatible format while staying far
// under the input size in memory.
type DeltaV1Assembler struct {
	variable   string
	iteration  int
	n          int
	opt        core.Options
	binRatios  []float64
	packer     *bitpack.Packer
	packed     bytes.Buffer
	bitmap     *bitpack.Bitmap
	exact      []float64
	pointsSeen int
	rec        *obs.Recorder
}

// NewDeltaV1Assembler prepares an assembler for n points encoded under
// opt with the given learned bin table.
func NewDeltaV1Assembler(variable string, iteration, n int, opt core.Options, binRatios []float64) (*DeltaV1Assembler, error) {
	vopt, err := opt.Validate()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("checkpoint: negative point count %d", n)
	}
	if len(binRatios) > vopt.NumBins() {
		return nil, fmt.Errorf("checkpoint: %d bin ratios exceed 2^%d-1", len(binRatios), vopt.IndexBits)
	}
	p, err := bitpack.NewPacker(vopt.IndexBits)
	if err != nil {
		return nil, err
	}
	return &DeltaV1Assembler{
		variable:  variable,
		iteration: iteration,
		n:         n,
		opt:       vopt,
		binRatios: binRatios,
		packer:    p,
		bitmap:    bitpack.NewBitmap(n),
		rec:       vopt.Obs,
	}, nil
}

// AppendChunk adds the next chunk's assignment results. Chunks of any
// size may be appended; the index stream continues bit-exactly across
// the boundary.
func (a *DeltaV1Assembler) AppendChunk(indices []uint32, incompressible []bool, exact []float64) error {
	if len(incompressible) != len(indices) {
		return fmt.Errorf("checkpoint: %d incompressible flags for %d points", len(incompressible), len(indices))
	}
	if a.pointsSeen+len(indices) > a.n {
		return fmt.Errorf("checkpoint: %d points appended to a %d-point assembler", a.pointsSeen+len(indices), a.n)
	}
	t := a.rec.Start()
	if err := a.packer.AppendAll(indices); err != nil {
		t.Stop(obs.StageBitpack)
		return err
	}
	a.packed.Write(a.packer.Drain())
	t.Stop(obs.StageBitpack)
	a.rec.Add(obs.CounterChunksEncoded, 1)
	nExact := 0
	for j, inc := range incompressible {
		if inc {
			a.bitmap.Set(a.pointsSeen+j, true)
			nExact++
		}
	}
	if nExact != len(exact) {
		return fmt.Errorf("checkpoint: chunk flags %d incompressible points, %d exact values supplied", nExact, len(exact))
	}
	a.exact = append(a.exact, exact...)
	a.pointsSeen += len(indices)
	return nil
}

// Bytes finalizes and returns the complete v1 file.
func (a *DeltaV1Assembler) Bytes() ([]byte, error) {
	if a.pointsSeen != a.n {
		return nil, fmt.Errorf("checkpoint: %d of %d points appended", a.pointsSeen, a.n)
	}
	t := a.rec.Start()
	a.packed.Write(a.packer.Close())
	payload := make([]byte, 0, 8*len(a.binRatios)+a.packed.Len()+len(a.bitmap.Bytes())+8*len(a.exact))
	payload = appendFloats(payload, a.binRatios)
	payload = append(payload, a.packed.Bytes()...)
	payload = append(payload, a.bitmap.Bytes()...)
	payload = appendFloats(payload, a.exact)

	var buf bytes.Buffer
	err := writeFile(&buf, magicDelta, fileHeader{
		Variable:   a.variable,
		Iteration:  a.iteration,
		N:          a.n,
		IndexBits:  a.opt.IndexBits,
		ErrorBound: a.opt.ErrorBound,
		Strategy:   a.opt.Strategy.String(),
		BinCount:   len(a.binRatios),
		ExactCount: len(a.exact),
	}, payload)
	if err != nil {
		t.Stop(obs.StageWrite)
		return nil, err
	}
	t.Stop(obs.StageWrite)
	a.rec.Add(obs.CounterBytesWritten, int64(buf.Len()))
	return buf.Bytes(), nil
}
