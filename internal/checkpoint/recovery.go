package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strings"

	"numarck/internal/faultfs"
	"numarck/internal/obs"
)

// RecoveryReport summarizes what the Open-time recovery scan found and
// did. A clean reopen after a graceful shutdown has every slice empty
// and TornJournalTail false.
type RecoveryReport struct {
	// Scanned is the number of checkpoint files examined.
	Scanned int
	// Adopted lists committed files the journal had no record of (the
	// crash window between rename and journal append); the scan
	// validated and re-recorded them.
	Adopted []string
	// Quarantined lists torn or corrupt files moved to quarantine/.
	Quarantined []string
	// TempsRemoved lists leftover atomic-write temporaries (.tmp) from
	// interrupted writes, deleted by the scan.
	TempsRemoved []string
	// Missing lists journaled files absent from the directory; their
	// records were dropped.
	Missing []string
	// TornJournalTail reports that the journal's final record was torn
	// by a crash mid-append (the record is ignored; the affected file,
	// if committed, is re-adopted).
	TornJournalTail bool
}

// Clean reports whether the scan found nothing to repair.
func (r *RecoveryReport) Clean() bool {
	return r == nil || (len(r.Adopted) == 0 && len(r.Quarantined) == 0 &&
		len(r.TempsRemoved) == 0 && len(r.Missing) == 0 && !r.TornJournalTail)
}

// String renders the report as a one-line summary.
func (r *RecoveryReport) String() string {
	if r.Clean() {
		return fmt.Sprintf("clean (%d files)", r.scannedCount())
	}
	return fmt.Sprintf("%d files: %d adopted, %d quarantined, %d temps removed, %d missing, torn journal tail %v",
		r.scannedCount(), len(r.Adopted), len(r.Quarantined), len(r.TempsRemoved), len(r.Missing), r.TornJournalTail)
}

// scannedCount is Scanned on a possibly-nil report.
func (r *RecoveryReport) scannedCount() int {
	if r == nil {
		return 0
	}
	return r.Scanned
}

// recoverScan reconciles the MANIFEST journal with the directory
// contents. It never fails the store for a bad checkpoint file: torn
// and corrupt files are quarantined, uncommitted temporaries removed,
// committed-but-unjournaled files adopted, and journaled-but-missing
// files dropped from the journal. Only filesystem-level failures (the
// scan itself cannot read the directory or move a file) are errors.
//
// The scan leaves the store's in-memory chain loaded with the
// reconciled live file set, and finishes by validating the CHAININDEX
// against the journal: a fresh index is adopted, a missing, stale, or
// corrupt one is rebuilt from the chain and republished (counted in
// index_rebuilds).
func (st *Store) recoverScan() (*RecoveryReport, error) {
	report := &RecoveryReport{}
	// A store with no journal at all is a legacy layout: every file
	// lands in the adoption path below and the journal gets built.
	journal, exists, tornTail, err := replayJournal(st.fs, st.dir)
	if err != nil {
		return nil, err
	}
	if journal == nil {
		journal = map[string]journalEntry{}
	}
	if !exists {
		// Seed the journal file now: the chain index (and read views)
		// anchor their freshness to it, so it must exist even for an
		// adopted legacy store with no checkpoint files yet.
		if err := seedJournal(st.fs, st.dir); err != nil {
			return nil, err
		}
	}
	report.TornJournalTail = tornTail
	if tornTail {
		// Appending after a torn line would concatenate into it; compact
		// the journal to its live entries before the scan adds records.
		if err := rewriteJournal(st.fs, st.dir, journal); err != nil {
			return nil, err
		}
	}

	entries, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return nil, pathErr("scan", st.dir, err)
	}
	torn := 0
	onDisk := map[string]bool{}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || isStoreMetaFile(name) {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			// An atomic write that never reached its rename: the commit
			// did not happen, so the temp is garbage by construction.
			if err := st.fs.Remove(filepath.Join(st.dir, name)); err != nil {
				return nil, pathErr("remove temp", filepath.Join(st.dir, name), err)
			}
			report.TempsRemoved = append(report.TempsRemoved, name)
			torn++
			continue
		}
		e, ok := parseName(name)
		if !ok {
			continue // not a checkpoint file; leave it alone
		}
		report.Scanned++
		if verr := validateIdentity(e.Variable, e.Iteration); verr != nil {
			// A checkpoint-shaped name that violates the naming rules
			// (current writers reject such names before the filesystem
			// sees them) cannot be represented in the chain index;
			// quarantine it rather than carry it in the chain.
			if err := st.quarantine(name); err != nil {
				return nil, err
			}
			if _, journaled := journal[name]; journaled {
				if err := appendJournal(st.fs, st.dir, journalRecord{Op: "drop", Name: name}); err != nil {
					return nil, err
				}
				delete(journal, name)
			}
			report.Quarantined = append(report.Quarantined, name)
			continue
		}
		je, journaled := journal[name]
		switch {
		case journaled:
			// The journal records the committed length; a shorter file
			// is torn, any other mismatch is corruption. Content CRC is
			// deliberately not re-checked here (Open stays O(files), and
			// every read path CRC-checks anyway); Verify does the deep
			// cross-check.
			info, err := st.fs.Stat(filepath.Join(st.dir, name))
			if err != nil {
				return nil, pathErr("stat", filepath.Join(st.dir, name), err)
			}
			if info.Size() != je.Len {
				if info.Size() < je.Len {
					torn++
				}
				if err := st.quarantine(name); err != nil {
					return nil, err
				}
				if err := appendJournal(st.fs, st.dir, journalRecord{Op: "drop", Name: name}); err != nil {
					return nil, err
				}
				// Drop the replayed entry too, or the missing-file pass
				// below would report (and drop) it a second time.
				delete(journal, name)
				report.Quarantined = append(report.Quarantined, name)
				continue
			}
			onDisk[name] = true
		default:
			// Legacy store or the rename-vs-journal crash window: adopt
			// the file if it parses, quarantine it otherwise.
			raw, err := faultfs.ReadFile(st.fs, filepath.Join(st.dir, name))
			if err != nil {
				return nil, pathErr("read", filepath.Join(st.dir, name), err)
			}
			if perr := structuralCheck(raw); perr != nil {
				if errors.Is(perr, ErrTruncated) {
					torn++
				}
				if err := st.quarantine(name); err != nil {
					return nil, err
				}
				report.Quarantined = append(report.Quarantined, name)
				continue
			}
			adopted := journalEntry{Len: int64(len(raw)), CRC: crc32.ChecksumIEEE(raw)}
			if err := appendJournal(st.fs, st.dir, journalRecord{
				Op: "add", Name: name, Len: adopted.Len, CRC: adopted.CRC,
			}); err != nil {
				return nil, err
			}
			journal[name] = adopted
			onDisk[name] = true
			report.Adopted = append(report.Adopted, name)
		}
	}
	// Journaled files that are gone from the directory: drop their
	// records so the journal converges back to the truth.
	var missing []string
	for name := range journal {
		if !onDisk[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		if err := appendJournal(st.fs, st.dir, journalRecord{Op: "drop", Name: name}); err != nil {
			return nil, err
		}
		delete(journal, name)
		report.Missing = append(report.Missing, name)
	}
	if !report.Clean() {
		if err := st.fs.SyncDir(st.dir); err != nil {
			return nil, pathErr("sync", st.dir, err)
		}
	}
	st.chain = journal
	if err := st.reconcileIndex(); err != nil {
		return nil, err
	}
	st.rec.Add(obs.CounterRecoveryScans, 1)
	st.rec.Add(obs.CounterTornFilesDetected, int64(torn))
	return report, nil
}

// reconcileIndex validates the on-disk CHAININDEX against the
// reconciled chain at the end of the recovery scan. An index that
// parses and is anchored to the journal's current state is adopted
// (its sequence continues); anything else — absent, corrupt, or stale,
// including the common case where the scan itself just appended repair
// records — is rebuilt from the in-memory chain and republished.
func (st *Store) reconcileIndex() error {
	tok, err := readJournalToken(st.fs, st.dir)
	if err != nil {
		return err
	}
	ix, ierr := loadIndex(st.fs, st.dir)
	if ierr == nil && ix != nil && ix.matches(tok) {
		st.indexSeq = ix.Seq
		return nil
	}
	if ix != nil {
		st.indexSeq = ix.Seq
	}
	st.rec.Add(obs.CounterIndexRebuilds, 1)
	return st.republishIndex()
}

// structuralCheck parses raw just deeply enough to know the file is a
// complete, internally consistent checkpoint: frame, header, and the
// CRC-covered regions (whole payload for v1, bin table and directory
// for v2 — a torn v2 file always fails here because its directory and
// footer live at the end).
func structuralCheck(raw []byte) error {
	switch {
	case bytes.HasPrefix(raw, magicFull):
		_, _, err := readFile(raw, magicFull)
		return err
	case IsDeltaV2(raw):
		_, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
		return err
	default:
		_, _, _, err := UnmarshalDelta(raw)
		return err
	}
}

// quarantine moves a bad checkpoint file into the quarantine/
// subdirectory, preserving it for inspection without letting it break
// the chain scan. An existing quarantined file of the same name is
// overwritten (rename semantics), which keeps quarantine idempotent.
func (st *Store) quarantine(name string) error {
	qdir := filepath.Join(st.dir, quarantineDir)
	if err := st.fs.MkdirAll(qdir, 0o755); err != nil {
		return pathErr("quarantine", qdir, err)
	}
	src := filepath.Join(st.dir, name)
	if err := st.fs.Rename(src, filepath.Join(qdir, name)); err != nil {
		return pathErr("quarantine", src, err)
	}
	return nil
}

// Quarantined lists the files currently held in quarantine/, sorted by
// name. An absent quarantine directory means none.
func (st *Store) Quarantined() ([]string, error) {
	qdir := filepath.Join(st.dir, quarantineDir)
	if _, err := st.fs.Stat(qdir); err != nil {
		return nil, nil
	}
	entries, err := st.fs.ReadDir(qdir)
	if err != nil {
		return nil, pathErr("list", qdir, err)
	}
	var out []string
	for _, de := range entries {
		if !de.IsDir() {
			out = append(out, de.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
