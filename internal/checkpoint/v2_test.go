package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"numarck/internal/bitpack"
	"numarck/internal/core"
)

// encodeTestData returns a small encoding with a mix of zero-index,
// binned, and incompressible points.
func encodeTestData(t *testing.T, n int) (*core.Encoded, []float64) {
	t.Helper()
	series := genSeries(n, 2, 11)
	enc, err := core.Encode(series[0], series[1], opts())
	if err != nil {
		t.Fatal(err)
	}
	return enc, series[0]
}

func TestMarshalDeltaV2RoundTrip(t *testing.T) {
	enc, prev := encodeTestData(t, 3000)
	// 700 does not divide 3000, so the last chunk is short; B=8 with
	// 700 points keeps sections byte-aligned but exercises the
	// remainder path.
	raw, err := MarshalDeltaV2("pres", 3, enc, 700)
	if err != nil {
		t.Fatal(err)
	}
	v, it, got, err := UnmarshalDeltaV2(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v != "pres" || it != 3 {
		t.Errorf("header = %s@%d", v, it)
	}
	if got.N != enc.N || len(got.Exact) != len(enc.Exact) {
		t.Fatalf("counts differ: n %d/%d exact %d/%d", got.N, enc.N, len(got.Exact), len(enc.Exact))
	}
	for i := range enc.Indices {
		if got.Indices[i] != enc.Indices[i] {
			t.Fatalf("index %d differs", i)
		}
		if got.Incompressible.Get(i) != enc.Incompressible.Get(i) {
			t.Fatalf("bitmap %d differs", i)
		}
	}
	for i := range enc.Exact {
		if math.Float64bits(got.Exact[i]) != math.Float64bits(enc.Exact[i]) {
			t.Fatalf("exact %d differs", i)
		}
	}

	// Reconstruction through the v2 reader matches v1 decode.
	want, err := enc.Decode(prev)
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		out, err := d.Decode(prev, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: point %d differs", workers, i)
			}
		}
	}
}

func TestDeltaV2DecodeRange(t *testing.T) {
	enc, prev := encodeTestData(t, 2500)
	raw, err := MarshalDeltaV2("v", 1, enc, 512)
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := enc.Decode(prev)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 2500}, {0, 1}, {511, 513}, {1000, 1000}, {2400, 2500}, {37, 1537}} {
		lo, hi := r[0], r[1]
		out, err := d.DecodeRange(prev[lo:hi], lo, hi)
		if err != nil {
			t.Fatalf("range [%d,%d): %v", lo, hi, err)
		}
		for i := range out {
			if math.Float64bits(out[i]) != math.Float64bits(want[lo+i]) {
				t.Fatalf("range [%d,%d): point %d differs", lo, hi, lo+i)
			}
		}
	}
	if _, err := d.DecodeRange(nil, -1, 4); err == nil {
		t.Fatal("negative range accepted")
	}
	if _, err := d.DecodeRange(nil, 0, 4); err == nil {
		t.Fatal("short prev range accepted")
	}
}

func TestDeltaV2EmptyAndSingleChunk(t *testing.T) {
	// Zero points.
	empty := &core.Encoded{Opt: mustValidate(t, opts()), N: 0, Incompressible: bitpack.NewBitmap(0)}
	raw, err := MarshalDeltaV2("v", 0, empty, 16)
	if err != nil {
		t.Fatal(err)
	}
	_, _, got, err := UnmarshalDeltaV2(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 0 {
		t.Fatalf("n = %d", got.N)
	}

	// chunkPoints larger than n: one chunk.
	enc, prev := encodeTestData(t, 300)
	raw, err = MarshalDeltaV2("v", 1, enc, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta().ChunkCount != 1 {
		t.Fatalf("chunk count = %d", d.Meta().ChunkCount)
	}
	out, err := d.Decode(prev, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := enc.Decode(prev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestDeltaV2CorruptionLocalized(t *testing.T) {
	enc, _ := encodeTestData(t, 3000)
	raw, err := MarshalDeltaV2("v", 1, enc, 700)
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside chunk 2's section.
	_, np := d.ChunkSpan(2)
	if np != 700 {
		t.Fatalf("chunk 2 has %d points", np)
	}
	bad := append([]byte(nil), raw...)
	bad[d.dir[2].off+5] ^= 0xff
	bd, err := OpenDeltaV2(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatalf("open should succeed, only chunk 2 is corrupt: %v", err)
	}
	// Untouched chunks still read.
	for _, i := range []int{0, 1, 3, 4} {
		if _, err := bd.ReadChunk(i); err != nil {
			t.Fatalf("chunk %d should be clean: %v", i, err)
		}
	}
	_, err = bd.ReadChunk(2)
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("want ChunkError, got %v", err)
	}
	if ce.Chunk != 2 || ce.Offset != d.dir[2].off {
		t.Fatalf("ChunkError = chunk %d offset %d, want 2 at %d", ce.Chunk, ce.Offset, d.dir[2].off)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatal("ChunkError should wrap ErrCorrupt")
	}
}

func TestDeltaV2TruncationAndLies(t *testing.T) {
	enc, _ := encodeTestData(t, 1200)
	raw, err := MarshalDeltaV2("v", 1, enc, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Every prefix truncation must error, never panic.
	for _, cut := range []int{0, 5, 9, 11, 40, len(raw) / 2, len(raw) - 21, len(raw) - 1} {
		if cut >= len(raw) {
			continue
		}
		if _, _, _, err := UnmarshalDeltaV2(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A directory offset pointing elsewhere must be rejected.
	d, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	lie := append([]byte(nil), raw...)
	// First directory entry's offset field: shift it by one byte.
	dirOff := int64(len(raw)) - footerSize - int64(d.Meta().ChunkCount)*dirEntrySize
	lie[dirOff] ^= 0x01
	if _, _, _, err := UnmarshalDeltaV2(lie); err == nil {
		t.Fatal("lying section offset accepted")
	}
}

func TestDeltaV1AssemblerMatchesMarshalDelta(t *testing.T) {
	enc, _ := encodeTestData(t, 2711)
	want, err := MarshalDelta("dens", 9, enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunkPoints := range []int{enc.N, 1000, 97, 1} {
		a, err := NewDeltaV1Assembler("dens", 9, enc.N, enc.Opt, enc.BinRatios)
		if err != nil {
			t.Fatal(err)
		}
		exactOff := 0
		for start := 0; start < enc.N; start += chunkPoints {
			end := start + chunkPoints
			if end > enc.N {
				end = enc.N
			}
			inc := make([]bool, end-start)
			nExact := 0
			for j := range inc {
				if enc.Incompressible.Get(start + j) {
					inc[j] = true
					nExact++
				}
			}
			err := a.AppendChunk(enc.Indices[start:end], inc, enc.Exact[exactOff:exactOff+nExact])
			if err != nil {
				t.Fatal(err)
			}
			exactOff += nExact
		}
		got, err := a.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("chunkPoints=%d: assembled v1 file differs from MarshalDelta", chunkPoints)
		}
	}
}

func TestStoreReadsAndVerifiesV2(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetDeltaFormat(2, 300); err != nil {
		t.Fatal(err)
	}
	series := genSeries(1000, 4, 5)
	w := NewWriter(st, 0)
	for i, data := range series {
		if _, err := w.Append(i, map[string][]float64{"dens": data}); err != nil {
			t.Fatal(err)
		}
	}
	// Restart replays v2 deltas transparently.
	got, err := st.Restart("dens", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("restart returned %d points", len(got))
	}
	issues, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("clean store has issues: %v", issues)
	}

	// Corrupt one chunk of one delta; Verify must name the chunk and
	// its byte offset.
	path := filepath.Join(dir, "dens.delta.000002.nmk")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	raw[d.dir[1].off] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	issues, err = st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	// The corrupt delta plus the chain break it causes downstream.
	if len(issues) == 0 {
		t.Fatal("corrupt chunk not reported")
	}
	is := issues[0]
	if is.Chunk != 1 || is.Offset != d.dir[1].off {
		t.Fatalf("issue localizes chunk %d offset %d, want 1 at %d", is.Chunk, is.Offset, d.dir[1].off)
	}
	if is.Iteration != 2 || is.Kind != "delta" {
		t.Fatalf("issue = %v", is)
	}
}

func mustValidate(t *testing.T, opt core.Options) core.Options {
	t.Helper()
	v, err := opt.Validate()
	if err != nil {
		t.Fatal(err)
	}
	return v
}
