package checkpoint

import (
	"fmt"

	"numarck/internal/core"
)

// Writer appends iterations of a multi-variable simulation to a store,
// writing a full checkpoint every FullEvery iterations (the first
// write is always full) and NUMARCK deltas in between, computed against
// the true previous iteration as in in-situ checkpointing.
type Writer struct {
	st        *Store
	fullEvery int
	last      map[string][]float64
	lastIter  int
	started   bool
}

// NewWriter creates a Writer. fullEvery <= 0 means only the first
// checkpoint is full.
func NewWriter(st *Store, fullEvery int) *Writer {
	return &Writer{st: st, fullEvery: fullEvery, last: map[string][]float64{}}
}

// NewWriterAt creates a Writer primed to continue an existing store:
// lastIter is the last iteration already present and lastState its
// (possibly reconstructed) per-variable values. The next Append must
// use iteration lastIter+1 and may be a delta against lastState.
func NewWriterAt(st *Store, fullEvery, lastIter int, lastState map[string][]float64) *Writer {
	w := &Writer{st: st, fullEvery: fullEvery, last: map[string][]float64{}, lastIter: lastIter, started: true}
	for v, data := range lastState {
		w.last[v] = append([]float64(nil), data...)
	}
	return w
}

// Append writes iteration data for every variable in vars. Iterations
// must be appended in consecutive increasing order.
func (w *Writer) Append(iteration int, vars map[string][]float64) (map[string]*core.Encoded, error) {
	if w.started && iteration != w.lastIter+1 {
		return nil, fmt.Errorf("checkpoint: non-consecutive iteration %d after %d", iteration, w.lastIter)
	}
	full := !w.started || (w.fullEvery > 0 && (iteration%w.fullEvery) == 0)
	encs := map[string]*core.Encoded{}
	for v, data := range vars {
		if full {
			if err := w.st.WriteFull(v, iteration, data); err != nil {
				return nil, err
			}
		} else {
			prev, ok := w.last[v]
			if !ok {
				return nil, fmt.Errorf("checkpoint: variable %q appeared mid-run at iteration %d", v, iteration)
			}
			enc, err := w.st.WriteDelta(v, iteration, prev, data)
			if err != nil {
				return nil, err
			}
			encs[v] = enc
		}
		w.last[v] = append([]float64(nil), data...)
	}
	w.lastIter = iteration
	w.started = true
	return encs, nil
}
