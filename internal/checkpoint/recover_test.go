package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"numarck/internal/core"
	"numarck/internal/obs"
)

// v2Delta builds a chunked v2 delta over a generated transition and
// returns (raw file bytes, prev, clean decode).
func v2Delta(t *testing.T, n, chunkPoints int) (raw []byte, prev, want []float64) {
	t.Helper()
	series := genSeries(n, 2, 31)
	enc, err := core.Encode(series[0], series[1], opts())
	if err != nil {
		t.Fatal(err)
	}
	raw, err = MarshalDeltaV2("dens", 1, enc, chunkPoints)
	if err != nil {
		t.Fatal(err)
	}
	want, err = enc.Decode(series[0])
	if err != nil {
		t.Fatal(err)
	}
	return raw, series[0], want
}

func TestDecodeRecoverCleanFile(t *testing.T) {
	raw, prev, want := v2Delta(t, 3000, 512)
	d, err := OpenDeltaV2(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.DecodeRecover(prev, 0, RecoverOptions{Salvage: true})
	if err != nil {
		t.Fatalf("clean file salvage decode failed: %v", err)
	}
	if !bitsEqual(got, want) {
		t.Fatal("salvage decode of a clean file differs from Decode")
	}
}

func TestDecodeRecoverCorruptChunk(t *testing.T) {
	raw, prev, want := v2Delta(t, 3000, 512)
	// Flip one byte in the middle of the file: chunk sections dominate
	// the layout, so this lands inside exactly one chunk's CRC region.
	bad := append([]byte(nil), raw...)
	bad[len(bad)*3/5] ^= 0x40
	d, err := OpenDeltaV2(bytes.NewReader(bad), int64(len(bad)))
	if err != nil {
		t.Fatalf("corruption hit metadata, not a section: %v", err)
	}

	// Fail-closed (default): the decode must fail.
	if _, err := d.DecodeRecover(prev, 0, RecoverOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("fail-closed decode of corrupt chunk = %v, want ErrCorrupt", err)
	}

	// Salvage: healthy chunks byte-identical, lost range exact.
	rec := obs.NewRecorder()
	got, err := d.DecodeRecover(prev, 0, RecoverOptions{Salvage: true, Obs: rec})
	var pde *PartialDataError
	if !errors.As(err, &pde) {
		t.Fatalf("salvage decode = %v, want *PartialDataError", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatal("PartialDataError should match ErrCorrupt via errors.Is")
	}
	if len(pde.Lost) != 1 {
		t.Fatalf("lost ranges = %v, want exactly one", pde.Lost)
	}
	lo, hi := pde.Lost[0].Lo, pde.Lost[0].Hi
	if lo%512 != 0 || (hi-lo) > 512 || hi > 3000 {
		t.Fatalf("lost range [%d,%d) does not align to a chunk", lo, hi)
	}
	if pde.LostPoints() != hi-lo {
		t.Fatalf("LostPoints = %d, want %d", pde.LostPoints(), hi-lo)
	}
	failed := 0
	for _, cs := range pde.Chunks {
		if cs.Err != nil {
			failed++
			if cs.Start != lo || cs.Start+cs.Points != hi {
				t.Fatalf("failed chunk %d spans [%d,%d), lost range says [%d,%d)",
					cs.Chunk, cs.Start, cs.Start+cs.Points, lo, hi)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("%d failed chunks, want 1", failed)
	}
	for i := range got {
		inLost := i >= lo && i < hi
		if inLost {
			if math.Float64bits(got[i]) != math.Float64bits(prev[i]) {
				t.Fatalf("lost point %d is not prev's value", i)
			}
		} else if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("healthy point %d differs from clean decode", i)
		}
	}
	if n := rec.Snapshot().Counters["chunks_quarantined"]; n != 1 {
		t.Fatalf("chunks_quarantined = %d, want 1", n)
	}
}

func TestRestartSalvage(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 2)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want1, err := st.Restart("dens", 1)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := st.Restart("dens", 2)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt one chunk section of delta@2 in place, keeping the journal
	// in the dark (silent media corruption, not a torn write).
	path := filepath.Join(dir, fileName("dens", "delta", 2))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)*3/5] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Fail-closed restart refuses.
	if _, err := st2.Restart("dens", 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("fail-closed restart over corrupt delta = %v", err)
	}
	// Salvage restart recovers everything outside the lost range.
	got, pde, err := st2.RestartSalvage("dens", 2)
	if err != nil {
		t.Fatalf("salvage restart: %v", err)
	}
	if pde == nil {
		t.Fatal("salvage restart reported no damage")
	}
	if pde.Variable != "dens" || pde.Iteration != 2 {
		t.Fatalf("damage attributed to %s@%d", pde.Variable, pde.Iteration)
	}
	if len(pde.Lost) == 0 {
		t.Fatal("no lost ranges reported")
	}
	inLost := func(i int) bool {
		for _, r := range pde.Lost {
			if i >= r.Lo && i < r.Hi {
				return true
			}
		}
		return false
	}
	for i := range got {
		if inLost(i) {
			// A point lost at iteration 2 passes through iteration 1's
			// value.
			if math.Float64bits(got[i]) != math.Float64bits(want1[i]) {
				t.Fatalf("lost point %d does not hold the prior iteration's value", i)
			}
		} else if math.Float64bits(got[i]) != math.Float64bits(want2[i]) {
			t.Fatalf("healthy point %d differs from the clean restart", i)
		}
	}
	// Deep verify reports the damage the length-only scan skipped.
	issues, err := st2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) == 0 {
		t.Fatal("Verify missed in-place corruption the journal CRC should catch")
	}
}

// TestRestartSalvageV1FailsClosed checks salvage mode does not pretend
// to rescue v1 deltas, which have a single whole-payload CRC.
func TestRestartSalvageV1FailsClosed(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 1)
	path := filepath.Join(dir, fileName("dens", "delta", 2))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.RestartSalvage("dens", 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v1 salvage = %v, want fail-closed ErrCorrupt", err)
	}
}

func TestMergeRanges(t *testing.T) {
	got := mergeRanges([]Range{{10, 20}, {0, 5}, {18, 25}, {5, 7}})
	want := []Range{{0, 7}, {10, 25}}
	if len(got) != len(want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
}
