package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"numarck/internal/faultfs"
	"numarck/internal/obs"
)

// readOnlyFS fails every mutating filesystem operation, the way
// read-only media would. A ReadView must work through it.
type readOnlyFS struct {
	faultfs.FS
}

var errReadOnly = errors.New("mutating operation on read-only filesystem")

func (readOnlyFS) Create(string) (faultfs.File, error)          { return nil, errReadOnly }
func (readOnlyFS) CreateExclusive(string) (faultfs.File, error) { return nil, errReadOnly }
func (readOnlyFS) Append(string) (faultfs.File, error)          { return nil, errReadOnly }
func (readOnlyFS) Rename(string, string) error                  { return errReadOnly }
func (readOnlyFS) Link(string, string) error                    { return errReadOnly }
func (readOnlyFS) Remove(string) error                          { return errReadOnly }
func (readOnlyFS) MkdirAll(string, fs.FileMode) error           { return errReadOnly }
func (readOnlyFS) SyncDir(string) error                         { return errReadOnly }

// countingFS counts read-side filesystem traffic: directory listings,
// opens by file, and bytes read per file.
type countingFS struct {
	faultfs.FS
	readDirs  atomic.Int64
	bytesRead map[string]*atomic.Int64
}

func newCountingFS(fsys faultfs.FS) *countingFS {
	return &countingFS{FS: fsys, bytesRead: map[string]*atomic.Int64{}}
}

func (c *countingFS) counter(name string) *atomic.Int64 {
	base := filepath.Base(name)
	if c.bytesRead[base] == nil {
		c.bytesRead[base] = &atomic.Int64{}
	}
	return c.bytesRead[base]
}

func (c *countingFS) ReadDir(name string) ([]fs.DirEntry, error) {
	c.readDirs.Add(1)
	return c.FS.ReadDir(name)
}

func (c *countingFS) Open(name string) (faultfs.File, error) {
	f, err := c.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, n: c.counter(name)}, nil
}

type countingFile struct {
	faultfs.File
	n *atomic.Int64
}

func (f *countingFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	f.n.Add(int64(n))
	return n, err
}

func (f *countingFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.File.ReadAt(p, off)
	f.n.Add(int64(n))
	return n, err
}

// buildChain writes a store with one full checkpoint and deltas deltas
// for variable "dens", closing the writer so the chain is published.
func buildChain(t *testing.T, dir string, deltas int) [][]float64 {
	t.Helper()
	series := genSeries(1500, deltas+1, 21)
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteFull("dens", 0, series[0]); err != nil {
		t.Fatal(err)
	}
	prev := series[0]
	for i := 1; i <= deltas; i++ {
		if _, err := st.WriteDelta("dens", i, prev, series[i]); err != nil {
			t.Fatal(err)
		}
		enc, err := st.ReadDelta("dens", i)
		if err != nil {
			t.Fatal(err)
		}
		if prev, err = enc.Decode(prev); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return series
}

// TestReadViewOnReadOnlyMedia opens a view through a filesystem that
// fails every mutating operation and drives the whole read surface: if
// any path tried to repair, journal, lock, or republish, it would error
// out here.
func TestReadViewOnReadOnlyMedia(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	buildChain(t, dir, 3)
	rv, err := OpenReadOnlyFS(dir, readOnlyFS{faultfs.OS()}, nil)
	if err != nil {
		t.Fatalf("OpenReadOnly on read-only media: %v", err)
	}
	vars, err := rv.Variables()
	if err != nil || len(vars) != 1 || vars[0] != "dens" {
		t.Fatalf("Variables = %v, %v", vars, err)
	}
	entries, err := rv.List("dens")
	if err != nil || len(entries) != 4 {
		t.Fatalf("List = %v, %v", entries, err)
	}
	stats, err := rv.Stats()
	if err != nil || len(stats) != 1 || stats[0].Fulls != 1 || stats[0].Deltas != 3 {
		t.Fatalf("Stats = %+v, %v", stats, err)
	}
	latest, err := rv.LatestRestorable("dens")
	if err != nil || latest != 3 {
		t.Fatalf("LatestRestorable = %d, %v", latest, err)
	}
	if _, err := rv.Restart("dens", 3); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if _, _, err := rv.RestartSalvage("dens", 3); err != nil {
		t.Fatalf("RestartSalvage: %v", err)
	}
	if h := rv.IndexHealth(); !h.Present || !h.Fresh {
		t.Errorf("index health through read view: %s", h)
	}
}

// TestReadViewWarmIndexConstantCost is the acceptance test for the
// index fast path: on a warm index, Open + LatestRestorable performs
// zero directory scans, zero journal replays (reads at most the
// freshness tail window of the journal), and its filesystem footprint
// is identical for a short and a long chain.
func TestReadViewWarmIndexConstantCost(t *testing.T) {
	// Open performs one journal-token read; LatestRestorable performs a
	// second and hits the cached snapshot.
	const tokenReads = 2
	costOf := func(deltas int) (readDirs, journalBytes, indexBytes int64, entries int) {
		t.Helper()
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("ck%d", deltas))
		buildChain(t, dir, deltas)
		cfs := newCountingFS(faultfs.OS())
		rv, err := OpenReadOnlyFS(dir, cfs, nil)
		if err != nil {
			t.Fatal(err)
		}
		latest, err := rv.LatestRestorable("dens")
		if err != nil || latest != deltas {
			t.Fatalf("LatestRestorable = %d, %v (want %d)", latest, err, deltas)
		}
		es := rv.snap.Load().chain
		return cfs.readDirs.Load(), cfs.counter(journalName).Load(), cfs.counter(indexName).Load(), len(es)
	}

	// Both chains journal more than indexTailWindow bytes, so a
	// tail-window read costs the same for either; only a replay would
	// differ.
	shortDirs, shortJournal, shortIndex, shortEntries := costOf(4)
	longDirs, longJournal, longIndex, longEntries := costOf(40)
	if shortEntries != 5 || longEntries != 41 {
		t.Fatalf("chains have %d and %d entries", shortEntries, longEntries)
	}
	if shortDirs != 0 || longDirs != 0 {
		t.Errorf("warm-index reads scanned the directory: %d and %d ReadDir calls", shortDirs, longDirs)
	}
	if shortJournal > tokenReads*indexTailWindow || longJournal > tokenReads*indexTailWindow {
		t.Errorf("journal bytes read = %d and %d, want <= %d (tail windows only, no replay)",
			shortJournal, longJournal, tokenReads*indexTailWindow)
	}
	if shortJournal != longJournal {
		t.Errorf("journal footprint depends on chain length: %d vs %d bytes", shortJournal, longJournal)
	}
	// The index itself is the only read that grows, by exactly one
	// record per chain entry.
	if got, want := longIndex-shortIndex, int64(longEntries-shortEntries)*indexRecordSize; got != want {
		t.Errorf("index bytes grew by %d for %d extra entries, want %d",
			got, longEntries-shortEntries, want)
	}
}

// TestReadViewFallbackOnCorruptIndex corrupts the CHAININDEX and checks
// the view detects it (CRC), falls back to an in-memory journal replay,
// counts the rebuild, and still serves correct answers — wrong answers
// are never served from a damaged index.
func TestReadViewFallbackOnCorruptIndex(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	buildChain(t, dir, 3)
	path := filepath.Join(dir, indexName)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(mut func(raw []byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, mut(append([]byte{}, pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for name, mut := range map[string]func([]byte) []byte{
		"flipped byte": func(raw []byte) []byte { raw[len(raw)/2] ^= 0x40; return raw },
		"truncated":    func(raw []byte) []byte { return raw[:len(raw)*2/3] },
		"stale anchor": func(raw []byte) []byte {
			// A parseable index whose journal anchor lies: claim the
			// journal is one byte shorter. Rewrite through the marshaller
			// so the CRC stays valid.
			ix, err := ParseChainIndex(raw)
			if err != nil {
				t.Fatal(err)
			}
			ix.JournalLen--
			out, err := marshalChainIndex(ix)
			if err != nil {
				t.Fatal(err)
			}
			return out
		},
	} {
		t.Run(strings.ReplaceAll(name, " ", "_"), func(t *testing.T) {
			mutate(mut)
			rec := obs.NewRecorder()
			rv, err := OpenReadOnlyFS(dir, readOnlyFS{faultfs.OS()}, rec)
			if err != nil {
				t.Fatalf("open with damaged index: %v", err)
			}
			latest, err := rv.LatestRestorable("dens")
			if err != nil || latest != 3 {
				t.Fatalf("LatestRestorable = %d, %v", latest, err)
			}
			if _, err := rv.Restart("dens", 3); err != nil {
				t.Fatalf("Restart: %v", err)
			}
			if rv.IndexSeq() != 0 {
				t.Errorf("fallback snapshot reports index seq %d, want 0", rv.IndexSeq())
			}
			if got := rec.Snapshot().Counters["index_rebuilds"]; got != 1 {
				t.Errorf("index_rebuilds = %d, want 1", got)
			}
			if h := rv.IndexHealth(); h.Fresh {
				t.Errorf("damaged index reported fresh: %s", h)
			}
		})
	}
}

// TestReadViewSeesWriterCommits interleaves a live writer with a view:
// every commit moves the journal token, so the next read refreshes its
// snapshot and serves the new chain.
func TestReadViewSeesWriterCommits(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	series := buildChain(t, dir, 1)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rec := obs.NewRecorder()
	rv, err := OpenReadOnlyFS(dir, faultfs.OS(), rec)
	if err != nil {
		t.Fatalf("OpenReadOnly while writer holds the lock: %v", err)
	}
	if latest, err := rv.LatestRestorable("dens"); err != nil || latest != 1 {
		t.Fatalf("pre-commit LatestRestorable = %d, %v", latest, err)
	}
	prev, err := st.Restart("dens", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.WriteDelta("dens", 2, prev, series[1]); err != nil {
		t.Fatal(err)
	}
	if latest, err := rv.LatestRestorable("dens"); err != nil || latest != 2 {
		t.Fatalf("post-commit LatestRestorable = %d, %v", latest, err)
	}
	if rv.IndexSeq() != st.IndexSeq() {
		t.Errorf("view snapshot seq %d, writer published %d", rv.IndexSeq(), st.IndexSeq())
	}
	if got := rec.Snapshot().Counters["index_rereads"]; got != 1 {
		t.Errorf("index_rereads = %d, want exactly 1 (the post-commit refresh; the open's first snapshot is not a reread)", got)
	}
	if got := rec.Snapshot().Counters["index_rebuilds"]; got != 0 {
		t.Errorf("index_rebuilds = %d on a healthy store, want 0", got)
	}
}

// TestReadViewLegacyStoreRefused checks a view of a journal-less legacy
// store fails with ErrNotFound and a pointer at the writer, instead of
// guessing at directory contents.
func TestReadViewLegacyStoreRefused(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	buildChain(t, dir, 1)
	if err := os.Remove(filepath.Join(dir, journalName)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReadOnly(dir); !errors.Is(err, ErrNotFound) {
		t.Fatalf("OpenReadOnly of legacy store = %v, want ErrNotFound", err)
	}
	// A writer open adopts the layout; the view works afterwards.
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rv, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatalf("OpenReadOnly after adoption: %v", err)
	}
	if latest, err := rv.LatestRestorable("dens"); err != nil || latest != 1 {
		t.Fatalf("LatestRestorable = %d, %v", latest, err)
	}
}

// TestReadViewMissingStore checks opening a view of a directory with no
// manifest is ErrNotFound.
func TestReadViewMissingStore(t *testing.T) {
	if _, err := OpenReadOnly(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("OpenReadOnly of missing store = %v, want ErrNotFound", err)
	}
}
