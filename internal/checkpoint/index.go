package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"

	"numarck/internal/faultfs"
)

// The CHAININDEX file is the store's metadata fast path: a compact
// binary image of the live checkpoint chain (every committed file's
// variable, kind, iteration, length, and CRC) that the writer rebuilds
// from its in-memory chain state and atomically republishes after every
// commit, and that readers parse in one bounded read — no journal
// replay, no directory scan, regardless of chain length.
//
// Byte layout (all integers little-endian; see FORMAT.md):
//
//	header (32 B):
//	  magic "NMRKX1" | version u16 | seq u64
//	  | journal len u64 | journal tail CRC u32 | entry count u32
//	records (88 B each, sorted by file name):
//	  variable (64 B, NUL-padded) | kind u8 | status u8 | reserved u16
//	  | iteration u32 | file len u64 | file CRC u32 | reserved u32
//	trailer:
//	  CRC32-IEEE of every preceding byte (u32)
//
// Freshness is anchored to the MANIFEST journal, the durable source of
// truth: the header records the journal's byte length and the CRC of
// its final bytes (the last indexTailWindow bytes) at publish time. A
// reader validates an index by statting the journal and re-hashing that
// tail — two O(1) operations — and falls back to an in-memory journal
// replay when they disagree. A stale or corrupt index is therefore
// detectable and never a source of wrong answers.
const indexName = "CHAININDEX"

// indexMagic starts every chain-index file.
var indexMagic = []byte("NMRKX1")

// indexVersion is the current chain-index layout version.
const indexVersion = 1

// Fixed section sizes of the chain-index layout.
const (
	indexHeaderSize = 32
	indexRecordSize = 88
	// indexVarBytes is the fixed width of the variable-name field; it
	// matches MaxVariableLen.
	indexVarBytes = 64
	// indexTailWindow is how many trailing journal bytes the freshness
	// CRC covers.
	indexTailWindow = 256
)

// IndexEntry is one record of the chain index: one committed
// checkpoint file.
type IndexEntry struct {
	Entry
	// Len and CRC mirror the file's MANIFEST journal record.
	Len int64
	CRC uint32
	// Status is the record's status byte; 0 is the only value written
	// today (live), the field exists so future compaction states do not
	// need a layout bump.
	Status byte
}

// ChainIndex is a parsed CHAININDEX file.
type ChainIndex struct {
	// Seq is the publication sequence number, bumped by the writer on
	// every publish.
	Seq uint64
	// JournalLen and JournalTailCRC anchor the index to the journal
	// state it was built from.
	JournalLen     int64
	JournalTailCRC uint32
	// Entries lists the live chain, sorted by file name.
	Entries []IndexEntry
}

// journalToken is the freshness anchor read from the live journal: its
// byte length and the CRC of its trailing indexTailWindow bytes.
type journalToken struct {
	Len     int64
	TailCRC uint32
}

// readJournalToken stats the journal and hashes its tail. Both are
// O(1) in chain length. A missing journal is an error: every
// index-bearing store seeds one at Create.
func readJournalToken(fsys faultfs.FS, dir string) (journalToken, error) {
	path := filepath.Join(dir, journalName)
	info, err := fsys.Stat(path)
	if err != nil {
		return journalToken{}, pathErr("stat journal", path, err)
	}
	size := info.Size()
	n := size
	if n > indexTailWindow {
		n = indexTailWindow
	}
	if n == 0 {
		return journalToken{Len: 0, TailCRC: 0}, nil
	}
	f, err := fsys.Open(path)
	if err != nil {
		return journalToken{}, pathErr("open journal", path, err)
	}
	buf := make([]byte, n)
	_, rerr := f.ReadAt(buf, size-n)
	if cerr := f.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil && rerr != io.EOF {
		return journalToken{}, pathErr("read journal tail", path, rerr)
	}
	return journalToken{Len: size, TailCRC: crc32.ChecksumIEEE(buf)}, nil
}

// matches reports whether the index was built from journal state tok.
func (ix *ChainIndex) matches(tok journalToken) bool {
	return ix.JournalLen == tok.Len && ix.JournalTailCRC == tok.TailCRC
}

// marshalChainIndex renders the index image. Entries whose variable
// name violates the store's naming rules cannot be represented in the
// fixed-width record and are an error — the journal they came from is
// the problem, not the index.
func marshalChainIndex(ix *ChainIndex) ([]byte, error) {
	buf := make([]byte, 0, indexHeaderSize+indexRecordSize*len(ix.Entries)+4)
	hdr := make([]byte, indexHeaderSize)
	copy(hdr, indexMagic)
	binary.LittleEndian.PutUint16(hdr[6:], indexVersion)
	binary.LittleEndian.PutUint64(hdr[8:], ix.Seq)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(ix.JournalLen))
	binary.LittleEndian.PutUint32(hdr[24:], ix.JournalTailCRC)
	if len(ix.Entries) > 1<<24 {
		return nil, fmt.Errorf("checkpoint: chain index with %d entries is implausible", len(ix.Entries))
	}
	//lint:ignore bindex entry count bounded to 1<<24 above
	binary.LittleEndian.PutUint32(hdr[28:], uint32(len(ix.Entries)))
	buf = append(buf, hdr...)
	for _, e := range ix.Entries {
		if err := ValidateVariable(e.Variable); err != nil {
			return nil, fmt.Errorf("checkpoint: chain index cannot represent %q: %w", e.Variable, err)
		}
		if e.Iteration < 0 || e.Iteration > 1<<31-1 {
			return nil, fmt.Errorf("checkpoint: chain index cannot represent iteration %d", e.Iteration)
		}
		rec := make([]byte, indexRecordSize)
		copy(rec[:indexVarBytes], e.Variable)
		rec[64] = kindByte(e.Kind)
		rec[65] = e.Status
		//lint:ignore bindex iteration bounded to [0, 1<<31) above
		binary.LittleEndian.PutUint32(rec[68:], uint32(e.Iteration))
		binary.LittleEndian.PutUint64(rec[72:], uint64(e.Len))
		binary.LittleEndian.PutUint32(rec[80:], e.CRC)
		buf = append(buf, rec...)
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(buf))
	return append(buf, crcBuf[:]...), nil
}

// kindByte maps a checkpoint kind to its record byte.
func kindByte(kind string) byte {
	if kind == "delta" {
		return 1
	}
	return 0
}

// kindName maps a record byte back to the checkpoint kind.
func kindName(b byte) (string, bool) {
	switch b {
	case 0:
		return "full", true
	case 1:
		return "delta", true
	default:
		return "", false
	}
}

// ParseChainIndex decodes a CHAININDEX image, verifying magic, version,
// framing, the trailing CRC, and every record's fields. Any violation
// is an ErrCorrupt (truncations additionally match ErrTruncated);
// callers treat a corrupt index as absent and rebuild from the journal,
// so a damaged index can cost time but never correctness.
func ParseChainIndex(raw []byte) (*ChainIndex, error) {
	if len(raw) < indexHeaderSize+4 {
		if n := min(len(raw), len(indexMagic)); string(raw[:n]) == string(indexMagic[:n]) {
			return nil, truncatedErr("chain index is %d bytes, shorter than its frame", len(raw))
		}
		return nil, fmt.Errorf("%w: chain index shorter than header", ErrCorrupt)
	}
	if string(raw[:6]) != string(indexMagic) {
		return nil, fmt.Errorf("%w: chain index magic %q", ErrCorrupt, raw[:6])
	}
	if v := binary.LittleEndian.Uint16(raw[6:]); v != indexVersion {
		return nil, fmt.Errorf("%w: chain index version %d", ErrCorrupt, v)
	}
	// The size math runs in int64 so a hostile count cannot wrap int on
	// 32-bit platforms into a want that passes the framing check while
	// the record loop slices out of range.
	count64 := int64(binary.LittleEndian.Uint32(raw[28:]))
	want64 := indexHeaderSize + indexRecordSize*count64 + 4
	if int64(len(raw)) != want64 {
		if int64(len(raw)) < want64 {
			return nil, truncatedErr("chain index %d bytes, %d records need %d", len(raw), count64, want64)
		}
		return nil, fmt.Errorf("%w: chain index %d bytes, %d records need %d", ErrCorrupt, len(raw), count64, want64)
	}
	count, want := int(count64), int(want64)
	body := raw[:want-4]
	if crc := crc32.ChecksumIEEE(body); crc != binary.LittleEndian.Uint32(raw[want-4:]) {
		return nil, fmt.Errorf("%w: chain index CRC mismatch", ErrCorrupt)
	}
	ix := &ChainIndex{
		Seq:            binary.LittleEndian.Uint64(raw[8:]),
		JournalLen:     int64(binary.LittleEndian.Uint64(raw[16:])),
		JournalTailCRC: binary.LittleEndian.Uint32(raw[24:]),
	}
	if ix.JournalLen < 0 {
		return nil, fmt.Errorf("%w: chain index journal length %d", ErrCorrupt, ix.JournalLen)
	}
	ix.Entries = make([]IndexEntry, 0, count)
	for i := 0; i < count; i++ {
		rec := raw[indexHeaderSize+indexRecordSize*i:]
		variable := cString(rec[:indexVarBytes])
		iteration := int(binary.LittleEndian.Uint32(rec[68:]))
		if err := validateIdentity(variable, iteration); err != nil {
			return nil, fmt.Errorf("%w: chain index record %d: %w", ErrCorrupt, i, err)
		}
		kind, ok := kindName(rec[64])
		if !ok {
			return nil, fmt.Errorf("%w: chain index record %d: kind byte %d", ErrCorrupt, i, rec[64])
		}
		flen := int64(binary.LittleEndian.Uint64(rec[72:]))
		if flen < 0 {
			return nil, fmt.Errorf("%w: chain index record %d: length %d", ErrCorrupt, i, flen)
		}
		ix.Entries = append(ix.Entries, IndexEntry{
			Entry: Entry{
				Variable:  variable,
				Kind:      kind,
				Iteration: iteration,
			},
			Len:    flen,
			CRC:    binary.LittleEndian.Uint32(rec[80:]),
			Status: rec[65],
		})
	}
	return ix, nil
}

// cString cuts a NUL-padded fixed-width field back to a string.
func cString(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// indexFromChain builds the index image of a live chain map (file name
// → journal entry), the writer's in-memory state.
func indexFromChain(chain map[string]journalEntry, seq uint64, tok journalToken) (*ChainIndex, error) {
	names := make([]string, 0, len(chain))
	for name := range chain {
		names = append(names, name)
	}
	sort.Strings(names)
	ix := &ChainIndex{Seq: seq, JournalLen: tok.Len, JournalTailCRC: tok.TailCRC}
	for _, name := range names {
		e, ok := parseName(name)
		if !ok {
			return nil, fmt.Errorf("%w: journaled name %q is not a checkpoint file", ErrCorrupt, name)
		}
		je := chain[name]
		ix.Entries = append(ix.Entries, IndexEntry{Entry: e, Len: je.Len, CRC: je.CRC})
	}
	return ix, nil
}

// chainFromIndex is the inverse of indexFromChain: the live chain map
// a parsed index describes.
func chainFromIndex(ix *ChainIndex) map[string]journalEntry {
	chain := make(map[string]journalEntry, len(ix.Entries))
	for _, e := range ix.Entries {
		chain[fileName(e.Variable, e.Kind, e.Iteration)] = journalEntry{Len: e.Len, CRC: e.CRC}
	}
	return chain
}

// loadIndex reads and parses the store's CHAININDEX. A missing file is
// (nil, nil); a present-but-corrupt one is an error the callers count
// as a rebuild trigger.
func loadIndex(fsys faultfs.FS, dir string) (*ChainIndex, error) {
	path := filepath.Join(dir, indexName)
	if _, err := fsys.Stat(path); err != nil {
		return nil, nil
	}
	raw, err := faultfs.ReadFile(fsys, path)
	if err != nil {
		return nil, pathErr("read index", path, err)
	}
	return ParseChainIndex(raw)
}

// publishIndex atomically replaces the CHAININDEX with the image of
// chain at sequence seq, anchored to the journal's current state. The
// WriteFileAtomic rename is the publication point: readers see either
// the old complete index or the new complete index, never a mix.
func publishIndex(fsys faultfs.FS, dir string, chain map[string]journalEntry, seq uint64) error {
	tok, err := readJournalToken(fsys, dir)
	if err != nil {
		return err
	}
	ix, err := indexFromChain(chain, seq, tok)
	if err != nil {
		return err
	}
	raw, err := marshalChainIndex(ix)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, indexName)
	if err := faultfs.WriteFileAtomic(fsys, dir, path, raw); err != nil {
		return pathErr("publish index", path, err)
	}
	return nil
}
