package checkpoint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"numarck/internal/faultfs"
)

// The MANIFEST journal records the committed checkpoint chain: one JSON
// record per line, appended and fsynced after each checkpoint file is
// durably renamed into place ("add") or removed ("drop"). Because the
// journal is strictly append-only and every record is a single line, a
// crash mid-append can only tear the final line; replay tolerates a
// torn tail and the recovery scan reconciles the journal against the
// directory contents (a committed file missing its "add" record is
// adopted, a journaled file that is missing or mismatched is
// quarantined or dropped).
const journalName = "MANIFEST"

// journalRecord is one line of the MANIFEST journal.
type journalRecord struct {
	// Op is "add" (file committed) or "drop" (file removed).
	Op string `json:"op"`
	// Name is the checkpoint file name within the store directory.
	Name string `json:"name"`
	// Len is the committed file's byte length (add records).
	Len int64 `json:"len,omitempty"`
	// CRC is the CRC-32 (IEEE) of the committed file's bytes (add
	// records).
	CRC uint32 `json:"crc,omitempty"`
	// PayloadCRC is the CRC-32 (IEEE) of the payload the commit was
	// requested with — for the daemon's value commits, the raw float64
	// body before encoding; zero when unknown (library writes, adopted
	// files, records from before the field existed). It is the durable
	// anchor of commit idempotency: a retried commit with a matching
	// payload CRC replays as success instead of double-applying.
	PayloadCRC uint32 `json:"pcrc,omitempty"`
}

// journalEntry is the live state of one journaled file after replay.
type journalEntry struct {
	Len        int64
	CRC        uint32
	PayloadCRC uint32
}

// appendJournal durably appends one record: open in append mode, write
// the line, fsync, close. Each step is a distinct crash point the fault
// matrix exercises.
func appendJournal(fsys faultfs.FS, dir string, rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal journal record: %w", err)
	}
	line = append(line, '\n')
	path := filepath.Join(dir, journalName)
	f, err := fsys.Append(path)
	if err != nil {
		return pathErr("append", path, err)
	}
	_, werr := f.Write(line)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return pathErr("append", path, werr)
	}
	return nil
}

// seedJournal durably creates an empty journal file. Create calls it
// for new stores and the recovery scan for adopted legacy stores: the
// chain index and every read view anchor their freshness checks to the
// journal, so it must exist even when nothing is committed yet.
func seedJournal(fsys faultfs.FS, dir string) error {
	path := filepath.Join(dir, journalName)
	f, err := fsys.Append(path)
	if err != nil {
		return pathErr("create journal", path, err)
	}
	werr := f.Sync()
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return pathErr("create journal", path, werr)
	}
	return nil
}

// rewriteJournal atomically replaces the MANIFEST with one fresh "add"
// record per live entry, in sorted name order. The recovery scan uses
// it to repair a torn tail: appending after a torn line would
// concatenate into it and corrupt the record, so the journal is
// compacted first.
func rewriteJournal(fsys faultfs.FS, dir string, entries map[string]journalEntry) error {
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	for _, name := range names {
		je := entries[name]
		line, err := json.Marshal(journalRecord{Op: "add", Name: name, Len: je.Len, CRC: je.CRC, PayloadCRC: je.PayloadCRC})
		if err != nil {
			return fmt.Errorf("checkpoint: marshal journal record: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	path := filepath.Join(dir, journalName)
	if err := faultfs.WriteFileAtomic(fsys, dir, path, buf.Bytes()); err != nil {
		return pathErr("rewrite", path, err)
	}
	return nil
}

// replayJournal reads the MANIFEST and folds its records into the live
// file set. A torn final line (the signature of a crash mid-append) is
// tolerated and reported via tornTail; torn or invalid records anywhere
// else are corruption. exists reports whether the journal file is
// present at all — absent means a legacy store from before the journal
// existed, whose files the recovery scan adopts.
func replayJournal(fsys faultfs.FS, dir string) (entries map[string]journalEntry, exists, tornTail bool, err error) {
	path := filepath.Join(dir, journalName)
	if _, serr := fsys.Stat(path); serr != nil {
		return nil, false, false, nil
	}
	raw, err := faultfs.ReadFile(fsys, path)
	if err != nil {
		return nil, true, false, pathErr("read", path, err)
	}
	entries = map[string]journalEntry{}
	lines := strings.Split(string(raw), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		var rec journalRecord
		if jerr := json.Unmarshal([]byte(line), &rec); jerr != nil || (rec.Op != "add" && rec.Op != "drop") {
			if i == len(lines)-1 {
				// No trailing newline and unparsable: a torn append.
				return entries, true, true, nil
			}
			return nil, true, false, fmt.Errorf("%w: journal record %d: %q", ErrCorrupt, i+1, line)
		}
		switch rec.Op {
		case "add":
			entries[rec.Name] = journalEntry{Len: rec.Len, CRC: rec.CRC, PayloadCRC: rec.PayloadCRC}
		case "drop":
			delete(entries, rec.Name)
		}
	}
	return entries, true, false, nil
}
