package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildStore writes a small two-variable store: fulls at 0 and 3,
// deltas at 1, 2, 4, 5.
func buildStore(t *testing.T) (*Store, [][]float64) {
	t.Helper()
	st, err := Create(filepath.Join(t.TempDir(), "ck"), opts())
	if err != nil {
		t.Fatal(err)
	}
	series := genSeries(500, 6, 21)
	w := NewWriter(st, 3)
	for i, data := range series {
		if _, err := w.Append(i, map[string][]float64{"a": data, "b": data}); err != nil {
			t.Fatal(err)
		}
	}
	return st, series
}

func TestVerifyCleanStore(t *testing.T) {
	st, _ := buildStore(t)
	issues, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Errorf("clean store has issues: %v", issues)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	st, _ := buildStore(t)
	path := st.path("a", "delta", 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	issues, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, is := range issues {
		if is.Variable == "a" && is.Iteration == 2 && errors.Is(is.Err, ErrCorrupt) {
			found = true
		}
		if is.String() == "" {
			t.Error("empty issue string")
		}
	}
	if !found {
		t.Errorf("corruption not reported: %v", issues)
	}
}

func TestVerifyDetectsChainGap(t *testing.T) {
	st, _ := buildStore(t)
	if err := os.Remove(st.path("b", "delta", 4)); err != nil {
		t.Fatal(err)
	}
	issues, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, is := range issues {
		if is.Variable == "b" && is.Iteration == 5 && errors.Is(is.Err, ErrChain) {
			found = true
		}
	}
	if !found {
		t.Errorf("chain gap not reported: %v", issues)
	}
}

func TestVerifyDetectsOrphanDelta(t *testing.T) {
	st, err := Create(filepath.Join(t.TempDir(), "ck"), opts())
	if err != nil {
		t.Fatal(err)
	}
	series := genSeries(100, 2, 22)
	if _, err := st.WriteDelta("v", 1, series[0], series[1]); err != nil {
		t.Fatal(err)
	}
	issues, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || !errors.Is(issues[0].Err, ErrChain) {
		t.Errorf("orphan delta: %v", issues)
	}
}

func TestStats(t *testing.T) {
	st, _ := buildStore(t)
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("%d variables", len(stats))
	}
	for _, s := range stats {
		if s.Fulls != 2 || s.Deltas != 4 {
			t.Errorf("%s: %d fulls, %d deltas", s.Variable, s.Fulls, s.Deltas)
		}
		if s.FirstIter != 0 || s.LastIter != 5 {
			t.Errorf("%s: iter range [%d,%d]", s.Variable, s.FirstIter, s.LastIter)
		}
		if s.FullBytes <= 0 || s.DeltaBytes <= 0 || s.TotalBytes() != s.FullBytes+s.DeltaBytes {
			t.Errorf("%s: byte accounting %+v", s.Variable, s)
		}
	}
	if stats[0].Variable != "a" || stats[1].Variable != "b" {
		t.Errorf("not sorted: %v, %v", stats[0].Variable, stats[1].Variable)
	}
}

func TestGC(t *testing.T) {
	st, series := buildStore(t)
	// Keep restartability from iteration 4: the base full is at 3, so
	// iterations 0-2 (full@0 + 2 deltas, per variable) are removable.
	removed, err := st.GC(4)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 6 { // (1 full + 2 deltas) x 2 variables
		t.Errorf("removed %d files, want 6", removed)
	}
	// Iterations >= 3 still restart fine.
	for _, iter := range []int{3, 4, 5} {
		rec, err := st.Restart("a", iter)
		if err != nil {
			t.Fatalf("restart %d after GC: %v", iter, err)
		}
		if len(rec) != len(series[iter]) {
			t.Fatalf("restart %d wrong size", iter)
		}
	}
	// Earlier iterations are gone.
	if _, err := st.Restart("a", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("restart 1 after GC: %v", err)
	}
	// A clean store verifies after GC.
	issues, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Errorf("post-GC issues: %v", issues)
	}
}

func TestGCNothingToRetain(t *testing.T) {
	st, _ := buildStore(t)
	// keepFrom before the first full of variable "a"? Full exists at 0,
	// so keepFrom=-1 has no full at or before it.
	if _, err := st.GC(-1); !errors.Is(err, ErrNothingToGC) {
		t.Errorf("GC(-1): %v", err)
	}
}

func TestGCIdempotent(t *testing.T) {
	st, _ := buildStore(t)
	if _, err := st.GC(5); err != nil {
		t.Fatal(err)
	}
	removed, err := st.GC(5)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Errorf("second GC removed %d files", removed)
	}
}

// TestGCWithQuarantinedBase checks retention safety when recovery has
// quarantined a base full checkpoint: pruning must fall back to the
// last good base and never delete it, keeping the surviving prefix of
// the chain restorable.
func TestGCWithQuarantinedBase(t *testing.T) {
	st, _ := buildStore(t)
	// Tear variable a's full@3; the reopen quarantines it, leaving
	// full@0 as a's only (and last good) base.
	path := st.path("a", "full", 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Recovery().Quarantined) != 1 {
		t.Fatalf("recovery = %s, want one quarantined file", st2.Recovery())
	}
	// GC(4): variable b prunes up to its full@3, but variable a's last
	// good base is full@0, which must survive along with its chain.
	if _, err := st2.GC(4); err != nil {
		t.Fatal(err)
	}
	for _, iter := range []int{0, 1, 2} {
		if _, err := st2.Restart("a", iter); err != nil {
			t.Fatalf("restart a@%d after GC with quarantined base: %v", iter, err)
		}
	}
	latest, err := st2.LatestRestorable("a")
	if err != nil || latest != 2 {
		t.Fatalf("LatestRestorable(a) = %d, %v; want 2", latest, err)
	}
	// Variable b, whose base is intact, pruned normally.
	if _, err := st2.Restart("b", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("restart b@1 after GC: %v", err)
	}
	if _, err := st2.Restart("b", 4); err != nil {
		t.Fatalf("restart b@4 after GC: %v", err)
	}
	// Verify still reports a's chain gap honestly (deltas 4-5 lost
	// their base to quarantine), and nothing else: GC kept the journal
	// in sync with the directory.
	issues, err := st2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range issues {
		if is.Variable != "a" || !errors.Is(is.Err, ErrChain) {
			t.Fatalf("unexpected post-GC issue: %v", is)
		}
	}
	if len(issues) == 0 {
		t.Fatal("Verify hid the chain gap behind the quarantined base")
	}
}
