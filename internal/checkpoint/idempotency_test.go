package checkpoint

import (
	"hash/crc32"
	"testing"

	"numarck/internal/core"
	"numarck/internal/faultfs"
)

// idemOptions is the encode config the idempotency tests share.
func idemOptions() core.Options {
	return core.Options{ErrorBound: 0.001, IndexBits: 8, Strategy: core.EqualWidth}
}

// TestPayloadCRCSurvivesReopen commits with an explicit payload CRC
// and checks Committed reports it — through the in-memory chain, and
// again after a close/reopen cycle that rebuilds the chain from the
// MANIFEST journal.
func TestPayloadCRCSurvivesReopen(t *testing.T) {
	dir := t.TempDir() + "/store"
	st, err := Create(dir, idemOptions())
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{1, 2, 3, 4}
	raw, err := MarshalFull("v", 0, vals)
	if err != nil {
		t.Fatal(err)
	}
	const payloadCRC = uint32(0xDEADBEEF)
	if err := st.WriteRawFullPayload("v", 0, raw, payloadCRC); err != nil {
		t.Fatal(err)
	}
	check := func(stage string, st *Store) {
		t.Helper()
		ce, ok := st.Committed("v", 0)
		if !ok {
			t.Fatalf("%s: Committed(v,0) not found", stage)
		}
		if ce.PayloadCRC != payloadCRC {
			t.Fatalf("%s: PayloadCRC = %08x, want %08x", stage, ce.PayloadCRC, payloadCRC)
		}
		if ce.Kind != "full" || ce.Len != int64(len(raw)) || ce.CRC != crc32.ChecksumIEEE(raw) {
			t.Fatalf("%s: entry = %+v", stage, ce)
		}
		if _, ok := st.Committed("v", 1); ok {
			t.Fatalf("%s: phantom commit at iteration 1", stage)
		}
	}
	check("fresh", st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Read-only assertions follow; a close error cannot lose data.
		_ = st2.Close()
	}()
	check("reopened", st2)
}

// TestPayloadCRCDefaultsToFileCRC checks that plain WriteRawFull and
// WriteRawDelta journal the file's own CRC as the payload CRC — a raw
// commit's payload is the file itself.
func TestPayloadCRCDefaultsToFileCRC(t *testing.T) {
	dir := t.TempDir() + "/store"
	st, err := Create(dir, idemOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Assertions are in-memory only; a close error cannot lose data.
		_ = st.Close()
	}()
	raw, err := MarshalFull("v", 0, []float64{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteRawFull("v", 0, raw); err != nil {
		t.Fatal(err)
	}
	ce, ok := st.Committed("v", 0)
	if !ok {
		t.Fatal("Committed(v,0) not found")
	}
	if ce.PayloadCRC != ce.CRC || ce.PayloadCRC != crc32.ChecksumIEEE(raw) {
		t.Fatalf("PayloadCRC = %08x, CRC = %08x, want both = file CRC", ce.PayloadCRC, ce.CRC)
	}
}

// TestInspectLock walks the lock-status matrix: no lock, a lock held
// by a live owner, and a stale lock from a provably dead owner.
func TestInspectLock(t *testing.T) {
	dir := t.TempDir() + "/store"

	ls, err := InspectLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Held || ls.Stale() {
		t.Fatalf("missing store: status %+v, want unheld", ls)
	}

	st, err := Create(dir, idemOptions())
	if err != nil {
		t.Fatal(err)
	}
	ls, err = InspectLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !ls.Held || !ls.Parsed || !ls.Alive || ls.Stale() {
		t.Fatalf("held by this process: status %+v", ls)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ls, err = InspectLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Held {
		t.Fatalf("after close: status %+v, want released", ls)
	}

	// A lock whose recorded owner cannot exist (beyond the kernel's pid
	// space) probes dead: stale, recoverable.
	const deadPID = 1999999999
	st2, err := CreateFSOwner(dir+"2", idemOptions(), faultfs.OS(), LockOwner{PID: deadPID})
	if err != nil {
		t.Fatal(err)
	}
	// Abandon st2 without Close: the LOCK survives, like a crashed
	// writer's would.
	_ = st2
	ls, err = InspectLock(dir + "2")
	if err != nil {
		t.Fatal(err)
	}
	if !ls.Held || !ls.Parsed || ls.Alive || !ls.Stale() {
		t.Fatalf("dead owner: status %+v, want stale", ls)
	}
	if ls.PID != deadPID {
		t.Fatalf("PID = %d, want %d", ls.PID, deadPID)
	}
}
