package checkpoint

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"numarck/internal/faultfs"
	"numarck/internal/obs"
)

// TestConcurrentReadersNeverBlockWriter is the -race stress test of the
// concurrency model: one writer goroutine committing checkpoints while
// N reader goroutines hammer a shared ReadView with List, Stats,
// LatestRestorable, and Restart. Every reader must always observe one
// consistent published chain — an unbroken prefix full@0..delta@k with
// a nondecreasing k — and never an error, a torn view, or a stall.
func TestConcurrentReadersNeverBlockWriter(t *testing.T) {
	const (
		iters   = 24
		readers = 4
		points  = 400
	)
	dir := filepath.Join(t.TempDir(), "ck")
	series := genSeries(points, iters+1, 77)
	st, err := Create(dir, opts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.WriteFull("dens", 0, series[0]); err != nil {
		t.Fatal(err)
	}

	rv, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	errc := make(chan error, readers+1)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastSeen := 0
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				entries, err := rv.List("dens")
				if err != nil {
					fail("reader %d: List: %v", r, err)
					return
				}
				for j, e := range entries {
					wantKind := "delta"
					if j == 0 {
						wantKind = "full"
					}
					if e.Iteration != j || e.Kind != wantKind {
						fail("reader %d: torn chain view: entry %d is %s@%d", r, j, e.Kind, e.Iteration)
						return
					}
				}
				// Each call snapshots independently, so the chain may grow
				// between calls — but within a call it is one consistent
				// state, and across calls it only ever moves forward.
				latest, err := rv.LatestRestorable("dens")
				if err != nil {
					fail("reader %d: LatestRestorable: %v", r, err)
					return
				}
				if latest < len(entries)-1 {
					fail("reader %d: latest %d older than the %d-entry chain listed before it", r, latest, len(entries))
					return
				}
				if latest < lastSeen {
					fail("reader %d: chain went backwards: %d after %d", r, latest, lastSeen)
					return
				}
				lastSeen = latest
				stats, err := rv.Stats()
				if err != nil || len(stats) != 1 || stats[0].Fulls != 1 || stats[0].Deltas < latest {
					fail("reader %d: Stats = %+v, %v at latest %d", r, stats, err, latest)
					return
				}
				// Restart is the expensive read; do it on a stride.
				if i%7 == 0 {
					if data, err := rv.Restart("dens", latest); err != nil || len(data) != points {
						fail("reader %d: Restart(%d) = %d points, %v", r, latest, len(data), err)
						return
					}
				}
			}
		}(r)
	}

	// The writer: commit the remaining chain while the readers run.
	prev := series[0]
	for i := 1; i <= iters; i++ {
		if _, err := st.WriteDelta("dens", i, prev, series[i]); err != nil {
			t.Fatal(err)
		}
		enc, err := st.ReadDelta("dens", i)
		if err != nil {
			t.Fatal(err)
		}
		if prev, err = enc.Decode(prev); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// After the writer finishes, every reader converges on the full
	// chain.
	latest, err := rv.LatestRestorable("dens")
	if err != nil || latest != iters {
		t.Fatalf("final LatestRestorable = %d, %v, want %d", latest, err, iters)
	}
}

// hookFS lets a test interpose between two filesystem reads: hook runs
// before every Open of a matching file name.
type hookFS struct {
	faultfs.FS
	match string
	hook  func()
}

func (h *hookFS) Open(name string) (faultfs.File, error) {
	if h.hook != nil && strings.HasSuffix(name, h.match) {
		h.hook()
	}
	return h.FS.Open(name)
}

// TestTornIndexReadRereads drives the seqlock race deterministically:
// the reader samples the journal token, and before it can open the
// CHAININDEX the writer commits — journal and index both move. The
// freshly read index no longer matches the sampled token, so the reader
// must chase the new token and serve the post-commit chain, never a
// mix of old token and new index.
func TestTornIndexReadRereads(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	series := buildChain(t, dir, 1)
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	prev, err := st.Restart("dens", 1)
	if err != nil {
		t.Fatal(err)
	}

	hooked := &hookFS{FS: faultfs.OS(), match: indexName}
	rec := obs.NewRecorder()
	rv, err := OpenReadOnlyFS(dir, hooked, rec)
	if err != nil {
		t.Fatal(err)
	}
	if latest, err := rv.LatestRestorable("dens"); err != nil || latest != 1 {
		t.Fatalf("pre-race LatestRestorable = %d, %v", latest, err)
	}

	// Arm the race. The standing commit of delta@2 moves the journal
	// token, so the reader's cached snapshot misses and it enters the
	// index-reread loop; the hook then republishes delta@3 in the window
	// between the reader's token sample and its index read.
	if _, err := st.WriteDelta("dens", 2, prev, series[1]); err != nil {
		t.Fatal(err)
	}
	fired := false
	hooked.hook = func() {
		if fired {
			return
		}
		fired = true
		prev2, err := st.Restart("dens", 2)
		if err != nil {
			t.Errorf("mid-read restart: %v", err)
			return
		}
		if _, err := st.WriteDelta("dens", 3, prev2, series[1]); err != nil {
			t.Errorf("mid-read commit: %v", err)
		}
	}

	latest, err := rv.LatestRestorable("dens")
	if err != nil {
		t.Fatalf("racing read: %v", err)
	}
	if !fired {
		t.Fatal("race hook never fired: the reader did not reread the index")
	}
	// The reader chased the mid-read publication: it must serve the
	// post-commit chain (delta@3 included), one consistent state.
	if latest != 3 {
		t.Fatalf("racing read served latest %d, want 3 (the chain published mid-read)", latest)
	}
	if rv.IndexSeq() != st.IndexSeq() {
		t.Errorf("racing read pinned seq %d, writer is at %d", rv.IndexSeq(), st.IndexSeq())
	}
	entries, err := rv.List("dens")
	if err != nil || len(entries) != 4 {
		t.Fatalf("post-race List = %v, %v", entries, err)
	}
	if got := rec.Snapshot().Counters["index_rebuilds"]; got != 0 {
		t.Errorf("index_rebuilds = %d: the reread path fell back to a journal replay", got)
	}
}
