package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
)

// VerifyIssue describes one problem Verify found.
type VerifyIssue struct {
	Variable  string
	Kind      string
	Iteration int
	// Chunk and Offset localize the issue inside a chunked (v2) delta
	// file: the failing chunk index and the byte offset of its section.
	// Chunk is -1 when the issue concerns the whole file.
	Chunk  int
	Offset int64
	Err    error
}

// String renders the issue as one line of the verify report,
// identifying the file by variable/kind/iteration and, when the issue
// is chunk-local, the failing chunk and its byte offset.
func (v VerifyIssue) String() string {
	if v.Chunk >= 0 {
		return fmt.Sprintf("%s.%s.%06d: chunk %d at byte offset %d: %v", v.Variable, v.Kind, v.Iteration, v.Chunk, v.Offset, v.Err)
	}
	return fmt.Sprintf("%s.%s.%06d: %v", v.Variable, v.Kind, v.Iteration, v.Err)
}

// newIssue builds a VerifyIssue, lifting the chunk index and byte
// offset out of err when the failure is localized to one chunk of a v2
// file.
func newIssue(variable, kind string, iteration int, err error) VerifyIssue {
	is := VerifyIssue{Variable: variable, Kind: kind, Iteration: iteration, Chunk: -1, Err: err}
	var ce *ChunkError
	if errors.As(err, &ce) {
		is.Chunk = ce.Chunk
		is.Offset = ce.Offset
		is.Err = ce.Err
	}
	return is
}

// Verify walks every checkpoint file in the store, parses it, and
// checks its CRC and header identity. It returns all issues found (nil
// means the store is clean). Chain gaps are reported per variable: a
// delta with no reachable full checkpoint makes its iteration
// unrestorable.
func (st *Store) Verify() ([]VerifyIssue, error) {
	vars, err := st.Variables()
	if err != nil {
		return nil, err
	}
	var issues []VerifyIssue
	for _, v := range vars {
		entries, err := st.List(v)
		if err != nil {
			return nil, err
		}
		lastFull := -1
		expected := -1
		for _, e := range entries {
			switch e.Kind {
			case "full":
				if _, err := st.ReadFull(v, e.Iteration); err != nil {
					issues = append(issues, newIssue(v, e.Kind, e.Iteration, err))
					continue
				}
				lastFull = e.Iteration
				expected = e.Iteration + 1
			case "delta":
				if _, err := st.ReadDelta(v, e.Iteration); err != nil {
					issues = append(issues, newIssue(v, e.Kind, e.Iteration, err))
					continue
				}
				switch {
				case lastFull < 0:
					issues = append(issues, newIssue(v, e.Kind, e.Iteration,
						fmt.Errorf("%w: no full checkpoint precedes it", ErrChain)))
				case e.Iteration != expected:
					issues = append(issues, newIssue(v, e.Kind, e.Iteration,
						fmt.Errorf("%w: expected iteration %d next", ErrChain, expected)))
					expected = e.Iteration + 1 // keep scanning from here
				default:
					expected = e.Iteration + 1
				}
			}
		}
	}
	return issues, nil
}

// VariableStats summarizes one variable's storage in the store.
type VariableStats struct {
	Variable   string
	Fulls      int
	Deltas     int
	FullBytes  int64
	DeltaBytes int64
	FirstIter  int
	LastIter   int
}

// TotalBytes returns the variable's total on-disk size.
func (s VariableStats) TotalBytes() int64 { return s.FullBytes + s.DeltaBytes }

// Stats returns per-variable storage statistics, sorted by variable
// name.
func (st *Store) Stats() ([]VariableStats, error) {
	vars, err := st.Variables()
	if err != nil {
		return nil, err
	}
	out := make([]VariableStats, 0, len(vars))
	for _, v := range vars {
		entries, err := st.List(v)
		if err != nil {
			return nil, err
		}
		s := VariableStats{Variable: v, FirstIter: -1}
		for _, e := range entries {
			info, err := os.Stat(st.path(v, e.Kind, e.Iteration))
			if err != nil {
				return nil, err
			}
			if s.FirstIter < 0 || e.Iteration < s.FirstIter {
				s.FirstIter = e.Iteration
			}
			if e.Iteration > s.LastIter {
				s.LastIter = e.Iteration
			}
			if e.Kind == "full" {
				s.Fulls++
				s.FullBytes += info.Size()
			} else {
				s.Deltas++
				s.DeltaBytes += info.Size()
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Variable < out[b].Variable })
	return out, nil
}

// LatestRestorable returns the highest iteration of a variable that can
// be reconstructed: the end of the unbroken delta chain rooted at the
// latest full checkpoint. ErrNotFound means no full checkpoint exists.
func (st *Store) LatestRestorable(variable string) (int, error) {
	entries, err := st.List(variable)
	if err != nil {
		return 0, err
	}
	restorable := -1
	chainNext := -1
	for _, e := range entries {
		switch {
		case e.Kind == "full":
			if e.Iteration > restorable {
				restorable = e.Iteration
			}
			chainNext = e.Iteration + 1
		case e.Kind == "delta" && e.Iteration == chainNext:
			restorable = e.Iteration
			chainNext++
		default:
			chainNext = -1 // chain broken until the next full
		}
	}
	if restorable < 0 {
		return 0, fmt.Errorf("%w: variable %s has no full checkpoint", ErrNotFound, variable)
	}
	return restorable, nil
}

// ErrNothingToGC reports a GC request that would delete everything.
var ErrNothingToGC = errors.New("checkpoint: no full checkpoint to retain")

// GC deletes, for every variable, all checkpoints strictly before the
// last full checkpoint at or before keepFrom, preserving the ability to
// restart at any iteration >= that full. It returns the number of
// files removed. Typical use: after a simulation confirms progress
// beyond iteration i, GC(i) drops the now-unneeded prefix.
func (st *Store) GC(keepFrom int) (removed int, err error) {
	vars, err := st.Variables()
	if err != nil {
		return 0, err
	}
	for _, v := range vars {
		entries, err := st.List(v)
		if err != nil {
			return removed, err
		}
		baseFull := -1
		for _, e := range entries {
			if e.Kind == "full" && e.Iteration <= keepFrom {
				baseFull = e.Iteration
			}
		}
		if baseFull < 0 {
			return removed, fmt.Errorf("%w: variable %s has no full checkpoint at or before %d", ErrNothingToGC, v, keepFrom)
		}
		for _, e := range entries {
			if e.Iteration < baseFull {
				if err := os.Remove(st.path(v, e.Kind, e.Iteration)); err != nil {
					return removed, err
				}
				removed++
			}
		}
	}
	return removed, nil
}
