package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"

	"numarck/internal/faultfs"
)

// VerifyIssue describes one problem Verify found.
type VerifyIssue struct {
	Variable  string
	Kind      string
	Iteration int
	// Chunk and Offset localize the issue inside a chunked (v2) delta
	// file: the failing chunk index and the byte offset of its section.
	// Chunk is -1 when the issue concerns the whole file.
	Chunk  int
	Offset int64
	Err    error
}

// String renders the issue as one line of the verify report,
// identifying the file by variable/kind/iteration and, when the issue
// is chunk-local, the failing chunk and its byte offset.
func (v VerifyIssue) String() string {
	if v.Chunk >= 0 {
		return fmt.Sprintf("%s.%s.%06d: chunk %d at byte offset %d: %v", v.Variable, v.Kind, v.Iteration, v.Chunk, v.Offset, v.Err)
	}
	return fmt.Sprintf("%s.%s.%06d: %v", v.Variable, v.Kind, v.Iteration, v.Err)
}

// newIssue builds a VerifyIssue, lifting the chunk index and byte
// offset out of err when the failure is localized to one chunk of a v2
// file.
func newIssue(variable, kind string, iteration int, err error) VerifyIssue {
	is := VerifyIssue{Variable: variable, Kind: kind, Iteration: iteration, Chunk: -1, Err: err}
	var ce *ChunkError
	if errors.As(err, &ce) {
		is.Chunk = ce.Chunk
		is.Offset = ce.Offset
		is.Err = ce.Err
	}
	return is
}

// Verify walks every checkpoint file in the store, parses it, and
// checks its CRC and header identity, then cross-checks the MANIFEST
// journal against the directory: a journaled file that is missing, or
// whose bytes no longer match the journaled length and CRC, is an
// issue. It returns all issues found (nil means the store is clean).
// Chain gaps are reported per variable: a delta with no reachable full
// checkpoint makes its iteration unrestorable.
func (st *Store) Verify() ([]VerifyIssue, error) {
	vars, err := st.Variables()
	if err != nil {
		return nil, err
	}
	var issues []VerifyIssue
	for _, v := range vars {
		entries, err := st.List(v)
		if err != nil {
			return nil, err
		}
		issues = append(issues, verifyEntries(v, entries, func(e Entry) error {
			if e.Kind == "full" {
				_, err := st.ReadFull(v, e.Iteration)
				return err
			}
			_, err := st.ReadDelta(v, e.Iteration)
			return err
		})...)
	}
	jissues, err := st.verifyJournal()
	if err != nil {
		return nil, err
	}
	issues = append(issues, jissues...)
	if h := st.IndexHealth(); !h.Fresh {
		issues = append(issues, VerifyIssue{Variable: indexName, Kind: "index", Chunk: -1, Err: h.issueErr()})
	}
	return issues, nil
}

// verifyEntries walks one variable's sorted entries, applies check to
// each, and reports chain-structure issues (a delta with no preceding
// full checkpoint, iteration gaps). It is the shared body of the
// writer's Verify and the read view's lock-free Verify, so the two
// cannot drift on what a healthy chain means.
func verifyEntries(variable string, entries []Entry, check func(e Entry) error) []VerifyIssue {
	var issues []VerifyIssue
	lastFull := -1
	expected := -1
	for _, e := range entries {
		switch e.Kind {
		case "full":
			if err := check(e); err != nil {
				issues = append(issues, newIssue(variable, e.Kind, e.Iteration, err))
				continue
			}
			lastFull = e.Iteration
			expected = e.Iteration + 1
		case "delta":
			if err := check(e); err != nil {
				issues = append(issues, newIssue(variable, e.Kind, e.Iteration, err))
				continue
			}
			switch {
			case lastFull < 0:
				issues = append(issues, newIssue(variable, e.Kind, e.Iteration,
					fmt.Errorf("%w: no full checkpoint precedes it", ErrChain)))
			case e.Iteration != expected:
				issues = append(issues, newIssue(variable, e.Kind, e.Iteration,
					fmt.Errorf("%w: expected iteration %d next", ErrChain, expected)))
				expected = e.Iteration + 1 // keep scanning from here
			default:
				expected = e.Iteration + 1
			}
		}
	}
	return issues
}

// Verify is the read view's lock-free deep check: every chain file in
// the current snapshot must read back with exactly its journaled
// length and CRC and parse as the checkpoint it claims to be (v2
// deltas are parsed chunk by chunk, so chunk-local corruption is
// localized), and every delta must chain gap-free from a full
// checkpoint. Unlike (*Store).Verify it takes no writer lock, repairs
// nothing, and never mutates the store — it can run against a store a
// live writer holds, and on read-only media. A non-fresh chain index
// is reported as an issue just as the writer's Verify does.
func (rv *ReadView) Verify() ([]VerifyIssue, error) {
	s, err := rv.snapshot()
	if err != nil {
		return nil, err
	}
	var issues []VerifyIssue
	for _, v := range chainVariables(s.chain) {
		ces := chainFileEntries(s.chain, v)
		entries := make([]Entry, len(ces))
		byIter := make(map[string]ChainEntry, len(ces))
		for i, ce := range ces {
			entries[i] = ce.Entry
			byIter[ce.Name] = ce
		}
		issues = append(issues, verifyEntries(v, entries, func(e Entry) error {
			ce := byIter[fileName(e.Variable, e.Kind, e.Iteration)]
			return verifyChainFile(rv.fs, rv.dir, ce)
		})...)
	}
	if h := rv.IndexHealth(); !h.Fresh {
		issues = append(issues, VerifyIssue{Variable: indexName, Kind: "index", Chunk: -1, Err: h.issueErr()})
	}
	return issues, nil
}

// verifyChainFile deep-checks one committed chain file against its
// journaled record: byte length, whole-file CRC, a full parse, and the
// header identity.
func verifyChainFile(fsys faultfs.FS, dir string, ce ChainEntry) error {
	path := filepath.Join(dir, ce.Name)
	raw, err := faultfs.ReadFile(fsys, path)
	if err != nil {
		return pathErr("read", path, err)
	}
	if int64(len(raw)) != ce.Len {
		return fmt.Errorf("%w: file is %d bytes, journal recorded %d", ErrTruncated, len(raw), ce.Len)
	}
	if crc := crc32.ChecksumIEEE(raw); crc != ce.CRC {
		return fmt.Errorf("%w: file CRC %08x, journal recorded %08x", ErrCorrupt, crc, ce.CRC)
	}
	var v string
	var it int
	switch {
	case ce.Kind == "full":
		v, it, _, err = UnmarshalFull(raw)
	case IsDeltaV2(raw):
		v, it, _, err = UnmarshalDeltaV2(raw)
	default:
		v, it, _, err = UnmarshalDelta(raw)
	}
	if err != nil {
		return err
	}
	if v != ce.Variable || it != ce.Iteration {
		return fmt.Errorf("%w: file claims %s@%d, chain records %s@%d", ErrCorrupt, v, it, ce.Variable, ce.Iteration)
	}
	return nil
}

// IndexHealth describes the on-disk CHAININDEX's state relative to the
// journal: whether it is present, parses, and is anchored to the
// journal's current length and tail CRC (Fresh). Verify reports a
// non-fresh index as an issue; cmd/numarck surfaces the same fields in
// its verify and inspect reports.
type IndexHealth struct {
	// Present reports whether a CHAININDEX file exists at all.
	Present bool
	// Fresh reports that the index parsed and its journal anchor
	// matches the journal's current state: readers are served from it
	// without falling back to journal replay.
	Fresh bool
	// Seq is the index's publication sequence (0 when absent or
	// unparsable).
	Seq uint64
	// Entries is the number of chain records the index holds.
	Entries int
	// Err is the parse or read failure for a corrupt index, nil
	// otherwise.
	Err error
}

// String renders the health as one line of the verify report.
func (h IndexHealth) String() string {
	switch {
	case !h.Present:
		return "chain index: missing"
	case h.Err != nil:
		return fmt.Sprintf("chain index: corrupt: %v", h.Err)
	case !h.Fresh:
		return fmt.Sprintf("chain index: stale (seq %d, %d entries)", h.Seq, h.Entries)
	default:
		return fmt.Sprintf("chain index: fresh (seq %d, %d entries)", h.Seq, h.Entries)
	}
}

// issueErr is the error a non-fresh index contributes to Verify.
func (h IndexHealth) issueErr() error {
	switch {
	case !h.Present:
		return fmt.Errorf("%w: chain index missing", ErrCorrupt)
	case h.Err != nil:
		return fmt.Errorf("chain index corrupt: %w", h.Err)
	default:
		return fmt.Errorf("%w: chain index stale (seq %d)", ErrCorrupt, h.Seq)
	}
}

// IndexHealth inspects the store's CHAININDEX without modifying it.
func (st *Store) IndexHealth() IndexHealth {
	return indexHealth(st.fs, st.dir)
}

// IndexHealth inspects the store's CHAININDEX without modifying it.
func (rv *ReadView) IndexHealth() IndexHealth {
	return indexHealth(rv.fs, rv.dir)
}

// indexHealth is the shared implementation of the IndexHealth methods.
func indexHealth(fsys faultfs.FS, dir string) IndexHealth {
	var h IndexHealth
	if _, err := fsys.Stat(filepath.Join(dir, indexName)); err != nil {
		return h
	}
	h.Present = true
	ix, err := loadIndex(fsys, dir)
	if err != nil || ix == nil {
		h.Err = err
		return h
	}
	h.Seq = ix.Seq
	h.Entries = len(ix.Entries)
	tok, err := readJournalToken(fsys, dir)
	if err != nil {
		h.Err = err
		return h
	}
	h.Fresh = ix.matches(tok)
	return h
}

// verifyJournal is Verify's deep journal cross-check: every live "add"
// record must name a file that exists and whose bytes hash to the
// journaled length and CRC. The Open-time recovery scan deliberately
// checks only lengths (to stay O(files)); this is where the CRCs are
// re-read.
func (st *Store) verifyJournal() ([]VerifyIssue, error) {
	journal, exists, _, err := replayJournal(st.fs, st.dir)
	if err != nil {
		return nil, err
	}
	if !exists {
		return nil, nil
	}
	names := make([]string, 0, len(journal))
	for name := range journal {
		names = append(names, name)
	}
	sort.Strings(names)
	var issues []VerifyIssue
	for _, name := range names {
		e, ok := parseName(name)
		if !ok {
			continue
		}
		je := journal[name]
		raw, err := faultfs.ReadFile(st.fs, filepath.Join(st.dir, name))
		if err != nil {
			issues = append(issues, newIssue(e.Variable, e.Kind, e.Iteration,
				fmt.Errorf("journaled file unreadable: %w", err)))
			continue
		}
		if int64(len(raw)) != je.Len {
			issues = append(issues, newIssue(e.Variable, e.Kind, e.Iteration,
				fmt.Errorf("%w: journal records %d bytes, file has %d", ErrCorrupt, je.Len, len(raw))))
			continue
		}
		if crc := crc32.ChecksumIEEE(raw); crc != je.CRC {
			issues = append(issues, newIssue(e.Variable, e.Kind, e.Iteration,
				fmt.Errorf("%w: journal CRC %08x, file CRC %08x", ErrCorrupt, je.CRC, crc)))
		}
	}
	return issues, nil
}

// VariableStats summarizes one variable's storage in the store.
type VariableStats struct {
	Variable   string
	Fulls      int
	Deltas     int
	FullBytes  int64
	DeltaBytes int64
	FirstIter  int
	LastIter   int
}

// TotalBytes returns the variable's total on-disk size.
func (s VariableStats) TotalBytes() int64 { return s.FullBytes + s.DeltaBytes }

// Stats returns per-variable storage statistics, sorted by variable
// name. Sizes come from the in-memory chain's journaled lengths — no
// per-file Stat calls.
func (st *Store) Stats() ([]VariableStats, error) {
	return chainStats(st.chain), nil
}

// LatestRestorable returns the highest iteration of a variable that can
// be reconstructed: the end of the unbroken delta chain rooted at the
// latest full checkpoint, computed from the in-memory chain.
// ErrNotFound means no full checkpoint exists.
func (st *Store) LatestRestorable(variable string) (int, error) {
	restorable := latestRestorableEntries(chainEntries(st.chain, variable))
	if restorable < 0 {
		return 0, fmt.Errorf("%w: variable %s has no full checkpoint", ErrNotFound, variable)
	}
	return restorable, nil
}

// ErrNothingToGC reports a GC request that would delete everything.
var ErrNothingToGC = errors.New("checkpoint: no full checkpoint to retain")

// GC deletes, for every variable, all checkpoints strictly before the
// last full checkpoint at or before keepFrom, preserving the ability to
// restart at any iteration >= that full. It returns the number of
// files removed. Typical use: after a simulation confirms progress
// beyond iteration i, GC(i) drops the now-unneeded prefix.
func (st *Store) GC(keepFrom int) (removed int, err error) {
	if st.closed {
		return 0, ErrClosed
	}
	for _, v := range chainVariables(st.chain) {
		entries := chainEntries(st.chain, v)
		baseFull := -1
		for _, e := range entries {
			if e.Kind == "full" && e.Iteration <= keepFrom {
				baseFull = e.Iteration
			}
		}
		if baseFull < 0 {
			return removed, fmt.Errorf("%w: variable %s has no full checkpoint at or before %d", ErrNothingToGC, v, keepFrom)
		}
		for _, e := range entries {
			if e.Iteration < baseFull {
				name := fileName(v, e.Kind, e.Iteration)
				if err := st.fs.Remove(st.path(v, e.Kind, e.Iteration)); err != nil {
					return removed, pathErr("remove", st.path(v, e.Kind, e.Iteration), err)
				}
				if err := appendJournal(st.fs, st.dir, journalRecord{Op: "drop", Name: name}); err != nil {
					return removed, err
				}
				delete(st.chain, name)
				removed++
			}
		}
	}
	if removed > 0 {
		if err := st.fs.SyncDir(st.dir); err != nil {
			return removed, pathErr("sync", st.dir, err)
		}
		// One republish covers the whole batch of drops; readers see the
		// pre-GC chain or the post-GC chain, nothing in between.
		if err := st.republishIndex(); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
