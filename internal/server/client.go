package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
)

// Client talks to a running numarckd from the CLIs: it streams
// checkpoint bodies up, reconstructions down, and decodes the daemon's
// structured JSON errors back into *APIError values callers can branch
// on. The zero HTTP field uses http.DefaultClient.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8377".
	Base string
	// Tenant is the tenant every call addresses.
	Tenant string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// httpClient returns the configured or default transport.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// url joins the base URL, /v1/{tenant}, the path parts, and the query.
func (c *Client) url(q url.Values, parts ...string) string {
	u := c.Base + "/v1/" + url.PathEscape(c.Tenant)
	for _, p := range parts {
		u += "/" + url.PathEscape(p)
	}
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	return u
}

// do runs a request and either returns the response (status < 300) or
// decodes the daemon's JSON error body into an *APIError.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 300 {
		return resp, nil
	}
	defer func() {
		//lint:ignore errcheck error-path body drain; the error below carries the signal
		resp.Body.Close()
	}()
	var ae APIError
	if jerr := json.NewDecoder(resp.Body).Decode(&ae); jerr != nil || ae.Status == 0 {
		return nil, fmt.Errorf("server: %s: unexpected status %s", req.URL.Path, resp.Status)
	}
	return nil, &ae
}

// decodeJSON drains a successful response into v.
func decodeJSON(resp *http.Response, v any) error {
	defer func() {
		//lint:ignore errcheck body fully decoded below; close errors on a read-drained body carry no data
		resp.Body.Close()
	}()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("server: decode response: %w", err)
	}
	return nil
}

// Push streams body (raw little-endian float64 values) as iteration
// iter of series, with extra query parameters (kind, e, b, strategy,
// chunk, workers, budget) from q. A nil q commits with the daemon's
// defaults.
func (c *Client) Push(series string, iter int, body io.Reader, q url.Values) (*CommitResponse, error) {
	if q == nil {
		q = url.Values{}
	}
	q.Set("iter", strconv.Itoa(iter))
	req, err := http.NewRequest(http.MethodPost, c.url(q, series, "checkpoints"), body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var cr CommitResponse
	if err := decodeJSON(resp, &cr); err != nil {
		return nil, err
	}
	return &cr, nil
}

// PushFile streams the raw float64 file at path as iteration iter.
func (c *Client) PushFile(series string, iter int, path string, q url.Values) (*CommitResponse, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errcheck read-only upload source; a close error cannot lose data
	defer f.Close()
	return c.Push(series, iter, f, q)
}

// PushRaw commits an already-encoded NMRKF1/NMRKD1/NMRKD2 file
// byte-for-byte (?raw=1): the wire carries exactly the file format.
func (c *Client) PushRaw(series string, iter int, raw []byte) (*CommitResponse, error) {
	q := url.Values{}
	q.Set("raw", "1")
	return c.Push(series, iter, bytes.NewReader(raw), q)
}

// Fetch streams iteration iter's reconstructed state into w and
// returns the point count plus, when salvage ran (?recover=1) and
// found damage, the lost-range report from the X-Numarck-Partial
// header.
func (c *Client) Fetch(series string, iter int, w io.Writer, salvage bool) (points int, partial *PartialInfo, err error) {
	q := url.Values{}
	if salvage {
		q.Set("recover", "1")
	}
	req, err := http.NewRequest(http.MethodGet, c.url(q, series, "checkpoints", strconv.Itoa(iter)), nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return 0, nil, err
	}
	defer func() {
		//lint:ignore errcheck body fully copied below; close errors on a drained body carry no data
		resp.Body.Close()
	}()
	if pj := resp.Header.Get("X-Numarck-Partial"); pj != "" {
		partial = &PartialInfo{}
		if err := json.Unmarshal([]byte(pj), partial); err != nil {
			return 0, nil, fmt.Errorf("server: partial header: %w", err)
		}
	}
	n, err := io.Copy(w, resp.Body)
	if err != nil {
		return 0, nil, err
	}
	if n%8 != 0 {
		return 0, nil, fmt.Errorf("server: response body is %d bytes, not a whole float64 array", n)
	}
	return int(n / 8), partial, nil
}

// FetchRaw returns the committed file's exact bytes for one iteration
// (?raw=1) plus its kind ("full" or "delta").
func (c *Client) FetchRaw(series string, iter int) (raw []byte, kind string, err error) {
	q := url.Values{}
	q.Set("raw", "1")
	req, err := http.NewRequest(http.MethodGet, c.url(q, series, "checkpoints", strconv.Itoa(iter)), nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, "", err
	}
	defer func() {
		//lint:ignore errcheck body fully read below; close errors on a drained body carry no data
		resp.Body.Close()
	}()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	return raw, resp.Header.Get("X-Numarck-Kind"), nil
}

// SeriesChain fetches one series' chain report; verify runs the deep
// lock-free check server-side.
func (c *Client) SeriesChain(series string, verify bool) (*SeriesChainResponse, error) {
	q := url.Values{}
	if verify {
		q.Set("verify", "1")
	}
	req, err := http.NewRequest(http.MethodGet, c.url(q, series, "chain"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var sc SeriesChainResponse
	if err := decodeJSON(resp, &sc); err != nil {
		return nil, err
	}
	return &sc, nil
}

// TenantChain fetches the whole tenant's chain report.
func (c *Client) TenantChain(verify bool) (*TenantChainResponse, error) {
	q := url.Values{}
	if verify {
		q.Set("verify", "1")
	}
	req, err := http.NewRequest(http.MethodGet, c.url(q, "chain"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var tc TenantChainResponse
	if err := decodeJSON(resp, &tc); err != nil {
		return nil, err
	}
	return &tc, nil
}

// RestartPoint asks where a restarting application should resume.
func (c *Client) RestartPoint(series string) (*RestartResponse, error) {
	req, err := http.NewRequest(http.MethodPost, c.url(nil, series, "restart"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var rr RestartResponse
	if err := decodeJSON(resp, &rr); err != nil {
		return nil, err
	}
	return &rr, nil
}

// Metrics fetches the daemon's /metrics snapshot.
func (c *Client) Metrics() (*MetricsResponse, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var mr MetricsResponse
	if err := decodeJSON(resp, &mr); err != nil {
		return nil, err
	}
	return &mr, nil
}
