package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"numarck/internal/obs"
)

// RetryPolicy tells a Client how to survive a flaky network: how many
// attempts each logical call gets, how backoff between them grows, and
// how long any single attempt may run. The zero policy retries
// nothing — every call is one attempt that returns its raw error, which
// keeps the zero Client's behavior unchanged.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per call (first try
	// included). Values <= 1 disable retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms); MaxDelay
	// caps it (default 2s). A server Retry-After hint acts as a floor
	// over the computed delay; a 423 lock-held response instead waits
	// a tenth of the holder's age, clamped to [BaseDelay, MaxDelay].
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// PerAttemptTimeout bounds each individual attempt (0 = none); the
	// overall call can still span MaxAttempts of them plus backoff.
	PerAttemptTimeout time.Duration
	// Jitter randomizes each delay into [d/2, d] to spread retry
	// stampedes. Nil keeps delays deterministic. The Client guards this
	// source internally (rand.Rand is not goroutine-safe), so one
	// Client may retry from many goroutines; sharing the same *rand.Rand
	// across multiple Clients is still a race and is the caller's to
	// avoid.
	Jitter *rand.Rand
	// Sleep replaces time.Sleep between attempts (tests inject a
	// recorder; nil sleeps for real).
	Sleep func(time.Duration)
}

// RetryExhaustedError is the typed give-up: every attempt the policy
// allowed failed, and Last is the final attempt's error (reachable
// through errors.As/Is via Unwrap).
type RetryExhaustedError struct {
	// Attempts is how many attempts were made.
	Attempts int
	// Last is the final attempt's error.
	Last error
}

// Error renders the give-up with its cause.
func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("server: gave up after %d attempts: %v", e.Attempts, e.Last)
}

// Unwrap exposes the final attempt's error to errors.Is/As.
func (e *RetryExhaustedError) Unwrap() error { return e.Last }

// terminalError marks an error that must not be retried even though it
// is not a structured API rejection (e.g. the caller's local writer
// failed after bytes were already delivered).
type terminalError struct{ err error }

// Error renders the wrapped error.
func (e *terminalError) Error() string { return e.err.Error() }

// Unwrap exposes the wrapped error.
func (e *terminalError) Unwrap() error { return e.err }

// retryable decides whether another attempt could change the outcome.
// Transport-level failures (refused connections, cut bodies, torn JSON)
// always qualify; structured API errors qualify only when the server
// said "later" — 423 lock held, 429 over capacity, or any 5xx.
// 400/404/409/413 are truths about the request, not the weather.
func retryable(err error) bool {
	var te *terminalError
	if errors.As(err, &te) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusLocked || ae.Status == http.StatusTooManyRequests || ae.Status >= 500
	}
	return true
}

// Client talks to a running numarckd from the CLIs: it streams
// checkpoint bodies up, reconstructions down, and decodes the daemon's
// structured JSON errors back into *APIError values callers can branch
// on. The zero HTTP field uses http.DefaultClient; the zero Retry
// policy makes every call a single attempt. A Client is safe for
// concurrent use by multiple goroutines, like the http.Client it wraps
// (configure its fields before the first call, not during).
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8377".
	Base string
	// Tenant is the tenant every call addresses.
	Tenant string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// Retry is the client's resilience policy (zero = no retries).
	Retry RetryPolicy
	// Obs, when set, counts retries (obs.CounterRetries) so callers can
	// see how rough the network was.
	Obs *obs.Recorder

	// jitterMu serializes draws from Retry.Jitter across concurrent
	// calls on this Client.
	jitterMu sync.Mutex
}

// httpClient returns the configured or default transport.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// url joins the base URL, /v1/{tenant}, the path parts, and the query.
func (c *Client) url(q url.Values, parts ...string) string {
	u := c.Base + "/v1/" + url.PathEscape(c.Tenant)
	for _, p := range parts {
		u += "/" + url.PathEscape(p)
	}
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	return u
}

// sessionURL addresses a resumable upload session, which lives outside
// the tenant prefix.
func (c *Client) sessionURL(id string, parts ...string) string {
	u := c.Base + "/v1/uploads/" + url.PathEscape(id)
	for _, p := range parts {
		u += "/" + url.PathEscape(p)
	}
	return u
}

// drainClose consumes what remains of a response body (bounded) and
// closes it, so the transport can reuse the underlying connection
// instead of tearing it down — on success paths and error paths alike.
func drainClose(body io.ReadCloser) {
	// Drain is best-effort: a broken connection cannot be reused anyway.
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 256<<10))
	// Close errors on a drained body carry no data.
	_ = body.Close()
}

// decodeErrorBody turns a non-2xx response into a typed *APIError. A
// structured JSON body decodes as-is; anything else (a proxy's HTML, a
// bare status line, a torn body) is wrapped into an APIError with
// class "http" and the Retry-After header preserved, so the retry
// policy can classify every failure the same way.
func decodeErrorBody(resp *http.Response) error {
	defer drainClose(resp.Body)
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if err != nil {
		raw = nil
	}
	var ae APIError
	if jerr := json.Unmarshal(raw, &ae); jerr == nil && ae.Status != 0 {
		return &ae
	}
	ae = APIError{Status: resp.StatusCode, Class: "http", Detail: strings.TrimSpace(string(raw))}
	if ae.Detail == "" {
		ae.Detail = resp.Status
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, perr := strconv.Atoi(ra); perr == nil && sec > 0 {
			ae.RetryAfterSec = sec
		}
	}
	return &ae
}

// backoff computes the delay before retry number attempt (1-based),
// letting the server's own hints override the exponential schedule.
func (c *Client) backoff(attempt int, last error) time.Duration {
	base, maxd := c.Retry.BaseDelay, c.Retry.MaxDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	d := base << (attempt - 1)
	if d <= 0 || d > maxd {
		d = maxd
	}
	var ae *APIError
	if errors.As(last, &ae) {
		switch {
		case ae.Status == http.StatusLocked && ae.HolderAgeMs > 0:
			// A writer lock held for T tends to be released on that
			// timescale: poll at a tenth of the holder's age rather
			// than hammering or over-waiting.
			d = time.Duration(ae.HolderAgeMs/10) * time.Millisecond
			if d < base {
				d = base
			}
			if d > maxd {
				d = maxd
			}
		case ae.RetryAfterSec > 0:
			if ra := time.Duration(ae.RetryAfterSec) * time.Second; ra > d {
				d = ra
			}
		}
	}
	if c.Retry.Jitter != nil && d > 1 {
		c.jitterMu.Lock()
		n := c.Retry.Jitter.Int63n(int64(d/2) + 1)
		c.jitterMu.Unlock()
		d = d/2 + time.Duration(n)
	}
	return d
}

// sleep waits between attempts through the policy's injectable clock.
func (c *Client) sleep(d time.Duration) {
	if c.Retry.Sleep != nil {
		c.Retry.Sleep(d)
		return
	}
	time.Sleep(d)
}

// prepareBody turns a request body into a per-attempt factory. With
// retries enabled the body must be replayable: seekable bodies rewind
// in place, anything else is buffered once up front. Without retries a
// streaming body passes through untouched.
func prepareBody(r io.Reader, replayable bool) (func() (io.Reader, error), error) {
	if r == nil {
		return func() (io.Reader, error) { return nil, nil }, nil
	}
	if !replayable {
		return func() (io.Reader, error) { return r, nil }, nil
	}
	if rs, ok := r.(io.ReadSeeker); ok {
		start, err := rs.Seek(0, io.SeekCurrent)
		if err == nil {
			return func() (io.Reader, error) {
				if _, serr := rs.Seek(start, io.SeekStart); serr != nil {
					return nil, fmt.Errorf("server: rewind request body: %w", serr)
				}
				return rs, nil
			}, nil
		}
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("server: buffer request body: %w", err)
	}
	br := bytes.NewReader(raw)
	return func() (io.Reader, error) {
		if _, serr := br.Seek(0, io.SeekStart); serr != nil {
			return nil, fmt.Errorf("server: rewind request body: %w", serr)
		}
		return br, nil
	}, nil
}

// doRetry runs one logical call under the retry policy: build a fresh
// request per attempt (rewinding the body), classify each failure, back
// off between attempts, and hand successful responses to handle —
// which owns draining and closing the body. With retries enabled, an
// exhausted budget comes back as *RetryExhaustedError.
func (c *Client) doRetry(method, u string, hdr http.Header, body io.Reader, handle func(*http.Response) error) error {
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	rewind, err := prepareBody(body, attempts > 1)
	if err != nil {
		return err
	}
	var last error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if c.Obs != nil {
				c.Obs.Add(obs.CounterRetries, 1)
			}
			c.sleep(c.backoff(i, last))
		}
		last = c.attempt(method, u, hdr, rewind, handle)
		if last == nil {
			return nil
		}
		if !retryable(last) {
			return last
		}
	}
	if attempts > 1 {
		return &RetryExhaustedError{Attempts: attempts, Last: last}
	}
	return last
}

// attempt is one try of a logical call.
func (c *Client) attempt(method, u string, hdr http.Header, rewind func() (io.Reader, error), handle func(*http.Response) error) error {
	body, err := rewind()
	if err != nil {
		return &terminalError{err}
	}
	req, err := http.NewRequest(method, u, body)
	if err != nil {
		return &terminalError{err}
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	if c.Retry.PerAttemptTimeout > 0 {
		ctx, cancel := context.WithTimeout(req.Context(), c.Retry.PerAttemptTimeout)
		defer cancel()
		req = req.WithContext(ctx)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return decodeErrorBody(resp)
	}
	return handle(resp)
}

// doJSON runs a call whose success body is JSON decoded into out.
func (c *Client) doJSON(method, u string, hdr http.Header, body io.Reader, out any) error {
	return c.doRetry(method, u, hdr, body, func(resp *http.Response) error {
		return decodeJSON(resp, out)
	})
}

// decodeJSON drains a successful response into v and recycles the
// connection.
func decodeJSON(resp *http.Response, v any) error {
	defer drainClose(resp.Body)
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("server: decode response: %w", err)
	}
	return nil
}

// payloadBody makes body replayable and computes its CRC-32 (IEEE),
// the checksum Push sends in PayloadCRCHeader so the daemon can reject
// transit corruption and recognize retried commits. Seekable bodies
// (files, byte readers) rewind in place; anything else is spooled to a
// temp file rather than read into memory, so a multi-GB stream costs
// disk, not client RAM. cleanup releases the spool (a no-op for
// seekable bodies) and must run only after the request is done with
// the returned reader.
func payloadBody(body io.Reader) (r io.Reader, crc uint32, cleanup func(), err error) {
	cleanup = func() {}
	h := crc32.NewIEEE()
	if rs, ok := body.(io.ReadSeeker); ok {
		if start, serr := rs.Seek(0, io.SeekCurrent); serr == nil {
			if _, err := io.Copy(h, rs); err != nil {
				return nil, 0, cleanup, fmt.Errorf("server: checksum request body: %w", err)
			}
			if _, err := rs.Seek(start, io.SeekStart); err != nil {
				return nil, 0, cleanup, fmt.Errorf("server: rewind request body: %w", err)
			}
			return rs, h.Sum32(), cleanup, nil
		}
		// A ReadSeeker that cannot report its position (an exotic pipe
		// wrapper) is spooled like any plain stream.
	}
	f, err := os.CreateTemp("", "numarck-push-*")
	if err != nil {
		return nil, 0, cleanup, fmt.Errorf("server: spool request body: %w", err)
	}
	cleanup = func() {
		// The spool is scratch; close/remove errors cannot lose data.
		_ = f.Close()
		_ = os.Remove(f.Name())
	}
	if _, err := io.Copy(io.MultiWriter(f, h), body); err != nil {
		return nil, 0, cleanup, fmt.Errorf("server: spool request body: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, cleanup, fmt.Errorf("server: rewind request body: %w", err)
	}
	return f, h.Sum32(), cleanup, nil
}

// Push streams body (raw little-endian float64 values) as iteration
// iter of series, with extra query parameters (kind, e, b, strategy,
// chunk, workers, budget) from q. A nil q commits with the daemon's
// defaults. The payload CRC rides in PayloadCRCHeader, so a retried
// Push whose first attempt actually landed comes back Replayed instead
// of double-applied. Computing that CRC needs the whole body up front:
// seekable bodies are read twice in place; a non-seekable stream is
// spooled to a temp file for the call's duration, never buffered in
// memory.
func (c *Client) Push(series string, iter int, body io.Reader, q url.Values) (*CommitResponse, error) {
	if q == nil {
		q = url.Values{}
	}
	q.Set("iter", strconv.Itoa(iter))
	body, crc, cleanup, err := payloadBody(body)
	if err != nil {
		cleanup()
		return nil, err
	}
	defer cleanup()
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/octet-stream")
	hdr.Set(PayloadCRCHeader, strconv.FormatUint(uint64(crc), 10))
	var cr CommitResponse
	if err := c.doJSON(http.MethodPost, c.url(q, series, "checkpoints"), hdr, body, &cr); err != nil {
		return nil, err
	}
	return &cr, nil
}

// PushFile streams the raw float64 file at path as iteration iter.
func (c *Client) PushFile(series string, iter int, path string, q url.Values) (*CommitResponse, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errcheck read-only upload source; a close error cannot lose data
	defer f.Close()
	return c.Push(series, iter, f, q)
}

// PushRaw commits an already-encoded NMRKF1/NMRKD1/NMRKD2 file
// byte-for-byte (?raw=1): the wire carries exactly the file format.
func (c *Client) PushRaw(series string, iter int, raw []byte) (*CommitResponse, error) {
	q := url.Values{}
	q.Set("raw", "1")
	return c.Push(series, iter, bytes.NewReader(raw), q)
}

// PushResumable commits iteration iter through a resumable upload
// session: the payload goes up in rangeLen-byte ranges, each carrying
// its offset and CRC, and any connection loss costs at most one
// re-sent range — every PUT is idempotent, so a lost response is
// retried without double-appending, and finalize replays its cached
// answer. q carries the same commit parameters as Push (raw, kind, e,
// b, ...), captured at session creation.
func (c *Client) PushResumable(series string, iter int, body io.ReaderAt, size int64, rangeLen int64, q url.Values) (*CommitResponse, error) {
	if rangeLen <= 0 {
		rangeLen = 1 << 20
	}
	if q == nil {
		q = url.Values{}
	}
	q.Set("iter", strconv.Itoa(iter))
	q.Set("size", strconv.FormatInt(size, 10))

	// Whole-payload CRC: declared at finalize, journaled as the
	// commit's payload CRC.
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, io.NewSectionReader(body, 0, size)); err != nil {
		return nil, fmt.Errorf("server: checksum payload: %w", err)
	}
	total := h.Sum32()

	var us UploadResponse
	if err := c.doJSON(http.MethodPost, c.url(q, series, "uploads"), nil, nil, &us); err != nil {
		return nil, err
	}
	received := us.Received
	for received < size {
		end := received + rangeLen
		if end > size {
			end = size
		}
		sect := io.NewSectionReader(body, received, end-received)
		rh := crc32.NewIEEE()
		if _, err := io.Copy(rh, sect); err != nil {
			return nil, fmt.Errorf("server: checksum range: %w", err)
		}
		if _, err := sect.Seek(0, io.SeekStart); err != nil {
			return nil, fmt.Errorf("server: rewind range: %w", err)
		}
		hdr := http.Header{}
		hdr.Set("Content-Type", "application/octet-stream")
		hdr.Set(UploadOffsetHeader, strconv.FormatInt(received, 10))
		hdr.Set(RangeCRCHeader, strconv.FormatUint(uint64(rh.Sum32()), 10))
		var rr UploadResponse
		if err := c.doJSON(http.MethodPut, c.sessionURL(us.ID), hdr, sect, &rr); err != nil {
			return nil, err
		}
		if rr.State == uploadStateDone {
			// Another client (or an earlier lost finalize) completed
			// the session; its cached commit is the answer.
			if rr.Commit != nil {
				return rr.Commit, nil
			}
			break
		}
		if rr.Received <= received {
			return nil, fmt.Errorf("server: upload made no progress at offset %d", received)
		}
		received = rr.Received
	}

	hdr := http.Header{}
	hdr.Set(PayloadCRCHeader, strconv.FormatUint(uint64(total), 10))
	var fr UploadResponse
	if err := c.doJSON(http.MethodPost, c.sessionURL(us.ID, "finalize"), hdr, nil, &fr); err != nil {
		return nil, err
	}
	if fr.Commit == nil {
		return nil, fmt.Errorf("server: finalize returned no commit result")
	}
	return fr.Commit, nil
}

// PushResumableFile commits the raw float64 file at path through a
// resumable upload session.
func (c *Client) PushResumableFile(series string, iter int, path string, rangeLen int64, q url.Values) (*CommitResponse, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errcheck read-only upload source; a close error cannot lose data
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return c.PushResumable(series, iter, f, fi.Size(), rangeLen, q)
}

// UploadStatus reads a resumable session's progress — Received is
// where an interrupted upload resumes.
func (c *Client) UploadStatus(id string) (*UploadResponse, error) {
	var us UploadResponse
	if err := c.doJSON(http.MethodGet, c.sessionURL(id, "status"), nil, nil, &us); err != nil {
		return nil, err
	}
	return &us, nil
}

// Fetch streams iteration iter's reconstructed state into w and
// returns the point count plus, when salvage ran (?recover=1) and
// found damage, the lost-range report from the X-Numarck-Partial
// header. With retries enabled the response is buffered so a torn body
// never leaves a partial prefix in w; without them it streams.
func (c *Client) Fetch(series string, iter int, w io.Writer, salvage bool) (points int, partial *PartialInfo, err error) {
	q := url.Values{}
	if salvage {
		q.Set("recover", "1")
	}
	buffered := c.Retry.MaxAttempts > 1
	err = c.doRetry(http.MethodGet, c.url(q, series, "checkpoints", strconv.Itoa(iter)), nil, nil, func(resp *http.Response) error {
		defer drainClose(resp.Body)
		partial = nil
		if pj := resp.Header.Get("X-Numarck-Partial"); pj != "" {
			partial = &PartialInfo{}
			if perr := json.Unmarshal([]byte(pj), partial); perr != nil {
				return fmt.Errorf("server: partial header: %w", perr)
			}
		}
		dst := w
		var buf bytes.Buffer
		if buffered {
			dst = &buf
		}
		n, cerr := io.Copy(dst, resp.Body)
		if cerr != nil {
			if buffered {
				return cerr
			}
			// Bytes already reached w; a retry would double-deliver.
			return &terminalError{cerr}
		}
		if n%8 != 0 {
			return fmt.Errorf("server: response body is %d bytes, not a whole float64 array", n)
		}
		if buffered {
			if _, werr := w.Write(buf.Bytes()); werr != nil {
				return &terminalError{werr}
			}
		}
		points = int(n / 8)
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return points, partial, nil
}

// FetchRaw returns the committed file's exact bytes for one iteration
// (?raw=1) plus its kind ("full" or "delta").
func (c *Client) FetchRaw(series string, iter int) (raw []byte, kind string, err error) {
	q := url.Values{}
	q.Set("raw", "1")
	err = c.doRetry(http.MethodGet, c.url(q, series, "checkpoints", strconv.Itoa(iter)), nil, nil, func(resp *http.Response) error {
		defer drainClose(resp.Body)
		b, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			return rerr
		}
		if cl := resp.Header.Get("Content-Length"); cl != "" {
			if want, perr := strconv.Atoi(cl); perr == nil && want != len(b) {
				return fmt.Errorf("server: torn response: %d of %d bytes", len(b), want)
			}
		}
		raw, kind = b, resp.Header.Get("X-Numarck-Kind")
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	return raw, kind, nil
}

// SeriesChain fetches one series' chain report; verify runs the deep
// lock-free check server-side.
func (c *Client) SeriesChain(series string, verify bool) (*SeriesChainResponse, error) {
	q := url.Values{}
	if verify {
		q.Set("verify", "1")
	}
	var sc SeriesChainResponse
	if err := c.doJSON(http.MethodGet, c.url(q, series, "chain"), nil, nil, &sc); err != nil {
		return nil, err
	}
	return &sc, nil
}

// TenantChain fetches the whole tenant's chain report.
func (c *Client) TenantChain(verify bool) (*TenantChainResponse, error) {
	q := url.Values{}
	if verify {
		q.Set("verify", "1")
	}
	var tc TenantChainResponse
	if err := c.doJSON(http.MethodGet, c.url(q, "chain"), nil, nil, &tc); err != nil {
		return nil, err
	}
	return &tc, nil
}

// RestartPoint asks where a restarting application should resume.
func (c *Client) RestartPoint(series string) (*RestartResponse, error) {
	var rr RestartResponse
	if err := c.doJSON(http.MethodPost, c.url(nil, series, "restart"), nil, nil, &rr); err != nil {
		return nil, err
	}
	return &rr, nil
}

// Metrics fetches the daemon's /metrics snapshot.
func (c *Client) Metrics() (*MetricsResponse, error) {
	var mr MetricsResponse
	if err := c.doJSON(http.MethodGet, c.Base+"/metrics", nil, nil, &mr); err != nil {
		return nil, err
	}
	return &mr, nil
}
