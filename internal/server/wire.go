package server

import (
	"numarck/internal/checkpoint"
	"numarck/internal/obs"
)

// This file is the daemon's wire vocabulary: the JSON bodies its
// endpoints produce, shared verbatim by the Client so the CLIs and
// the handlers cannot drift.

// CommitResponse reports one committed checkpoint.
type CommitResponse struct {
	// Tenant, Variable, Iteration, Kind identify what was committed
	// ("full" or "delta").
	Tenant    string `json:"tenant"`
	Variable  string `json:"variable"`
	Iteration int    `json:"iteration"`
	Kind      string `json:"kind"`
	// Points is the number of float64 values the checkpoint covers.
	Points int `json:"points"`
	// FileBytes is the committed file's size.
	FileBytes int64 `json:"file_bytes"`
	// Chunks, ChunkPoints, Workers, ExactValues describe a delta
	// encode's resolved pipeline run (zero for full or raw commits).
	Chunks      int `json:"chunks,omitempty"`
	ChunkPoints int `json:"chunk_points,omitempty"`
	Workers     int `json:"workers,omitempty"`
	ExactValues int `json:"exact_values,omitempty"`
	// Replayed reports that this commit was already journaled with the
	// same payload CRC and nothing new was written — the response of a
	// retried request whose first attempt actually landed (200, not
	// 201). Points and pipeline fields are zero on a replay.
	Replayed bool `json:"replayed,omitempty"`
}

// ChainEntryJSON is one committed chain file in a chain report.
type ChainEntryJSON struct {
	// Kind and Iteration identify the entry; Name is its file name in
	// the store directory.
	Kind      string `json:"kind"`
	Iteration int    `json:"iteration"`
	Name      string `json:"name"`
	// Bytes and CRC32 are the journaled length and checksum.
	Bytes int64  `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
}

// IndexHealthJSON is checkpoint.IndexHealth flattened for the wire
// (its Err field does not marshal).
type IndexHealthJSON struct {
	// Present, Fresh, Seq, Entries mirror checkpoint.IndexHealth.
	Present bool   `json:"present"`
	Fresh   bool   `json:"fresh"`
	Seq     uint64 `json:"seq"`
	Entries int    `json:"entries"`
	// Detail is the health's one-line rendering.
	Detail string `json:"detail"`
}

// indexHealthJSON flattens h for the wire.
func indexHealthJSON(h checkpoint.IndexHealth) IndexHealthJSON {
	return IndexHealthJSON{Present: h.Present, Fresh: h.Fresh, Seq: h.Seq, Entries: h.Entries, Detail: h.String()}
}

// SeriesChainResponse is one series' chain report.
type SeriesChainResponse struct {
	// Tenant and Variable identify the series.
	Tenant   string `json:"tenant"`
	Variable string `json:"variable"`
	// LatestRestorable is the highest reconstructable iteration, -1
	// when no full checkpoint exists.
	LatestRestorable int `json:"latest_restorable"`
	// Entries lists the committed files in iteration order.
	Entries []ChainEntryJSON `json:"entries"`
	// Index is the chain index's health.
	Index IndexHealthJSON `json:"index"`
	// Verified reports whether the deep check ran (?verify=1); Issues
	// holds what it found for this series.
	Verified bool     `json:"verified"`
	Issues   []string `json:"issues,omitempty"`
}

// TenantChainResponse is a whole tenant's chain report.
type TenantChainResponse struct {
	// Tenant is the tenant name.
	Tenant string `json:"tenant"`
	// Variables lists the series in the tenant's store.
	Variables []string `json:"variables"`
	// Stats is the per-series storage breakdown.
	Stats []checkpoint.VariableStats `json:"stats"`
	// Latest maps each series to its latest restorable iteration
	// (absent when none).
	Latest map[string]int `json:"latest"`
	// Index is the chain index's health.
	Index IndexHealthJSON `json:"index"`
	// Verified reports whether the deep check ran (?verify=1); Issues
	// holds everything it found.
	Verified bool     `json:"verified"`
	Issues   []string `json:"issues,omitempty"`
}

// RestartResponse tells a restarting application where to resume.
type RestartResponse struct {
	// Tenant and Variable identify the series.
	Tenant   string `json:"tenant"`
	Variable string `json:"variable"`
	// Iteration is the latest restorable iteration — the state to GET
	// and resume from.
	Iteration int `json:"iteration"`
}

// PartialInfo describes salvage losses on a ?recover=1 read; it rides
// in the X-Numarck-Partial response header as compact JSON.
type PartialInfo struct {
	// LostPoints is the total number of points whose values were not
	// recovered (they hold the previous iteration's values).
	LostPoints int `json:"lost_points"`
	// Lost lists the half-open [lo, hi) index ranges that were lost.
	Lost []RangeJSON `json:"lost"`
}

// RangeJSON is one half-open lost index range.
type RangeJSON struct {
	// Lo and Hi bound the range: indices lo through hi-1 are lost.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// MetricsResponse is the /metrics body.
type MetricsResponse struct {
	// UptimeNs is nanoseconds since the server was built.
	UptimeNs int64 `json:"uptime_ns"`
	// Draining reports whether shutdown has begun.
	Draining bool `json:"draining"`
	// Governor is the admission controller's state.
	Governor GovernorStats `json:"governor"`
	// Tenants maps tenant name to that tenant's obs snapshot.
	Tenants map[string]obs.Snapshot `json:"tenants"`
	// Process merges every tenant snapshot into the process-wide view.
	Process obs.Snapshot `json:"process"`
	// Janitor is the self-healing sweeper's counters (spools_reaped,
	// sessions_reaped, locks_recovered), kept apart from the tenant
	// pipelines they clean up after.
	Janitor obs.Snapshot `json:"janitor"`
}

// UploadResponse describes one resumable upload session: returned by
// session creation, every accepted range, status reads, and (with
// Commit set) finalize.
type UploadResponse struct {
	// ID names the session in /v1/uploads/{id} URLs.
	ID string `json:"id"`
	// Tenant, Variable, Iteration identify the commit the session will
	// finalize into.
	Tenant    string `json:"tenant"`
	Variable  string `json:"variable"`
	Iteration int    `json:"iteration"`
	// Size is the declared total payload size; Received is the
	// contiguous prefix stored so far. The client resumes a broken
	// upload by re-reading Received and sending from there.
	Size     int64 `json:"size"`
	Received int64 `json:"received"`
	// State is "open" while ranges are accepted, "done" once finalized.
	State string `json:"state"`
	// Commit is the finalize result (present only once State is done).
	Commit *CommitResponse `json:"commit,omitempty"`
}
