package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"numarck/internal/checkpoint"
	"numarck/internal/chunk"
)

// TestClassifyTable pins the typed-error → HTTP mapping: every
// sentinel the storage and pipeline layers can surface has a stable
// status and machine-readable class, including when wrapped.
func TestClassifyTable(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		class  string
	}{
		{"bad request", errBadRequest, http.StatusBadRequest, "bad_request"},
		{"bad variable", checkpoint.ErrBadVariable, http.StatusBadRequest, "bad_request"},
		{"not found", checkpoint.ErrNotFound, http.StatusNotFound, "not_found"},
		{"chain conflict", checkpoint.ErrChain, http.StatusConflict, "chain_conflict"},
		{"pipeline budget", chunk.ErrBudget, http.StatusRequestEntityTooLarge, "budget_exceeded"},
		{"too large", ErrTooLarge, http.StatusRequestEntityTooLarge, "too_large"},
		{"over capacity", ErrOverCapacity, http.StatusTooManyRequests, "over_capacity"},
		{"locked", checkpoint.ErrLocked, http.StatusLocked, "store_locked"},
		{"draining", ErrDraining, http.StatusServiceUnavailable, "draining"},
		{"closed store", checkpoint.ErrClosed, http.StatusServiceUnavailable, "draining"},
		{"corrupt", checkpoint.ErrCorrupt, http.StatusInternalServerError, "corrupt_store"},
		{"truncated", checkpoint.ErrTruncated, http.StatusInternalServerError, "corrupt_store"},
		{"canceled", context.Canceled, http.StatusServiceUnavailable, "canceled"},
		{"deadline", context.DeadlineExceeded, http.StatusServiceUnavailable, "canceled"},
		{"unknown", errors.New("boom"), http.StatusInternalServerError, "internal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, err := range []error{tc.err, fmt.Errorf("outer: %w", tc.err)} {
				ae := classify(err)
				if ae.Status != tc.status || ae.Class != tc.class {
					t.Errorf("classify(%v) = %d %s, want %d %s", err, ae.Status, ae.Class, tc.status, tc.class)
				}
				if ae.Detail == "" {
					t.Errorf("classify(%v) lost the error text", err)
				}
			}
		})
	}
}

// TestClassifyLockHolder checks that a LockHeldError anywhere in the
// chain carries the holder's PID and lock age onto the 423.
func TestClassifyLockHolder(t *testing.T) {
	lh := &checkpoint.LockHeldError{
		Dir: "/store", PID: 4242,
		Acquired: time.Now().Add(-3 * time.Second).UnixNano(),
	}
	ae := classify(fmt.Errorf("open store: %w", lh))
	if ae.Status != http.StatusLocked || ae.Class != "store_locked" {
		t.Fatalf("LockHeldError mapped to %d %s", ae.Status, ae.Class)
	}
	if ae.HolderPID != 4242 {
		t.Errorf("holder pid = %d, want 4242", ae.HolderPID)
	}
	if ae.HolderAgeMs < 2000 {
		t.Errorf("holder age = %dms, want ~3000", ae.HolderAgeMs)
	}
	if ae.RetryAfterSec <= 0 {
		t.Error("423 carried no retry hint")
	}
}

// TestWriteErrorHeaders checks the rendered response: mapped status,
// JSON body, and a Retry-After header whenever the class hints one.
func TestWriteErrorHeaders(t *testing.T) {
	rr := httptest.NewRecorder()
	writeError(rr, ErrOverCapacity)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}

	rr = httptest.NewRecorder()
	writeError(rr, checkpoint.ErrNotFound)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rr.Code)
	}
	if rr.Header().Get("Retry-After") != "" {
		t.Error("404 should not hint a retry")
	}
}
