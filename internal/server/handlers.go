package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strconv"

	"numarck/internal/checkpoint"
	"numarck/internal/chunk"
	"numarck/internal/core"
	"numarck/internal/obs"
	"numarck/internal/rawio"
)

// tenantSeries resolves and validates the {tenant}/{series} path
// parameters.
func (s *Server) tenantSeries(r *http.Request) (*Tenant, string, error) {
	t, err := s.reg.Tenant(r.PathValue("tenant"))
	if err != nil {
		return nil, "", err
	}
	series := r.PathValue("series")
	if err := checkpoint.ValidateVariable(series); err != nil {
		return nil, "", fmt.Errorf("series name: %w", err)
	}
	return t, series, nil
}

// requestParams layers per-request query overrides (e, b, strategy,
// chunk, workers, budget) over the server's default encode options and
// pipeline config.
func (s *Server) requestParams(q url.Values) (core.Options, chunk.Config, error) {
	opt, cfg := s.cfg.Opt, s.cfg.Chunk
	if v := q.Get("e"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return opt, cfg, fmt.Errorf("%w: e=%q", errBadRequest, v)
		}
		opt.ErrorBound = f
	}
	if v := q.Get("b"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return opt, cfg, fmt.Errorf("%w: b=%q", errBadRequest, v)
		}
		opt.IndexBits = n
	}
	if v := q.Get("strategy"); v != "" {
		st, err := core.ParseStrategy(v)
		if err != nil {
			return opt, cfg, fmt.Errorf("%w: %v", errBadRequest, err)
		}
		opt.Strategy = st
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{{"chunk", &cfg.ChunkPoints}, {"workers", &cfg.Workers}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return opt, cfg, fmt.Errorf("%w: %s=%q", errBadRequest, p.name, v)
			}
			*p.dst = n
		}
	}
	if v := q.Get("budget"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return opt, cfg, fmt.Errorf("%w: budget=%q", errBadRequest, v)
		}
		cfg.BudgetBytes = n
	}
	var err error
	if opt, err = opt.Validate(); err != nil {
		return opt, cfg, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return opt, cfg, nil
}

// admit runs governor admission with the server's wait budget.
func (s *Server) admit(r *http.Request, weight int64) (func(), error) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AdmitWait)
	defer cancel()
	return s.gov.Acquire(ctx, weight)
}

// PayloadCRCHeader is the request header carrying the CRC-32 (IEEE)
// of the commit payload as the client sent it. The daemon verifies it
// against the bytes that actually arrived (rejecting transit
// corruption) and journals it with the commit, so a retried request
// with the same payload is recognized and replayed instead of
// double-applied.
const PayloadCRCHeader = "X-Numarck-Payload-CRC32"

// declaredCRC parses the PayloadCRCHeader and cross-checks it against
// the spooled body's actual CRC.
func declaredCRC(r *http.Request, got uint32) error {
	v := r.Header.Get(PayloadCRCHeader)
	if v == "" {
		return nil
	}
	want, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		return fmt.Errorf("%w: %s=%q", errBadRequest, PayloadCRCHeader, v)
	}
	//lint:ignore bindex ParseUint's bitSize 32 already bounds want
	if uint32(want) != got {
		return fmt.Errorf("%w: payload CRC %08x does not match received bytes (%08x)", errBadRequest, want, got)
	}
	return nil
}

// replayMatch reports whether a journaled commit is the same payload a
// retried request carries: the declared payload CRC matches the
// journaled one, or — for entries journaled before payload CRCs
// existed (adopted files) — the payload is byte-identical to the
// committed file itself.
func replayMatch(ce checkpoint.CommittedEntry, payloadCRC uint32) bool {
	return payloadCRC == ce.PayloadCRC || (ce.PayloadCRC == 0 && payloadCRC == ce.CRC)
}

// conflictErr renders the losing side of an idempotency check.
func conflictErr(series string, iter int, ce checkpoint.CommittedEntry, payloadCRC uint32) error {
	return fmt.Errorf("%w: %s@%d holds %s (payload crc %08x, request %08x)",
		ErrCommitConflict, series, iter, ce.Name, ce.PayloadCRC, payloadCRC)
}

// resolveReplay decides a commit for an iteration the chain may
// already hold, under the writer lock so concurrent retries
// serialize: resolved true means the journaled entry matches the
// payload (a replay), an ErrCommitConflict means it does not, and
// resolved false with nil error means the entry vanished (fall
// through to a normal commit).
func (s *Server) resolveReplay(t *Tenant, series string, iter int, payloadCRC uint32) (resolved bool, ce checkpoint.CommittedEntry, err error) {
	err = t.WithStore(func(st *checkpoint.Store) error {
		e, ok := st.Committed(series, iter)
		if !ok {
			return nil
		}
		if !replayMatch(e, payloadCRC) {
			return conflictErr(series, iter, e, payloadCRC)
		}
		resolved, ce = true, e
		return nil
	})
	return resolved, ce, err
}

// chainHasIter reports, through the lock-free read view, whether the
// series' chain already holds an entry for iter. Advisory only: the
// view can lag the writer, so commit paths re-check under the lock.
func chainHasIter(t *Tenant, series string, iter int) bool {
	view, err := t.View()
	if err != nil {
		return false
	}
	entries, err := view.Chain(series)
	if err != nil {
		return false
	}
	for _, ce := range entries {
		if ce.Iteration == iter {
			return true
		}
	}
	return false
}

// writeReplay answers a retried commit whose payload is already
// journaled: 200 (not 201 — nothing was created) with the committed
// entry's identity and Replayed set.
func (s *Server) writeReplay(w http.ResponseWriter, t *Tenant, series string, iter int, ce checkpoint.CommittedEntry) {
	t.rec.Add(obs.CounterCommitReplays, 1)
	writeJSON(w, http.StatusOK, CommitResponse{
		Tenant: t.Name(), Variable: series, Iteration: iter,
		Kind: ce.Kind, FileBytes: ce.Len, Replayed: true,
	})
}

// handlePostCheckpoint commits one iteration. The default body is the
// iteration's raw little-endian float64 state: the daemon spools it
// (the pipeline reads its source twice), reconstructs the previous
// iteration from the chain for a delta encode, runs the out-of-core
// pipeline, and commits the result. With ?raw=1 the body is an
// already-encoded NMRKF1/NMRKD1/NMRKD2 file committed as-is after
// validation — the wire format is exactly the file format.
//
// Query: iter (required), kind=auto|full|delta (default auto: delta
// when the chain reaches iter-1), raw=1, plus the per-request encode
// overrides e, b, strategy, chunk, workers, budget.
func (s *Server) handlePostCheckpoint(w http.ResponseWriter, r *http.Request) {
	t, series, err := s.tenantSeries(r)
	if err != nil {
		writeError(w, err)
		return
	}
	q := r.URL.Query()
	iter, err := strconv.Atoi(q.Get("iter"))
	if err != nil {
		writeError(w, fmt.Errorf("%w: iter=%q", errBadRequest, q.Get("iter")))
		return
	}
	if err := checkpoint.ValidateVariable(series); err != nil {
		writeError(w, err)
		return
	}
	opt, cfg, err := s.requestParams(q)
	if err != nil {
		writeError(w, err)
		return
	}
	spoolPath, size, payloadCRC, err := s.spool(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	defer s.releaseSpool(spoolPath)
	// A leftover spool file is inert scratch; cleanup is best-effort.
	defer os.Remove(spoolPath)
	if err := declaredCRC(r, payloadCRC); err != nil {
		writeError(w, err)
		return
	}

	if q.Get("raw") == "1" {
		s.commitRaw(w, r, t, series, iter, spoolPath, size, payloadCRC)
		return
	}
	s.commitValues(w, r, t, series, iter, q.Get("kind"), opt, cfg, spoolPath, size, payloadCRC)
}

// commitRaw commits an already-encoded checkpoint file byte-for-byte.
// The admission weight is the file size: the bytes are held once for
// validation and commit. The idempotency check runs inside the writer
// critical section, so two racing retries of the same request
// serialize — one commits, the other replays, the journal gains
// exactly one "add".
func (s *Server) commitRaw(w http.ResponseWriter, r *http.Request, t *Tenant, series string, iter int, spoolPath string, size int64, payloadCRC uint32) {
	release, err := s.admit(r, size)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	raw, err := os.ReadFile(spoolPath)
	if err != nil {
		writeError(w, err)
		return
	}
	var kind string
	switch {
	case bytes.HasPrefix(raw, []byte("NMRKD2")), bytes.HasPrefix(raw, []byte("NMRKD1")):
		kind = "delta"
	case bytes.HasPrefix(raw, []byte("NMRKF1")):
		kind = "full"
	default:
		writeError(w, fmt.Errorf("%w: body is not an NMRKF1/NMRKD1/NMRKD2 checkpoint file", errBadRequest))
		return
	}
	var replay checkpoint.CommittedEntry
	replayed := false
	err = t.WithStore(func(st *checkpoint.Store) error {
		if ce, ok := st.Committed(series, iter); ok {
			if !replayMatch(ce, payloadCRC) {
				return conflictErr(series, iter, ce, payloadCRC)
			}
			replayed, replay = true, ce
			return nil
		}
		if kind == "delta" {
			return st.WriteRawDeltaPayload(series, iter, raw, payloadCRC)
		}
		return st.WriteRawFullPayload(series, iter, raw, payloadCRC)
	})
	if err != nil {
		writeError(w, err)
		return
	}
	if replayed {
		s.writeReplay(w, t, series, iter, replay)
		return
	}
	t.rec.Add(obs.CounterBytesWritten, int64(len(raw)))
	writeJSON(w, http.StatusCreated, CommitResponse{
		Tenant: t.Name(), Variable: series, Iteration: iter, Kind: kind, FileBytes: int64(len(raw)),
	})
}

// commitValues encodes and commits a raw float64 body. Admission
// weights by what the request will actually hold live: a full commit
// materializes the values plus the marshalled file (~2x body); a delta
// adds the resolved pipeline footprint (chunk.ResolveConfig) on top of
// the reconstructed previous iteration and the encoded output.
//
// Replay detection runs twice: a cheap pre-encode probe through the
// read view (so a retried delta commit skips the whole pipeline), and
// again inside the writer critical section as the race backstop — two
// concurrent retries serialize there, and exactly one journals.
func (s *Server) commitValues(w http.ResponseWriter, r *http.Request, t *Tenant, series string, iter int, kind string, opt core.Options, cfg chunk.Config, spoolPath string, size int64, payloadCRC uint32) {
	if size%8 != 0 {
		writeError(w, fmt.Errorf("%w: body is %d bytes, not a whole float64 array", errBadRequest, size))
		return
	}
	n := int(size / 8)
	switch kind {
	case "", "auto":
		kind = "full"
		if iter > 0 {
			if v, err := t.View(); err == nil {
				if latest, err := v.LatestRestorable(series); err == nil && latest == iter-1 {
					kind = "delta"
				}
			}
		}
	case "full", "delta":
	default:
		writeError(w, fmt.Errorf("%w: kind=%q (want auto, full, or delta)", errBadRequest, kind))
		return
	}

	// Pre-encode replay probe: if the chain already holds this
	// iteration, resolve it under the lock before paying for admission
	// and encode. A miss here (entry appears between probe and commit)
	// is caught by the in-lock backstop below.
	if chainHasIter(t, series, iter) {
		resolved, ce, err := s.resolveReplay(t, series, iter, payloadCRC)
		if err != nil {
			writeError(w, err)
			return
		}
		if resolved {
			s.writeReplay(w, t, series, iter, ce)
			return
		}
	}

	if kind == "full" {
		release, err := s.admit(r, 2*size+64)
		if err != nil {
			writeError(w, err)
			return
		}
		defer release()
		vals, err := rawio.ReadFile(spoolPath)
		if err != nil {
			writeError(w, err)
			return
		}
		raw, err := checkpoint.MarshalFull(series, iter, vals)
		if err != nil {
			writeError(w, err)
			return
		}
		var replay checkpoint.CommittedEntry
		replayed := false
		err = t.WithStore(func(st *checkpoint.Store) error {
			if ce, ok := st.Committed(series, iter); ok {
				if !replayMatch(ce, payloadCRC) {
					return conflictErr(series, iter, ce, payloadCRC)
				}
				replayed, replay = true, ce
				return nil
			}
			return st.WriteRawFullPayload(series, iter, raw, payloadCRC)
		})
		if err != nil {
			writeError(w, err)
			return
		}
		if replayed {
			s.writeReplay(w, t, series, iter, replay)
			return
		}
		t.rec.Add(obs.CounterBytesWritten, int64(len(raw)))
		writeJSON(w, http.StatusCreated, CommitResponse{
			Tenant: t.Name(), Variable: series, Iteration: iter, Kind: "full", Points: n, FileBytes: int64(len(raw)),
		})
		return
	}

	resolved, err := chunk.ResolveConfig(cfg)
	if err != nil {
		writeError(w, err)
		return
	}
	release, err := s.admit(r, resolved.PeakBufferBytes+2*size)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	view, err := t.View()
	if err != nil {
		writeError(w, err)
		return
	}
	prevVals, err := view.Restart(series, iter-1)
	if err != nil {
		writeError(w, err)
		return
	}
	if len(prevVals) != n {
		writeError(w, fmt.Errorf("%w: iteration %d has %d points, body has %d", checkpoint.ErrChain, iter-1, len(prevVals), n))
		return
	}
	cur, err := rawio.OpenFile(spoolPath)
	if err != nil {
		writeError(w, err)
		return
	}
	//lint:ignore errcheck read-only spool source; a close error cannot lose data
	defer cur.Close()
	opt.Obs = t.rec
	cfg = resolved.Config
	cfg.Obs = t.rec
	var buf bytes.Buffer
	res, err := chunk.EncodeDeltaV2(&buf, series, iter, chunk.SliceSource(prevVals), cur, opt, cfg)
	if err != nil {
		writeError(w, err)
		return
	}
	var replay checkpoint.CommittedEntry
	replayed := false
	err = t.WithStore(func(st *checkpoint.Store) error {
		if ce, ok := st.Committed(series, iter); ok {
			if !replayMatch(ce, payloadCRC) {
				return conflictErr(series, iter, ce, payloadCRC)
			}
			replayed, replay = true, ce
			return nil
		}
		return st.WriteRawDeltaPayload(series, iter, buf.Bytes(), payloadCRC)
	})
	if err != nil {
		writeError(w, err)
		return
	}
	if replayed {
		s.writeReplay(w, t, series, iter, replay)
		return
	}
	writeJSON(w, http.StatusCreated, CommitResponse{
		Tenant: t.Name(), Variable: series, Iteration: iter, Kind: "delta", Points: n,
		FileBytes: int64(buf.Len()), Chunks: res.ChunkCount, ChunkPoints: res.ChunkPoints,
		Workers: res.Workers, ExactValues: res.ExactCount,
	})
}

// handleGetCheckpoint serves one iteration back. The default response
// body is the reconstructed state as raw little-endian float64 — the
// chain walk (latest full plus delta replay) happens server-side
// through the lock-free read view. ?recover=1 turns chunk-local
// corruption into a partial result: healthy chunks decode, lost ranges
// keep the previous iteration's values, and the exact losses ride in
// the X-Numarck-Partial header. ?raw=1 serves the committed file's
// exact bytes instead (NMRKF1/NMRKD1/NMRKD2, no framing).
func (s *Server) handleGetCheckpoint(w http.ResponseWriter, r *http.Request) {
	t, series, err := s.tenantSeries(r)
	if err != nil {
		writeError(w, err)
		return
	}
	iter, err := strconv.Atoi(r.PathValue("iter"))
	if err != nil {
		writeError(w, fmt.Errorf("%w: iteration %q", errBadRequest, r.PathValue("iter")))
		return
	}
	view, err := t.View()
	if err != nil {
		writeError(w, err)
		return
	}
	if r.URL.Query().Get("raw") == "1" {
		s.serveRaw(w, t, view, series, iter)
		return
	}

	// Weight the decode by the chain segment it must materialize: the
	// reconstructed state is ~the full file's size, held about twice
	// (accumulator plus response buffers), plus the compressed deltas.
	entries, err := view.Chain(series)
	if err != nil {
		writeError(w, err)
		return
	}
	var weight int64
	for _, ce := range entries {
		if ce.Kind == "full" && ce.Iteration <= iter {
			weight = 2 * ce.Len
		} else if ce.Kind == "delta" && ce.Iteration <= iter && weight > 0 {
			weight += ce.Len
		}
	}
	release, err := s.admit(r, weight)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()

	var vals []float64
	var pde *checkpoint.PartialDataError
	if r.URL.Query().Get("recover") == "1" {
		vals, pde, err = view.RestartSalvage(series, iter)
	} else {
		vals, err = view.Restart(series, iter)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.FormatInt(8*int64(len(vals)), 10))
	h.Set("X-Numarck-Variable", series)
	h.Set("X-Numarck-Iteration", strconv.Itoa(iter))
	h.Set("X-Numarck-Points", strconv.Itoa(len(vals)))
	if pde != nil {
		info := PartialInfo{LostPoints: pde.LostPoints()}
		for _, lr := range pde.Lost {
			info.Lost = append(info.Lost, RangeJSON{Lo: lr.Lo, Hi: lr.Hi})
		}
		pj, err := json.Marshal(info)
		if err != nil {
			writeError(w, err)
			return
		}
		h.Set("X-Numarck-Partial", string(pj))
	}
	w.WriteHeader(http.StatusOK)
	// Response write failures mean the client is gone; nothing to do.
	_ = rawio.NewWriter(w).WriteFloats(vals)
}

// serveRaw streams the committed file's exact bytes for one iteration.
func (s *Server) serveRaw(w http.ResponseWriter, t *Tenant, view *checkpoint.ReadView, series string, iter int) {
	entries, err := view.Chain(series)
	if err != nil {
		writeError(w, err)
		return
	}
	for _, ce := range entries {
		if ce.Iteration != iter {
			continue
		}
		raw, err := os.ReadFile(t.dir + string(os.PathSeparator) + ce.Name)
		if err != nil {
			writeError(w, err)
			return
		}
		h := w.Header()
		h.Set("Content-Type", "application/octet-stream")
		h.Set("Content-Length", strconv.Itoa(len(raw)))
		h.Set("X-Numarck-Variable", series)
		h.Set("X-Numarck-Iteration", strconv.Itoa(iter))
		h.Set("X-Numarck-Kind", ce.Kind)
		h.Set("X-Numarck-CRC32", strconv.FormatUint(uint64(ce.CRC), 16))
		w.WriteHeader(http.StatusOK)
		//lint:ignore errcheck response write failures mean the client is gone; nothing to recover
		w.Write(raw)
		return
	}
	writeError(w, fmt.Errorf("%w: %s@%d", checkpoint.ErrNotFound, series, iter))
}

// handleSeriesChain reports one series' chain: every committed file
// with its journaled size and CRC, the latest restorable iteration,
// and chain-index health — all from the lock-free read view, so it
// works while a writer holds the store. ?verify=1 additionally runs
// the read view's deep verify and reports this series' issues.
func (s *Server) handleSeriesChain(w http.ResponseWriter, r *http.Request) {
	t, series, err := s.tenantSeries(r)
	if err != nil {
		writeError(w, err)
		return
	}
	view, err := t.View()
	if err != nil {
		writeError(w, err)
		return
	}
	entries, err := view.Chain(series)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := SeriesChainResponse{
		Tenant: t.Name(), Variable: series, LatestRestorable: -1,
		Entries: make([]ChainEntryJSON, 0, len(entries)),
		Index:   indexHealthJSON(view.IndexHealth()),
	}
	for _, ce := range entries {
		resp.Entries = append(resp.Entries, ChainEntryJSON{
			Kind: ce.Kind, Iteration: ce.Iteration, Name: ce.Name, Bytes: ce.Len, CRC32: ce.CRC,
		})
	}
	if latest, err := view.LatestRestorable(series); err == nil {
		resp.LatestRestorable = latest
	}
	if r.URL.Query().Get("verify") == "1" {
		issues, err := view.Verify()
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Verified = true
		for _, is := range issues {
			if is.Variable == series {
				resp.Issues = append(resp.Issues, is.String())
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTenantChain reports a whole tenant's store: its series, their
// storage stats and latest restorable iterations, and index health.
// ?verify=1 adds the deep lock-free verify across every series.
func (s *Server) handleTenantChain(w http.ResponseWriter, r *http.Request) {
	t, err := s.reg.Tenant(r.PathValue("tenant"))
	if err != nil {
		writeError(w, err)
		return
	}
	view, err := t.View()
	if err != nil {
		writeError(w, err)
		return
	}
	vars, err := view.Variables()
	if err != nil {
		writeError(w, err)
		return
	}
	stats, err := view.Stats()
	if err != nil {
		writeError(w, err)
		return
	}
	resp := TenantChainResponse{
		Tenant: t.Name(), Variables: vars, Stats: stats,
		Latest: map[string]int{}, Index: indexHealthJSON(view.IndexHealth()),
	}
	for _, v := range vars {
		if latest, err := view.LatestRestorable(v); err == nil {
			resp.Latest[v] = latest
		}
	}
	if r.URL.Query().Get("verify") == "1" {
		issues, err := view.Verify()
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Verified = true
		for _, is := range issues {
			resp.Issues = append(resp.Issues, is.String())
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRestart answers a restarting application's first question:
// which iteration should I resume from? It returns the series' latest
// restorable iteration; the application then GETs that checkpoint.
func (s *Server) handleRestart(w http.ResponseWriter, r *http.Request) {
	t, series, err := s.tenantSeries(r)
	if err != nil {
		writeError(w, err)
		return
	}
	view, err := t.View()
	if err != nil {
		writeError(w, err)
		return
	}
	latest, err := view.LatestRestorable(series)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RestartResponse{Tenant: t.Name(), Variable: series, Iteration: latest})
}
