package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrTooLarge reports a request whose admission weight exceeds the
// governor's total capacity: it can never be admitted, no matter how
// long it waits, so the daemon rejects it permanently (413) instead of
// queueing it (429).
var ErrTooLarge = errors.New("server: request exceeds the memory governor's total capacity")

// ErrOverCapacity reports a request the governor could not admit within
// the caller's wait budget: capacity exists but is currently in use.
// The daemon maps it to 429 with a Retry-After hint.
var ErrOverCapacity = errors.New("server: memory governor over capacity")

// Governor is a weighted FIFO semaphore that admission-controls
// concurrent pipelines by their resolved memory footprint
// (chunk.ResolveConfig's PeakBufferBytes plus the request's
// materialized buffers). Requests that do not fit wait in strict
// arrival order — the head of the queue blocks the line, so a stream
// of small requests cannot starve a large one — and a caller whose
// context expires while queued is removed and told to retry. A nil
// Governor, or one with capacity 0, admits everything immediately.
type Governor struct {
	capacity int64

	mu      sync.Mutex
	used    int64
	waiters []*govWaiter
}

// govWaiter is one queued admission request. ready is closed by the
// releasing goroutine once the waiter's weight has been charged.
type govWaiter struct {
	weight int64
	ready  chan struct{}
}

// NewGovernor builds a governor with the given total capacity in
// bytes. capacity <= 0 means ungoverned: Acquire always admits.
func NewGovernor(capacity int64) *Governor {
	return &Governor{capacity: capacity}
}

// Acquire admits a request of the given weight, blocking in FIFO order
// until capacity is available or ctx is done. It returns the release
// function the caller must invoke exactly once when the request's
// buffers are dead (calling it again is a no-op). Weight is clamped to
// at least 1 so even a zero-cost request is serialized behind the
// queue. The error is ErrTooLarge when weight exceeds total capacity
// and ErrOverCapacity (wrapping the context error) when the wait
// budget ran out.
func (g *Governor) Acquire(ctx context.Context, weight int64) (release func(), err error) {
	if g == nil || g.capacity <= 0 {
		return func() {}, nil
	}
	if weight < 1 {
		weight = 1
	}
	if weight > g.capacity {
		return nil, fmt.Errorf("%w: request needs %d bytes, capacity is %d", ErrTooLarge, weight, g.capacity)
	}
	g.mu.Lock()
	if len(g.waiters) == 0 && g.used+weight <= g.capacity {
		g.used += weight
		g.mu.Unlock()
		return g.releaseFunc(weight), nil
	}
	w := &govWaiter{weight: weight, ready: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()
	select {
	case <-w.ready:
		return g.releaseFunc(weight), nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with the context expiring: the
			// weight is already charged, so hand it straight back and
			// still fail the admission — the caller is gone.
			g.used -= weight
			g.grantLocked()
		default:
			g.removeLocked(w)
		}
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: waited %d bytes behind %d in use: %w", ErrOverCapacity, weight, g.capacity, ctx.Err())
	}
}

// releaseFunc builds the idempotent release closure for an admitted
// weight.
func (g *Governor) releaseFunc(weight int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.used -= weight
			g.grantLocked()
			g.mu.Unlock()
		})
	}
}

// grantLocked admits queued waiters from the head while they fit.
// Strict FIFO: if the head does not fit, nothing behind it is
// considered. Called with g.mu held.
func (g *Governor) grantLocked() {
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if g.used+w.weight > g.capacity {
			return
		}
		g.used += w.weight
		g.waiters = g.waiters[1:]
		close(w.ready)
	}
}

// removeLocked drops a waiter that gave up. Called with g.mu held.
func (g *Governor) removeLocked(w *govWaiter) {
	for i, q := range g.waiters {
		if q == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}

// GovernorStats is the governor's point-in-time state, published under
// /metrics.
type GovernorStats struct {
	// CapacityBytes is the total admission capacity (0 = ungoverned).
	CapacityBytes int64 `json:"capacity_bytes"`
	// UsedBytes is the weight currently admitted.
	UsedBytes int64 `json:"used_bytes"`
	// Waiting is the number of requests queued for admission.
	Waiting int `json:"waiting"`
}

// Stats reports the governor's current state. Nil-safe.
func (g *Governor) Stats() GovernorStats {
	if g == nil {
		return GovernorStats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return GovernorStats{CapacityBytes: g.capacity, UsedBytes: g.used, Waiting: len(g.waiters)}
}
