package server

// Resumable chunked uploads: a session is created against a
// tenant/series/iteration, filled by sequential PUT ranges, and
// finalized through the exact same commit pipeline as a one-shot POST.
// Ranges are atomic — a range either lands whole (spooled, CRC-checked,
// then appended) or not at all — so any single connection loss costs
// the client at most one re-sent range: it re-reads Received from the
// session status and continues from there. Session state lives under
// root/.spool/uploads/<id>/ (meta.json + data), outside every tenant
// store, so a crashed daemon's leftovers are inert scratch the janitor
// reaps, never store-recovery work.

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"numarck/internal/checkpoint"
)

// uploadDirName is the directory under the spool root holding one
// subdirectory per resumable upload session.
const uploadDirName = "uploads"

// UploadOffsetHeader is the request header carrying a PUT range's byte
// offset into the session payload. It must not exceed the session's
// contiguous received prefix (upload_gap otherwise); offsets inside the
// prefix are deduplicated or partially skipped.
const UploadOffsetHeader = "X-Numarck-Upload-Offset"

// RangeCRCHeader is the optional request header carrying the CRC-32
// (IEEE) of one PUT range's bytes. A mismatch rejects the whole range
// before any byte reaches the session, so a corrupted range never
// poisons the resumable state.
const RangeCRCHeader = "X-Numarck-Range-CRC32"

// Upload session states.
const (
	uploadStateOpen = "open"
	uploadStateDone = "done"
)

// uploadMeta is a session's durable state, persisted as meta.json in
// the session directory after every accepted range so the session
// survives a daemon restart.
type uploadMeta struct {
	Tenant    string `json:"tenant"`
	Series    string `json:"series"`
	Iteration int    `json:"iteration"`
	// Size is the declared total payload size; Received is the
	// contiguous prefix on disk; CRC is the running CRC-32 of that
	// prefix — it becomes the commit's payload CRC at finalize, which
	// is what makes a finalized upload idempotent with the equivalent
	// one-shot POST.
	Size     int64  `json:"size"`
	Received int64  `json:"received"`
	CRC      uint32 `json:"crc"`
	// Query is the creation request's encoded query (iter, raw, kind,
	// e, b, ...), replayed at finalize so the commit runs with the
	// parameters the client chose up front.
	Query string `json:"query"`
	State string `json:"state"`
	// Commit caches the finalize result so a retried finalize replays
	// the same answer instead of re-entering the commit pipeline.
	Commit *CommitResponse `json:"commit,omitempty"`
}

// uploadSession is one live session: its mutex serializes ranges,
// status reads, and finalize against each other (different sessions
// proceed in parallel).
type uploadSession struct {
	mu   sync.Mutex
	id   string
	dir  string
	meta uploadMeta
}

// dataPath is the session's payload file (the contiguous prefix).
func (u *uploadSession) dataPath() string { return filepath.Join(u.dir, "data") }

// metaPath is the session's durable state file.
func (u *uploadSession) metaPath() string { return filepath.Join(u.dir, "meta.json") }

// saveLocked persists meta.json atomically (write-temp-then-rename);
// u.mu must be held.
func (u *uploadSession) saveLocked() error {
	raw, err := json.Marshal(u.meta)
	if err != nil {
		return fmt.Errorf("server: upload meta: %w", err)
	}
	tmp := u.metaPath() + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("server: upload meta: %w", err)
	}
	if err := os.Rename(tmp, u.metaPath()); err != nil {
		// Best-effort cleanup of the orphaned temp file.
		_ = os.Remove(tmp)
		return fmt.Errorf("server: upload meta: %w", err)
	}
	return nil
}

// reconcile aligns a disk-loaded open session's data file with its
// durable meta. A daemon that died between a range's data write and
// the meta.json rename leaves the file longer than meta.Received, and
// resuming against the file's length instead of the recorded prefix
// would mis-place the next range. The meta prefix is the truth — it is
// what the running CRC covers — so excess bytes are truncated away; a
// file shorter than the recorded prefix has lost acknowledged bytes,
// which fails the session rather than committing a hole.
func (u *uploadSession) reconcile() error {
	fi, err := os.Stat(u.dataPath())
	if err != nil {
		return fmt.Errorf("%w: upload session %s data: %v", checkpoint.ErrCorrupt, u.id, err)
	}
	if fi.Size() < u.meta.Received {
		return fmt.Errorf("%w: upload session %s: data file has %d bytes, meta recorded %d received",
			checkpoint.ErrCorrupt, u.id, fi.Size(), u.meta.Received)
	}
	if fi.Size() > u.meta.Received {
		if err := os.Truncate(u.dataPath(), u.meta.Received); err != nil {
			return fmt.Errorf("server: reconcile upload session %s: %w", u.id, err)
		}
	}
	return nil
}

// responseLocked renders the session for the wire; u.mu must be held.
func (u *uploadSession) responseLocked() UploadResponse {
	return UploadResponse{
		ID: u.id, Tenant: u.meta.Tenant, Variable: u.meta.Series, Iteration: u.meta.Iteration,
		Size: u.meta.Size, Received: u.meta.Received, State: u.meta.State, Commit: u.meta.Commit,
	}
}

// uploadTable maps session IDs to live sessions, loading sessions left
// by a previous daemon process from disk on first touch.
type uploadTable struct {
	dir      string
	mu       sync.Mutex
	sessions map[string]*uploadSession
}

// newUploadTable builds the table over its on-disk root.
func newUploadTable(dir string) *uploadTable {
	return &uploadTable{dir: dir, sessions: make(map[string]*uploadSession)}
}

// validUploadID reports whether id has the exact shape create mints
// (32 lowercase hex digits) — anything else is rejected before it can
// become a path component.
func validUploadID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// create mints a new session: a fresh random ID, its directory, an
// empty data file, and the first meta.json.
func (ut *uploadTable) create(meta uploadMeta) (*uploadSession, error) {
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		return nil, fmt.Errorf("server: upload id: %w", err)
	}
	id := hex.EncodeToString(buf)
	dir := filepath.Join(ut.dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: upload session: %w", err)
	}
	u := &uploadSession{id: id, dir: dir, meta: meta}
	if err := os.WriteFile(u.dataPath(), nil, 0o644); err != nil {
		return nil, fmt.Errorf("server: upload session: %w", err)
	}
	if err := u.saveLocked(); err != nil {
		return nil, err
	}
	ut.mu.Lock()
	ut.sessions[id] = u
	ut.mu.Unlock()
	return u, nil
}

// get resolves a session ID, falling back to disk for sessions created
// by a previous daemon process. Unknown or malformed IDs are 404s.
func (ut *uploadTable) get(id string) (*uploadSession, error) {
	if !validUploadID(id) {
		return nil, fmt.Errorf("%w: upload session %q", checkpoint.ErrNotFound, id)
	}
	ut.mu.Lock()
	defer ut.mu.Unlock()
	if u, ok := ut.sessions[id]; ok {
		return u, nil
	}
	dir := filepath.Join(ut.dir, id)
	raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("%w: upload session %s", checkpoint.ErrNotFound, id)
	}
	var meta uploadMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("%w: upload session %s meta: %v", checkpoint.ErrCorrupt, id, err)
	}
	u := &uploadSession{id: id, dir: dir, meta: meta}
	if meta.State == uploadStateOpen {
		// Sessions inherited from a crashed daemon may have a data file
		// that ran ahead of the durable meta; align them before any
		// range resumes against the wrong offset.
		if err := u.reconcile(); err != nil {
			return nil, err
		}
	}
	ut.sessions[id] = u
	return u, nil
}

// remove drops a session from the table (the janitor calls it after
// deleting the session directory).
func (ut *uploadTable) remove(id string) {
	ut.mu.Lock()
	delete(ut.sessions, id)
	ut.mu.Unlock()
}

// handleCreateUpload starts a resumable upload session. Query: iter
// and size are required; raw, kind, and the encode overrides (e, b,
// strategy, chunk, workers, budget) are captured now and replayed at
// finalize. Parameters are validated here so a doomed session fails
// before any byte is uploaded.
func (s *Server) handleCreateUpload(w http.ResponseWriter, r *http.Request) {
	t, series, err := s.tenantSeries(r)
	if err != nil {
		writeError(w, err)
		return
	}
	q := r.URL.Query()
	iter, err := strconv.Atoi(q.Get("iter"))
	if err != nil {
		writeError(w, fmt.Errorf("%w: iter=%q", errBadRequest, q.Get("iter")))
		return
	}
	size, err := strconv.ParseInt(q.Get("size"), 10, 64)
	if err != nil || size <= 0 {
		writeError(w, fmt.Errorf("%w: size=%q (want the total payload size in bytes)", errBadRequest, q.Get("size")))
		return
	}
	if _, _, err := s.requestParams(q); err != nil {
		writeError(w, err)
		return
	}
	u, err := s.uploads.create(uploadMeta{
		Tenant: t.Name(), Series: series, Iteration: iter,
		Size: size, State: uploadStateOpen, Query: q.Encode(),
	})
	if err != nil {
		writeError(w, err)
		return
	}
	u.mu.Lock()
	resp := u.responseLocked()
	u.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

// handlePutUploadRange accepts one range of a session's payload.
// Ranges are atomic: the body is spooled to a scratch file and
// CRC-checked first, so a torn or corrupted body leaves the session
// exactly where it was and the client simply re-sends that one range.
// A range fully inside the received prefix is acknowledged without
// writing (the idempotent retry case); a range straddling the prefix
// has its already-received head skipped.
func (s *Server) handlePutUploadRange(w http.ResponseWriter, r *http.Request) {
	u, err := s.uploads.get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	offset, err := strconv.ParseInt(r.Header.Get(UploadOffsetHeader), 10, 64)
	if err != nil || offset < 0 {
		writeError(w, fmt.Errorf("%w: %s=%q", errBadRequest, UploadOffsetHeader, r.Header.Get(UploadOffsetHeader)))
		return
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.meta.State == uploadStateDone {
		// The payload already committed; tell the retrying client so.
		writeJSON(w, http.StatusOK, u.responseLocked())
		return
	}
	if offset > u.meta.Received {
		writeError(w, fmt.Errorf("%w: range at offset %d, received prefix is %d", ErrUploadGap, offset, u.meta.Received))
		return
	}

	tmp, err := os.CreateTemp(u.dir, "range-*")
	if err != nil {
		writeError(w, fmt.Errorf("server: upload range: %w", err))
		return
	}
	// The scratch range file never outlives the handler.
	defer os.Remove(tmp.Name())
	h := crc32.NewIEEE()
	n, err := io.Copy(io.MultiWriter(tmp, h), r.Body)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Torn body: the range never happened. The connection is
		// usually dead too; the client re-sends from Received.
		writeError(w, fmt.Errorf("%w: range body: %v", errBadRequest, err))
		return
	}
	if v := r.Header.Get(RangeCRCHeader); v != "" {
		want, perr := strconv.ParseUint(v, 10, 32)
		if perr != nil {
			writeError(w, fmt.Errorf("%w: %s=%q", errBadRequest, RangeCRCHeader, v))
			return
		}
		//lint:ignore bindex ParseUint's bitSize 32 already bounds want
		if uint32(want) != h.Sum32() {
			writeError(w, fmt.Errorf("%w: range CRC %08x does not match received bytes (%08x)", errBadRequest, want, h.Sum32()))
			return
		}
	}
	if offset+n > u.meta.Size {
		writeError(w, fmt.Errorf("%w: range [%d,%d) exceeds declared size %d", errBadRequest, offset, offset+n, u.meta.Size))
		return
	}
	if offset+n <= u.meta.Received {
		// Entire range already landed on a previous attempt.
		writeJSON(w, http.StatusOK, u.responseLocked())
		return
	}

	rf, err := os.Open(tmp.Name())
	if err != nil {
		writeError(w, fmt.Errorf("server: upload range: %w", err))
		return
	}
	//lint:ignore errcheck read-only scratch file; a close error cannot lose data
	defer rf.Close()
	if skip := u.meta.Received - offset; skip > 0 {
		if _, err := rf.Seek(skip, io.SeekStart); err != nil {
			writeError(w, fmt.Errorf("server: upload range: %w", err))
			return
		}
	}
	df, err := os.OpenFile(u.dataPath(), os.O_WRONLY, 0o644)
	if err != nil {
		writeError(w, fmt.Errorf("server: upload range: %w", err))
		return
	}
	// Write at the durable prefix's end, never at the file's end: the
	// position comes from meta.Received, so stale bytes a crash or a
	// failed write left beyond the prefix are overwritten in place by
	// the retry instead of the payload landing after them.
	crc := u.meta.CRC
	written, err := io.Copy(io.MultiWriter(io.NewOffsetWriter(df, u.meta.Received), crcUpdater{&crc}), rf)
	if cerr := df.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// No rollback needed: meta.Received is unchanged, and the next
		// attempt's offset writer overwrites whatever this one left
		// beyond the prefix. Ranges never write past Size, so leftovers
		// can never outlive the finished payload either.
		writeError(w, fmt.Errorf("server: upload range: %w", err))
		return
	}
	u.meta.CRC = crc
	u.meta.Received += written
	if err := u.saveLocked(); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, u.responseLocked())
}

// crcUpdater folds written bytes into a running CRC-32 (IEEE).
type crcUpdater struct{ crc *uint32 }

// Write implements io.Writer by updating the running checksum.
func (c crcUpdater) Write(p []byte) (int, error) {
	*c.crc = crc32.Update(*c.crc, crc32.IEEETable, p)
	return len(p), nil
}

// handleUploadStatus reports a session's progress — the resume point
// for a client recovering from a connection loss.
func (s *Server) handleUploadStatus(w http.ResponseWriter, r *http.Request) {
	u, err := s.uploads.get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	u.mu.Lock()
	resp := u.responseLocked()
	u.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleFinalizeUpload commits a complete session through the same
// pipeline as a one-shot POST, with the session's running CRC as the
// commit's payload CRC. The result is cached in the session, so a
// retried finalize — or a finalize racing a duplicate — replays the
// same answer; an already-done session never commits twice.
func (s *Server) handleFinalizeUpload(w http.ResponseWriter, r *http.Request) {
	u, err := s.uploads.get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.meta.State == uploadStateDone {
		writeJSON(w, http.StatusOK, u.responseLocked())
		return
	}
	if u.meta.Received != u.meta.Size {
		writeError(w, fmt.Errorf("%w: finalize with %d of %d bytes received", ErrUploadGap, u.meta.Received, u.meta.Size))
		return
	}
	// The finalize request may declare the whole payload's CRC; check
	// it against the running CRC before committing.
	if err := declaredCRC(r, u.meta.CRC); err != nil {
		writeError(w, err)
		return
	}
	t, err := s.reg.Tenant(u.meta.Tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	q, err := url.ParseQuery(u.meta.Query)
	if err != nil {
		writeError(w, fmt.Errorf("%w: upload session query: %v", checkpoint.ErrCorrupt, err))
		return
	}
	opt, cfg, err := s.requestParams(q)
	if err != nil {
		writeError(w, err)
		return
	}

	br := newBufferedResponse()
	if q.Get("raw") == "1" {
		s.commitRaw(br, r, t, u.meta.Series, u.meta.Iteration, u.dataPath(), u.meta.Size, u.meta.CRC)
	} else {
		s.commitValues(br, r, t, u.meta.Series, u.meta.Iteration, q.Get("kind"), opt, cfg, u.dataPath(), u.meta.Size, u.meta.CRC)
	}
	if br.status != http.StatusOK && br.status != http.StatusCreated {
		// Commit failed: pass the pipeline's error through verbatim
		// (status, Retry-After, JSON body) and leave the session open —
		// a 429/503 finalize is retryable as-is.
		br.copyTo(w)
		return
	}
	var cr CommitResponse
	if err := json.Unmarshal(br.body.Bytes(), &cr); err != nil {
		writeError(w, fmt.Errorf("server: finalize: decode commit response: %w", err))
		return
	}
	u.meta.State = uploadStateDone
	u.meta.Commit = &cr
	if err := u.saveLocked(); err != nil {
		// The commit landed; a retried finalize will hit the commit
		// replay path and converge.
		writeError(w, err)
		return
	}
	// The payload is committed; the session keeps only meta for replay.
	_ = os.Remove(u.dataPath())
	writeJSON(w, br.status, u.responseLocked())
}

// bufferedResponse captures a handler's response so finalize can
// inspect the commit result before answering the client.
type bufferedResponse struct {
	h      http.Header
	status int
	body   bytes.Buffer
}

// newBufferedResponse builds an empty capture.
func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{h: make(http.Header), status: http.StatusOK}
}

// Header implements http.ResponseWriter.
func (b *bufferedResponse) Header() http.Header { return b.h }

// WriteHeader implements http.ResponseWriter.
func (b *bufferedResponse) WriteHeader(code int) { b.status = code }

// Write implements http.ResponseWriter.
func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }

// copyTo replays the captured response onto a real writer.
func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	for k, vs := range b.h {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(b.status)
	// Response write failures mean the client is gone; nothing to do.
	_, _ = w.Write(b.body.Bytes())
}
