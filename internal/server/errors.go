package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"numarck/internal/checkpoint"
	"numarck/internal/chunk"
)

// errBadRequest marks malformed request input (unparsable query
// parameters, a body that is not what the endpoint takes); it maps to
// 400 alongside the storage layer's ErrBadVariable.
var errBadRequest = errors.New("server: bad request")

// ErrCommitConflict reports a commit for an iteration that is already
// journaled with a different payload: not a retry of the same request
// but two distinct states contending for one chain slot. It maps to
// 409 and is never retryable — retrying would re-send the same losing
// payload.
var ErrCommitConflict = errors.New("server: iteration already committed with a different payload")

// ErrUploadGap reports an upload range whose offset is beyond the
// session's contiguous received prefix: a range went missing, so the
// session cannot accept this one. It maps to 409; the client re-reads
// the session status and resumes from Received.
var ErrUploadGap = errors.New("server: upload range beyond received prefix")

// APIError is the structured error body every non-2xx response
// carries. Clients branch on Class; Detail is the wrapped Go error
// chain for humans.
type APIError struct {
	// Status is the HTTP status code the error was sent with.
	Status int `json:"status"`
	// Class is the stable machine-readable error class (see the
	// mapping table in classify).
	Class string `json:"error"`
	// Detail is the human-readable error chain.
	Detail string `json:"detail"`
	// HolderPID and HolderAgeMs describe the current writer-lock
	// holder on a 423 response: which process holds the store and for
	// how long, straight from checkpoint.LockHeldError.
	HolderPID   int   `json:"holder_pid,omitempty"`
	HolderAgeMs int64 `json:"holder_age_ms,omitempty"`
	// RetryAfterSec mirrors the Retry-After header on 423/429/503.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// Error renders the API error for client-side error chains.
func (e *APIError) Error() string {
	return "server: " + strconv.Itoa(e.Status) + " " + e.Class + ": " + e.Detail
}

// OperatorMessage renders err the way a CLI should show it to a human
// operator: a decoded API error surfaces its status, class, and detail
// plus an actionable hint — the writer-lock holder's PID and age on
// 423, or the server's Retry-After on 429/503 — and a retry give-up
// surfaces the attempt count with its final cause. Local (non-HTTP)
// lock contention gets the same holder hint; every other error renders
// as its plain Error string.
func OperatorMessage(err error) string {
	var re *RetryExhaustedError
	if errors.As(err, &re) {
		return fmt.Sprintf("gave up after %d attempts; last error: %s", re.Attempts, OperatorMessage(re.Last))
	}
	var ae *APIError
	if errors.As(err, &ae) {
		msg := fmt.Sprintf("server rejected the request: %d %s: %s", ae.Status, ae.Class, ae.Detail)
		switch {
		case ae.HolderPID > 0:
			age := time.Duration(ae.HolderAgeMs) * time.Millisecond
			msg += fmt.Sprintf(" (writer lock held by pid %d for %s; retry shortly or check that process)", ae.HolderPID, age)
		case ae.RetryAfterSec > 0:
			msg += fmt.Sprintf(" (retry after %ds)", ae.RetryAfterSec)
		}
		return msg
	}
	var lh *checkpoint.LockHeldError
	if errors.As(err, &lh) {
		return fmt.Sprintf("%s (holder pid %d, held for %s; retry shortly or check that process)",
			err, lh.PID, lh.Age().Round(time.Millisecond))
	}
	return err.Error()
}

// classify maps a typed error from the storage and pipeline layers to
// its HTTP rendering. The table:
//
//	checkpoint.ErrBadVariable        400 bad_request      caller named an invalid tenant/series/iteration
//	checkpoint.ErrNotFound           404 not_found        no such store, variable, or iteration
//	checkpoint.ErrChain              409 chain_conflict   commit would break (or read crosses) a chain gap
//	ErrCommitConflict                409 commit_conflict  iteration already committed with a different payload
//	ErrUploadGap                     409 upload_gap       upload range starts beyond the received prefix
//	chunk.ErrBudget                  413 budget_exceeded  request's pipeline cannot fit its memory budget
//	ErrTooLarge                      413 too_large        heavier than the governor's total capacity
//	ErrOverCapacity                  429 over_capacity    governor full; retry after the hint
//	checkpoint.ErrLocked             423 store_locked     writer lock held outside this daemon (holder PID/age attached)
//	checkpoint.ErrCorrupt/Truncated  500 corrupt_store    stored bytes failed CRC/parse (fail-closed read)
//	ErrDraining / checkpoint.ErrClosed 503 draining       daemon is shutting down; retry elsewhere/later
//	anything else                    500 internal
//
// Corrupt-store reads are 500, not 4xx: the client's request was
// valid, the server's data is damaged — ?recover=1 is the opt-in that
// turns that into a 200 with a partial-data report.
func classify(err error) *APIError {
	var lh *checkpoint.LockHeldError
	switch {
	case errors.Is(err, errBadRequest):
		return &APIError{Status: http.StatusBadRequest, Class: "bad_request", Detail: err.Error()}
	case errors.Is(err, checkpoint.ErrBadVariable):
		return &APIError{Status: http.StatusBadRequest, Class: "bad_request", Detail: err.Error()}
	case errors.Is(err, checkpoint.ErrNotFound):
		return &APIError{Status: http.StatusNotFound, Class: "not_found", Detail: err.Error()}
	case errors.Is(err, checkpoint.ErrChain):
		return &APIError{Status: http.StatusConflict, Class: "chain_conflict", Detail: err.Error()}
	case errors.Is(err, ErrCommitConflict):
		return &APIError{Status: http.StatusConflict, Class: "commit_conflict", Detail: err.Error()}
	case errors.Is(err, ErrUploadGap):
		return &APIError{Status: http.StatusConflict, Class: "upload_gap", Detail: err.Error()}
	case errors.Is(err, chunk.ErrBudget):
		return &APIError{Status: http.StatusRequestEntityTooLarge, Class: "budget_exceeded", Detail: err.Error()}
	case errors.Is(err, ErrTooLarge):
		return &APIError{Status: http.StatusRequestEntityTooLarge, Class: "too_large", Detail: err.Error()}
	case errors.Is(err, ErrOverCapacity):
		return &APIError{Status: http.StatusTooManyRequests, Class: "over_capacity", Detail: err.Error(), RetryAfterSec: 1}
	case errors.As(err, &lh):
		return &APIError{
			Status: http.StatusLocked, Class: "store_locked", Detail: err.Error(),
			HolderPID: lh.PID, HolderAgeMs: lh.Age().Milliseconds(), RetryAfterSec: 1,
		}
	case errors.Is(err, checkpoint.ErrLocked):
		return &APIError{Status: http.StatusLocked, Class: "store_locked", Detail: err.Error(), RetryAfterSec: 1}
	case errors.Is(err, ErrDraining), errors.Is(err, checkpoint.ErrClosed):
		return &APIError{Status: http.StatusServiceUnavailable, Class: "draining", Detail: err.Error(), RetryAfterSec: 1}
	case errors.Is(err, checkpoint.ErrCorrupt), errors.Is(err, checkpoint.ErrTruncated):
		return &APIError{Status: http.StatusInternalServerError, Class: "corrupt_store", Detail: err.Error()}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away mid-request; 499-style, but stdlib has
		// no code for it — a 503 tells retrying proxies the truth.
		return &APIError{Status: http.StatusServiceUnavailable, Class: "canceled", Detail: err.Error()}
	default:
		return &APIError{Status: http.StatusInternalServerError, Class: "internal", Detail: err.Error()}
	}
}

// writeError renders err as its mapped status plus JSON body, setting
// Retry-After when the class carries a hint. It must be called before
// any body bytes have been written.
func writeError(w http.ResponseWriter, err error) {
	ae := classify(err)
	if ae.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ae.RetryAfterSec))
	}
	writeJSON(w, ae.Status, ae)
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Response write failures mean the client is gone; nothing to do.
	_ = json.NewEncoder(w).Encode(v)
}
