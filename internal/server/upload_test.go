package server

// Protocol-level tests for resumable upload sessions: the atomic-range
// rule (a bad or torn range changes nothing), duplicate-range
// idempotency, gap rejection, finalize preconditions, finalize replay,
// and session-id hygiene.

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// crcHeader renders a byte slice's CRC-32 the way the wire headers
// carry it (decimal, matching strconv.ParseUint in the handlers).
func crcHeader(b []byte) string {
	return strconv.FormatUint(uint64(crc32.ChecksumIEEE(b)), 10)
}

// uploadHarness wires the raw HTTP moves of the upload protocol so the
// tests below can speak it without the Client's conveniences (or its
// correctness — the point is to probe server behavior off the happy
// path).
type uploadHarness struct {
	t       *testing.T
	base    string
	http    *http.Client
	payload []byte
	id      string
}

func newUploadHarness(t *testing.T, size int) *uploadHarness {
	t.Helper()
	_, ts := newTestServer(t, 0, 0)
	h := &uploadHarness{t: t, base: ts.URL, http: ts.Client(), payload: floatBytes(seriesValues(0, size/8))}
	resp := h.do("POST", h.base+"/v1/t0/v/uploads?iter=0&size="+strconv.Itoa(len(h.payload)), nil, nil)
	ur := h.decode(resp, http.StatusCreated)
	if ur.State != "open" || ur.Received != 0 {
		t.Fatalf("fresh session = %+v", ur)
	}
	h.id = ur.ID
	return h
}

func (h *uploadHarness) do(method, url string, body []byte, hdr map[string]string) *http.Response {
	h.t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		h.t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := h.http.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	return resp
}

// putRange sends payload[off:off+n] with its true CRC.
func (h *uploadHarness) putRange(off, n int) *http.Response {
	h.t.Helper()
	part := h.payload[off : off+n]
	return h.do("PUT", h.base+"/v1/uploads/"+h.id, part, map[string]string{
		UploadOffsetHeader: strconv.Itoa(off),
		RangeCRCHeader:     crcHeader(part),
	})
}

// decode reads an UploadResponse, asserting the status.
func (h *uploadHarness) decode(resp *http.Response, want int) UploadResponse {
	h.t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	if resp.StatusCode != want {
		h.t.Fatalf("status %d, want %d; body: %s", resp.StatusCode, want, raw)
	}
	var ur UploadResponse
	if err := json.Unmarshal(raw, &ur); err != nil {
		h.t.Fatalf("decode %q: %v", raw, err)
	}
	return ur
}

// decodeErr reads an APIError, asserting status and class.
func (h *uploadHarness) decodeErr(resp *http.Response, status int, class string) {
	h.t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	if resp.StatusCode != status {
		h.t.Fatalf("status %d, want %d; body: %s", resp.StatusCode, status, raw)
	}
	var ae APIError
	if err := json.Unmarshal(raw, &ae); err != nil {
		h.t.Fatalf("decode %q: %v", raw, err)
	}
	if ae.Class != class {
		h.t.Fatalf("class %q, want %q (detail: %s)", ae.Class, class, ae.Detail)
	}
}

func (h *uploadHarness) received() int64 {
	h.t.Helper()
	return h.decode(h.do("GET", h.base+"/v1/uploads/"+h.id+"/status", nil, nil), http.StatusOK).Received
}

// TestUploadRangeProtocol walks the per-range rules: duplicates are
// idempotent no-ops, gaps are 409s, corrupt ranges are 400s that leave
// the session untouched, and overlap-with-progress appends only the
// new suffix.
func TestUploadRangeProtocol(t *testing.T) {
	h := newUploadHarness(t, 4096)

	ur := h.decode(h.putRange(0, 1024), http.StatusOK)
	if ur.Received != 1024 {
		t.Fatalf("received %d after first range, want 1024", ur.Received)
	}
	// Duplicate of a fully-covered range: 200, no progress change.
	ur = h.decode(h.putRange(0, 1024), http.StatusOK)
	if ur.Received != 1024 {
		t.Fatalf("received %d after duplicate range, want still 1024", ur.Received)
	}
	// A range starting beyond the prefix is a gap.
	h.decodeErr(h.putRange(2048, 1024), http.StatusConflict, "upload_gap")
	// A range whose declared CRC disagrees with its bytes is rejected
	// whole; the session must not absorb any of it.
	part := h.payload[1024:2048]
	resp := h.do("PUT", h.base+"/v1/uploads/"+h.id, part, map[string]string{
		UploadOffsetHeader: "1024",
		RangeCRCHeader:     strconv.FormatUint(uint64(crc32.ChecksumIEEE(part)^1), 10),
	})
	h.decodeErr(resp, http.StatusBadRequest, "bad_request")
	if got := h.received(); got != 1024 {
		t.Fatalf("received %d after corrupt range, want untouched 1024", got)
	}
	// An overlapping resend (a retry that started earlier than needed)
	// must skip the covered head and append only the tail.
	ur = h.decode(h.putRange(512, 1024), http.StatusOK)
	if ur.Received != 1536 {
		t.Fatalf("received %d after overlapping range, want 1536", ur.Received)
	}
	// A range overrunning the declared size is malformed.
	resp = h.do("PUT", h.base+"/v1/uploads/"+h.id, h.payload[:4096], map[string]string{
		UploadOffsetHeader: "1536",
		RangeCRCHeader:     crcHeader(h.payload[:4096]),
	})
	h.decodeErr(resp, http.StatusBadRequest, "bad_request")
}

// TestUploadFinalize covers the finalize gate and its replay: an
// incomplete session cannot finalize; a complete one commits through
// the normal pipeline; finalizing again replays the cached commit
// without touching the store.
func TestUploadFinalize(t *testing.T) {
	h := newUploadHarness(t, 2048)
	finURL := h.base + "/v1/uploads/" + h.id + "/finalize"

	h.decodeErr(h.do("POST", finURL, nil, nil), http.StatusConflict, "upload_gap")
	h.decode(h.putRange(0, 1024), http.StatusOK)
	h.decode(h.putRange(1024, len(h.payload)-1024), http.StatusOK)

	// A fresh finalize relays the commit pipeline's own 201.
	ur := h.decode(h.do("POST", finURL, nil, nil), http.StatusCreated)
	if ur.State != "done" || ur.Commit == nil || ur.Commit.Kind != "full" {
		t.Fatalf("finalized session = %+v", ur)
	}
	// Replay: identical answer, and the commit must not run again.
	again := h.decode(h.do("POST", finURL, nil, nil), http.StatusOK)
	if again.State != "done" || again.Commit == nil || *again.Commit != *ur.Commit {
		t.Fatalf("finalize replay = %+v, want cached %+v", again, ur)
	}
	// The finalized payload reads back through the normal fetch path.
	resp := h.do("GET", h.base+"/v1/t0/v/checkpoints/0", nil, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch after finalize: status %d", resp.StatusCode)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	// Late range against a done session: 200 with done state, no append.
	ur = h.decode(h.putRange(0, 1024), http.StatusOK)
	if ur.State != "done" {
		t.Fatalf("range after finalize answered state %q, want done", ur.State)
	}
}

// TestUploadFinalizeCRCMismatch declares a whole-payload CRC at
// finalize that disagrees with the received bytes; the session must
// stay open for correction rather than commit corrupt data.
func TestUploadFinalizeCRCMismatch(t *testing.T) {
	h := newUploadHarness(t, 1024)
	h.decode(h.putRange(0, len(h.payload)), http.StatusOK)
	resp := h.do("POST", h.base+"/v1/uploads/"+h.id+"/finalize", nil, map[string]string{
		PayloadCRCHeader: strconv.FormatUint(uint64(crc32.ChecksumIEEE(h.payload)^1), 10),
	})
	h.decodeErr(resp, http.StatusBadRequest, "bad_request")
	ur := h.decode(h.do("GET", h.base+"/v1/uploads/"+h.id+"/status", nil, nil), http.StatusOK)
	if ur.State != "open" {
		t.Fatalf("session state %q after rejected finalize, want open", ur.State)
	}
}

// TestUploadSessionHygiene checks id handling: unknown and malformed
// session ids are clean 404s, and session creation validates its
// parameters up front.
func TestUploadSessionHygiene(t *testing.T) {
	h := newUploadHarness(t, 1024)
	h.decodeErr(h.do("GET", h.base+"/v1/uploads/00000000000000000000000000000000/status", nil, nil),
		http.StatusNotFound, "not_found")
	h.decodeErr(h.do("GET", h.base+"/v1/uploads/zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz/status", nil, nil),
		http.StatusNotFound, "not_found")
	h.decodeErr(h.do("PUT", h.base+"/v1/uploads/nothex!", []byte("x"), map[string]string{
		UploadOffsetHeader: "0",
	}), http.StatusNotFound, "not_found")
	h.decodeErr(h.do("POST", h.base+"/v1/t0/v/uploads?iter=0&size=0", nil, nil),
		http.StatusBadRequest, "bad_request")
	h.decodeErr(h.do("POST", h.base+"/v1/t0/v/uploads?iter=nope&size=8", nil, nil),
		http.StatusBadRequest, "bad_request")
}

// TestUploadResumeAfterDirtyCrash replays the worst crash window the
// resume protocol has: a daemon writes a range's bytes into the data
// file but dies before the meta.json rename, so the file on disk runs
// ahead of the durable Received — and the running CRC covers only the
// durable prefix. The reloaded session must place the re-sent range at
// Received, not at the file's end, and the finalized iteration must be
// byte-identical to a fault-free commit of the same payload.
func TestUploadResumeAfterDirtyCrash(t *testing.T) {
	s, ts := newTestServer(t, 0, 0)
	payload := floatBytes(seriesValues(0, 256))
	h := &uploadHarness{t: t, base: ts.URL, http: ts.Client(), payload: payload}
	ur := h.decode(h.do("POST", ts.URL+"/v1/t0/v/uploads?iter=0&size="+strconv.Itoa(len(payload)), nil, nil), http.StatusCreated)
	h.id = ur.ID
	h.decode(h.putRange(0, 1024), http.StatusOK)

	// Crash: 512 bytes of the next range reached the data file, but the
	// daemon died before meta.json recorded them.
	dataPath := filepath.Join(s.uploads.dir, h.id, "data")
	f, err := os.OpenFile(dataPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload[1024:1536]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart: the in-memory session is gone; the next touch reloads
	// (and reconciles) the session from disk.
	s.uploads.remove(h.id)

	// The client resumes from the durable Received and re-sends the
	// unacknowledged range in full.
	if got := h.received(); got != 1024 {
		t.Fatalf("received after crash = %d, want the durable 1024", got)
	}
	h.decode(h.putRange(1024, len(payload)-1024), http.StatusOK)
	fin := h.do("POST", ts.URL+"/v1/uploads/"+h.id+"/finalize", nil, map[string]string{
		PayloadCRCHeader: crcHeader(payload),
	})
	if ur = h.decode(fin, http.StatusCreated); ur.Commit == nil {
		t.Fatalf("finalize = %+v, want a commit", ur)
	}

	// Byte-identical to a fault-free commit of the same payload.
	c := &Client{Base: ts.URL, Tenant: "t0"}
	if _, err := c.Push("w", 0, bytes.NewReader(payload), nil); err != nil {
		t.Fatal(err)
	}
	var crashed, clean bytes.Buffer
	if _, _, err := c.Fetch("v", 0, &crashed, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Fetch("w", 0, &clean, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(crashed.Bytes(), clean.Bytes()) {
		t.Fatal("crash-resumed upload reconstructs differently from a fault-free commit")
	}
}
