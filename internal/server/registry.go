package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"numarck/internal/checkpoint"
	"numarck/internal/core"
	"numarck/internal/obs"
)

// Registry lazily opens per-tenant checkpoint stores under one root
// directory. A tenant's store directory is root/<tenant>; tenant names
// obey the same rules as variable names (checkpoint.ValidateVariable),
// which also makes them single safe path components and keeps them
// from colliding with the daemon's root/.spool scratch directory.
//
// The registry never holds a store's single-writer lock at rest: each
// write operation opens the store, commits, and closes it again inside
// WithStore, so the on-disk LOCK exists only while a write is in
// flight and an operator CLI can take the writer role between
// requests. Reads go through a cached lock-free ReadView.
type Registry struct {
	root string
	opt  core.Options

	mu      sync.Mutex
	tenants map[string]*Tenant
}

// Tenant is one tenant's handle: its store directory, a mutex
// serializing this process's writes to it, a cached lock-free read
// view, and the tenant's metrics recorder.
type Tenant struct {
	name string
	dir  string
	opt  core.Options
	rec  *obs.Recorder

	// writeMu serializes this daemon's write operations per tenant, so
	// concurrent POSTs queue instead of failing on the on-disk writer
	// lock they would otherwise race for.
	writeMu sync.Mutex

	viewMu sync.Mutex
	view   *checkpoint.ReadView
}

// NewRegistry builds a registry rooted at root, creating the directory
// if needed, and pre-registers any existing tenant store directories
// so /metrics and drain accounting see them before their first
// request. opt is the manifest written when a tenant's store is
// created on first write.
func NewRegistry(root string, opt core.Options) (*Registry, error) {
	if root == "" {
		return nil, fmt.Errorf("server: registry needs a root directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("server: create root: %w", err)
	}
	rg := &Registry{root: root, opt: opt, tenants: map[string]*Tenant{}}
	des, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("server: scan root: %w", err)
	}
	for _, de := range des {
		if de.IsDir() && checkpoint.ValidateVariable(de.Name()) == nil {
			if _, err := rg.Tenant(de.Name()); err != nil {
				return nil, err
			}
		}
	}
	return rg, nil
}

// Root returns the registry's root directory.
func (rg *Registry) Root() string { return rg.root }

// Tenant returns the handle for a tenant name, creating it on first
// use. The name is validated; the store directory is not touched until
// the first write.
func (rg *Registry) Tenant(name string) (*Tenant, error) {
	if err := checkpoint.ValidateVariable(name); err != nil {
		return nil, fmt.Errorf("server: tenant name: %w", err)
	}
	rg.mu.Lock()
	defer rg.mu.Unlock()
	t := rg.tenants[name]
	if t == nil {
		t = &Tenant{name: name, dir: filepath.Join(rg.root, name), opt: rg.opt, rec: obs.NewRecorder()}
		rg.tenants[name] = t
	}
	return t, nil
}

// Tenants returns every known tenant handle, sorted by name.
func (rg *Registry) Tenants() []*Tenant {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	out := make([]*Tenant, 0, len(rg.tenants))
	for _, t := range rg.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Dir returns the tenant's store directory.
func (t *Tenant) Dir() string { return t.dir }

// Recorder returns the tenant's metrics recorder.
func (t *Tenant) Recorder() *obs.Recorder { return t.rec }

// WithStore runs one write operation against the tenant's store,
// holding the single-writer lock only for the duration of fn: the
// store is opened (created on first write), fn commits through it, and
// it is closed — releasing the on-disk LOCK — before WithStore
// returns. The per-tenant write mutex serializes this daemon's writers
// so they queue here instead of colliding on the lock file; a writer
// outside this process (an operator CLI) still surfaces as
// ErrLocked/LockHeldError, which the HTTP layer maps to 423.
func (t *Tenant) WithStore(fn func(st *checkpoint.Store) error) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	st, err := checkpoint.Open(t.dir)
	if errors.Is(err, checkpoint.ErrNotFound) {
		st, err = checkpoint.Create(t.dir, t.opt)
	}
	if err != nil {
		return err
	}
	st.SetRecorder(t.rec)
	ferr := fn(st)
	if cerr := st.Close(); ferr == nil {
		ferr = cerr
	}
	return ferr
}

// View returns the tenant's cached lock-free read view, opening it on
// first use. A missing store is not cached as a failure: the next call
// retries, so a tenant becomes readable as soon as its first write
// commits.
func (t *Tenant) View() (*checkpoint.ReadView, error) {
	t.viewMu.Lock()
	defer t.viewMu.Unlock()
	if t.view != nil {
		return t.view, nil
	}
	rv, err := checkpoint.OpenReadOnly(t.dir)
	if err != nil {
		return nil, err
	}
	t.view = rv
	return rv, nil
}
